// Package repro is a from-scratch Go reproduction of "Implicit Memory
// Tagging: No-Overhead Memory Safety Using Alias-Free Tagged ECC"
// (Sullivan, Tarek Ibn Ziad, Jaleel, Keckler — ISCA 2023).
//
// The paper's contribution is a class of error-correcting codes
// (Alias-Free Tagged ECC) that embed a maximum-length memory tag in the
// ECC check bits — unambiguously detecting tag mismatches while keeping
// single-bit correction and double-bit detection — and a GPU memory-
// safety system (Implicit Memory Tagging) built on them with zero
// storage, traffic, and reliability overheads.
//
// The implementation is organized as focused internal packages:
//
//	internal/gf2         bit-packed GF(2) linear algebra
//	internal/ecc         SEC / SEC-DED (Hsiao) code construction + decode
//	internal/core        AFT-ECC: the paper's contribution (§3)
//	internal/imt         the IMT system layer: pointers, memory, driver (§4)
//	internal/tagalloc    glibc/Scudo-style tagging allocators (§2.3, §5.1)
//	internal/baselines   ECC stealing / carve-out / bounds-table schemes (§4.1, §6)
//	internal/reliability fault injection and SDC analysis (§5.3)
//	internal/security    detection-probability evaluation (§5.4)
//	internal/gpusim      trace-driven GPU memory-hierarchy simulator (§5.2)
//	internal/workload    the 193-workload synthetic catalog (§5.1)
//	internal/hwcost      gate-level encoder/decoder cost model (§5.5)
//	internal/experiments one driver per paper table/figure
//
// This root package re-exports the handful of entry points a downstream
// user needs; see the examples/ directory for runnable walkthroughs and
// cmd/imtrepro for the full evaluation harness.
package repro

import (
	"repro/internal/core"
	"repro/internal/imt"
	"repro/internal/tagalloc"
)

// Re-exported core types: the AFT-ECC code and the IMT memory system.
type (
	// Code is an Alias-Free Tagged ECC code (§3).
	Code = core.Code
	// Memory is an IMT-protected sectored memory (§4).
	Memory = imt.Memory
	// Driver performs §4.3 precise fault diagnosis.
	Driver = imt.Driver
	// Allocator is a tagging heap allocator (§2.3).
	Allocator = tagalloc.Allocator
	// Fault is the hardware fault record handed to the driver.
	Fault = imt.Fault
)

// NewAFTECC constructs an Alias-Free Tagged ECC code with k data bits,
// r check bits and a ts-bit embedded tag, verifying the §3.3 invariants.
func NewAFTECC(k, r, ts int) (*Code, error) {
	c, err := core.NewCode(k, r, ts, core.Options{})
	if err != nil {
		return nil, err
	}
	core.MustVerify(c)
	return c, nil
}

// MaxTagSize returns the Equation 5b bound: the largest alias-free tag
// size that preserves single-bit correction at (k, r).
func MaxTagSize(k, r int) (int, error) { return core.MaxTagSize(k, r) }

// NewIMT10 builds an IMT-10 memory (256-bit sectors, 10 check bits,
// 9-bit tags) with an attached driver.
func NewIMT10() (*Memory, *Driver, error) { return newIMT(imt.IMT10) }

// NewIMT16 builds an IMT-16 memory (256-bit sectors, 16 check bits,
// 15-bit tags) with an attached driver.
func NewIMT16() (*Memory, *Driver, error) { return newIMT(imt.IMT16) }

func newIMT(cfg imt.Config) (*Memory, *Driver, error) {
	m, err := imt.NewMemory(cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, imt.NewDriver(m), nil
}

// NewScudoAllocator attaches a Scudo-style (odd/even alternating) tagging
// allocator to an IMT memory over [heapBase, heapBase+heapSize).
func NewScudoAllocator(m *Memory, d *Driver, heapBase, heapSize uint64, seed int64) (*Allocator, error) {
	return tagalloc.New(m, d, tagalloc.ScudoTagger{TagBits: m.Config().TagBits}, heapBase, heapSize, seed)
}

// NewGlibcAllocator attaches a glibc-style (uniform random) tagging
// allocator to an IMT memory over [heapBase, heapBase+heapSize).
func NewGlibcAllocator(m *Memory, d *Driver, heapBase, heapSize uint64, seed int64) (*Allocator, error) {
	return tagalloc.New(m, d, tagalloc.GlibcTagger{TagBits: m.Config().TagBits}, heapBase, heapSize, seed)
}
