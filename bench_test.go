package repro

// The benchmark harness: one testing.B benchmark per paper table/figure
// (run with `go test -bench=. -benchmem`), plus throughput microbenches
// for the encode/decode hot path and ablation benches for the design
// choices DESIGN.md calls out. The per-experiment benches use
// b.ReportMetric to surface the headline number each paper artifact
// reports, so a bench run doubles as a compact results summary.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/experiments"
	"repro/internal/gf2"
	"repro/internal/gfp"
	"repro/internal/gpusim"
	"repro/internal/hwcost"
	"repro/internal/reliability"
	"repro/internal/security"
	"repro/internal/symbolecc"
	"repro/internal/tagalloc"
	"repro/internal/workload"
)

func benchOpts() experiments.Options {
	o := experiments.Quick()
	o.WorkloadStride = 12 // 17 of the 193 workloads: keeps -bench=. minutes-scale
	return o
}

// BenchmarkFig1CVEBreakdown regenerates Figure 1 (dataset validation).
func BenchmarkFig1CVEBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		last := r.Series[len(r.Series)-1]
		b.ReportMetric(last.MemorySafetyPct(), "%mem-safety-2018")
	}
}

// BenchmarkFig5TagSizeLimits regenerates Figure 5 (Eq 5b sweep plus
// constructive verification of the starred codes).
func BenchmarkFig5TagSizeLimits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.K == 256 && p.R == 16 {
				b.ReportMetric(float64(p.MaxTS), "maxTS@256,16")
			}
		}
	}
}

// BenchmarkFig8CarveOutSlowdown regenerates Figure 8 on a catalog subset
// (full 193-workload runs live in cmd/imtrepro).
func BenchmarkFig8CarveOutSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Suites() {
			if s.Suite == "HPC+SLA" {
				b.ReportMetric(100*s.HMeanLow, "%hmean-low-hpc")
				b.ReportMetric(100*s.MaxLow, "%max-low-hpc")
			}
		}
	}
}

// BenchmarkFig9SDCvsRedundancy regenerates Figure 9.
func BenchmarkFig9SDCvsRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Points[9].RandomSDC, "%randSDC-R10")
		b.ReportMetric(100*r.Points[15].RandomSDC, "%randSDC-R16")
	}
}

// BenchmarkTable1Comparison regenerates Table 1 (reusing a Fig8 subset).
func BenchmarkTable1Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Schemes {
			if s.Name == "ECC Stealing Iso-Security-16" {
				b.ReportMetric(s.AddedSDCRisk, "xSDC-iso16-steal")
			}
		}
	}
}

// BenchmarkTable2ErrorPatterns regenerates Table 2 (sampled 4-bit rows).
func BenchmarkTable2ErrorPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Configs[0].Rows[3].Tally.SDCRate(), "%3bSDC-IMT10")
		b.ReportMetric(100*r.Configs[1].Rows[3].Tally.SDCRate(), "%3bSDC-IMT16")
	}
}

// BenchmarkTable3HardwareCost regenerates Table 3.
func BenchmarkTable3HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[3].AreaOverheadPct, "%area-dec16")
		b.ReportMetric(r.Rows[3].DelayOverheadNs, "ns-delay-dec16")
	}
}

// BenchmarkFootprintBloat regenerates the §5 bloat statistics.
func BenchmarkFootprintBloat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Bloat()
		b.ReportMetric(100*r.Groups[0].HMean, "%hmean-small")
		b.ReportMetric(100*r.Groups[1].HMean, "%hmean-large")
	}
}

// BenchmarkSecurityDetection regenerates the §5.4 security evaluation.
func BenchmarkSecurityDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Security(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementIMT16, "x-misdetect-impr")
	}
}

// BenchmarkBoundsTableSlowdown regenerates the §6 GPUShield comparison.
func BenchmarkBoundsTableSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Bounds(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MaxAffected, "%max-bounds")
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks: encode/decode throughput of the AFT-ECC hot path.

func benchCode(b *testing.B, r, ts int) (*core.Code, *gf2.BitVec, uint64) {
	b.Helper()
	code, err := core.NewCode(256, r, ts, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := gf2.NewBitVec(256)
	for i := 0; i < 256; i++ {
		data.Set(i, rng.Intn(2))
	}
	check := code.Encode(data, 0x1F)
	return code, data, check
}

// BenchmarkAFTEncodeIMT16 measures 32B-sector encode throughput.
func BenchmarkAFTEncodeIMT16(b *testing.B) {
	code, data, _ := benchCode(b, 16, 15)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = code.Encode(data, 0x1F)
	}
}

// BenchmarkAFTDecodeCleanIMT16 measures clean-path decode throughput.
func BenchmarkAFTDecodeCleanIMT16(b *testing.B) {
	code, data, check := benchCode(b, 16, 15)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := code.Decode(data, check, 0x1F); res.Status != core.StatusOK {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkAFTDecodeTMMIMT16 measures the tag-mismatch decode path.
func BenchmarkAFTDecodeTMMIMT16(b *testing.B) {
	code, data, check := benchCode(b, 16, 15)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := code.Decode(data, check, 0x2A); res.Status != core.StatusTMM {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkAllocatorMallocFree measures tagging-allocator round trips on
// IMT memory (tag writes per granule included).
func BenchmarkAllocatorMallocFree(b *testing.B) {
	mem, drv, err := NewIMT16()
	if err != nil {
		b.Fatal(err)
	}
	heap, err := tagalloc.New(mem, drv, tagalloc.ScudoTagger{TagBits: 15}, 0, 1<<28, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := heap.Malloc(96)
		if err != nil {
			b.Fatal(err)
		}
		if err := heap.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for the DESIGN.md design choices.

// BenchmarkAblationStaircaseVsRandomTag compares encoder cost of the
// Equation 6 staircase against a random alias-free even-weight tag
// submatrix: the staircase buys ~zero extra depth and minimal area.
func BenchmarkAblationStaircaseVsRandomTag(b *testing.B) {
	base, err := ecc.NewHsiao(256, 16)
	if err != nil {
		b.Fatal(err)
	}
	data := base.DataMatrix()
	stair, err := core.StaircaseTagMatrix(16, 15)
	if err != nil {
		b.Fatal(err)
	}
	cal := hwcost.Default16nm()
	for i := 0; i < b.N; i++ {
		randT, err := core.RandomEvenTagMatrix(16, 15, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		s := hwcost.EncoderTagged("staircase", data, stair, cal)
		r := hwcost.EncoderTagged("random-even", data, randT, cal)
		b.ReportMetric(s.AreaAND2, "and2-staircase")
		b.ReportMetric(r.AreaAND2, "and2-random")
		b.ReportMetric(float64(r.Gates.Depth-s.Gates.Depth), "extra-depth-random")
	}
}

// BenchmarkAblationGeneticVsGreedy compares the §3.5 genetic data-
// submatrix search against the greedy construction on exhaustive 3-bit
// detection.
func BenchmarkAblationGeneticVsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		greedy, err := ecc.NewHsiao(64, 8)
		if err != nil {
			b.Fatal(err)
		}
		genetic, err := ecc.NewGeneticSECDED(64, 8, ecc.GeneticOptions{
			Population: 10, Generations: 8, TripleTrials: 5000, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*ecc.TripleDetectionRate(greedy), "%3bdet-greedy")
		b.ReportMetric(100*ecc.TripleDetectionRate(genetic), "%3bdet-genetic")
	}
}

// BenchmarkAblationTagShortening quantifies the Table 2 footnote: each
// bit of tag-size reduction halves the even-weight-error misattribution
// (2-bit errors reported as TMM instead of DUE).
func BenchmarkAblationTagShortening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prev := -1.0
		for _, ts := range []int{15, 13, 11, 9} {
			code, err := core.NewCode(256, 16, ts, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			tally, err := reliability.ExhaustiveKBit(reliability.TargetAFT(code), 2)
			if err != nil {
				b.Fatal(err)
			}
			mis := tally.TMMRate()
			b.ReportMetric(100*mis, "%misattr-ts"+itoa(ts))
			if prev >= 0 && mis > prev {
				b.Fatalf("misattribution should shrink with TS (ts=%d: %v vs %v)", ts, mis, prev)
			}
			prev = mis
		}
	}
}

// BenchmarkAblationScudoVsGlibc contrasts the two allocator policies'
// detection under identical tag budgets.
func BenchmarkAblationScudoVsGlibc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := security.SimulateAttacks(tagalloc.GlibcTagger{TagBits: 9}, 32, 20000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		s, err := security.SimulateAttacks(tagalloc.ScudoTagger{TagBits: 9}, 32, 20000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*g.AdjacentDetected, "%adj-glibc")
		b.ReportMetric(100*s.AdjacentDetected, "%adj-scudo")
		b.ReportMetric(100*g.NonAdjacentDetected, "%nonadj-glibc")
		b.ReportMetric(100*s.NonAdjacentDetected, "%nonadj-scudo")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkExtSymbolComparison regenerates the §7.1 extension study
// (bit-oriented AFT-ECC vs tagged symbol SSC under byte/burst errors).
func BenchmarkExtSymbolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtSymbol(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Pattern == "byte (multi-bit in one byte)" {
				b.ReportMetric(100*row.SymCE, "%byteCE-symbol")
				b.ReportMetric(100*row.BitCE, "%byteCE-bit")
			}
		}
	}
}

// BenchmarkExtCPUDeployment regenerates the §7.2 extension study
// (64B-cacheline AFT-ECC and CPU-heap fragmentation).
func BenchmarkExtCPUDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtCPU(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Bloat64, "%bloat-64B")
		b.ReportMetric(100*r.RandomSDC64, "%randSDC-K512")
	}
}

// BenchmarkSymbolEncodeDecode measures the GF(2^8) tagged-SSC hot path.
func BenchmarkSymbolEncodeDecode(b *testing.B) {
	f, err := gfp.New(8)
	if err != nil {
		b.Fatal(err)
	}
	code, err := symbolecc.NewTagged(f, 32, 8)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint16, 32)
	for i := range data {
		data[i] = uint16(i * 7 % 256)
	}
	c0, c1, err := code.Encode(data, 0x5A)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := code.Decode(data, c0, c1, 0x5A)
		if err != nil || res.Status != symbolecc.StatusOK {
			b.Fatal(err, res.Status)
		}
	}
}

// BenchmarkExtAllocators regenerates the §7.3 improved-allocator study.
func BenchmarkExtAllocators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtAlloc(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[0].Deterministic, "%det-small-heap")
		b.ReportMetric(100*r.Rows[len(r.Rows)-1].Deterministic, "%det-saturated")
	}
}

// BenchmarkAblationCarveOutCoverage sweeps the carve-out tag density:
// more tag bits per granule mean each 32B tag sector covers less data,
// so tag traffic (and slowdown) grows — the design-space axis between
// Figure 8's low- and high-tag-storage curves.
func BenchmarkAblationCarveOutCoverage(b *testing.B) {
	w := workload.Catalog()[100] // an SLA sparse kernel
	w.OpsPerSM = 1500
	for i := 0; i < b.N; i++ {
		cfg := gpusim.DefaultConfig()
		sim, err := gpusim.New(cfg, w.Traces(cfg.NumSMs))
		if err != nil {
			b.Fatal(err)
		}
		base, err := sim.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		for _, tagBits := range []int{2, 4, 8, 16} {
			cc := cfg
			cc.Mode = gpusim.ModeCarveOut
			cc.Carve = gpusim.CarveOut{TagBits: tagBits, GranuleBytes: 32}
			sim, err := gpusim.New(cc, w.Traces(cc.NumSMs))
			if err != nil {
				b.Fatal(err)
			}
			st, err := sim.Run(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*gpusim.Slowdown(base, st), "%slow-ts"+itoa(tagBits))
		}
	}
}

// BenchmarkExtVA57 regenerates the footnote-4 57-bit-VA evaluation.
func BenchmarkExtVA57(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtVA57(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Det7, "%detect-imt7")
		b.ReportMetric(100*r.RandTMM7, "%rand-misattr-imt7")
	}
}
