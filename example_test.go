package repro_test

import (
	"errors"
	"fmt"

	repro "repro"
	"repro/internal/gf2"
)

// ExampleNewAFTECC shows the core codec: the tag is folded into the
// check bits at encode and checked implicitly at decode.
func ExampleNewAFTECC() {
	code, err := repro.NewAFTECC(256, 16, 15)
	if err != nil {
		panic(err)
	}
	data := gf2.BitVecFromBytes(256, []byte("hello, implicit tags"))
	check := code.Encode(data, 0x1234) // lock tag never stored

	fmt.Println(code.Decode(data.Clone(), check, 0x1234).Status) // matching key
	res := code.Decode(data.Clone(), check, 0x4321)              // wrong key
	fmt.Println(res.Status, res.LockTagEstimate == 0x1234)
	// Output:
	// OK
	// TMM true
}

// ExampleNewScudoAllocator shows spatial memory safety end to end: an
// adjacent heap overflow faults as a tag mismatch.
func ExampleNewScudoAllocator() {
	mem, drv, err := repro.NewIMT16()
	if err != nil {
		panic(err)
	}
	heap, err := repro.NewScudoAllocator(mem, drv, 0x10000, 1<<20, 1)
	if err != nil {
		panic(err)
	}
	buf, _ := heap.Malloc(64)
	if _, err := heap.Malloc(64); err != nil { // the neighbor
		panic(err)
	}

	_, err = mem.Read(mem.Config().WithOffset(buf, 64), 8) // one past the end
	var fault *repro.Fault
	fmt.Println(errors.As(err, &fault), fault.Kind)
	// Output:
	// true TMM
}

// ExampleMaxTagSize evaluates the Equation 5b bound at the paper's two
// starred configurations.
func ExampleMaxTagSize() {
	for _, r := range []int{10, 16} {
		ts, _ := repro.MaxTagSize(256, r)
		fmt.Printf("K=256 R=%d -> TS=%d\n", r, ts)
	}
	// Output:
	// K=256 R=10 -> TS=9
	// K=256 R=16 -> TS=15
}
