#!/bin/sh
# jobs-smoke: end-to-end gate for the durable job queue (make jobs-smoke).
#
# Proves the crash-recovery contract with a real SIGKILL, not an
# in-process fake:
#
#   1. boot imtd with a job store (-jobs-dir), submit a STREAM x
#      {none,carve-low,imt} sweep as a durable job;
#   2. wait until at least 2 cells are done, then kill -9 the daemon
#      mid-flight;
#   3. restart imtd over the same -jobs-dir/-cache-dir; follow the same
#      job id to completion, requiring >=1 resumed cell (work recovered
#      from the WAL instead of recomputed);
#   4. run the identical grid as an uninterrupted baseline on fresh
#      directories and byte-compare the canonical result sets.
#
# The run fails unless the resumed job finishes "done", reports >=1
# resumed cell, and its merged result set is byte-identical to the
# baseline's.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
IMTD_PID=
cleanup() {
    [ -n "$IMTD_PID" ] && kill -9 "$IMTD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# start_imtd <cache-dir> <jobs-dir> <logfile>: boots imtd on an
# ephemeral port and sets IMTD_PID/ADDR.
start_imtd() {
    rm -f "$WORK/imtd.addr"
    "$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/imtd.addr" \
        -j 1 -cache-dir "$1" -jobs-dir "$2" -job-workers 1 \
        2>>"$3" &
    IMTD_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/imtd.addr" ] && break
        kill -0 "$IMTD_PID" 2>/dev/null || { cat "$3"; echo "jobs-smoke: FAILED: imtd died on startup"; exit 1; }
        sleep 0.1
    done
    ADDR=$(cat "$WORK/imtd.addr")
}

# drain_imtd <logfile>: SIGTERM and require a clean exit.
drain_imtd() {
    kill -TERM "$IMTD_PID"
    ok=0
    for _ in $(seq 1 300); do
        if ! kill -0 "$IMTD_PID" 2>/dev/null; then ok=1; break; fi
        sleep 0.1
    done
    [ "$ok" = 1 ] || { echo "jobs-smoke: FAILED: imtd did not drain within 30s"; exit 1; }
    wait "$IMTD_PID" 2>/dev/null || { echo "jobs-smoke: FAILED: imtd exited nonzero"; cat "$1"; exit 1; }
    IMTD_PID=
}

echo "jobs-smoke: building imtd + imtload"
$GO build -o "$WORK/imtd" ./cmd/imtd
$GO build -o "$WORK/imtload" ./cmd/imtload

SUITE=STREAM
MODES=none,carve-low,imt

echo "jobs-smoke: starting imtd (ephemeral port, -jobs-dir)"
start_imtd "$WORK/cache" "$WORK/jobs" "$WORK/imtd1.log"
echo "jobs-smoke: imtd listening on $ADDR (pid $IMTD_PID)"

JOB=$("$WORK/imtload" -addr "$ADDR" -job-submit -tenant smoke \
    -sweep-suite "$SUITE" -sweep-modes "$MODES")
echo "jobs-smoke: submitted job $JOB"

"$WORK/imtload" -addr "$ADDR" -job-id "$JOB" -job-wait-cells 2
echo "jobs-smoke: killing imtd mid-flight (SIGKILL)"
kill -9 "$IMTD_PID"
wait "$IMTD_PID" 2>/dev/null || true
IMTD_PID=

echo "jobs-smoke: restarting imtd over the same -jobs-dir"
start_imtd "$WORK/cache" "$WORK/jobs" "$WORK/imtd2.log"
echo "jobs-smoke: imtd listening on $ADDR (pid $IMTD_PID)"

"$WORK/imtload" -addr "$ADDR" -job-id "$JOB" -job-follow \
    -job-out "$WORK/resumed.txt" -min-resumed 1
drain_imtd "$WORK/imtd2.log"

echo "jobs-smoke: uninterrupted baseline on fresh directories"
start_imtd "$WORK/cache-base" "$WORK/jobs-base" "$WORK/imtd3.log"
"$WORK/imtload" -addr "$ADDR" -jobs -tenant smoke \
    -sweep-suite "$SUITE" -sweep-modes "$MODES" \
    -job-out "$WORK/baseline.txt"
drain_imtd "$WORK/imtd3.log"

if ! cmp -s "$WORK/resumed.txt" "$WORK/baseline.txt"; then
    echo "jobs-smoke: FAILED: resumed result set differs from baseline"
    diff "$WORK/baseline.txt" "$WORK/resumed.txt" || true
    exit 1
fi
echo "jobs-smoke: resumed result set byte-identical to baseline ($(wc -l <"$WORK/resumed.txt") cells)"
echo "jobs-smoke: PASS"
