#!/bin/sh
# cluster-smoke: end-to-end gate for the multi-node layer (make cluster-smoke).
#
# Boots three imtd shards and one imtgw gateway on ephemeral ports,
# then:
#   1. runs a single-node baseline sweep (STREAM x none,imt,carve-low)
#      against shard 1 directly, writing canonical results;
#   2. runs the same sweep through the gateway while SIGKILLing shard 3
#      after the first streamed cell — imtload -cluster asserts every
#      cell of the grid still arrives exactly once, with >=1 cell
#      rerouted off the dead shard and the gateway reporting the fleet
#      degraded;
#   3. byte-compares the gateway run's canonical results against the
#      single-node baseline — sharding, rerouting and merging must not
#      change a single result bit;
#   4. SIGTERMs the gateway and asserts a clean drain with serve_gw_*
#      metrics and the gateway manifest flushed.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building imtd + imtgw + imtload"
$GO build -o "$WORK/imtd" ./cmd/imtd
$GO build -o "$WORK/imtgw" ./cmd/imtgw
$GO build -o "$WORK/imtload" ./cmd/imtload

start_shard() { # $1 = index
    "$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/shard$1.addr" \
        -j 2 -cache-dir "$WORK/cache$1" 2>"$WORK/shard$1.log" &
    eval "SHARD$1_PID=$!"
    PIDS="$PIDS $!"
}

wait_addr() { # $1 = file, $2 = pid, $3 = name
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        kill -0 "$2" 2>/dev/null || { cat "${1%.addr}.log" 2>/dev/null; echo "cluster-smoke: FAILED: $3 died on startup"; exit 1; }
        sleep 0.1
    done
    echo "cluster-smoke: FAILED: $3 never wrote its address file"; exit 1
}

echo "cluster-smoke: starting 3 imtd shards (ephemeral ports)"
start_shard 1; start_shard 2; start_shard 3
wait_addr "$WORK/shard1.addr" "$SHARD1_PID" "shard 1"
wait_addr "$WORK/shard2.addr" "$SHARD2_PID" "shard 2"
wait_addr "$WORK/shard3.addr" "$SHARD3_PID" "shard 3"
S1=$(cat "$WORK/shard1.addr"); S2=$(cat "$WORK/shard2.addr"); S3=$(cat "$WORK/shard3.addr")
echo "cluster-smoke: shards on $S1 $S2 $S3"

echo "cluster-smoke: starting imtgw over the fleet"
"$WORK/imtgw" -addr 127.0.0.1:0 -addr-file "$WORK/imtgw.addr" \
    -shards "http://$S1,http://$S2,http://$S3" \
    -probe-interval 250ms \
    -metrics-out "$WORK/gw-metrics.prom" -manifest-out "$WORK/gw-manifest.json" \
    2>"$WORK/imtgw.log" &
GW_PID=$!
PIDS="$PIDS $GW_PID"
wait_addr "$WORK/imtgw.addr" "$GW_PID" "imtgw"
GW=$(cat "$WORK/imtgw.addr")
echo "cluster-smoke: imtgw listening on $GW"

SUITE=STREAM
MODES=none,imt,carve-low

echo "cluster-smoke: single-node baseline sweep against shard 1"
"$WORK/imtload" -addr "$S1" -cluster -sweep-suite "$SUITE" -sweep-modes "$MODES" \
    -sweep-out "$WORK/single.txt"

echo "cluster-smoke: gateway sweep, SIGKILLing shard 3 (pid $SHARD3_PID) mid-stream"
"$WORK/imtload" -addr "$GW" -cluster -sweep-suite "$SUITE" -sweep-modes "$MODES" \
    -kill-pid "$SHARD3_PID" -kill-after 1 -min-rerouted 1 \
    -sweep-out "$WORK/cluster.txt"

echo "cluster-smoke: byte-comparing gateway results against the single-node baseline"
if ! cmp -s "$WORK/single.txt" "$WORK/cluster.txt"; then
    echo "cluster-smoke: FAILED: gateway results differ from single-node baseline"
    diff "$WORK/single.txt" "$WORK/cluster.txt" | head -20 || true
    exit 1
fi

echo "cluster-smoke: draining imtgw (SIGTERM)"
kill -TERM "$GW_PID"
DRAIN_OK=0
for _ in $(seq 1 300); do
    if ! kill -0 "$GW_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
if [ "$DRAIN_OK" != 1 ]; then
    echo "cluster-smoke: FAILED: imtgw did not drain within 30s"
    exit 1
fi
wait "$GW_PID" 2>/dev/null || { echo "cluster-smoke: FAILED: imtgw exited nonzero"; cat "$WORK/imtgw.log"; exit 1; }
grep -q 'imtgw: drained:' "$WORK/imtgw.log" || { echo "cluster-smoke: FAILED: no drain line in imtgw log"; cat "$WORK/imtgw.log"; exit 1; }
[ -s "$WORK/gw-metrics.prom" ] || { echo "cluster-smoke: FAILED: gateway metrics not flushed on drain"; exit 1; }
grep -q 'serve_gw_rerouted_total' "$WORK/gw-metrics.prom" || { echo "cluster-smoke: FAILED: serve_gw_* series missing from flushed metrics"; exit 1; }
[ -s "$WORK/gw-manifest.json" ] || { echo "cluster-smoke: FAILED: gateway manifest not flushed on drain"; exit 1; }
grep 'imtgw: drained:' "$WORK/imtgw.log"
echo "cluster-smoke: PASS"
