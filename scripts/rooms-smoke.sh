#!/bin/sh
# rooms-smoke: end-to-end gate for live telemetry rooms (make rooms-smoke).
#
# Boots imtd on an ephemeral port with deliberately small room buffers,
# runs one watched sweep with 8 concurrent /v1/watch subscribers via
# imtload, then SIGTERMs the daemon and asserts a clean drain.
#
# The run fails unless, per the live-telemetry contract:
#   - every watcher sees the identical, gapless frame sequence;
#   - watcher 0, killed mid-stream, re-attaches at its last sequence
#     and still ends up with the same frames as everyone else;
#   - a deliberately stalled watcher is evicted (>=1 room drop in the
#     server's counters) instead of ever slowing the simulation;
#   - /v1/statsz reports the serve_rooms_* counters and the flushed
#     metrics file carries the room metric families;
#   - the daemon exits 0 after SIGTERM.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
IMTD_PID=
cleanup() {
    [ -n "$IMTD_PID" ] && kill -9 "$IMTD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "rooms-smoke: building imtd + imtload"
$GO build -o "$WORK/imtd" ./cmd/imtd
$GO build -o "$WORK/imtload" ./cmd/imtload

echo "rooms-smoke: starting imtd (ephemeral port, -room-buffer 16)"
"$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/imtd.addr" \
    -j 2 -room-buffer 16 \
    -metrics-out "$WORK/metrics.prom" \
    2>"$WORK/imtd.log" &
IMTD_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/imtd.addr" ] && break
    kill -0 "$IMTD_PID" 2>/dev/null || { cat "$WORK/imtd.log"; echo "rooms-smoke: FAILED: imtd died on startup"; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$WORK/imtd.addr")
echo "rooms-smoke: imtd listening on $ADDR"

# A tiny sample interval makes the broadcast dense enough that the
# mid-stream kill always lands and the stalled watcher always backs up.
"$WORK/imtload" -addr "$ADDR" -n 4 -c 2 \
    -sweep-suite STREAM -sweep-modes none,imt \
    -watchers 8 -watch-sample-interval 50 -min-drops 1

echo "rooms-smoke: draining imtd (SIGTERM)"
kill -TERM "$IMTD_PID"
DRAIN_OK=0
for _ in $(seq 1 300); do
    if ! kill -0 "$IMTD_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
if [ "$DRAIN_OK" != 1 ]; then
    echo "rooms-smoke: FAILED: imtd did not drain within 30s"
    exit 1
fi
wait "$IMTD_PID" 2>/dev/null || { echo "rooms-smoke: FAILED: imtd exited nonzero"; cat "$WORK/imtd.log"; exit 1; }
IMTD_PID=
grep -q 'serve_room_frames_total' "$WORK/metrics.prom" || { echo "rooms-smoke: FAILED: room metrics missing from flushed registry"; exit 1; }
grep -q 'serve_room_drops_total' "$WORK/metrics.prom" || { echo "rooms-smoke: FAILED: drop metric missing from flushed registry"; exit 1; }
echo "rooms-smoke: PASS"
