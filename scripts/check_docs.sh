#!/bin/sh
# check_docs: documentation drift gate (make check-docs).
#
# Fails when the docs and the binaries disagree:
#   1. a doc references a path outside the repo (/root/related/ came
#      from the original working notes and does not exist in a
#      checkout) — SNIPPETS.md and ISSUE.md quote external material,
#      CHANGES.md quotes past work verbatim; all three are exempt;
#   2. OPERATIONS.md misses a flag that imtd -h or imtgw -h prints,
#      or documents a flag no serving binary defines;
#   3. README.md / DESIGN.md / EXPERIMENTS.md / OPERATIONS.md mention
#      a backticked `-flag` that no cmd/* binary defines;
#   4. a required doc section or cross-link is missing.
set -eu
cd "$(dirname "$0")/.."

fail=0
err() { echo "check-docs: FAIL: $*" >&2; fail=1; }
tick=$(printf '\140') # backtick, kept out of shell quoting trouble

# ---- 1. out-of-repo path references ---------------------------------
if grep -rn "/root/related" --include='*.md' . \
        | grep -v '^\./SNIPPETS\.md:' | grep -v '^\./ISSUE\.md:' \
        | grep -v '^\./CHANGES\.md:'; then
    err "docs reference /root/related/ paths that do not exist in a checkout"
fi

# ---- flag extraction helpers ----------------------------------------
# Flags a binary defines: flag.String("name", ...) etc., one per line.
flags_of() {
    grep -hoE 'flag\.(String|Bool|Int|Int64|Uint64|Duration|Float64|Func)\("[a-z][a-z0-9-]*"' "$@" \
        | sed -E 's/.*\("([^"]*)"$/\1/' | sort -u
}
# Backticked `-flag` tokens a doc mentions, one per line (bare names).
doc_flags() {
    grep -hoE "${tick}-[a-z][a-z0-9-]*${tick}" "$@" 2>/dev/null \
        | sed -E "s/^${tick}-//; s/${tick}\$//" | sort -u
}

# ---- 2. OPERATIONS.md covers the serving binaries exactly -----------
for bin in imtd imtgw; do
    for f in $(flags_of "cmd/$bin/main.go"); do
        grep -q -- "${tick}-$f${tick}" OPERATIONS.md \
            || err "OPERATIONS.md does not document $bin flag -$f"
    done
done
serving_flags=$(flags_of cmd/imtd/main.go cmd/imtgw/main.go cmd/imtload/main.go)
for f in $(doc_flags OPERATIONS.md); do
    echo "$serving_flags" | grep -Fxq "$f" \
        || err "OPERATIONS.md documents -$f, which no serving binary defines"
done

# ---- 3. no doc mentions a flag no binary defines --------------------
# Union of every cmd/* flag and test-file flag (e.g. conformance
# -update), plus standard go-test flags docs may cite.
all_flags=$(flags_of cmd/*/main.go internal/*/*_test.go; printf 'h\nbench\nbenchmem\nrace\nrun\nfuzz\nfuzztime\n')
for f in $(doc_flags README.md DESIGN.md EXPERIMENTS.md OPERATIONS.md); do
    echo "$all_flags" | grep -Fxq "$f" \
        || err "docs mention -$f, which no cmd/* binary defines"
done

# ---- 4. required sections and cross-links ---------------------------
grep -q 'OPERATIONS.md' README.md    || err "README.md does not link OPERATIONS.md"
grep -q '^## Cluster' DESIGN.md      || err "DESIGN.md is missing the Cluster section"
grep -q 'Reproduce at scale' EXPERIMENTS.md \
    || err "EXPERIMENTS.md is missing the 'Reproduce at scale' section"
grep -q 'cluster-smoke' README.md    || err "README.md does not mention make cluster-smoke"
grep -q 'traces-smoke' README.md     || err "README.md does not mention make traces-smoke"
grep -q '^## Trace store' OPERATIONS.md \
    || err "OPERATIONS.md is missing the Trace store section"
grep -q 'trace_not_found' OPERATIONS.md && grep -q 'trace_quota' OPERATIONS.md && grep -q 'trace_in_use' OPERATIONS.md \
    || err "OPERATIONS.md failure-code table is missing the trace codes"
for series in serve_requests_total serve_jobs_submitted_total \
              serve_room_frames_total serve_gw_rerouted_total \
              serve_gw_trace_pushes_total tracestore_puts_total; do
    grep -q "$series" OPERATIONS.md \
        || err "OPERATIONS.md metrics reference is missing $series"
done

[ "$fail" = 0 ] && echo "check-docs: PASS"
exit "$fail"
