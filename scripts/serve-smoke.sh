#!/bin/sh
# serve-smoke: end-to-end gate for the serving layer (make serve-smoke).
#
# Boots imtd on an ephemeral port, drives it with imtload — a 50-request
# thundering herd over 8 concurrent clients, one streaming sweep, and a
# 24-wide induced overload against a deliberately tiny server
# (-j 2 -queue 2) — then SIGTERMs the daemon and asserts a clean drain.
#
# The run fails unless, per the serving contract:
#   - every load-phase request succeeds (coalesced, cached, or fresh);
#   - the server's own counters show >=1 coalesce hit and >=1 cache hit;
#   - the overload phase observes >=1 rejection, every one a 429
#     carrying Retry-After, and nothing hangs;
#   - the daemon exits 0 after SIGTERM with in-flight work completed.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
IMTD_PID=
cleanup() {
    [ -n "$IMTD_PID" ] && kill -9 "$IMTD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building imtd + imtload"
$GO build -o "$WORK/imtd" ./cmd/imtd
$GO build -o "$WORK/imtload" ./cmd/imtload

echo "serve-smoke: starting imtd (ephemeral port, -j 2 -queue 2)"
"$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/imtd.addr" \
    -j 2 -queue 2 -cache-dir "$WORK/cache" \
    -metrics-out "$WORK/metrics.prom" -manifest-out "$WORK/manifest.json" \
    2>"$WORK/imtd.log" &
IMTD_PID=$!

for _ in $(seq 1 100); do
    [ -s "$WORK/imtd.addr" ] && break
    kill -0 "$IMTD_PID" 2>/dev/null || { cat "$WORK/imtd.log"; echo "serve-smoke: FAILED: imtd died on startup"; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$WORK/imtd.addr")
echo "serve-smoke: imtd listening on $ADDR"

"$WORK/imtload" -addr "$ADDR" -n 50 -c 8 \
    -sweep-suite STREAM -sweep-modes none,carve-low \
    -overload 24 -min-coalesce 1 -min-cache 1

echo "serve-smoke: draining imtd (SIGTERM)"
kill -TERM "$IMTD_PID"
DRAIN_OK=0
for _ in $(seq 1 300); do
    if ! kill -0 "$IMTD_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
if [ "$DRAIN_OK" != 1 ]; then
    echo "serve-smoke: FAILED: imtd did not drain within 30s"
    exit 1
fi
wait "$IMTD_PID" 2>/dev/null || { echo "serve-smoke: FAILED: imtd exited nonzero"; cat "$WORK/imtd.log"; exit 1; }
IMTD_PID=
grep -q 'imtd: drained:' "$WORK/imtd.log" || { echo "serve-smoke: FAILED: no drain line in imtd log"; cat "$WORK/imtd.log"; exit 1; }
[ -s "$WORK/metrics.prom" ] || { echo "serve-smoke: FAILED: metrics not flushed on drain"; exit 1; }
[ -s "$WORK/manifest.json" ] || { echo "serve-smoke: FAILED: manifest not flushed on drain"; exit 1; }
grep 'imtd: drained:' "$WORK/imtd.log"
echo "serve-smoke: PASS"
