#!/bin/sh
# traces-smoke: end-to-end gate for the trace-ingest subsystem
# (make traces-smoke).
#
# Boots two trace-store-enabled imtd shards behind one imtgw gateway,
# then:
#   1. records a catalog workload's trace with imtsim and uploads it
#      through the gateway twice — the second upload must be a
#      content-address hit ("already stored as"), which also proves the
#      gateway targets uploads deterministically;
#   2. runs imtload -traces against the gateway: upload twice (hit
#      asserted server-side via tracestore put-hit counters), stream a
#      trace:<digest> sweep across the 2-shard fleet, and byte-compare
#      the streamed results against an in-process replay of the very
#      same file — sharding and trace routing must not change one bit;
#   3. streams a large synthetic trace (~1GB by default; override with
#      TRACES_SMOKE_BIG_OPS=ops-per-SM) up through the gateway and
#      asserts every process's peak RSS stayed far below the blob size
#      — the chunked codec never materializes a trace in memory;
#   4. SIGTERMs shard 1 and asserts a clean drain with an "imtd:
#      traces:" summary line and tracestore_* series in the flushed
#      metrics.
set -eu

GO=${GO:-go}
BIG_OPS=${TRACES_SMOKE_BIG_OPS:-64000000}   # ops/SM x 2 SMs ~= 1GB on the wire
RSS_LIMIT_KB=524288                         # 512MB: fail if any process peaked above
WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "traces-smoke: building imtd + imtgw + imtsim + imtload"
$GO build -o "$WORK/imtd" ./cmd/imtd
$GO build -o "$WORK/imtgw" ./cmd/imtgw
$GO build -o "$WORK/imtsim" ./cmd/imtsim
$GO build -o "$WORK/imtload" ./cmd/imtload

wait_addr() { # $1 = file, $2 = pid, $3 = name
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        kill -0 "$2" 2>/dev/null || { cat "${1%.addr}.log" 2>/dev/null; echo "traces-smoke: FAILED: $3 died on startup"; exit 1; }
        sleep 0.1
    done
    echo "traces-smoke: FAILED: $3 never wrote its address file"; exit 1
}

echo "traces-smoke: starting 2 trace-enabled imtd shards (ephemeral ports)"
"$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/shard1.addr" -j 2 \
    -cache-dir "$WORK/cache1" -trace-dir "$WORK/traces1" \
    -metrics-out "$WORK/shard1-metrics.prom" 2>"$WORK/shard1.log" &
SHARD1_PID=$!
PIDS="$PIDS $SHARD1_PID"
"$WORK/imtd" -addr 127.0.0.1:0 -addr-file "$WORK/shard2.addr" -j 2 \
    -cache-dir "$WORK/cache2" -trace-dir "$WORK/traces2" 2>"$WORK/shard2.log" &
SHARD2_PID=$!
PIDS="$PIDS $SHARD2_PID"
wait_addr "$WORK/shard1.addr" "$SHARD1_PID" "shard 1"
wait_addr "$WORK/shard2.addr" "$SHARD2_PID" "shard 2"
S1=$(cat "$WORK/shard1.addr"); S2=$(cat "$WORK/shard2.addr")
echo "traces-smoke: shards on $S1 $S2"

echo "traces-smoke: starting imtgw over the fleet"
"$WORK/imtgw" -addr 127.0.0.1:0 -addr-file "$WORK/imtgw.addr" \
    -shards "http://$S1,http://$S2" -probe-interval 250ms \
    2>"$WORK/imtgw.log" &
GW_PID=$!
PIDS="$PIDS $GW_PID"
wait_addr "$WORK/imtgw.addr" "$GW_PID" "imtgw"
GW=$(cat "$WORK/imtgw.addr")
echo "traces-smoke: imtgw listening on $GW"

WORKLOAD=stream-copy-16MB
MODES=none,imt,carve-low

echo "traces-smoke: recording $WORKLOAD and uploading through the gateway (twice)"
"$WORK/imtsim" -workload "$WORKLOAD" -record "$WORK/rec.trc" -upload "http://$GW" \
    | tee "$WORK/upload1.out"
grep -q ' stored as trace:' "$WORK/upload1.out" || { echo "traces-smoke: FAILED: first upload printed no digest"; exit 1; }
"$WORK/imtsim" -workload "$WORKLOAD" -record "$WORK/rec.trc" -upload "http://$GW" \
    | tee "$WORK/upload2.out"
grep -q 'already stored as trace:' "$WORK/upload2.out" || {
    echo "traces-smoke: FAILED: re-uploading identical bytes through the gateway was not a content-address hit"; exit 1; }

echo "traces-smoke: trace sweep through the gateway + ~$((BIG_OPS * 2 * 8 / 1048576))MB streamed synthetic upload"
"$WORK/imtload" -addr "$GW" -traces -trace-file "$WORK/rec.trc" \
    -sweep-modes "$MODES" -trace-big-ops "$BIG_OPS"

echo "traces-smoke: checking peak RSS stayed bounded while a ~GB blob streamed through"
for pair in "shard1:$SHARD1_PID" "shard2:$SHARD2_PID" "imtgw:$GW_PID"; do
    name=${pair%%:*}; pid=${pair##*:}
    hwm=$(awk '/VmHWM/{print $2}' "/proc/$pid/status")
    echo "traces-smoke: $name peak RSS ${hwm}KB"
    if [ "$hwm" -gt "$RSS_LIMIT_KB" ]; then
        echo "traces-smoke: FAILED: $name peaked at ${hwm}KB (> ${RSS_LIMIT_KB}KB): the upload path materialized the blob"
        exit 1
    fi
done

echo "traces-smoke: draining shard 1 (SIGTERM)"
kill -TERM "$SHARD1_PID"
DRAIN_OK=0
for _ in $(seq 1 300); do
    if ! kill -0 "$SHARD1_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
if [ "$DRAIN_OK" != 1 ]; then
    echo "traces-smoke: FAILED: shard 1 did not drain within 30s"
    exit 1
fi
wait "$SHARD1_PID" 2>/dev/null || { echo "traces-smoke: FAILED: shard 1 exited nonzero"; cat "$WORK/shard1.log"; exit 1; }
grep -q 'imtd: traces:' "$WORK/shard1.log" || { echo "traces-smoke: FAILED: no trace-store drain line in shard 1 log"; cat "$WORK/shard1.log"; exit 1; }
[ -s "$WORK/shard1-metrics.prom" ] || { echo "traces-smoke: FAILED: shard 1 metrics not flushed on drain"; exit 1; }
grep -q 'tracestore_puts_total' "$WORK/shard1-metrics.prom" || { echo "traces-smoke: FAILED: tracestore_* series missing from flushed metrics"; exit 1; }
grep 'imtd: traces:' "$WORK/shard1.log"
echo "traces-smoke: PASS"
