// Package endtoend models the §4.2 "End-to-End ECC" organization of
// Figure 6a: AFT-ECC check bits are generated once at the SM on a store
// and travel WITH the data through the write-back L2, DRAM, and back up
// through the L1; decoding happens only at the point of use, with the
// key tag taken from the consuming pointer.
//
// The property this architecture exists to satisfy: "End-to-end ECC must
// be used past the point of the first write-back cache … upon a dirty
// writeback the ECC-embedded tag value cannot be safely extracted from
// the AFT-ECC check-bits." A dirty line's lock tag is unknown to the
// cache, so the hierarchy must never need to re-encode — and in this
// model it never does: codewords move verbatim between levels, and the
// package counts encode/decode invocations to prove it.
package endtoend
