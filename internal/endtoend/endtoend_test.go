package endtoend

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/imt"
)

func newH(t *testing.T, l1, l2 int) *Hierarchy {
	t.Helper()
	h, err := New(imt.IMT16, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func sec(b byte) []byte {
	d := make([]byte, 32)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestStoreLoadThroughHierarchy(t *testing.T) {
	h := newH(t, 4, 8)
	cfg := h.Config()
	p := cfg.MakePointer(0x100, 0x77)
	if err := h.Store(p, sec(0xAB)); err != nil {
		t.Fatal(err)
	}
	got, err := h.Load(p)
	if err != nil || !bytes.Equal(got, sec(0xAB)) {
		t.Fatalf("load: %v %v", got, err)
	}
	// Exactly one encode (the store) and one decode (the load).
	if h.Encodes != 1 || h.Decodes != 1 {
		t.Fatalf("codec counts: enc=%d dec=%d, want 1/1", h.Encodes, h.Decodes)
	}
}

func TestDirtyWritebackCarriesTagImplicitly(t *testing.T) {
	// THE §4.2 property: dirty lines with embedded (unknown) lock tags
	// survive eviction to DRAM and decode correctly afterwards — with no
	// intermediate encode/decode.
	h := newH(t, 2, 4)
	cfg := h.Config()
	victim := cfg.MakePointer(0, 0x1111)
	if err := h.Store(victim, sec(0x5A)); err != nil {
		t.Fatal(err)
	}
	encsAfterStore := h.Encodes

	// Evict it from the L2 by storing 4 more sectors under other tags.
	for i := uint64(1); i <= 4; i++ {
		if err := h.Store(cfg.MakePointer(i*32, 0x2000+i), sec(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !h.Present("dram", 0) {
		t.Fatal("victim was not written back")
	}
	if h.Writebacks == 0 {
		t.Fatal("no writeback counted")
	}
	// The writeback must not have encoded or decoded anything.
	if h.Encodes != encsAfterStore+4 {
		t.Fatalf("writeback path encoded: %d", h.Encodes)
	}
	if h.Decodes != 0 {
		t.Fatalf("writeback path decoded: %d", h.Decodes)
	}
	// The tag survived the round trip implicitly.
	got, err := h.Load(victim)
	if err != nil || got[0] != 0x5A {
		t.Fatalf("post-writeback load: %v %v", got, err)
	}
	// And a wrong key still faults on the DRAM copy.
	_, err = h.Load(cfg.MakePointer(0, 0x2222))
	var f *imt.Fault
	if !errors.As(err, &f) || f.Kind != imt.FaultTMM {
		t.Fatalf("wrong key on written-back line: %v", err)
	}
	if f.LockTagEstimate != 0x1111 {
		t.Fatalf("lock estimate %#x", f.LockTagEstimate)
	}
}

func TestErrorsInjectedAtAnyLevelCorrectAtSM(t *testing.T) {
	// End-to-end decode means a single-bit flip anywhere — L1, L2 or
	// DRAM — is corrected at the same single decode point.
	for _, lvl := range []string{"l1", "l2", "dram"} {
		h := newH(t, 2, 4)
		cfg := h.Config()
		p := cfg.MakePointer(0x40, 0x3)
		if err := h.Store(p, sec(0xC3)); err != nil {
			t.Fatal(err)
		}
		switch lvl {
		case "dram":
			h.FlushAll() // push the codeword to DRAM first
		case "l2":
			// Evict the clean L1 copy (capacity 2) so the load must come
			// from the corrupted L2 line.
			if _, err := h.Load(cfg.MakePointer(0x1000, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Load(cfg.MakePointer(0x1020, 0)); err != nil {
				t.Fatal(err)
			}
			if h.Present("l1", 0x40) {
				t.Fatal("victim still resident in L1")
			}
		}
		if err := h.InjectError(lvl, 0x40, 17); err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		got, err := h.Load(p)
		if err != nil || !bytes.Equal(got, sec(0xC3)) {
			t.Fatalf("%s: corrupted load: %v %v", lvl, got, err)
		}
		if h.Corrected != 1 {
			t.Fatalf("%s: corrected = %d", lvl, h.Corrected)
		}
	}
}

func TestFlushAllPreservesTags(t *testing.T) {
	h := newH(t, 8, 16)
	cfg := h.Config()
	ptrs := make([]imt.Pointer, 10)
	for i := range ptrs {
		ptrs[i] = cfg.MakePointer(uint64(i)*32, uint64(0x100+i))
		if err := h.Store(ptrs[i], sec(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	h.FlushAll()
	for i, p := range ptrs {
		if !h.Present("dram", uint64(i)*32) {
			t.Fatalf("sector %d not flushed", i)
		}
		got, err := h.Load(p)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("sector %d after flush: %v %v", i, got, err)
		}
	}
}

func TestUnwrittenMemoryTagZero(t *testing.T) {
	h := newH(t, 2, 4)
	cfg := h.Config()
	if _, err := h.Load(cfg.MakePointer(0x1000, 0)); err != nil {
		t.Fatalf("scrubbed memory under tag 0: %v", err)
	}
	if _, err := h.Load(cfg.MakePointer(0x1020, 5)); err == nil {
		t.Fatal("scrubbed memory under nonzero tag should TMM")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(imt.IMT16, 0, 4); err == nil {
		t.Error("zero-capacity cache must fail")
	}
	h := newH(t, 2, 4)
	cfg := h.Config()
	if err := h.Store(cfg.MakePointer(0x11, 0), sec(0)); err == nil {
		t.Error("unaligned store must fail")
	}
	if err := h.Store(cfg.MakePointer(0x20, 0), []byte{1}); err == nil {
		t.Error("short store must fail")
	}
	if err := h.InjectError("l3", 0, 0); err == nil {
		t.Error("unknown level must fail")
	}
	if err := h.InjectError("l1", 0x20, 0); err == nil {
		t.Error("absent sector must fail")
	}
	if err := h.InjectError("l1", 0x21, 0); err == nil {
		t.Error("unaligned inject must fail")
	}
	if h.Present("l3", 0) || h.Present("l1", 3) {
		t.Error("Present on bad input should be false")
	}
}
