package endtoend

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gf2"
	"repro/internal/imt"
)

// Codeword is a sector's data plus its traveling check bits. The lock
// tag is embedded in Check and deliberately NOT represented.
type Codeword struct {
	Data  []byte
	Check uint64
}

func (c Codeword) clone() Codeword {
	return Codeword{Data: append([]byte(nil), c.Data...), Check: c.Check}
}

// Hierarchy is a functional three-level memory: sectored write-through
// L1 → write-back L2 → DRAM. Capacities are in sectors; both caches are
// fully associative with FIFO eviction (this is a correctness model of
// tag propagation, not a timing model — internal/gpusim owns timing).
type Hierarchy struct {
	cfg  imt.Config
	code *core.Code

	l1, l2 *level
	dram   map[uint64]Codeword

	// Encodes and Decodes count codec invocations: the end-to-end claim
	// is that both happen only at the SM boundary, exactly once per
	// store and once per load (plus RMW partials).
	Encodes, Decodes uint64
	// Writebacks counts dirty L2 evictions — each moves a codeword to
	// DRAM without any decode.
	Writebacks uint64
	Corrected  uint64
}

type level struct {
	capacity int
	order    []uint64 // FIFO
	lines    map[uint64]*line
}

type line struct {
	cw    Codeword
	dirty bool
}

func newLevel(capacity int) *level {
	return &level{capacity: capacity, lines: make(map[uint64]*line)}
}

// New builds a hierarchy for an IMT configuration with the given cache
// capacities in sectors.
func New(cfg imt.Config, l1Sectors, l2Sectors int) (*Hierarchy, error) {
	code, err := cfg.NewCode()
	if err != nil {
		return nil, err
	}
	if l1Sectors < 1 || l2Sectors < 1 {
		return nil, fmt.Errorf("endtoend: cache capacities must be ≥ 1 sector")
	}
	return &Hierarchy{
		cfg:  cfg,
		code: code,
		l1:   newLevel(l1Sectors),
		l2:   newLevel(l2Sectors),
		dram: make(map[uint64]Codeword),
	}, nil
}

// Config returns the IMT configuration.
func (h *Hierarchy) Config() imt.Config { return h.cfg }

func (h *Hierarchy) sectorOf(addr uint64) (uint64, error) {
	g := uint64(h.cfg.GranuleBytes)
	if addr%g != 0 {
		return 0, fmt.Errorf("endtoend: address %#x not %d-byte aligned", addr, g)
	}
	return addr / g, nil
}

// encodeAtSM is the single encoder of Figure 6a's SM box.
func (h *Hierarchy) encodeAtSM(data []byte, keyTag uint64) Codeword {
	h.Encodes++
	bv := gf2.BitVecFromBytes(h.cfg.DataBits, data)
	return Codeword{Data: append([]byte(nil), data...), Check: h.code.Encode(bv, keyTag)}
}

// Store writes a full sector: encode once at the SM, install in the L1
// (write-through) and L2 (write-back dirty). No other level ever encodes.
func (h *Hierarchy) Store(p imt.Pointer, data []byte) error {
	if len(data) != h.cfg.GranuleBytes {
		return fmt.Errorf("endtoend: store needs %d bytes", h.cfg.GranuleBytes)
	}
	sec, err := h.sectorOf(h.cfg.Addr(p))
	if err != nil {
		return err
	}
	cw := h.encodeAtSM(data, h.cfg.KeyTag(p))
	h.installL1(sec, cw)
	h.installL2(sec, cw, true)
	return nil
}

// Load reads a full sector: the codeword is fetched (L1 → L2 → DRAM)
// verbatim and decoded exactly once, at the SM, under p's key tag.
func (h *Hierarchy) Load(p imt.Pointer) ([]byte, error) {
	sec, err := h.sectorOf(h.cfg.Addr(p))
	if err != nil {
		return nil, err
	}
	cw, err := h.fetch(sec)
	if err != nil {
		return nil, err
	}
	h.Decodes++
	bv := gf2.BitVecFromBytes(h.cfg.DataBits, cw.Data)
	res := h.code.Decode(bv, cw.Check, h.cfg.KeyTag(p))
	switch res.Status {
	case core.StatusOK:
		return append([]byte(nil), cw.Data...), nil
	case core.StatusCorrected:
		h.Corrected++
		corrected := bv.Bytes()[:h.cfg.GranuleBytes]
		// Scrub the repaired codeword back into the L1 copy.
		fixed := Codeword{Data: append([]byte(nil), corrected...), Check: cw.Check}
		if res.FlippedBit >= h.code.K() {
			fixed.Check ^= 1 << uint(res.FlippedBit-h.code.K())
		}
		h.installL1(sec, fixed)
		return append([]byte(nil), corrected...), nil
	case core.StatusTMM:
		return nil, &imt.Fault{
			Kind: imt.FaultTMM, Addr: h.cfg.Addr(p), KeyTag: h.cfg.KeyTag(p),
			Syndrome: res.Syndrome, LockTagEstimate: res.LockTagEstimate,
		}
	default:
		return nil, &imt.Fault{
			Kind: imt.FaultDUE, Addr: h.cfg.Addr(p), KeyTag: h.cfg.KeyTag(p),
			Syndrome: res.Syndrome, LockTagEstimate: h.code.TagMask() + 1,
		}
	}
}

// fetch moves a codeword up the hierarchy without touching its bits.
func (h *Hierarchy) fetch(sec uint64) (Codeword, error) {
	if l, ok := h.l1.lines[sec]; ok {
		return l.cw, nil
	}
	if l, ok := h.l2.lines[sec]; ok {
		h.installL1(sec, l.cw)
		return l.cw, nil
	}
	cw, ok := h.dram[sec]
	if !ok {
		// Scrubbed memory: zero data under tag 0, encoded lazily. This is
		// initialization, not a datapath encode; count it anyway for
		// strict accounting via a dedicated path.
		zero := make([]byte, h.cfg.GranuleBytes)
		bv := gf2.BitVecFromBytes(h.cfg.DataBits, zero)
		cw = Codeword{Data: zero, Check: h.code.Encode(bv, 0)}
		h.dram[sec] = cw
	}
	h.installL2(sec, cw, false)
	h.installL1(sec, cw)
	return cw, nil
}

func (h *Hierarchy) installL1(sec uint64, cw Codeword) {
	if l, ok := h.l1.lines[sec]; ok {
		l.cw = cw.clone()
		return
	}
	if len(h.l1.lines) >= h.l1.capacity {
		victim := h.l1.order[0]
		h.l1.order = h.l1.order[1:]
		// Write-through L1: evictions are silent drops.
		delete(h.l1.lines, victim)
	}
	h.l1.lines[sec] = &line{cw: cw.clone()}
	h.l1.order = append(h.l1.order, sec)
}

func (h *Hierarchy) installL2(sec uint64, cw Codeword, dirty bool) {
	if l, ok := h.l2.lines[sec]; ok {
		l.cw = cw.clone()
		l.dirty = l.dirty || dirty
		return
	}
	if len(h.l2.lines) >= h.l2.capacity {
		victim := h.l2.order[0]
		h.l2.order = h.l2.order[1:]
		vl := h.l2.lines[victim]
		delete(h.l2.lines, victim)
		if vl.dirty {
			// THE point of end-to-end ECC: the victim's lock tag is
			// unknown here, and it does not matter — the codeword moves
			// to DRAM verbatim, no decode, no re-encode.
			h.Writebacks++
			h.dram[victim] = vl.cw.clone()
		}
	}
	h.l2.lines[sec] = &line{cw: cw.clone(), dirty: dirty}
	h.l2.order = append(h.l2.order, sec)
}

// FlushAll writes every dirty L2 line back to DRAM (verbatim) and drops
// both caches — a kernel-boundary flush.
func (h *Hierarchy) FlushAll() {
	for sec, l := range h.l2.lines {
		if l.dirty {
			h.Writebacks++
			h.dram[sec] = l.cw.clone()
		}
	}
	h.l1 = newLevel(h.l1.capacity)
	h.l2 = newLevel(h.l2.capacity)
}

// InjectError flips a physical codeword bit at the given level ("l1",
// "l2", or "dram"). The sector must be present at that level.
func (h *Hierarchy) InjectError(levelName string, addr uint64, bit int) error {
	sec, err := h.sectorOf(addr)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= h.code.PhysicalBits() {
		return fmt.Errorf("endtoend: bit %d out of range", bit)
	}
	var cw *Codeword
	switch levelName {
	case "l1":
		if l, ok := h.l1.lines[sec]; ok {
			cw = &l.cw
		}
	case "l2":
		if l, ok := h.l2.lines[sec]; ok {
			cw = &l.cw
		}
	case "dram":
		if d, ok := h.dram[sec]; ok {
			d = d.clone()
			h.dram[sec] = d
			cw = &d
			defer func() { h.dram[sec] = *cw }()
		}
	default:
		return fmt.Errorf("endtoend: unknown level %q", levelName)
	}
	if cw == nil {
		return fmt.Errorf("endtoend: sector %#x not present in %s", addr, levelName)
	}
	if bit < h.code.K() {
		cw.Data[bit/8] ^= 1 << uint(bit%8)
	} else {
		cw.Check ^= 1 << uint(bit-h.code.K())
	}
	return nil
}

// Present reports whether the sector is resident at the level.
func (h *Hierarchy) Present(levelName string, addr uint64) bool {
	sec, err := h.sectorOf(addr)
	if err != nil {
		return false
	}
	switch levelName {
	case "l1":
		_, ok := h.l1.lines[sec]
		return ok
	case "l2":
		_, ok := h.l2.lines[sec]
		return ok
	case "dram":
		_, ok := h.dram[sec]
		return ok
	}
	return false
}
