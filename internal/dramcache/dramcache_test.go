package dramcache

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func newCache(t *testing.T, slots int) (*Cache, *MapBacking) {
	t.Helper()
	code, err := core.NewCode(256, 16, 15, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backing := NewMapBacking(32)
	c, err := New(code, backing, slots)
	if err != nil {
		t.Fatal(err)
	}
	return c, backing
}

func sector(b byte) []byte {
	d := make([]byte, 32)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestReadThroughAndHit(t *testing.T) {
	c, backing := newCache(t, 64)
	if err := backing.WriteSector(0x100, sector(0xAA)); err != nil {
		t.Fatal(err)
	}
	backing.Writes = 0
	got, err := c.Read(0x100)
	if err != nil || !bytes.Equal(got, sector(0xAA)) {
		t.Fatalf("first read: %v %v", got, err)
	}
	if c.Misses != 1 || backing.Reads != 1 {
		t.Fatalf("first read should miss: %+v", c)
	}
	got, err = c.Read(0x100)
	if err != nil || !bytes.Equal(got, sector(0xAA)) {
		t.Fatal("second read failed")
	}
	if c.Hits != 1 || backing.Reads != 1 {
		t.Fatalf("second read should hit without backing traffic: hits=%d reads=%d", c.Hits, backing.Reads)
	}
}

func TestConflictDetectedByTMM(t *testing.T) {
	c, backing := newCache(t, 4)
	// Two addresses mapping to the same slot: they differ only in the
	// implicit AFT-ECC tag.
	a := uint64(0)
	b := uint64(4 * 32) // same slot (nSlots=4), next tag
	if err := backing.WriteSector(a, sector(1)); err != nil {
		t.Fatal(err)
	}
	if err := backing.WriteSector(b, sector(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(a); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(b)
	if err != nil || got[0] != 2 {
		t.Fatalf("conflicting read: %v %v", got, err)
	}
	if c.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1 (TMM-as-miss)", c.Conflicts)
	}
	// And back: a misses again, with the right data (no silent aliasing).
	got, err = c.Read(a)
	if err != nil || got[0] != 1 {
		t.Fatalf("re-read of a: %v %v", got, err)
	}
	if c.Conflicts != 2 {
		t.Fatalf("conflicts = %d", c.Conflicts)
	}
}

func TestWriteThrough(t *testing.T) {
	c, backing := newCache(t, 8)
	if err := c.Write(0x40, sector(7)); err != nil {
		t.Fatal(err)
	}
	if backing.Writes != 1 {
		t.Fatal("write did not reach the backing store")
	}
	// Cached: reading hits without a backing read.
	backing.Reads = 0
	got, err := c.Read(0x40)
	if err != nil || got[5] != 7 {
		t.Fatal("read after write failed")
	}
	if backing.Reads != 0 || c.Hits != 1 {
		t.Fatal("read after write should hit")
	}
	if err := c.Write(0x40, sector(7)[:8]); err == nil {
		t.Error("short write must be rejected")
	}
}

func TestSingleBitErrorCorrectedInCache(t *testing.T) {
	c, _ := newCache(t, 8)
	if err := c.Write(0x80, sector(0x55)); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectError(0x80, 9); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0x80)
	if err != nil || !bytes.Equal(got, sector(0x55)) {
		t.Fatal("cache-resident single-bit error not corrected")
	}
	if c.Hits != 1 {
		t.Fatal("corrected read should count as a hit")
	}
}

func TestCorruptedLineRefetched(t *testing.T) {
	c, backing := newCache(t, 8)
	if err := c.Write(0xC0, sector(0x66)); err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 2, 3} {
		if err := c.InjectError(0xC0, b); err != nil {
			t.Fatal(err)
		}
	}
	backing.Reads = 0
	got, err := c.Read(0xC0)
	if err != nil || !bytes.Equal(got, sector(0x66)) {
		t.Fatal("corrupted line not recovered from write-through backing")
	}
	if backing.Reads != 1 || c.Misses != 1 {
		t.Fatal("corrupted line should refetch")
	}
}

func TestAddressBounds(t *testing.T) {
	c, _ := newCache(t, 4)
	if c.MaxAddr() != 4*(1<<15)*32 {
		t.Fatalf("MaxAddr = %#x", c.MaxAddr())
	}
	if _, err := c.Read(c.MaxAddr()); err == nil {
		t.Error("address beyond the tag-addressable bound must be rejected")
	}
	if _, err := c.Read(0x11); err == nil {
		t.Error("unaligned address must be rejected")
	}
	if err := c.InjectError(0x0, 0); err == nil {
		t.Error("inject into an empty slot must fail")
	}
	code, err := core.NewCode(256, 16, 15, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(code, NewMapBacking(32), 0); err == nil {
		t.Error("zero slots must be rejected")
	}
}

func TestSweepOverManyTags(t *testing.T) {
	c, backing := newCache(t, 2)
	// Walk 32 lines that all collide in 2 slots: every access after the
	// first two is a conflict miss, and data never aliases.
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < 32; i++ {
			addr := i * 2 * 32 // all map to slot 0
			if round == 0 {
				if err := backing.WriteSector(addr, sector(byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			got, err := c.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(i) {
				t.Fatalf("aliased data: addr %#x got %d", addr, got[0])
			}
		}
	}
	if c.Hits != 0 {
		t.Fatalf("hits = %d, want 0 under pure conflicts", c.Hits)
	}
}
