// Package dramcache implements the paper's §7.4 "Tags for Low-Cost DRAM
// Caches" extension: a direct-mapped, write-through DRAM cache with
// fine-grained 32B lines whose cache tag (the upper address bits that
// distinguish which backing line occupies a slot) is embedded in the ECC
// check bits via AFT-ECC — so the tag check rides along with the regular
// DRAM read and needs no tag storage at all.
//
// A lookup decodes the resident sector under the expected tag of the
// requested address: StatusOK means hit; StatusTMM means a different
// address is resident (miss, fill from backing); single-bit errors still
// correct. Per the paper's constraint the cache is write-through — a
// dirty line's tag could not be extracted safely on writeback, so writes
// always update the backing store.
package dramcache
