package dramcache

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gf2"
)

// Backing is the slow memory behind the cache.
type Backing interface {
	ReadSector(addr uint64) ([]byte, error)
	WriteSector(addr uint64, data []byte) error
}

// MapBacking is a simple in-memory Backing that counts accesses.
type MapBacking struct {
	sectors       map[uint64][]byte
	Reads, Writes uint64
	size          int
}

// NewMapBacking returns an empty backing store for sectorBytes sectors.
func NewMapBacking(sectorBytes int) *MapBacking {
	return &MapBacking{sectors: make(map[uint64][]byte), size: sectorBytes}
}

// ReadSector implements Backing (absent sectors read as zero).
func (b *MapBacking) ReadSector(addr uint64) ([]byte, error) {
	b.Reads++
	if d, ok := b.sectors[addr]; ok {
		return append([]byte(nil), d...), nil
	}
	return make([]byte, b.size), nil
}

// WriteSector implements Backing.
func (b *MapBacking) WriteSector(addr uint64, data []byte) error {
	b.Writes++
	if len(data) != b.size {
		return fmt.Errorf("dramcache: backing write of %d bytes, want %d", len(data), b.size)
	}
	b.sectors[addr] = append([]byte(nil), data...)
	return nil
}

// Cache is the AFT-ECC-tagged DRAM cache.
type Cache struct {
	code    *core.Code
	backing Backing
	slots   []slot
	nSlots  uint64

	Hits, Misses, Conflicts uint64
}

type slot struct {
	valid bool
	data  []byte
	check uint64
}

// New builds a cache with nSlots direct-mapped 32B lines over the
// backing store. The addressable backing span is nSlots × 2^TS sectors:
// beyond that, distinct addresses would share both slot and tag and
// alias — New enforces the bound via MaxAddr.
func New(code *core.Code, backing Backing, nSlots int) (*Cache, error) {
	if nSlots < 1 {
		return nil, fmt.Errorf("dramcache: need ≥ 1 slot")
	}
	return &Cache{
		code:    code,
		backing: backing,
		slots:   make([]slot, nSlots),
		nSlots:  uint64(nSlots),
	}, nil
}

// SectorBytes returns the line size.
func (c *Cache) SectorBytes() int { return c.code.K() / 8 }

// MaxAddr returns the exclusive upper bound of cacheable byte addresses:
// addresses at or above it cannot be disambiguated by the TS-bit tag.
func (c *Cache) MaxAddr() uint64 {
	return c.nSlots * (c.code.TagMask() + 1) * uint64(c.SectorBytes())
}

func (c *Cache) slotAndTag(addr uint64) (uint64, uint64, error) {
	sb := uint64(c.SectorBytes())
	if addr%sb != 0 {
		return 0, 0, fmt.Errorf("dramcache: address %#x not %d-byte aligned", addr, sb)
	}
	if addr >= c.MaxAddr() {
		return 0, 0, fmt.Errorf("dramcache: address %#x beyond the %#x tag-addressable bound", addr, c.MaxAddr())
	}
	sector := addr / sb
	return sector % c.nSlots, (sector / c.nSlots) & c.code.TagMask(), nil
}

// Read returns the sector at addr, filling from backing on a miss. The
// hit/miss decision is the AFT-ECC decode itself: no stored cache tags.
func (c *Cache) Read(addr uint64) ([]byte, error) {
	si, tag, err := c.slotAndTag(addr)
	if err != nil {
		return nil, err
	}
	s := &c.slots[si]
	if s.valid {
		bv := gf2.BitVecFromBytes(c.code.K(), s.data)
		res := c.code.Decode(bv, s.check, tag)
		switch res.Status {
		case core.StatusOK:
			c.Hits++
			return append([]byte(nil), s.data...), nil
		case core.StatusCorrected:
			c.Hits++
			corrected := bv.Bytes()[:c.SectorBytes()]
			s.data = append([]byte(nil), corrected...)
			if res.FlippedBit >= c.code.K() {
				s.check ^= 1 << uint(res.FlippedBit-c.code.K())
			}
			return append([]byte(nil), corrected...), nil
		case core.StatusTMM:
			// A different backing line is resident: a conflict miss.
			c.Conflicts++
		default:
			// Corrupted beyond repair: safe to refetch — write-through
			// guarantees the backing copy is current.
		}
	}
	c.Misses++
	data, err := c.backing.ReadSector(addr)
	if err != nil {
		return nil, err
	}
	bv := gf2.BitVecFromBytes(c.code.K(), data)
	*s = slot{valid: true, data: append([]byte(nil), data...), check: c.code.Encode(bv, tag)}
	return data, nil
}

// Write stores a full sector write-through: the backing is always
// updated, and the cache line is refreshed under the address's tag.
func (c *Cache) Write(addr uint64, data []byte) error {
	if len(data) != c.SectorBytes() {
		return fmt.Errorf("dramcache: write of %d bytes, want %d", len(data), c.SectorBytes())
	}
	si, tag, err := c.slotAndTag(addr)
	if err != nil {
		return err
	}
	if err := c.backing.WriteSector(addr, data); err != nil {
		return err
	}
	bv := gf2.BitVecFromBytes(c.code.K(), data)
	c.slots[si] = slot{valid: true, data: append([]byte(nil), data...), check: c.code.Encode(bv, tag)}
	return nil
}

// InjectError flips a physical bit of the slot holding addr (tests).
func (c *Cache) InjectError(addr uint64, bit int) error {
	si, _, err := c.slotAndTag(addr)
	if err != nil {
		return err
	}
	s := &c.slots[si]
	if !s.valid {
		return fmt.Errorf("dramcache: slot for %#x is empty", addr)
	}
	if bit < 0 || bit >= c.code.PhysicalBits() {
		return fmt.Errorf("dramcache: bit %d out of range", bit)
	}
	if bit < c.code.K() {
		s.data[bit/8] ^= 1 << uint(bit%8)
	} else {
		s.check ^= 1 << uint(bit-c.code.K())
	}
	return nil
}
