// Package workload provides the synthetic workload catalog standing in
// for the paper's 193 proprietary application traces (§5.1): MLPerf-style
// ML kernels, HPC and sparse-linear-algebra kernels, and the STREAM
// microbenchmarks. Each workload is a parameterized trace generator whose
// locality, access granularity, write mix, arithmetic intensity and
// footprint place it in one of the regimes that drive Figure 8:
// compute-bound (low slowdown), bandwidth-bound streaming (slowdown ≈
// tag read bloat), and fine-grained random access (poor tag-sector reuse,
// the largest slowdowns).
//
// It also carries each workload's allocation-size model, from which the
// §5 footprint-bloat statistics are reproduced.
package workload
