package workload

import (
	"math"
	"testing"

	"repro/internal/gpusim"
)

func TestCatalogPopulation(t *testing.T) {
	cat := Catalog()
	if len(cat) != CatalogSize {
		t.Fatalf("catalog = %d, want %d", len(cat), CatalogSize)
	}
	if n := len(BySuite(SuiteStream)); n != 8 {
		t.Errorf("STREAM = %d, want 8", n)
	}
	if n := len(BySuite(SuiteMLPerf)); n != 60 {
		t.Errorf("MLPerf = %d, want 60", n)
	}
	if n := len(BySuite(SuiteHPC)); n != 125 {
		t.Errorf("HPC+SLA = %d, want 125", n)
	}
	if BySuite("no-such-suite") != nil {
		t.Error("unknown suite should be nil")
	}
	suiteNames := Suites()
	if len(suiteNames) != 3 {
		t.Fatalf("Suites() = %v, want 3 names", suiteNames)
	}
	var total int
	for _, s := range suiteNames {
		total += len(BySuite(s))
	}
	if total != CatalogSize {
		t.Errorf("suites partition %d workloads, want %d", total, CatalogSize)
	}
	seen := map[string]bool{}
	ids := map[int]bool{}
	for _, w := range cat {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if ids[w.ID] || w.ID == 0 {
			t.Errorf("bad or duplicate ID %d", w.ID)
		}
		ids[w.ID] = true
		if w.OpsPerSM <= 0 || w.FootprintBytes == 0 {
			t.Errorf("%s: degenerate parameters", w.Name)
		}
		if len(w.AllocSizes) == 0 {
			t.Errorf("%s: missing allocation model", w.Name)
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	w := Catalog()[20]
	a := w.Traces(2)
	b := w.Traces(2)
	for sm := 0; sm < 2; sm++ {
		for i := 0; i < 50; i++ {
			opA, okA := a[sm].Next()
			opB, okB := b[sm].Next()
			if okA != okB || opA.Store != opB.Store || opA.Compute != opB.Compute {
				t.Fatalf("trace nondeterministic at sm=%d op=%d", sm, i)
			}
			if len(opA.Addrs) != len(opB.Addrs) {
				t.Fatalf("address count differs at sm=%d op=%d", sm, i)
			}
			for j := range opA.Addrs {
				if opA.Addrs[j] != opB.Addrs[j] {
					t.Fatalf("address differs at sm=%d op=%d addr=%d", sm, i, j)
				}
			}
		}
	}
}

func TestTracesStayInFootprint(t *testing.T) {
	for _, w := range Catalog() {
		traces := w.Traces(2)
		limit := w.FootprintBytes + 4096 // patterns may round tiny footprints up
		for sm, tr := range traces {
			for i := 0; i < 200; i++ {
				op, ok := tr.Next()
				if !ok {
					break
				}
				if len(op.Addrs) == 0 {
					t.Fatalf("%s sm%d op%d: empty op", w.Name, sm, i)
				}
				for _, a := range op.Addrs {
					if a >= limit*2 { // strided tiles may shift by sm*tile
						t.Fatalf("%s sm%d op%d: address %#x far outside footprint %#x", w.Name, sm, i, a, w.FootprintBytes)
					}
				}
			}
		}
	}
}

func TestEveryWorkloadSimulates(t *testing.T) {
	// Smoke-run a representative from each pattern class on a small
	// machine to guarantee the generator/simulator contract holds.
	cfg := gpusim.DefaultConfig()
	byPattern := map[Pattern]Workload{}
	for _, w := range Catalog() {
		if _, ok := byPattern[w.Pattern]; !ok {
			w.OpsPerSM = 300
			byPattern[w.Pattern] = w
		}
	}
	for p, w := range byPattern {
		sim, err := gpusim.New(cfg, w.Traces(cfg.NumSMs))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatalf("%v (%s): %v", p, w.Name, err)
		}
		if st.WarpOps == 0 || st.Cycles == 0 {
			t.Errorf("%v: empty run", p)
		}
	}
}

func TestFootprintBloat(t *testing.T) {
	w := Workload{AllocSizes: []uint64{16}, AllocCounts: []int{4}}
	if b := w.FootprintBloat(32); math.Abs(b-1.0) > 1e-9 {
		t.Errorf("16B allocs: bloat = %v, want 1.0", b)
	}
	w = Workload{AllocSizes: []uint64{64}, AllocCounts: []int{4}}
	if b := w.FootprintBloat(32); b != 0 {
		t.Errorf("aligned allocs: bloat = %v, want 0", b)
	}
	w = Workload{AllocSizes: []uint64{48, 32}, AllocCounts: []int{1, 1}}
	// 48→64, 32→32: (96/80)−1 = 0.2
	if b := w.FootprintBloat(32); math.Abs(b-0.2) > 1e-9 {
		t.Errorf("mixed allocs: bloat = %v, want 0.2", b)
	}
	if (Workload{}).FootprintBloat(32) != 0 {
		t.Error("empty model must be 0")
	}
	// Counts default to 1 when missing.
	w = Workload{AllocSizes: []uint64{100, 100}}
	if w.TotalAllocBytes() != 200 {
		t.Error("missing counts should default to 1")
	}
}

func TestBloatPopulationShape(t *testing.T) {
	// The §5 claim: small-footprint programs show visible bloat, large
	// ones do not.
	var smallMax, largeMax float64
	for _, w := range Catalog() {
		b := w.FootprintBloat(32)
		if w.TotalAllocBytes() <= 1<<20 {
			if b > smallMax {
				smallMax = b
			}
		} else if b > largeMax {
			largeMax = b
		}
	}
	if smallMax < 0.2 {
		t.Errorf("small-footprint max bloat = %.2f, want visible (paper: 50%%)", smallMax)
	}
	if largeMax > 0.05 {
		t.Errorf("large-footprint max bloat = %.2f, want negligible (paper: 1.8%%)", largeMax)
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternStream: "stream", PatternStrided: "strided", PatternStencil: "stencil",
		PatternSparse: "sparse", PatternRandomFine: "random-fine", PatternGather: "gather",
	} {
		if p.String() != want {
			t.Errorf("pattern %d = %q", int(p), p.String())
		}
	}
}
