package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/gpusim"
)

// Pattern is the access-pattern family of a workload.
type Pattern int

const (
	// PatternStream: unit-stride streaming (STREAM copy/scale/add/triad).
	PatternStream Pattern = iota
	// PatternStrided: dense strided accesses (GEMM/conv-like tiles).
	PatternStrided
	// PatternStencil: structured-grid sweeps with neighbor reuse.
	PatternStencil
	// PatternSparse: CSR SpMV-like row streams plus random column gathers.
	PatternSparse
	// PatternRandomFine: fine-grained uniform random accesses
	// (graph/embedding lookups; the carve-out's worst case).
	PatternRandomFine
	// PatternGather: clustered neighbor-list gathers (MD codes such as
	// the paper's LAMMPS/AMBER outliers).
	PatternGather
)

func (p Pattern) String() string {
	switch p {
	case PatternStream:
		return "stream"
	case PatternStrided:
		return "strided"
	case PatternStencil:
		return "stencil"
	case PatternSparse:
		return "sparse"
	case PatternRandomFine:
		return "random-fine"
	case PatternGather:
		return "gather"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Workload describes one synthetic application trace.
type Workload struct {
	ID      int
	Name    string
	Suite   string // "MLPerf", "HPC+SLA", "STREAM"
	Pattern Pattern

	FootprintBytes uint64
	OpsPerSM       int
	// ComputePerOp is the issue gap between memory instructions — the
	// arithmetic intensity knob (0 = fully memory-bound).
	ComputePerOp int
	// WriteFrac is the fraction of warp ops that are stores.
	WriteFrac float64
	// AtomicFrac is the fraction of warp ops that are near-memory atomics
	// (frontier updates, histogram bins); checked before WriteFrac.
	AtomicFrac float64
	// HotFrac directs this fraction of irregular accesses into a hot
	// region of the footprint (power-law reuse, as in real graph /
	// embedding / SpMV workloads); the rest scatter across the whole
	// footprint. 0 means uniform.
	HotFrac float64
	// HotDiv sets the hot region size to FootprintBytes/HotDiv (0 → 16).
	HotDiv uint64
	Seed   int64

	// AllocSizes models the workload's allocation-size distribution for
	// the footprint-bloat analysis (§5); entries repeat per AllocCounts.
	AllocSizes  []uint64
	AllocCounts []int
}

// Traces builds one trace per SM for the given machine configuration.
func (w Workload) Traces(numSMs int) []gpusim.Trace {
	out := make([]gpusim.Trace, numSMs)
	for sm := 0; sm < numSMs; sm++ {
		out[sm] = w.trace(sm, numSMs)
	}
	return out
}

func (w Workload) trace(sm, numSMs int) gpusim.Trace {
	rng := rand.New(rand.NewSource(w.Seed*1_000_003 + int64(sm)))
	footprint := w.FootprintBytes
	if footprint < 4096 {
		footprint = 4096
	}
	hotDiv := w.HotDiv
	if hotDiv == 0 {
		hotDiv = 16
	}
	hotRegion := footprint / hotDiv
	if hotRegion < 4096 {
		hotRegion = 4096
	}
	// irregular draws a fine-grained address with HotFrac of the accesses
	// concentrated in the hot region (skewed reuse).
	irregular := func() uint64 {
		if w.HotFrac > 0 && rng.Float64() < w.HotFrac {
			return uint64(rng.Int63n(int64(hotRegion/4))) * 4
		}
		return uint64(rng.Int63n(int64(footprint/4))) * 4
	}
	gen := func(i int) gpusim.WarpOp {
		op := gpusim.WarpOp{Compute: w.ComputePerOp}
		switch roll := rng.Float64(); {
		case roll < w.AtomicFrac:
			op.Atomic = true
		case roll < w.AtomicFrac+w.WriteFrac:
			op.Store = true
		}
		switch w.Pattern {
		case PatternStream:
			// Warp i of SM sm touches 128 consecutive bytes; SMs stripe
			// through the footprint.
			base := (uint64(i)*uint64(numSMs) + uint64(sm)) * 128 % footprint
			for t := 0; t < 4; t++ {
				op.Addrs = append(op.Addrs, base+uint64(t)*32)
			}
		case PatternStrided:
			// Blocked tile walk (GEMM/conv): each SM sweeps its working
			// tile sequentially and revisits it, so most traffic hits in
			// the caches after the first pass.
			tile := footprint / hotDiv
			if tile < 64*1024 {
				tile = 64 * 1024
			}
			base := (uint64(i) * 128) % tile
			tileBase := uint64(sm) * tile
			for t := 0; t < 4; t++ {
				op.Addrs = append(op.Addrs, tileBase+base+uint64(t)*32)
			}
		case PatternStencil:
			// Sweep with ±1-plane neighbors: strong reuse between ops.
			row := (uint64(i)*uint64(numSMs) + uint64(sm)) * 32 % (footprint / 4)
			op.Addrs = append(op.Addrs, row, row+footprint/4, row+footprint/2)
		case PatternSparse:
			// CSR SpMV: streaming row/value arrays plus x-vector gathers
			// with skewed column reuse.
			rowBase := (uint64(i)*uint64(numSMs) + uint64(sm)) * 64 % (footprint / 2)
			op.Addrs = append(op.Addrs, rowBase, rowBase+32)
			gathers := 4 + rng.Intn(5)
			for g := 0; g < gathers; g++ {
				op.Addrs = append(op.Addrs, footprint/2+irregular()%(footprint/2-64))
			}
		case PatternRandomFine:
			// Fine-grained lookups (graph frontiers, embedding rows) with
			// power-law locality.
			for t := 0; t < 16; t++ {
				op.Addrs = append(op.Addrs, irregular())
			}
		case PatternGather:
			// Neighbor-list clusters: spatially local 64B clusters around
			// a sliding window (MD neighbor lists), plus occasional far
			// particles.
			window := uint64(512 * 1024)
			winBase := (uint64(i) * 256) % (footprint - window)
			for c := 0; c < 5; c++ {
				var base uint64
				if rng.Float64() < 0.92 {
					base = winBase + uint64(rng.Int63n(int64(window/64)))*64
				} else {
					base = uint64(rng.Int63n(int64(footprint/64))) * 64
				}
				op.Addrs = append(op.Addrs, base, base+32)
			}
		}
		return op
	}
	return &gpusim.FuncTrace{N: w.OpsPerSM, Gen: gen}
}

// FootprintBloat returns the TG-granule rounding overhead of the
// workload's allocation model: Σ roundup(size, granule) / Σ size − 1.
func (w Workload) FootprintBloat(granuleBytes uint64) float64 {
	var req, foot uint64
	for i, size := range w.AllocSizes {
		count := uint64(1)
		if i < len(w.AllocCounts) {
			count = uint64(w.AllocCounts[i])
		}
		req += size * count
		foot += (size + granuleBytes - 1) / granuleBytes * granuleBytes * count
	}
	if req == 0 {
		return 0
	}
	return float64(foot)/float64(req) - 1
}

// TotalAllocBytes is the workload's total requested allocation volume.
func (w Workload) TotalAllocBytes() uint64 {
	var req uint64
	for i, size := range w.AllocSizes {
		count := uint64(1)
		if i < len(w.AllocCounts) {
			count = uint64(w.AllocCounts[i])
		}
		req += size * count
	}
	return req
}
