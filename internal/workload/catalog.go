package workload

import (
	"fmt"
	"math/rand"
)

const (
	// SuiteMLPerf etc. name the three §5.1 suites.
	SuiteMLPerf = "MLPerf"
	SuiteHPC    = "HPC+SLA"
	SuiteStream = "STREAM"

	// CatalogSize matches the paper's trace count.
	CatalogSize = 193
)

const mib = 1 << 20

// Catalog returns the 193-workload suite: 8 STREAM microbenchmarks,
// 60 MLPerf-style kernels and 125 HPC + sparse-linear-algebra kernels,
// mirroring the population of §5.1. All parameters are deterministic.
func Catalog() []Workload {
	var ws []Workload
	ws = append(ws, streamSuite()...)
	ws = append(ws, mlperfSuite()...)
	ws = append(ws, hpcSuite()...)
	for i := range ws {
		ws[i].ID = i + 1
	}
	if len(ws) != CatalogSize {
		panic(fmt.Sprintf("workload: catalog has %d entries, want %d", len(ws), CatalogSize))
	}
	return ws
}

// Suites returns the catalog's suite names in first-appearance order —
// the valid arguments to BySuite.
func Suites() []string {
	var out []string
	seen := map[string]bool{}
	for _, w := range Catalog() {
		if !seen[w.Suite] {
			seen[w.Suite] = true
			out = append(out, w.Suite)
		}
	}
	return out
}

// BySuite returns the catalog workloads belonging to the named suite in
// catalog order, or nil for an unknown name (see Suites).
func BySuite(name string) []Workload {
	var out []Workload
	for _, w := range Catalog() {
		if w.Suite == name {
			out = append(out, w)
		}
	}
	return out
}

func streamSuite() []Workload {
	kernels := []struct {
		name      string
		writeFrac float64
	}{
		{"copy", 0.50},  // 1 load, 1 store
		{"scale", 0.50}, // 1 load, 1 store
		{"add", 0.34},   // 2 loads, 1 store
		{"triad", 0.34}, // 2 loads, 1 store
	}
	var ws []Workload
	for _, size := range []uint64{16 * mib, 48 * mib} {
		for i, k := range kernels {
			ws = append(ws, Workload{
				Name:           fmt.Sprintf("stream-%s-%dMB", k.name, size/mib),
				Suite:          SuiteStream,
				Pattern:        PatternStream,
				FootprintBytes: size,
				OpsPerSM:       5000,
				ComputePerOp:   0,
				WriteFrac:      k.writeFrac,
				Seed:           int64(9000 + i),
				AllocSizes:     metaSizes(size / 3 &^ 31),
				AllocCounts:    metaCounts(3, size, 0.0015),
			})
		}
	}
	return ws
}

func mlperfSuite() []Workload {
	models := []string{"resnet50", "bert", "dlrm", "ssd", "rnnt", "unet3d", "gpt", "maskrcnn", "transformer", "minigo"}
	rng := rand.New(rand.NewSource(1001))
	var ws []Workload
	for i := 0; i < 60; i++ {
		model := models[i%len(models)]
		layer := i / len(models)
		w := Workload{
			Name:  fmt.Sprintf("mlperf-%s-l%d", model, layer),
			Suite: SuiteMLPerf,
			Seed:  int64(2000 + i),
		}
		switch {
		case i%10 == 3: // embedding-style gathers (dlrm/gpt lookups)
			w.Pattern = PatternRandomFine
			w.FootprintBytes = uint64(16+rng.Intn(48)) * mib
			w.OpsPerSM = 2500
			w.ComputePerOp = 2 + rng.Intn(6)
			w.WriteFrac = 0.05
			w.HotFrac = 0.94 + 0.01*float64(rng.Intn(4))
			w.HotDiv = 32
		case i%10 == 7: // bandwidth-heavy elementwise/normalization layers
			w.Pattern = PatternStream
			w.FootprintBytes = uint64(16+rng.Intn(32)) * mib
			w.OpsPerSM = 5000
			w.ComputePerOp = rng.Intn(2)
			w.WriteFrac = 0.35
		default: // GEMM/conv tiles: compute-dominated with tile reuse
			w.Pattern = PatternStrided
			w.FootprintBytes = uint64(8+rng.Intn(56)) * mib
			w.OpsPerSM = 4000
			w.ComputePerOp = 6 + rng.Intn(18)
			w.WriteFrac = 0.15
			w.HotDiv = uint64(16 << rng.Intn(3)) // tile = footprint/16..64
		}
		// ML frameworks pool large tensors; small per-layer descriptor and
		// workspace allocations add a fraction of a percent of rounding
		// waste (the paper's >1MB population: hmean 0.21%, max 1.8%).
		target := 0.001 + 0.001*float64(i%5)
		w.AllocSizes = metaSizes(w.FootprintBytes / 4 &^ 31)
		w.AllocCounts = metaCounts(4, w.FootprintBytes, target)
		ws = append(ws, w)
	}
	return ws
}

func hpcSuite() []Workload {
	rng := rand.New(rand.NewSource(2002))
	var ws []Workload
	add := func(w Workload) { ws = append(ws, w) }

	// 30 structured-grid stencils (multigrid smoothers, CFD sweeps).
	for i := 0; i < 30; i++ {
		add(Workload{
			Name:           fmt.Sprintf("hpc-stencil%d", i),
			Suite:          SuiteHPC,
			Pattern:        PatternStencil,
			FootprintBytes: uint64(8+rng.Intn(56)) * mib,
			OpsPerSM:       5000,
			ComputePerOp:   1 + rng.Intn(6),
			WriteFrac:      0.25,
			Seed:           int64(3000 + i),
			AllocSizes:     metaSizes(uint64(8+rng.Intn(56)) * mib / 4 &^ 31),
			AllocCounts:    metaCounts(4, 32*mib, 0.002),
		})
	}
	// 35 sparse linear algebra kernels (SpMV and friends).
	for i := 0; i < 35; i++ {
		add(Workload{
			Name:           fmt.Sprintf("sla-spmv%d", i),
			Suite:          SuiteHPC,
			Pattern:        PatternSparse,
			FootprintBytes: uint64(12+rng.Intn(84)) * mib,
			OpsPerSM:       3000,
			ComputePerOp:   rng.Intn(4),
			WriteFrac:      0.08,
			HotFrac:        0.82 + 0.03*float64(rng.Intn(6)),
			HotDiv:         16,
			Seed:           int64(3100 + i),
			AllocSizes:     metaSizes(12 * mib),
			AllocCounts:    metaCounts(3, 36*mib, 0.005),
		})
	}
	// 25 molecular-dynamics neighbor gathers (the LAMMPS/AMBER analogue:
	// fine-grained accesses plus high bandwidth demand — Figure 8's worst
	// slowdowns).
	for i := 0; i < 25; i++ {
		add(Workload{
			Name:           fmt.Sprintf("md-neigh%d", i),
			Suite:          SuiteHPC,
			Pattern:        PatternGather,
			FootprintBytes: uint64(24+rng.Intn(104)) * mib,
			OpsPerSM:       3500,
			ComputePerOp:   rng.Intn(3),
			WriteFrac:      0.12,
			Seed:           int64(3200 + i),
			AllocSizes:     metaSizes(3 * mib),
			AllocCounts:    metaCounts(8, 24*mib, mdBloat(i)),
		})
	}
	// 20 graph-analytics kernels (random fine-grained frontier lookups).
	for i := 0; i < 20; i++ {
		add(Workload{
			Name:           fmt.Sprintf("graph-bfs%d", i),
			Suite:          SuiteHPC,
			Pattern:        PatternRandomFine,
			FootprintBytes: uint64(32+rng.Intn(96)) * mib,
			OpsPerSM:       2500,
			ComputePerOp:   rng.Intn(3),
			WriteFrac:      0.05,
			AtomicFrac:     0.08, // frontier/visited updates are atomics
			HotFrac:        hotFracGraph(i),
			HotDiv:         16,
			Seed:           int64(3300 + i),
			AllocSizes:     metaSizes(16 * mib),
			AllocCounts:    metaCounts(2, 32*mib, 0.004),
		})
	}
	// 15 tiny-footprint kernels: the §5 small-program population whose
	// 32B-granule rounding shows visible footprint bloat (paper: hmean
	// 5.23%, max 50%). Each uses a dominant object size chosen to land at
	// a point of that bloat spectrum.
	microBloat := []float64{0.50, 0.20, 0.15, 0.12, 0.10, 0.08, 0.08, 0.06, 0.06, 0.05, 0.05, 0.04, 0.04, 0.03, 0.03}
	for i := 0; i < 15; i++ {
		size := sizeForBloat(microBloat[i])
		add(Workload{
			Name:           fmt.Sprintf("hpc-micro%d", i),
			Suite:          SuiteHPC,
			Pattern:        PatternStencil,
			FootprintBytes: uint64(64+16*i) * 1024,
			OpsPerSM:       2000,
			ComputePerOp:   2 + rng.Intn(6),
			WriteFrac:      0.2,
			Seed:           int64(3400 + i),
			AllocSizes:     []uint64{size},
			AllocCounts:    []int{int(uint64(48+16*i) * 1024 / size)},
		})
	}
	return ws
}

// mdBloat gives md-neigh0 the >1MB population's maximum footprint bloat
// (the paper reports 1.8%) and the rest a small tail.
func mdBloat(i int) float64 {
	if i == 0 {
		return 0.018
	}
	return 0.003
}

// metaSizes/metaCounts build an allocation model: `mainCount` large
// 32B-aligned objects of mainSize plus enough 40-byte metadata objects
// (24B of rounding waste each) to produce roughly `target` overall bloat.
func metaSizes(mainSize uint64) []uint64 {
	return []uint64{mainSize, 40}
}

func metaCounts(mainCount int, footprint uint64, target float64) []int {
	n := int(float64(footprint) * target / 24)
	if n < 1 {
		n = 1
	}
	return []int{mainCount, n}
}

// sizeForBloat returns an object size whose 32B rounding overhead is as
// close as possible to the target bloat fraction.
func sizeForBloat(target float64) uint64 {
	best, bestDiff := uint64(32), 1e9
	for s := uint64(8); s <= 256; s++ {
		rounded := (s + 31) / 32 * 32
		b := float64(rounded)/float64(s) - 1
		diff := b - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = s, diff
		}
	}
	return best
}

// hotFracGraph shapes the graph-suite locality: most kernels have strong
// power-law reuse, with a few low-locality outliers that produce the
// Figure 8 maximum slowdowns (the LAMMPS/AMBER analogues of our catalog).
func hotFracGraph(i int) float64 {
	if i%7 == 0 {
		return 0.70 // heavy tail: frontier scans with poor reuse
	}
	return 0.84 + 0.03*float64(i%5)
}
