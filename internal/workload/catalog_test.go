package workload

import (
	"strings"
	"testing"
)

// TestCatalogExactPartition verifies Suites/BySuite partition the
// catalog by identity, not just by count: every workload appears in
// exactly one suite listing, in catalog order, and the suite labels are
// exactly the three documented constants.
func TestCatalogExactPartition(t *testing.T) {
	wantSuites := map[string]bool{SuiteMLPerf: true, SuiteHPC: true, SuiteStream: true}
	for _, s := range Suites() {
		if !wantSuites[s] {
			t.Errorf("Suites() includes unknown suite %q", s)
		}
		delete(wantSuites, s)
	}
	for s := range wantSuites {
		t.Errorf("Suites() is missing %q", s)
	}

	claimed := map[int]string{}
	for _, s := range Suites() {
		prevID := 0
		for _, w := range BySuite(s) {
			if w.Suite != s {
				t.Errorf("BySuite(%q) returned %s from suite %q", s, w.Name, w.Suite)
			}
			if other, dup := claimed[w.ID]; dup {
				t.Errorf("%s claimed by both %q and %q", w.Name, other, s)
			}
			claimed[w.ID] = s
			if w.ID <= prevID {
				t.Errorf("BySuite(%q) out of catalog order at %s", s, w.Name)
			}
			prevID = w.ID
		}
	}
	if len(claimed) != CatalogSize {
		t.Errorf("suites cover %d distinct workloads, want %d", len(claimed), CatalogSize)
	}
}

// TestCatalogParameterRanges audits every workload's parameters against
// their documented domains. The trace generator consumes these blindly
// (fractions as probabilities, divisors in address math), so an
// out-of-range value corrupts traces silently rather than failing.
func TestCatalogParameterRanges(t *testing.T) {
	for _, w := range Catalog() {
		if w.Name == "" || strings.TrimSpace(w.Name) != w.Name {
			t.Errorf("id %d: bad name %q", w.ID, w.Name)
		}
		if strings.ContainsAny(w.Name, " /\\") {
			t.Errorf("%s: name not path/label safe", w.Name)
		}
		if w.WriteFrac < 0 || w.WriteFrac > 1 {
			t.Errorf("%s: WriteFrac %v outside [0,1]", w.Name, w.WriteFrac)
		}
		if w.AtomicFrac < 0 || w.AtomicFrac > 1 {
			t.Errorf("%s: AtomicFrac %v outside [0,1]", w.Name, w.AtomicFrac)
		}
		// The generator rolls once and checks atomic before write, so the
		// two fractions share one unit interval.
		if w.AtomicFrac+w.WriteFrac > 1 {
			t.Errorf("%s: AtomicFrac+WriteFrac = %v > 1", w.Name, w.AtomicFrac+w.WriteFrac)
		}
		if w.HotFrac < 0 || w.HotFrac > 1 {
			t.Errorf("%s: HotFrac %v outside [0,1]", w.Name, w.HotFrac)
		}
		if w.ComputePerOp < 0 {
			t.Errorf("%s: negative ComputePerOp %d", w.Name, w.ComputePerOp)
		}
		if s := w.Pattern.String(); strings.HasPrefix(s, "Pattern(") {
			t.Errorf("%s: unknown pattern %s", w.Name, s)
		}
		if len(w.AllocCounts) > len(w.AllocSizes) {
			t.Errorf("%s: %d alloc counts for %d sizes", w.Name, len(w.AllocCounts), len(w.AllocSizes))
		}
		for i, sz := range w.AllocSizes {
			if sz == 0 {
				t.Errorf("%s: zero-byte allocation at %d", w.Name, i)
			}
		}
		for i, n := range w.AllocCounts {
			if n <= 0 {
				t.Errorf("%s: non-positive alloc count %d at %d", w.Name, n, i)
			}
		}
		if w.TotalAllocBytes() == 0 {
			t.Errorf("%s: empty allocation model", w.Name)
		}
		if bloat := w.FootprintBloat(32); bloat < 0 {
			t.Errorf("%s: negative footprint bloat %v", w.Name, bloat)
		}
	}
}
