package gpusim

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestDerivedRatiosFinite audits every derived ratio against the
// degenerate inputs that produce NaN/Inf from naive division: an
// empty run (all counters zero), a zero-value Config, and partial
// configs with only one of the peak-bandwidth terms set. A NaN or ±Inf
// here would make json.Marshal of an exported report fail outright.
func TestDerivedRatiosFinite(t *testing.T) {
	ran := Stats{Cycles: 1000, DRAMDataReads: 50, DRAMTagReads: 5, DRAMWrites: 10}
	cases := []struct {
		name string
		st   Stats
		cfg  Config
	}{
		{"empty run, empty config", Stats{}, Config{}},
		{"empty run, default config", Stats{}, DefaultConfig()},
		{"ran, zero config", ran, Config{}},
		{"ran, zero slices", ran, Config{DRAMCyclesPerSector: 4}},
		{"ran, zero DRAM cycles per sector", ran, Config{NumSlices: 4}},
		{"ran, negative DRAM cycles per sector", ran, Config{NumSlices: 4, DRAMCyclesPerSector: -1}},
		{"cycles only", Stats{Cycles: 77}, DefaultConfig()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ratios := map[string]float64{
				"ReadBloat":            tc.st.ReadBloat(),
				"BandwidthUtilization": tc.st.BandwidthUtilization(tc.cfg),
				"L1HitRate":            tc.st.L1HitRate(),
				"L2HitRate":            tc.st.L2HitRate(),
				"TagL2HitRate":         tc.st.TagL2HitRate(),
				"PeakBandwidthUtil":    tc.st.PeakBandwidthUtil(),
				"BandwidthBoundFrac":   tc.st.BandwidthBoundFraction(0.5),
				"Slowdown":             Slowdown(tc.st, tc.st),
			}
			for name, v := range ratios {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			// The end-to-end property the guards exist for: the export
			// path must be able to serialize these values.
			if _, err := json.Marshal(ratios); err != nil {
				t.Errorf("derived ratios not JSON-serializable: %v", err)
			}
		})
	}
}

// TestEmptyRunRatiosAreZero pins the documented "not measured" value:
// every ratio of an empty run is exactly 0, not merely finite.
func TestEmptyRunRatiosAreZero(t *testing.T) {
	var st Stats
	zeros := map[string]float64{
		"ReadBloat":            st.ReadBloat(),
		"BandwidthUtilization": st.BandwidthUtilization(Config{}),
		"L1HitRate":            st.L1HitRate(),
		"L2HitRate":            st.L2HitRate(),
		"TagL2HitRate":         st.TagL2HitRate(),
		"PeakBandwidthUtil":    st.PeakBandwidthUtil(),
		"BandwidthBoundFrac":   st.BandwidthBoundFraction(0.5),
		"Slowdown":             Slowdown(st, Stats{Cycles: 5}),
	}
	for name, v := range zeros {
		if v != 0 {
			t.Errorf("%s = %v on an empty run, want 0", name, v)
		}
	}
}

// TestBandwidthUtilizationMeasured makes sure the guards did not break
// the measured path: a real run on a valid config yields the plain
// bytes / cycles / peak ratio.
func TestBandwidthUtilizationMeasured(t *testing.T) {
	st := Stats{Cycles: 1000, DRAMDataReads: 40, DRAMTagReads: 8, DRAMWrites: 2}
	cfg := Config{NumSlices: 4, DRAMCyclesPerSector: 4}
	want := float64(32*(40+8+2)) / 1000 / (4 * 32 / 4.0)
	if got := st.BandwidthUtilization(cfg); got != want {
		t.Fatalf("BandwidthUtilization = %v, want %v", got, want)
	}
}

// TestStatsStringTelemetry pins the String rendering of the host-side
// cost telemetry across the states a Stats value can be in: never run
// (zero value), run but opless, a populated aggregate without host
// telemetry (cache hits deserialize to this), and a steady-state run
// carrying it.
func TestStatsStringTelemetry(t *testing.T) {
	populated := Stats{Cycles: 100, WarpOps: 40, L1Hits: 30, L1Misses: 10, DRAMDataReads: 10}
	withHost := populated
	withHost.HostNsPerOp = 1234.5
	withHost.HostAllocsPerOp = 0.25

	cases := []struct {
		name     string
		st       Stats
		wantHost bool
	}{
		{"empty", Stats{}, false},
		{"opless-run", Stats{Cycles: 5}, false},
		{"populated-no-host", populated, false},
		{"steady-state", withHost, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := tc.st.String()
			if got := strings.Contains(out, "host("); got != tc.wantHost {
				t.Errorf("String() = %q, host telemetry rendered = %v, want %v", out, got, tc.wantHost)
			}
			if tc.wantHost && !strings.Contains(out, "host(ns/op=1234 allocs/op=0.25)") {
				t.Errorf("String() = %q, want rendered host values", out)
			}
		})
	}
}

// TestStatsJSONExcludesHostTelemetry pins the split the conformance
// goldens rely on: the host fields render in String (and flow into the
// runner/obs exporters) but never enter Stats' own JSON encoding, so
// goldens, the disk cache and canonical-JSON comparisons stay
// deterministic.
func TestStatsJSONExcludesHostTelemetry(t *testing.T) {
	st := Stats{Cycles: 1, WarpOps: 2, HostNsPerOp: 99, HostAllocsPerOp: 7}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "Host") {
		t.Fatalf("host telemetry leaked into JSON: %s", raw)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.WithoutHost(), st.WithoutHost()) {
		t.Errorf("deterministic fields lost in round trip: %+v vs %+v", back, st)
	}
	if back.HostNsPerOp != 0 || back.HostAllocsPerOp != 0 {
		t.Errorf("host telemetry must deserialize to zero, got %+v", back)
	}
}

// TestRunPopulatesHostTelemetry runs a real steady-state simulation and
// checks the telemetry is measured, positive, and excluded from the
// deterministic portion.
func TestRunPopulatesHostTelemetry(t *testing.T) {
	cfg := DefaultConfig()
	ops := make([]WarpOp, 2000)
	for i := range ops {
		ops[i] = WarpOp{Addrs: []uint64{uint64(i) * 32}}
	}
	tr := &SliceTrace{Ops: ops}
	sim, err := New(cfg, []Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.WarpOps == 0 {
		t.Fatal("trace produced no warp ops")
	}
	if st.HostNsPerOp <= 0 {
		t.Errorf("HostNsPerOp = %v, want > 0 after a real run", st.HostNsPerOp)
	}
	if st.HostAllocsPerOp < 0 {
		t.Errorf("HostAllocsPerOp = %v, want >= 0", st.HostAllocsPerOp)
	}
	if got := st.WithoutHost(); got.HostNsPerOp != 0 || got.HostAllocsPerOp != 0 {
		t.Errorf("WithoutHost must zero the telemetry: %+v", got)
	}
	if !strings.Contains(st.String(), "host(") {
		t.Errorf("String() = %q, want host telemetry rendered", st.String())
	}
}
