package gpusim

import (
	"encoding/json"
	"math"
	"testing"
)

// TestDerivedRatiosFinite audits every derived ratio against the
// degenerate inputs that produce NaN/Inf from naive division: an
// empty run (all counters zero), a zero-value Config, and partial
// configs with only one of the peak-bandwidth terms set. A NaN or ±Inf
// here would make json.Marshal of an exported report fail outright.
func TestDerivedRatiosFinite(t *testing.T) {
	ran := Stats{Cycles: 1000, DRAMDataReads: 50, DRAMTagReads: 5, DRAMWrites: 10}
	cases := []struct {
		name string
		st   Stats
		cfg  Config
	}{
		{"empty run, empty config", Stats{}, Config{}},
		{"empty run, default config", Stats{}, DefaultConfig()},
		{"ran, zero config", ran, Config{}},
		{"ran, zero slices", ran, Config{DRAMCyclesPerSector: 4}},
		{"ran, zero DRAM cycles per sector", ran, Config{NumSlices: 4}},
		{"ran, negative DRAM cycles per sector", ran, Config{NumSlices: 4, DRAMCyclesPerSector: -1}},
		{"cycles only", Stats{Cycles: 77}, DefaultConfig()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ratios := map[string]float64{
				"ReadBloat":            tc.st.ReadBloat(),
				"BandwidthUtilization": tc.st.BandwidthUtilization(tc.cfg),
				"L1HitRate":            tc.st.L1HitRate(),
				"L2HitRate":            tc.st.L2HitRate(),
				"TagL2HitRate":         tc.st.TagL2HitRate(),
				"PeakBandwidthUtil":    tc.st.PeakBandwidthUtil(),
				"BandwidthBoundFrac":   tc.st.BandwidthBoundFraction(0.5),
				"Slowdown":             Slowdown(tc.st, tc.st),
			}
			for name, v := range ratios {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			// The end-to-end property the guards exist for: the export
			// path must be able to serialize these values.
			if _, err := json.Marshal(ratios); err != nil {
				t.Errorf("derived ratios not JSON-serializable: %v", err)
			}
		})
	}
}

// TestEmptyRunRatiosAreZero pins the documented "not measured" value:
// every ratio of an empty run is exactly 0, not merely finite.
func TestEmptyRunRatiosAreZero(t *testing.T) {
	var st Stats
	zeros := map[string]float64{
		"ReadBloat":            st.ReadBloat(),
		"BandwidthUtilization": st.BandwidthUtilization(Config{}),
		"L1HitRate":            st.L1HitRate(),
		"L2HitRate":            st.L2HitRate(),
		"TagL2HitRate":         st.TagL2HitRate(),
		"PeakBandwidthUtil":    st.PeakBandwidthUtil(),
		"BandwidthBoundFrac":   st.BandwidthBoundFraction(0.5),
		"Slowdown":             Slowdown(st, Stats{Cycles: 5}),
	}
	for name, v := range zeros {
		if v != 0 {
			t.Errorf("%s = %v on an empty run, want 0", name, v)
		}
	}
}

// TestBandwidthUtilizationMeasured makes sure the guards did not break
// the measured path: a real run on a valid config yields the plain
// bytes / cycles / peak ratio.
func TestBandwidthUtilizationMeasured(t *testing.T) {
	st := Stats{Cycles: 1000, DRAMDataReads: 40, DRAMTagReads: 8, DRAMWrites: 2}
	cfg := Config{NumSlices: 4, DRAMCyclesPerSector: 4}
	want := float64(32*(40+8+2)) / 1000 / (4 * 32 / 4.0)
	if got := st.BandwidthUtilization(cfg); got != want {
		t.Fatalf("BandwidthUtilization = %v, want %v", got, want)
	}
}
