package gpusim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func streamTraces(n, ops int, writeFrac float64, seed int64) []Trace {
	out := make([]Trace, n)
	for sm := 0; sm < n; sm++ {
		sm := sm
		rng := rand.New(rand.NewSource(seed + int64(sm)))
		out[sm] = &FuncTrace{N: ops, Gen: func(i int) WarpOp {
			base := (uint64(i)*uint64(n) + uint64(sm)) * 128
			op := WarpOp{Store: rng.Float64() < writeFrac}
			for t := 0; t < 4; t++ {
				op.Addrs = append(op.Addrs, base+uint64(t)*32)
			}
			return op
		}}
	}
	return out
}

func randomTraces(n, ops int, footprint uint64, seed int64) []Trace {
	out := make([]Trace, n)
	for sm := 0; sm < n; sm++ {
		rng := rand.New(rand.NewSource(seed + int64(sm)))
		out[sm] = &FuncTrace{N: ops, Gen: func(i int) WarpOp {
			var op WarpOp
			for t := 0; t < 16; t++ {
				op.Addrs = append(op.Addrs, uint64(rng.Int63n(int64(footprint/4)))*4)
			}
			return op
		}}
	}
	return out
}

func run(t *testing.T, cfg Config, traces []Trace) Stats {
	t.Helper()
	sim, err := New(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.SectorSize = 64
	if bad.Validate() == nil {
		t.Error("non-32B sector must be rejected")
	}
	bad = cfg
	bad.Mode = ModeCarveOut
	if bad.Validate() == nil {
		t.Error("carve-out mode without geometry must be rejected")
	}
	bad = cfg
	bad.NumSMs = 0
	if bad.Validate() == nil {
		t.Error("zero SMs must be rejected")
	}
}

func TestCarveOutGeometry(t *testing.T) {
	if CarveOutLow.CoverageBytes() != 1024 {
		t.Errorf("low coverage = %d, want 1024", CarveOutLow.CoverageBytes())
	}
	if CarveOutHigh.CoverageBytes() != 512 {
		t.Errorf("high coverage = %d, want 512", CarveOutHigh.CoverageBytes())
	}
	if CarveOutARMMTE.CoverageBytes() != 1024 {
		t.Errorf("MTE coverage = %d, want 1024", CarveOutARMMTE.CoverageBytes())
	}
	if s := CarveOutLow.StorageOverhead(); s != 0.03125 {
		t.Errorf("low storage overhead = %v, want 3.125%%", s)
	}
	if s := CarveOutHigh.StorageOverhead(); s != 0.0625 {
		t.Errorf("high storage overhead = %v, want 6.25%%", s)
	}
}

func TestStreamingBaselineSane(t *testing.T) {
	cfg := DefaultConfig()
	st := run(t, cfg, streamTraces(cfg.NumSMs, 2000, 0.3, 1))
	if st.WarpOps != uint64(cfg.NumSMs*2000) {
		t.Fatalf("ops = %d", st.WarpOps)
	}
	if st.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	// Streaming misses everywhere: DRAM data reads ≈ load sectors.
	if st.DRAMDataReads == 0 || st.DRAMTagReads != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// A fully memory-bound streaming workload should approach the DRAM
	// bandwidth roofline.
	if bw := st.BandwidthUtilization(cfg); bw < 0.5 {
		t.Errorf("streaming bandwidth utilization = %.2f, want > 0.5", bw)
	}
}

func TestIMTMatchesBaselineExactly(t *testing.T) {
	// The headline claim: IMT adds no traffic and no cycles.
	base := DefaultConfig()
	imt := base
	imt.Mode = ModeIMT
	steal := base
	steal.Mode = ModeECCSteal
	s0 := run(t, base, streamTraces(base.NumSMs, 1500, 0.3, 2))
	s1 := run(t, imt, streamTraces(base.NumSMs, 1500, 0.3, 2))
	s2 := run(t, steal, streamTraces(base.NumSMs, 1500, 0.3, 2))
	if s0.Cycles != s1.Cycles || s0.DRAMBytes() != s1.DRAMBytes() {
		t.Errorf("IMT diverged from baseline: %v vs %v", s1, s0)
	}
	if s0.Cycles != s2.Cycles {
		t.Errorf("ECC stealing diverged from baseline: %v vs %v", s2, s0)
	}
}

func TestCarveOutAddsTagTraffic(t *testing.T) {
	base := DefaultConfig()
	carve := base
	carve.Mode = ModeCarveOut
	carve.Carve = CarveOutLow
	s0 := run(t, base, streamTraces(base.NumSMs, 3000, 0.3, 3))
	s1 := run(t, carve, streamTraces(base.NumSMs, 3000, 0.3, 3))
	if s1.DRAMTagReads == 0 {
		t.Fatal("carve-out generated no tag traffic")
	}
	// Streaming reuses each tag sector for 32 consecutive data sectors:
	// read bloat ≈ 1/32.
	bloat := s1.ReadBloat()
	if bloat < 0.02 || bloat > 0.06 {
		t.Errorf("streaming read bloat = %.4f, want ≈ 0.031", bloat)
	}
	if s1.Cycles <= s0.Cycles {
		t.Error("carve-out should slow a bandwidth-bound stream")
	}
	// Slowdown for a bandwidth-bound stream ≈ bloat.
	if sd := Slowdown(s0, s1); sd > 0.12 {
		t.Errorf("streaming slowdown = %.3f, unexpectedly high", sd)
	}
}

func TestCarveOutHighBeatsLowInTraffic(t *testing.T) {
	low := DefaultConfig()
	low.Mode = ModeCarveOut
	low.Carve = CarveOutLow
	high := low
	high.Carve = CarveOutHigh
	sl := run(t, low, streamTraces(low.NumSMs, 3000, 0.3, 4))
	sh := run(t, high, streamTraces(low.NumSMs, 3000, 0.3, 4))
	if sh.DRAMTagReads <= sl.DRAMTagReads {
		t.Error("high-tag-storage carve-out must fetch more tag sectors")
	}
}

func TestRandomFineGrainedHurtsMore(t *testing.T) {
	base := DefaultConfig()
	carve := base
	carve.Mode = ModeCarveOut
	carve.Carve = CarveOutLow
	footprint := uint64(64 << 20)
	s0 := run(t, base, randomTraces(base.NumSMs, 1200, footprint, 5))
	s1 := run(t, carve, randomTraces(base.NumSMs, 1200, footprint, 5))
	randomSlow := Slowdown(s0, s1)
	b0 := run(t, base, streamTraces(base.NumSMs, 3000, 0.3, 5))
	b1 := run(t, carve, streamTraces(base.NumSMs, 3000, 0.3, 5))
	streamSlow := Slowdown(b0, b1)
	if randomSlow <= streamSlow {
		t.Errorf("fine-grained random slowdown (%.3f) should exceed streaming (%.3f)", randomSlow, streamSlow)
	}
	if s1.ReadBloat() <= b1.ReadBloat() {
		t.Errorf("random bloat (%.3f) should exceed streaming bloat (%.3f)", s1.ReadBloat(), b1.ReadBloat())
	}
}

func TestBoundsTableSmallOverhead(t *testing.T) {
	base := DefaultConfig()
	bounds := base
	bounds.Mode = ModeBoundsTable
	s0 := run(t, base, streamTraces(base.NumSMs, 2000, 0.3, 6))
	s1 := run(t, bounds, streamTraces(base.NumSMs, 2000, 0.3, 6))
	sd := Slowdown(s0, s1)
	if sd < 0 || sd > 0.2 {
		t.Errorf("bounds-table slowdown = %.3f, want small and non-negative", sd)
	}
	if s1.DRAMTagReads != 0 {
		t.Error("bounds table must not generate tag traffic")
	}
}

func TestL1CapturesReuse(t *testing.T) {
	// A tiny working set must hit in L1 after warmup.
	cfg := DefaultConfig()
	traces := []Trace{&FuncTrace{N: 2000, Gen: func(i int) WarpOp {
		return WarpOp{Addrs: []uint64{uint64(i%64) * 32}}
	}}}
	st := run(t, cfg, traces)
	if st.L1HitRate() < 0.9 {
		t.Errorf("L1 hit rate = %.2f, want > 0.9", st.L1HitRate())
	}
}

func TestWritebackTraffic(t *testing.T) {
	// A store-heavy footprint larger than the L2 must cause writebacks.
	cfg := DefaultConfig()
	st := run(t, cfg, streamTraces(cfg.NumSMs, 4000, 1.0, 7))
	if st.DRAMWrites == 0 {
		t.Error("expected dirty writebacks")
	}
}

func TestCoalesce(t *testing.T) {
	out := coalesce([]uint64{0, 4, 31, 32, 64, 65, 33}, 32, nil)
	want := []uint64{0, 1, 2}
	if len(out) != len(want) {
		t.Fatalf("coalesce = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("coalesce = %v, want %v", out, want)
		}
	}
}

func TestTraceAdapters(t *testing.T) {
	st := &SliceTrace{Ops: []WarpOp{{Compute: 1}, {Compute: 2}}}
	if op, ok := st.Next(); !ok || op.Compute != 1 {
		t.Fatal("SliceTrace first op wrong")
	}
	if op, ok := st.Next(); !ok || op.Compute != 2 {
		t.Fatal("SliceTrace second op wrong")
	}
	if _, ok := st.Next(); ok {
		t.Fatal("SliceTrace should be exhausted")
	}
	ft := &FuncTrace{N: 1, Gen: func(i int) WarpOp { return WarpOp{Compute: i + 5} }}
	if op, ok := ft.Next(); !ok || op.Compute != 5 {
		t.Fatal("FuncTrace wrong")
	}
	if _, ok := ft.Next(); ok {
		t.Fatal("FuncTrace should be exhausted")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[TagMode]string{
		ModeNone: "none", ModeIMT: "imt", ModeECCSteal: "ecc-steal",
		ModeCarveOut: "carve-out", ModeBoundsTable: "bounds-table",
	} {
		if m.String() != want {
			t.Errorf("mode %d string = %q", int(m), m.String())
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{DRAMDataReads: 100, DRAMTagReads: 10, DRAMWrites: 5, L1Hits: 3, L1Misses: 1, L2Hits: 1, L2Misses: 3}
	if s.ReadBloat() != 0.1 {
		t.Error("ReadBloat wrong")
	}
	if s.DRAMBytes() != 32*115 {
		t.Error("DRAMBytes wrong")
	}
	if s.L1HitRate() != 0.75 || s.L2HitRate() != 0.25 {
		t.Error("hit rates wrong")
	}
	if (Stats{}).ReadBloat() != 0 || (Stats{}).L1HitRate() != 0 {
		t.Error("zero stats should not divide by zero")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if Slowdown(Stats{}, s) != 0 {
		t.Error("Slowdown with zero baseline should be 0")
	}
	if sd := Slowdown(Stats{Cycles: 100}, Stats{Cycles: 110}); sd < 0.0999 || sd > 0.1001 {
		t.Error("Slowdown wrong")
	}
}

func TestIdleSMsAllowed(t *testing.T) {
	cfg := DefaultConfig()
	// Only one trace for a 4-SM machine.
	st := run(t, cfg, streamTraces(1, 500, 0.2, 8))
	if st.WarpOps != 500 {
		t.Fatalf("ops = %d, want 500", st.WarpOps)
	}
}

func TestAtomicsServicedAtL2(t *testing.T) {
	cfg := DefaultConfig()
	// A stream of atomics to a small set of counters: after warm-up they
	// hit in the L2 and never touch the L1.
	traces := []Trace{&FuncTrace{N: 2000, Gen: func(i int) WarpOp {
		return WarpOp{Atomic: true, Addrs: []uint64{uint64(i%16) * 32}}
	}}}
	st := run(t, cfg, traces)
	if st.Atomics != 2000 {
		t.Fatalf("atomics = %d", st.Atomics)
	}
	if st.L1Hits != 0 && st.L1Misses != 0 {
		t.Error("atomics must bypass the L1")
	}
	if st.L2Hits == 0 {
		t.Error("warm atomics should hit in the L2")
	}
	// RMW dirties the lines: no writebacks yet (they stay resident).
	if st.DRAMDataReads == 0 {
		t.Error("cold atomics must fetch from DRAM")
	}
}

func TestAtomicsNeedTagsUnderCarveOut(t *testing.T) {
	base := DefaultConfig()
	carve := base
	carve.Mode = ModeCarveOut
	carve.Carve = CarveOutLow
	mk := func() []Trace {
		rng := rand.New(rand.NewSource(9))
		return []Trace{&FuncTrace{N: 1500, Gen: func(i int) WarpOp {
			return WarpOp{Atomic: true, Addrs: []uint64{uint64(rng.Int63n(1<<20)) &^ 31}}
		}}}
	}
	s0 := run(t, base, mk())
	s1 := run(t, carve, mk())
	if s1.DRAMTagReads == 0 {
		t.Error("carve-out atomics must fetch lock tags (Fig 6a)")
	}
	if s1.Cycles <= s0.Cycles {
		t.Error("tag fetches should slow an atomic-heavy workload")
	}
}

func TestAtomicMixCompletes(t *testing.T) {
	// Mixed loads/stores/atomics over a shared footprint must drain
	// without deadlock under every mode.
	for _, mode := range []TagMode{ModeNone, ModeCarveOut, ModeBoundsTable} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		if mode == ModeCarveOut {
			cfg.Carve = CarveOutHigh
		}
		rng := rand.New(rand.NewSource(11))
		traces := []Trace{&FuncTrace{N: 1200, Gen: func(i int) WarpOp {
			op := WarpOp{Addrs: []uint64{uint64(rng.Int63n(1<<18)) &^ 31, uint64(rng.Int63n(1<<18)) &^ 31}}
			switch i % 3 {
			case 0:
				op.Atomic = true
			case 1:
				op.Store = true
			}
			return op
		}}}
		st := run(t, cfg, traces)
		if st.WarpOps != 1200 || st.Atomics != 400 {
			t.Fatalf("mode %v: ops=%d atomics=%d", mode, st.WarpOps, st.Atomics)
		}
	}
}

func TestCoalescerSplitsDifferingKeyTags(t *testing.T) {
	// §4.2: two threads touching the SAME sector under DIFFERENT key tags
	// must not coalesce into one request.
	tagA := uint64(5) << TagShift
	tagB := uint64(9) << TagShift
	out := coalesce([]uint64{tagA | 0, tagA | 16, tagB | 0, tagB | 24}, 32, nil)
	if len(out) != 2 {
		t.Fatalf("coalesce produced %d requests, want 2 (split by tag)", len(out))
	}
	if out[0] == out[1] {
		t.Fatal("tagged sectors collided")
	}
	// Same tag still merges.
	out = coalesce([]uint64{tagA | 0, tagA | 31}, 32, nil)
	if len(out) != 1 {
		t.Fatalf("same-tag accesses did not merge: %d", len(out))
	}
}

func TestMixedTagWarpSimulates(t *testing.T) {
	cfg := DefaultConfig()
	traces := []Trace{&FuncTrace{N: 500, Gen: func(i int) WarpOp {
		base := uint64(i) * 128
		return WarpOp{Addrs: []uint64{
			uint64(1)<<TagShift | base,
			uint64(2)<<TagShift | base, // same sector, different tag
			uint64(1)<<TagShift | base + 64,
		}}
	}}}
	st := run(t, cfg, traces)
	if st.WarpOps != 500 {
		t.Fatalf("ops = %d", st.WarpOps)
	}
	// 3 requests per op (the same-sector pair split), not 2.
	if st.L1Hits+st.L1Misses != 1500 {
		t.Fatalf("sector requests = %d, want 1500", st.L1Hits+st.L1Misses)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mk := func() []Trace {
		out := make([]Trace, 3)
		for sm := range out {
			sm := sm
			r2 := rand.New(rand.NewSource(int64(sm)))
			out[sm] = &FuncTrace{N: 200 + sm*10, Gen: func(i int) WarpOp {
				op := WarpOp{Compute: r2.Intn(8)}
				switch i % 4 {
				case 0:
					op.Store = true
				case 1:
					op.Atomic = true
				}
				for a := 0; a < 1+r2.Intn(4); a++ {
					op.Addrs = append(op.Addrs, uint64(r2.Int63n(1<<30)))
				}
				return op
			}}
		}
		return out
	}
	_ = rng

	var buf bytes.Buffer
	if err := WriteTraces(&buf, mk()); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 {
		t.Fatalf("SMs = %d", len(replayed))
	}
	// The replayed stream is op-for-op identical to a fresh generation.
	fresh := mk()
	for sm := range fresh {
		for i := 0; ; i++ {
			a, okA := fresh[sm].Next()
			b, okB := replayed[sm].Next()
			if okA != okB {
				t.Fatalf("sm %d op %d: length mismatch", sm, i)
			}
			if !okA {
				break
			}
			if a.Store != b.Store || a.Atomic != b.Atomic || a.Compute != b.Compute || len(a.Addrs) != len(b.Addrs) {
				t.Fatalf("sm %d op %d: %+v vs %+v", sm, i, a, b)
			}
			for j := range a.Addrs {
				if a.Addrs[j] != b.Addrs[j] {
					t.Fatalf("sm %d op %d addr %d differs", sm, i, j)
				}
			}
		}
	}
}

func TestTraceFileSimEquivalence(t *testing.T) {
	// Simulating a recorded trace gives bit-identical stats to simulating
	// the generator directly.
	cfg := DefaultConfig()
	gen := func() []Trace { return streamTraces(cfg.NumSMs, 800, 0.3, 77) }
	var buf bytes.Buffer
	if err := WriteTraces(&buf, gen()); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s1 := run(t, cfg, gen())
	s2 := run(t, cfg, replayed)
	if !reflect.DeepEqual(s1.WithoutHost(), s2.WithoutHost()) {
		t.Fatalf("replayed stats differ:\n%v\n%v", s1, s2)
	}
}

func TestTraceFileRejectsGarbage(t *testing.T) {
	if _, err := ReadTraces(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadTraces(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated stream: write a valid file, chop it.
	var buf bytes.Buffer
	if err := WriteTraces(&buf, streamTraces(2, 50, 0, 1)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTraces(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestCarveOutShapeHoldsAcrossMachineScale(t *testing.T) {
	// Robustness of the DESIGN.md substitution: the carve-out slowdown
	// ordering (random-fine > streaming > none) must not be an artifact
	// of the quarter-scale default machine. Double the machine (SMs,
	// slices, L2) and check the ordering and rough magnitudes persist.
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shapes := func(cfg Config) (stream, random float64) {
		carve := cfg
		carve.Mode = ModeCarveOut
		carve.Carve = CarveOutLow
		sb := run(t, cfg, streamTraces(cfg.NumSMs, 2500, 0.3, 31))
		sc := run(t, carve, streamTraces(cfg.NumSMs, 2500, 0.3, 31))
		rb := run(t, cfg, randomTraces(cfg.NumSMs, 1000, 96<<20, 31))
		rc := run(t, carve, randomTraces(cfg.NumSMs, 1000, 96<<20, 31))
		return Slowdown(sb, sc), Slowdown(rb, rc)
	}
	quarter := DefaultConfig()
	half := DefaultConfig()
	half.NumSMs *= 2
	half.NumSlices *= 2
	half.L2SliceBytes = quarter.L2SliceBytes // same per-slice, 2x total

	qs, qr := shapes(quarter)
	hs, hr := shapes(half)
	for _, c := range []struct {
		name           string
		stream, random float64
	}{{"quarter", qs, qr}, {"half", hs, hr}} {
		if !(c.random > c.stream) {
			t.Errorf("%s-scale: random (%.3f) should exceed streaming (%.3f)", c.name, c.random, c.stream)
		}
		if c.stream < 0.01 || c.stream > 0.10 {
			t.Errorf("%s-scale: streaming slowdown %.3f outside the bloat-bound regime", c.name, c.stream)
		}
	}
	// Magnitudes stay in the same ballpark across scales (within 2.5x).
	if ratio := hr / qr; ratio < 0.4 || ratio > 2.5 {
		t.Errorf("random slowdown scale ratio = %.2f, shapes not scale-stable", ratio)
	}
}
