package gpusim_test

// Hot-path benchmarks over the three conformance workloads × all six
// tagging modes — the exact cells cmd/conformance pins, so the perf
// trajectory in BENCH_results.json and the bit-identity gate cover the
// same ground. Two families:
//
//   - BenchmarkSimCold: one fresh Sim per iteration (New + Run), the
//     runner's per-cell usage pattern. Allocations include simulator
//     construction.
//   - BenchmarkSimSteady: one Sim reused across iterations via Reset —
//     the steady-state hot path with construction amortized away. This
//     is the family `make bench-gate` tracks: its allocs/op must stay
//     near zero and its ns/op must not regress.
//
// Both report ns/warp-op (wall nanoseconds of host time per simulated
// warp instruction), the per-cell unit the runner telemetry exposes.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/workload"
)

var benchWorkloads = []string{"stream-copy-16MB", "mlperf-ssd-l0", "hpc-micro0"}

var benchModes = []struct {
	label string
	mode  gpusim.TagMode
	carve gpusim.CarveOut
}{
	{"none", gpusim.ModeNone, gpusim.CarveOut{}},
	{"imt", gpusim.ModeIMT, gpusim.CarveOut{}},
	{"ecc-steal", gpusim.ModeECCSteal, gpusim.CarveOut{}},
	{"carve-low", gpusim.ModeCarveOut, gpusim.CarveOutLow},
	{"carve-high", gpusim.ModeCarveOut, gpusim.CarveOutHigh},
	{"bounds-table", gpusim.ModeBoundsTable, gpusim.CarveOut{}},
}

// benchOps drains a catalog workload's generator traces into plain op
// slices once per benchmark, so iterations replay identical streams
// without re-running the generators.
func benchOps(tb testing.TB, name string, numSMs int) [][]gpusim.WarpOp {
	tb.Helper()
	for _, w := range workload.Catalog() {
		if w.Name != name {
			continue
		}
		out := make([][]gpusim.WarpOp, numSMs)
		for i, tr := range w.Traces(numSMs) {
			for {
				op, ok := tr.Next()
				if !ok {
					break
				}
				out[i] = append(out[i], op)
			}
		}
		return out
	}
	tb.Fatalf("workload %q not in the catalog", name)
	return nil
}

func benchConfig(m struct {
	label string
	mode  gpusim.TagMode
	carve gpusim.CarveOut
}) gpusim.Config {
	cfg := gpusim.DefaultConfig()
	cfg.Mode = m.mode
	cfg.Carve = m.carve
	return cfg
}

func reportWarpOp(b *testing.B, warpOps uint64) {
	if warpOps > 0 && b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(warpOps), "ns/warp-op")
	}
}

func BenchmarkSimSteady(b *testing.B) {
	for _, name := range benchWorkloads {
		ops := benchOps(b, name, gpusim.DefaultConfig().NumSMs)
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("%s/%s", name, m.label), func(b *testing.B) {
				cfg := benchConfig(m)
				traces := make([]gpusim.Trace, len(ops))
				slices := make([]*gpusim.SliceTrace, len(ops))
				for j := range ops {
					slices[j] = &gpusim.SliceTrace{Ops: ops[j]}
					traces[j] = slices[j]
				}
				sim, err := gpusim.New(cfg, traces)
				if err != nil {
					b.Fatal(err)
				}
				var warpOps uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 {
						for _, tr := range slices {
							tr.Rewind()
						}
						sim.Reset(traces)
					}
					st, err := sim.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					warpOps = st.WarpOps
				}
				b.StopTimer()
				reportWarpOp(b, warpOps)
			})
		}
	}
}

// BenchmarkTraceDecodeStream tracks the chunked IMTTRC decoder — the
// upload-validation and store-replay hot path. One iteration scans a
// full recorded stream-copy-16MB trace blob through TraceScanner in
// 512-op chunks (the same bounded-memory walk IndexTraceStream and the
// trace store's Put perform), reporting MB/s via b.SetBytes plus
// ns/trace-op. Gated by `make bench-gate`.
func BenchmarkTraceDecodeStream(b *testing.B) {
	ops := benchOps(b, "stream-copy-16MB", gpusim.DefaultConfig().NumSMs)
	traces := make([]gpusim.Trace, len(ops))
	for j := range ops {
		traces[j] = &gpusim.SliceTrace{Ops: ops[j]}
	}
	var blob bytes.Buffer
	if err := gpusim.WriteTraces(&blob, traces); err != nil {
		b.Fatal(err)
	}
	data := blob.Bytes()
	chunk := make([]gpusim.WarpOp, 512)
	var totalOps uint64
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := gpusim.NewTraceScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := sc.NextSM()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			for {
				n, err := sc.ReadOps(chunk)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					break
				}
			}
		}
		idx, err := sc.Finish()
		if err != nil {
			b.Fatal(err)
		}
		totalOps = idx.TotalOps
	}
	b.StopTimer()
	if totalOps > 0 && b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(totalOps), "ns/trace-op")
	}
}

func BenchmarkSimCold(b *testing.B) {
	for _, name := range benchWorkloads {
		ops := benchOps(b, name, gpusim.DefaultConfig().NumSMs)
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("%s/%s", name, m.label), func(b *testing.B) {
				cfg := benchConfig(m)
				traces := make([]gpusim.Trace, len(ops))
				var warpOps uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Fresh SliceTrace headers share the op slices; the
					// simulator never mutates ops (pinned by the
					// clone-isolation conformance invariant).
					for j := range ops {
						traces[j] = &gpusim.SliceTrace{Ops: ops[j]}
					}
					sim, err := gpusim.New(cfg, traces)
					if err != nil {
						b.Fatal(err)
					}
					st, err := sim.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					warpOps = st.WarpOps
				}
				b.StopTimer()
				reportWarpOp(b, warpOps)
			})
		}
	}
}
