package gpusim

import "math/bits"

// fastDivMod precomputes a divisor so the hot path never executes a
// 64-bit hardware divide: power-of-two divisors become shift/mask, and
// everything else uses Lemire's fastmod (M = ⌈2^128/d⌉; x mod d is the
// high 64 bits of ((M·x) mod 2^128)·d). Both paths return exactly x/d
// and x%d for every x — the set-index and slice-interleave arithmetic
// must stay bit-identical to the plain operators it replaces, and
// TestFastDivMod checks that exhaustively around the boundaries plus at
// random.
//
// Why it matters: the L2 set count of the default machine is 1536 (not
// a power of two), so the seed spent a hardware divide on every cache
// probe — the single hottest instruction in the profile.
type fastDivMod struct {
	d     uint64
	pow2  bool
	shift uint
	mask  uint64
	// M = ⌈2^128/d⌉ as a 128-bit value (hi, lo); only set for non-pow2.
	mHi, mLo uint64
}

func newFastDivMod(d uint64) fastDivMod {
	f := fastDivMod{d: d}
	if d == 0 {
		// Leave the plain-operator path, so div(x) panics with the same
		// divide-by-zero the expression it replaced would have raised.
		return f
	}
	if d&(d-1) == 0 {
		f.pow2 = true
		f.shift = uint(bits.TrailingZeros64(d))
		f.mask = d - 1
		return f
	}
	// M = floor((2^128-1)/d) + 1. Since d is not a power of two it does
	// not divide 2^128, so this equals ⌈2^128/d⌉.
	all := ^uint64(0)
	qHi := all / d
	rem := all % d
	qLo, _ := bits.Div64(rem, all, d) // rem < d, so Div64 cannot panic
	f.mHi, f.mLo = qHi, qLo
	f.mLo++
	if f.mLo == 0 {
		f.mHi++
	}
	return f
}

func (f fastDivMod) mod(x uint64) uint64 {
	if f.pow2 {
		return x & f.mask
	}
	// lowbits = (M * x) mod 2^128
	hi1, lo := bits.Mul64(f.mLo, x)
	hi := f.mHi*x + hi1
	// x mod d = floor(lowbits * d / 2^128)
	p1Hi, p1Lo := bits.Mul64(hi, f.d)
	p2Hi, _ := bits.Mul64(lo, f.d)
	_, carry := bits.Add64(p1Lo, p2Hi, 0)
	return p1Hi + carry
}

func (f fastDivMod) div(x uint64) uint64 {
	if f.pow2 {
		return x >> f.shift
	}
	// Division is off the hottest path for non-pow2 divisors (the
	// default interleave and carve spans are powers of two); keep the
	// exact hardware divide rather than a second magic constant.
	return x / f.d
}
