package gpusim

import "fmt"

// Stats aggregates one simulation run.
type Stats struct {
	Cycles uint64

	WarpOps, Loads, Stores, Atomics uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	// DRAM sector transfers by cause.
	DRAMDataReads uint64
	DRAMTagReads  uint64
	DRAMWrites    uint64

	TagL2Hits, TagL2Misses uint64
}

// ReadBloat is the fraction of extra DRAM read traffic caused by tag
// fetches: tag reads / data reads (Figure 8c's "% Read Bloat").
func (s Stats) ReadBloat() float64 {
	if s.DRAMDataReads == 0 {
		return 0
	}
	return float64(s.DRAMTagReads) / float64(s.DRAMDataReads)
}

// DRAMBytes is the total DRAM traffic in bytes.
func (s Stats) DRAMBytes() uint64 {
	return 32 * (s.DRAMDataReads + s.DRAMTagReads + s.DRAMWrites)
}

// BandwidthUtilization is achieved DRAM bandwidth relative to the
// configured peak (0..1); the x-coordinate of the Figure 8c analysis.
func (s Stats) BandwidthUtilization(cfg Config) float64 {
	if s.Cycles == 0 {
		return 0
	}
	peakBytesPerCycle := float64(cfg.NumSlices) * 32 / float64(cfg.DRAMCyclesPerSector)
	return float64(s.DRAMBytes()) / float64(s.Cycles) / peakBytesPerCycle
}

// L1HitRate and L2HitRate are convenience accessors.
func (s Stats) L1HitRate() float64 {
	if t := s.L1Hits + s.L1Misses; t > 0 {
		return float64(s.L1Hits) / float64(t)
	}
	return 0
}

// L2HitRate returns the L2 data hit rate.
func (s Stats) L2HitRate() float64 {
	if t := s.L2Hits + s.L2Misses; t > 0 {
		return float64(s.L2Hits) / float64(t)
	}
	return 0
}

func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d ops=%d L1=%.1f%% L2=%.1f%% dram(data=%d tag=%d wr=%d) bloat=%.1f%%",
		s.Cycles, s.WarpOps, 100*s.L1HitRate(), 100*s.L2HitRate(),
		s.DRAMDataReads, s.DRAMTagReads, s.DRAMWrites, 100*s.ReadBloat())
}

// Slowdown compares two runs of the same workload: how much slower
// `tagged` is than `baseline`, as a fraction (0.05 = 5% slower).
func Slowdown(baseline, tagged Stats) float64 {
	if baseline.Cycles == 0 {
		return 0
	}
	return float64(tagged.Cycles)/float64(baseline.Cycles) - 1
}
