package gpusim

import "fmt"

// Stats aggregates one simulation run.
type Stats struct {
	Cycles uint64

	WarpOps, Loads, Stores, Atomics uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	// DRAM sector transfers by cause.
	DRAMDataReads uint64
	DRAMTagReads  uint64
	DRAMWrites    uint64

	TagL2Hits, TagL2Misses uint64

	// Samples is the phase-resolved telemetry time series recorded every
	// Config.SampleInterval cycles (empty when sampling is disabled).
	// It lets consumers see *when* a run is bandwidth-bound — the peak
	// and phase structure behind the end-of-run aggregates above.
	Samples []Sample `json:",omitempty"`

	// HostNsPerOp and HostAllocsPerOp are host-side cost telemetry: the
	// wall nanoseconds and heap allocations the simulator itself spent
	// per simulated warp op during Run/RunContext. They describe the
	// machine running the simulation, not the machine being simulated,
	// and are nondeterministic — so they are json:"-" tagged, keeping
	// them out of the conformance goldens, the runner's disk cache and
	// every canonical-JSON comparison. Both are 0 on a run that issued
	// no warp ops; HostAllocsPerOp reads the process-wide allocation
	// counter, so it is exact for a lone simulation and approximate when
	// other goroutines allocate concurrently (e.g. parallel sweeps).
	HostNsPerOp     float64 `json:"-"`
	HostAllocsPerOp float64 `json:"-"`
}

// Sample is one telemetry window. Rates are computed over the window
// (not cumulatively), so the series resolves phases that the aggregate
// Stats hide. The final window of a run may be shorter than the sample
// interval; windows that span fast-forwarded idle stretches may be
// longer (idle gaps are collapsed into the window they end in).
type Sample struct {
	// Cycle is the simulation time at the end of the window.
	Cycle uint64
	// Cycles is the window length.
	Cycles uint64

	// BandwidthUtil is DRAM traffic in the window relative to the
	// configured peak (0..1).
	BandwidthUtil float64
	// L1HitRate / L2HitRate / TagHitRate are the window's hit rates
	// (0 when the window saw no accesses of that kind).
	L1HitRate  float64
	L2HitRate  float64
	TagHitRate float64

	// MSHROccupancy is the instantaneous fraction of L1 MSHRs in use at
	// the sample point, averaged across SMs (0..1).
	MSHROccupancy float64
	// QueueDepth / DRAMQueueDepth are the mean instantaneous L2-slice
	// request-queue and DRAM-queue depths at the sample point.
	QueueDepth     float64
	DRAMQueueDepth float64
}

// WithoutHost returns a copy of s with the host-side cost telemetry
// zeroed — the deterministic, simulated-machine part of the Stats.
// Differential comparisons (repeatability tests, replay equivalence,
// cache-hit-vs-recompute) must compare WithoutHost values or the
// canonical JSON encoding, which already excludes the host fields.
func (s Stats) WithoutHost() Stats {
	s.HostNsPerOp, s.HostAllocsPerOp = 0, 0
	return s
}

// ReadBloat is the fraction of extra DRAM read traffic caused by tag
// fetches: tag reads / data reads (Figure 8c's "% Read Bloat").
// A run with no DRAM data reads returns 0 — "no bloat measurable", not
// a measured-zero; the distinction matters only for empty traces.
func (s Stats) ReadBloat() float64 {
	if s.DRAMDataReads == 0 {
		return 0
	}
	return float64(s.DRAMTagReads) / float64(s.DRAMDataReads)
}

// DRAMBytes is the total DRAM traffic in bytes.
func (s Stats) DRAMBytes() uint64 {
	return 32 * (s.DRAMDataReads + s.DRAMTagReads + s.DRAMWrites)
}

// BandwidthUtilization is achieved DRAM bandwidth relative to the
// configured peak (0..1); the x-coordinate of the Figure 8c analysis.
//
// When s.Cycles is 0 (a run that never executed, e.g. an empty trace or
// an unpopulated Stats value) the result is a NaN-safe 0. Telemetry
// consumers must read that 0 as "utilization not measured", not as an
// idle memory system; check s.Cycles > 0 to distinguish the two. The
// same guard covers a zero-value or unvalidated Config (NumSlices or
// DRAMCyclesPerSector ≤ 0 would otherwise make the peak 0 or negative
// and leak ±Inf/NaN into JSON exports, which encoding/json rejects).
func (s Stats) BandwidthUtilization(cfg Config) float64 {
	if s.Cycles == 0 {
		return 0
	}
	if cfg.NumSlices <= 0 || cfg.DRAMCyclesPerSector <= 0 {
		return 0
	}
	peakBytesPerCycle := float64(cfg.NumSlices) * 32 / float64(cfg.DRAMCyclesPerSector)
	return float64(s.DRAMBytes()) / float64(s.Cycles) / peakBytesPerCycle
}

// PeakBandwidthUtil returns the maximum per-window bandwidth
// utilization over the sampled time series — the phase-resolved
// counterpart of BandwidthUtilization's run-wide mean. It returns 0
// when sampling was disabled (no samples recorded).
func (s Stats) PeakBandwidthUtil() float64 {
	peak := 0.0
	for _, smp := range s.Samples {
		if smp.BandwidthUtil > peak {
			peak = smp.BandwidthUtil
		}
	}
	return peak
}

// BandwidthBoundFraction returns the fraction of sampled cycles spent
// in windows whose bandwidth utilization is at or above threshold — a
// direct "how long was this workload bandwidth-bound" measure for the
// Figure 8c analysis. Returns 0 when sampling was disabled.
func (s Stats) BandwidthBoundFraction(threshold float64) float64 {
	var bound, total uint64
	for _, smp := range s.Samples {
		total += smp.Cycles
		if smp.BandwidthUtil >= threshold {
			bound += smp.Cycles
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bound) / float64(total)
}

// L1HitRate and L2HitRate are convenience accessors.
func (s Stats) L1HitRate() float64 {
	if t := s.L1Hits + s.L1Misses; t > 0 {
		return float64(s.L1Hits) / float64(t)
	}
	return 0
}

// L2HitRate returns the L2 data hit rate.
func (s Stats) L2HitRate() float64 {
	if t := s.L2Hits + s.L2Misses; t > 0 {
		return float64(s.L2Hits) / float64(t)
	}
	return 0
}

// TagL2HitRate returns the tag-cache (tag sectors resident in L2) hit
// rate; 0 when the run performed no tag lookups (e.g. outside
// ModeCarveOut), which consumers must not read as a 0% hit rate.
func (s Stats) TagL2HitRate() float64 {
	if t := s.TagL2Hits + s.TagL2Misses; t > 0 {
		return float64(s.TagL2Hits) / float64(t)
	}
	return 0
}

func (s Stats) String() string {
	out := fmt.Sprintf("cycles=%d ops=%d atomics=%d L1=%.1f%% L2=%.1f%% tagL2=%.1f%% dram(data=%d tag=%d wr=%d) bloat=%.1f%%",
		s.Cycles, s.WarpOps, s.Atomics, 100*s.L1HitRate(), 100*s.L2HitRate(), 100*s.TagL2HitRate(),
		s.DRAMDataReads, s.DRAMTagReads, s.DRAMWrites, 100*s.ReadBloat())
	if s.HostNsPerOp > 0 {
		// Host-side simulator cost (absent on unpopulated Stats values,
		// e.g. zero literals in tests or cells resolved from the cache).
		out += fmt.Sprintf(" host(ns/op=%.0f allocs/op=%.2f)", s.HostNsPerOp, s.HostAllocsPerOp)
	}
	return out
}

// Slowdown compares two runs of the same workload: how much slower
// `tagged` is than `baseline`, as a fraction (0.05 = 5% slower).
//
// When baseline.Cycles is 0 (baseline never ran) the result is a
// NaN-safe 0: "no slowdown measured", not a measured-equal pair.
// Callers feeding dashboards should verify baseline.Cycles > 0 before
// treating the value as a comparison.
func Slowdown(baseline, tagged Stats) float64 {
	if baseline.Cycles == 0 {
		return 0
	}
	return float64(tagged.Cycles)/float64(baseline.Cycles) - 1
}
