// Package gpusim is a trace-driven, cycle-approximate simulator of a
// GPU memory hierarchy in the style of §2.4's Figure 2: per-SM coalescers
// and sectored L1 caches with MSHRs, a crossbar to address-interleaved L2
// slices, and DRAM channels with finite bandwidth.
//
// It exists to reproduce the paper's performance evaluation (§5.2,
// Figure 8): the tag carve-out baseline issues parallel lock-tag lookups
// on L2 data misses and caches tag sectors in the L2 (pressuring its
// capacity and the DRAM channels), while IMT and ECC stealing add no
// traffic at all, and a GPUShield-like tagged base-and-bounds scheme adds
// a fixed per-access check latency. The simulator reports cycles, DRAM
// traffic, read bloat, and bandwidth so Figure 8a/8b/8c and the §6
// comparison can be regenerated.
//
// The paper ran the proprietary NVAS simulator on a GV100 with 193
// application traces; this package plus internal/workload is the
// substitution documented in DESIGN.md — same structural mechanisms,
// synthetic traces.
package gpusim
