package gpusim

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestParseTagModeRoundTrip(t *testing.T) {
	// Every TagMode.String() spelling must parse back to its mode.
	for _, m := range []TagMode{ModeNone, ModeIMT, ModeECCSteal, ModeCarveOut, ModeBoundsTable} {
		got, carve, err := ParseTagMode(m.String())
		if err != nil {
			t.Fatalf("ParseTagMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseTagMode(%q) = %v", m.String(), got)
		}
		if m == ModeCarveOut && carve.TagBits == 0 {
			t.Error("bare carve-out must carry a default geometry")
		}
	}
}

func TestParseTagModeShorthands(t *testing.T) {
	cases := map[string]struct {
		mode  TagMode
		carve CarveOut
	}{
		"carve-low":  {ModeCarveOut, CarveOutLow},
		"carve-high": {ModeCarveOut, CarveOutHigh},
		"carve-mte":  {ModeCarveOut, CarveOutARMMTE},
		"bounds":     {ModeBoundsTable, CarveOut{}},
	}
	for s, want := range cases {
		mode, carve, err := ParseTagMode(s)
		if err != nil {
			t.Fatalf("ParseTagMode(%q): %v", s, err)
		}
		if mode != want.mode || carve != want.carve {
			t.Errorf("ParseTagMode(%q) = %v/%+v, want %v/%+v", s, mode, carve, want.mode, want.carve)
		}
	}
	if _, _, err := ParseTagMode("no-such-mode"); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestTagModeNamesAllParse(t *testing.T) {
	for _, name := range TagModeNames() {
		mode, carve, err := ParseTagMode(name)
		if err != nil {
			t.Errorf("advertised name %q does not parse: %v", name, err)
		}
		// A parsed carve-out config must pass validation end to end.
		cfg := DefaultConfig()
		cfg.Mode, cfg.Carve = mode, carve
		if err := cfg.Validate(); err != nil {
			t.Errorf("%q yields an invalid config: %v", name, err)
		}
	}
}

func streamTrace(n int) *FuncTrace {
	return &FuncTrace{N: n, Gen: func(i int) WarpOp {
		return WarpOp{Addrs: []uint64{uint64(i) * 32}}
	}}
}

func TestRunContextCancelled(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := New(cfg, []Trace{streamTrace(200_000)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunMatchesRunContext(t *testing.T) {
	cfg := DefaultConfig()
	a, err := New(cfg, []Trace{streamTrace(5000)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, []Trace{streamTrace(5000)})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa.WithoutHost(), sb.WithoutHost()) {
		t.Errorf("Run and RunContext diverge: %v vs %v", sa, sb)
	}
}

func TestCloneTraces(t *testing.T) {
	orig := &SliceTrace{Ops: []WarpOp{
		{Addrs: []uint64{0, 32}},
		{Store: true, Addrs: []uint64{64}, Compute: 3},
	}}
	cloned, err := CloneTraces([]Trace{orig, nil})
	if err != nil {
		t.Fatal(err)
	}
	if cloned[1] != nil {
		t.Error("nil (idle SM) entry must stay nil")
	}

	// Drain the original; the clone must still replay from the start.
	for {
		if _, ok := orig.Next(); !ok {
			break
		}
	}
	got := cloned[0]
	op, ok := got.Next()
	if !ok || len(op.Addrs) != 2 || op.Addrs[0] != 0 {
		t.Fatalf("clone op0 = %+v ok=%v", op, ok)
	}
	// Mutating the clone's addresses must not alias the original.
	op.Addrs[0] = 999
	if orig.Ops[0].Addrs[0] != 0 {
		t.Error("clone aliases the original's address slice")
	}
	op2, ok := got.Next()
	if !ok || !op2.Store || op2.Compute != 3 {
		t.Fatalf("clone op1 = %+v", op2)
	}

	// A started trace clones rewound.
	half := &SliceTrace{Ops: orig.Ops}
	half.Next()
	re, err := CloneTraces([]Trace{half})
	if err != nil {
		t.Fatal(err)
	}
	if op, ok := re[0].Next(); !ok || op.Addrs[0] != 0 {
		t.Fatalf("rewound clone starts at %+v", op)
	}

	// Generator-backed traces cannot be cloned safely.
	if _, err := CloneTraces([]Trace{streamTrace(4)}); err == nil {
		t.Error("FuncTrace clone must be rejected")
	}
}
