package gpusim

import (
	"bytes"
	"strings"
	"testing"
)

// testTraces builds a small but structurally varied trace set: an idle
// SM, an empty SM, and SMs mixing loads/stores/atomics, tag bits, and
// empty address lists.
func testTraces() []Trace {
	return []Trace{
		nil,
		&SliceTrace{},
		&SliceTrace{Ops: []WarpOp{
			{Addrs: []uint64{0x1000, 0x1020, 0x1000}, Compute: 3},
			{Store: true, Addrs: []uint64{1 << 49, 1<<49 | 32}},
			{Atomic: true, Addrs: []uint64{0}, Compute: 1},
			{Compute: 9},
		}},
		&SliceTrace{Ops: []WarpOp{
			{Store: true, Addrs: []uint64{7, 7, 7}, Compute: 1 << 20},
		}},
	}
}

func encodeTraces(t testing.TB, traces []Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTracesClone(&buf, traces); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drain(tr Trace) []WarpOp {
	if tr == nil {
		return nil
	}
	var ops []WarpOp
	for {
		op, ok := tr.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// TestWriteTracesCloneDoesNotConsume is the regression test for the
// silent-consumption trap: WriteTraces drains its inputs, while
// WriteTracesClone must leave them replayable and still produce
// byte-identical output.
func TestWriteTracesCloneDoesNotConsume(t *testing.T) {
	traces := testTraces()
	var cloneBuf bytes.Buffer
	if err := WriteTracesClone(&cloneBuf, traces); err != nil {
		t.Fatal(err)
	}
	// The originals must still yield their full op streams.
	if ops := drain(traces[2]); len(ops) != 4 {
		t.Fatalf("WriteTracesClone consumed its input: %d ops left, want 4", len(ops))
	}
	if ops := drain(traces[3]); len(ops) != 1 {
		t.Fatalf("WriteTracesClone consumed its input: %d ops left, want 1", len(ops))
	}
	// And the bytes match what a draining WriteTraces produces.
	var drainBuf bytes.Buffer
	if err := WriteTraces(&drainBuf, testTraces()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cloneBuf.Bytes(), drainBuf.Bytes()) {
		t.Fatal("WriteTracesClone bytes differ from WriteTraces bytes")
	}
	// After the draining write, the inputs are exhausted — the
	// documented contract.
	consumed := testTraces()
	var sink bytes.Buffer
	if err := WriteTraces(&sink, consumed); err != nil {
		t.Fatal(err)
	}
	if ops := drain(consumed[2]); len(ops) != 0 {
		t.Fatalf("WriteTraces left %d ops unconsumed, want 0", len(ops))
	}
	// FuncTrace inputs are not cloneable and must be rejected.
	if err := WriteTracesClone(&sink, []Trace{&FuncTrace{N: 1, Gen: func(int) WarpOp { return WarpOp{} }}}); err == nil {
		t.Fatal("WriteTracesClone accepted a non-cloneable FuncTrace")
	}
}

// TestIndexTraceStreamMatchesReadTraces checks the streaming validator
// and the materializing reader agree byte for byte: same acceptance,
// same per-SM op streams via OpenTraceAt.
func TestIndexTraceStreamMatchesReadTraces(t *testing.T) {
	blob := encodeTraces(t, testTraces())
	idx, err := IndexTraceStream(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumSMs != 4 || idx.TotalOps != 5 || idx.Bytes != int64(len(blob)) {
		t.Fatalf("index = %+v, want 4 SMs / 5 ops / %d bytes", idx, len(blob))
	}
	want, err := ReadTraces(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	got := OpenTraceAt(bytes.NewReader(blob), idx)
	if len(got) != len(want) {
		t.Fatalf("OpenTraceAt returned %d SMs, want %d", len(got), len(want))
	}
	for sm := range want {
		if !opsEqual(drain(want[sm]), drain(got[sm])) {
			t.Fatalf("SM %d: streamed replay diverges from ReadTraces", sm)
		}
	}
}

// TestStreamTraceCloneAndBatch checks the store-replay trace honors the
// Clone contract (independent, rewound) and that NextBatch yields
// exactly the sequence Next would.
func TestStreamTraceCloneAndBatch(t *testing.T) {
	blob := encodeTraces(t, testTraces())
	idx, err := IndexTraceStream(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	traces := OpenTraceAt(bytes.NewReader(blob), idx)
	tr := traces[2]
	// Partially consume, then clone: the clone must start from op 0.
	if _, ok := tr.Next(); !ok {
		t.Fatal("empty stream")
	}
	cloned, err := CloneTraces([]Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	clone := cloned[0]
	var batched []WarpOp
	bt := clone.(interface{ NextBatch([]WarpOp) int })
	buf := make([]WarpOp, 3)
	for {
		n := bt.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			op.Addrs = append([]uint64(nil), op.Addrs...)
			batched = append(batched, op)
		}
	}
	fresh := OpenTraceAt(bytes.NewReader(blob), idx)
	if !opsEqual(batched, drain(fresh[2])) {
		t.Fatal("clone NextBatch sequence diverges from a fresh trace's Next sequence")
	}
	st, ok := clone.(*blobTrace)
	if !ok {
		t.Fatalf("clone is %T, want *blobTrace", clone)
	}
	if st.Err() != nil {
		t.Fatalf("replay error: %v", st.Err())
	}
}

// TestTraceEncoderMatchesWriteTraces: the incremental encoder must be
// byte-compatible with the one-shot writer.
func TestTraceEncoderMatchesWriteTraces(t *testing.T) {
	traces := testTraces()
	want := encodeTraces(t, traces)
	var got bytes.Buffer
	enc, err := NewTraceEncoder(&got, len(traces))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		ops := drain(tr)
		if err := enc.BeginSM(uint64(len(ops))); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := enc.WriteOp(op); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("TraceEncoder bytes differ from WriteTraces bytes")
	}
}

// TestTraceEncoderValidatesStructure: the encoder refuses to produce a
// blob whose structure disagrees with its declarations.
func TestTraceEncoderValidatesStructure(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewTraceEncoder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteOp(WarpOp{}); err == nil {
		t.Fatal("WriteOp before BeginSM accepted")
	}
	enc, _ = NewTraceEncoder(&buf, 1)
	if err := enc.BeginSM(2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Fatal("Close with ops owed accepted")
	}
	enc, _ = NewTraceEncoder(&buf, 1)
	if err := enc.BeginSM(1); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginSM(1); err == nil {
		t.Fatal("BeginSM with ops owed accepted")
	}
	enc, _ = NewTraceEncoder(&buf, 0)
	if err := enc.BeginSM(0); err == nil {
		t.Fatal("BeginSM past declared SM count accepted")
	}
	if err := enc.Close(); err == nil {
		t.Fatal("errors must stick: Close after a failed BeginSM accepted")
	}
	enc, _ = NewTraceEncoder(&buf, 0)
	if err := enc.Close(); err != nil {
		t.Fatalf("closing an empty 0-SM stream: %v", err)
	}
}

// TestIndexTraceStreamRejects: the validator must reject malformed,
// truncated, and padded streams that a later replay could misread.
func TestIndexTraceStreamRejects(t *testing.T) {
	blob := encodeTraces(t, testTraces())
	cases := map[string][]byte{
		"bad magic":       []byte("NOTATRACE"),
		"empty":           {},
		"truncated magic": []byte("IMTTRC"),
		"truncated SMs":   blob[:len(blob)-3],
		"trailing data":   append(append([]byte{}, blob...), 0),
		"implausible SMs": []byte(traceMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
	}
	for name, b := range cases {
		if _, err := IndexTraceStream(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Non-canonical varints are accepted (the format never promised
	// canonical encodings) but re-encoding canonicalizes them.
	nc := []byte(traceMagic + "\x81\x00\x00") // SM count 1 in two bytes, 0 ops
	idx, err := IndexTraceStream(bytes.NewReader(nc))
	if err != nil {
		t.Fatalf("non-canonical varint rejected: %v", err)
	}
	if idx.NumSMs != 1 || idx.TotalOps != 0 {
		t.Fatalf("non-canonical decode: %+v", idx)
	}
}

// FuzzTraceChunkDecode drives the chunked streaming decoder with
// arbitrary bytes: it must never panic, never allocate beyond one op
// chunk whatever the headers claim, and any accepted input must decode
// → encode → decode to a fixed point (same index, same op streams,
// byte-stable re-encoding).
func FuzzTraceChunkDecode(f *testing.F) {
	f.Add(encodeTraces(f, nil))
	f.Add(encodeTraces(f, testTraces()))
	f.Add([]byte("IMTTRC1\n\x01\x01\x00\x02\x01\x80\x20"))
	f.Add([]byte("IMTTRC1\n\x02\x03"))                 // truncated
	f.Add([]byte("IMTTRC1\n\x00XX"))                   // trailing data
	f.Add([]byte(strings.Repeat("IMTTRC1\n", 2)))      // magic as payload
	f.Add([]byte("IMTTRC1\n\x01\x81\x00\x00\x00\x00")) // non-canonical op count

	reencode := func(t *testing.T, b []byte) ([]byte, TraceIndex, bool) {
		sc, err := NewTraceScanner(bytes.NewReader(b))
		if err != nil {
			return nil, TraceIndex{}, false
		}
		var out bytes.Buffer
		enc, err := NewTraceEncoder(&out, sc.NumSMs())
		if err != nil {
			t.Fatalf("encoder rejected scanner's SM count: %v", err)
		}
		var chunk [64]WarpOp
		for {
			ops, ok, err := sc.NextSM()
			if err != nil {
				return nil, TraceIndex{}, false
			}
			if !ok {
				break
			}
			if err := enc.BeginSM(ops); err != nil {
				t.Fatalf("encoder rejected scanned op count %d: %v", ops, err)
			}
			for {
				n, err := sc.ReadOps(chunk[:])
				if err != nil {
					return nil, TraceIndex{}, false
				}
				if n == 0 {
					break
				}
				for _, op := range chunk[:n] {
					if err := enc.WriteOp(op); err != nil {
						t.Fatalf("encoder rejected scanned op: %v", err)
					}
				}
			}
		}
		idx, err := sc.Finish()
		if err != nil {
			return nil, TraceIndex{}, false
		}
		if err := enc.Close(); err != nil {
			t.Fatalf("encoder close after full scan: %v", err)
		}
		return out.Bytes(), idx, true
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		idx, err := IndexTraceStream(bytes.NewReader(b))
		if err != nil {
			// Rejected input: the scanner must agree (no panic is the
			// only other contract).
			if _, _, ok := reencode(t, b); ok {
				t.Fatal("scanner accepted what IndexTraceStream rejected")
			}
			return
		}
		enc1, idx1, ok := reencode(t, b)
		if !ok {
			t.Fatal("scanner rejected what IndexTraceStream accepted")
		}
		if idx1.NumSMs != idx.NumSMs || idx1.TotalOps != idx.TotalOps || idx1.Bytes != idx.Bytes {
			t.Fatalf("scanner index %+v != IndexTraceStream index %+v", idx1, idx)
		}
		// The materializing reader accepts a superset; on accepted
		// input the op streams must agree exactly.
		want, err := ReadTraces(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadTraces rejected validated stream: %v", err)
		}
		got, err := ReadTraces(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("ReadTraces rejected re-encoded stream: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("re-encode changed SM count %d → %d", len(want), len(got))
		}
		for sm := range want {
			if !opsEqual(want[sm].(*SliceTrace).Ops, got[sm].(*SliceTrace).Ops) {
				t.Fatalf("SM %d ops changed across chunked re-encode", sm)
			}
		}
		// Fixed point: a second decode→encode pass is byte-identical
		// (the encoder emits canonical varints).
		enc2, _, ok := reencode(t, enc1)
		if !ok {
			t.Fatal("scanner rejected its own encoder's output")
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("decode→encode→decode is not a fixed point")
		}
		// And the replay path sees the same ops off the re-encoding.
		idx2, err := IndexTraceStream(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-indexing re-encoded stream: %v", err)
		}
		for sm, tr := range OpenTraceAt(bytes.NewReader(enc1), idx2) {
			if !opsEqual(want[sm].(*SliceTrace).Ops, drain(tr)) {
				t.Fatalf("SM %d: store replay diverges from ReadTraces", sm)
			}
		}
	})
}
