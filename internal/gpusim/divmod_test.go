package gpusim

import (
	"math/rand"
	"testing"
)

// TestFastDivMod pins fastDivMod against the plain operators. This is
// the load-bearing test for the hot-path divide elimination: the cache
// set index, crossbar slice routing and carve-out tag-span math all run
// through fastDivMod, and any divergence from %-semantics would silently
// reshuffle cache sets and break golden bit-identity.
func TestFastDivMod(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 7, 8, 16, 24, 31, 32, 48, 512, 1536, // 512/1536: the default L1/L2 set counts
		1000, 4096, 100_000, 1 << 20, (1 << 20) + 1,
		(1 << 44) - 1, 1 << 44, (1 << 63) - 1, 1 << 63, ^uint64(0),
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		divisors = append(divisors, rng.Uint64()%((1<<21)-3)+1, rng.Uint64()|1)
	}
	xs := []uint64{0, 1, 2, 31, 32, 33, 1535, 1536, 1537,
		tagRegionSector - 1, tagRegionSector, tagRegionSector + 1,
		(1 << 49) - 1, 1 << 49, ^uint64(0) - 1, ^uint64(0)}
	for i := 0; i < 256; i++ {
		xs = append(xs, rng.Uint64())
	}
	for _, d := range divisors {
		f := newFastDivMod(d)
		for _, x := range xs {
			if got, want := f.mod(x), x%d; got != want {
				t.Fatalf("mod(%d, %d) = %d, want %d", x, d, got, want)
			}
			if got, want := f.div(x), x/d; got != want {
				t.Fatalf("div(%d, %d) = %d, want %d", x, d, got, want)
			}
		}
	}
	// Exhaustive small-operand sweep catches off-by-one in the magic
	// constant that random probing could miss.
	for d := uint64(1); d <= 300; d++ {
		f := newFastDivMod(d)
		for x := uint64(0); x <= 2000; x++ {
			if f.mod(x) != x%d || f.div(x) != x/d {
				t.Fatalf("small sweep diverges at x=%d d=%d", x, d)
			}
		}
	}
}
