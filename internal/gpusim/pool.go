package gpusim

// Preallocated replacements for the seed simulator's per-access map
// lookups and per-op heap allocations. Two structures:
//
//   - pendTable[T]: an open-addressed linear-probe hash table from
//     sector id to a merged waiter list, with backward-shift deletion so
//     the table never accumulates tombstones and steady-state
//     insert/lookup/delete allocate nothing. Waiter lists are recycled
//     through a free list. It backs both the per-SM L1 MSHR file
//     (T = *opState; capacity bounded by Config.L1MSHRs via an explicit
//     count check at the issue site) and the per-L2-slice miss-merge
//     file of in-flight DRAM reads (T = *l2Miss).
//   - opArena: a chunked slab for opState. Warp-op lifetimes interleave
//     (an op can go quiescent and regain pending sectors while its SM is
//     blocked on MSHRs), so individual frees are unsafe; the arena bumps
//     within a run and is reused wholesale across Reset.
//
// Neither changes observable behavior: the maps they replace were never
// iterated, so only exact-key lookup semantics and per-key waiter
// append order matter, and both are preserved. cmd/conformance pins
// this bit-identity against the committed goldens.

// hashSector mixes a sector id (which may carry key tags in its high
// bits) into a well-distributed 64-bit value (splitmix64 finalizer).
func hashSector(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pendTable maps in-flight sectors to their merged waiter lists:
// open addressing, linear probing, backward-shift deletion.
type pendTable[T any] struct {
	keys  []uint64
	vals  [][]T
	used  []bool
	count int
	mask  uint64
	free  [][]T
}

const pendInitialCap = 64 // power of two

func newPendTable[T any]() *pendTable[T] {
	t := &pendTable[T]{}
	t.alloc(pendInitialCap)
	return t
}

func (t *pendTable[T]) alloc(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([][]T, capacity)
	t.used = make([]bool, capacity)
	t.mask = uint64(capacity - 1)
}

// find returns the slot holding sector, or -1.
func (t *pendTable[T]) find(sector uint64) int {
	i := hashSector(sector) & t.mask
	for t.used[i] {
		if t.keys[i] == sector {
			return int(i)
		}
		i = (i + 1) & t.mask
	}
	return -1
}

func (t *pendTable[T]) addWaiter(slot int, m T) {
	t.vals[slot] = append(t.vals[slot], m)
}

// probe returns the slot holding sector (found = true) or, when absent,
// the empty slot an insert of sector would land in (found = false). The
// miss path hands that slot straight to putAt, so a lookup-then-insert
// costs one hash and one probe chain instead of two.
func (t *pendTable[T]) probe(sector uint64) (slot int, found bool) {
	i := hashSector(sector) & t.mask
	for t.used[i] {
		if t.keys[i] == sector {
			return int(i), true
		}
		i = (i + 1) & t.mask
	}
	return int(i), false
}

// putAt inserts sector with one waiter at the empty slot a just-failed
// probe returned, re-probing only when the table has to grow first.
// Nothing may be inserted or removed between the probe and the putAt.
func (t *pendTable[T]) putAt(slot int, sector uint64, m T) {
	if (uint64(t.count)+1)*4 > (t.mask+1)*3 {
		t.grow()
		i := hashSector(sector) & t.mask
		for t.used[i] {
			i = (i + 1) & t.mask
		}
		slot = int(i)
	}
	t.keys[slot] = sector
	t.used[slot] = true
	var w []T
	if n := len(t.free); n > 0 {
		w = t.free[n-1]
		t.free = t.free[:n-1]
	}
	t.vals[slot] = append(w, m)
	t.count++
}

// take removes sector's entry and returns its waiter list (nil if
// absent); the caller must hand the slice back through recycle once done
// iterating. Deletion uses the standard linear-probe backward-shift so
// probe chains stay intact without tombstones.
func (t *pendTable[T]) take(sector uint64) []T {
	slot := t.find(sector)
	if slot < 0 {
		return nil
	}
	w := t.vals[slot]
	i := uint64(slot)
	t.used[i] = false
	t.vals[i] = nil
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.used[j] {
			break
		}
		k := hashSector(t.keys[j]) & t.mask
		// Entry j may move into the hole at i only if its home slot k is
		// cyclically outside (i, j].
		if i <= j {
			if i < k && k <= j {
				continue
			}
		} else if i < k || k <= j {
			continue
		}
		t.keys[i], t.vals[i], t.used[i] = t.keys[j], t.vals[j], true
		t.used[j] = false
		t.vals[j] = nil
		i = j
	}
	t.count--
	return w
}

func (t *pendTable[T]) recycle(w []T) {
	clear(w)
	t.free = append(t.free, w[:0])
}

func (t *pendTable[T]) grow() {
	oldKeys, oldVals, oldUsed := t.keys, t.vals, t.used
	t.alloc(int(t.mask+1) * 2)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := hashSector(oldKeys[i]) & t.mask
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.vals[j] = oldVals[i]
		t.used[j] = true
	}
}

func (t *pendTable[T]) reset() {
	for i := range t.vals {
		if t.used[i] {
			t.recycle(t.vals[i])
			t.vals[i] = nil
		}
	}
	clear(t.used)
	t.count = 0
}

// opArena bump-allocates opStates in chunks; pointers stay stable (the
// chunks never move) and the whole arena is reused across Sim.Reset.
type opArena struct {
	chunks [][]opState
	chunk  int // chunk currently bumping
	n      int // used entries within that chunk
}

const opChunkSize = 512

func (a *opArena) get(sm *smState, pending int) *opState {
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]opState, opChunkSize))
	}
	op := &a.chunks[a.chunk][a.n]
	op.sm = sm
	op.pending = pending
	op.idx = int32(a.chunk*opChunkSize + a.n)
	if a.n++; a.n == opChunkSize {
		a.chunk++
		a.n = 0
	}
	return op
}

func (a *opArena) reset() {
	a.chunk, a.n = 0, 0
}

// at returns the opState an event's packed arena index refers to.
func (a *opArena) at(idx int32) *opState {
	return &a.chunks[idx/opChunkSize][idx%opChunkSize]
}
