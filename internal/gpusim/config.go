package gpusim

import "fmt"

// TagMode selects the memory-safety mechanism being simulated.
type TagMode int

const (
	// ModeNone: no memory tagging (the performance baseline).
	ModeNone TagMode = iota
	// ModeIMT: Implicit Memory Tagging. Tags ride in the ECC check bits,
	// so the memory system behaves identically to ModeNone — the paper's
	// "no storage or memory traffic overheads" claim is structural, and
	// the simulator treats it as such (ECC encode/decode latency is part
	// of the baseline pipeline either way).
	ModeIMT
	// ModeECCSteal: tags stored in stolen ECC check bits. Also traffic-
	// free; the cost is reliability, not performance (see reliability).
	ModeECCSteal
	// ModeCarveOut: tags in a dedicated memory carve-out, fetched on L2
	// data misses and cached in the L2 (the ARM-MTE/LAK-like baseline).
	ModeCarveOut
	// ModeBoundsTable: a GPUShield-like tagged base-and-bounds check on
	// every memory instruction (no extra memory traffic, small fixed
	// per-access latency in the LD/ST path).
	ModeBoundsTable
)

func (m TagMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeIMT:
		return "imt"
	case ModeECCSteal:
		return "ecc-steal"
	case ModeCarveOut:
		return "carve-out"
	case ModeBoundsTable:
		return "bounds-table"
	default:
		return fmt.Sprintf("TagMode(%d)", int(m))
	}
}

// ParseTagMode maps a mode name to its TagMode and carve-out geometry.
// It round-trips every TagMode.String() spelling (a bare "carve-out"
// gets the low-tag-storage geometry) and additionally accepts the
// carve-geometry shorthands used on the command line:
//
//	none, imt, ecc-steal, bounds-table (alias: bounds),
//	carve-out, carve-low, carve-high, carve-mte
func ParseTagMode(s string) (TagMode, CarveOut, error) {
	switch s {
	case "none":
		return ModeNone, CarveOut{}, nil
	case "imt":
		return ModeIMT, CarveOut{}, nil
	case "ecc-steal":
		return ModeECCSteal, CarveOut{}, nil
	case "carve-out", "carve-low":
		return ModeCarveOut, CarveOutLow, nil
	case "carve-high":
		return ModeCarveOut, CarveOutHigh, nil
	case "carve-mte":
		return ModeCarveOut, CarveOutARMMTE, nil
	case "bounds-table", "bounds":
		return ModeBoundsTable, CarveOut{}, nil
	default:
		return 0, CarveOut{}, fmt.Errorf("gpusim: unknown tagging mode %q (want one of %v)", s, TagModeNames())
	}
}

// TagModeNames lists the spellings ParseTagMode accepts, for usage text.
func TagModeNames() []string {
	return []string{"none", "imt", "ecc-steal", "carve-out", "carve-low", "carve-high", "carve-mte", "bounds-table", "bounds"}
}

// CarveOut describes the tag-store geometry for ModeCarveOut.
type CarveOut struct {
	// TagBits per granule and the granule size determine how much data
	// one 32B tag sector covers: 32*8/TagBits granules × GranuleBytes.
	TagBits      int
	GranuleBytes int
}

// CoverageBytes returns the span of data covered by one 32B tag sector.
func (c CarveOut) CoverageBytes() uint64 {
	return uint64(32*8/c.TagBits) * uint64(c.GranuleBytes)
}

// StorageOverhead returns the carve-out's share of total memory
// (TagBits per GranuleBytes of data), e.g. 3.125% for (8b, 32B).
func (c CarveOut) StorageOverhead() float64 {
	return float64(c.TagBits) / 8 / float64(c.GranuleBytes)
}

// Standard carve-out geometries from Table 1 / §5.2.
var (
	// CarveOutARMMTE: TS=4b per TG=16B granule (the ARM MTE layout);
	// tag-traffic-wise equivalent to the low-tag-storage configuration.
	CarveOutARMMTE = CarveOut{TagBits: 4, GranuleBytes: 16}
	// CarveOutLow: iso-security-10 (TS=8b, TG=32B) — the paper's
	// "low-tag-storage" curve in Figure 8.
	CarveOutLow = CarveOut{TagBits: 8, GranuleBytes: 32}
	// CarveOutHigh: iso-security-16 (TS=16b, TG=32B) — "high-tag-storage".
	CarveOutHigh = CarveOut{TagBits: 16, GranuleBytes: 32}
)

// Config sizes the simulated GPU. The defaults model a quarter-scale
// GV100-class part: scaling SM count, L2 slices and DRAM channels together
// preserves the per-SM bandwidth balance that drives the Figure 8 shapes.
type Config struct {
	NumSMs     int
	NumSlices  int // L2 slices, one DRAM channel each
	SectorSize int // bytes; the GPU access granularity (32)

	L1SizeBytes int
	L1Assoc     int
	L1MSHRs     int

	L2SliceBytes int
	L2Assoc      int

	L1Latency   int // cycles from L2 hit to L1 fill
	DRAMLatency int // additional cycles for a DRAM access
	// DRAMCyclesPerSector is each channel's occupancy per 32B transfer;
	// it sets the per-channel bandwidth (32B / cycles).
	DRAMCyclesPerSector int

	// MaxOutstandingOps bounds per-SM memory-level parallelism.
	MaxOutstandingOps int

	Mode     TagMode
	Carve    CarveOut
	BoundsCk int // extra issue cycles per memory op in ModeBoundsTable

	// InterleaveSectors: consecutive groups of this many sectors map to
	// the same L2 slice (256B groups by default).
	InterleaveSectors int

	// SampleInterval, when non-zero, records phase telemetry (bandwidth
	// utilization, hit rates, MSHR occupancy, queue depths) into
	// Stats.Samples every SampleInterval cycles, plus one final partial
	// window at run end. 0 disables sampling (no overhead).
	SampleInterval uint64

	// OnSample, when non-nil, is invoked synchronously with each Sample
	// the interval sampler records (it fires only when SampleInterval is
	// non-zero). The hook observes: it receives the sample by value,
	// allocates nothing per invocation on the simulator's side, and must
	// not retain pointers into the simulator. It does not change Stats —
	// the run is bit-identical with and without a hook installed (the
	// sampling-neutrality invariant extends to OnSample). The hook runs
	// on the simulation goroutine, so a slow hook slows the simulation;
	// live-streaming consumers must hand off to their own buffers (see
	// internal/serve/rooms for the never-block contract).
	//
	// json:"-" keeps the func out of the canonical config encoding, so
	// installing a hook does not perturb runner cache keys, manifests or
	// conformance digests.
	OnSample func(Sample) `json:"-"`
}

// DefaultConfig returns the quarter-GV100 model used by the experiments.
func DefaultConfig() Config {
	return Config{
		NumSMs:              4,
		NumSlices:           4,
		SectorSize:          32,
		L1SizeBytes:         64 << 10,
		L1Assoc:             4,
		L1MSHRs:             48,
		L2SliceBytes:        768 << 10,
		L2Assoc:             16,
		L1Latency:           30,
		DRAMLatency:         200,
		DRAMCyclesPerSector: 4,
		MaxOutstandingOps:   16,
		Mode:                ModeNone,
		BoundsCk:            1,
		InterleaveSectors:   8,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.NumSMs < 1 || c.NumSlices < 1 {
		return fmt.Errorf("gpusim: need ≥1 SM and ≥1 slice")
	}
	if c.SectorSize != 32 {
		return fmt.Errorf("gpusim: sector size must be 32 bytes (got %d)", c.SectorSize)
	}
	if c.L1SizeBytes%(c.SectorSize*c.L1Assoc) != 0 || c.L2SliceBytes%(c.SectorSize*c.L2Assoc) != 0 {
		return fmt.Errorf("gpusim: cache sizes must divide into assoc×sector sets")
	}
	if c.Mode == ModeCarveOut && c.Carve.TagBits == 0 {
		return fmt.Errorf("gpusim: carve-out mode requires a carve-out geometry")
	}
	if c.InterleaveSectors < 1 || c.MaxOutstandingOps < 1 || c.L1MSHRs < 1 {
		return fmt.Errorf("gpusim: interleave, outstanding ops and MSHRs must be ≥ 1")
	}
	if c.DRAMCyclesPerSector < 1 || c.DRAMLatency < 1 || c.L1Latency < 1 {
		return fmt.Errorf("gpusim: latencies must be ≥ 1")
	}
	return nil
}
