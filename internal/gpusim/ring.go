package gpusim

// ring is a growable power-of-two FIFO. The simulator's L2 request and
// DRAM channel queues previously advanced a slice head (`q = q[1:]`),
// which strands the consumed prefix and reallocates every time append
// outruns the leaked capacity; the ring reuses one buffer forever, so
// steady-state enqueue/dequeue is allocation-free and the hot loop walks
// a contiguous block. Pop order is FIFO, identical to the slice queues
// it replaces (bit-identity of the simulation does not depend on queue
// representation, only on pop order).
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop references so pooled values can be reused
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// reset empties the ring in place, clearing the buffer so no stale
// pointers (ops, misses) are retained across Sim.Reset.
func (r *ring[T]) reset() {
	clear(r.buf)
	r.head, r.n = 0, 0
}
