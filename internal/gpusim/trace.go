package gpusim

import "fmt"

// WarpOp is one warp-wide memory instruction after address generation:
// the per-thread addresses it touches, whether it stores, and the compute
// cycles separating it from the next memory instruction (the workload's
// arithmetic intensity).
type WarpOp struct {
	Store bool
	// Atomic marks a near-memory read-modify-write serviced at the L2
	// (atomicAdd and friends); mutually exclusive with Store.
	Atomic bool
	// Addrs are the byte addresses the 32 threads access (duplicates and
	// fewer-than-32 entries allowed; the coalescer reduces them to
	// distinct sectors). Bits [TagShift, 64) optionally carry the
	// per-thread key tag: §4.2 requires the coalescer to split apart
	// neighboring addresses whose key tags differ, and the simulator
	// honors that by coalescing on (tag, sector) pairs.
	Addrs []uint64
	// Compute is the issue gap to the next op in cycles.
	Compute int
}

// TagShift is the bit position where WarpOp addresses carry key tags
// (mirroring the 49-bit VA of imt.Config; tags above, address below).
const TagShift = 49

// Trace yields a stream of warp ops for one SM.
type Trace interface {
	// Next returns the next op; ok=false when the stream is exhausted.
	Next() (op WarpOp, ok bool)
}

// batchTrace is the optional fast path the simulator probes for: traces
// that can decode many ops at once into a caller-supplied buffer save an
// interface call per warp op. Batching must yield exactly the sequence
// repeated Next calls would — the simulator's results are identical
// either way (it only changes when the trace is decoded, not what it
// decodes). SliceTrace and FuncTrace implement it.
type batchTrace interface {
	NextBatch(dst []WarpOp) int
}

// SliceTrace adapts a materialized op list to the Trace interface.
type SliceTrace struct {
	Ops []WarpOp
	pos int
}

// Next implements Trace.
func (s *SliceTrace) Next() (WarpOp, bool) {
	if s.pos >= len(s.Ops) {
		return WarpOp{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// NextBatch copies up to len(dst) upcoming ops into dst and advances the
// stream, returning how many were delivered (0 at end of stream). The
// batched equivalent of Next; the simulator uses it to decode the trace
// in cache-friendly chunks.
func (s *SliceTrace) NextBatch(dst []WarpOp) int {
	n := copy(dst, s.Ops[s.pos:])
	s.pos += n
	return n
}

// Rewind restarts the trace from its first op without copying (the op
// slices are shared with the original stream). It lets one materialized
// trace drive many sequential simulations — e.g. Sim.Reset loops — where
// CloneTraces' deep copy would be wasted work.
func (s *SliceTrace) Rewind() { s.pos = 0 }

// Clone returns an independent, rewound deep copy of the trace (the ops
// and their address slices are copied, so the two streams never alias).
func (s *SliceTrace) Clone() Trace {
	ops := make([]WarpOp, len(s.Ops))
	for i, op := range s.Ops {
		op.Addrs = append([]uint64(nil), op.Addrs...)
		ops[i] = op
	}
	return &SliceTrace{Ops: ops}
}

// CloneTraces deep-copies materialized traces so one recorded stream can
// drive several simulations (a Trace is otherwise a one-shot stream that
// the first Sim consumes). Every input must implement Clone() Trace —
// ReadTraces results and SliceTrace qualify; generator-backed traces
// such as FuncTrace do not, because their closures may carry hidden
// state (an RNG) that a shallow copy would share. Nil entries (idle SMs)
// are preserved.
func CloneTraces(traces []Trace) ([]Trace, error) {
	out := make([]Trace, len(traces))
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		c, ok := tr.(interface{ Clone() Trace })
		if !ok {
			return nil, fmt.Errorf("gpusim: trace %d (%T) is not cloneable; materialize it into a SliceTrace first", i, tr)
		}
		out[i] = c.Clone()
	}
	return out, nil
}

// FuncTrace adapts a generator function yielding n ops.
type FuncTrace struct {
	N   int
	Gen func(i int) WarpOp
	pos int
}

// Next implements Trace.
func (f *FuncTrace) Next() (WarpOp, bool) {
	if f.pos >= f.N {
		return WarpOp{}, false
	}
	op := f.Gen(f.pos)
	f.pos++
	return op, true
}

// NextBatch fills dst by calling Gen on consecutive indices — the same
// order Next would use, so generators whose closures carry state (an
// RNG advancing call by call) observe an identical call sequence.
func (f *FuncTrace) NextBatch(dst []WarpOp) int {
	n := 0
	for n < len(dst) && f.pos < f.N {
		dst[n] = f.Gen(f.pos)
		f.pos++
		n++
	}
	return n
}

// coalesce reduces per-thread addresses to the distinct (key tag,
// sector) pairs they touch, preserving first-touch order. This is the
// §4.2 coalescer: the upper VA bits are extracted BEFORE coalescing so
// that neighboring addresses with differing key tags are never merged
// into one request — two threads touching the same 32B sector under
// different tags produce two sector requests (each needing its own tag
// check downstream). The returned values keep the tag in the high bits;
// the memory system's sector identity is the full tagged value, which
// also means differently-tagged aliases occupy distinct cache entries,
// a conservative model of the per-request tag plumbing.
func coalesce(addrs []uint64, sectorSize int, out []uint64) []uint64 {
	out = out[:0]
	for _, a := range addrs {
		tag := a >> TagShift << TagShift
		s := tag | (a&(1<<TagShift-1))/uint64(sectorSize)
		dup := false
		for _, prev := range out {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}
