package gpusim

import (
	"bytes"
	"testing"
)

// opsEqual compares op streams structurally, treating nil and empty
// address slices as the same (Clone and ReadTraces normalize them
// differently; the format cannot distinguish them).
func opsEqual(a, b []WarpOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Store != b[i].Store || a[i].Atomic != b[i].Atomic || a[i].Compute != b[i].Compute {
			return false
		}
		if len(a[i].Addrs) != len(b[i].Addrs) {
			return false
		}
		for j := range a[i].Addrs {
			if a[i].Addrs[j] != b[i].Addrs[j] {
				return false
			}
		}
	}
	return true
}

// FuzzParseTraceFile drives ReadTraces with arbitrary bytes: it must
// never panic and never allocate unboundedly from a hostile header, and
// anything it accepts must survive a write/read round trip unchanged
// (the parsed form is the format's meaning; re-encoding it must not
// drift).
func FuzzParseTraceFile(f *testing.F) {
	seed := func(traces []Trace) []byte {
		var buf bytes.Buffer
		if err := WriteTraces(&buf, traces); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(nil))
	f.Add(seed([]Trace{nil, &SliceTrace{}}))
	f.Add(seed([]Trace{&SliceTrace{Ops: []WarpOp{
		{Addrs: []uint64{0x1000, 0x1020}, Compute: 3},
		{Store: true, Addrs: []uint64{1 << 49}},
		{Atomic: true, Addrs: []uint64{0}, Compute: 1},
	}}}))
	f.Add([]byte{})
	f.Add([]byte("IMTTRC1\n"))
	f.Add([]byte("IMTTRC1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // implausible SM count
	f.Add([]byte("not a trace file"))

	f.Fuzz(func(t *testing.T, b []byte) {
		traces, err := ReadTraces(bytes.NewReader(b))
		if err != nil {
			return // rejected input: the only contract is no panic
		}
		// Clone before writing: WriteTraces drains its inputs.
		clones, err := CloneTraces(traces)
		if err != nil {
			t.Fatalf("parsed traces not cloneable: %v", err)
		}
		var out bytes.Buffer
		if err := WriteTraces(&out, traces); err != nil {
			t.Fatalf("re-encoding parsed traces: %v", err)
		}
		again, err := ReadTraces(&out)
		if err != nil {
			t.Fatalf("re-reading re-encoded traces: %v", err)
		}
		if len(again) != len(clones) {
			t.Fatalf("round trip changed SM count: %d → %d", len(clones), len(again))
		}
		for i := range again {
			want := clones[i].(*SliceTrace).Ops
			got := again[i].(*SliceTrace).Ops
			if !opsEqual(want, got) {
				t.Fatalf("SM %d ops changed across round trip", i)
			}
		}
	})
}
