package gpusim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the streaming half of the trace codec: where ReadTraces
// materializes a whole file into SliceTraces, the scanner/encoder pair
// here validates and moves multi-GB traces through bounded buffers — a
// chunk of ops at a time — and OpenTraceAt replays a trace straight off
// an io.ReaderAt (an on-disk blob) without ever loading it. The wire
// format is identical to tracefile.go; both sides share the same
// hostile-input caps.
const (
	maxTraceSMs   = 1 << 16
	maxTraceOps   = 1 << 28
	maxTraceAddrs = 1024
)

// TraceSMIndex locates one SM's op region inside a trace blob.
type TraceSMIndex struct {
	// Ops is the SM's declared (and verified) op count.
	Ops uint64 `json:"ops"`
	// Offset is the byte offset of the first op, past the op-count
	// uvarint; Bytes is the op region's encoded length.
	Offset int64 `json:"offset"`
	Bytes  int64 `json:"bytes"`
}

// TraceIndex is the byte-level map of a fully validated IMTTRC stream:
// enough to replay any SM's ops via a section reader without another
// validation pass. It is what a trace store persists alongside a blob.
type TraceIndex struct {
	NumSMs   int            `json:"num_sms"`
	TotalOps uint64         `json:"total_ops"`
	Bytes    int64          `json:"bytes"`
	SMs      []TraceSMIndex `json:"sms"`
}

// countingByteReader counts every byte consumed, giving the scanner
// exact offsets even for non-canonical varint encodings (whose width
// cannot be recomputed from the decoded value).
type countingByteReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countingByteReader) readFull(p []byte) error {
	n, err := io.ReadFull(c.br, p)
	c.n += int64(n)
	return err
}

// noEOF converts a bare EOF into ErrUnexpectedEOF: inside a record, a
// clean end of input still means the record was truncated.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readTraceOp decodes one op from br into the given addrs backing slice
// (reused when its capacity suffices, grown otherwise — allocation per
// op is capped by maxTraceAddrs regardless of what the header claims).
func readTraceOp(br io.ByteReader, addrs []uint64) (WarpOp, error) {
	flags, err := br.ReadByte()
	if err != nil {
		return WarpOp{}, fmt.Errorf("gpusim: op flags: %w", noEOF(err))
	}
	compute, err := binary.ReadUvarint(br)
	if err != nil {
		return WarpOp{}, fmt.Errorf("gpusim: op compute: %w", noEOF(err))
	}
	nAddrs, err := binary.ReadUvarint(br)
	if err != nil {
		return WarpOp{}, fmt.Errorf("gpusim: op address count: %w", noEOF(err))
	}
	if nAddrs > maxTraceAddrs {
		return WarpOp{}, fmt.Errorf("gpusim: implausible address count %d", nAddrs)
	}
	if uint64(cap(addrs)) < nAddrs {
		addrs = make([]uint64, 0, nAddrs)
	} else {
		addrs = addrs[:0]
	}
	for j := uint64(0); j < nAddrs; j++ {
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return WarpOp{}, fmt.Errorf("gpusim: op address: %w", noEOF(err))
		}
		addrs = append(addrs, a)
	}
	return WarpOp{
		Store:   flags&1 != 0,
		Atomic:  flags&2 != 0,
		Compute: int(compute),
		Addrs:   addrs,
	}, nil
}

// TraceScanner is a chunked, bounded-memory decoder for the IMTTRC
// format: NextSM/ReadOps walk the stream one SM and one op chunk at a
// time, building a TraceIndex as a side effect. It never allocates more
// than one chunk of ops, whatever op counts the headers claim.
type TraceScanner struct {
	cr   countingByteReader
	sm   int    // current SM index; -1 before the first NextSM
	left uint64 // ops remaining in the current SM
	idx  TraceIndex
}

// NewTraceScanner reads and validates the stream header.
func NewTraceScanner(r io.Reader) (*TraceScanner, error) {
	s := &TraceScanner{cr: countingByteReader{br: bufio.NewReaderSize(r, 64<<10)}, sm: -1}
	magic := make([]byte, len(traceMagic))
	if err := s.cr.readFull(magic); err != nil {
		return nil, fmt.Errorf("gpusim: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("gpusim: not a trace file (magic %q)", magic)
	}
	numSMs, err := binary.ReadUvarint(&s.cr)
	if err != nil {
		return nil, fmt.Errorf("gpusim: SM count: %w", noEOF(err))
	}
	if numSMs > maxTraceSMs {
		return nil, fmt.Errorf("gpusim: implausible SM count %d", numSMs)
	}
	s.idx.NumSMs = int(numSMs)
	s.idx.SMs = make([]TraceSMIndex, 0, min(numSMs, 4096))
	return s, nil
}

// NumSMs returns the stream's declared SM count.
func (s *TraceScanner) NumSMs() int { return s.idx.NumSMs }

// NextSM advances to the next SM and returns its declared op count;
// ok=false once every SM has been scanned. The previous SM must have
// been fully drained with ReadOps first.
func (s *TraceScanner) NextSM() (ops uint64, ok bool, err error) {
	if s.left > 0 {
		return 0, false, fmt.Errorf("gpusim: SM %d has %d undecoded ops", s.sm, s.left)
	}
	if s.sm+1 >= s.idx.NumSMs {
		return 0, false, nil
	}
	s.sm++
	numOps, err := binary.ReadUvarint(&s.cr)
	if err != nil {
		return 0, false, fmt.Errorf("gpusim: SM %d op count: %w", s.sm, noEOF(err))
	}
	if numOps > maxTraceOps {
		return 0, false, fmt.Errorf("gpusim: implausible op count %d", numOps)
	}
	s.left = numOps
	s.idx.SMs = append(s.idx.SMs, TraceSMIndex{Ops: numOps, Offset: s.cr.n})
	s.idx.TotalOps += numOps
	return numOps, true, nil
}

// ReadOps decodes up to len(dst) ops of the current SM into dst,
// returning how many were delivered (0 when the SM is drained). Each
// dst element's Addrs capacity is reused, so decoded ops are only valid
// until the next ReadOps call with the same dst.
func (s *TraceScanner) ReadOps(dst []WarpOp) (int, error) {
	n := 0
	for n < len(dst) && s.left > 0 {
		op, err := readTraceOp(&s.cr, dst[n].Addrs)
		if err != nil {
			return n, fmt.Errorf("gpusim: SM %d: %w", s.sm, err)
		}
		dst[n] = op
		n++
		s.left--
	}
	if s.left == 0 && s.sm >= 0 && s.sm < len(s.idx.SMs) {
		smIdx := &s.idx.SMs[s.sm]
		smIdx.Bytes = s.cr.n - smIdx.Offset
	}
	return n, nil
}

// Finish verifies every SM was drained and the stream ends cleanly (no
// trailing bytes), then returns the completed index.
func (s *TraceScanner) Finish() (TraceIndex, error) {
	if s.sm+1 < s.idx.NumSMs || s.left > 0 {
		return TraceIndex{}, fmt.Errorf("gpusim: trace stream not fully scanned (SM %d of %d)", s.sm+1, s.idx.NumSMs)
	}
	if _, err := s.cr.ReadByte(); err == nil {
		return TraceIndex{}, fmt.Errorf("gpusim: trailing data after trace stream (offset %d)", s.cr.n-1)
	} else if err != io.EOF {
		return TraceIndex{}, err
	}
	s.idx.Bytes = s.cr.n
	return s.idx, nil
}

// IndexTraceStream validates an entire IMTTRC stream in one bounded-
// memory pass — every op is decoded and checked, none is kept — and
// returns the byte-level index that lets OpenTraceAt replay the same
// bytes later. This is the upload-side gate: a stream it accepts can
// always be replayed.
func IndexTraceStream(r io.Reader) (TraceIndex, error) {
	sc, err := NewTraceScanner(r)
	if err != nil {
		return TraceIndex{}, err
	}
	var chunk [512]WarpOp
	for {
		_, ok, err := sc.NextSM()
		if err != nil {
			return TraceIndex{}, err
		}
		if !ok {
			break
		}
		for {
			n, err := sc.ReadOps(chunk[:])
			if err != nil {
				return TraceIndex{}, err
			}
			if n == 0 {
				break
			}
		}
	}
	return sc.Finish()
}

// blobTrace replays one SM's ops straight off an io.ReaderAt through
// a section reader — no materialization, so a multi-GB blob costs one
// decode buffer per SM. Decoding is lazy (first Next/NextBatch call);
// Clone returns an independent rewound stream over the same blob.
type blobTrace struct {
	ra     io.ReaderAt
	off    int64
	length int64
	ops    uint64

	br   *bufio.Reader
	left uint64
	err  error
}

func (t *blobTrace) init() {
	if t.br == nil {
		t.br = bufio.NewReaderSize(io.NewSectionReader(t.ra, t.off, t.length), 32<<10)
		t.left = t.ops
	}
}

// Next implements Trace.
func (t *blobTrace) Next() (WarpOp, bool) {
	t.init()
	if t.left == 0 || t.err != nil {
		return WarpOp{}, false
	}
	op, err := readTraceOp(t.br, nil)
	if err != nil {
		t.err = err
		return WarpOp{}, false
	}
	t.left--
	return op, true
}

// NextBatch implements the simulator's batched fast path. Each op gets
// freshly allocated Addrs (never reused), matching SliceTrace's
// retention semantics: ops handed out stay valid indefinitely.
func (t *blobTrace) NextBatch(dst []WarpOp) int {
	t.init()
	n := 0
	for n < len(dst) && t.left > 0 && t.err == nil {
		op, err := readTraceOp(t.br, nil)
		if err != nil {
			t.err = err
			break
		}
		dst[n] = op
		n++
		t.left--
	}
	return n
}

// Clone implements the CloneTraces contract: an independent, rewound
// stream sharing only the immutable underlying blob.
func (t *blobTrace) Clone() Trace {
	return &blobTrace{ra: t.ra, off: t.off, length: t.length, ops: t.ops}
}

// Err reports a decode error hit during replay. A blob validated by
// IndexTraceStream never produces one; this surfaces only disk-level
// corruption after validation, in which case the stream ends early.
func (t *blobTrace) Err() error { return t.err }

// OpenTraceAt exposes an indexed blob as per-SM replayable traces. The
// ReaderAt must serve concurrent ReadAt calls (an *os.File does); every
// returned trace and its clones share it.
func OpenTraceAt(ra io.ReaderAt, idx TraceIndex) []Trace {
	out := make([]Trace, idx.NumSMs)
	for i := range idx.SMs {
		sm := idx.SMs[i]
		out[i] = &blobTrace{ra: ra, off: sm.Offset, length: sm.Bytes, ops: sm.Ops}
	}
	return out
}

// TraceEncoder writes the IMTTRC format incrementally — declare the SM
// count up front, then BeginSM/WriteOp per record — so a synthetic or
// re-encoded multi-GB trace streams through a bufio.Writer without ever
// existing in memory. Close fails if the declared structure was not
// fully written, so a short encode cannot silently produce a blob that
// IndexTraceStream would reject.
type TraceEncoder struct {
	bw      *bufio.Writer
	buf     [binary.MaxVarintLen64]byte
	smsLeft int
	opsLeft uint64
	err     error
}

// NewTraceEncoder writes the stream header for numSMs SMs.
func NewTraceEncoder(w io.Writer, numSMs int) (*TraceEncoder, error) {
	if numSMs < 0 || numSMs > maxTraceSMs {
		return nil, fmt.Errorf("gpusim: implausible SM count %d", numSMs)
	}
	e := &TraceEncoder{bw: bufio.NewWriterSize(w, 64<<10), smsLeft: numSMs}
	if _, err := e.bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := e.putUvarint(uint64(numSMs)); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *TraceEncoder) putUvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

func (e *TraceEncoder) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return e.err
}

// BeginSM opens the next SM record, declaring its op count. The
// previous SM must have received exactly its declared ops.
func (e *TraceEncoder) BeginSM(numOps uint64) error {
	if e.err != nil {
		return e.err
	}
	if e.opsLeft > 0 {
		return e.fail(fmt.Errorf("gpusim: BeginSM with %d ops still owed to the previous SM", e.opsLeft))
	}
	if e.smsLeft == 0 {
		return e.fail(fmt.Errorf("gpusim: BeginSM past the declared SM count"))
	}
	if numOps > maxTraceOps {
		return e.fail(fmt.Errorf("gpusim: implausible op count %d", numOps))
	}
	e.smsLeft--
	e.opsLeft = numOps
	return e.fail0(e.putUvarint(numOps))
}

// WriteOp appends one op to the current SM record.
func (e *TraceEncoder) WriteOp(op WarpOp) error {
	if e.err != nil {
		return e.err
	}
	if e.opsLeft == 0 {
		return e.fail(fmt.Errorf("gpusim: WriteOp past the current SM's declared op count"))
	}
	if len(op.Addrs) > maxTraceAddrs {
		return e.fail(fmt.Errorf("gpusim: implausible address count %d", len(op.Addrs)))
	}
	var flags byte
	if op.Store {
		flags |= 1
	}
	if op.Atomic {
		flags |= 2
	}
	if err := e.bw.WriteByte(flags); err != nil {
		return e.fail(err)
	}
	if err := e.putUvarint(uint64(op.Compute)); err != nil {
		return e.fail(err)
	}
	if err := e.putUvarint(uint64(len(op.Addrs))); err != nil {
		return e.fail(err)
	}
	for _, a := range op.Addrs {
		if err := e.putUvarint(a); err != nil {
			return e.fail(err)
		}
	}
	e.opsLeft--
	return nil
}

func (e *TraceEncoder) fail0(err error) error {
	if err != nil {
		return e.fail(err)
	}
	return nil
}

// Close flushes the stream, failing if any declared SM or op was never
// written.
func (e *TraceEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.smsLeft > 0 || e.opsLeft > 0 {
		return e.fail(fmt.Errorf("gpusim: trace encoder closed with %d SMs and %d ops unwritten", e.smsLeft, e.opsLeft))
	}
	return e.fail0(e.bw.Flush())
}
