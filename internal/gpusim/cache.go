package gpusim

// cache is a sector-granular set-associative cache with LRU replacement.
// Entries are keyed by sector id (address / 32). Modeling at sector
// granularity matches the fine-grained sectored caches of §2.4.
type cache struct {
	numSets int
	assoc   int
	sets    []line
	clock   uint64
	// setIdx computes sector % numSets without a hardware divide; the
	// default L2 slice has 1536 sets (not a power of two), making this
	// the hottest single instruction in the per-access path.
	setIdx fastDivMod
}

// line packs a cache line into 16 bytes so a 16-way set scan touches
// two CPU cache lines instead of six. meta holds the LRU clock stamp in
// bits ≥ 1 and the dirty flag in bit 0; meta == 0 means invalid (the
// clock is pre-incremented on every access, so a touched line always
// stamps ≥ 1). Clock stamps are unique per line — each cache call
// restamps at most one line — so recency comparisons on meta>>1 order
// exactly like the unpacked lru field they replace.
type line struct {
	sector uint64
	meta   uint64
}

func newCache(sizeBytes, sectorSize, assoc int) *cache {
	numSets := sizeBytes / sectorSize / assoc
	if numSets < 1 {
		numSets = 1
	}
	return &cache{
		numSets: numSets,
		assoc:   assoc,
		sets:    make([]line, numSets*assoc),
		setIdx:  newFastDivMod(uint64(numSets)),
	}
}

// reset invalidates every line and rewinds the LRU clock, returning the
// cache to its post-newCache state without reallocating the line array.
func (c *cache) reset() {
	clear(c.sets)
	c.clock = 0
}

func (c *cache) set(sector uint64) []line {
	i := int(c.setIdx.mod(sector))
	return c.sets[i*c.assoc : (i+1)*c.assoc]
}

// lookup probes for a sector; on a hit the entry's recency is refreshed
// and, if markDirty, the line is dirtied.
func (c *cache) lookup(sector uint64, markDirty bool) bool {
	c.clock++
	set := c.set(sector)
	for i := range set {
		if set[i].meta != 0 && set[i].sector == sector {
			m := c.clock<<1 | set[i].meta&1
			if markDirty {
				m |= 1
			}
			set[i].meta = m
			return true
		}
	}
	return false
}

// insert fills a sector, evicting the LRU victim if needed. It returns
// whether a dirty victim was evicted (requiring a writeback).
func (c *cache) insert(sector uint64, dirty bool) (evictedDirty bool) {
	c.clock++
	set := c.set(sector)
	victim := 0
	for i := range set {
		if set[i].meta != 0 && set[i].sector == sector {
			// Refill of a present line (e.g. a racing fill): refresh.
			m := c.clock<<1 | set[i].meta&1
			if dirty {
				m |= 1
			}
			set[i].meta = m
			return false
		}
		if set[i].meta == 0 {
			victim = i
			break
		}
		if set[i].meta>>1 < set[victim].meta>>1 {
			victim = i
		}
	}
	evictedDirty = set[victim].meta&1 != 0 // the dirty bit implies valid
	m := c.clock << 1
	if dirty {
		m |= 1
	}
	set[victim] = line{sector: sector, meta: m}
	return evictedDirty
}
