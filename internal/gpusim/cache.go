package gpusim

// cache is a sector-granular set-associative cache with LRU replacement.
// Entries are keyed by sector id (address / 32). Modeling at sector
// granularity matches the fine-grained sectored caches of §2.4.
type cache struct {
	numSets int
	assoc   int
	sets    []line
	clock   uint64
}

type line struct {
	sector uint64
	valid  bool
	dirty  bool
	lru    uint64
}

func newCache(sizeBytes, sectorSize, assoc int) *cache {
	numSets := sizeBytes / sectorSize / assoc
	if numSets < 1 {
		numSets = 1
	}
	return &cache{
		numSets: numSets,
		assoc:   assoc,
		sets:    make([]line, numSets*assoc),
	}
}

func (c *cache) set(sector uint64) []line {
	i := int(sector % uint64(c.numSets))
	return c.sets[i*c.assoc : (i+1)*c.assoc]
}

// lookup probes for a sector; on a hit the entry's recency is refreshed
// and, if markDirty, the line is dirtied.
func (c *cache) lookup(sector uint64, markDirty bool) bool {
	c.clock++
	set := c.set(sector)
	for i := range set {
		if set[i].valid && set[i].sector == sector {
			set[i].lru = c.clock
			if markDirty {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// insert fills a sector, evicting the LRU victim if needed. It returns
// whether a dirty victim was evicted (requiring a writeback).
func (c *cache) insert(sector uint64, dirty bool) (evictedDirty bool) {
	c.clock++
	set := c.set(sector)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].sector == sector {
			// Refill of a present line (e.g. a racing fill): refresh.
			set[i].lru = c.clock
			set[i].dirty = set[i].dirty || dirty
			return false
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evictedDirty = set[victim].valid && set[victim].dirty
	set[victim] = line{sector: sector, valid: true, dirty: dirty, lru: c.clock}
	return evictedDirty
}
