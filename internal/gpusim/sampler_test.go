package gpusim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// sampledRun executes a stream workload with the given sample interval
// and returns the stats.
func sampledRun(t *testing.T, interval uint64, ops int) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SampleInterval = interval
	return run(t, cfg, streamTraces(cfg.NumSMs, ops, 0.3, 7))
}

func TestSamplerSeries(t *testing.T) {
	const interval = 1000
	st := sampledRun(t, interval, 2000)
	if st.Cycles < interval {
		t.Skipf("run too short (%d cycles) to exercise interval sampling", st.Cycles)
	}
	if len(st.Samples) == 0 {
		t.Fatal("a run of at least one interval must produce a non-empty time series")
	}

	var covered uint64
	prevCycle := uint64(0)
	for i, smp := range st.Samples {
		if smp.Cycle <= prevCycle {
			t.Fatalf("sample %d: cycle %d not increasing (prev %d)", i, smp.Cycle, prevCycle)
		}
		if smp.Cycles != smp.Cycle-prevCycle {
			t.Errorf("sample %d: window %d != cycle delta %d", i, smp.Cycles, smp.Cycle-prevCycle)
		}
		if i < len(st.Samples)-1 && smp.Cycles < interval {
			t.Errorf("sample %d: non-final window %d shorter than the interval", i, smp.Cycles)
		}
		for name, v := range map[string]float64{
			"BandwidthUtil": smp.BandwidthUtil, "L1HitRate": smp.L1HitRate,
			"L2HitRate": smp.L2HitRate, "TagHitRate": smp.TagHitRate,
			"MSHROccupancy": smp.MSHROccupancy,
		} {
			if v < 0 || v > 1.0000001 || math.IsNaN(v) {
				t.Errorf("sample %d: %s = %v out of [0,1]", i, name, v)
			}
		}
		if smp.QueueDepth < 0 || smp.DRAMQueueDepth < 0 {
			t.Errorf("sample %d: negative queue depth", i)
		}
		prevCycle = smp.Cycle
		covered += smp.Cycles
	}
	// The windows must tile the whole run: the final flush closes the
	// last partial window exactly at Stats.Cycles.
	last := st.Samples[len(st.Samples)-1]
	if last.Cycle != st.Cycles || covered != st.Cycles {
		t.Errorf("series covers %d cycles ending at %d; run had %d", covered, last.Cycle, st.Cycles)
	}
}

// TestSamplerShortRun pins the partial-window math: a run shorter than
// one interval still flushes exactly one final sample covering it.
func TestSamplerShortRun(t *testing.T) {
	st := sampledRun(t, 100_000_000, 50)
	if st.Cycles == 0 {
		t.Fatal("run did nothing")
	}
	if len(st.Samples) != 1 {
		t.Fatalf("short run produced %d samples, want exactly 1 (the final flush)", len(st.Samples))
	}
	if st.Samples[0].Cycle != st.Cycles || st.Samples[0].Cycles != st.Cycles {
		t.Errorf("final sample %+v must cover the whole %d-cycle run", st.Samples[0], st.Cycles)
	}
}

func TestSamplerDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	st := run(t, cfg, streamTraces(cfg.NumSMs, 200, 0.3, 7))
	if len(st.Samples) != 0 {
		t.Fatalf("sampling must be off by default, got %d samples", len(st.Samples))
	}
	if st.PeakBandwidthUtil() != 0 || st.BandwidthBoundFraction(0.5) != 0 {
		t.Error("phase helpers must return 0 without samples")
	}
}

// TestSamplerConsistentWithAggregates cross-checks the window series
// against the end-of-run aggregates: cycle-weighted mean window
// bandwidth equals BandwidthUtilization, and peak >= mean.
func TestSamplerConsistentWithAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleInterval = 500
	cfg.Mode = ModeCarveOut
	cfg.Carve = CarveOutLow
	st := run(t, cfg, streamTraces(cfg.NumSMs, 3000, 0.3, 11))
	if len(st.Samples) == 0 {
		t.Fatal("no samples")
	}
	var weighted float64
	for _, smp := range st.Samples {
		weighted += smp.BandwidthUtil * float64(smp.Cycles)
	}
	mean := weighted / float64(st.Cycles)
	agg := st.BandwidthUtilization(cfg)
	if math.Abs(mean-agg) > 1e-9 {
		t.Errorf("cycle-weighted sample mean %v != aggregate utilization %v", mean, agg)
	}
	if st.PeakBandwidthUtil() < agg {
		t.Errorf("peak %v below mean %v", st.PeakBandwidthUtil(), agg)
	}
	if f := st.BandwidthBoundFraction(0); f != 1 {
		t.Errorf("fraction at threshold 0 = %v, want 1", f)
	}
	// A carve-out run performs tag lookups, so some window must see them.
	sawTag := false
	for _, smp := range st.Samples {
		if smp.TagHitRate > 0 {
			sawTag = true
		}
	}
	if st.TagL2Hits > 0 && !sawTag {
		t.Error("aggregate saw tag hits but no window did")
	}
}

// TestSamplerInvariantUnderInterval checks sampling is observational:
// it must not change the simulation outcome.
func TestSamplerInvariantUnderInterval(t *testing.T) {
	strip := func(st Stats) Stats { st.Samples = nil; return st.WithoutHost() }
	base := sampledRun(t, 0, 1500).WithoutHost()
	fine := strip(sampledRun(t, 100, 1500))
	coarse := strip(sampledRun(t, 10_000, 1500))
	if !reflect.DeepEqual(base, fine) || !reflect.DeepEqual(base, coarse) {
		t.Errorf("sampling changed simulation results:\n none=%v\n fine=%v\n coarse=%v", base, fine, coarse)
	}
}

// TestOnSampleNeutral extends sampling-neutrality to the live hook:
// installing Config.OnSample must leave Stats byte-identical to the
// same run without a hook — the hook observes the series, it never
// perturbs it — and the values it receives must be exactly the
// Stats.Samples series, in order.
func TestOnSampleNeutral(t *testing.T) {
	const interval, ops = 1000, 2000
	cfg := DefaultConfig()
	cfg.SampleInterval = interval
	cfg.Mode = ModeCarveOut
	cfg.Carve = CarveOutLow
	base := run(t, cfg, streamTraces(cfg.NumSMs, ops, 0.3, 7))

	var seen []Sample
	hooked := cfg
	hooked.OnSample = func(s Sample) { seen = append(seen, s) }
	st := run(t, hooked, streamTraces(cfg.NumSMs, ops, 0.3, 7))

	// Byte-identical: the canonical JSON encoding (which already
	// excludes host telemetry) must not move at all.
	ja, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("OnSample perturbed the run:\n without hook: %s\n with hook:    %s", ja, jb)
	}
	if !reflect.DeepEqual(seen, st.Samples) {
		t.Errorf("hook saw %d samples, Stats recorded %d; series differ", len(seen), len(st.Samples))
	}
	if len(seen) == 0 {
		t.Fatal("hook never fired on a multi-interval run")
	}
}

// TestOnSampleRequiresInterval pins that the hook rides the existing
// sampler: with SampleInterval 0 it must never fire (the off-by-default
// contract — no overhead, bit-identical goldens).
func TestOnSampleRequiresInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OnSample = func(Sample) { t.Error("OnSample fired with SampleInterval = 0") }
	st := run(t, cfg, streamTraces(cfg.NumSMs, 500, 0.3, 7))
	if len(st.Samples) != 0 {
		t.Fatalf("unexpected samples: %d", len(st.Samples))
	}
}
