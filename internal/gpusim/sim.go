package gpusim

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// tagRegionSector places carve-out tag storage in a disjoint sector-id
// region. Data sectors derived from a 49-bit VA occupy ids below 2^44
// (addr/32); sector ids carrying key tags occupy bits ≥ TagShift. Basing
// the tag region at 2^44 keeps it disjoint from both: untagged data ids
// stay below it, and tag-region ids for tagged sectors land strictly
// below 2^49 (tag<<49 / 32 = tag<<44, plus the base), never colliding
// with the tagged data ids they cover.
const tagRegionSector = uint64(1) << 44

// Sim is one simulation instance. Create with New, drive with Run; Reset
// rewinds a finished instance for reuse without reallocating any of its
// internal state (caches, MSHR files, queues, arenas).
//
// The hot path is deliberately allocation-free in steady state: caches
// and MSHRs are preallocated set/slot-indexed arrays, L2 miss-merge
// files are open-addressed tables with recycled waiter lists, queues are
// rings, events live in a slice-backed heap, op/miss bookkeeping comes
// from per-Sim arenas and free lists, and trace decoding is batched into
// a reusable buffer. All of it is behavior-preserving — cmd/conformance
// pins bit-identity against the committed goldens.
type Sim struct {
	cfg    Config
	sms    []smState    // value array: one pointer hop fewer, better locality
	slices []sliceState // value array; elements never move after New
	events []event      // binary min-heap on cycle (container/heap ordering)
	stats  Stats
	now    uint64

	ops      opArena   // opState slab, reused across Reset
	missFree []*l2Miss // l2Miss free list

	// Precomputed crossbar/carve-out address arithmetic (see fastDivMod).
	interleave fastDivMod // sector / InterleaveSectors
	sliceMod   fastDivMod // group % NumSlices
	tagSpan    fastDivMod // sector / (CoverageBytes/SectorSize), carve-out only

	// Interval-sampler state (cfg.SampleInterval > 0): the counter
	// snapshot and cycle of the previous sample, and the next boundary.
	lastSample      Stats
	lastSampleCycle uint64
	nextSample      uint64
}

type smState struct {
	id          int
	trace       Trace
	batch       batchTrace // non-nil when trace supports NextBatch
	opBuf       []WarpOp   // decoded-op buffer (batch != nil)
	opPos       int
	l1          *cache
	nextReady   uint64
	outstanding int
	// mshr is the L1 MSHR file. The hardware is a small fully-associative
	// search structure; capacity is enforced by the count check at the
	// issue site, not by the table, so the hashed pendTable serves here
	// too (a linear scan over L1MSHRs sectors lost to it in profiles).
	mshr *pendTable[*opState]
	// blocked marks pi as the remainder of an op that ran out of MSHRs.
	blocked bool
	pi      pendingIssue
	done    bool
	scratch []uint64
	// boundsToggle alternates bounds-table port conflicts (ModeBoundsTable).
	boundsToggle uint64
}

// opBufSize is the per-SM decoded-op batch (~14KB per SM).
const opBufSize = 256

// nextOp yields the SM's next warp op: from the decoded batch buffer
// when the trace supports batching, or a direct Next call otherwise.
// Batching only changes when the trace is decoded, never the op
// sequence, so results are identical either way.
func (sm *smState) nextOp() (WarpOp, bool) {
	if sm.opPos < len(sm.opBuf) {
		op := sm.opBuf[sm.opPos]
		sm.opPos++
		return op, true
	}
	if sm.batch != nil {
		n := sm.batch.NextBatch(sm.opBuf[:opBufSize])
		if n > 0 {
			sm.opBuf = sm.opBuf[:n]
			sm.opPos = 1
			return sm.opBuf[0], true
		}
		return WarpOp{}, false
	}
	return sm.trace.Next()
}

type opState struct {
	pending int
	sm      *smState
	idx     int32 // position in the op arena, for pointer-free events
}

// pendingIssue is the in-flight load an SM is currently pushing into the
// L1/MSHR machinery. Each SM owns exactly one (live while issuing, and
// across cycles while blocked on MSHRs), so it is embedded in smState
// and its sector buffer is reused op after op.
type pendingIssue struct {
	op      *opState
	sectors []uint64
	next    int // cursor into sectors (replaces re-slicing)
	compute int
	started bool // outstanding already incremented
}

type sliceState struct {
	id        int
	l2        *cache
	queue     ring[request]
	dramQueue ring[dramReq]
	busyUntil uint64
	// L2-level miss merging (the slice's MSHRs): concurrent misses to the
	// same data or tag sector share one DRAM fetch.
	pendingData *pendTable[*l2Miss]
	pendingTag  *pendTable[*l2Miss]
}

type request struct {
	sector uint64
	sm     int
	store  bool
	atomic bool
	op     *opState
}

type dramKind uint8

const (
	dramDataRead dramKind = iota
	dramTagRead
	dramWrite
)

type dramReq struct {
	kind   dramKind
	slice  int
	sector uint64
}

type l2Miss struct {
	sector      uint64
	slice       int
	sm          int
	store       bool
	atomic      bool
	op          *opState
	needTag     bool
	dataArrived bool
	tagArrived  bool
	tagSector   uint64
}

// allocMiss draws an l2Miss from the free list (or the heap on first
// use), fully initialized to the given value.
func (s *Sim) allocMiss(v l2Miss) *l2Miss {
	if n := len(s.missFree); n > 0 {
		m := s.missFree[n-1]
		s.missFree = s.missFree[:n-1]
		*m = v
		return m
	}
	m := new(l2Miss)
	*m = v
	return m
}

// freeMiss returns a miss whose last reference was just dropped. A miss
// is freed exactly once: loads/atomics complete in maybeCompleteMiss
// (both arrival lists have already released the pointer by then), and
// store-side tag probes complete when their tag arrives.
func (s *Sim) freeMiss(m *l2Miss) {
	s.missFree = append(s.missFree, m)
}

type eventKind uint8

const (
	evL1Fill eventKind = iota
	evDRAMData
	evDRAMTag
	evAtomicDone
)

// event is kept to 24 pointer-free bytes: heap sift operations copy
// whole events in one of the hottest loops, and a pointer field would
// add a GC write barrier to every swap. meta packs the kind (low 8
// bits), the sm/slice index (bits 8..31) and, for evAtomicDone, the op's
// arena index (bits 32..63); the payload encoding is a bijection, and
// ordering compares only cycle, so pop order is unchanged.
type event struct {
	cycle  uint64
	sector uint64
	meta   uint64
}

func evMeta(kind eventKind, unit int) uint64 {
	return uint64(kind) | uint64(uint32(unit))<<8
}

func evOpMeta(kind eventKind, op *opState) uint64 {
	return uint64(kind) | uint64(uint32(op.idx))<<32
}

func (e event) kind() eventKind { return eventKind(e.meta & 0xff) }
func (e event) unit() int       { return int(uint32(e.meta>>8) & 0xffffff) }
func (e event) opIdx() int32    { return int32(e.meta >> 32) }

// pushEvent and popEvent implement exactly container/heap's sift
// algorithms (Less is cycle-order only), inlined over []event so pushes
// stop boxing each event into an interface (one heap allocation per
// event in the seed). Equal-cycle pop order depends on the heap's
// internal swap sequence, so the algorithm is replicated verbatim to
// keep delivery order — and therefore every golden — bit-identical.
func (s *Sim) pushEvent(e event) {
	h := append(s.events, e)
	j := len(h) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].cycle >= h[i].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	s.events = h
}

func (s *Sim) popEvent() event {
	h := s.events
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// down(0, n), as in container/heap.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].cycle < h[j1].cycle {
			j = j2
		}
		if h[j].cycle >= h[i].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	h[n] = event{} // drop the op pointer
	s.events = h[:n]
	return e
}

// New builds a simulator for the configuration with one trace per SM
// (traces[i] drives SM i; missing entries idle the SM).
func New(cfg Config, traces []Trace) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	s.interleave = newFastDivMod(uint64(cfg.InterleaveSectors))
	s.sliceMod = newFastDivMod(uint64(cfg.NumSlices))
	if cfg.Mode == ModeCarveOut {
		s.tagSpan = newFastDivMod(cfg.Carve.CoverageBytes() / uint64(cfg.SectorSize))
	}
	s.sms = make([]smState, cfg.NumSMs)
	for i := range s.sms {
		sm := &s.sms[i]
		sm.id = i
		sm.l1 = newCache(cfg.L1SizeBytes, cfg.SectorSize, cfg.L1Assoc)
		sm.mshr = newPendTable[*opState]()
		sm.scratch = make([]uint64, 0, 64)
	}
	s.slices = make([]sliceState, cfg.NumSlices)
	for i := range s.slices {
		sl := &s.slices[i]
		sl.id = i
		sl.l2 = newCache(cfg.L2SliceBytes, cfg.SectorSize, cfg.L2Assoc)
		sl.pendingData = newPendTable[*l2Miss]()
		sl.pendingTag = newPendTable[*l2Miss]()
	}
	s.attachTraces(traces)
	if cfg.SampleInterval > 0 {
		s.nextSample = cfg.SampleInterval
	}
	return s, nil
}

// attachTraces wires traces to SMs and primes the batch decoders.
func (s *Sim) attachTraces(traces []Trace) {
	for i := range s.sms {
		sm := &s.sms[i]
		sm.trace, sm.batch, sm.done = nil, nil, true
		sm.opBuf, sm.opPos = sm.opBuf[:0], 0
		if i < len(traces) && traces[i] != nil {
			sm.trace = traces[i]
			sm.done = false
			if bt, ok := traces[i].(batchTrace); ok {
				sm.batch = bt
				if sm.opBuf == nil {
					sm.opBuf = make([]WarpOp, 0, opBufSize)
				}
			}
		}
	}
}

// Reset rewinds the simulator to its post-New state with fresh traces,
// reusing every internal allocation (caches, MSHR files, miss-merge
// tables, queues, the event heap and the op arena). A Reset+Run over the
// same trace content is bit-identical to a fresh New+Run with the same
// configuration; the steady-state benchmarks and any caller that sweeps
// many trace sets over one machine configuration use it to amortize
// construction away.
//
// The Stats returned by earlier Run calls remain valid: Reset starts a
// fresh Stats value instead of truncating the previous Samples series.
func (s *Sim) Reset(traces []Trace) {
	for i := range s.sms {
		sm := &s.sms[i]
		sm.l1.reset()
		sm.mshr.reset()
		sm.nextReady = 0
		sm.outstanding = 0
		sm.blocked = false
		sm.pi = pendingIssue{sectors: sm.pi.sectors[:0]}
		sm.boundsToggle = 0
	}
	for i := range s.slices {
		sl := &s.slices[i]
		sl.l2.reset()
		sl.queue.reset()
		sl.dramQueue.reset()
		sl.busyUntil = 0
		sl.pendingData.reset()
		sl.pendingTag.reset()
	}
	clear(s.events)
	s.events = s.events[:0]
	s.ops.reset()
	s.stats = Stats{}
	s.now = 0
	s.lastSample = Stats{}
	s.lastSampleCycle = 0
	s.nextSample = 0
	if s.cfg.SampleInterval > 0 {
		s.nextSample = s.cfg.SampleInterval
	}
	s.attachTraces(traces)
}

// takeSample closes the current telemetry window at s.now: rates are
// deltas against the previous sample, occupancies and queue depths are
// instantaneous. Windows that cross fast-forwarded idle stretches come
// out longer than the interval (one sample per jump, not one per
// skipped boundary), which keeps the series bounded on idle-heavy runs.
func (s *Sim) takeSample() {
	window := s.now - s.lastSampleCycle
	if window == 0 {
		return
	}
	cur, prev := s.stats, s.lastSample
	rate := func(hits, misses uint64) float64 {
		if t := hits + misses; t > 0 {
			return float64(hits) / float64(t)
		}
		return 0
	}
	bytes := 32 * ((cur.DRAMDataReads - prev.DRAMDataReads) +
		(cur.DRAMTagReads - prev.DRAMTagReads) +
		(cur.DRAMWrites - prev.DRAMWrites))
	peakBytesPerCycle := float64(s.cfg.NumSlices) * 32 / float64(s.cfg.DRAMCyclesPerSector)
	smp := Sample{
		Cycle:         s.now,
		Cycles:        window,
		BandwidthUtil: float64(bytes) / float64(window) / peakBytesPerCycle,
		L1HitRate:     rate(cur.L1Hits-prev.L1Hits, cur.L1Misses-prev.L1Misses),
		L2HitRate:     rate(cur.L2Hits-prev.L2Hits, cur.L2Misses-prev.L2Misses),
		TagHitRate:    rate(cur.TagL2Hits-prev.TagL2Hits, cur.TagL2Misses-prev.TagL2Misses),
	}
	mshrs := 0
	for i := range s.sms {
		mshrs += s.sms[i].mshr.count
	}
	smp.MSHROccupancy = float64(mshrs) / float64(len(s.sms)*s.cfg.L1MSHRs)
	var qd, dq int
	for i := range s.slices {
		qd += s.slices[i].queue.len()
		dq += s.slices[i].dramQueue.len()
	}
	smp.QueueDepth = float64(qd) / float64(len(s.slices))
	smp.DRAMQueueDepth = float64(dq) / float64(len(s.slices))

	s.stats.Samples = append(s.stats.Samples, smp)
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(smp)
	}
	s.lastSample = cur
	s.lastSample.Samples = nil // counters only; the series lives in s.stats
	s.lastSampleCycle = s.now
	s.nextSample = s.now + s.cfg.SampleInterval
}

// flushSample closes the final (possibly partial) window so every run
// with any elapsed cycles — including runs shorter than one interval —
// ends with a complete time series.
func (s *Sim) flushSample() {
	if s.cfg.SampleInterval > 0 {
		s.takeSample()
	}
}

func (s *Sim) sliceOf(sector uint64) *sliceState {
	return &s.slices[s.sliceMod.mod(s.interleave.div(sector))]
}

func (s *Sim) tagSectorOf(sector uint64) uint64 {
	return tagRegionSector + s.tagSpan.div(sector)
}

// Run executes to completion and returns the statistics. maxCycles guards
// against pathological configurations (0 means a generous default).
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation: the context is polled
// every few thousand simulation steps, so a cancelled sweep abandons the
// cell promptly without per-cycle overhead. The partial statistics
// accumulated so far are returned alongside the context's error.
//
// Every exit path also stamps the host-side cost telemetry
// (Stats.HostNsPerOp / Stats.HostAllocsPerOp); see their field docs for
// what they do and do not mean.
func (s *Sim) RunContext(ctx context.Context, maxCycles uint64) (st Stats, err error) {
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	defer func() {
		if st.WarpOps == 0 {
			return
		}
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		st.HostNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(st.WarpOps)
		st.HostAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(st.WarpOps)
	}()
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	const ctxCheckInterval = 1 << 13
	steps := 0
	for {
		if steps++; steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				s.stats.Cycles = s.now
				s.flushSample()
				return s.stats, err
			}
		}
		progressed := s.step()
		if s.finished() {
			s.stats.Cycles = s.now
			s.flushSample()
			return s.stats, nil
		}
		if !progressed {
			s.fastForward()
		} else {
			s.now++
		}
		if s.cfg.SampleInterval > 0 && s.now >= s.nextSample {
			s.takeSample()
		}
		if s.now > maxCycles {
			return s.stats, fmt.Errorf("gpusim: exceeded %d cycles (deadlock or runaway workload)", maxCycles)
		}
	}
}

// step performs one cycle of work; it reports whether anything happened
// (used to fast-forward idle stretches).
func (s *Sim) step() bool {
	progressed := false

	// 1. Deliver due events.
	for len(s.events) > 0 && s.events[0].cycle <= s.now {
		e := s.popEvent()
		progressed = true
		switch e.kind() {
		case evL1Fill:
			s.l1Fill(e.unit(), e.sector)
		case evDRAMData:
			s.dataArrived(e.unit(), e.sector)
		case evDRAMTag:
			s.tagArrived(e.unit(), e.sector)
		case evAtomicDone:
			s.opSectorDone(s.ops.at(e.opIdx()))
		}
	}

	// 2. Each L2 slice services one request and starts DRAM transfers.
	for i := range s.slices {
		sl := &s.slices[i]
		if sl.queue.len() > 0 {
			req := sl.queue.pop()
			s.serviceL2(sl, req)
			progressed = true
		}
		if sl.dramQueue.len() > 0 && sl.busyUntil <= s.now {
			dr := sl.dramQueue.pop()
			sl.busyUntil = s.now + uint64(s.cfg.DRAMCyclesPerSector)
			progressed = true
			switch dr.kind {
			case dramWrite:
				s.stats.DRAMWrites++
			case dramDataRead:
				s.stats.DRAMDataReads++
				s.pushEvent(event{cycle: s.now + uint64(s.cfg.DRAMLatency), sector: dr.sector, meta: evMeta(evDRAMData, dr.slice)})
			case dramTagRead:
				s.stats.DRAMTagReads++
				s.pushEvent(event{cycle: s.now + uint64(s.cfg.DRAMLatency), sector: dr.sector, meta: evMeta(evDRAMTag, dr.slice)})
			}
		}
	}

	// 3. SMs issue.
	for i := range s.sms {
		if s.issue(&s.sms[i]) {
			progressed = true
		}
	}
	return progressed
}

// issue advances one SM by at most one op (or one blocked-op retry).
func (s *Sim) issue(sm *smState) bool {
	if sm.blocked {
		return s.issueSectors(sm)
	}
	if sm.done || s.now < sm.nextReady || sm.outstanding >= s.cfg.MaxOutstandingOps {
		return false
	}
	op, ok := sm.nextOp()
	if !ok {
		sm.done = true
		return false
	}
	s.stats.WarpOps++
	sectors := coalesce(op.Addrs, s.cfg.SectorSize, sm.scratch)
	sm.scratch = sectors[:0]

	compute := op.Compute
	if s.cfg.Mode == ModeBoundsTable {
		// The bounds-table lookup is pipelined with the LD/ST path, so
		// most checks hide completely; every other memory instruction,
		// however, conflicts on the table port and stalls issue by
		// BoundsCk cycles. This reproduces the §6 observation that a
		// GPUShield-like scheme is nearly free for most workloads but
		// penalizes access-rate-bound ones by up to ~14%.
		sm.boundsToggle++
		if sm.boundsToggle%2 == 0 {
			compute += s.cfg.BoundsCk
		}
	}

	if op.Atomic {
		// Near-memory atomics (§4.2, Figure 6a): serviced at the L2 slice
		// behind an ECC decode/encode pair, bypassing the L1 entirely. The
		// warp waits for the returned old value, so atomics count against
		// outstanding ops like loads; under a carve-out the lock tag must
		// be fetched for the check, just as for loads and stores.
		s.stats.Atomics++
		st := s.ops.get(sm, len(sectors))
		for _, sec := range sectors {
			s.sliceOf(sec).queue.push(request{sector: sec, sm: sm.id, atomic: true, op: st})
		}
		if st.pending > 0 {
			sm.outstanding++
		}
		sm.nextReady = s.now + 1 + uint64(compute)
		return true
	}

	if op.Store {
		s.stats.Stores++
		for _, sec := range sectors {
			// Write-through, no-allocate L1: stores stream to the L2.
			s.sliceOf(sec).queue.push(request{sector: sec, sm: sm.id, store: true})
		}
		sm.nextReady = s.now + 1 + uint64(compute)
		return true
	}

	s.stats.Loads++
	sm.pi = pendingIssue{
		op:      s.ops.get(sm, 0),
		sectors: append(sm.pi.sectors[:0], sectors...),
		compute: compute,
	}
	return s.issueSectors(sm)
}

// issueSectors pushes the SM's current load (sm.pi) into the L1/MSHR
// machinery, blocking (and resuming later) when MSHRs run out.
func (s *Sim) issueSectors(sm *smState) bool {
	pi := &sm.pi
	progressed := false
	for pi.next < len(pi.sectors) {
		sec := pi.sectors[pi.next]
		if sm.l1.lookup(sec, false) {
			s.stats.L1Hits++
			pi.next++
			progressed = true
			continue
		}
		slot, found := sm.mshr.probe(sec)
		if found {
			// Merge into the outstanding miss.
			s.stats.L1Hits++ // an MSHR merge costs no extra traffic
			sm.mshr.addWaiter(slot, pi.op)
			pi.op.pending++
			pi.next++
			progressed = true
			continue
		}
		if sm.mshr.count >= s.cfg.L1MSHRs {
			sm.blocked = true
			return progressed
		}
		s.stats.L1Misses++
		sm.mshr.putAt(slot, sec, pi.op)
		pi.op.pending++
		sl := s.sliceOf(sec)
		sl.queue.push(request{sector: sec, sm: sm.id, store: false, op: pi.op})
		pi.next++
		progressed = true
	}
	// Fully issued.
	sm.blocked = false
	if pi.op.pending > 0 && !pi.started {
		sm.outstanding++
		pi.started = true
	}
	sm.nextReady = s.now + 1 + uint64(pi.compute)
	return progressed
}

// serviceL2 handles one request at an L2 slice.
func (s *Sim) serviceL2(sl *sliceState, req request) {
	if req.atomic {
		if sl.l2.lookup(req.sector, true) {
			s.stats.L2Hits++
			s.pushEvent(event{cycle: s.now + uint64(s.cfg.L1Latency), meta: evOpMeta(evAtomicDone, req.op)})
			return
		}
		s.stats.L2Misses++
		miss := s.allocMiss(l2Miss{sector: req.sector, slice: sl.id, sm: req.sm, atomic: true, op: req.op})
		if slot, found := sl.pendingData.probe(req.sector); found {
			sl.pendingData.addWaiter(slot, miss)
		} else {
			sl.pendingData.putAt(slot, req.sector, miss)
			sl.dramQueue.push(dramReq{kind: dramDataRead, slice: sl.id, sector: req.sector})
		}
		if s.cfg.Mode == ModeCarveOut {
			s.fetchTagIfMissing(miss)
		}
		return
	}
	if req.store {
		if sl.l2.lookup(req.sector, true) {
			s.stats.L2Hits++
			return
		}
		s.stats.L2Misses++
		// Full-sector store: write-allocate without fetching the data.
		if sl.l2.insert(req.sector, true) {
			sl.dramQueue.push(dramReq{kind: dramWrite})
		}
		// The carve-out still needs the lock tag for the store-side check.
		if s.cfg.Mode == ModeCarveOut {
			s.fetchStoreTag(sl, req.sector)
		}
		return // stores complete at the SM; only traffic is modeled
	}

	if sl.l2.lookup(req.sector, false) {
		s.stats.L2Hits++
		s.pushEvent(event{cycle: s.now + uint64(s.cfg.L1Latency), sector: req.sector, meta: evMeta(evL1Fill, req.sm)})
		return
	}
	s.stats.L2Misses++
	miss := s.allocMiss(l2Miss{sector: req.sector, slice: sl.id, sm: req.sm, op: req.op})
	if slot, found := sl.pendingData.probe(req.sector); found {
		sl.pendingData.addWaiter(slot, miss)
	} else {
		sl.pendingData.putAt(slot, req.sector, miss)
		sl.dramQueue.push(dramReq{kind: dramDataRead, slice: sl.id, sector: req.sector})
	}
	if s.cfg.Mode == ModeCarveOut {
		s.fetchTagIfMissing(miss)
	}
}

// fetchTagIfMissing performs the parallel lock-tag lookup of §5.1: the
// probe is routed over the crossbar to the tag sector's own home slice,
// where tag sectors are cached in that slice's L2. On a miss it merges
// into any in-flight tag fetch or issues a DRAM tag read (linked to the
// data miss for loads so the response waits for both).
func (s *Sim) fetchTagIfMissing(miss *l2Miss) {
	miss.tagSector = s.tagSectorOf(miss.sector)
	tsl := s.sliceOf(miss.tagSector)
	if tsl.l2.lookup(miss.tagSector, false) {
		s.stats.TagL2Hits++
		return
	}
	s.stats.TagL2Misses++
	miss.needTag = true
	if slot, found := tsl.pendingTag.probe(miss.tagSector); found {
		tsl.pendingTag.addWaiter(slot, miss)
	} else {
		tsl.pendingTag.putAt(slot, miss.tagSector, miss)
		tsl.dramQueue.push(dramReq{kind: dramTagRead, slice: tsl.id, sector: miss.tagSector})
	}
}

// fetchStoreTag is the store-side lock-tag probe: unlike loads there is
// no data miss to link, so a tracking miss is allocated only when the
// tag actually has to be fetched (it is freed when the tag arrives).
func (s *Sim) fetchStoreTag(sl *sliceState, sector uint64) {
	tagSector := s.tagSectorOf(sector)
	tsl := s.sliceOf(tagSector)
	if tsl.l2.lookup(tagSector, false) {
		s.stats.TagL2Hits++
		return
	}
	s.stats.TagL2Misses++
	miss := s.allocMiss(l2Miss{sector: sector, slice: sl.id, store: true, needTag: true, tagSector: tagSector})
	if slot, found := tsl.pendingTag.probe(tagSector); found {
		tsl.pendingTag.addWaiter(slot, miss)
	} else {
		tsl.pendingTag.putAt(slot, tagSector, miss)
		tsl.dramQueue.push(dramReq{kind: dramTagRead, slice: tsl.id, sector: tagSector})
	}
}

func (s *Sim) dataArrived(slice int, sector uint64) {
	sl := &s.slices[slice]
	waiters := sl.pendingData.take(sector)
	if sl.l2.insert(sector, false) {
		sl.dramQueue.push(dramReq{kind: dramWrite, slice: slice})
	}
	for _, m := range waiters {
		m.dataArrived = true
		s.maybeCompleteMiss(m)
	}
	if waiters != nil {
		sl.pendingData.recycle(waiters)
	}
}

func (s *Sim) tagArrived(slice int, tagSector uint64) {
	sl := &s.slices[slice]
	waiters := sl.pendingTag.take(tagSector)
	if sl.l2.insert(tagSector, false) {
		sl.dramQueue.push(dramReq{kind: dramWrite, slice: slice})
	}
	for _, m := range waiters {
		m.tagArrived = true
		if m.store {
			// Store-side probes live only in the tag list (the write
			// already allocated in serviceL2); this arrival dropped their
			// last reference. maybeCompleteMiss would early-return for
			// them anyway.
			s.freeMiss(m)
			continue
		}
		s.maybeCompleteMiss(m)
	}
	if waiters != nil {
		sl.pendingTag.recycle(waiters)
	}
}

func (s *Sim) maybeCompleteMiss(miss *l2Miss) {
	if miss.store {
		return // store misses already write-allocated; the tag fill is enough
	}
	if !miss.dataArrived || (miss.needTag && !miss.tagArrived) {
		return
	}
	// Both arrivals have released the miss from their merge lists; after
	// the completion below no reference remains, so it goes back on the
	// free list.
	if miss.atomic {
		// The L2 performs the RMW: dirty the freshly filled line and
		// return the old value to the SM without filling the L1.
		s.slices[miss.slice].l2.lookup(miss.sector, true)
		s.pushEvent(event{cycle: s.now + uint64(s.cfg.L1Latency), meta: evOpMeta(evAtomicDone, miss.op)})
		s.freeMiss(miss)
		return
	}
	s.pushEvent(event{cycle: s.now + uint64(s.cfg.L1Latency), sector: miss.sector, meta: evMeta(evL1Fill, miss.sm)})
	s.freeMiss(miss)
}

// opSectorDone retires one completed sector of a non-L1 (atomic) op.
func (s *Sim) opSectorDone(op *opState) {
	op.pending--
	if op.pending == 0 {
		op.sm.outstanding--
	}
}

func (s *Sim) l1Fill(smID int, sector uint64) {
	sm := &s.sms[smID]
	sm.l1.insert(sector, false) // write-through L1: evictions are silent
	waiters := sm.mshr.take(sector)
	if waiters == nil {
		return
	}
	for _, op := range waiters {
		op.pending--
		if op.pending == 0 {
			op.sm.outstanding--
		}
	}
	sm.mshr.recycle(waiters)
}

func (s *Sim) finished() bool {
	if len(s.events) > 0 {
		return false
	}
	for i := range s.slices {
		if s.slices[i].queue.len() > 0 || s.slices[i].dramQueue.len() > 0 {
			return false
		}
	}
	for i := range s.sms {
		if !s.sms[i].done || s.sms[i].blocked || s.sms[i].outstanding > 0 {
			return false
		}
	}
	return true
}

// fastForward jumps to the next time anything can happen: the earliest
// event, DRAM channel free time, or SM ready time.
func (s *Sim) fastForward() {
	next := s.now + 1
	best := ^uint64(0)
	if len(s.events) > 0 && s.events[0].cycle > s.now {
		best = s.events[0].cycle
	}
	for i := range s.slices {
		sl := &s.slices[i]
		if sl.dramQueue.len() > 0 && sl.busyUntil > s.now && sl.busyUntil < best {
			best = sl.busyUntil
		}
	}
	for i := range s.sms {
		sm := &s.sms[i]
		if !sm.done && sm.outstanding < s.cfg.MaxOutstandingOps && !sm.blocked &&
			sm.nextReady > s.now && sm.nextReady < best {
			best = sm.nextReady
		}
	}
	if best != ^uint64(0) && best > next {
		next = best
	}
	s.now = next
}
