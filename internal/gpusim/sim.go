package gpusim

import (
	"container/heap"
	"context"
	"fmt"
)

// tagRegionSector places carve-out tag storage in a disjoint sector-id
// region. Data sectors derived from a 49-bit VA occupy ids below 2^44
// (addr/32); sector ids carrying key tags occupy bits ≥ TagShift. Basing
// the tag region at 2^44 keeps it disjoint from both: untagged data ids
// stay below it, and tag-region ids for tagged sectors land strictly
// below 2^49 (tag<<49 / 32 = tag<<44, plus the base), never colliding
// with the tagged data ids they cover.
const tagRegionSector = uint64(1) << 44

// Sim is one simulation instance. Create with New, drive with Run.
type Sim struct {
	cfg    Config
	sms    []*smState
	slices []*sliceState
	events eventHeap
	stats  Stats
	now    uint64

	// Interval-sampler state (cfg.SampleInterval > 0): the counter
	// snapshot and cycle of the previous sample, and the next boundary.
	lastSample      Stats
	lastSampleCycle uint64
	nextSample      uint64
}

type smState struct {
	id          int
	trace       Trace
	l1          *cache
	nextReady   uint64
	outstanding int
	mshr        map[uint64]*mshrEntry
	mshrCount   int
	// blocked holds the remainder of an op that ran out of MSHRs.
	blocked *pendingIssue
	done    bool
	scratch []uint64
	// boundsToggle alternates bounds-table port conflicts (ModeBoundsTable).
	boundsToggle uint64
}

type mshrEntry struct {
	waiters []*opState
}

type opState struct {
	pending int
	sm      *smState
}

type pendingIssue struct {
	op      *opState
	sectors []uint64
	compute int
	started bool // outstanding already incremented
}

type sliceState struct {
	id        int
	l2        *cache
	queue     []request
	dramQueue []dramReq
	busyUntil uint64
	// L2-level miss merging (the slice's MSHRs): concurrent misses to the
	// same data or tag sector share one DRAM fetch.
	pendingData map[uint64][]*l2Miss
	pendingTag  map[uint64][]*l2Miss
}

type request struct {
	sector uint64
	sm     int
	store  bool
	atomic bool
	op     *opState
}

type dramKind uint8

const (
	dramDataRead dramKind = iota
	dramTagRead
	dramWrite
)

type dramReq struct {
	kind   dramKind
	slice  int
	sector uint64
}

type l2Miss struct {
	sector      uint64
	slice       int
	sm          int
	store       bool
	atomic      bool
	op          *opState
	needTag     bool
	dataArrived bool
	tagArrived  bool
	tagSector   uint64
}

type eventKind uint8

const (
	evL1Fill eventKind = iota
	evDRAMData
	evDRAMTag
	evAtomicDone
)

type event struct {
	cycle  uint64
	kind   eventKind
	sm     int
	slice  int
	sector uint64
	op     *opState
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].cycle < h[j].cycle }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New builds a simulator for the configuration with one trace per SM
// (traces[i] drives SM i; missing entries idle the SM).
func New(cfg Config, traces []Trace) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	for i := 0; i < cfg.NumSMs; i++ {
		sm := &smState{
			id:      i,
			l1:      newCache(cfg.L1SizeBytes, cfg.SectorSize, cfg.L1Assoc),
			mshr:    make(map[uint64]*mshrEntry),
			scratch: make([]uint64, 0, 64),
		}
		if i < len(traces) && traces[i] != nil {
			sm.trace = traces[i]
		} else {
			sm.done = true
		}
		s.sms = append(s.sms, sm)
	}
	for i := 0; i < cfg.NumSlices; i++ {
		s.slices = append(s.slices, &sliceState{
			id:          i,
			l2:          newCache(cfg.L2SliceBytes, cfg.SectorSize, cfg.L2Assoc),
			pendingData: make(map[uint64][]*l2Miss),
			pendingTag:  make(map[uint64][]*l2Miss),
		})
	}
	heap.Init(&s.events)
	if cfg.SampleInterval > 0 {
		s.nextSample = cfg.SampleInterval
	}
	return s, nil
}

// takeSample closes the current telemetry window at s.now: rates are
// deltas against the previous sample, occupancies and queue depths are
// instantaneous. Windows that cross fast-forwarded idle stretches come
// out longer than the interval (one sample per jump, not one per
// skipped boundary), which keeps the series bounded on idle-heavy runs.
func (s *Sim) takeSample() {
	window := s.now - s.lastSampleCycle
	if window == 0 {
		return
	}
	cur, prev := s.stats, s.lastSample
	rate := func(hits, misses uint64) float64 {
		if t := hits + misses; t > 0 {
			return float64(hits) / float64(t)
		}
		return 0
	}
	bytes := 32 * ((cur.DRAMDataReads - prev.DRAMDataReads) +
		(cur.DRAMTagReads - prev.DRAMTagReads) +
		(cur.DRAMWrites - prev.DRAMWrites))
	peakBytesPerCycle := float64(s.cfg.NumSlices) * 32 / float64(s.cfg.DRAMCyclesPerSector)
	smp := Sample{
		Cycle:         s.now,
		Cycles:        window,
		BandwidthUtil: float64(bytes) / float64(window) / peakBytesPerCycle,
		L1HitRate:     rate(cur.L1Hits-prev.L1Hits, cur.L1Misses-prev.L1Misses),
		L2HitRate:     rate(cur.L2Hits-prev.L2Hits, cur.L2Misses-prev.L2Misses),
		TagHitRate:    rate(cur.TagL2Hits-prev.TagL2Hits, cur.TagL2Misses-prev.TagL2Misses),
	}
	mshrs := 0
	for _, sm := range s.sms {
		mshrs += sm.mshrCount
	}
	smp.MSHROccupancy = float64(mshrs) / float64(len(s.sms)*s.cfg.L1MSHRs)
	var qd, dq int
	for _, sl := range s.slices {
		qd += len(sl.queue)
		dq += len(sl.dramQueue)
	}
	smp.QueueDepth = float64(qd) / float64(len(s.slices))
	smp.DRAMQueueDepth = float64(dq) / float64(len(s.slices))

	s.stats.Samples = append(s.stats.Samples, smp)
	s.lastSample = cur
	s.lastSample.Samples = nil // counters only; the series lives in s.stats
	s.lastSampleCycle = s.now
	s.nextSample = s.now + s.cfg.SampleInterval
}

// flushSample closes the final (possibly partial) window so every run
// with any elapsed cycles — including runs shorter than one interval —
// ends with a complete time series.
func (s *Sim) flushSample() {
	if s.cfg.SampleInterval > 0 {
		s.takeSample()
	}
}

func (s *Sim) sliceOf(sector uint64) *sliceState {
	group := sector / uint64(s.cfg.InterleaveSectors)
	return s.slices[group%uint64(s.cfg.NumSlices)]
}

func (s *Sim) tagSectorOf(sector uint64) uint64 {
	span := s.cfg.Carve.CoverageBytes() / uint64(s.cfg.SectorSize)
	return tagRegionSector + sector/span
}

// Run executes to completion and returns the statistics. maxCycles guards
// against pathological configurations (0 means a generous default).
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation: the context is polled
// every few thousand simulation steps, so a cancelled sweep abandons the
// cell promptly without per-cycle overhead. The partial statistics
// accumulated so far are returned alongside the context's error.
func (s *Sim) RunContext(ctx context.Context, maxCycles uint64) (Stats, error) {
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	const ctxCheckInterval = 1 << 13
	steps := 0
	for {
		if steps++; steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				s.stats.Cycles = s.now
				s.flushSample()
				return s.stats, err
			}
		}
		progressed := s.step()
		if s.finished() {
			s.stats.Cycles = s.now
			s.flushSample()
			return s.stats, nil
		}
		if !progressed {
			s.fastForward()
		} else {
			s.now++
		}
		if s.cfg.SampleInterval > 0 && s.now >= s.nextSample {
			s.takeSample()
		}
		if s.now > maxCycles {
			return s.stats, fmt.Errorf("gpusim: exceeded %d cycles (deadlock or runaway workload)", maxCycles)
		}
	}
}

// step performs one cycle of work; it reports whether anything happened
// (used to fast-forward idle stretches).
func (s *Sim) step() bool {
	progressed := false

	// 1. Deliver due events.
	for len(s.events) > 0 && s.events[0].cycle <= s.now {
		e := heap.Pop(&s.events).(event)
		progressed = true
		switch e.kind {
		case evL1Fill:
			s.l1Fill(e.sm, e.sector)
		case evDRAMData:
			s.dataArrived(e.slice, e.sector)
		case evDRAMTag:
			s.tagArrived(e.slice, e.sector)
		case evAtomicDone:
			s.opSectorDone(e.op)
		}
	}

	// 2. Each L2 slice services one request and starts DRAM transfers.
	for _, sl := range s.slices {
		if len(sl.queue) > 0 {
			req := sl.queue[0]
			sl.queue = sl.queue[1:]
			s.serviceL2(sl, req)
			progressed = true
		}
		if len(sl.dramQueue) > 0 && sl.busyUntil <= s.now {
			dr := sl.dramQueue[0]
			sl.dramQueue = sl.dramQueue[1:]
			sl.busyUntil = s.now + uint64(s.cfg.DRAMCyclesPerSector)
			progressed = true
			switch dr.kind {
			case dramWrite:
				s.stats.DRAMWrites++
			case dramDataRead:
				s.stats.DRAMDataReads++
				heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.DRAMLatency), kind: evDRAMData, slice: dr.slice, sector: dr.sector})
			case dramTagRead:
				s.stats.DRAMTagReads++
				heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.DRAMLatency), kind: evDRAMTag, slice: dr.slice, sector: dr.sector})
			}
		}
	}

	// 3. SMs issue.
	for _, sm := range s.sms {
		if s.issue(sm) {
			progressed = true
		}
	}
	return progressed
}

// issue advances one SM by at most one op (or one blocked-op retry).
func (s *Sim) issue(sm *smState) bool {
	if sm.blocked != nil {
		return s.issueSectors(sm, sm.blocked)
	}
	if sm.done || s.now < sm.nextReady || sm.outstanding >= s.cfg.MaxOutstandingOps {
		return false
	}
	op, ok := sm.trace.Next()
	if !ok {
		sm.done = true
		return false
	}
	s.stats.WarpOps++
	sectors := coalesce(op.Addrs, s.cfg.SectorSize, sm.scratch)
	sm.scratch = sectors[:0]

	compute := op.Compute
	if s.cfg.Mode == ModeBoundsTable {
		// The bounds-table lookup is pipelined with the LD/ST path, so
		// most checks hide completely; every other memory instruction,
		// however, conflicts on the table port and stalls issue by
		// BoundsCk cycles. This reproduces the §6 observation that a
		// GPUShield-like scheme is nearly free for most workloads but
		// penalizes access-rate-bound ones by up to ~14%.
		sm.boundsToggle++
		if sm.boundsToggle%2 == 0 {
			compute += s.cfg.BoundsCk
		}
	}

	if op.Atomic {
		// Near-memory atomics (§4.2, Figure 6a): serviced at the L2 slice
		// behind an ECC decode/encode pair, bypassing the L1 entirely. The
		// warp waits for the returned old value, so atomics count against
		// outstanding ops like loads; under a carve-out the lock tag must
		// be fetched for the check, just as for loads and stores.
		s.stats.Atomics++
		st := &opState{sm: sm, pending: len(sectors)}
		for _, sec := range sectors {
			s.sliceOf(sec).queue = append(s.sliceOf(sec).queue, request{sector: sec, sm: sm.id, atomic: true, op: st})
		}
		if st.pending > 0 {
			sm.outstanding++
		}
		sm.nextReady = s.now + 1 + uint64(compute)
		return true
	}

	if op.Store {
		s.stats.Stores++
		for _, sec := range sectors {
			// Write-through, no-allocate L1: stores stream to the L2.
			s.sliceOf(sec).queue = append(s.sliceOf(sec).queue, request{sector: sec, sm: sm.id, store: true})
		}
		sm.nextReady = s.now + 1 + uint64(compute)
		return true
	}

	s.stats.Loads++
	pi := &pendingIssue{
		op:      &opState{sm: sm},
		sectors: append([]uint64(nil), sectors...),
		compute: compute,
	}
	return s.issueSectors(sm, pi)
}

// issueSectors pushes a load's sectors into the L1/MSHR machinery,
// blocking (and resuming later) when MSHRs run out.
func (s *Sim) issueSectors(sm *smState, pi *pendingIssue) bool {
	progressed := false
	for len(pi.sectors) > 0 {
		sec := pi.sectors[0]
		if sm.l1.lookup(sec, false) {
			s.stats.L1Hits++
			pi.sectors = pi.sectors[1:]
			progressed = true
			continue
		}
		if entry, ok := sm.mshr[sec]; ok {
			// Merge into the outstanding miss.
			s.stats.L1Hits++ // an MSHR merge costs no extra traffic
			entry.waiters = append(entry.waiters, pi.op)
			pi.op.pending++
			pi.sectors = pi.sectors[1:]
			progressed = true
			continue
		}
		if sm.mshrCount >= s.cfg.L1MSHRs {
			sm.blocked = pi
			return progressed
		}
		s.stats.L1Misses++
		sm.mshr[sec] = &mshrEntry{waiters: []*opState{pi.op}}
		sm.mshrCount++
		pi.op.pending++
		sl := s.sliceOf(sec)
		sl.queue = append(sl.queue, request{sector: sec, sm: sm.id, store: false, op: pi.op})
		pi.sectors = pi.sectors[1:]
		progressed = true
	}
	// Fully issued.
	sm.blocked = nil
	if pi.op.pending > 0 && !pi.started {
		sm.outstanding++
		pi.started = true
	}
	sm.nextReady = s.now + 1 + uint64(pi.compute)
	return progressed
}

// serviceL2 handles one request at an L2 slice.
func (s *Sim) serviceL2(sl *sliceState, req request) {
	if req.atomic {
		if sl.l2.lookup(req.sector, true) {
			s.stats.L2Hits++
			heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.L1Latency), kind: evAtomicDone, op: req.op})
			return
		}
		s.stats.L2Misses++
		miss := &l2Miss{sector: req.sector, slice: sl.id, sm: req.sm, atomic: true, op: req.op}
		if waiters, inflight := sl.pendingData[req.sector]; inflight {
			sl.pendingData[req.sector] = append(waiters, miss)
		} else {
			sl.pendingData[req.sector] = []*l2Miss{miss}
			sl.dramQueue = append(sl.dramQueue, dramReq{kind: dramDataRead, slice: sl.id, sector: req.sector})
		}
		if s.cfg.Mode == ModeCarveOut {
			s.fetchTagIfMissing(miss)
		}
		return
	}
	if req.store {
		if sl.l2.lookup(req.sector, true) {
			s.stats.L2Hits++
			return
		}
		s.stats.L2Misses++
		// Full-sector store: write-allocate without fetching the data.
		if sl.l2.insert(req.sector, true) {
			sl.dramQueue = append(sl.dramQueue, dramReq{kind: dramWrite})
		}
		// The carve-out still needs the lock tag for the store-side check.
		if s.cfg.Mode == ModeCarveOut {
			s.fetchTagIfMissing(&l2Miss{sector: req.sector, slice: sl.id, store: true})
		}
		return // stores complete at the SM; only traffic is modeled
	}

	if sl.l2.lookup(req.sector, false) {
		s.stats.L2Hits++
		heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.L1Latency), kind: evL1Fill, sm: req.sm, sector: req.sector})
		return
	}
	s.stats.L2Misses++
	miss := &l2Miss{sector: req.sector, slice: sl.id, sm: req.sm, op: req.op}
	if waiters, inflight := sl.pendingData[req.sector]; inflight {
		sl.pendingData[req.sector] = append(waiters, miss)
	} else {
		sl.pendingData[req.sector] = []*l2Miss{miss}
		sl.dramQueue = append(sl.dramQueue, dramReq{kind: dramDataRead, slice: sl.id, sector: req.sector})
	}
	if s.cfg.Mode == ModeCarveOut {
		s.fetchTagIfMissing(miss)
	}
}

// fetchTagIfMissing performs the parallel lock-tag lookup of §5.1: the
// probe is routed over the crossbar to the tag sector's own home slice,
// where tag sectors are cached in that slice's L2. On a miss it merges
// into any in-flight tag fetch or issues a DRAM tag read (linked to the
// data miss for loads so the response waits for both).
func (s *Sim) fetchTagIfMissing(miss *l2Miss) {
	miss.tagSector = s.tagSectorOf(miss.sector)
	tsl := s.sliceOf(miss.tagSector)
	if tsl.l2.lookup(miss.tagSector, false) {
		s.stats.TagL2Hits++
		return
	}
	s.stats.TagL2Misses++
	miss.needTag = true
	if waiters, inflight := tsl.pendingTag[miss.tagSector]; inflight {
		tsl.pendingTag[miss.tagSector] = append(waiters, miss)
		return
	}
	tsl.pendingTag[miss.tagSector] = []*l2Miss{miss}
	tsl.dramQueue = append(tsl.dramQueue, dramReq{kind: dramTagRead, slice: tsl.id, sector: miss.tagSector})
}

func (s *Sim) dataArrived(slice int, sector uint64) {
	sl := s.slices[slice]
	waiters := sl.pendingData[sector]
	delete(sl.pendingData, sector)
	if sl.l2.insert(sector, false) {
		sl.dramQueue = append(sl.dramQueue, dramReq{kind: dramWrite, slice: slice})
	}
	for _, m := range waiters {
		m.dataArrived = true
		s.maybeCompleteMiss(m)
	}
}

func (s *Sim) tagArrived(slice int, tagSector uint64) {
	sl := s.slices[slice]
	waiters := sl.pendingTag[tagSector]
	delete(sl.pendingTag, tagSector)
	if sl.l2.insert(tagSector, false) {
		sl.dramQueue = append(sl.dramQueue, dramReq{kind: dramWrite, slice: slice})
	}
	for _, m := range waiters {
		m.tagArrived = true
		s.maybeCompleteMiss(m)
	}
}

func (s *Sim) maybeCompleteMiss(miss *l2Miss) {
	if miss.store {
		return // store misses already write-allocated; the tag fill is enough
	}
	if !miss.dataArrived || (miss.needTag && !miss.tagArrived) {
		return
	}
	if miss.atomic {
		// The L2 performs the RMW: dirty the freshly filled line and
		// return the old value to the SM without filling the L1.
		s.slices[miss.slice].l2.lookup(miss.sector, true)
		heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.L1Latency), kind: evAtomicDone, op: miss.op})
		return
	}
	heap.Push(&s.events, event{cycle: s.now + uint64(s.cfg.L1Latency), kind: evL1Fill, sm: miss.sm, sector: miss.sector})
}

// opSectorDone retires one completed sector of a non-L1 (atomic) op.
func (s *Sim) opSectorDone(op *opState) {
	op.pending--
	if op.pending == 0 {
		op.sm.outstanding--
	}
}

func (s *Sim) l1Fill(smID int, sector uint64) {
	sm := s.sms[smID]
	sm.l1.insert(sector, false) // write-through L1: evictions are silent
	entry, ok := sm.mshr[sector]
	if !ok {
		return
	}
	delete(sm.mshr, sector)
	sm.mshrCount--
	for _, op := range entry.waiters {
		op.pending--
		if op.pending == 0 {
			op.sm.outstanding--
		}
	}
}

func (s *Sim) finished() bool {
	if len(s.events) > 0 {
		return false
	}
	for _, sl := range s.slices {
		if len(sl.queue) > 0 || len(sl.dramQueue) > 0 {
			return false
		}
	}
	for _, sm := range s.sms {
		if !sm.done || sm.blocked != nil || sm.outstanding > 0 {
			return false
		}
	}
	return true
}

// fastForward jumps to the next time anything can happen: the earliest
// event, DRAM channel free time, or SM ready time.
func (s *Sim) fastForward() {
	next := s.now + 1
	best := ^uint64(0)
	if len(s.events) > 0 && s.events[0].cycle > s.now {
		best = s.events[0].cycle
	}
	for _, sl := range s.slices {
		if len(sl.dramQueue) > 0 && sl.busyUntil > s.now && sl.busyUntil < best {
			best = sl.busyUntil
		}
	}
	for _, sm := range s.sms {
		if !sm.done && sm.outstanding < s.cfg.MaxOutstandingOps && sm.blocked == nil &&
			sm.nextReady > s.now && sm.nextReady < best {
			best = sm.nextReady
		}
	}
	if best != ^uint64(0) && best > next {
		next = best
	}
	s.now = next
}
