package gpusim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace files let a workload's warp-op stream be recorded once and
// replayed deterministically — the "trace-driven" half of a trace-driven
// simulator. The format is a compact varint stream:
//
//	magic "IMTTRC1\n"
//	numSMs  uvarint
//	per SM: numOps uvarint, then per op:
//	  flags   byte (bit0 store, bit1 atomic)
//	  compute uvarint
//	  nAddrs  uvarint
//	  addrs   uvarint each (raw; generators emit small, local values)
const traceMagic = "IMTTRC1\n"

// WriteTraces drains the given traces and writes them to w.
//
// CONSUMPTION CONTRACT: a Trace is a one-shot stream, and WriteTraces
// reads every trace to exhaustion — afterwards the inputs yield no
// further ops and cannot drive a simulation. Callers that need the
// traces again (record-then-replay, record-then-upload) must either
// re-materialize them or use WriteTracesClone, which snapshots clones
// and leaves the originals untouched.
func WriteTraces(w io.Writer, traces []Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(traces))); err != nil {
		return err
	}
	for _, tr := range traces {
		var ops []WarpOp
		if tr != nil {
			for {
				op, ok := tr.Next()
				if !ok {
					break
				}
				ops = append(ops, op)
			}
		}
		if err := putUvarint(uint64(len(ops))); err != nil {
			return err
		}
		for _, op := range ops {
			var flags byte
			if op.Store {
				flags |= 1
			}
			if op.Atomic {
				flags |= 2
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			if err := putUvarint(uint64(op.Compute)); err != nil {
				return err
			}
			if err := putUvarint(uint64(len(op.Addrs))); err != nil {
				return err
			}
			for _, a := range op.Addrs {
				if err := putUvarint(a); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteTracesClone writes the traces to w WITHOUT consuming them: each
// input is deep-copied via CloneTraces first, so the originals remain
// fully replayable afterwards. It inherits CloneTraces' requirement
// that every non-nil trace implement Clone() Trace (SliceTrace and
// ReadTraces results do; generator-backed FuncTraces do not — drain
// those with WriteTraces and re-read the file instead).
func WriteTracesClone(w io.Writer, traces []Trace) error {
	cloned, err := CloneTraces(traces)
	if err != nil {
		return err
	}
	return WriteTraces(w, cloned)
}

// ReadTraces loads a trace file into replayable per-SM traces.
func ReadTraces(r io.Reader) ([]Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gpusim: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("gpusim: not a trace file (magic %q)", magic)
	}
	numSMs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numSMs > maxTraceSMs {
		return nil, fmt.Errorf("gpusim: implausible SM count %d", numSMs)
	}
	out := make([]Trace, numSMs)
	for sm := range out {
		numOps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("gpusim: SM %d op count: %w", sm, err)
		}
		if numOps > maxTraceOps {
			return nil, fmt.Errorf("gpusim: implausible op count %d", numOps)
		}
		// Grow instead of trusting the header: a truncated or hostile
		// file can claim 2^28 ops in a handful of bytes, and an upfront
		// make() of that size is a multi-GB allocation before the first
		// op is read.
		ops := make([]WarpOp, 0, min(numOps, 4096))
		for i := uint64(0); i < numOps; i++ {
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("gpusim: SM %d op %d flags: %w", sm, i, err)
			}
			compute, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			nAddrs, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if nAddrs > maxTraceAddrs {
				return nil, fmt.Errorf("gpusim: implausible address count %d", nAddrs)
			}
			op := WarpOp{
				Store:   flags&1 != 0,
				Atomic:  flags&2 != 0,
				Compute: int(compute),
				Addrs:   make([]uint64, nAddrs),
			}
			for j := range op.Addrs {
				a, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				op.Addrs[j] = a
			}
			ops = append(ops, op)
		}
		out[sm] = &SliceTrace{Ops: ops}
	}
	return out, nil
}
