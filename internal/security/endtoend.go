package security

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/imt"
	"repro/internal/tagalloc"
)

// CampaignResult reports an end-to-end attack campaign executed against
// the real IMT memory and allocator (not the tag-level model): every
// attack is an actual out-of-bounds or dangling access whose detection
// is the hardware fault path, and every detected fault is run through
// the driver's Equation 7 diagnosis.
type CampaignResult struct {
	Trials int

	AdjacentDetected    float64
	NonAdjacentDetected float64
	UAFDetected         float64

	// DiagnosedTMM is the fraction of detected attacks the driver
	// precisely classified as tag mismatches (should be ~all of them:
	// attacks are not data errors).
	DiagnosedTMM float64
}

// RunHeapCampaign allocates a heap of `objects` fixed-size objects with
// the given tagger and mounts `trials` rounds of three attacks each:
// adjacent overflow, attacker-displaced (same-parity) overflow, and
// use-after-free. It cross-validates the closed forms end to end —
// through pointer arithmetic, sector decode, fault delivery and driver
// diagnosis — rather than over bare tag vectors.
func RunHeapCampaign(cfg imt.Config, tagger tagalloc.Tagger, objects, trials int, seed int64) (CampaignResult, error) {
	if objects < 4 {
		return CampaignResult{}, fmt.Errorf("security: need ≥ 4 objects")
	}
	rng := rand.New(rand.NewSource(seed))
	var res CampaignResult
	res.Trials = trials
	var adj, nonadj, uaf, tmmDiag, detected int

	for trial := 0; trial < trials; trial++ {
		mem, err := imt.NewMemory(cfg)
		if err != nil {
			return res, err
		}
		drv := imt.NewDriver(mem)
		heap, err := tagalloc.New(mem, drv, tagger, 0x100000, uint64(objects*64+1<<12), seed+int64(trial))
		if err != nil {
			return res, err
		}
		ptrs := make([]imt.Pointer, objects)
		for i := range ptrs {
			if ptrs[i], err = heap.Malloc(32); err != nil {
				return res, err
			}
		}
		check := func(err error) bool {
			var f *imt.Fault
			if !errors.As(err, &f) {
				return false
			}
			detected++
			if drv.Diagnose(*f).Kind == imt.DiagnosisTMM {
				tmmDiag++
			}
			return true
		}

		victim := rng.Intn(objects - 2)

		// 1. Adjacent overflow: one granule past the end.
		if _, err := mem.Read(cfg.WithOffset(ptrs[victim], 32), 1); check(err) {
			adj++
		}

		// 2. Non-adjacent: an even object displacement (worst case for
		// Scudo's parity split).
		target := victim
		for target == victim {
			target = rng.Intn(objects)
			if (target-victim)%2 != 0 {
				target = victim
			}
		}
		disp := int64(cfg.Addr(ptrs[target])) - int64(cfg.Addr(ptrs[victim]))
		if _, err := mem.Read(cfg.WithOffset(ptrs[victim], disp), 1); check(err) {
			nonadj++
		}

		// 3. Use-after-free on the last object.
		stale := ptrs[objects-1]
		if err := heap.Free(stale); err != nil {
			return res, err
		}
		if _, err := mem.Read(stale, 1); check(err) {
			uaf++
		}
	}
	res.AdjacentDetected = float64(adj) / float64(trials)
	res.NonAdjacentDetected = float64(nonadj) / float64(trials)
	res.UAFDetected = float64(uaf) / float64(trials)
	if detected > 0 {
		res.DiagnosedTMM = float64(tmmDiag) / float64(detected)
	}
	return res, nil
}
