package security

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/imt"
	"repro/internal/tagalloc"
)

// CampaignResult reports an end-to-end attack campaign executed against
// the real IMT memory and allocator (not the tag-level model): every
// attack is an actual out-of-bounds or dangling access whose detection
// is the hardware fault path, and every detected fault is run through
// the driver's Equation 7 diagnosis.
type CampaignResult struct {
	Trials int

	AdjacentDetected    float64
	NonAdjacentDetected float64
	UAFDetected         float64

	// DiagnosedTMM is the fraction of detected attacks the driver
	// precisely classified as tag mismatches (should be ~all of them:
	// attacks are not data errors).
	DiagnosedTMM float64
}

// RunHeapCampaign allocates a heap of `objects` fixed-size objects with
// the given tagger and mounts `trials` rounds of three attacks each:
// adjacent overflow, attacker-displaced (same-parity) overflow, and
// use-after-free. It cross-validates the closed forms end to end —
// through pointer arithmetic, sector decode, fault delivery and driver
// diagnosis — rather than over bare tag vectors.
//
// Every trial is independently seeded from (seed, trial index), so the
// campaign is trial-splittable: RunHeapCampaignWorkers produces the
// same counts for every worker count.
func RunHeapCampaign(cfg imt.Config, tagger tagalloc.Tagger, objects, trials int, seed int64) (CampaignResult, error) {
	return RunHeapCampaignWorkers(cfg, tagger, objects, trials, seed, 1)
}

// heapHits are the raw counters of a slice of end-to-end trials.
type heapHits struct {
	adj, nonadj, uaf, tmmDiag, detected int
}

// RunHeapCampaignWorkers is RunHeapCampaign fanned out over `workers`
// goroutines, with trials statically partitioned into contiguous
// ranges. Per-trial seeding makes the result identical for every
// worker count.
func RunHeapCampaignWorkers(cfg imt.Config, tagger tagalloc.Tagger, objects, trials int, seed int64, workers int) (CampaignResult, error) {
	if objects < 4 {
		return CampaignResult{}, fmt.Errorf("security: need ≥ 4 objects")
	}
	var res CampaignResult
	res.Trials = trials
	if trials <= 0 {
		return res, nil
	}
	if workers > trials {
		workers = trials
	}
	var total heapHits
	if workers < 2 {
		var err error
		if total, err = runHeapTrials(cfg, tagger, objects, seed, 0, trials); err != nil {
			return res, err
		}
	} else {
		parts := make([]heapHits, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		per := trials / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if w == workers-1 {
				hi = trials
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				parts[w], errs[w] = runHeapTrials(cfg, tagger, objects, seed, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return res, errs[w]
			}
			total.adj += parts[w].adj
			total.nonadj += parts[w].nonadj
			total.uaf += parts[w].uaf
			total.tmmDiag += parts[w].tmmDiag
			total.detected += parts[w].detected
		}
	}
	res.AdjacentDetected = float64(total.adj) / float64(trials)
	res.NonAdjacentDetected = float64(total.nonadj) / float64(trials)
	res.UAFDetected = float64(total.uaf) / float64(trials)
	if total.detected > 0 {
		res.DiagnosedTMM = float64(total.tmmDiag) / float64(total.detected)
	}
	return res, nil
}

// runHeapTrials executes trials [lo, hi) of a campaign. Each trial gets
// its own attack RNG derived from (seed, trial) and its own heap seeded
// seed+trial, so the counters depend only on the trial range.
func runHeapTrials(cfg imt.Config, tagger tagalloc.Tagger, objects int, seed int64, lo, hi int) (heapHits, error) {
	var h heapHits
	for trial := lo; trial < hi; trial++ {
		rng := rand.New(rand.NewSource(chunkSeed(seed, trial)))
		mem, err := imt.NewMemory(cfg)
		if err != nil {
			return h, err
		}
		drv := imt.NewDriver(mem)
		heap, err := tagalloc.New(mem, drv, tagger, 0x100000, uint64(objects*64+1<<12), seed+int64(trial))
		if err != nil {
			return h, err
		}
		ptrs := make([]imt.Pointer, objects)
		for i := range ptrs {
			if ptrs[i], err = heap.Malloc(32); err != nil {
				return h, err
			}
		}
		check := func(err error) bool {
			var f *imt.Fault
			if !errors.As(err, &f) {
				return false
			}
			h.detected++
			if drv.Diagnose(*f).Kind == imt.DiagnosisTMM {
				h.tmmDiag++
			}
			return true
		}

		victim := rng.Intn(objects - 2)

		// 1. Adjacent overflow: one granule past the end.
		if _, err := mem.Read(cfg.WithOffset(ptrs[victim], 32), 1); check(err) {
			h.adj++
		}

		// 2. Non-adjacent: an even object displacement (worst case for
		// Scudo's parity split).
		target := victim
		for target == victim {
			target = rng.Intn(objects)
			if (target-victim)%2 != 0 {
				target = victim
			}
		}
		disp := int64(cfg.Addr(ptrs[target])) - int64(cfg.Addr(ptrs[victim]))
		if _, err := mem.Read(cfg.WithOffset(ptrs[victim], disp), 1); check(err) {
			h.nonadj++
		}

		// 3. Use-after-free on the last object.
		stale := ptrs[objects-1]
		if err := heap.Free(stale); err != nil {
			return h, err
		}
		if _, err := mem.Read(stale, 1); check(err) {
			h.uaf++
		}
	}
	return h, nil
}
