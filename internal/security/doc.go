// Package security evaluates the probabilistic guarantees of memory
// tagging (§5.4): detection rates for adjacent and non-adjacent buffer
// overflows under the glibc and Scudo retagging policies, both in closed
// form and by Monte-Carlo attack simulation against the real taggers.
//
// Detection of a violation requires only that the victim's key tag differ
// from the attacked granule's lock tag, so with T uniformly-assigned tags
// the detection rate is 1 − 1/T (the paper's "100% − 100%/Num.Tags").
package security
