package security

import (
	"math"
	"testing"

	"repro/internal/imt"
	"repro/internal/tagalloc"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f ± %.6f", name, got, want, tol)
	}
}

func TestClosedFormsMatchTable1(t *testing.T) {
	// Table 1's security rows.
	cases := []struct {
		tagBits                       int
		glibcTags, scudoTags          int
		glibcDetect, scudoNonAdjacent float64
	}{
		{4, 14, 7, 0.92857, 0.85714},         // SPARC ADI / ARM MTE
		{9, 510, 255, 0.99804, 0.99608},      // IMT-10
		{8, 254, 127, 0.99606, 0.99212},      // iso-security-10 carve-out
		{15, 32766, 16383, 0.99997, 0.99994}, // IMT-16
		{16, 65534, 32767, 0.99998, 0.99997}, // iso-security-16 carve-out
	}
	for _, c := range cases {
		g := Glibc(c.tagBits)
		if g.NumTags != c.glibcTags {
			t.Errorf("glibc(%d) NumTags = %d, want %d", c.tagBits, g.NumTags, c.glibcTags)
		}
		approx(t, "glibc adjacent", g.Adjacent, c.glibcDetect, 1e-4)
		approx(t, "glibc non-adjacent", g.NonAdjacent, c.glibcDetect, 1e-4)

		s := Scudo(c.tagBits)
		if s.NumTags != c.scudoTags {
			t.Errorf("scudo(%d) NumTags = %d, want %d", c.tagBits, s.NumTags, c.scudoTags)
		}
		if s.Adjacent != 1 {
			t.Errorf("scudo(%d) adjacent = %v, want 1", c.tagBits, s.Adjacent)
		}
		approx(t, "scudo non-adjacent", s.NonAdjacent, c.scudoNonAdjacent, 1e-4)
	}
}

func TestMisdetectionImprovementMatchesPaper(t *testing.T) {
	// §5.4: IMT-10 has 36× and IMT-16 2340× lower misdetection than the
	// 4-bit industry schemes.
	mte := Glibc(4)
	if f := MisdetectionImprovement(mte, Glibc(9)); math.Abs(f-510.0/14) > 0.5 {
		t.Errorf("IMT-10 improvement = %.1f, want ≈ %.1f", f, 510.0/14)
	}
	if f := MisdetectionImprovement(mte, Glibc(15)); math.Abs(f-32766.0/14) > 5 {
		t.Errorf("IMT-16 improvement = %.1f, want ≈ %.1f", f, 32766.0/14)
	}
}

func TestForgedKeyTagDegradesScudo(t *testing.T) {
	s := Scudo(15)
	if ForgedKeyTag(s) != s.NonAdjacent {
		t.Error("forged key tags should reduce Scudo to its probabilistic rate")
	}
}

func TestSimulationMatchesClosedFormGlibc(t *testing.T) {
	for _, tb := range []int{4, 9} {
		g := Glibc(tb)
		res, err := SimulateAttacks(tagalloc.GlibcTagger{TagBits: tb}, 32, 20000, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Monte-Carlo tolerance ~4σ of a Bernoulli with p = 1/NumTags.
		p := 1 / float64(g.NumTags)
		tol := 4 * math.Sqrt(p*(1-p)/20000)
		approx(t, "glibc sim adjacent", res.AdjacentDetected, g.Adjacent, tol+1e-3)
		approx(t, "glibc sim non-adjacent", res.NonAdjacentDetected, g.NonAdjacent, tol+1e-3)
		approx(t, "glibc sim UAF", res.UseAfterFreeCaught, g.NonAdjacent, tol+1e-3)
	}
}

func TestSimulationMatchesClosedFormScudo(t *testing.T) {
	for _, tb := range []int{4, 9, 15} {
		s := Scudo(tb)
		res, err := SimulateAttacks(tagalloc.ScudoTagger{TagBits: tb}, 32, 20000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.AdjacentDetected != 1 {
			t.Errorf("scudo(%d) sim adjacent = %v, want exactly 1", tb, res.AdjacentDetected)
		}
		p := 1 / float64(s.NumTags)
		tol := 4*math.Sqrt(p*(1-p)/20000) + 1e-3
		approx(t, "scudo sim non-adjacent", res.NonAdjacentDetected, s.NonAdjacent, tol)
	}
}

func TestSimulateAttacksValidation(t *testing.T) {
	if _, err := SimulateAttacks(tagalloc.GlibcTagger{TagBits: 4}, 1, 10, 1); err == nil {
		t.Error("objects < 2 must be rejected")
	}
}

func TestScudoBeatsGlibcAdjacentButNotNonAdjacent(t *testing.T) {
	// The §5.4 trade-off: Scudo trades 2× non-adjacent misdetection for a
	// deterministic adjacent guarantee.
	g, s := Glibc(15), Scudo(15)
	if !(s.Adjacent > g.Adjacent) {
		t.Error("Scudo should dominate on adjacent overflows")
	}
	if !(s.NonAdjacent < g.NonAdjacent) {
		t.Error("Scudo should trail on non-adjacent overflows")
	}
	ratio := (1 - s.NonAdjacent) / (1 - g.NonAdjacent)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("misdetection penalty = %.3f, want ≈ 2", ratio)
	}
}

func TestEndToEndCampaignScudo(t *testing.T) {
	res, err := RunHeapCampaign(imt.IMT16, tagalloc.ScudoTagger{TagBits: 15}, 16, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scudo: adjacent overflows always caught, end to end.
	if res.AdjacentDetected != 1 {
		t.Errorf("adjacent = %v, want exactly 1", res.AdjacentDetected)
	}
	// Non-adjacent: probabilistic near 1 − 1/16383; with 300 trials a
	// single miss is already unlikely, so require ≥ 0.99.
	if res.NonAdjacentDetected < 0.99 {
		t.Errorf("non-adjacent = %v", res.NonAdjacentDetected)
	}
	// UAF: quarantine retag makes pre-reuse dangling reads deterministic.
	if res.UAFDetected != 1 {
		t.Errorf("UAF = %v, want exactly 1", res.UAFDetected)
	}
	// Every detected attack is a pure tag mismatch and the driver must
	// classify it as such (no attacker-visible DUEs — the §3.6 property).
	if res.DiagnosedTMM != 1 {
		t.Errorf("precise TMM diagnosis = %v, want 1", res.DiagnosedTMM)
	}
}

func TestEndToEndCampaignSmallTags(t *testing.T) {
	// With 4-bit tags the misses become visible at campaign scale.
	res, err := RunHeapCampaign(imt.IMT16, tagalloc.GlibcTagger{TagBits: 4}, 16, 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := Glibc(4)
	tol := 4*math.Sqrt((1-g.NonAdjacent)*g.NonAdjacent/800) + 0.01
	approx(t, "e2e adjacent (4b)", res.AdjacentDetected, g.Adjacent, tol)
	approx(t, "e2e non-adjacent (4b)", res.NonAdjacentDetected, g.NonAdjacent, tol)
	if res.DiagnosedTMM != 1 {
		t.Errorf("diagnosis = %v", res.DiagnosedTMM)
	}
}

func TestRunHeapCampaignValidation(t *testing.T) {
	if _, err := RunHeapCampaign(imt.IMT16, tagalloc.GlibcTagger{TagBits: 4}, 2, 5, 1); err == nil {
		t.Error("too few objects must fail")
	}
}
