package security

import (
	"testing"

	"repro/internal/imt"
	"repro/internal/tagalloc"
)

// TestSimulateAttacksWorkerIndependent: the chunked seeding scheme makes
// the tally a pure function of (seed, trials) — every worker count must
// return identical results.
func TestSimulateAttacksWorkerIndependent(t *testing.T) {
	for _, tagger := range []tagalloc.Tagger{
		tagalloc.GlibcTagger{TagBits: 8},
		tagalloc.ScudoTagger{TagBits: 8},
	} {
		base, err := SimulateAttacksWorkers(tagger, 16, 10_000, 99, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			got, err := SimulateAttacksWorkers(tagger, 16, 10_000, 99, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Errorf("workers=%d: %+v != workers=1 %+v", workers, got, base)
			}
		}
	}
}

// TestSimulateAttacksLegacyEntryPoint: SimulateAttacks is the workers=1
// path and keeps validating its inputs.
func TestSimulateAttacksLegacyEntryPoint(t *testing.T) {
	a, err := SimulateAttacks(tagalloc.GlibcTagger{TagBits: 4}, 8, 5_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAttacksWorkers(tagalloc.GlibcTagger{TagBits: 4}, 8, 5_000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("SimulateAttacks %+v != SimulateAttacksWorkers %+v", a, b)
	}
	if _, err := SimulateAttacks(tagalloc.GlibcTagger{TagBits: 4}, 1, 10, 1); err == nil {
		t.Error("objects < 2 must fail")
	}
}

// TestRunHeapCampaignWorkerIndependent: per-trial seeding makes the
// end-to-end campaign identical for any worker count.
func TestRunHeapCampaignWorkerIndependent(t *testing.T) {
	base, err := RunHeapCampaignWorkers(imt.IMT16, tagalloc.GlibcTagger{TagBits: 4}, 8, 60, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7} {
		got, err := RunHeapCampaignWorkers(imt.IMT16, tagalloc.GlibcTagger{TagBits: 4}, 8, 60, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("workers=%d: %+v != workers=1 %+v", workers, got, base)
		}
	}
}
