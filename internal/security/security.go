package security

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ecc/bitslice"
	"repro/internal/tagalloc"
)

// Guarantees summarizes a policy's probabilistic protection.
type Guarantees struct {
	Policy  string
	TagBits int
	// NumTags is the per-allocation tag-space size after reservations
	// (and, for Scudo, after the parity split).
	NumTags int
	// Adjacent / NonAdjacent are detection probabilities for overflows
	// into the neighboring object vs. an attacker-controlled displacement.
	Adjacent    float64
	NonAdjacent float64
}

// Glibc returns the closed-form guarantees of random retagging with two
// reserved tags: both attack classes are detected with 1 − 1/(2^TS−2).
func Glibc(tagBits int) Guarantees {
	n := tagalloc.GlibcTagger{TagBits: tagBits}.NumTags()
	d := 1 - 1/float64(n)
	return Guarantees{Policy: "glibc", TagBits: tagBits, NumTags: n, Adjacent: d, NonAdjacent: d}
}

// Scudo returns the closed-form guarantees of odd/even alternating
// retagging: adjacent overflows are always detected (neighbors differ by
// construction), while non-adjacent detection pays a 2× penalty from the
// halved per-class tag space, 1 − 1/(2^(TS−1)−1).
//
// The 100% adjacent guarantee assumes the attacker cannot forge key-tag
// bits (footnote 9 of the paper); ForgedKeyTag relaxes that.
func Scudo(tagBits int) Guarantees {
	n := tagalloc.ScudoTagger{TagBits: tagBits}.NumTags()
	return Guarantees{
		Policy:      "scudo",
		TagBits:     tagBits,
		NumTags:     n,
		Adjacent:    1,
		NonAdjacent: 1 - 1/float64(n),
	}
}

// ForgedKeyTag returns the adjacent-overflow detection rate when the
// attacker can also choose the key tag: the guarantee degrades to the
// non-adjacent probabilistic rate for both policies.
func ForgedKeyTag(g Guarantees) float64 { return g.NonAdjacent }

// MisdetectionImprovement returns how many times lower the miss
// probability of `better` is compared to `worse` (e.g. IMT-16/glibc vs an
// ARM-MTE-like 4-bit scheme ≈ 2340×).
func MisdetectionImprovement(worse, better Guarantees) float64 {
	return (1 - worse.NonAdjacent) / (1 - better.NonAdjacent)
}

// AttackResult reports measured detection rates from simulation.
type AttackResult struct {
	Trials              int
	AdjacentDetected    float64
	NonAdjacentDetected float64
	UseAfterFreeCaught  float64
}

// SimulateAttacks runs a tag-level Monte-Carlo attack campaign against a
// retagging policy. Each trial lays out `objects` adjacent heap objects
// using the real tagger (with the left-neighbor alternation rule), then
// mounts three attacks from a random victim object:
//
//   - adjacent overflow: access the next object with the victim's key;
//   - non-adjacent overflow: access a uniformly random other object;
//   - use-after-free: access the victim after a quarantine retag.
//
// Detection means the key and lock tags differ. This validates the closed
// forms in Glibc/Scudo against the executable policy implementations.
//
// The campaign is chunked: every attackChunk trials draw from a fresh
// deterministic stream derived from (seed, chunk index), so the result
// depends only on (seed, trials) — SimulateAttacksWorkers returns the
// same counts for every worker count.
func SimulateAttacks(tagger tagalloc.Tagger, objects, trials int, seed int64) (AttackResult, error) {
	return SimulateAttacksWorkers(tagger, objects, trials, seed, 1)
}

// attackChunk is the deterministic seeding granule of the tag-level and
// end-to-end campaigns: trial t draws from the stream of chunk t/attackChunk.
const attackChunk = 1024

// chunkSeed derives the math/rand seed for one chunk of a campaign.
func chunkSeed(seed int64, chunk int) int64 {
	return int64(bitslice.SeedForBatch(seed, uint64(chunk)))
}

// SimulateAttacksWorkers is SimulateAttacks fanned out over `workers`
// goroutines. Chunks of attackChunk trials are independently seeded from
// (seed, chunk index) and statically partitioned, so the tally — not
// just the distribution — is identical for every worker count.
func SimulateAttacksWorkers(tagger tagalloc.Tagger, objects, trials int, seed int64, workers int) (AttackResult, error) {
	if objects < 2 {
		return AttackResult{}, fmt.Errorf("security: need ≥ 2 objects, got %d", objects)
	}
	var res AttackResult
	res.Trials = trials
	if trials <= 0 {
		return res, nil
	}
	chunks := (trials + attackChunk - 1) / attackChunk
	if workers < 2 || chunks < 2 {
		adj, non, uaf := simulateAttackChunks(tagger, objects, trials, seed, 0, chunks)
		res.AdjacentDetected = float64(adj) / float64(trials)
		res.NonAdjacentDetected = float64(non) / float64(trials)
		res.UseAfterFreeCaught = float64(uaf) / float64(trials)
		return res, nil
	}
	if workers > chunks {
		workers = chunks
	}
	type hits struct{ adj, non, uaf int }
	parts := make([]hits, workers)
	var wg sync.WaitGroup
	per := chunks / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if w == workers-1 {
			hi = chunks
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			a, n, u := simulateAttackChunks(tagger, objects, trials, seed, lo, hi)
			parts[w] = hits{a, n, u}
		}(w, lo, hi)
	}
	wg.Wait()
	var adj, non, uaf int
	for _, p := range parts {
		adj += p.adj
		non += p.non
		uaf += p.uaf
	}
	res.AdjacentDetected = float64(adj) / float64(trials)
	res.NonAdjacentDetected = float64(non) / float64(trials)
	res.UseAfterFreeCaught = float64(uaf) / float64(trials)
	return res, nil
}

// simulateAttackChunks runs chunks [chunkLo, chunkHi) of a campaign of
// `trials` total trials and returns the three hit counters.
func simulateAttackChunks(tagger tagalloc.Tagger, objects, trials int, seed int64, chunkLo, chunkHi int) (adjHit, nonHit, uafHit int) {
	tags := make([]uint64, objects)
	for chunk := chunkLo; chunk < chunkHi; chunk++ {
		rng := rand.New(rand.NewSource(chunkSeed(seed, chunk)))
		first := chunk * attackChunk
		last := first + attackChunk
		if last > trials {
			last = trials
		}
		for trial := first; trial < last; trial++ {
			for i := range tags {
				if i == 0 {
					tags[i] = tagger.NextTag(rng, 0, false, i)
				} else {
					tags[i] = tagger.NextTag(rng, tags[i-1], true, i)
				}
			}
			victim := rng.Intn(objects - 1)

			// Adjacent overflow into victim+1.
			if tags[victim] != tags[victim+1] {
				adjHit++
			}

			// Non-adjacent overflow with attacker-controlled displacement.
			// The worst-case attacker chooses an even object displacement so
			// the target shares the victim's parity class — this is the
			// adversary the paper's 1 − 1/NumTags closed form describes (for
			// glibc the parity restriction changes nothing).
			target := victim
			for target == victim {
				target = rng.Intn(objects)
				if (target-victim)%2 != 0 {
					target = victim // resample: stay in the parity class
				}
			}
			if tags[victim] != tags[target] {
				nonHit++
			}

			// Use-after-free: the allocator requarantines with a fresh tag
			// drawn until it differs, so a dangling access is always caught
			// until reallocation; model the reallocation draw instead — the
			// dangerous case is a reuse that redraws the old tag.
			left := uint64(0)
			hasLeft := false
			if victim > 0 {
				left, hasLeft = tags[victim-1], true
			}
			reuse := tagger.NextTag(rng, left, hasLeft, objects+trial)
			if reuse != tags[victim] {
				uafHit++
			}
		}
	}
	return adjHit, nonHit, uafHit
}
