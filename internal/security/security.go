package security

import (
	"fmt"
	"math/rand"

	"repro/internal/tagalloc"
)

// Guarantees summarizes a policy's probabilistic protection.
type Guarantees struct {
	Policy  string
	TagBits int
	// NumTags is the per-allocation tag-space size after reservations
	// (and, for Scudo, after the parity split).
	NumTags int
	// Adjacent / NonAdjacent are detection probabilities for overflows
	// into the neighboring object vs. an attacker-controlled displacement.
	Adjacent    float64
	NonAdjacent float64
}

// Glibc returns the closed-form guarantees of random retagging with two
// reserved tags: both attack classes are detected with 1 − 1/(2^TS−2).
func Glibc(tagBits int) Guarantees {
	n := tagalloc.GlibcTagger{TagBits: tagBits}.NumTags()
	d := 1 - 1/float64(n)
	return Guarantees{Policy: "glibc", TagBits: tagBits, NumTags: n, Adjacent: d, NonAdjacent: d}
}

// Scudo returns the closed-form guarantees of odd/even alternating
// retagging: adjacent overflows are always detected (neighbors differ by
// construction), while non-adjacent detection pays a 2× penalty from the
// halved per-class tag space, 1 − 1/(2^(TS−1)−1).
//
// The 100% adjacent guarantee assumes the attacker cannot forge key-tag
// bits (footnote 9 of the paper); ForgedKeyTag relaxes that.
func Scudo(tagBits int) Guarantees {
	n := tagalloc.ScudoTagger{TagBits: tagBits}.NumTags()
	return Guarantees{
		Policy:      "scudo",
		TagBits:     tagBits,
		NumTags:     n,
		Adjacent:    1,
		NonAdjacent: 1 - 1/float64(n),
	}
}

// ForgedKeyTag returns the adjacent-overflow detection rate when the
// attacker can also choose the key tag: the guarantee degrades to the
// non-adjacent probabilistic rate for both policies.
func ForgedKeyTag(g Guarantees) float64 { return g.NonAdjacent }

// MisdetectionImprovement returns how many times lower the miss
// probability of `better` is compared to `worse` (e.g. IMT-16/glibc vs an
// ARM-MTE-like 4-bit scheme ≈ 2340×).
func MisdetectionImprovement(worse, better Guarantees) float64 {
	return (1 - worse.NonAdjacent) / (1 - better.NonAdjacent)
}

// AttackResult reports measured detection rates from simulation.
type AttackResult struct {
	Trials              int
	AdjacentDetected    float64
	NonAdjacentDetected float64
	UseAfterFreeCaught  float64
}

// SimulateAttacks runs a tag-level Monte-Carlo attack campaign against a
// retagging policy. Each trial lays out `objects` adjacent heap objects
// using the real tagger (with the left-neighbor alternation rule), then
// mounts three attacks from a random victim object:
//
//   - adjacent overflow: access the next object with the victim's key;
//   - non-adjacent overflow: access a uniformly random other object;
//   - use-after-free: access the victim after a quarantine retag.
//
// Detection means the key and lock tags differ. This validates the closed
// forms in Glibc/Scudo against the executable policy implementations.
func SimulateAttacks(tagger tagalloc.Tagger, objects, trials int, seed int64) (AttackResult, error) {
	if objects < 2 {
		return AttackResult{}, fmt.Errorf("security: need ≥ 2 objects, got %d", objects)
	}
	rng := rand.New(rand.NewSource(seed))
	var res AttackResult
	res.Trials = trials
	adjHit, nonHit, uafHit := 0, 0, 0
	tags := make([]uint64, objects)
	for trial := 0; trial < trials; trial++ {
		for i := range tags {
			if i == 0 {
				tags[i] = tagger.NextTag(rng, 0, false, i)
			} else {
				tags[i] = tagger.NextTag(rng, tags[i-1], true, i)
			}
		}
		victim := rng.Intn(objects - 1)

		// Adjacent overflow into victim+1.
		if tags[victim] != tags[victim+1] {
			adjHit++
		}

		// Non-adjacent overflow with attacker-controlled displacement.
		// The worst-case attacker chooses an even object displacement so
		// the target shares the victim's parity class — this is the
		// adversary the paper's 1 − 1/NumTags closed form describes (for
		// glibc the parity restriction changes nothing).
		target := victim
		for target == victim {
			target = rng.Intn(objects)
			if (target-victim)%2 != 0 {
				target = victim // resample: stay in the parity class
			}
		}
		if tags[victim] != tags[target] {
			nonHit++
		}

		// Use-after-free: the allocator requarantines with a fresh tag
		// drawn until it differs, so a dangling access is always caught
		// until reallocation; model the reallocation draw instead — the
		// dangerous case is a reuse that redraws the old tag.
		left := uint64(0)
		hasLeft := false
		if victim > 0 {
			left, hasLeft = tags[victim-1], true
		}
		reuse := tagger.NextTag(rng, left, hasLeft, objects+trial)
		if reuse != tags[victim] {
			uafHit++
		}
	}
	res.AdjacentDetected = float64(adjHit) / float64(trials)
	res.NonAdjacentDetected = float64(nonHit) / float64(trials)
	res.UseAfterFreeCaught = float64(uafHit) / float64(trials)
	return res, nil
}
