package baselines

import (
	"math"
	"testing"

	"repro/internal/gpusim"
)

func TestTable1SchemeCount(t *testing.T) {
	schemes := Table1Schemes()
	if len(schemes) != 8 {
		t.Fatalf("schemes = %d, want the 8 Table 1 columns", len(schemes))
	}
}

func TestTable1Anchors(t *testing.T) {
	byName := map[string]Scheme{}
	for _, s := range Table1Schemes() {
		byName[s.Name] = s
	}

	adi := byName["ECC Stealing (SPARC ADI)"]
	if adi.ECCRedundancy != 12 || !adi.ErrorCorrection {
		t.Errorf("ADI: %+v", adi)
	}
	if math.Abs(adi.AddedSDCRisk-15.76) > 0.1 {
		t.Errorf("ADI added SDC = %.2f, want ≈ 15.76", adi.AddedSDCRisk)
	}
	if adi.Glibc.NumTags != 14 || adi.Scudo.NumTags != 7 {
		t.Errorf("ADI tags: glibc %d scudo %d", adi.Glibc.NumTags, adi.Scudo.NumTags)
	}

	mte := byName["Tag Carve-Out (ARM MTE)"]
	if mte.TagGranuleBytes != 16 || mte.TagBits != 4 {
		t.Errorf("MTE geometry: %+v", mte)
	}
	if math.Abs(mte.TagStoreOverhead-0.03125) > 1e-9 {
		t.Errorf("MTE storage = %v, want 3.125%%", mte.TagStoreOverhead)
	}
	if mte.AddedSDCRisk != 1 || !mte.ErrorCorrection {
		t.Error("carve-outs must not degrade reliability")
	}

	iso10s := byName["ECC Stealing Iso-Security-10"]
	if iso10s.ECCRedundancy != 1 || iso10s.ErrorCorrection {
		t.Errorf("iso-10 steal must leave 1 parity bit, no correction: %+v", iso10s)
	}
	if math.Abs(iso10s.AddedSDCRisk-1.917) > 0.01 {
		t.Errorf("iso-10 added SDC = %.3f, want ≈ 1.917", iso10s.AddedSDCRisk)
	}

	iso16s := byName["ECC Stealing Iso-Security-16"]
	if math.Abs(iso16s.AddedSDCRisk-120) > 0.5 {
		t.Errorf("iso-16 added SDC = %.1f, want ≈ 120", iso16s.AddedSDCRisk)
	}
	if iso16s.Glibc.NumTags != 32766 {
		t.Errorf("iso-16 steal tags = %d", iso16s.Glibc.NumTags)
	}

	imt10 := byName["Implicit Memory Tagging (IMT-10)"]
	if imt10.TagBits != 9 || imt10.ECCRedundancy != 10 || imt10.AddedSDCRisk != 1 || !imt10.ErrorCorrection {
		t.Errorf("IMT-10: %+v", imt10)
	}
	if imt10.Glibc.NumTags != 510 || imt10.Scudo.NumTags != 255 {
		t.Errorf("IMT-10 tags: %d/%d", imt10.Glibc.NumTags, imt10.Scudo.NumTags)
	}
	if imt10.TagStoreOverhead != 0 || imt10.HasPerfOverhead() {
		t.Error("IMT must be free in storage and traffic")
	}

	imt16 := byName["Implicit Memory Tagging (IMT-16)"]
	if imt16.TagBits != 15 || imt16.Glibc.NumTags != 32766 || imt16.Scudo.NumTags != 16383 {
		t.Errorf("IMT-16: %+v", imt16)
	}

	iso16c := byName["Tag Carve-Out Iso-Security-16"]
	if math.Abs(iso16c.TagStoreOverhead-0.0625) > 1e-9 {
		t.Errorf("iso-16 carve storage = %v, want 6.25%%", iso16c.TagStoreOverhead)
	}
	if iso16c.Carve != gpusim.CarveOutHigh {
		t.Error("iso-16 carve must use the high-tag geometry")
	}
}

func TestMechanismStrings(t *testing.T) {
	if MechECCSteal.String() == "" || MechCarveOut.String() == "" || MechIMT.String() == "" {
		t.Error("empty mechanism strings")
	}
}

func TestOnlyCarveOutHasPerfOverhead(t *testing.T) {
	for _, s := range Table1Schemes() {
		if got, want := s.HasPerfOverhead(), s.Mechanism == MechCarveOut; got != want {
			t.Errorf("%s: HasPerfOverhead = %v", s.Name, got)
		}
	}
}
