package baselines

import (
	"errors"
	"testing"

	"repro/internal/imt"
)

func tripHeap(t *testing.T) (*TripwireHeap, *imt.Memory) {
	t.Helper()
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewTripwireHeap(mem, 0x10000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

func TestTripwireCatchesAdjacentOverflow(t *testing.T) {
	h, mem := tripHeap(t)
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds access works through an untagged pointer.
	if err := mem.Write(p, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// One granule past the end lands in the poisoned red zone.
	over := mem.Config().WithOffset(p, 64)
	_, rerr := mem.Read(over, 1)
	var f *imt.Fault
	if !errors.As(rerr, &f) {
		t.Fatal("adjacent overflow not tripped")
	}
	// One granule before the start likewise.
	under := mem.Config().WithOffset(p, -32)
	if _, err := mem.Read(under, 1); err == nil {
		t.Fatal("adjacent underflow not tripped")
	}
}

func TestTripwireMissesNonAdjacentOverflow(t *testing.T) {
	// The structural weakness vs memory tagging: a displaced access that
	// lands inside ANOTHER live allocation is indistinguishable from a
	// legitimate access.
	h, mem := tripHeap(t)
	victim, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	secret, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Write(secret, []byte("classified")); err != nil {
		t.Fatal(err)
	}
	cfg := mem.Config()
	displacement := int64(cfg.Addr(secret) - cfg.Addr(victim))
	leak := cfg.WithOffset(victim, displacement)
	got, err := mem.Read(leak, 10)
	if err != nil {
		t.Fatalf("trip-wires unexpectedly caught a non-adjacent access: %v", err)
	}
	if string(got) != "classified" {
		t.Fatal("read wrong data")
	}
	// Contrast: an IMT tagging allocator catches this (covered by
	// tagalloc tests and the overflowdetect example).
}

func TestTripwireNoTemporalProtection(t *testing.T) {
	h, mem := tripHeap(t)
	p, err := h.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Write(p, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Use-after-free reads still succeed — no temporal safety.
	if _, err := mem.Read(p, 5); err != nil {
		t.Fatalf("trip-wires should not catch UAF (they don't retag): %v", err)
	}
	if err := h.Free(p); err == nil {
		t.Fatal("double free should be reported by the allocator metadata")
	}
	if h.Allocations() != 0 {
		t.Fatal("allocation accounting wrong")
	}
}

func TestTripwireValidation(t *testing.T) {
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTripwireHeap(mem, 0x11, 1<<10); err == nil {
		t.Error("misaligned heap must fail")
	}
	h, _ := NewTripwireHeap(mem, 0x20, 256)
	if _, err := h.Malloc(0); err == nil {
		t.Error("zero malloc must fail")
	}
	if _, err := h.Malloc(1 << 20); err == nil {
		t.Error("oversized malloc must fail")
	}
}
