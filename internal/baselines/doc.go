// Package baselines describes the prior hardware memory-tagging
// approaches the paper compares against (§4.1, Table 1) and assembles
// their cost/benefit profiles from the other evaluation packages:
//
//   - ECC stealing (SPARC-ADI-like): lock tags stored in repurposed ECC
//     check bits — free in performance and storage, paid in reliability
//     (internal/reliability quantifies the SDC amplification).
//   - Tag carve-out (ARM-MTE/LAK-like): lock tags in a dedicated memory
//     region, cached in the L2 — free in reliability, paid in storage and
//     memory traffic (internal/gpusim measures the slowdowns).
//   - Implicit Memory Tagging: tags embedded in AFT-ECC check bits — no
//     storage, traffic, or reliability cost.
//
// The GPUShield-like tagged base-and-bounds comparison of §6 is modeled
// by gpusim's ModeBoundsTable.
package baselines
