package baselines

import (
	"repro/internal/gpusim"
	"repro/internal/reliability"
	"repro/internal/security"
)

// Mechanism classifies how a scheme stores lock tags.
type Mechanism int

const (
	// MechECCSteal repurposes ECC check bits as tag storage.
	MechECCSteal Mechanism = iota
	// MechCarveOut stores tags in a dedicated memory carve-out.
	MechCarveOut
	// MechIMT embeds tags implicitly in AFT-ECC check bits.
	MechIMT
)

func (m Mechanism) String() string {
	switch m {
	case MechECCSteal:
		return "ECC stealing"
	case MechCarveOut:
		return "tag carve-out"
	default:
		return "implicit (AFT-ECC)"
	}
}

// Scheme is one column of Table 1.
type Scheme struct {
	Name      string
	Mechanism Mechanism

	TagGranuleBytes int
	TagBits         int

	// TagStoreOverhead is dedicated tag storage as a fraction of memory.
	TagStoreOverhead float64
	// ECCRedundancy is the check bits left for error coding.
	ECCRedundancy int
	// ErrorCorrection reports whether single-bit correction survives.
	ErrorCorrection bool
	// AddedSDCRisk is the random-corruption SDC amplification relative to
	// the full-redundancy SEC-DED baseline (1 = no added risk).
	AddedSDCRisk float64

	// Security under the two §5.1 allocators.
	Glibc security.Guarantees
	Scudo security.Guarantees

	// GPUSim knobs for the performance columns: the tag mode and, for
	// carve-outs, the geometry.
	Mode  gpusim.TagMode
	Carve gpusim.CarveOut
}

// HasPerfOverhead reports whether the scheme generates extra memory
// traffic (only carve-outs do).
func (s Scheme) HasPerfOverhead() bool { return s.Mechanism == MechCarveOut }

// table1K is the codeword data size all Table 1 schemes share (32B GPU
// sectors) and table1FullR the DRAM-provided redundancy.
const (
	table1K     = 256
	table1FullR = 16
)

// Table1Schemes returns the eight Table 1 columns in paper order. The
// numbers derive from the same closed forms the evaluation packages test
// against injection and simulation.
func Table1Schemes() []Scheme {
	steal := func(name string, ts int, fullR int) Scheme {
		remaining := fullR - ts
		return Scheme{
			Name:            name,
			Mechanism:       MechECCSteal,
			TagGranuleBytes: 32,
			TagBits:         ts,
			ECCRedundancy:   remaining,
			ErrorCorrection: remaining >= 9, // SEC needs ≥9 check bits for 256 data bits
			AddedSDCRisk:    reliability.StealingSDCAmplification(table1K, fullR, ts),
			Glibc:           security.Glibc(ts),
			Scudo:           security.Scudo(ts),
			Mode:            gpusim.ModeECCSteal,
		}
	}
	carve := func(name string, ts, tg, r int, geom gpusim.CarveOut) Scheme {
		return Scheme{
			Name:             name,
			Mechanism:        MechCarveOut,
			TagGranuleBytes:  tg,
			TagBits:          ts,
			TagStoreOverhead: geom.StorageOverhead(),
			ECCRedundancy:    r,
			ErrorCorrection:  true,
			AddedSDCRisk:     1,
			Glibc:            security.Glibc(ts),
			Scudo:            security.Scudo(ts),
			Mode:             gpusim.ModeCarveOut,
			Carve:            geom,
		}
	}
	imt := func(name string, r, ts int) Scheme {
		return Scheme{
			Name:            name,
			Mechanism:       MechIMT,
			TagGranuleBytes: 32,
			TagBits:         ts,
			ECCRedundancy:   r,
			ErrorCorrection: true,
			AddedSDCRisk:    1,
			Glibc:           security.Glibc(ts),
			Scudo:           security.Scudo(ts),
			Mode:            gpusim.ModeIMT,
		}
	}
	return []Scheme{
		// SPARC ADI-like: 4 tag bits stolen from the 16b ECC budget
		// (the paper adjusts ADI's 64B granularity to the 32B codeword).
		steal("ECC Stealing (SPARC ADI)", 4, table1FullR),
		// ARM MTE-like: 4b tags per 16B granule in a carve-out.
		carve("Tag Carve-Out (ARM MTE)", 4, 16, table1FullR, gpusim.CarveOutARMMTE),
		// Iso-security-10 pair: 9-bit-class tags matching IMT-10.
		steal("ECC Stealing Iso-Security-10", 9, 10),
		carve("Tag Carve-Out Iso-Security-10", 8, 32, 10, gpusim.CarveOutLow),
		imt("Implicit Memory Tagging (IMT-10)", 10, 9),
		// Iso-security-16 pair: 15/16-bit tags matching IMT-16.
		steal("ECC Stealing Iso-Security-16", 15, table1FullR),
		carve("Tag Carve-Out Iso-Security-16", 16, 32, table1FullR, gpusim.CarveOutHigh),
		imt("Implicit Memory Tagging (IMT-16)", 16, 15),
	}
}
