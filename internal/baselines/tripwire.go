package baselines

import (
	"fmt"

	"repro/internal/imt"
)

// TripwireHeap models SafeMem-style ECC-poisoning memory safety (§6
// related work): red zones around every allocation are deliberately
// poisoned so that touching them raises an ECC error. Like IMT it rides
// the existing ECC machinery with no extra storage — but it protects
// only the immediate neighborhood of each allocation: an
// attacker-displaced (non-adjacent) access that lands inside another
// live object hits validly-encoded memory and is never detected. That
// asymmetry is exactly why the paper positions memory tagging, not
// trip-wires, against Figure 1's growing non-adjacent share.
//
// Poisoning is modeled by retagging red-zone granules with a reserved
// poison tag that no data pointer ever carries, which makes any access
// through a normal (tag-0) pointer fault — the software-visible behavior
// of an ECC-poisoned line without modeling vendor-specific poison
// encodings.
type TripwireHeap struct {
	mem  *imt.Memory
	base uint64
	end  uint64
	brk  uint64

	poisonTag uint64
	allocs    map[uint64]twAlloc
}

type twAlloc struct {
	base, size uint64
}

// NewTripwireHeap manages [heapBase, heapBase+heapSize) on an IMT
// memory, reserving the all-ones tag value as the poison pattern.
func NewTripwireHeap(mem *imt.Memory, heapBase, heapSize uint64) (*TripwireHeap, error) {
	g := uint64(mem.Config().GranuleBytes)
	if heapBase%g != 0 || heapSize%g != 0 {
		return nil, fmt.Errorf("baselines: tripwire heap not %d-byte aligned", g)
	}
	return &TripwireHeap{
		mem:       mem,
		base:      heapBase,
		end:       heapBase + heapSize,
		brk:       heapBase,
		poisonTag: uint64(1)<<uint(mem.Config().TagBits) - 1,
		allocs:    make(map[uint64]twAlloc),
	}, nil
}

// Malloc allocates size bytes with poisoned red-zone granules on both
// sides. Returned pointers carry tag 0 — trip-wires do not tag data.
func (h *TripwireHeap) Malloc(size uint64) (imt.Pointer, error) {
	if size == 0 {
		return 0, fmt.Errorf("baselines: zero-size allocation")
	}
	g := uint64(h.mem.Config().GranuleBytes)
	footprint := (size + g - 1) / g * g
	total := footprint + 2*g // leading and trailing red zones
	if h.brk+total > h.end {
		return 0, fmt.Errorf("baselines: tripwire heap exhausted")
	}
	lead := h.brk
	base := lead + g
	trail := base + footprint
	h.brk += total

	for _, rz := range []uint64{lead, trail} {
		if err := h.mem.Retag(rz, h.poisonTag); err != nil {
			return 0, err
		}
	}
	// Data granules stay at tag 0: accessible through plain pointers.
	for off := uint64(0); off < footprint; off += g {
		if err := h.mem.Retag(base+off, 0); err != nil {
			return 0, err
		}
	}
	h.allocs[base] = twAlloc{base: base, size: size}
	return h.mem.Config().MakePointer(base, 0), nil
}

// Free unpoisons nothing (SafeMem leaves trip-wires armed) but forgets
// the allocation; the data granules remain readable — trip-wires give no
// temporal protection, another gap tagging closes.
func (h *TripwireHeap) Free(p imt.Pointer) error {
	base := h.mem.Config().Addr(p)
	if _, ok := h.allocs[base]; !ok {
		return fmt.Errorf("baselines: free of unknown allocation %#x", base)
	}
	delete(h.allocs, base)
	return nil
}

// Allocations returns the number of live allocations.
func (h *TripwireHeap) Allocations() int { return len(h.allocs) }
