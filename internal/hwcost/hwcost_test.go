package hwcost

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

func codes(t *testing.T, k, r, ts int) (*ecc.Code, *core.Code) {
	t.Helper()
	base, err := ecc.NewHsiao(k, r)
	if err != nil {
		t.Fatal(err)
	}
	aft, err := core.NewCode(k, r, ts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return base, aft
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(256, Default16nm())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		// Table 3's structural claims: modest area overhead, zero delay.
		if row.AreaOverheadPct <= 0 {
			t.Errorf("%s: AFT should cost some extra area, got %+.2f%%", row.Unit, row.AreaOverheadPct)
		}
		if row.AreaOverheadPct > 12 {
			t.Errorf("%s: area overhead %.2f%% exceeds the ~10%% regime of Table 3", row.Unit, row.AreaOverheadPct)
		}
		if row.DelayOverheadNs != 0 {
			t.Errorf("%s: AFT must add no delay, got %+.3f ns", row.Unit, row.DelayOverheadNs)
		}
		added := row.Tagged.AreaAND2 - row.Baseline.AreaAND2
		limit := 200.0
		if strings.Contains(row.Unit, "decoder") {
			limit = 400
		}
		if added > limit {
			t.Errorf("%s: added area %.0f exceeds the paper's <%g AND2 bound", row.Unit, added, limit)
		}
	}
}

func TestAbsoluteNumbersInPaperRegime(t *testing.T) {
	// The paper's absolute Table 3 values (AND2-equivalents): encoders
	// 1483–2559, decoders 4109–4967; delays 0.10–0.23 ns. Our model should
	// land in the same order of magnitude.
	cal := Default16nm()
	base16, aft16 := codes(t, 256, 16, 15)
	enc := EncoderECC(base16, cal)
	if enc.AreaAND2 < 800 || enc.AreaAND2 > 3000 {
		t.Errorf("16b encoder area %.0f out of regime", enc.AreaAND2)
	}
	if enc.DelayNs < 0.05 || enc.DelayNs > 0.2 {
		t.Errorf("16b encoder delay %.2f out of regime", enc.DelayNs)
	}
	dec := DecoderAFT(aft16, cal)
	if dec.AreaAND2 < 2500 || dec.AreaAND2 > 8000 {
		t.Errorf("16b AFT decoder area %.0f out of regime", dec.AreaAND2)
	}
	if dec.DelayNs < 0.15 || dec.DelayNs > 0.35 {
		t.Errorf("16b AFT decoder delay %.2f out of regime", dec.DelayNs)
	}
	// The 10b code's rows are heavier (weight-5 columns needed), so its
	// encoder must cost more than the 16b one — the counterintuitive
	// ordering visible in Table 3.
	base10, _ := codes(t, 256, 10, 9)
	enc10 := EncoderECC(base10, cal)
	if enc10.AreaAND2 <= enc.AreaAND2 {
		t.Errorf("10b encoder (%.0f) should out-cost 16b (%.0f)", enc10.AreaAND2, enc.AreaAND2)
	}
}

func TestStaircaseAddsNoDepth(t *testing.T) {
	cal := Default16nm()
	base, aft := codes(t, 256, 16, 15)
	if EncoderAFT(aft, cal).Gates.Depth != EncoderECC(base, cal).Gates.Depth {
		t.Error("tag columns deepened the encoder XOR tree")
	}
	if DecoderAFT(aft, cal).Gates.Depth != DecoderECC(base, cal).Gates.Depth {
		t.Error("tag columns deepened the decoder critical path")
	}
}

func TestEncoderGateAccounting(t *testing.T) {
	// A matrix with row fanins {3, 1, 0} needs (3-1)+(1-1)+0 = 2 XOR2 and
	// depth ceil(log2 3) = 2.
	g := encoderGates([]int{3, 1, 0})
	if g.XOR2 != 2 {
		t.Errorf("XOR2 = %d, want 2", g.XOR2)
	}
	if g.Depth != 2 {
		t.Errorf("depth = %d, want 2", g.Depth)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ fanin, want int }{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {48, 6}, {64, 6}, {65, 7}, {106, 7}}
	for _, c := range cases {
		if got := treeDepth(c.fanin); got != c.want {
			t.Errorf("treeDepth(%d) = %d, want %d", c.fanin, got, c.want)
		}
	}
}

func TestGatesAdd(t *testing.T) {
	a := Gates{XOR2: 1, AND2: 2, OR2: 3, INV: 4, Depth: 5}
	b := Gates{XOR2: 10, Depth: 2}
	s := a.Add(b)
	if s.XOR2 != 11 || s.AND2 != 2 || s.Depth != 5 {
		t.Errorf("Add = %+v", s)
	}
}

func TestEstimateString(t *testing.T) {
	cal := Default16nm()
	base, _ := codes(t, 64, 8, 5)
	if EncoderECC(base, cal).String() == "" {
		t.Error("empty estimate string")
	}
}

func TestCalibrationScalesArea(t *testing.T) {
	base, _ := codes(t, 64, 8, 5)
	cheap := Default16nm()
	costly := cheap
	costly.XOR2Area *= 2
	a := EncoderECC(base, cheap).AreaAND2
	b := EncoderECC(base, costly).AreaAND2
	if b <= a {
		t.Error("doubling XOR2 area should increase encoder cost")
	}
}
