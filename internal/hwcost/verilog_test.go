package hwcost

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gf2"
)

func aft(t *testing.T, k, r, ts int) *core.Code {
	t.Helper()
	c, err := core.NewCode(k, r, ts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncoderVerilogStructure(t *testing.T) {
	c := aft(t, 256, 16, 15)
	v := EncoderVerilog(c)
	if !strings.Contains(v, "module aft_ecc_encoder_k256_r16_ts15") {
		t.Error("module name wrong")
	}
	if !strings.Contains(v, "input  wire [255:0] data") ||
		!strings.Contains(v, "input  wire [14:0] lock_tag") ||
		!strings.Contains(v, "output wire [15:0] check") {
		t.Error("port list wrong")
	}
	// One reduction-XOR assign per check bit.
	if n := strings.Count(v, "assign check["); n != 16 {
		t.Errorf("check assigns = %d, want 16", n)
	}
	if !strings.HasSuffix(strings.TrimSpace(v), "endmodule") {
		t.Error("missing endmodule")
	}
	// The staircase means row 0's tag mask is exactly tag bit 0 (column 0
	// touches rows 0 and 1): check[0] line must AND the tag with 15'h0001.
	line0 := v[strings.Index(v, "assign check[0]"):]
	line0 = line0[:strings.Index(line0, "\n")]
	if !strings.Contains(line0, "15'h0001") {
		t.Errorf("row 0 tag mask wrong: %s", line0)
	}
}

func TestDecoderVerilogStructure(t *testing.T) {
	c := aft(t, 256, 16, 15)
	v := DecoderVerilog(c)
	for _, want := range []string{
		"module aft_ecc_decoder_k256_r16_ts15",
		"output wire dce", "output wire due", "output wire tmm",
		"wire in_tag_space = ~(^syndrome);",
		"assign corrected = data ^ match_data;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("decoder missing %q", want)
		}
	}
	if n := strings.Count(v, "assign match_data["); n != 256 {
		t.Errorf("data match assigns = %d, want 256", n)
	}
	if n := strings.Count(v, "assign match_check["); n != 16 {
		t.Errorf("check match assigns = %d, want 16", n)
	}
	if n := strings.Count(v, "assign syndrome["); n != 16 {
		t.Errorf("syndrome assigns = %d, want 16", n)
	}
}

func TestDecoderVerilogShortenedTag(t *testing.T) {
	c := aft(t, 256, 16, 9)
	v := DecoderVerilog(c)
	// Shortened tag: membership adds the upper-rows-zero term.
	if !strings.Contains(v, "~(^syndrome[9:0]) & ~(|syndrome[15:10])") {
		t.Errorf("shortened-tag membership logic missing:\n%s", v[:600])
	}
}

func TestMaskLiteral(t *testing.T) {
	if got := maskLiteral(15, []uint64{0x0001}); got != "15'h0001" {
		t.Errorf("maskLiteral = %q", got)
	}
	if got := maskLiteral(16, []uint64{0x8001}); got != "16'h8001" {
		t.Errorf("maskLiteral = %q", got)
	}
	// 68-bit mask spanning two words.
	if got := maskLiteral(68, []uint64{1, 0xF}); got != "68'hf0000000000000001" {
		t.Errorf("maskLiteral = %q", got)
	}
	m := gf2.FromColumns(4, []uint64{0b1010})
	if got := verilogMaskFromMatrixCol(m, 0); got != "4'ha" {
		t.Errorf("column mask = %q", got)
	}
}

// TestVerilogSemanticsAgainstSoftwareDecoder interprets the generated
// assigns on random inputs and cross-checks every flag against the Go
// decoder — a software "simulation" of the RTL.
func TestVerilogSemanticsAgainstSoftwareDecoder(t *testing.T) {
	c := aft(t, 64, 8, 5)
	dataMasks, tagMasks := rowMasks(c)
	evalSyndrome := func(data *gf2.BitVec, check uint64, key uint64) uint64 {
		var s uint64
		words := data.Words()
		for row := 0; row < c.R(); row++ {
			var bit uint64
			for w, m := range dataMasks[row] {
				bit ^= parity64(words[w] & m)
			}
			bit ^= check >> uint(row) & 1
			for _, m := range tagMasks[row] {
				bit ^= parity64(key & m)
			}
			s |= (bit & 1) << uint(row)
		}
		return s
	}
	rng := newTestRand(7)
	for trial := 0; trial < 400; trial++ {
		data := gf2.NewBitVec(64)
		for i := 0; i < 64; i++ {
			data.Set(i, rng.Intn(2))
		}
		lock := uint64(rng.Intn(32))
		key := uint64(rng.Intn(32))
		check := c.Encode(data, lock)
		rx := data.Clone()
		rxCheck := check
		for e := rng.Intn(3); e > 0; e-- {
			b := rng.Intn(c.PhysicalBits())
			if b < c.K() {
				rx.Flip(b)
			} else {
				rxCheck ^= 1 << uint(b-c.K())
			}
		}
		// "RTL" path.
		s := evalSyndrome(rx, rxCheck, key)
		// Go decoder path.
		res := c.DecodeSyndrome(s, key)
		if s != c.Decode(rx.Clone(), rxCheck, key).Syndrome && s != 0 {
			t.Fatalf("trial %d: RTL syndrome %#x diverges from decoder", trial, s)
		}
		// Flag semantics: recompute the RTL flags and compare classes.
		anyMatch := false
		for i := 0; i < c.PhysicalBits(); i++ {
			col := c.Column(c.TS() + i)
			if s == col {
				anyMatch = true
			}
		}
		nonzero := s != 0
		inTag := false
		if nonzero && !anyMatch {
			low := s & (1<<uint(c.TS()+1) - 1)
			high := s >> uint(c.TS()+1)
			inTag = parity64(low) == 0 && high == 0
		}
		switch {
		case !nonzero:
			if res.Status != core.StatusOK {
				t.Fatalf("trial %d: flag OK vs %v", trial, res.Status)
			}
		case anyMatch:
			if res.Status != core.StatusCorrected {
				t.Fatalf("trial %d: flag DCE vs %v", trial, res.Status)
			}
		case inTag:
			if res.Status != core.StatusTMM {
				t.Fatalf("trial %d: flag TMM vs %v (s=%#x)", trial, res.Status, s)
			}
		default:
			if res.Status != core.StatusDUE {
				t.Fatalf("trial %d: flag DUE vs %v (s=%#x)", trial, res.Status, s)
			}
		}
	}
}

func parity64(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}
