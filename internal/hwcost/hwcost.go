package hwcost

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Calibration converts gate counts to area/delay. Defaults approximate a
// 16nm standard-cell library in the units the paper reports.
type Calibration struct {
	// XOR2Area etc. are AND2-equivalent areas per gate.
	XOR2Area, AND2Area, OR2Area, INVArea float64
	// LevelDelayNs is the delay of one 2-input gate level.
	LevelDelayNs float64
	// MatchSharing models synthesis-time logic sharing across the
	// column-match AND array (common subterms between columns): the
	// effective per-column cost is scaled by this factor.
	MatchSharing float64
}

// Default16nm is the calibration used throughout the repository.
func Default16nm() Calibration {
	return Calibration{
		XOR2Area:     2.0,
		AND2Area:     1.0,
		OR2Area:      1.0,
		INVArea:      0.5,
		LevelDelayNs: 0.016,
		MatchSharing: 0.75,
	}
}

// Gates is a raw gate inventory.
type Gates struct {
	XOR2, AND2, OR2, INV int
	// Depth is the critical path length in 2-input gate levels.
	Depth int
}

// Add accumulates another inventory, taking the max depth.
func (g Gates) Add(o Gates) Gates {
	d := g.Depth
	if o.Depth > d {
		d = o.Depth
	}
	return Gates{
		XOR2: g.XOR2 + o.XOR2, AND2: g.AND2 + o.AND2,
		OR2: g.OR2 + o.OR2, INV: g.INV + o.INV, Depth: d,
	}
}

// Estimate is a calibrated cost.
type Estimate struct {
	Unit     string
	Gates    Gates
	AreaAND2 float64
	DelayNs  float64
}

func (e Estimate) String() string {
	return fmt.Sprintf("%s: area %.0f AND2-eq, delay %.2f ns (xor2=%d and2=%d or2=%d inv=%d depth=%d)",
		e.Unit, e.AreaAND2, e.DelayNs, e.Gates.XOR2, e.Gates.AND2, e.Gates.OR2, e.Gates.INV, e.Gates.Depth)
}

func (c Calibration) estimate(unit string, g Gates) Estimate {
	area := float64(g.XOR2)*c.XOR2Area + float64(g.AND2)*c.AND2Area +
		float64(g.OR2)*c.OR2Area + float64(g.INV)*c.INVArea
	return Estimate{
		Unit:     unit,
		Gates:    g,
		AreaAND2: math.Round(area),
		DelayNs:  math.Round(float64(g.Depth)*c.LevelDelayNs*100) / 100,
	}
}

func treeDepth(fanin int) int {
	if fanin <= 1 {
		return 0
	}
	return bits.Len(uint(fanin - 1))
}

// encoderGates counts the XOR trees generating R check bits from the
// given H-row fanins (number of ones per row over the encoded columns).
func encoderGates(rowFanin []int) Gates {
	var g Gates
	for _, f := range rowFanin {
		if f > 1 {
			g.XOR2 += f - 1
		}
		if d := treeDepth(f); d > g.Depth {
			g.Depth = d
		}
	}
	return g
}

// decoderExtraGates counts the correction-side logic beyond the syndrome
// trees: the column-match AND array (with input inverters for the zero
// bits), the per-data-bit correction XORs, the syndrome-nonzero OR tree,
// and the match-combining OR tree plus flag formation. outputFormation
// adds the fixed mux/flag levels on the critical path.
const outputFormationLevels = 3

func decoderMatchGates(cols []uint64, r, dataBits int, sharing float64) Gates {
	var g Gates
	perColumnAND := r - 1
	totalAND := float64(len(cols)*perColumnAND) * sharing
	g.AND2 = int(totalAND)
	for _, c := range cols {
		g.INV += r - bits.OnesCount64(c)
	}
	g.XOR2 += dataBits // correction XOR per data bit
	g.OR2 += r - 1     // syndrome-nonzero detect
	if len(cols) > 1 {
		g.OR2 += len(cols) - 1 // any-match OR tree
	}
	g.AND2 += 2 // DUE = nonzero ∧ ¬match, plus flag gating
	g.Depth = treeDepth(r) + 1 + outputFormationLevels
	return g
}

// EncoderECC estimates a plain SEC-DED/SEC encoder for the code.
func EncoderECC(c *ecc.Code, cal Calibration) Estimate {
	fanins := rowFanins(c.DataMatrix())
	return cal.estimate(fmt.Sprintf("%s encoder", c.Name()), encoderGates(fanins))
}

// DecoderECC estimates a plain decoder: syndrome regeneration (data trees
// plus the received check bit per row) and the match/correct array.
func DecoderECC(c *ecc.Code, cal Calibration) Estimate {
	fanins := rowFanins(c.DataMatrix())
	for i := range fanins {
		fanins[i]++ // received check bit folded into each syndrome row
	}
	g := encoderGates(fanins)
	cols := allColumns(c)
	m := decoderMatchGates(cols, c.R(), c.K(), cal.MatchSharing)
	m.Depth += g.Depth
	return cal.estimate(fmt.Sprintf("%s decoder", c.Name()), Gates{
		XOR2: g.XOR2 + m.XOR2, AND2: m.AND2, OR2: m.OR2, INV: m.INV, Depth: m.Depth,
	})
}

// EncoderAFT estimates the AFT-ECC encoder: the data trees widened by the
// tag-column ones (≤ 2 per row for the staircase, so depth is unchanged
// whenever any row already has ≥ 3 inputs).
func EncoderAFT(c *core.Code, cal Calibration) Estimate {
	fanins := rowFanins(c.DataMatrix())
	addRowFanins(fanins, c.TagMatrix())
	return cal.estimate(fmt.Sprintf("%v encoder", c), encoderGates(fanins))
}

// DecoderAFT estimates the AFT-ECC decoder: the widened syndrome trees
// (data + received check bit + key-tag columns), the same match array,
// and the TMM detector. For a maximum-length staircase tag the column
// space of T is exactly the even-weight subspace, so TMM detection is a
// single even-parity tree over the syndrome plus flag gating — this is
// why the paper's decoder adds no delay.
func DecoderAFT(c *core.Code, cal Calibration) Estimate {
	fanins := rowFanins(c.DataMatrix())
	addRowFanins(fanins, c.TagMatrix())
	for i := range fanins {
		fanins[i]++ // received check bit
	}
	g := encoderGates(fanins)
	cols := make([]uint64, c.PhysicalBits())
	for i := range cols {
		cols[i] = c.Column(c.TS() + i)
	}
	m := decoderMatchGates(cols, c.R(), c.K(), cal.MatchSharing)
	m.Depth += g.Depth
	// TMM detector: syndrome parity tree + TMM = even ∧ nonzero ∧ ¬match.
	tmm := Gates{XOR2: c.R() - 1, AND2: 2}
	return cal.estimate(fmt.Sprintf("%v decoder", c), Gates{
		XOR2:  g.XOR2 + m.XOR2 + tmm.XOR2,
		AND2:  m.AND2 + tmm.AND2,
		OR2:   m.OR2,
		INV:   m.INV,
		Depth: m.Depth,
	})
}

// EncoderTagged estimates an encoder for arbitrary data and tag
// submatrices — used by the ablation benchmarks to compare the Equation 6
// staircase against heavier alias-free tag constructions.
func EncoderTagged(name string, data, tag *gf2.Matrix, cal Calibration) Estimate {
	fanins := rowFanins(data)
	addRowFanins(fanins, tag)
	return cal.estimate(name, encoderGates(fanins))
}

func rowFanins(m *gf2.Matrix) []int {
	return m.RowWeights()
}

func addRowFanins(fanins []int, m *gf2.Matrix) {
	for i, w := range m.RowWeights() {
		fanins[i] += w
	}
}

func allColumns(c *ecc.Code) []uint64 {
	cols := make([]uint64, c.N())
	for i := range cols {
		cols[i] = c.Column(i)
	}
	return cols
}

// Table3Row compares the SEC-DED baseline against AFT-ECC for one unit.
type Table3Row struct {
	Unit             string
	Baseline, Tagged Estimate
	AreaOverheadPct  float64
	DelayOverheadNs  float64
}

// Table3 produces the four comparisons of the paper's Table 3 for a data
// size and the two GPU redundancies (encoders and decoders at R=10 and
// R=16, SEC-DED vs AFT-ECC with the maximum tag).
func Table3(k int, cal Calibration) ([]Table3Row, error) {
	var rows []Table3Row
	for _, r := range []int{10, 16} {
		base, err := ecc.NewHsiao(k, r)
		if err != nil {
			return nil, err
		}
		ts, err := core.MaxTagSize(k, r)
		if err != nil {
			return nil, err
		}
		aft, err := core.NewCode(k, r, ts, core.Options{})
		if err != nil {
			return nil, err
		}
		encB, encA := EncoderECC(base, cal), EncoderAFT(aft, cal)
		decB, decA := DecoderECC(base, cal), DecoderAFT(aft, cal)
		rows = append(rows,
			newRow(fmt.Sprintf("encoder (%db)", r), encB, encA),
			newRow(fmt.Sprintf("decoder (%db)", r), decB, decA),
		)
	}
	return rows, nil
}

func newRow(unit string, base, tagged Estimate) Table3Row {
	return Table3Row{
		Unit:            unit,
		Baseline:        base,
		Tagged:          tagged,
		AreaOverheadPct: 100 * (tagged.AreaAND2 - base.AreaAND2) / base.AreaAND2,
		DelayOverheadNs: tagged.DelayNs - base.DelayNs,
	}
}
