// Package hwcost estimates encoder/decoder hardware costs from parity-
// check matrices, reproducing the paper's Table 3 methodology in model
// form: the paper synthesized Verilog with a 16nm standard-cell library;
// we count the gates the matrices imply — XOR trees for syndrome
// generation, a column-match array for correction, and the extra
// even-parity TMM detector for AFT-ECC — and convert them to
// AND2-equivalent area and gate-level delay with a 16nm-class calibration.
//
// The reproduction target is Table 3's structural claims: AFT-ECC adds a
// few percent of area (<200 AND2-equivalents per encoder, <400 per
// decoder in the paper) and zero delay, because the weight-2 staircase tag
// columns add at most two ones per row and therefore never deepen the XOR
// trees.
package hwcost
