package imt

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gf2"
)

// FaultKind distinguishes the fatal error classes the hardware reports.
type FaultKind int

const (
	// FaultTMM is a tag mismatch: the decode syndrome fell in the tag
	// column space.
	FaultTMM FaultKind = iota
	// FaultDUE is a detected-uncorrectable data error.
	FaultDUE
)

func (k FaultKind) String() string {
	if k == FaultTMM {
		return "TMM"
	}
	return "DUE"
}

// Fault is the error record the hardware hands to the driver on a fatal
// event: faulting address, key tag, and raw ECC syndrome (§4.3).
type Fault struct {
	Kind     FaultKind
	Addr     uint64
	KeyTag   uint64
	Syndrome uint64
	// LockTagEstimate is the hardware-extracted stored-tag estimate for
	// TMMs (key ⊕ syndrome-table pattern); InvalidTag for DUEs.
	LockTagEstimate uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("imt: fatal %v at %#x (key tag %#x, syndrome %#x)", f.Kind, f.Addr, f.KeyTag, f.Syndrome)
}

// Memory is an AFT-ECC-protected sectored memory: one codeword per 32B
// sector, with the lock tag implicit in the check bits. It models the
// paper's fatal-TMM contract: by default any TMM or DUE is returned as a
// *Fault error; in debug mode (§4.3) faults are logged and reads return
// the (possibly wrong) raw data, mirroring the privileged non-fatal
// logging mode the paper envisions via nvidia-smi.
type Memory struct {
	cfg  Config
	code *core.Code

	mu      sync.Mutex
	sectors map[uint64]*sector
	// opMu serializes composite read-modify-write operations (partial
	// stores and atomics) that span two sector-level critical sections.
	opMu sync.Mutex

	debug    bool
	faultLog []Fault

	// Stats observable by tests and experiments (guarded by mu; read
	// them only when no accesses are in flight).
	Reads, Writes, Corrected uint64
}

type sector struct {
	data  []byte // GranuleBytes long
	check uint64
}

// NewMemory builds a tagged memory for the configuration. The backing
// store is sparse: only sectors ever written exist.
func NewMemory(cfg Config) (*Memory, error) {
	code, err := cfg.NewCode()
	if err != nil {
		return nil, err
	}
	return &Memory{cfg: cfg, code: code, sectors: make(map[uint64]*sector)}, nil
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// Code returns the underlying AFT-ECC code (shared, read-only).
func (m *Memory) Code() *core.Code { return m.code }

// SetDebugMode toggles §4.3's passive-logging mode. In debug mode faults
// do not abort accesses; they accumulate in FaultLog.
func (m *Memory) SetDebugMode(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.debug = on
}

// FaultLog returns the faults recorded in debug mode (oldest first).
func (m *Memory) FaultLog() []Fault {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Fault(nil), m.faultLog...)
}

// InvalidTag is the always-invalid lock-tag sentinel used when no tag can
// be extracted (one more than any representable tag value).
func (m *Memory) InvalidTag() uint64 { return m.code.TagMask() + 1 }

func (m *Memory) sectorIndex(addr uint64) (uint64, error) {
	g := uint64(m.cfg.GranuleBytes)
	if addr%g != 0 {
		return 0, fmt.Errorf("imt: address %#x not %d-byte aligned", addr, g)
	}
	return addr / g, nil
}

// WriteSector stores a full sector through pointer p, encoding the data
// with p's key tag as the new lock tag. A full-sector store needs no
// read-modify-write, so — as in real ECC memories — it re-encodes
// unconditionally; a mismatched store is caught on the victim's next read.
func (m *Memory) WriteSector(p Pointer, data []byte) error {
	if len(data) != m.cfg.GranuleBytes {
		return fmt.Errorf("imt: WriteSector needs %d bytes, got %d", m.cfg.GranuleBytes, len(data))
	}
	idx, err := m.sectorIndex(m.cfg.Addr(p))
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Writes++
	bv := gf2.BitVecFromBytes(m.cfg.DataBits, data)
	m.sectors[idx] = &sector{
		data:  append([]byte(nil), data...),
		check: m.code.Encode(bv, m.cfg.KeyTag(p)),
	}
	return nil
}

// ReadSector loads the full sector at p, running AFT-ECC decode with p's
// key tag. Single-bit errors are corrected transparently; TMMs and DUEs
// are fatal (or logged in debug mode). Reading an untouched sector returns
// zeroes: unwritten memory is defined to carry tag 0 with zero data, like
// a freshly-scrubbed ECC memory.
func (m *Memory) ReadSector(p Pointer) ([]byte, error) {
	addr := m.cfg.Addr(p)
	idx, err := m.sectorIndex(addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Reads++
	s, ok := m.sectors[idx]
	if !ok {
		zero := make([]byte, m.cfg.GranuleBytes)
		bv := gf2.BitVecFromBytes(m.cfg.DataBits, zero)
		s = &sector{data: zero, check: m.code.Encode(bv, 0)}
		m.sectors[idx] = s
	}
	bv := gf2.BitVecFromBytes(m.cfg.DataBits, s.data)
	key := m.cfg.KeyTag(p)
	res := m.code.Decode(bv, s.check, key)
	switch res.Status {
	case core.StatusOK:
		return append([]byte(nil), s.data...), nil
	case core.StatusCorrected:
		m.Corrected++
		// Scrub: persist the repaired codeword.
		corrected := bv.Bytes()[:m.cfg.GranuleBytes]
		s.data = append([]byte(nil), corrected...)
		if res.FlippedBit >= m.code.K() {
			s.check ^= 1 << uint(res.FlippedBit-m.code.K())
		}
		return append([]byte(nil), corrected...), nil
	}
	f := Fault{Addr: addr, KeyTag: key, Syndrome: res.Syndrome, LockTagEstimate: m.InvalidTag()}
	if res.Status == core.StatusTMM {
		f.Kind = FaultTMM
		f.LockTagEstimate = res.LockTagEstimate
	} else {
		f.Kind = FaultDUE
	}
	if m.debug {
		m.faultLog = append(m.faultLog, f)
		return append([]byte(nil), s.data...), nil
	}
	return nil, &f
}

// Read performs a sub-sector load of length n at p (which may be
// unaligned within the sector but must not cross sectors). The whole
// codeword is decoded — GPU ECC checks the full sector on any access.
func (m *Memory) Read(p Pointer, n int) ([]byte, error) {
	addr := m.cfg.Addr(p)
	g := uint64(m.cfg.GranuleBytes)
	off := addr % g
	if int(off)+n > m.cfg.GranuleBytes {
		return nil, fmt.Errorf("imt: read of %d bytes at %#x crosses a sector boundary", n, addr)
	}
	base := m.cfg.MakePointer(addr-off, m.cfg.KeyTag(p))
	full, err := m.ReadSector(base)
	if err != nil {
		return nil, err
	}
	return full[off : int(off)+n], nil
}

// Write performs a sub-sector store. Partial stores are read-modify-write
// in a sectored ECC memory, so — unlike full-sector stores — the tag check
// happens immediately: a mismatched partial store faults before merging.
func (m *Memory) Write(p Pointer, data []byte) error {
	addr := m.cfg.Addr(p)
	g := uint64(m.cfg.GranuleBytes)
	off := addr % g
	if int(off)+len(data) > m.cfg.GranuleBytes {
		return fmt.Errorf("imt: write of %d bytes at %#x crosses a sector boundary", len(data), addr)
	}
	base := m.cfg.MakePointer(addr-off, m.cfg.KeyTag(p))
	if int(off) == 0 && len(data) == m.cfg.GranuleBytes {
		return m.WriteSector(base, data)
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()
	full, err := m.ReadSector(base)
	if err != nil {
		return err
	}
	copy(full[off:], data)
	return m.WriteSector(base, full)
}

// Retag re-encodes the sector at addr with a new lock tag, preserving its
// data. This models the privileged tagging instructions the allocator
// runtime uses when objects are allocated and freed (§2.3); it is trusted
// and performs no tag check.
func (m *Memory) Retag(addr uint64, newTag uint64) error {
	idx, err := m.sectorIndex(addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sectors[idx]
	if !ok {
		s = &sector{data: make([]byte, m.cfg.GranuleBytes)}
		m.sectors[idx] = s
	}
	bv := gf2.BitVecFromBytes(m.cfg.DataBits, s.data)
	s.check = m.code.Encode(bv, newTag)
	return nil
}

// InjectError flips physical codeword bits of the sector at addr: bit
// positions [0, K) are data bits, [K, K+R) are check bits. The sector is
// materialized if it has never been written. Used by the fault-injection
// and example code.
func (m *Memory) InjectError(addr uint64, bitPositions ...int) error {
	idx, err := m.sectorIndex(addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sectors[idx]
	if !ok {
		zero := make([]byte, m.cfg.GranuleBytes)
		bv := gf2.BitVecFromBytes(m.cfg.DataBits, zero)
		s = &sector{data: zero, check: m.code.Encode(bv, 0)}
		m.sectors[idx] = s
	}
	for _, b := range bitPositions {
		switch {
		case b < 0 || b >= m.code.PhysicalBits():
			return fmt.Errorf("imt: bit position %d out of range [0,%d)", b, m.code.PhysicalBits())
		case b < m.code.K():
			s.data[b/8] ^= 1 << uint(b%8)
		default:
			s.check ^= 1 << uint(b-m.code.K())
		}
	}
	return nil
}
