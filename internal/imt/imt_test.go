package imt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newMem(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{IMT10, IMT16} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := IMT10
	bad.TagBits = 10 // exceeds Eq 5b bound for (256,10)
	if err := bad.Validate(); err == nil {
		t.Error("TagBits=R must be rejected")
	}
	bad = IMT16
	bad.VABits = 57 // only 7 spare bits: a 15-bit tag cannot fit
	if err := bad.Validate(); err == nil {
		t.Error("15-bit tag must not fit a 57-bit VA")
	}
	bad = IMT10
	bad.DataBits = 128
	if err := bad.Validate(); err == nil {
		t.Error("codeword/granule mismatch must be rejected")
	}
}

func TestPointerPacking(t *testing.T) {
	cfg := IMT16
	p := cfg.MakePointer(0x1234_5678_9ABC, 0x7FFF)
	if cfg.Addr(p) != 0x1234_5678_9ABC {
		t.Errorf("Addr = %#x", cfg.Addr(p))
	}
	if cfg.KeyTag(p) != 0x7FFF {
		t.Errorf("KeyTag = %#x", cfg.KeyTag(p))
	}
	q := cfg.WithOffset(p, 64)
	if cfg.Addr(q) != 0x1234_5678_9ABC+64 || cfg.KeyTag(q) != 0x7FFF {
		t.Error("WithOffset lost the address or tag")
	}
	q = cfg.WithOffset(p, -32)
	if cfg.Addr(q) != 0x1234_5678_9ABC-32 {
		t.Error("negative offset wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized tag should panic")
			}
		}()
		cfg.MakePointer(0, 1<<15)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized address should panic")
			}
		}()
		cfg.MakePointer(1<<49, 0)
	}()
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, cfg := range []Config{IMT10, IMT16} {
		m := newMem(t, cfg)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			addr := uint64(rng.Intn(1<<20)) &^ 31
			tag := rng.Uint64() & (1<<uint(cfg.TagBits) - 1)
			p := cfg.MakePointer(addr, tag)
			data := make([]byte, 32)
			rng.Read(data)
			if err := m.WriteSector(p, data); err != nil {
				t.Fatal(err)
			}
			got, err := m.ReadSector(p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s: round-trip mismatch", cfg.Name)
			}
		}
	}
}

func TestTagMismatchFaultsOnRead(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	p := cfg.MakePointer(0x1000, 0x00AA)
	data := make([]byte, 32)
	data[0] = 0xDE
	if err := m.WriteSector(p, data); err != nil {
		t.Fatal(err)
	}
	// Read with a wrong key tag: must fault with an exact lock estimate.
	evil := cfg.MakePointer(0x1000, 0x0055)
	_, err := m.ReadSector(evil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %v", err)
	}
	if f.Kind != FaultTMM {
		t.Fatalf("kind = %v, want TMM", f.Kind)
	}
	if f.LockTagEstimate != 0x00AA {
		t.Fatalf("lock estimate %#x, want 0xAA", f.LockTagEstimate)
	}
	if f.Addr != 0x1000 || f.KeyTag != 0x0055 {
		t.Fatalf("fault fields: %+v", f)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestSingleBitErrorCorrectedAndScrubbed(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	p := cfg.MakePointer(0x2000, 0x1F)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.WriteSector(p, data); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectError(0x2000, 77); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadSector(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("single-bit error not corrected")
	}
	if m.Corrected != 1 {
		t.Fatalf("Corrected = %d, want 1", m.Corrected)
	}
	// The scrub must have repaired the stored copy: a second read is clean.
	if _, err := m.ReadSector(p); err != nil {
		t.Fatal(err)
	}
	if m.Corrected != 1 {
		t.Fatalf("scrub failed: Corrected = %d after second read", m.Corrected)
	}
	// Check-bit errors are corrected too.
	if err := m.InjectError(0x2000, m.Code().K()+3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadSector(p); err != nil {
		t.Fatal(err)
	}
	if m.Corrected != 2 {
		t.Fatalf("check-bit correction failed: Corrected = %d", m.Corrected)
	}
}

func TestMultiBitErrorIsFatal(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	p := cfg.MakePointer(0x3000, 0x05)
	if err := m.WriteSector(p, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// Odd-weight multi-bit data errors surface as DUEs under Hsiao codes.
	if err := m.InjectError(0x3000, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	_, err := m.ReadSector(p)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected fault, got %v", err)
	}
	if f.Kind == FaultTMM && f.LockTagEstimate == 0x05 {
		t.Error("a 3-bit error must not quietly look like a clean tag match")
	}
}

func TestDebugModeLogsInsteadOfFaulting(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	m.SetDebugMode(true)
	p := cfg.MakePointer(0x4000, 0x0001)
	if err := m.WriteSector(p, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	evil := cfg.MakePointer(0x4000, 0x0002)
	if _, err := m.ReadSector(evil); err != nil {
		t.Fatalf("debug mode must not fault: %v", err)
	}
	log := m.FaultLog()
	if len(log) != 1 || log[0].Kind != FaultTMM || log[0].LockTagEstimate != 0x0001 {
		t.Fatalf("fault log = %+v", log)
	}
}

func TestSubSectorReadWrite(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	// The allocator retags a granule before handing it out; without this,
	// the very first partial (read-modify-write) store would itself TMM
	// against the scrubbed tag-0 state.
	if err := m.Retag(0x5000, 0x0042); err != nil {
		t.Fatal(err)
	}
	p := cfg.MakePointer(0x5000, 0x0042)
	if err := m.Write(p, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	q := cfg.WithOffset(p, 8)
	if err := m.Write(q, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 0, 0, 0, 0, 9, 9}
	if !bytes.Equal(got, want) {
		t.Fatalf("Read = %v, want %v", got, want)
	}
	// A partial store with the wrong key tag is caught immediately (RMW).
	evil := cfg.MakePointer(0x5004, 0x0013)
	err = m.Write(evil, []byte{7})
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTMM {
		t.Fatalf("partial store with wrong tag: err = %v", err)
	}
	// Cross-sector accesses are rejected.
	if _, err := m.Read(cfg.MakePointer(0x5010, 0x42), 32); err == nil {
		t.Error("cross-sector read must fail")
	}
	if err := m.Write(cfg.MakePointer(0x501E, 0x42), []byte{1, 2, 3, 4}); err == nil {
		t.Error("cross-sector write must fail")
	}
}

func TestUnalignedSectorAccessRejected(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	p := cfg.MakePointer(0x1001, 0)
	if err := m.WriteSector(p, make([]byte, 32)); err == nil {
		t.Error("unaligned WriteSector must fail")
	}
	if _, err := m.ReadSector(p); err == nil {
		t.Error("unaligned ReadSector must fail")
	}
	if err := m.WriteSector(cfg.MakePointer(0, 0), make([]byte, 16)); err == nil {
		t.Error("short WriteSector must fail")
	}
}

func TestRetagPreservesData(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	p := cfg.MakePointer(0x6000, 0x0007)
	data := []byte("hello, tagged world! 0123456789a")
	if err := m.WriteSector(p, data); err != nil {
		t.Fatal(err)
	}
	if err := m.Retag(0x6000, 0x0099); err != nil {
		t.Fatal(err)
	}
	// Old tag now faults; new tag reads the same bytes.
	if _, err := m.ReadSector(p); err == nil {
		t.Error("old key tag should fault after retag")
	}
	got, err := m.ReadSector(cfg.MakePointer(0x6000, 0x0099))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("retag corrupted data")
	}
}

func TestUnwrittenMemoryReadsZeroWithTagZero(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	got, err := m.ReadSector(cfg.MakePointer(0x7000, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
	if _, err := m.ReadSector(cfg.MakePointer(0x7020, 3)); err == nil {
		t.Error("unwritten memory carries tag 0; a nonzero key must fault")
	}
}

func TestInjectErrorValidation(t *testing.T) {
	m := newMem(t, IMT10)
	if err := m.InjectError(0x8000, -1); err == nil {
		t.Error("negative bit position must fail")
	}
	if err := m.InjectError(0x8000, m.Code().PhysicalBits()); err == nil {
		t.Error("out-of-range bit position must fail")
	}
	if err := m.InjectError(0x8001, 0); err == nil {
		t.Error("unaligned address must fail")
	}
}

func TestDriverDiagnosisEquation7(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	d := NewDriver(m)
	if err := d.RegisterAllocation(0x9000, 64, 0x0011); err != nil {
		t.Fatal(err)
	}
	owner := cfg.MakePointer(0x9000, 0x0011)
	if err := m.WriteSector(owner, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}

	// Case 1: pure TMM. Attacker key 0x22 hits lock 0x11.
	_, err := m.ReadSector(cfg.MakePointer(0x9000, 0x0022))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("expected fault")
	}
	diag := d.Diagnose(*f)
	if diag.Kind != DiagnosisTMM {
		t.Fatalf("case 1: %v (%+v)", diag.Kind, diag)
	}
	if diag.LockTag != 0x0011 || diag.RefTag != 0x0011 {
		t.Fatalf("case 1 tags: %+v", diag)
	}

	// Case 2: pure DUE. Owner reads after an odd multi-bit data error.
	if err := m.InjectError(0x9000, 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	_, err = m.ReadSector(owner)
	if !errors.As(err, &f) {
		t.Fatal("expected fault")
	}
	diag = d.Diagnose(*f)
	if diag.Kind != DiagnosisDUE {
		t.Fatalf("case 2: %v (%+v)", diag.Kind, diag)
	}

	// Repair the sector for case 3.
	if err := m.WriteSector(owner, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}

	// Case 3: BOTH — wrong key and a data error. The syndrome may decode
	// as either fault kind, but Eq 7 must not classify it as a pure TMM
	// with a matching lock estimate unless aliasing conspires; we assert
	// only that diagnosis runs and yields a defined kind with RefTag set.
	if err := m.InjectError(0x9000, 5, 6); err != nil {
		t.Fatal(err)
	}
	_, err = m.ReadSector(cfg.MakePointer(0x9000, 0x0033))
	if !errors.As(err, &f) {
		t.Fatal("expected fault")
	}
	diag = d.Diagnose(*f)
	if diag.RefTag != 0x0011 {
		t.Fatalf("case 3 ref tag: %+v", diag)
	}
	if diag.Kind == DiagnosisUnknown {
		t.Fatal("case 3 should have a reference tag")
	}

	// Unregistered addresses yield UNKNOWN.
	f2 := Fault{Addr: 0xF0000, KeyTag: 1, Syndrome: 0x3}
	if d.Diagnose(f2).Kind != DiagnosisUnknown {
		t.Error("unregistered address should be UNKNOWN")
	}
}

func TestDriverAllocationMap(t *testing.T) {
	m := newMem(t, IMT10)
	d := NewDriver(m)
	if err := d.RegisterAllocation(0x100, 0x100, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAllocation(0x300, 0x40, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterAllocation(0x1F0, 0x20, 3); err == nil {
		t.Error("overlap must be rejected")
	}
	if err := d.RegisterAllocation(0x200, 0x100, 3); err != nil {
		t.Fatalf("adjacent allocation should fit: %v", err)
	}
	if tag, ok := d.ReferenceTag(0x2FF); !ok || tag != 3 {
		t.Errorf("ReferenceTag(0x2FF) = %d,%v", tag, ok)
	}
	if _, ok := d.ReferenceTag(0x400); ok {
		t.Error("0x400 should be uncovered")
	}
	if err := d.UpdateTag(0x150, 9); err != nil {
		t.Fatal(err)
	}
	if tag, _ := d.ReferenceTag(0x100); tag != 9 {
		t.Error("UpdateTag did not stick")
	}
	if err := d.UpdateTag(0x400, 1); err == nil {
		t.Error("UpdateTag outside any allocation must fail")
	}
	if err := d.UnregisterAllocation(0x300); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.ReferenceTag(0x320); ok {
		t.Error("unregistered range still resolves")
	}
	if err := d.UnregisterAllocation(0x300); err == nil {
		t.Error("double unregister must fail")
	}
	if err := d.RegisterAllocation(0x500, 0, 1); err == nil {
		t.Error("zero-size allocation must fail")
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultTMM.String() != "TMM" || FaultDUE.String() != "DUE" {
		t.Error("FaultKind strings wrong")
	}
	if DiagnosisTMM.String() != "TMM" || DiagnosisDUE.String() != "DUE" ||
		DiagnosisBoth.String() != "BOTH" || DiagnosisUnknown.String() != "UNKNOWN" {
		t.Error("DiagnosisKind strings wrong")
	}
}
