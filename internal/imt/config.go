package imt

import (
	"fmt"

	"repro/internal/core"
)

// Config describes an IMT deployment point (§4.4).
type Config struct {
	Name string
	// DataBits per ECC codeword; GPUs form one codeword per 32B sector.
	DataBits int
	// CheckBits of ECC redundancy per codeword.
	CheckBits int
	// TagBits embedded in the check bits (TS).
	TagBits int
	// GranuleBytes is the tagging granularity TG; it equals the codeword
	// data size on GPUs (32B).
	GranuleBytes int
	// VABits is the virtual address width; the key tag lives above it.
	VABits int
}

// The two GPU configurations evaluated in the paper (§4.4): IMT-16 uses
// the full 2B-per-32B DRAM-provided redundancy; IMT-10 uses the minimum
// SEC-DED redundancy.
var (
	IMT10 = Config{Name: "IMT-10", DataBits: 256, CheckBits: 10, TagBits: 9, GranuleBytes: 32, VABits: 49}
	IMT16 = Config{Name: "IMT-16", DataBits: 256, CheckBits: 16, TagBits: 15, GranuleBytes: 32, VABits: 49}
)

// Validate checks internal consistency, including that the tag fits both
// the ECC bound (Eq 5b) and the pointer's spare upper bits.
func (c Config) Validate() error {
	if c.DataBits != c.GranuleBytes*8 {
		return fmt.Errorf("imt: %s: codeword data (%db) must cover the %dB granule", c.Name, c.DataBits, c.GranuleBytes)
	}
	maxTS, err := core.MaxTagSize(c.DataBits, c.CheckBits)
	if err != nil {
		return fmt.Errorf("imt: %s: %v", c.Name, err)
	}
	if c.TagBits > maxTS {
		return fmt.Errorf("imt: %s: TS=%d exceeds alias-free bound %d", c.Name, c.TagBits, maxTS)
	}
	if c.TagBits < 1 {
		return fmt.Errorf("imt: %s: TS=%d must be ≥ 1", c.Name, c.TagBits)
	}
	if spare := 64 - c.VABits; c.TagBits > spare {
		return fmt.Errorf("imt: %s: TS=%d does not fit the %d unused pointer bits above a %db VA", c.Name, c.TagBits, spare, c.VABits)
	}
	return nil
}

// NewCode constructs the AFT-ECC code for this configuration.
func (c Config) NewCode() (*core.Code, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return core.NewCode(c.DataBits, c.CheckBits, c.TagBits, core.Options{})
}
