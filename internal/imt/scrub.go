package imt

import "sort"

// ScrubReport summarizes one patrol-scrub pass.
type ScrubReport struct {
	Scanned   int
	Corrected int
	// Faults lists sectors whose decode was fatal even under the driver's
	// reference tag (genuine uncorrectable damage, or damage in an
	// unregistered region scanned under tag 0).
	Faults []Fault
	// Skipped counts sectors with no reference tag that also fail under
	// tag 0 — the scrubber cannot tell corruption from an unknown tag and
	// leaves them alone.
	Skipped int
}

// Scrub performs a patrol-scrubbing pass over every materialized sector,
// the standard ECC-memory hygiene that keeps single-bit upsets from
// accumulating into uncorrectable double errors. Because IMT memory is
// tagged, the scrubber — privileged software in the driver — needs a tag
// to decode with: it uses the driver's §4.3 reference-tag map, falling
// back to tag 0 for unregistered sectors. Correctable errors are
// repaired in place (the decode path already scrubs); fatal syndromes
// are reported, never modified.
func (m *Memory) Scrub(d *Driver) ScrubReport {
	m.mu.Lock()
	indices := make([]uint64, 0, len(m.sectors))
	for idx := range m.sectors {
		indices = append(indices, idx)
	}
	m.mu.Unlock()
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	var rep ScrubReport
	g := uint64(m.cfg.GranuleBytes)
	for _, idx := range indices {
		addr := idx * g
		tag := uint64(0)
		known := false
		if d != nil {
			if t, ok := d.ReferenceTag(addr); ok {
				tag, known = t, true
			}
		}
		rep.Scanned++
		before := m.Corrected
		_, err := m.ReadSector(m.cfg.MakePointer(addr, tag))
		if m.Corrected > before {
			rep.Corrected++
		}
		if err != nil {
			if f, ok := err.(*Fault); ok {
				if !known && f.Kind == FaultTMM {
					// Unregistered sector under a non-zero (unknown) tag:
					// not scrubbable, not necessarily an error.
					rep.Skipped++
					continue
				}
				rep.Faults = append(rep.Faults, *f)
			}
		}
	}
	return rep
}
