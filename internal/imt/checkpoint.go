package imt

// Checkpoint is a consistent snapshot of a tagged memory, enabling the
// recovery path §3.6 describes: the fatal-TMM constraint can be relaxed
// if the system has "some recovery action that also works for recovering
// from data errors (e.g., rollback and restart from an error-free
// checkpoint)" — because then a multi-bit DUE misattributed as a TMM is
// repaired by the same rollback that handles real DUEs.
type Checkpoint struct {
	sectors                  map[uint64]sector
	reads, writes, corrected uint64
}

// Snapshot captures the current memory contents (deep copy) along with
// the access counters.
func (m *Memory) Snapshot() *Checkpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := &Checkpoint{
		sectors:   make(map[uint64]sector, len(m.sectors)),
		reads:     m.Reads,
		writes:    m.Writes,
		corrected: m.Corrected,
	}
	for idx, s := range m.sectors {
		cp.sectors[idx] = sector{data: append([]byte(nil), s.data...), check: s.check}
	}
	return cp
}

// Restore rolls the memory back to the checkpointed state, discarding
// any corruption (and any attacker-induced writes) since the snapshot.
// The fault log is preserved — diagnosis evidence must survive recovery.
func (m *Memory) Restore(cp *Checkpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sectors = make(map[uint64]*sector, len(cp.sectors))
	for idx, s := range cp.sectors {
		m.sectors[idx] = &sector{data: append([]byte(nil), s.data...), check: s.check}
	}
	m.Reads, m.Writes, m.Corrected = cp.reads, cp.writes, cp.corrected
}

// SectorCount reports the number of materialized sectors (diagnostics).
func (m *Memory) SectorCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sectors)
}
