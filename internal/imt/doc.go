// Package imt implements Implicit Memory Tagging (Section 4 of the paper):
// the system layer that applies Alias-Free Tagged ECC to a GPU-style
// memory. It provides
//
//   - tagged 49-bit-VA pointers with the key tag in the unused upper bits,
//   - a sectored (32B-codeword) tagged memory with AFT-ECC encode on write
//     and decode+tag-check on read,
//   - fault reporting with fatal-TMM semantics plus the §4.3 debug mode,
//   - the driver-side diagnosis of §4.3: lock-tag extraction through the
//     syndrome lookup table and the optional precise TMM/DUE/BOTH
//     classification against a reference-tag allocation map (Equation 7).
package imt
