package imt

import "fmt"

// Pointer is a 64-bit virtual address whose unused upper bits carry the
// key tag (§4.2). With the paper's 49-bit VA assumption there is room for
// up to a 15-bit key tag in bits [49, 64).
type Pointer uint64

// MakePointer packs an address and key tag. It panics if the address
// overflows the VA or the tag overflows the configured tag width —
// allocator bugs here would silently corrupt addresses.
func (c Config) MakePointer(addr uint64, tag uint64) Pointer {
	if addr>>uint(c.VABits) != 0 {
		panic(fmt.Sprintf("imt: address %#x exceeds %d-bit VA", addr, c.VABits))
	}
	if tag>>uint(c.TagBits) != 0 {
		panic(fmt.Sprintf("imt: tag %#x exceeds %d bits", tag, c.TagBits))
	}
	return Pointer(addr | tag<<uint(c.VABits))
}

// Addr extracts the virtual address (the low VABits bits).
func (c Config) Addr(p Pointer) uint64 {
	return uint64(p) & (1<<uint(c.VABits) - 1)
}

// KeyTag extracts the key tag from the upper pointer bits.
func (c Config) KeyTag(p Pointer) uint64 {
	return uint64(p) >> uint(c.VABits) & (1<<uint(c.TagBits) - 1)
}

// WithOffset returns the pointer advanced by delta bytes, preserving the
// key tag. This mirrors ordinary pointer arithmetic: an out-of-bounds
// offset keeps the original allocation's key tag, which is exactly how a
// buffer overflow carries the wrong key to a neighboring granule.
func (c Config) WithOffset(p Pointer, delta int64) Pointer {
	addr := uint64(int64(c.Addr(p)) + delta)
	return c.MakePointer(addr&(1<<uint(c.VABits)-1), c.KeyTag(p))
}
