package imt

import (
	"errors"
	"testing"
)

func TestAtomicAddExchCASMax(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	if err := m.Retag(0xA000, 0x77); err != nil {
		t.Fatal(err)
	}
	p := cfg.MakePointer(0xA004, 0x77)

	old, err := m.Atomic(p, AtomicAdd, 5, 0)
	if err != nil || old != 0 {
		t.Fatalf("add: old=%d err=%v", old, err)
	}
	old, err = m.Atomic(p, AtomicAdd, 3, 0)
	if err != nil || old != 5 {
		t.Fatalf("add2: old=%d err=%v", old, err)
	}
	old, err = m.Atomic(p, AtomicExch, 100, 0)
	if err != nil || old != 8 {
		t.Fatalf("exch: old=%d err=%v", old, err)
	}
	// Failed CAS leaves the value alone.
	old, err = m.Atomic(p, AtomicCAS, 7, 42)
	if err != nil || old != 100 {
		t.Fatalf("cas-fail: old=%d err=%v", old, err)
	}
	// Successful CAS swaps.
	old, err = m.Atomic(p, AtomicCAS, 7, 100)
	if err != nil || old != 100 {
		t.Fatalf("cas-ok: old=%d err=%v", old, err)
	}
	old, err = m.Atomic(p, AtomicMax, 3, 0)
	if err != nil || old != 7 {
		t.Fatalf("max-noop: old=%d err=%v", old, err)
	}
	old, err = m.Atomic(p, AtomicMax, 99, 0)
	if err != nil || old != 7 {
		t.Fatalf("max: old=%d err=%v", old, err)
	}
	got, err := m.Read(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 99 {
		t.Fatalf("final value = %d, want 99", got[0])
	}
}

func TestAtomicTagCheck(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	if err := m.Retag(0xB000, 0x11); err != nil {
		t.Fatal(err)
	}
	// §4.2: the key tag reaches the atomic datapath's decoder, so a
	// mismatched atomic faults before modifying memory.
	evil := cfg.MakePointer(0xB000, 0x22)
	_, err := m.Atomic(evil, AtomicAdd, 1, 0)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTMM {
		t.Fatalf("mismatched atomic: err = %v, want TMM", err)
	}
	// Memory unchanged: the rightful owner reads 0.
	owner := cfg.MakePointer(0xB000, 0x11)
	got, err := m.Read(owner, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("mismatched atomic modified memory")
		}
	}
}

func TestAtomicAlignment(t *testing.T) {
	m := newMem(t, IMT10)
	p := m.Config().MakePointer(0xC001, 0)
	if _, err := m.Atomic(p, AtomicAdd, 1, 0); err == nil {
		t.Error("unaligned atomic must fail")
	}
	if _, err := m.Atomic(m.Config().MakePointer(0xC000, 0), AtomicOp(99), 1, 0); err == nil {
		t.Error("unknown op must fail")
	}
}

func TestAtomicOpString(t *testing.T) {
	for op, want := range map[AtomicOp]string{
		AtomicAdd: "atomicAdd", AtomicExch: "atomicExch", AtomicCAS: "atomicCAS", AtomicMax: "atomicMax",
	} {
		if op.String() != want {
			t.Errorf("%d = %q", int(op), op.String())
		}
	}
}

func TestAtomicConcurrentCounters(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	if err := m.Retag(0xD000, 0x3C); err != nil {
		t.Fatal(err)
	}
	p := cfg.MakePointer(0xD000, 0x3C)
	const workers, perWorker = 8, 200
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < perWorker; i++ {
				if _, err := m.Atomic(p, AtomicAdd, 1, 0); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Read(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := uint32(got[0]) | uint32(got[1])<<8 | uint32(got[2])<<16 | uint32(got[3])<<24
	if total != workers*perWorker {
		t.Fatalf("counter = %d, want %d (atomicity violated)", total, workers*perWorker)
	}
}
