package imt

import (
	"bytes"
	"testing"
)

func TestScrubRepairsLatentSingleBitErrors(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	d := NewDriver(m)

	// Three registered allocations with data and distinct tags.
	for i, tag := range []uint64{0x11, 0x22, 0x33} {
		base := uint64(0x1000 + i*0x100)
		if err := d.RegisterAllocation(base, 0x100, tag); err != nil {
			t.Fatal(err)
		}
		for off := uint64(0); off < 0x100; off += 32 {
			p := cfg.MakePointer(base+off, tag)
			if err := m.WriteSector(p, bytes.Repeat([]byte{byte(i + 1)}, 32)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Latent single-bit upsets in two sectors of different allocations.
	if err := m.InjectError(0x1000, 13); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectError(0x1120, 200); err != nil {
		t.Fatal(err)
	}

	rep := m.Scrub(d)
	if rep.Scanned != 24 {
		t.Fatalf("scanned = %d, want 24 sectors", rep.Scanned)
	}
	if rep.Corrected != 2 {
		t.Fatalf("corrected = %d, want 2", rep.Corrected)
	}
	if len(rep.Faults) != 0 || rep.Skipped != 0 {
		t.Fatalf("unexpected faults/skips: %+v", rep)
	}
	// A second pass finds nothing: the errors were scrubbed away.
	rep = m.Scrub(d)
	if rep.Corrected != 0 {
		t.Fatalf("second pass corrected = %d", rep.Corrected)
	}
	// Data intact for the owners.
	got, err := m.ReadSector(cfg.MakePointer(0x1000, 0x11))
	if err != nil || got[0] != 1 {
		t.Fatalf("owner read after scrub: %v %v", got, err)
	}
}

func TestScrubReportsUncorrectableDamage(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	d := NewDriver(m)
	if err := d.RegisterAllocation(0x2000, 32, 0x7); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSector(cfg.MakePointer(0x2000, 0x7), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectError(0x2000, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	rep := m.Scrub(d)
	if len(rep.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(rep.Faults))
	}
	if rep.Faults[0].Addr != 0x2000 {
		t.Fatalf("fault at %#x", rep.Faults[0].Addr)
	}
}

func TestScrubSkipsUnregisteredTaggedSectors(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	// A sector tagged 0x42 but never registered with the driver: the
	// scrubber cannot decode it and must leave it alone.
	if err := m.WriteSector(cfg.MakePointer(0x3000, 0x42), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// And one legitimately tag-0 sector it can scrub.
	if err := m.WriteSector(cfg.MakePointer(0x3020, 0), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	rep := m.Scrub(NewDriver(m))
	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", rep.Skipped)
	}
	if len(rep.Faults) != 0 {
		t.Fatalf("faults = %v", rep.Faults)
	}
	// Works without a driver at all (all sectors treated as tag 0).
	rep = m.Scrub(nil)
	if rep.Skipped != 1 {
		t.Fatalf("driverless skipped = %d", rep.Skipped)
	}
}
