package imt

import (
	"bytes"
	"errors"
	"testing"
)

func TestRollbackRecoversFromDUE(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	p := cfg.MakePointer(0xE000, 0x42)
	want := []byte("checkpointed state 0123456789ab")
	want = append(want, 0)
	if err := m.WriteSector(p, want); err != nil {
		t.Fatal(err)
	}
	cp := m.Snapshot()

	// A severe (3-bit) error makes the sector unreadable.
	if err := m.InjectError(0xE000, 5, 50, 200); err != nil {
		t.Fatal(err)
	}
	_, err := m.ReadSector(p)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("expected a fatal error")
	}

	// §3.6 recovery: roll back and retry — works whether the fault was a
	// genuine DUE or a misattributed TMM.
	m.Restore(cp)
	got, err := m.ReadSector(p)
	if err != nil {
		t.Fatalf("post-rollback read failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rollback did not restore the data")
	}
}

func TestRollbackDiscardsAttackerWrites(t *testing.T) {
	m := newMem(t, IMT16)
	cfg := m.Config()
	victim := cfg.MakePointer(0xF000, 0x11)
	if err := m.WriteSector(victim, bytes.Repeat([]byte{0xAA}, 32)); err != nil {
		t.Fatal(err)
	}
	cp := m.Snapshot()

	// A full-sector store with a forged tag silently retags the sector
	// (caught only on the victim's next read)…
	attacker := cfg.MakePointer(0xF000, 0x22)
	if err := m.WriteSector(attacker, bytes.Repeat([]byte{0xEE}, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadSector(victim); err == nil {
		t.Fatal("victim read should fault after the forged store")
	}
	// …and rollback restores both the data and the victim's tag.
	m.Restore(cp)
	got, err := m.ReadSector(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Fatal("rollback lost the victim's data")
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	m := newMem(t, IMT10)
	cfg := m.Config()
	p := cfg.MakePointer(0x1000, 0x3)
	if err := m.WriteSector(p, bytes.Repeat([]byte{1}, 32)); err != nil {
		t.Fatal(err)
	}
	cp := m.Snapshot()
	// Mutations after the snapshot must not leak into it.
	if err := m.WriteSector(p, bytes.Repeat([]byte{2}, 32)); err != nil {
		t.Fatal(err)
	}
	m.Restore(cp)
	got, err := m.ReadSector(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("snapshot was shallow")
	}
	if m.SectorCount() != 1 {
		t.Fatalf("sector count = %d", m.SectorCount())
	}
	// Counters roll back too.
	if m.Writes != cp.writes {
		t.Fatal("write counter not restored")
	}
}
