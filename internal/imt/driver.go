package imt

import (
	"fmt"

	"repro/internal/tagtree"
)

// DiagnosisKind is the precise classification of a fatal error (Eq 7).
type DiagnosisKind int

const (
	// DiagnosisTMM: a pure tag mismatch (Ref ≠ Key and Ref = Lock).
	DiagnosisTMM DiagnosisKind = iota
	// DiagnosisDUE: a pure multi-bit data error (Ref = Key and Ref ≠ Lock).
	DiagnosisDUE
	// DiagnosisBoth: a simultaneous tag mismatch and data error (none of
	// the three tags agree).
	DiagnosisBoth
	// DiagnosisUnknown: no reference tag was registered for the faulting
	// address, so only the imprecise hardware attribution is available.
	DiagnosisUnknown
)

func (k DiagnosisKind) String() string {
	switch k {
	case DiagnosisTMM:
		return "TMM"
	case DiagnosisDUE:
		return "DUE"
	case DiagnosisBoth:
		return "BOTH"
	default:
		return "UNKNOWN"
	}
}

// Diagnosis is the driver's verdict on a fatal error (§4.3, Figure 7).
type Diagnosis struct {
	Kind    DiagnosisKind
	KeyTag  uint64
	LockTag uint64 // syndrome-extracted estimate; InvalidTag if none
	RefTag  uint64 // driver-side reference; InvalidTag if unregistered
}

// Driver models the GPU driver's error-diagnosis path. It optionally
// tracks a reference tag for every live allocation — the
// "storage-efficient tree structure" of §4.3, implemented as the balanced
// interval tree in internal/tagtree and queried only on the rare
// fatal-error path — and classifies faults per Equation 7.
type Driver struct {
	mem    *Memory
	allocs tagtree.Tree
}

// NewDriver attaches a driver to a tagged memory.
func NewDriver(mem *Memory) *Driver {
	return &Driver{mem: mem}
}

// RegisterAllocation records that [base, base+size) carries refTag.
// Overlapping registrations are rejected — allocations never overlap.
func (d *Driver) RegisterAllocation(base, size uint64, refTag uint64) error {
	if err := d.allocs.Insert(base, size, refTag); err != nil {
		return fmt.Errorf("imt: %w", err)
	}
	return nil
}

// UnregisterAllocation removes the record whose base matches exactly.
func (d *Driver) UnregisterAllocation(base uint64) error {
	if err := d.allocs.Remove(base); err != nil {
		return fmt.Errorf("imt: %w", err)
	}
	return nil
}

// UpdateTag changes the reference tag of the allocation containing addr
// (used when the allocator retags on free/reallocation).
func (d *Driver) UpdateTag(addr uint64, newTag uint64) error {
	if err := d.allocs.UpdateTag(addr, newTag); err != nil {
		return fmt.Errorf("imt: %w", err)
	}
	return nil
}

// ReferenceTag looks up the reference tag for addr; ok=false if no live
// allocation covers it.
func (d *Driver) ReferenceTag(addr uint64) (uint64, bool) {
	return d.allocs.Lookup(addr)
}

// TrackedAllocations returns the number of live reference-tag records.
func (d *Driver) TrackedAllocations() int { return d.allocs.Len() }

// Diagnose implements the §4.3 flow. The hardware supplies the faulting
// address, key tag and syndrome; the driver extracts the lock-tag estimate
// through the syndrome lookup table and, when a reference tag is
// registered, applies Equation 7:
//
//	TMM:  Ref ≠ Key ∧ Ref = Lock
//	DUE:  Ref = Key ∧ Ref ≠ Lock
//	BOTH: Ref ≠ Key ∧ Ref ≠ Lock
//
// (Ref = Key ∧ Ref = Lock is impossible: the decoder would not have
// flagged a fatal error.)
func (d *Driver) Diagnose(f Fault) Diagnosis {
	invalid := d.mem.InvalidTag()
	lock := invalid
	if pattern, ok := d.mem.Code().IsTagSyndrome(f.Syndrome); ok {
		lock = (f.KeyTag ^ pattern) & d.mem.Code().TagMask()
	}
	diag := Diagnosis{KeyTag: f.KeyTag, LockTag: lock, RefTag: invalid}
	ref, ok := d.ReferenceTag(f.Addr)
	if !ok {
		diag.Kind = DiagnosisUnknown
		return diag
	}
	diag.RefTag = ref
	switch {
	case ref != f.KeyTag && ref == lock:
		diag.Kind = DiagnosisTMM
	case ref == f.KeyTag && ref != lock:
		diag.Kind = DiagnosisDUE
	default:
		diag.Kind = DiagnosisBoth
	}
	return diag
}
