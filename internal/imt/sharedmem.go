package imt

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// SharedMemory is the SM-local scratchpad of Figure 2: ECC-protected
// like every major GPU storage structure, but NOT tagged — shared memory
// is thread-block-private, so memory tagging does not apply (§2.4 notes
// the exclusive scratchpad requires error correction, unlike CPU L1s
// that can fall back on replication). It uses an untagged SEC-DED code
// per 32B row and exists so the repository models the full Figure 2
// hierarchy, not just the global-memory path.
type SharedMemory struct {
	code *ecc.Code
	rows []sharedRow

	Reads, Writes, Corrected uint64
}

type sharedRow struct {
	data  []byte
	check uint64
}

// NewSharedMemory builds a scratchpad of the given size (a multiple of
// 32 bytes; GV100-class SMs configure up to 96KB).
func NewSharedMemory(sizeBytes int) (*SharedMemory, error) {
	if sizeBytes <= 0 || sizeBytes%32 != 0 {
		return nil, fmt.Errorf("imt: shared memory size %d must be a positive multiple of 32", sizeBytes)
	}
	code, err := ecc.NewHsiao(256, 10)
	if err != nil {
		return nil, err
	}
	sm := &SharedMemory{code: code, rows: make([]sharedRow, sizeBytes/32)}
	zero := make([]byte, 32)
	bv := gf2.BitVecFromBytes(256, zero)
	check := code.Encode(bv)
	for i := range sm.rows {
		sm.rows[i] = sharedRow{data: append([]byte(nil), zero...), check: check}
	}
	return sm, nil
}

// Size returns the scratchpad capacity in bytes.
func (s *SharedMemory) Size() int { return len(s.rows) * 32 }

func (s *SharedMemory) row(offset uint64, n int) (int, int, error) {
	if int(offset)+n > s.Size() {
		return 0, 0, fmt.Errorf("imt: shared access [%d,+%d) beyond %dB scratchpad", offset, n, s.Size())
	}
	if int(offset%32)+n > 32 {
		return 0, 0, fmt.Errorf("imt: shared access [%d,+%d) crosses a 32B row", offset, n)
	}
	return int(offset / 32), int(offset % 32), nil
}

// Write stores bytes (within one 32B row) with read-modify-write ECC.
func (s *SharedMemory) Write(offset uint64, data []byte) error {
	ri, off, err := s.row(offset, len(data))
	if err != nil {
		return err
	}
	row := &s.rows[ri]
	// Verify the resident row before merging, like hardware RMW.
	bv := gf2.BitVecFromBytes(256, row.data)
	if res := s.code.Decode(bv, row.check); res.Status == ecc.StatusDetected {
		return fmt.Errorf("imt: uncorrectable shared-memory error in row %d", ri)
	} else if res.Status == ecc.StatusCorrected {
		s.Corrected++
		copy(row.data, bv.Bytes()[:32])
	}
	s.Writes++
	copy(row.data[off:], data)
	row.check = s.code.Encode(gf2.BitVecFromBytes(256, row.data))
	return nil
}

// Read loads bytes (within one 32B row), correcting single-bit upsets.
func (s *SharedMemory) Read(offset uint64, n int) ([]byte, error) {
	ri, off, err := s.row(offset, n)
	if err != nil {
		return nil, err
	}
	row := &s.rows[ri]
	s.Reads++
	bv := gf2.BitVecFromBytes(256, row.data)
	switch res := s.code.Decode(bv, row.check); res.Status {
	case ecc.StatusOK:
	case ecc.StatusCorrected:
		s.Corrected++
		copy(row.data, bv.Bytes()[:32])
		if res.FlippedBit >= s.code.K() {
			row.check ^= 1 << uint(res.FlippedBit-s.code.K())
		}
	default:
		return nil, fmt.Errorf("imt: uncorrectable shared-memory error in row %d", ri)
	}
	return append([]byte(nil), row.data[off:off+n]...), nil
}

// InjectError flips a physical codeword bit of the row containing offset.
func (s *SharedMemory) InjectError(offset uint64, bit int) error {
	ri := int(offset / 32)
	if ri >= len(s.rows) {
		return fmt.Errorf("imt: offset %d beyond scratchpad", offset)
	}
	if bit < 0 || bit >= s.code.N() {
		return fmt.Errorf("imt: bit %d out of range", bit)
	}
	row := &s.rows[ri]
	if bit < s.code.K() {
		row.data[bit/8] ^= 1 << uint(bit%8)
	} else {
		row.check ^= 1 << uint(bit-s.code.K())
	}
	return nil
}
