package imt

import (
	"bytes"
	"testing"
)

func TestSharedMemoryRoundTrip(t *testing.T) {
	sm, err := NewSharedMemory(4096)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Size() != 4096 {
		t.Fatalf("size = %d", sm.Size())
	}
	if err := sm.Write(64, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := sm.Read(64, 4)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("read: %v %v", got, err)
	}
	// Fresh rows read as zero.
	got, err = sm.Read(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh row not zero")
		}
	}
}

func TestSharedMemoryCorrection(t *testing.T) {
	sm, err := NewSharedMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Write(0, bytes.Repeat([]byte{0xAA}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := sm.InjectError(0, 100); err != nil {
		t.Fatal(err)
	}
	got, err := sm.Read(0, 32)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 32)) {
		t.Fatal("single-bit upset not corrected")
	}
	if sm.Corrected != 1 {
		t.Fatalf("corrected = %d", sm.Corrected)
	}
	// Scrub-on-read: the second read is clean.
	if _, err := sm.Read(0, 32); err != nil {
		t.Fatal(err)
	}
	if sm.Corrected != 1 {
		t.Fatal("row not scrubbed")
	}
}

func TestSharedMemoryUncorrectable(t *testing.T) {
	sm, err := NewSharedMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 2, 3} {
		if err := sm.InjectError(32, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sm.Read(32, 4); err == nil {
		t.Fatal("3-bit shared-memory error undetected")
	}
	// RMW writes also verify the resident row first.
	if err := sm.Write(40, []byte{9}); err == nil {
		t.Fatal("write into a corrupted row must fail")
	}
}

func TestSharedMemoryBounds(t *testing.T) {
	if _, err := NewSharedMemory(0); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := NewSharedMemory(100); err == nil {
		t.Error("non-multiple-of-32 size must fail")
	}
	sm, err := NewSharedMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Read(40, 32); err == nil {
		t.Error("row-crossing read must fail")
	}
	if _, err := sm.Read(64, 1); err == nil {
		t.Error("out-of-bounds read must fail")
	}
	if err := sm.Write(62, []byte{1, 2, 3}); err == nil {
		t.Error("row-crossing write must fail")
	}
	if err := sm.InjectError(4096, 0); err == nil {
		t.Error("out-of-range inject must fail")
	}
	if err := sm.InjectError(0, 999); err == nil {
		t.Error("bad bit must fail")
	}
}
