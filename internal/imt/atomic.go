package imt

import (
	"encoding/binary"
	"fmt"
)

// AtomicOp identifies a near-memory atomic operation. GPUs service these
// in the L2 cache; §4.2 notes the atomic datapath sits between an ECC
// decoder and encoder, so IMT must route the key tag to both — meaning
// every atomic is tag-checked exactly like a load, and the result is
// re-encoded under the same tag.
type AtomicOp int

const (
	// AtomicAdd: fetch-and-add on a 32-bit word.
	AtomicAdd AtomicOp = iota
	// AtomicExch: atomic exchange of a 32-bit word.
	AtomicExch
	// AtomicCAS: compare-and-swap on a 32-bit word.
	AtomicCAS
	// AtomicMax: fetch-and-max (unsigned) on a 32-bit word.
	AtomicMax
)

func (op AtomicOp) String() string {
	switch op {
	case AtomicAdd:
		return "atomicAdd"
	case AtomicExch:
		return "atomicExch"
	case AtomicCAS:
		return "atomicCAS"
	case AtomicMax:
		return "atomicMax"
	default:
		return fmt.Sprintf("AtomicOp(%d)", int(op))
	}
}

// Atomic performs a near-memory atomic on the 4-byte word at p (which
// must be 4-byte aligned and lie within one sector). The full sector is
// decoded with p's key tag — so a mismatched atomic faults before any
// modification — the operation is applied, and the sector is re-encoded
// under the same key tag. It returns the word's previous value.
//
// The compare argument is used only by AtomicCAS.
func (m *Memory) Atomic(p Pointer, op AtomicOp, val uint32, compare uint32) (old uint32, err error) {
	addr := m.cfg.Addr(p)
	if addr%4 != 0 {
		return 0, fmt.Errorf("imt: atomic at %#x not 4-byte aligned", addr)
	}
	g := uint64(m.cfg.GranuleBytes)
	off := addr % g
	base := m.cfg.MakePointer(addr-off, m.cfg.KeyTag(p))

	// Serialize against other composite RMW operations: near-memory
	// atomics are serviced one at a time per L2 slice.
	m.opMu.Lock()
	defer m.opMu.Unlock()

	// Decode + tag check (the decoder in front of the atomic datapath).
	sectorData, err := m.ReadSector(base)
	if err != nil {
		return 0, err
	}
	word := sectorData[off : off+4]
	old = binary.LittleEndian.Uint32(word)
	newVal := old
	switch op {
	case AtomicAdd:
		newVal = old + val
	case AtomicExch:
		newVal = val
	case AtomicCAS:
		if old == compare {
			newVal = val
		}
	case AtomicMax:
		if val > old {
			newVal = val
		}
	default:
		return 0, fmt.Errorf("imt: unknown atomic op %v", op)
	}
	if newVal == old {
		return old, nil
	}
	binary.LittleEndian.PutUint32(word, newVal)
	// Re-encode under the same key tag (the encoder behind the datapath).
	if err := m.WriteSector(base, sectorData); err != nil {
		return 0, err
	}
	return old, nil
}
