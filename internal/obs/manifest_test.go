package obs

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	type cfg struct{ Stride, Trials int }
	m := NewManifest("repro", cfg{Stride: 4, Trials: 100})
	if m.GoVersion == "" {
		t.Error("GoVersion must be filled from runtime.Version")
	}
	if m.ConfigHash == "" || m.ConfigHash == "unencodable" {
		t.Errorf("config hash = %q", m.ConfigHash)
	}
	if m.CreatedAt.IsZero() {
		t.Error("CreatedAt must be set")
	}
	m.WallSeconds = 1.5
	m.Counters = map[string]uint64{"runner_cells_total": 6}
	m.Cells = []Cell{{Name: "tiny/none", Millis: 3.2}}
	m.Phases = []PhaseTiming{{ID: "fig8", Seconds: 1.2}}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != m.ConfigHash || got.WallSeconds != 1.5 ||
		got.Counters["runner_cells_total"] != 6 || len(got.Cells) != 1 || got.Cells[0].Name != "tiny/none" {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestHashJSONDeterministicAndSensitive(t *testing.T) {
	type cfg struct{ A, B int }
	h1 := HashJSON(cfg{1, 2})
	h2 := HashJSON(cfg{1, 2})
	h3 := HashJSON(cfg{1, 3})
	if h1 != h2 {
		t.Error("hash must be deterministic")
	}
	if h1 == h3 {
		t.Error("hash must change when the config changes")
	}
	if HashJSON(func() {}) != "unencodable" {
		t.Error("unencodable values must hash to the sentinel")
	}
}

func TestHubAccumulatesCells(t *testing.T) {
	h := NewHub()
	h.AddCell(Cell{Name: "a"})
	h.AddCell(Cell{Name: "b", Failed: true})
	cells := h.Cells()
	if len(cells) != 2 || cells[1].Name != "b" || !cells[1].Failed {
		t.Fatalf("cells = %+v", cells)
	}
	var nilHub *Hub
	nilHub.AddCell(Cell{})
	if nilHub.Cells() != nil {
		t.Fatal("nil hub must be a no-op")
	}
}

// TestDebugMux exercises the -debug-addr handler without a socket.
func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runner_cells_total", "").Add(7)
	mux := DebugMux(reg)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "runner_cells_total 7") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if rec := get("/metrics.json"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "\"runner_cells_total\": 7") {
		t.Errorf("/metrics.json: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if rec := get("/debug/vars"); rec.Code != 200 {
		t.Errorf("/debug/vars: code=%d", rec.Code)
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Errorf("/debug/pprof/: code=%d", rec.Code)
	}
}

// TestCellJSONTelemetry pins the manifest rendering of per-cell host
// telemetry: present for simulated cells, omitted (not rendered as
// zeros) for cached cells that never ran.
func TestCellJSONTelemetry(t *testing.T) {
	simulated, err := json.Marshal(Cell{Name: "w/imt", Millis: 12, NsPerOp: 850.5, AllocsPerOp: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"ns_per_op":850.5`, `"allocs_per_op":0.5`} {
		if !strings.Contains(string(simulated), key) {
			t.Errorf("simulated cell JSON %s missing %s", simulated, key)
		}
	}
	cached, err := json.Marshal(Cell{Name: "w/imt", Cached: true, Millis: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cached), "ns_per_op") || strings.Contains(string(cached), "allocs_per_op") {
		t.Errorf("cached cell JSON %s must omit unmeasured telemetry", cached)
	}
}
