package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket semantics
// follow Prometheus: an observation v lands in the first bucket whose
// upper bound satisfies v <= le, with an implicit +Inf bucket at the
// end; exported bucket counts are cumulative.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is a general-purpose bucket layout for second-scale
// durations (simulation cells run from milliseconds to minutes).
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// HistogramVec is a family of histograms sharing one name and bucket
// layout, partitioned by a single label (e.g. serve_request_seconds by
// route). Children are ordinary registry histograms stored under the
// composite name `family{label="value"}`, so they appear in JSON
// snapshots under that key; the Prometheus writer folds the label into
// the sample lines (`family_bucket{label="value",le="..."}`).
type HistogramVec struct {
	r      *Registry
	name   string
	label  string
	help   string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value, creating
// it on first use. Children are cached, so the hot path after creation
// is one RLock and a map read.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	child := v.r.Histogram(childName(v.name, v.label, value), v.help, v.bounds)
	v.mu.Lock()
	if h, ok = v.children[value]; !ok {
		v.children[value] = child
		h = child
	}
	v.mu.Unlock()
	return h
}

// childName builds the composite registry key for one vec child,
// escaping the label value per the Prometheus text conventions.
func childName(family, label, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return fmt.Sprintf("%s{%s=\"%s\"}", family, label, esc)
}

// Registry is a concurrency-safe collection of named metrics. Metrics
// are created on first use (get-or-create); re-registering a name with
// a different kind or bucket layout panics, as that is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*HistogramVec
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		vecs:     map[string]*HistogramVec{},
		help:     map[string]string{},
	}
}

func (r *Registry) checkName(name, kind string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	if _, ok := r.vecs[name]; ok && kind != "histogramvec" {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram vec", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
		return h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be sorted", name))
	}
	h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
	r.hists[name] = h
	r.help[name] = help
	return h
}

// HistogramVec returns the named single-label histogram family,
// creating it on first use. Re-registering with a different label or
// bucket count panics (a programming error, like Histogram).
func (r *Registry) HistogramVec(name, label, help string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogramvec")
	if label == "" {
		panic(fmt.Sprintf("obs: histogram vec %q needs a label name", name))
	}
	v, ok := r.vecs[name]
	if ok {
		if v.label != label || len(v.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram vec %q re-registered with a different label or buckets", name))
		}
		return v
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram vec %q buckets must be sorted", name))
	}
	v = &HistogramVec{
		r: r, name: name, label: label, help: help,
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*Histogram{},
	}
	r.vecs[name] = v
	r.help[name] = help
	return v
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is
// math.Inf(1) for the implicit last bucket; because JSON has no Inf
// literal, Bucket marshals LE as a string ("+Inf" for the last bucket),
// matching the Prometheus text convention.
type Bucket struct {
	LE    float64 `json:"-"`
	Count uint64  `json:"count"`
}

type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the bound as a string so +Inf survives.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{LE: formatLE(b.LE), Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	b.Count = bj.Count
	if bj.LE == "+Inf" {
		b.LE = math.Inf(1)
		return nil
	}
	le, err := strconv.ParseFloat(bj.LE, 64)
	if err != nil {
		return err
	}
	b.LE = le
	return nil
}

// HistogramSnapshot is a point-in-time histogram reading.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Sum     float64  `json:"sum"`
	Count   uint64   `json:"count"`
}

// Snapshot is a point-in-time reading of every metric, suitable for
// JSON encoding (and for embedding in a run Manifest).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. Values are read
// atomically per metric; the snapshot as a whole is not a single atomic
// cut across metrics (fine for monitoring, documented for tests).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Sum: h.Sum(), Count: h.Count()}
			cum := uint64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, Bucket{LE: le, Count: cum})
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Infinite bucket
// bounds are encoded as the string "+Inf" (JSON has no Inf literal).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), with metrics sorted by name for deterministic
// output. Metric names are the caller's responsibility; this package
// uses only [a-z0-9_] names.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	writeHeader := func(name, kind string) {
		if h := help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
	}
	for _, name := range sortedKeys(s.Counters) {
		writeHeader(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeHeader(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
	}
	// Histogram-vec children live in the snapshot under composite keys
	// like `family{route="sim"}`; split those so the label rides inside
	// the sample lines next to `le`, with one TYPE header per family.
	headered := map[string]bool{}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		family, labels := name, ""
		if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
			family, labels = name[:i], name[i+1:len(name)-1]+","
		}
		if !headered[family] {
			writeHeader(family, "histogram")
			headered[family] = true
		}
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", family, labels, formatLE(bk.LE), bk.Count)
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", family, suffix, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count%s %d\n", family, suffix, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteFile writes the registry to path: JSON when the extension is
// .json, Prometheus text otherwise.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".json" {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
