// Package obs is the dependency-light observability layer threaded
// through the simulator, the experiment engine and the CLIs: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with JSON and Prometheus-text exporters, a Chrome
// trace-event recorder whose output loads in Perfetto, run manifests
// that pin a results directory to the exact code and configuration that
// produced it, and a debug HTTP mux (expvar + pprof + /metrics).
//
// Everything here uses only the standard library, never blocks the hot
// path on I/O (export is pull-based), and is safe for concurrent use.
package obs
