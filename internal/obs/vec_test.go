package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramVecPrometheus(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("serve_request_seconds", "route", "request latency", []float64{0.1, 1})
	v.With("sim").Observe(0.05)
	v.With("sim").Observe(0.5)
	v.With("sweep").Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP serve_request_seconds request latency
# TYPE serve_request_seconds histogram
serve_request_seconds_bucket{route="sim",le="0.1"} 1
serve_request_seconds_bucket{route="sim",le="1"} 2
serve_request_seconds_bucket{route="sim",le="+Inf"} 2
serve_request_seconds_sum{route="sim"} 0.55
serve_request_seconds_count{route="sim"} 2
serve_request_seconds_bucket{route="sweep",le="0.1"} 0
serve_request_seconds_bucket{route="sweep",le="1"} 0
serve_request_seconds_bucket{route="sweep",le="+Inf"} 1
serve_request_seconds_sum{route="sweep"} 2
serve_request_seconds_count{route="sweep"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramVecJSONKeys(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("lat", "route", "", []float64{1}).With("watch").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON does not parse: %v\n%s", err, buf.String())
	}
	hs, ok := decoded.Histograms[`lat{route="watch"}`]
	if !ok {
		t.Fatalf("no composite key in JSON snapshot: %s", buf.String())
	}
	if hs.Count != 1 {
		t.Errorf("count = %d, want 1", hs.Count)
	}
}

func TestHistogramVecSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat", "route", "", DurationBuckets)
	if v.With("a") != v.With("a") {
		t.Error("With must return the same child for the same label value")
	}
	if v2 := r.HistogramVec("lat", "route", "", DurationBuckets); v2 != v {
		t.Error("re-registering a vec must return the same vec")
	}
	// Label values with quotes and backslashes must not corrupt the
	// exposition format.
	v.With(`we"ird\`).Observe(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `route="we\"ird\\"`) {
		t.Errorf("label value not escaped:\n%s", buf.String())
	}
}

func TestHistogramVecCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("lat", "route", "", DurationBuckets)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a vec as a counter must panic")
		}
	}()
	r.Counter("lat", "")
}

// TestObsConcurrentHammer drives the registry (all four metric kinds)
// and the Chrome-trace recorder from many goroutines while exporters
// snapshot both concurrently; it exists to run under -race and pins
// that the final counts are exact (no lost updates).
func TestObsConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewTraceRecorder()
	const workers, perWorker = 8, 500

	var workersWG, exporterWG sync.WaitGroup
	stop := make(chan struct{})
	// Exporter goroutine: snapshots everything in a tight loop while the
	// workers write.
	exporterWG.Add(1)
	go func() {
		defer exporterWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
			}
			if err := r.WriteJSON(io.Discard); err != nil {
				t.Error(err)
			}
			if err := tr.Write(io.Discard); err != nil {
				t.Error(err)
			}
			_ = tr.Events()
		}
	}()
	base := time.Now()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			c := r.Counter("c", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", DurationBuckets)
			v := r.HistogramVec("lat", "route", "", DurationBuckets)
			routes := [...]string{"sim", "sweep", "jobs", "watch"}
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
				v.With(routes[i%len(routes)]).Observe(float64(i%5) / 50)
				tr.Span("cell", "sim", w, base, base.Add(time.Microsecond), nil)
				tr.Counter("bw", map[string]float64{"util": float64(i)})
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	exporterWG.Wait()

	s := r.Snapshot()
	if s.Counters["c"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters["c"], workers*perWorker)
	}
	var vecTotal uint64
	for name, hs := range s.Histograms {
		if strings.HasPrefix(name, "lat{") {
			vecTotal += hs.Count
		}
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec observations = %d, want %d", vecTotal, workers*perWorker)
	}
	if tr.Len() != workers*perWorker*2 {
		t.Errorf("trace events = %d, want %d", tr.Len(), workers*perWorker*2)
	}
}
