package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one entry in the Chrome trace-event JSON format
// (loadable by Perfetto and chrome://tracing). Only the phases this
// package emits are modeled: "X" complete spans, "C" counter samples,
// and "M" metadata (thread names).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceRecorder accumulates trace events in memory and serializes them
// as a Chrome trace once at the end of a run (events are small; a full
// 193-workload sweep is a few hundred spans). All methods are safe for
// concurrent use and are no-ops on a nil recorder, so call sites can
// record unconditionally.
type TraceRecorder struct {
	mu          sync.Mutex
	start       time.Time
	events      []TraceEvent
	threadNames map[int]string
}

// NewTraceRecorder starts an empty trace; timestamps are relative to
// the call.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{start: time.Now(), threadNames: map[int]string{}}
}

func (t *TraceRecorder) us(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

// Span records one complete ("X") event on thread tid covering
// [start, end].
func (t *TraceRecorder) Span(name, cat string, tid int, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.us(end) - t.us(start)
	if dur < 0 {
		dur = 0
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", TS: t.us(start), Dur: dur, TID: tid, Args: args,
	})
}

// Counter records a "C" counter sample at time.Now(); each key in
// values becomes one series of the named counter track.
func (t *TraceRecorder) Counter(name string, values map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{Name: name, Ph: "C", TS: t.us(time.Now()), Args: args})
}

// SetThreadName labels a tid in trace viewers (worker 0, worker 1, …).
func (t *TraceRecorder) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threadNames[tid] = name
}

// Len returns the number of recorded events (metadata excluded).
func (t *TraceRecorder) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events, metadata first.
func (t *TraceRecorder) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.events)+len(t.threadNames))
	tids := make([]int, 0, len(t.threadNames))
	for tid := range t.threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]any{"name": t.threadNames[tid]},
		})
	}
	return append(out, t.events...)
}

// Write serializes the trace in the Chrome trace-event JSON object
// format: {"traceEvents": [...], "displayTimeUnit": "ms"}.
func (t *TraceRecorder) Write(w io.Writer) error {
	out := struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteFile writes the trace JSON to path.
func (t *TraceRecorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
