package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugMux builds the debug HTTP handler served by -debug-addr:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same registry as JSON
//	/debug/vars    expvar (includes the registry under "metrics")
//	/debug/pprof/  the standard pprof index, profile, trace, …
//
// It is exposed separately from StartDebugServer so tests can exercise
// the handler without opening a socket.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
		// Publish once per process; expvar.Publish panics on duplicates,
		// and a second registry would shadow the first anyway.
		if expvar.Get("metrics") == nil {
			expvar.Publish("metrics", expvar.Func(func() any { return reg.Snapshot() }))
		}
	}
	return mux
}

// StartDebugServer serves DebugMux on addr (e.g. ":6060"; ":0" picks a
// free port) in a background goroutine. It returns the bound address
// and a shutdown function.
//
// The shutdown function drains gracefully: it stops accepting, waits
// (up to a short grace period) for in-flight debug requests — a pprof
// profile capture mid-flight completes rather than being cut — then
// waits for the serve goroutine to exit, so the listener is fully
// released before it returns. That last property is what makes the
// server usable from daemons and tests: after shutdown the port is
// immediately rebindable and no goroutine is leaked. The function is
// idempotent; second and later calls return nil.
func StartDebugServer(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	served := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		served <- err
	}()
	var once sync.Once
	stop := func() error {
		var err error
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			err = srv.Shutdown(ctx)
			if err != nil {
				// Grace period expired with requests still in flight
				// (e.g. an endless profile stream): sever them.
				_ = srv.Close()
			}
			if serr := <-served; err == nil {
				err = serr
			}
		})
		return err
	}
	return ln.Addr().String(), stop, nil
}
