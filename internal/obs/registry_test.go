package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("ops_total", "ops"); again != c {
		t.Fatal("Counter must be get-or-create, got a distinct instance")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

// TestHistogramBucketEdges pins the Prometheus le-convention: a value
// equal to a bucket's upper bound counts into that bucket, the first
// value above the last bound lands in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.1, 100} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["lat"]
	// Cumulative: le=1 → {0.5, 1}; le=2 → +{1.0000001, 2}; le=5 → +{5}; +Inf → +{5.1, 100}.
	want := []uint64{2, 4, 5, 7}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Buckets), len(want))
	}
	for i, w := range want {
		if hs.Buckets[i].Count != w {
			t.Errorf("bucket %d (le=%v) cumulative count = %d, want %d", i, hs.Buckets[i].LE, hs.Buckets[i].Count, w)
		}
	}
	if !math.IsInf(hs.Buckets[3].LE, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", hs.Buckets[3].LE)
	}
	if hs.Count != 7 {
		t.Errorf("count = %d, want 7", hs.Count)
	}
	if wantSum := 0.5 + 1 + 1.0000001 + 2 + 5 + 5.1 + 100; math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", hs.Sum, wantSum)
	}
}

// TestRegistryConcurrency hammers every metric kind from many
// goroutines while exporters run; meant to be driven under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", DurationBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) / 100)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters["c"], workers*perWorker)
	}
	if s.Gauges["g"] != workers*perWorker {
		t.Errorf("gauge = %v, want %d", s.Gauges["g"], workers*perWorker)
	}
	if s.Histograms["h"].Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Histograms["h"].Count, workers*perWorker)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner_cells_total", "completed cells").Add(3)
	r.Gauge("bw_util", "bandwidth utilization").Set(0.75)
	h := r.Histogram("cell_seconds", "cell wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP runner_cells_total completed cells
# TYPE runner_cells_total counter
runner_cells_total 3
# HELP bw_util bandwidth utilization
# TYPE bw_util gauge
bw_util 0.75
# HELP cell_seconds cell wall time
# TYPE cell_seconds histogram
cell_seconds_bucket{le="0.1"} 1
cell_seconds_bucket{le="1"} 2
cell_seconds_bucket{le="+Inf"} 3
cell_seconds_sum 2.55
cell_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "").Add(2)
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
			Sum   float64 `json:"sum"`
			Count uint64  `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Counters["hits"] != 2 {
		t.Errorf("hits = %d, want 2", decoded.Counters["hits"])
	}
	lat := decoded.Histograms["lat"]
	if len(lat.Buckets) != 2 || lat.Buckets[1].LE != "+Inf" || lat.Buckets[1].Count != 1 {
		t.Errorf("histogram JSON wrong: %+v", lat)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestWriteFileFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", "").Inc()
	dir := t.TempDir()

	promPath := dir + "/m.prom"
	if err := r.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	blob, err := readFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blob, "# TYPE n counter") {
		t.Errorf(".prom file is not Prometheus text:\n%s", blob)
	}

	jsonPath := dir + "/m.json"
	if err := r.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	blob, err = readFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(blob)) {
		t.Errorf(".json file is not JSON:\n%s", blob)
	}
}
