package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Cell is one unit of work (a sweep cell) logged into a run manifest.
type Cell struct {
	Name   string  `json:"name"`
	Cached bool    `json:"cached,omitempty"`
	Failed bool    `json:"failed,omitempty"`
	Millis float64 `json:"ms"`
	// NsPerOp and AllocsPerOp are the simulator's host-side cost per
	// simulated warp op for the cell (gpusim.Stats host telemetry).
	// Both are 0 — and omitted — for cached or failed cells, which
	// never ran a simulation.
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// PhaseTiming is one named phase of a run (e.g. one experiment id).
type PhaseTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// Manifest pins a results directory to the code and configuration that
// produced it: a hash of the full experiment configuration, the Go
// toolchain and VCS identity of the binary, wall time, the engine's
// activity counters, and the per-cell duration log. It is written as
// manifest.json alongside every experiment output so a result can
// always be traced back to how it was made.
type Manifest struct {
	Name        string    `json:"name"`
	CreatedAt   time.Time `json:"created_at"`
	GoVersion   string    `json:"go_version"`
	VCSRevision string    `json:"vcs_revision,omitempty"`
	VCSTime     string    `json:"vcs_time,omitempty"`
	VCSModified bool      `json:"vcs_modified,omitempty"`
	ConfigHash  string    `json:"config_hash"`

	WallSeconds float64           `json:"wall_seconds"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
	Metrics     *Snapshot         `json:"metrics,omitempty"`
	Phases      []PhaseTiming     `json:"phases,omitempty"`
	Cells       []Cell            `json:"cells,omitempty"`
}

// NewManifest builds a manifest for the named run: CreatedAt, the Go
// version, the VCS revision embedded by the toolchain (empty for plain
// `go test` builds without VCS stamping), and the hash of config.
func NewManifest(name string, config any) Manifest {
	m := Manifest{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		ConfigHash: HashJSON(config),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// HashJSON returns the hex SHA-256 of v's canonical JSON encoding
// (encoding/json emits struct fields in declaration order, so the hash
// is deterministic for struct configs). Unencodable values — which
// would be a programming error in a config struct — hash to
// "unencodable".
func HashJSON(v any) string {
	blob, err := json.Marshal(v)
	if err != nil {
		return "unencodable"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// WriteFile writes the manifest as indented JSON to path.
func (m Manifest) WriteFile(path string) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	blob, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	err = json.Unmarshal(blob, &m)
	return m, err
}

// Hub bundles the observability sinks one run threads through its
// engines: a metrics registry, an optional trace recorder, and the
// accumulated per-cell log for the run manifest. A nil *Hub is a valid
// no-op sink everywhere it is accepted.
type Hub struct {
	Metrics *Registry
	Trace   *TraceRecorder

	mu    sync.Mutex
	cells []Cell
}

// NewHub returns a hub with a fresh registry and trace recorder.
func NewHub() *Hub {
	return &Hub{Metrics: NewRegistry(), Trace: NewTraceRecorder()}
}

// AddCell appends one completed cell to the run log.
func (h *Hub) AddCell(c Cell) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.cells = append(h.cells, c)
	h.mu.Unlock()
}

// Cells returns a copy of the accumulated cell log.
func (h *Hub) Cells() []Cell {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Cell(nil), h.cells...)
}
