package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStartDebugServerLifecycle is the daemon-use regression test: an
// ephemeral-port server must answer /metrics, and shutdown must fully
// release the listener (the exact port is immediately rebindable — a
// leaked listener or serve goroutine makes the rebind fail) and stay
// idempotent.
func TestStartDebugServerLifecycle(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_lifecycle_test_total", "test counter").Add(7)

	addr, stop, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if want := "debug_lifecycle_test_total 7"; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q in:\n%s", want, body)
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must be free the moment stop returns: rebinding the same
	// address fails if the old listener leaked.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after shutdown: %v", err)
	}
	ln.Close()
	// And the server must actually be gone, not just re-listenable.
	client := &http.Client{Timeout: 250 * time.Millisecond}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after shutdown")
	}
	// Idempotent: a second stop is a no-op, not a double-close error.
	if err := stop(); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
