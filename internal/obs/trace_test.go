package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTraceSchema validates that the exported JSON matches the Chrome
// trace-event format: a traceEvents array whose spans carry name, ph,
// ts, dur, pid, tid.
func TestTraceSchema(t *testing.T) {
	tr := NewTraceRecorder()
	tr.SetThreadName(0, "worker 0")
	base := time.Now()
	tr.Span("stream-triad/carve-low", "cell", 0, base, base.Add(5*time.Millisecond),
		map[string]any{"cached": false, "cycles": uint64(1234)})
	tr.Span("stream-copy/none", "cell", 1, base.Add(time.Millisecond), base.Add(2*time.Millisecond), nil)
	tr.Counter("engine", map[string]float64{"done": 2, "failed": 0})

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, counters, meta int
	for _, e := range doc.TraceEvents {
		if e.TS == nil && e.Ph != "M" {
			t.Errorf("event %q has no ts", e.Name)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Errorf("span %q has negative dur %v", e.Name, e.Dur)
			}
			if e.Name == "" {
				t.Error("span without a name")
			}
		case "C":
			counters++
			if e.Args["done"] != 2.0 {
				t.Errorf("counter args = %v", e.Args)
			}
		case "M":
			meta++
			if e.Args["name"] != "worker 0" {
				t.Errorf("thread metadata args = %v", e.Args)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 2 || counters != 1 || meta != 1 {
		t.Errorf("spans=%d counters=%d meta=%d, want 2/1/1", spans, counters, meta)
	}
	// Span args survive the round trip.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "stream-triad/carve-low" {
			if e.Args["cycles"] != 1234.0 {
				t.Errorf("span args = %v", e.Args)
			}
			if e.Dur < 4999 || e.Dur > 5001 {
				t.Errorf("span dur = %vµs, want ~5000", e.Dur)
			}
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *TraceRecorder
	tr.Span("x", "", 0, time.Now(), time.Now(), nil)
	tr.Counter("x", nil)
	tr.SetThreadName(0, "w")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil recorder must be a no-op")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTraceRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := time.Now()
				tr.Span("s", "cell", w, now, now, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("len = %d, want %d", tr.Len(), 8*200)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace export is not valid JSON")
	}
}

func TestEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTraceRecorder().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("empty trace must still carry a traceEvents array: %s", buf.String())
	}
}
