package cvedata

import "testing"

func TestSeriesValid(t *testing.T) {
	s := Series()
	if len(s) != 13 {
		t.Fatalf("series length = %d, want 13 (2006–2018)", len(s))
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if s[0].Year != 2006 || s[len(s)-1].Year != 2018 {
		t.Error("year range wrong")
	}
}

func TestHeadlineShare(t *testing.T) {
	// The paper's framing: memory safety ≈ 70% of exploitable CVEs.
	for _, p := range Series() {
		if ms := p.MemorySafetyPct(); ms < 65 || ms > 72 {
			t.Errorf("%d: memory-safety share %.1f%% outside ~70%%", p.Year, ms)
		}
	}
}

func TestNonAdjacentTrend(t *testing.T) {
	s := Series()
	if !(s[len(s)-1].NonAdjacentPct > s[0].NonAdjacentPct) {
		t.Error("non-adjacent share must grow over time (the Figure 1 trend)")
	}
	if !(s[len(s)-1].AdjacentPct < s[0].AdjacentPct) {
		t.Error("adjacent share must shrink over time")
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := []Point{{2020, 10, 10, 10}}
	if Validate(bad) == nil {
		t.Error("shares not summing to 100 must fail")
	}
	bad = []Point{{2020, 10, 20, 70}}
	if Validate(bad) == nil {
		t.Error("memory-safety share far from 70% must fail")
	}
	bad = []Point{{2020, 40, 30, 30}, {2021, 45, 25, 30}}
	if Validate(bad) == nil {
		t.Error("shrinking non-adjacent share must fail")
	}
}
