package cvedata

import "fmt"

// Point is one year of the Figure 1 stacked series; the three shares sum
// to 100 (percent).
type Point struct {
	Year           int
	AdjacentPct    float64 // adjacent memory-safety bugs (classic overflows)
	NonAdjacentPct float64 // non-adjacent (attacker-displaced) bugs
	OtherPct       float64 // everything that is not a memory-safety issue
}

// MemorySafetyPct is the combined memory-safety share.
func (p Point) MemorySafetyPct() float64 { return p.AdjacentPct + p.NonAdjacentPct }

// Series returns the 2006–2018 breakdown. Values encode the figure's
// shape: ~70% memory safety throughout, with the adjacent share shrinking
// as mitigations (stack cookies, ASLR hardening) bite and the
// non-adjacent share growing — the trend that motivates large tags.
func Series() []Point {
	return []Point{
		{2006, 43, 26, 31},
		{2007, 42, 27, 31},
		{2008, 41, 28, 31},
		{2009, 40, 29, 31},
		{2010, 38, 31, 31},
		{2011, 36, 33, 31},
		{2012, 34, 35, 31},
		{2013, 32, 37, 31},
		{2014, 30, 39, 31},
		{2015, 27, 42, 31},
		{2016, 24, 45, 31},
		{2017, 21, 48, 31},
		{2018, 18, 51, 31},
	}
}

// Validate confirms the dataset's internal invariants: shares sum to
// 100%, memory safety stays near 70%, and non-adjacent grows
// monotonically (the Figure 1 trend IMT's large tags respond to).
func Validate(series []Point) error {
	prevNonAdj := -1.0
	for _, p := range series {
		if sum := p.AdjacentPct + p.NonAdjacentPct + p.OtherPct; sum < 99.9 || sum > 100.1 {
			return fmt.Errorf("cvedata: %d shares sum to %.1f", p.Year, sum)
		}
		if ms := p.MemorySafetyPct(); ms < 60 || ms > 80 {
			return fmt.Errorf("cvedata: %d memory-safety share %.1f%% outside the ~70%% regime", p.Year, ms)
		}
		if p.NonAdjacentPct < prevNonAdj {
			return fmt.Errorf("cvedata: non-adjacent share shrank at %d", p.Year)
		}
		prevNonAdj = p.NonAdjacentPct
	}
	return nil
}
