// Package cvedata reproduces Figure 1 of the paper: the breakdown of
// exploitable CVEs over time into adjacent memory-safety, non-adjacent
// memory-safety, and non-memory-safety classes. The paper derives the
// figure from slides 10 and 13 of Miller's BlueHat IL 2019 talk on
// Microsoft's vulnerability telemetry; the series below encodes the
// figure's headline structure — memory safety holding at roughly 70% of
// exploitable CVEs, with the non-adjacent share growing over time.
package cvedata
