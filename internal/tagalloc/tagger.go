package tagalloc

import "math/rand"

// Tagger selects lock tags for allocations.
type Tagger interface {
	// Name identifies the policy ("glibc" or "scudo").
	Name() string
	// NextTag picks a tag for a new object. leftTag is the tag of the
	// adjacent preceding object (hasLeft=false when there is none) and
	// objIndex is the allocation sequence number; Scudo uses them to
	// alternate parity, glibc ignores them.
	NextTag(rng *rand.Rand, leftTag uint64, hasLeft bool, objIndex int) uint64
	// NumTags is the number of distinct tags the policy can hand to any
	// single allocation (the denominator of the probabilistic guarantee).
	NumTags() int
}

// reservedLow and the all-ones tag are reserved, mirroring the two
// reserved tags of SPARC ADI assumed by the paper's evaluation.
const reservedLow = 0

// GlibcTagger assigns uniformly random tags from the 2^TS−2 non-reserved
// values, like the glibc malloc MTE support.
type GlibcTagger struct {
	TagBits int
}

// Name implements Tagger.
func (g GlibcTagger) Name() string { return "glibc" }

// NumTags implements Tagger: 2^TS − 2 (two reserved values).
func (g GlibcTagger) NumTags() int { return 1<<uint(g.TagBits) - 2 }

// NextTag implements Tagger.
func (g GlibcTagger) NextTag(rng *rand.Rand, _ uint64, _ bool, _ int) uint64 {
	reservedHigh := uint64(1)<<uint(g.TagBits) - 1
	for {
		t := rng.Uint64() & reservedHigh
		if t != reservedLow && t != reservedHigh {
			return t
		}
	}
}

// ScudoTagger assigns random tags whose parity alternates between adjacent
// objects: even-parity objects draw from the even tags (excluding the
// reserved 0), odd-parity objects from the odd tags (excluding the
// reserved all-ones). Adjacent objects therefore always differ — the 100%
// adjacent-overflow detection row of Table 1 — at the cost of halving the
// tag space against non-adjacent overflows.
type ScudoTagger struct {
	TagBits int
}

// Name implements Tagger.
func (s ScudoTagger) Name() string { return "scudo" }

// NumTags implements Tagger: 2^(TS−1) − 1 per parity class.
func (s ScudoTagger) NumTags() int { return 1<<uint(s.TagBits-1) - 1 }

// NextTag implements Tagger.
func (s ScudoTagger) NextTag(rng *rand.Rand, leftTag uint64, hasLeft bool, objIndex int) uint64 {
	wantOdd := objIndex%2 == 1
	if hasLeft {
		// Alternate against the actual left neighbor: this is what makes
		// adjacency detection deterministic even after frees and reuse.
		wantOdd = leftTag&1 == 0
	}
	reservedHigh := uint64(1)<<uint(s.TagBits) - 1
	for {
		t := rng.Uint64() & reservedHigh
		if t&1 == 1 != wantOdd {
			t ^= 1
		}
		if t != reservedLow && t != reservedHigh {
			return t
		}
	}
}
