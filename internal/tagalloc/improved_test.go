package tagalloc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/imt"
)

func detAlloc(t *testing.T, tagBits int) *Allocator {
	t.Helper()
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(mem, nil, &DeterministicTagger{TagBits: tagBits}, 0x10000, 1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDeterministicAllLiveTagsDistinct(t *testing.T) {
	// §7.3: deterministic detection while live allocations ≤ NumTags —
	// every pair of live objects must differ, not just with probability
	// 1−1/NumTags.
	a := detAlloc(t, 6) // 62 usable tags
	cfg := a.Memory().Config()
	var ptrs []imt.Pointer
	for i := 0; i < 62; i++ {
		p, err := a.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	seen := map[uint64]bool{}
	for _, p := range ptrs {
		tag := cfg.KeyTag(p)
		if seen[tag] {
			t.Fatalf("duplicate live tag %#x — deterministic guarantee broken", tag)
		}
		seen[tag] = true
	}
	// Every cross-object overflow is therefore detected.
	for i := 0; i < 10; i++ {
		victim, target := ptrs[i], ptrs[61-i]
		displacement := int64(cfg.Addr(target) - cfg.Addr(victim))
		_, err := a.Memory().Read(cfg.WithOffset(victim, displacement), 1)
		var f *imt.Fault
		if !errors.As(err, &f) {
			t.Fatalf("overflow %d→%d undetected under deterministic tagging", i, 61-i)
		}
	}
}

func TestDeterministicRecyclesOnFree(t *testing.T) {
	a := detAlloc(t, 6)
	dt := a.Tagger().(*DeterministicTagger)
	var ptrs []imt.Pointer
	for i := 0; i < 30; i++ {
		p, err := a.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free draws a quarantine tag and releases the live one: live count
	// stays bounded by allocations + quarantined slots.
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if dt.Saturated != 0 {
		t.Fatalf("pool saturated unexpectedly: %d", dt.Saturated)
	}
	// Churn well past the tag count: recycling must keep the pool alive.
	for i := 0; i < 300; i++ {
		p, err := a.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if dt.Saturated != 0 {
		t.Fatalf("recycling failed: %d saturated draws over churn", dt.Saturated)
	}
}

func TestDeterministicSaturationFallback(t *testing.T) {
	d := &DeterministicTagger{TagBits: 4} // 14 usable tags
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 14; i++ {
		tag := d.NextTag(rng, 0, false, i)
		if seen[tag] {
			t.Fatalf("pool handed out duplicate %#x", tag)
		}
		seen[tag] = true
	}
	if d.LiveTags() != 14 {
		t.Fatalf("LiveTags = %d", d.LiveTags())
	}
	// Pool dry: falls back to random, never reserved, never left neighbor.
	for i := 0; i < 200; i++ {
		tag := d.NextTag(rng, 0x5, true, i)
		if tag == 0 || tag == 0xF || tag == 0x5 {
			t.Fatalf("saturated draw returned invalid tag %#x", tag)
		}
	}
	if d.Saturated != 200 {
		t.Fatalf("Saturated = %d", d.Saturated)
	}
	d.Release(0x3)
	if d.LiveTags() != 13 {
		t.Fatalf("LiveTags after release = %d", d.LiveTags())
	}
	if (&DeterministicTagger{TagBits: 4}).Name() != "deterministic" {
		t.Error("name wrong")
	}
}

func TestGenerationTaggerUAFWindow(t *testing.T) {
	// §7.3: a dangling pointer faults until the slot's generation wraps —
	// NumTags reallocations, deterministically.
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	gt := &GenerationTagger{TagBits: 4} // tiny window (14) so the test can wrap it
	a, err := New(mem, nil, gt, 0x20000, 1<<16, 3)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mem.Config()
	base := cfg.Addr(p0)
	if err := a.Free(p0); err != nil {
		t.Fatal(err)
	}
	// Reallocate the same slot repeatedly; the stale p0 must fault for
	// every generation except when the cycle returns to p0's tag.
	faults, aliases := 0, 0
	for i := 0; i < 40; i++ {
		q, err := a.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Addr(q) != base {
			t.Fatal("expected slot reuse")
		}
		if _, err := mem.Read(p0, 1); err != nil {
			faults++
		} else {
			aliases++
		}
		if err := a.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	if aliases == 0 {
		t.Fatal("generation cycle should eventually revisit the stale tag (period 14)")
	}
	if faults < 30 {
		t.Fatalf("faults = %d, want the vast majority of the window", faults)
	}
	// The generation counter advanced twice per malloc/free cycle.
	if gt.Generation(base) == 0 {
		t.Fatal("generation not tracked")
	}
	if gt.Name() != "generation" {
		t.Error("name wrong")
	}
}

func TestGenerationTaggerDeterministicSequence(t *testing.T) {
	g := &GenerationTagger{TagBits: 15}
	first := g.TagFor(0x40)
	second := g.TagFor(0x40)
	other := g.TagFor(0x80)
	if first == second {
		t.Error("generations must advance per slot")
	}
	if other != first {
		t.Error("distinct slots start from the same generation baseline")
	}
	// NextTag interface path derives a slot from the object index.
	if g.NextTag(nil, 0, false, 7) == 0 {
		t.Error("interface path returned reserved tag")
	}
}
