package tagalloc

import "math/rand"

// This file implements the §7.3 future-work direction: allocators that
// exploit IMT's large tag space for guarantees random retagging cannot
// give. "A modified allocator might guarantee deterministic detection up
// to a certain number of live allocations, or guarantee use-after-free
// detection until a memory location is reallocated a certain number of
// times" — these are those two allocators.

// DeterministicTagger guarantees that any two of the first NumTags live
// allocations carry DIFFERENT tags: overflows between them are detected
// with probability 1, not 1−1/NumTags. It hands out tags round-robin
// from a free pool, recycling a tag only when its holder is freed; once
// more objects are live than tags exist, it degrades gracefully to
// random assignment for the excess (tracked in Saturated).
//
// With IMT-16's 32766 usable tags, a GPU program with ≤32766 live
// allocations gets fully deterministic spatial detection — a guarantee
// no 4-bit industry scheme can offer at any allocation count.
type DeterministicTagger struct {
	TagBits int

	free      []uint64
	initOnce  bool
	Saturated uint64 // allocations served after the pool ran dry
}

// Name implements Tagger.
func (d *DeterministicTagger) Name() string { return "deterministic" }

// NumTags implements Tagger.
func (d *DeterministicTagger) NumTags() int { return 1<<uint(d.TagBits) - 2 }

func (d *DeterministicTagger) init() {
	if d.initOnce {
		return
	}
	d.initOnce = true
	hi := uint64(1)<<uint(d.TagBits) - 1
	d.free = make([]uint64, 0, hi-1)
	for t := uint64(1); t < hi; t++ { // 0 and all-ones reserved
		d.free = append(d.free, t)
	}
}

// NextTag implements Tagger: pop from the free pool, or fall back to
// random (never matching the left neighbor) when saturated.
func (d *DeterministicTagger) NextTag(rng *rand.Rand, leftTag uint64, hasLeft bool, _ int) uint64 {
	d.init()
	if n := len(d.free); n > 0 {
		t := d.free[n-1]
		d.free = d.free[:n-1]
		return t
	}
	d.Saturated++
	hi := uint64(1)<<uint(d.TagBits) - 1
	for {
		t := rng.Uint64() & hi
		if t == 0 || t == hi {
			continue
		}
		if hasLeft && t == leftTag {
			continue
		}
		return t
	}
}

// Release returns a tag to the pool when its allocation dies. The
// Allocator detects pool-based taggers through the internal releaser
// interface and calls this automatically on Free and slot reuse.
func (d *DeterministicTagger) Release(tag uint64) {
	d.init()
	d.free = append(d.free, tag)
}

// LiveTags reports how many tags are currently checked out.
func (d *DeterministicTagger) LiveTags() int {
	d.init()
	return d.NumTags() - len(d.free)
}

// GenerationTagger guarantees temporal safety for a bounded number of
// reuses: each heap slot carries a generation counter, and the slot's
// tag is a function of (slot, generation). A dangling pointer therefore
// faults deterministically until the SAME slot has been reallocated
// 2^TagBits/slots... more precisely, until the slot's generation wraps —
// the §7.3 "use-after-free detection until a memory location is
// reallocated a certain number of times" guarantee.
type GenerationTagger struct {
	TagBits int
	// generation per slot base address.
	gens map[uint64]uint64
}

// Name implements Tagger.
func (g *GenerationTagger) Name() string { return "generation" }

// NumTags implements Tagger: the per-slot guarantee window.
func (g *GenerationTagger) NumTags() int { return 1<<uint(g.TagBits) - 2 }

// NextTag implements Tagger. It needs the slot identity, which the
// Tagger interface does not carry, so the allocation path uses TagFor;
// NextTag exists for interface compatibility and derives a slot from the
// object index (used only in tag-level simulations).
func (g *GenerationTagger) NextTag(_ *rand.Rand, _ uint64, _ bool, objIndex int) uint64 {
	return g.TagFor(uint64(objIndex) * 64)
}

// TagFor returns the next-generation tag for a slot and advances its
// generation. Tags cycle through 1..2^TS−2 (0 and all-ones reserved), so
// a stale pointer to this slot keeps faulting until the slot has been
// reallocated NumTags times — the deterministic reuse window.
func (g *GenerationTagger) TagFor(slotBase uint64) uint64 {
	if g.gens == nil {
		g.gens = make(map[uint64]uint64)
	}
	gen := g.gens[slotBase]
	g.gens[slotBase] = gen + 1
	period := uint64(g.NumTags())
	return 1 + gen%period
}

// Generation reports how many times a slot has been (re)tagged.
func (g *GenerationTagger) Generation(slotBase uint64) uint64 {
	return g.gens[slotBase]
}
