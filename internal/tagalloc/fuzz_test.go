package tagalloc

import (
	"errors"
	"testing"

	"repro/internal/imt"
)

// FuzzAllocatorScript interprets an arbitrary byte string as a sequence
// of heap operations (malloc / free / write / read / stale access) and
// asserts the allocator+memory invariants hold for every interleaving:
// live pointers always work, freed pointers always fault, and internal
// accounting never diverges.
func FuzzAllocatorScript(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 3, 4})
	f.Add([]byte{4, 4, 4})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		mem, err := imt.NewMemory(imt.IMT16)
		if err != nil {
			t.Fatal(err)
		}
		drv := imt.NewDriver(mem)
		heap, err := New(mem, drv, ScudoTagger{TagBits: 15}, 0x100000, 1<<20, 99)
		if err != nil {
			t.Fatal(err)
		}

		var live []imt.Pointer
		var freed []imt.Pointer
		for i, op := range script {
			switch op % 5 {
			case 0: // malloc
				size := uint64(8 + int(op)*3%200)
				p, err := heap.Malloc(size)
				if err != nil {
					continue // heap exhaustion is legitimate
				}
				live = append(live, p)
			case 1: // free the oldest live pointer
				if len(live) == 0 {
					continue
				}
				p := live[0]
				live = live[1:]
				if err := heap.Free(p); err != nil {
					t.Fatalf("op %d: free of live pointer failed: %v", i, err)
				}
				freed = append(freed, p)
			case 2: // write through a live pointer
				if len(live) == 0 {
					continue
				}
				p := live[int(op)%len(live)]
				if err := mem.Write(p, []byte{op, op ^ 0xFF}); err != nil {
					t.Fatalf("op %d: write through live pointer faulted: %v", i, err)
				}
			case 3: // read through a live pointer
				if len(live) == 0 {
					continue
				}
				p := live[int(op)%len(live)]
				if _, err := mem.Read(p, 2); err != nil {
					t.Fatalf("op %d: read through live pointer faulted: %v", i, err)
				}
			case 4: // stale access must fault (until the slot is reused,
				// which the allocator may do — then the tag still differs)
				if len(freed) == 0 {
					continue
				}
				p := freed[int(op)%len(freed)]
				_, err := mem.Read(p, 1)
				var fault *imt.Fault
				if err == nil {
					t.Fatalf("op %d: stale pointer read succeeded", i)
				}
				if !errors.As(err, &fault) {
					t.Fatalf("op %d: stale read returned non-fault error %v", i, err)
				}
			}
		}
		if heap.LiveCount() != len(live) {
			t.Fatalf("live accounting: allocator %d vs script %d", heap.LiveCount(), len(live))
		}
		if drv.TrackedAllocations() < heap.LiveCount() {
			t.Fatal("driver lost reference-tag records")
		}
	})
}
