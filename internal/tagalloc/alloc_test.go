package tagalloc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/imt"
)

func newAlloc(t *testing.T, tagger Tagger) *Allocator {
	t.Helper()
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	drv := imt.NewDriver(mem)
	a, err := New(mem, drv, tagger, 0x10000, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMallocFreeRoundTrip(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	p, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 bytes round to 4 granules (128 bytes).
	objs := a.Objects()
	if len(objs) != 1 || objs[0].GranuleSize != 128 {
		t.Fatalf("objects = %+v", objs)
	}
	// Write and read through the tagged pointer.
	if err := a.Memory().Write(p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Memory().Read(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatal("data mismatch")
	}
	if a.LiveCount() != 1 {
		t.Fatal("LiveCount != 1")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.LiveCount() != 0 {
		t.Fatal("LiveCount after free != 0")
	}
}

func TestUseAfterFreeFaults(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Memory().Write(p, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// The freed region was retagged: the stale pointer must fault.
	_, err = a.Memory().Read(p, 1)
	var f *imt.Fault
	if !errors.As(err, &f) || f.Kind != imt.FaultTMM {
		t.Fatalf("UAF read: err = %v, want TMM fault", err)
	}
}

func TestAdjacentOverflowScudoAlwaysDetected(t *testing.T) {
	// Scudo's odd/even alternation guarantees adjacent objects differ, so
	// every adjacent overflow faults — the 100% rows of Table 1.
	for seed := int64(0); seed < 10; seed++ {
		mem, err := imt.NewMemory(imt.IMT16)
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(mem, nil, ScudoTagger{TagBits: 15}, 0x10000, 1<<20, seed)
		if err != nil {
			t.Fatal(err)
		}
		var ptrs []imt.Pointer
		for i := 0; i < 50; i++ {
			p, err := a.Malloc(32)
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		for i := 0; i+1 < len(ptrs); i++ {
			// Overflow one granule past the end of object i.
			over := mem.Config().WithOffset(ptrs[i], 32)
			_, err := mem.Read(over, 1)
			var f *imt.Fault
			if !errors.As(err, &f) || f.Kind != imt.FaultTMM {
				t.Fatalf("seed %d obj %d: adjacent overflow not detected (%v)", seed, i, err)
			}
		}
	}
}

func TestScudoParityAlternates(t *testing.T) {
	a := newAlloc(t, ScudoTagger{TagBits: 15})
	var prev *Object
	for i := 0; i < 40; i++ {
		if _, err := a.Malloc(32); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range a.Objects() {
		if prev != nil && prev.Base+prev.GranuleSize == o.Base {
			if prev.Tag&1 == o.Tag&1 {
				t.Fatalf("adjacent objects share parity: %#x and %#x", prev.Tag, o.Tag)
			}
		}
		oCopy := o
		prev = &oCopy
	}
}

func TestDoubleFreeAndBadFree(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	p, err := a.Malloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free must fail")
	}
	if err := a.Free(a.Memory().Config().MakePointer(0x20000, 1)); err == nil {
		t.Error("free of unallocated address must fail")
	}
	// Free through an interior pointer is rejected.
	q, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	inner := a.Memory().Config().WithOffset(q, 32)
	if err := a.Free(inner); err == nil {
		t.Error("interior free must fail")
	}
}

func TestFreeWithWrongTagRejected(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	p, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Memory().Config()
	forged := cfg.MakePointer(cfg.Addr(p), cfg.KeyTag(p)^1)
	if err := a.Free(forged); err == nil {
		t.Error("free with wrong key tag must fail")
	}
}

func TestSlotReuseGetsFreshTag(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	p1, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Memory().Config()
	base1, tag1 := cfg.Addr(p1), cfg.KeyTag(p1)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr(p2) != base1 {
		t.Fatal("expected slot reuse")
	}
	// With 2^15−2 tags a same-tag draw is ~0.003%: assert inequality with
	// this fixed seed.
	if cfg.KeyTag(p2) == tag1 {
		t.Error("reused slot drew the identical tag (astronomically unlikely with this seed)")
	}
	// The old pointer must not read the reused slot.
	if _, err := a.Memory().Read(p1, 1); err == nil {
		t.Error("stale pointer read the reused slot")
	}
}

func TestOutOfMemory(t *testing.T) {
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(mem, nil, GlibcTagger{TagBits: 15}, 0, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Malloc(96); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Malloc(64); err == nil {
		t.Error("allocation beyond the heap must fail")
	}
	if _, err := a.Malloc(0); err == nil {
		t.Error("zero-size allocation must fail")
	}
}

func TestFootprintBloat(t *testing.T) {
	a := newAlloc(t, GlibcTagger{TagBits: 15})
	// 16-byte objects on a 32B granule: 100% bloat.
	for i := 0; i < 10; i++ {
		if _, err := a.Malloc(16); err != nil {
			t.Fatal(err)
		}
	}
	if b := a.FootprintBloat(); b < 0.99 || b > 1.01 {
		t.Errorf("bloat = %v, want ~1.0", b)
	}
	// Large aligned objects: bloat shrinks toward zero.
	if _, err := a.Malloc(32 * 1000); err != nil {
		t.Fatal(err)
	}
	if b := a.FootprintBloat(); b > 0.01 {
		t.Errorf("bloat after large alloc = %v, want ~0", b)
	}
}

func TestTaggerTagRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tb := range []int{4, 9, 15} {
		g := GlibcTagger{TagBits: tb}
		if g.NumTags() != 1<<uint(tb)-2 {
			t.Errorf("glibc NumTags(%d) = %d", tb, g.NumTags())
		}
		s := ScudoTagger{TagBits: tb}
		if s.NumTags() != 1<<uint(tb-1)-1 {
			t.Errorf("scudo NumTags(%d) = %d", tb, s.NumTags())
		}
		hi := uint64(1)<<uint(tb) - 1
		for i := 0; i < 500; i++ {
			gt := g.NextTag(rng, 0, false, i)
			if gt == 0 || gt == hi || gt > hi {
				t.Fatalf("glibc tag %#x out of range (tb=%d)", gt, tb)
			}
			st := s.NextTag(rng, 0, false, i)
			if st == 0 || st == hi || st > hi {
				t.Fatalf("scudo tag %#x out of range (tb=%d)", st, tb)
			}
			if st&1 != uint64(i%2) {
				t.Fatalf("scudo parity wrong: index %d tag %#x", i, st)
			}
			// With a left neighbor, parity must oppose it regardless of index.
			even := s.NextTag(rng, 0x3, true, i)
			if even&1 != 0 {
				t.Fatalf("scudo did not oppose odd left neighbor: %#x", even)
			}
		}
	}
}

func TestTaggerNames(t *testing.T) {
	if (GlibcTagger{}).Name() != "glibc" || (ScudoTagger{}).Name() != "scudo" {
		t.Error("tagger names wrong")
	}
}

func TestMisalignedHeapRejected(t *testing.T) {
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mem, nil, GlibcTagger{TagBits: 15}, 0x10, 1<<10, 1); err == nil {
		t.Error("misaligned heap base must be rejected")
	}
	if _, err := New(mem, nil, GlibcTagger{TagBits: 15}, 0x20, 100, 1); err == nil {
		t.Error("misaligned heap size must be rejected")
	}
}

func TestPreciseDiagnosisOnOverflow(t *testing.T) {
	a := newAlloc(t, ScudoTagger{TagBits: 15})
	p1, err := a.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Malloc(32); err != nil {
		t.Fatal(err)
	}
	mem := a.Memory()
	drv := imt.NewDriver(mem)
	// Rebuild driver state from the allocator's object list.
	for _, o := range a.Objects() {
		if o.Live {
			if err := drv.RegisterAllocation(o.Base, o.GranuleSize, o.Tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	over := mem.Config().WithOffset(p1, 32)
	_, rerr := mem.Read(over, 1)
	var f *imt.Fault
	if !errors.As(rerr, &f) {
		t.Fatal("overflow did not fault")
	}
	diag := drv.Diagnose(*f)
	if diag.Kind != imt.DiagnosisTMM {
		t.Fatalf("diagnosis = %v, want TMM", diag.Kind)
	}
}

func TestConcurrentMallocFree(t *testing.T) {
	// Massively parallel per-thread allocation is the GPU use case §2.3
	// highlights; the allocator must be goroutine-safe.
	mem, err := imt.NewMemory(imt.IMT16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(mem, imt.NewDriver(mem), ScudoTagger{TagBits: 15}, 0, 1<<24, 7)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 60
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			for i := 0; i < rounds; i++ {
				p, err := a.Malloc(uint64(16 + (w+i)%200))
				if err != nil {
					errCh <- err
					return
				}
				if err := mem.Write(p, []byte{byte(w), byte(i)}); err != nil {
					errCh <- err
					return
				}
				got, err := mem.Read(p, 2)
				if err != nil || got[0] != byte(w) || got[1] != byte(i) {
					errCh <- err
					return
				}
				if i%2 == 0 {
					if err := a.Free(p); err != nil {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if got, want := a.LiveCount(), workers*rounds/2; got != want {
		t.Fatalf("live = %d, want %d", got, want)
	}
}
