// Package tagalloc implements the software side of memory tagging (§2.3):
// a heap allocator over an IMT-protected memory that tags granules on
// allocation and retags them on free, plus the two retagging policies the
// paper evaluates (§5.1):
//
//   - glibc-style: purely random tags for each allocation;
//   - Scudo-style (Android 11's default allocator): random tags constrained
//     to alternate odd/even between adjacent objects, so adjacent buffer
//     overflows are always detected.
//
// Two tag values are reserved (as with SPARC ADI), leaving 2^TS−2 usable
// tags for glibc-style tagging and 2^(TS−1)−1 per parity class for
// Scudo-style tagging — the "Num. Tags" rows of Table 1.
package tagalloc
