package tagalloc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/imt"
)

// Object describes one heap allocation.
type Object struct {
	Base uint64 // granule-aligned start address
	Size uint64 // requested size in bytes
	// GranuleSize is the footprint after rounding Size up to the tagging
	// granularity — the source of the paper's §5 footprint-bloat numbers.
	GranuleSize uint64
	Tag         uint64
	Live        bool
}

// Allocator is a tagging heap allocator over an IMT memory. It hands out
// tagged pointers, retags granules on allocation and free, and keeps the
// driver's reference-tag map in sync (enabling §4.3 precise diagnosis).
//
// Freed regions are retagged immediately with a fresh tag, so dangling
// pointers fault until the memory is reused by an allocation that happens
// to draw the old tag — the temporal-safety guarantee of memory tagging.
type Allocator struct {
	mu     sync.Mutex
	mem    *imt.Memory
	driver *imt.Driver
	tagger Tagger
	rng    *rand.Rand

	base, end, brk uint64
	objects        []*Object // sorted by Base; includes dead objects until reuse
	objCount       int

	// RequestedBytes and FootprintBytes accumulate live totals for bloat
	// accounting.
	RequestedBytes, FootprintBytes uint64
}

// New creates an allocator managing [heapBase, heapBase+heapSize). The
// driver may be nil if precise diagnosis is not needed.
func New(mem *imt.Memory, driver *imt.Driver, tagger Tagger, heapBase, heapSize uint64, seed int64) (*Allocator, error) {
	g := uint64(mem.Config().GranuleBytes)
	if heapBase%g != 0 || heapSize%g != 0 {
		return nil, fmt.Errorf("tagalloc: heap [%#x,+%#x) not %d-byte aligned", heapBase, heapSize, g)
	}
	return &Allocator{
		mem:    mem,
		driver: driver,
		tagger: tagger,
		rng:    rand.New(rand.NewSource(seed)),
		base:   heapBase,
		end:    heapBase + heapSize,
		brk:    heapBase,
	}, nil
}

// Memory returns the backing tagged memory.
func (a *Allocator) Memory() *imt.Memory { return a.mem }

// Tagger returns the retagging policy in use.
func (a *Allocator) Tagger() Tagger { return a.tagger }

// releaser is an optional Tagger extension: taggers that maintain a
// checked-out tag pool (DeterministicTagger) reclaim tags here.
type releaser interface {
	Release(tag uint64)
}

// slotTagger is an optional Tagger extension: taggers whose tag is a
// function of the slot identity (GenerationTagger) implement it.
type slotTagger interface {
	TagFor(slotBase uint64) uint64
}

// chooseTag picks a tag for the object at base, honoring slot-aware
// taggers.
func (a *Allocator) chooseTag(base uint64, leftTag uint64, hasLeft bool) uint64 {
	if st, ok := a.tagger.(slotTagger); ok {
		return st.TagFor(base)
	}
	return a.tagger.NextTag(a.rng, leftTag, hasLeft, a.objCount)
}

// granules rounds size up to whole granules.
func (a *Allocator) granules(size uint64) uint64 {
	g := uint64(a.mem.Config().GranuleBytes)
	return (size + g - 1) / g * g
}

// Malloc allocates size bytes and returns a pointer carrying the object's
// key tag. The backing granules are retagged to the new lock tag.
func (a *Allocator) Malloc(size uint64) (imt.Pointer, error) {
	if size == 0 {
		return 0, fmt.Errorf("tagalloc: zero-size allocation")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	footprint := a.granules(size)

	// First fit over dead objects whose footprint fits, else bump.
	var obj *Object
	for _, o := range a.objects {
		if !o.Live && o.GranuleSize >= footprint {
			obj = o
			break
		}
	}
	if obj == nil {
		if a.brk+footprint > a.end {
			return 0, fmt.Errorf("tagalloc: out of memory (%d bytes requested, %d free)", size, a.end-a.brk)
		}
		obj = &Object{Base: a.brk, GranuleSize: footprint}
		a.brk += footprint
		i := sort.Search(len(a.objects), func(i int) bool { return a.objects[i].Base >= obj.Base })
		a.objects = append(a.objects, nil)
		copy(a.objects[i+1:], a.objects[i:])
		a.objects[i] = obj
	}

	obj.Size = size
	reused := obj.Live == false && obj.Tag != 0
	obj.Live = true
	leftTag, hasLeft := a.leftNeighborTag(obj.Base)
	oldTag := obj.Tag
	obj.Tag = a.chooseTag(obj.Base, leftTag, hasLeft)
	if rel, ok := a.tagger.(releaser); ok && reused {
		// Reclaim the quarantine tag of the slot being reused — after the
		// new draw, so a LIFO pool cannot hand the stale tag straight back.
		rel.Release(oldTag)
	}
	a.objCount++

	g := uint64(a.mem.Config().GranuleBytes)
	for off := uint64(0); off < obj.GranuleSize; off += g {
		if err := a.mem.Retag(obj.Base+off, obj.Tag); err != nil {
			return 0, err
		}
	}
	if a.driver != nil {
		// A reused slot is still registered; refresh its tag instead.
		if _, ok := a.driver.ReferenceTag(obj.Base); ok {
			if err := a.driver.UpdateTag(obj.Base, obj.Tag); err != nil {
				return 0, err
			}
		} else if err := a.driver.RegisterAllocation(obj.Base, obj.GranuleSize, obj.Tag); err != nil {
			return 0, err
		}
	}
	a.RequestedBytes += size
	a.FootprintBytes += obj.GranuleSize
	return a.mem.Config().MakePointer(obj.Base, obj.Tag), nil
}

// Free releases the allocation addressed by p. The pointer's key tag must
// match the object's current lock tag — a mismatched or double free is
// reported as an error. The granules are immediately retagged with a fresh
// tag so stale pointers fault.
func (a *Allocator) Free(p imt.Pointer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cfg := a.mem.Config()
	addr, key := cfg.Addr(p), cfg.KeyTag(p)
	obj := a.objectAt(addr)
	if obj == nil || obj.Base != addr {
		return fmt.Errorf("tagalloc: free of non-allocation address %#x", addr)
	}
	if !obj.Live {
		return fmt.Errorf("tagalloc: double free at %#x", addr)
	}
	if obj.Tag != key {
		return fmt.Errorf("tagalloc: free with stale key tag %#x (lock %#x) at %#x", key, obj.Tag, addr)
	}
	obj.Live = false
	a.RequestedBytes -= obj.Size
	a.FootprintBytes -= obj.GranuleSize

	// Quarantine retag: pick a fresh tag different from the old one so the
	// freed region is unreachable through stale pointers. The old tag is
	// released (for pool-based taggers) only after the quarantine draw.
	leftTag, hasLeft := a.leftNeighborTag(obj.Base)
	newTag := obj.Tag
	for attempts := 0; newTag == obj.Tag; attempts++ {
		newTag = a.chooseTag(obj.Base, leftTag, hasLeft)
		if attempts > 1<<16 {
			break // degenerate single-tag configurations
		}
	}
	if rel, ok := a.tagger.(releaser); ok {
		rel.Release(obj.Tag)
	}
	obj.Tag = newTag
	g := uint64(cfg.GranuleBytes)
	for off := uint64(0); off < obj.GranuleSize; off += g {
		if err := a.mem.Retag(obj.Base+off, newTag); err != nil {
			return err
		}
	}
	if a.driver != nil {
		if err := a.driver.UpdateTag(obj.Base, newTag); err != nil {
			return err
		}
	}
	return nil
}

// objectAt returns the object (live or dead) containing addr.
func (a *Allocator) objectAt(addr uint64) *Object {
	i := sort.Search(len(a.objects), func(i int) bool {
		return a.objects[i].Base+a.objects[i].GranuleSize > addr
	})
	if i < len(a.objects) && a.objects[i].Base <= addr {
		return a.objects[i]
	}
	return nil
}

// leftNeighborTag finds the tag of the object immediately preceding base.
func (a *Allocator) leftNeighborTag(base uint64) (uint64, bool) {
	i := sort.Search(len(a.objects), func(i int) bool { return a.objects[i].Base >= base })
	if i > 0 && a.objects[i-1].Base+a.objects[i-1].GranuleSize == base {
		return a.objects[i-1].Tag, true
	}
	return 0, false
}

// Objects returns a snapshot of all tracked objects in address order.
func (a *Allocator) Objects() []Object {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Object, len(a.objects))
	for i, o := range a.objects {
		out[i] = *o
	}
	return out
}

// LiveCount returns the number of live allocations.
func (a *Allocator) LiveCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, o := range a.objects {
		if o.Live {
			n++
		}
	}
	return n
}

// FootprintBloat returns the relative overhead of granule rounding for the
// currently live allocations: footprint/requested − 1. This is the
// quantity behind the paper's §5 "memory footprint bloat" discussion.
func (a *Allocator) FootprintBloat() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.RequestedBytes == 0 {
		return 0
	}
	return float64(a.FootprintBytes)/float64(a.RequestedBytes) - 1
}
