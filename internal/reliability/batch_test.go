package reliability

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

func testTargets(t *testing.T) []Target {
	t.Helper()
	var out []Target
	out = append(out, TargetECC(ecc.NewParity(32)))
	sec, err := ecc.NewSEC(32, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, TargetECC(sec))
	det, err := ecc.NewDetectOnly(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, TargetECC(det))
	h64, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, TargetECC(h64))
	aft, err := core.NewCode(64, 8, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, TargetAFT(aft))
	return out
}

// TestExhaustiveKBitMatchesScalar: the ClassifyRun-based enumeration is
// tally-exact against the scalar reference for every family.
func TestExhaustiveKBitMatchesScalar(t *testing.T) {
	for _, target := range testTargets(t) {
		if target.Engine() == nil {
			t.Fatalf("%s: no bitsliced engine", target.Name)
		}
		for k := 1; k <= 4; k++ {
			got, err := ExhaustiveKBit(target, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ExhaustiveKBitScalar(target, k)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s k=%d: bitsliced %+v != scalar %+v", target.Name, k, got, want)
			}
		}
	}
}

// TestRandomErrorsChunkSum: a 64k-injection campaign equals the sum of
// its chunks under any contiguous partition (including ragged,
// non-batch-aligned boundaries).
func TestRandomErrorsChunkSum(t *testing.T) {
	h64, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	target := TargetECC(h64)
	const trials = 65536
	const seed = 777
	whole := RandomErrors(target, trials, seed)
	if whole.Total != trials {
		t.Fatalf("total = %d, want %d", whole.Total, trials)
	}
	for _, cuts := range [][]int{
		{trials},
		{1, 63, 64, 65, 1000, trials - 1193},
		{32768, 32768},
		{17, 4096, 61423},
	} {
		var sum Tally
		off := 0
		for _, n := range cuts {
			sum = sum.sum(RandomErrorsOffset(target, n, seed, off))
			off += n
		}
		if off != trials {
			t.Fatalf("bad partition %v", cuts)
		}
		if sum != whole {
			t.Errorf("partition %v: sum %+v != whole %+v", cuts, sum, whole)
		}
	}
}

// TestRandomErrorsChunkSumEngineless: the partition contract holds for
// targets with no bitsliced engine — the scalar fallback replays the
// same per-batch SplitMix64 plane stream instead of reseeding per
// chunk, so it is also bit-identical to the engine path.
func TestRandomErrorsChunkSumEngineless(t *testing.T) {
	h64, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	engineBacked := TargetECC(h64)
	target := TargetECC(h64)
	target.eng = nil // simulate a code too wide for a class-table engine
	const trials = 10_000
	const seed = 99
	whole := RandomErrors(target, trials, seed)
	if whole.Total != trials {
		t.Fatalf("total = %d, want %d", whole.Total, trials)
	}
	if viaEngine := RandomErrors(engineBacked, trials, seed); whole != viaEngine {
		t.Errorf("scalar fallback %+v != engine path %+v", whole, viaEngine)
	}
	for _, cuts := range [][]int{
		{17, 4096, trials - 17 - 4096},
		{1, 63, 64, 65, trials - 193},
	} {
		var sum Tally
		off := 0
		for _, n := range cuts {
			sum = sum.sum(RandomErrorsOffset(target, n, seed, off))
			off += n
		}
		if sum != whole {
			t.Errorf("partition %v: sum %+v != whole %+v", cuts, sum, whole)
		}
	}
	// Worker independence rides on the same contract.
	base := RandomErrorsParallel(target, trials, 1, seed)
	for _, workers := range []int{3, 8} {
		if got := RandomErrorsParallel(target, trials, workers, seed); got != base {
			t.Errorf("workers=%d: %+v != workers=1 %+v", workers, got, base)
		}
	}
}

// TestRandomErrorsParallelWorkerIndependent: identical tallies for any
// worker count — the reproducibility contract SDCCurve now documents.
func TestRandomErrorsParallelWorkerIndependent(t *testing.T) {
	for _, target := range testTargets(t) {
		base := RandomErrorsParallel(target, 20_000, 1, 42)
		for _, workers := range []int{2, 3, 7, 8} {
			got := RandomErrorsParallel(target, 20_000, workers, 42)
			if got != base {
				t.Errorf("%s: workers=%d tally %+v != workers=1 %+v", target.Name, workers, got, base)
			}
		}
	}
}

// TestSDCCurveWorkersRegression pins workers=1 against workers=8 — the
// reproducibility footgun this PR removes (SDCCurve used to produce
// machine-dependent tallies via GOMAXPROCS).
func TestSDCCurveWorkersRegression(t *testing.T) {
	one, err := SDCCurveWorkers(64, 12, 20_000, 1234, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := SDCCurveWorkers(64, 12, 20_000, 1234, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(eight) {
		t.Fatalf("point count %d != %d", len(one), len(eight))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("R=%d: workers=1 %+v != workers=8 %+v", one[i].R, one[i], eight[i])
		}
	}
}

// TestSampledKBitDeterministicAndConserving: fixed seed → fixed tally;
// tally totals always equal the requested trials.
func TestSampledKBitDeterministicAndConserving(t *testing.T) {
	for _, target := range testTargets(t) {
		for _, k := range []int{1, 3, 4} {
			a, err := SampledKBit(target, k, 10_001, 9)
			if err != nil {
				t.Fatal(err)
			}
			b, err := SampledKBit(target, k, 10_001, 9)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s k=%d: same seed gave %+v then %+v", target.Name, k, a, b)
			}
			if a.Total != 10_001 {
				t.Errorf("%s k=%d: total %d != trials", target.Name, k, a.Total)
			}
			if a.CE+a.DUE+a.TMM+a.SDC > a.Total {
				t.Errorf("%s k=%d: outcome counts exceed total: %+v", target.Name, k, a)
			}
		}
	}
}

// TestSampledKBitMatchesScalarStatistically: the bitsliced sampler and
// the math/rand reference draw from the same distribution.
func TestSampledKBitMatchesScalarStatistically(t *testing.T) {
	aft, err := core.NewCode(64, 8, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := TargetAFT(aft)
	const trials = 200_000
	a, err := SampledKBit(target, 3, trials, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledKBitScalar(target, 3, trials, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{
		a.TMMRate() - b.TMMRate(),
		a.DERate() - b.DERate(),
		a.SDCRate() - b.SDCRate(),
	} {
		if math.Abs(d) > 0.01 {
			t.Errorf("samplers disagree beyond tolerance: %+v vs %+v", a, b)
		}
	}
}

// TestTagCorruptionsExhaustiveMatchesScalar: the tag-difference
// multiplicity enumeration is bit-identical to the full lock/key pair
// loop.
func TestTagCorruptionsExhaustiveMatchesScalar(t *testing.T) {
	for _, geom := range []struct{ k, r, ts int }{{64, 8, 5}, {256, 10, 9}} {
		c, err := core.NewCode(geom.k, geom.r, geom.ts, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := TagCorruptions(c, 0, 1)
		want := TagCorruptionsScalar(c, 0, 1)
		if got != want {
			t.Errorf("TS=%d: difference enumeration %+v != pair enumeration %+v", geom.ts, got, want)
		}
		space := uint64(1) << uint(geom.ts)
		if got.Total != space*(space-1) {
			t.Errorf("TS=%d: total %d != pair count %d", geom.ts, got.Total, space*(space-1))
		}
	}
}

// TestTagCorruptionsSampledDeterministic: sampled tag campaigns are a
// pure function of (code, limit, seed), and for a verified construction
// remain 100% TMM.
func TestTagCorruptionsSampledDeterministic(t *testing.T) {
	c, err := core.NewCode(256, 16, 15, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := TagCorruptions(c, 20_000, 42)
	b := TagCorruptions(c, 20_000, 42)
	if a != b {
		t.Fatalf("same seed gave %+v then %+v", a, b)
	}
	if a.Total != 20_000 || a.TMM != 20_000 {
		t.Fatalf("IMT-16 sampled tag corruptions must be all-TMM: %+v", a)
	}
}

// aliasingAFTCode builds a deliberately aliasing tagged code: the
// Equation 6 staircase with tag column 0 replaced by the code's first
// data column, so some tag mismatches decode as "correctable"
// single-bit data errors — the silent corruption AFT-ECC exists to rule
// out. core.Verify must flag the construction.
func aliasingAFTCode(t *testing.T, k, r, ts int) *core.Code {
	t.Helper()
	base, err := core.NewCode(k, r, ts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tag := base.TagMatrix()
	tag.SetCol(0, base.Column(ts)) // first data column
	c, err := core.NewCode(k, r, ts, core.Options{TagMatrix: tag, AllowAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	if p := core.Verify(c); p.SECPreserved {
		t.Fatal("construction was supposed to alias")
	}
	return c
}

// TestTagCorruptionsAliasingDifferential: on a deliberately aliasing
// construction, the sampled (bitsliced) tag campaign agrees with the
// scalar pair sampler in distribution and with the exhaustive
// enumeration, conserves its buckets, and reports the aliases as SDC —
// the silent-corruption events the engine path must never drop.
func TestTagCorruptionsAliasingDifferential(t *testing.T) {
	c := aliasingAFTCode(t, 256, 10, 9)
	exact := TagCorruptionsScalar(c, 0, 1)
	if exact.SDC == 0 {
		t.Fatal("aliasing construction must produce silent corruption exhaustively")
	}
	if gotEx := TagCorruptions(c, 0, 1); gotEx != exact {
		t.Errorf("exhaustive difference enumeration %+v != pair enumeration %+v", gotEx, exact)
	}

	const limit = 100_000
	got := TagCorruptions(c, limit, 7)
	if got.Total != limit {
		t.Fatalf("total %d != limit %d", got.Total, limit)
	}
	if got.CE+got.DUE+got.TMM+got.SDC != got.Total {
		t.Fatalf("buckets do not sum to total: %+v", got)
	}
	if got.SDC == 0 {
		t.Fatal("sampled engine path dropped the aliased lanes")
	}
	want := TagCorruptionsScalar(c, limit, 8)
	for name, d := range map[string]float64{
		"SDC vs scalar":     got.SDCRate() - want.SDCRate(),
		"TMM vs scalar":     got.TMMRate() - want.TMMRate(),
		"DE vs scalar":      got.DERate() - want.DERate(),
		"SDC vs exhaustive": got.SDCRate() - exact.SDCRate(),
	} {
		if math.Abs(d) > 0.01 {
			t.Errorf("%s: |Δ| = %v beyond tolerance (sampled %+v, scalar %+v, exhaustive %+v)",
				name, d, got, want, exact)
		}
	}
}

// TestRandomErrorsMatchesScalarStatistically: the SplitMix64 batched
// campaign agrees with the math/rand scalar reference in distribution
// and with the analytic SDC rate.
func TestRandomErrorsMatchesScalarStatistically(t *testing.T) {
	h64, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	target := TargetECC(h64)
	const trials = 500_000
	a := RandomErrors(target, trials, 1)
	b := RandomErrorsScalar(target, trials, 2)
	analytic := AnalyticRandomSDC(64, 8, ecc.SECDED)
	for name, d := range map[string]float64{
		"bitsliced vs scalar SDC": a.SDCRate() - b.SDCRate(),
		"bitsliced vs analytic":   a.SDCRate() - analytic,
		"bitsliced vs scalar DE":  a.DERate() - b.DERate(),
	} {
		if math.Abs(d) > 0.005 {
			t.Errorf("%s: |Δ| = %v beyond tolerance (%+v vs %+v)", name, d, a, b)
		}
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("no trials: want the vacuous interval [0,1], got [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("p=0.5 interval [%v,%v] must contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	// Extremes stay inside [0,1] and remain nondegenerate.
	lo, hi = Wilson(0, 1000, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.01 {
		t.Errorf("0/1000 interval [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(1000, 1000, 1.96)
	if hi != 1 || lo >= 1 || lo < 0.99 {
		t.Errorf("1000/1000 interval [%v,%v]", lo, hi)
	}
	// Width shrinks like 1/sqrt(n).
	lo1, hi1 := Wilson(100, 10_000, 1.96)
	lo2, hi2 := Wilson(10_000, 1_000_000, 1.96)
	if (hi2 - lo2) >= (hi1-lo1)/5 {
		t.Errorf("interval must tighten with n: n=1e4 width %v, n=1e6 width %v", hi1-lo1, hi2-lo2)
	}
}
