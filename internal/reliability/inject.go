package reliability

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/ecc"
)

// Outcome classifies a single injection.
type Outcome uint8

const (
	// OutcomeOK: zero error, zero syndrome (only from the empty pattern).
	OutcomeOK Outcome = iota
	// OutcomeCE: a single-bit error corrected to the right bit.
	OutcomeCE
	// OutcomeDUE: detected uncorrectable error.
	OutcomeDUE
	// OutcomeTMM: detected, but attributed to a tag mismatch (for data
	// errors this is the misattribution risk of §3.6 — still detected).
	OutcomeTMM
	// OutcomeSDC: silent data corruption — a zero syndrome from a nonzero
	// error, or a miscorrection (syndrome matched the wrong column).
	OutcomeSDC
)

// Tally accumulates injection outcomes.
type Tally struct {
	Total, CE, DUE, TMM, SDC uint64
}

// DE returns detected errors: DUEs plus TMM-attributed detections.
func (t Tally) DE() uint64 { return t.DUE + t.TMM }

// Rate helpers return fractions of Total (0 when Total is 0).
func (t Tally) rate(x uint64) float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(x) / float64(t.Total)
}

// CERate is the corrected fraction.
func (t Tally) CERate() float64 { return t.rate(t.CE) }

// DERate is the detected fraction (DUE + TMM).
func (t Tally) DERate() float64 { return t.rate(t.DE()) }

// TMMRate is the fraction detected via tag-mismatch attribution.
func (t Tally) TMMRate() float64 { return t.rate(t.TMM) }

// SDCRate is the silent-corruption fraction.
func (t Tally) SDCRate() float64 { return t.rate(t.SDC) }

func (t Tally) String() string {
	return fmt.Sprintf("total=%d CE=%.4f%% DE=%.4f%% (TMM=%.4f%%) SDC=%.4f%%",
		t.Total, 100*t.CERate(), 100*t.DERate(), 100*t.TMMRate(), 100*t.SDCRate())
}

// Target is an injectable decoder: N physical bit positions, their H
// columns, and a syndrome classification table.
type Target struct {
	Name  string
	NPhys int
	R     int
	cols  []uint64
	// class maps each of the 2^R syndromes to its decode class.
	class []synClass
}

type synClass uint8

const (
	classZero synClass = iota
	classCorrectable
	classTag
	classOther
)

// TargetECC wraps an untagged linear code for injection.
func TargetECC(c *ecc.Code) Target {
	t := Target{Name: c.Name(), NPhys: c.N(), R: c.R()}
	t.cols = make([]uint64, t.NPhys)
	for i := range t.cols {
		t.cols[i] = c.Column(i)
	}
	t.class = make([]synClass, 1<<uint(c.R()))
	t.class[0] = classZero
	for s := uint64(1); s < uint64(len(t.class)); s++ {
		if _, ok := c.CorrectableSyndrome(s); ok {
			t.class[s] = classCorrectable
		} else {
			t.class[s] = classOther
		}
	}
	return t
}

// TargetAFT wraps an AFT-ECC code for physical (data+check) injection.
// Injections model data errors under matching key/lock tags, so the tag
// contributions cancel and only the physical columns matter; syndromes in
// the tag column space classify as TMM.
func TargetAFT(c *core.Code) Target {
	t := Target{Name: c.String(), NPhys: c.PhysicalBits(), R: c.R()}
	t.cols = make([]uint64, t.NPhys)
	for i := range t.cols {
		t.cols[i] = c.Column(c.TS() + i)
	}
	t.class = make([]synClass, 1<<uint(c.R()))
	t.class[0] = classZero
	for s := uint64(1); s < uint64(len(t.class)); s++ {
		switch {
		case correctableAFT(c, s):
			t.class[s] = classCorrectable
		case isTagSyn(c, s):
			t.class[s] = classTag
		default:
			t.class[s] = classOther
		}
	}
	return t
}

func correctableAFT(c *core.Code, s uint64) bool {
	res := c.DecodeSyndrome(s, 0)
	return res.Status == core.StatusCorrected
}

func isTagSyn(c *core.Code, s uint64) bool {
	_, ok := c.IsTagSyndrome(s)
	return ok
}

// classify maps (syndrome, error weight) to an outcome.
func (t Target) classify(s uint64, weight int) Outcome {
	switch t.class[s] {
	case classZero:
		if weight == 0 {
			return OutcomeOK
		}
		return OutcomeSDC
	case classCorrectable:
		if weight == 1 {
			return OutcomeCE
		}
		return OutcomeSDC // miscorrection of a multi-bit error
	case classTag:
		return OutcomeTMM
	default:
		return OutcomeDUE
	}
}

// Add returns the tally with one outcome accumulated.
func (t Tally) Add(o Outcome) Tally {
	t.Total++
	switch o {
	case OutcomeCE:
		t.CE++
	case OutcomeDUE:
		t.DUE++
	case OutcomeTMM:
		t.TMM++
	case OutcomeSDC:
		t.SDC++
	}
	return t
}

// ExhaustiveKBit enumerates every k-bit error pattern (k in 1..4) over the
// target's physical bits, classifying each. The paper evaluates these
// patterns exhaustively; C(272,4) ≈ 2.3e8 patterns run in a few seconds
// thanks to incremental syndrome updates.
func ExhaustiveKBit(t Target, k int) (Tally, error) {
	var tally Tally
	n := t.NPhys
	switch k {
	case 1:
		for i := 0; i < n; i++ {
			tally = tally.Add(t.classify(t.cols[i], 1))
		}
	case 2:
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				tally = tally.Add(t.classify(si^t.cols[j], 2))
			}
		}
	case 3:
		// Hot loop: count outcomes via the class array directly.
		var zero, corr, tag uint64
		var total uint64
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				sij := si ^ t.cols[j]
				for l := j + 1; l < n; l++ {
					s := sij ^ t.cols[l]
					total++
					switch t.class[s] {
					case classZero:
						zero++
					case classCorrectable:
						corr++
					case classTag:
						tag++
					}
				}
			}
		}
		tally = Tally{Total: total, SDC: zero + corr, TMM: tag, DUE: total - zero - corr - tag}
	case 4:
		var zero, corr, tag uint64
		var total uint64
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				sij := si ^ t.cols[j]
				for l := j + 1; l < n; l++ {
					sijl := sij ^ t.cols[l]
					for m := l + 1; m < n; m++ {
						s := sijl ^ t.cols[m]
						total++
						switch t.class[s] {
						case classZero:
							zero++
						case classCorrectable:
							corr++
						case classTag:
							tag++
						}
					}
				}
			}
		}
		tally = Tally{Total: total, SDC: zero + corr, TMM: tag, DUE: total - zero - corr - tag}
	default:
		return Tally{}, fmt.Errorf("reliability: ExhaustiveKBit supports k in [1,4], got %d", k)
	}
	return tally, nil
}

// SampledKBit estimates the k-bit tally from `trials` uniformly sampled
// k-subsets — used when exhaustive enumeration is too expensive for the
// caller's budget.
func SampledKBit(t Target, k, trials int, seed int64) (Tally, error) {
	if k < 1 || k > t.NPhys {
		return Tally{}, fmt.Errorf("reliability: k=%d out of range", k)
	}
	rng := rand.New(rand.NewSource(seed))
	var tally Tally
	idx := make([]int, k)
	for trial := 0; trial < trials; trial++ {
		// Floyd's algorithm for a uniform k-subset.
		chosen := make(map[int]bool, k)
		for i := t.NPhys - k; i < t.NPhys; i++ {
			j := rng.Intn(i + 1)
			if chosen[j] {
				j = i
			}
			chosen[j] = true
		}
		idx = idx[:0]
		var s uint64
		for b := range chosen {
			idx = append(idx, b)
			s ^= t.cols[b]
		}
		tally = tally.Add(t.classify(s, k))
	}
	return tally, nil
}

// RandomErrors injects `trials` uniformly random error patterns (each bit
// flipped with probability ½ — the paper's "random data corruption",
// equivalent to replacing the codeword with random bits). Per §3.6 /
// Table 2, this also models a simultaneous tag mismatch plus data error.
func RandomErrors(t Target, trials int, seed int64) Tally {
	rng := rand.New(rand.NewSource(seed))
	var tally Tally
	words := (t.NPhys + 63) / 64
	for trial := 0; trial < trials; trial++ {
		var s uint64
		weight := 0
		for w := 0; w < words; w++ {
			word := rng.Uint64()
			if w == words-1 && t.NPhys%64 != 0 {
				word &= 1<<uint(t.NPhys%64) - 1
			}
			weight += bits.OnesCount64(word)
			base := w * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				s ^= t.cols[base+b]
				word &= word - 1
			}
		}
		tally = tally.Add(t.classify(s, weight))
	}
	return tally
}

// TagCorruptions verifies the alias-free guarantee by decoding every (or,
// above `limit` pairs, a sampled set of) lock/key mismatches with no data
// error. For a correct AFT-ECC construction the result is 100% TMM.
func TagCorruptions(c *core.Code, limit int, seed int64) Tally {
	var tally Tally
	space := uint64(1) << uint(c.TS())
	if total := space * (space - 1); limit <= 0 || uint64(limit) >= total {
		for lock := uint64(0); lock < space; lock++ {
			for key := uint64(0); key < space; key++ {
				if key == lock {
					continue
				}
				s := c.TagSyndrome(lock) ^ c.TagSyndrome(key)
				tally = tally.Add(classifyTagOnly(c, s))
			}
		}
		return tally
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < limit; trial++ {
		lock := rng.Uint64() & c.TagMask()
		key := rng.Uint64() & c.TagMask()
		for key == lock {
			key = rng.Uint64() & c.TagMask()
		}
		s := c.TagSyndrome(lock) ^ c.TagSyndrome(key)
		tally = tally.Add(classifyTagOnly(c, s))
	}
	return tally
}

func classifyTagOnly(c *core.Code, s uint64) Outcome {
	res := c.DecodeSyndrome(s, 0)
	switch res.Status {
	case core.StatusTMM:
		return OutcomeTMM
	case core.StatusDUE:
		return OutcomeDUE
	case core.StatusCorrected:
		return OutcomeSDC // a tag mismatch flipping a data bit would be silent corruption
	default:
		return OutcomeSDC // undetected mismatch: the alias the construction forbids
	}
}

// newRand builds the package's deterministic RNG (wrapped for reuse by
// the pattern injectors).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomErrorsParallel splits a random-corruption campaign across
// workers (deterministic per-worker seeds, tallies summed). Use for
// paper-scale (1e8) trial counts.
func RandomErrorsParallel(t Target, trials, workers int, seed int64) Tally {
	if workers < 2 || trials < workers {
		return RandomErrors(t, trials, seed)
	}
	tallies := make([]Tally, workers)
	var wg sync.WaitGroup
	per := trials / workers
	for w := 0; w < workers; w++ {
		n := per
		if w == workers-1 {
			n = trials - per*(workers-1)
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			tallies[w] = RandomErrors(t, n, seed+int64(w)*7919)
		}(w, n)
	}
	wg.Wait()
	var sum Tally
	for _, x := range tallies {
		sum.Total += x.Total
		sum.CE += x.CE
		sum.DUE += x.DUE
		sum.TMM += x.TMM
		sum.SDC += x.SDC
	}
	return sum
}
