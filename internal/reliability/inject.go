package reliability

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/ecc/bitslice"
)

// Outcome classifies a single injection.
type Outcome uint8

const (
	// OutcomeOK: zero error, zero syndrome (only from the empty pattern).
	OutcomeOK Outcome = iota
	// OutcomeCE: a single-bit error corrected to the right bit.
	OutcomeCE
	// OutcomeDUE: detected uncorrectable error.
	OutcomeDUE
	// OutcomeTMM: detected, but attributed to a tag mismatch (for data
	// errors this is the misattribution risk of §3.6 — still detected).
	OutcomeTMM
	// OutcomeSDC: silent data corruption — a zero syndrome from a nonzero
	// error, or a miscorrection (syndrome matched the wrong column).
	OutcomeSDC
)

// Tally accumulates injection outcomes.
type Tally struct {
	Total, CE, DUE, TMM, SDC uint64
}

// DE returns detected errors: DUEs plus TMM-attributed detections.
func (t Tally) DE() uint64 { return t.DUE + t.TMM }

// Rate helpers return fractions of Total (0 when Total is 0).
func (t Tally) rate(x uint64) float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(x) / float64(t.Total)
}

// CERate is the corrected fraction.
func (t Tally) CERate() float64 { return t.rate(t.CE) }

// DERate is the detected fraction (DUE + TMM).
func (t Tally) DERate() float64 { return t.rate(t.DE()) }

// TMMRate is the fraction detected via tag-mismatch attribution.
func (t Tally) TMMRate() float64 { return t.rate(t.TMM) }

// SDCRate is the silent-corruption fraction.
func (t Tally) SDCRate() float64 { return t.rate(t.SDC) }

func (t Tally) String() string {
	return fmt.Sprintf("total=%d CE=%.4f%% DE=%.4f%% (TMM=%.4f%%) SDC=%.4f%%",
		t.Total, 100*t.CERate(), 100*t.DERate(), 100*t.TMMRate(), 100*t.SDCRate())
}

// sum accumulates another tally (all fields added).
func (t Tally) sum(o Tally) Tally {
	t.Total += o.Total
	t.CE += o.CE
	t.DUE += o.DUE
	t.TMM += o.TMM
	t.SDC += o.SDC
	return t
}

// fromCounts converts a bitsliced tally: OK lanes count toward Total
// only, exactly as OutcomeOK does in Tally.Add.
func fromCounts(c bitslice.Counts) Tally {
	return Tally{Total: c.Total, CE: c.CE, DUE: c.DUE, TMM: c.TMM, SDC: c.SDC}
}

// Target is an injectable decoder: N physical bit positions, their H
// columns, and a syndrome classification table. Construction also
// builds the bitsliced engine the batched campaigns run on.
type Target struct {
	Name  string
	NPhys int
	R     int
	cols  []uint64
	// class maps each of the 2^R syndromes to its decode class.
	class []bitslice.Class
	// eng is the bitsliced classifier over the same (cols, class) data;
	// nil only when R exceeds the engine's table bound, in which case
	// the campaigns fall back to their scalar reference paths.
	eng *bitslice.Engine
}

// Engine exposes the target's bitsliced classifier (nil when the code
// is too wide for a class table; see bitslice.New).
func (t Target) Engine() *bitslice.Engine { return t.eng }

// Columns returns the target's physical H columns (a copy).
func (t Target) Columns() []uint64 { return append([]uint64(nil), t.cols...) }

func (t *Target) attachEngine() {
	if eng, err := bitslice.New(t.R, t.cols, t.class); err == nil {
		t.eng = eng
	}
}

// TargetECC wraps an untagged linear code for injection.
func TargetECC(c *ecc.Code) Target {
	t := Target{Name: c.Name(), NPhys: c.N(), R: c.R()}
	t.cols = make([]uint64, t.NPhys)
	for i := range t.cols {
		t.cols[i] = c.Column(i)
	}
	t.class = make([]bitslice.Class, 1<<uint(c.R()))
	t.class[0] = bitslice.ClassZero
	for s := uint64(1); s < uint64(len(t.class)); s++ {
		if _, ok := c.CorrectableSyndrome(s); ok {
			t.class[s] = bitslice.ClassCorrectable
		} else {
			t.class[s] = bitslice.ClassOther
		}
	}
	t.attachEngine()
	return t
}

// TargetAFT wraps an AFT-ECC code for physical (data+check) injection.
// Injections model data errors under matching key/lock tags, so the tag
// contributions cancel and only the physical columns matter; syndromes in
// the tag column space classify as TMM.
func TargetAFT(c *core.Code) Target {
	t := Target{Name: c.String(), NPhys: c.PhysicalBits(), R: c.R()}
	t.cols = make([]uint64, t.NPhys)
	for i := range t.cols {
		t.cols[i] = c.Column(c.TS() + i)
	}
	t.class = make([]bitslice.Class, 1<<uint(c.R()))
	t.class[0] = bitslice.ClassZero
	for s := uint64(1); s < uint64(len(t.class)); s++ {
		switch {
		case correctableAFT(c, s):
			t.class[s] = bitslice.ClassCorrectable
		case isTagSyn(c, s):
			t.class[s] = bitslice.ClassTag
		default:
			t.class[s] = bitslice.ClassOther
		}
	}
	t.attachEngine()
	return t
}

func correctableAFT(c *core.Code, s uint64) bool {
	res := c.DecodeSyndrome(s, 0)
	return res.Status == core.StatusCorrected
}

func isTagSyn(c *core.Code, s uint64) bool {
	_, ok := c.IsTagSyndrome(s)
	return ok
}

// classify maps (syndrome, error weight) to an outcome.
func (t Target) classify(s uint64, weight int) Outcome {
	switch t.class[s] {
	case bitslice.ClassZero:
		if weight == 0 {
			return OutcomeOK
		}
		return OutcomeSDC
	case bitslice.ClassCorrectable:
		if weight == 1 {
			return OutcomeCE
		}
		return OutcomeSDC // miscorrection of a multi-bit error
	case bitslice.ClassTag:
		return OutcomeTMM
	default:
		return OutcomeDUE
	}
}

// Add returns the tally with one outcome accumulated.
func (t Tally) Add(o Outcome) Tally {
	t.Total++
	switch o {
	case OutcomeCE:
		t.CE++
	case OutcomeDUE:
		t.DUE++
	case OutcomeTMM:
		t.TMM++
	case OutcomeSDC:
		t.SDC++
	}
	return t
}

// ExhaustiveKBit enumerates every k-bit error pattern (k in 1..4) over
// the target's physical bits, classifying each. The paper evaluates
// these patterns exhaustively; the enumeration factors every pattern as
// (prefix of k−1 bits, run of final bits) and tallies each run through
// the bitsliced engine's ClassifyRun — tally-exact with respect to
// ExhaustiveKBitScalar (the differential suite asserts it).
func ExhaustiveKBit(t Target, k int) (Tally, error) {
	if t.eng == nil {
		return ExhaustiveKBitScalar(t, k)
	}
	eng := t.eng
	n := t.NPhys
	var c bitslice.Counts
	switch k {
	case 1:
		c = eng.ClassifyRun(0, 0, 0, n)
	case 2:
		for i := 0; i < n-1; i++ {
			c.Add(eng.ClassifyRun(t.cols[i], 1, i+1, n-i-1))
		}
	case 3:
		for i := 0; i < n-2; i++ {
			si := t.cols[i]
			for j := i + 1; j < n-1; j++ {
				c.Add(eng.ClassifyRun(si^t.cols[j], 2, j+1, n-j-1))
			}
		}
	case 4:
		for i := 0; i < n-3; i++ {
			si := t.cols[i]
			for j := i + 1; j < n-2; j++ {
				sij := si ^ t.cols[j]
				for l := j + 1; l < n-1; l++ {
					c.Add(eng.ClassifyRun(sij^t.cols[l], 3, l+1, n-l-1))
				}
			}
		}
	default:
		return Tally{}, fmt.Errorf("reliability: ExhaustiveKBit supports k in [1,4], got %d", k)
	}
	return fromCounts(c), nil
}

// ExhaustiveKBitScalar is the scalar reference enumeration, kept as the
// oracle the differential test battery holds ExhaustiveKBit to.
func ExhaustiveKBitScalar(t Target, k int) (Tally, error) {
	var tally Tally
	n := t.NPhys
	switch k {
	case 1:
		for i := 0; i < n; i++ {
			tally = tally.Add(t.classify(t.cols[i], 1))
		}
	case 2:
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				tally = tally.Add(t.classify(si^t.cols[j], 2))
			}
		}
	case 3:
		// Hot loop: count outcomes via the class array directly.
		var zero, corr, tag uint64
		var total uint64
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				sij := si ^ t.cols[j]
				for l := j + 1; l < n; l++ {
					s := sij ^ t.cols[l]
					total++
					switch t.class[s] {
					case bitslice.ClassZero:
						zero++
					case bitslice.ClassCorrectable:
						corr++
					case bitslice.ClassTag:
						tag++
					}
				}
			}
		}
		tally = Tally{Total: total, SDC: zero + corr, TMM: tag, DUE: total - zero - corr - tag}
	case 4:
		var zero, corr, tag uint64
		var total uint64
		for i := 0; i < n; i++ {
			si := t.cols[i]
			for j := i + 1; j < n; j++ {
				sij := si ^ t.cols[j]
				for l := j + 1; l < n; l++ {
					sijl := sij ^ t.cols[l]
					for m := l + 1; m < n; m++ {
						s := sijl ^ t.cols[m]
						total++
						switch t.class[s] {
						case bitslice.ClassZero:
							zero++
						case bitslice.ClassCorrectable:
							corr++
						case bitslice.ClassTag:
							tag++
						}
					}
				}
			}
		}
		tally = Tally{Total: total, SDC: zero + corr, TMM: tag, DUE: total - zero - corr - tag}
	default:
		return Tally{}, fmt.Errorf("reliability: ExhaustiveKBit supports k in [1,4], got %d", k)
	}
	return tally, nil
}

// SampledKBit estimates the k-bit tally from `trials` uniformly sampled
// k-subsets — used when exhaustive enumeration is too expensive for the
// caller's budget. Trials run bitsliced, 64 lanes per batch, each batch
// on its own SplitMix64 stream derived from (seed, batch index); the
// result is deterministic for a given seed, independent of callers'
// parallelism.
func SampledKBit(t Target, k, trials int, seed int64) (Tally, error) {
	if k < 1 || k > t.NPhys {
		return Tally{}, fmt.Errorf("reliability: k=%d out of range", k)
	}
	if t.eng == nil {
		return SampledKBitScalar(t, k, trials, seed)
	}
	eng := t.eng
	batch := eng.NewBatch()
	idx := make([]int, 0, k)
	var counts bitslice.Counts
	for done, bi := 0, uint64(0); done < trials; bi++ {
		batch.Reset()
		n := trials - done
		if n > 64 {
			n = 64
		}
		rng := bitslice.NewRand(bitslice.SeedForBatch(seed, bi))
		for lane := 0; lane < n; lane++ {
			// Floyd's algorithm for a uniform k-subset per lane.
			idx = idx[:0]
			for i := t.NPhys - k; i < t.NPhys; i++ {
				j := rng.Intn(i + 1)
				for _, prev := range idx {
					if prev == j {
						j = i
						break
					}
				}
				idx = append(idx, j)
				batch.Flip(lane, j)
			}
		}
		batch.SetLaneRange(0, n)
		counts.Add(eng.Classify(batch))
		done += n
	}
	return fromCounts(counts), nil
}

// SampledKBitScalar is the scalar reference sampler (math/rand based;
// its draws differ from SampledKBit's, so only distributions — not
// tallies — are comparable).
func SampledKBitScalar(t Target, k, trials int, seed int64) (Tally, error) {
	if k < 1 || k > t.NPhys {
		return Tally{}, fmt.Errorf("reliability: k=%d out of range", k)
	}
	rng := rand.New(rand.NewSource(seed))
	var tally Tally
	idx := make([]int, k)
	for trial := 0; trial < trials; trial++ {
		// Floyd's algorithm for a uniform k-subset.
		chosen := make(map[int]bool, k)
		for i := t.NPhys - k; i < t.NPhys; i++ {
			j := rng.Intn(i + 1)
			if chosen[j] {
				j = i
			}
			chosen[j] = true
		}
		idx = idx[:0]
		var s uint64
		for b := range chosen {
			idx = append(idx, b)
			s ^= t.cols[b]
		}
		tally = tally.Add(t.classify(s, k))
	}
	return tally, nil
}

// RandomErrors injects `trials` uniformly random error patterns (each bit
// flipped with probability ½ — the paper's "random data corruption",
// equivalent to replacing the codeword with random bits). Per §3.6 /
// Table 2, this also models a simultaneous tag mismatch plus data error.
//
// Trials occupy campaign positions [0, trials); see RandomErrorsOffset
// for the batch-splitting contract.
func RandomErrors(t Target, trials int, seed int64) Tally {
	return RandomErrorsOffset(t, trials, seed, 0)
}

// RandomErrorsOffset runs `trials` random injections occupying campaign
// positions [offset, offset+trials). Position p lives in lane p mod 64
// of batch p/64, and batch b's patterns come from the SplitMix64 stream
// SeedForBatch(seed, b) regardless of which positions are live — so for
// any partition of [0, n) into contiguous chunks, the chunk tallies sum
// exactly to RandomErrors(t, n, seed). The contract holds for every
// target: engineless (wide-code) targets run a scalar loop over the
// same per-batch plane stream. RandomErrorsParallel and the
// batch-splitting metamorphic tests are built on this contract.
func RandomErrorsOffset(t Target, trials int, seed int64, offset int) Tally {
	if trials <= 0 {
		return Tally{}
	}
	if t.eng == nil {
		return randomErrorsScalarOffset(t, trials, seed, offset)
	}
	eng := t.eng
	batch := eng.NewBatch()
	var counts bitslice.Counts
	pos, end := offset, offset+trials
	for pos < end {
		bi := pos / 64
		lo := pos - bi*64
		hi := 64
		if batchEnd := (bi + 1) * 64; batchEnd > end {
			hi = end - bi*64
		}
		rng := bitslice.NewRand(bitslice.SeedForBatch(seed, uint64(bi)))
		batch.Random(rng)
		batch.SetLaneRange(lo, hi)
		counts.Add(eng.Classify(batch))
		pos = bi*64 + hi
	}
	return fromCounts(counts)
}

// randomErrorsScalarOffset is the engineless fallback behind
// RandomErrorsOffset. It reproduces the engine path's batch layout
// exactly — batch b draws one plane word per physical bit from
// SeedForBatch(seed, b), just as Batch.Random does, and lane L's error
// pattern is bit L of each plane — so the chunk-sum/partition contract
// (and therefore RandomErrorsParallel's worker independence) holds even
// for targets too wide for a class-table engine.
func randomErrorsScalarOffset(t Target, trials int, seed int64, offset int) Tally {
	planes := make([]uint64, t.NPhys)
	var tally Tally
	pos, end := offset, offset+trials
	for pos < end {
		bi := pos / 64
		lo := pos - bi*64
		hi := 64
		if batchEnd := (bi + 1) * 64; batchEnd > end {
			hi = end - bi*64
		}
		rng := bitslice.NewRand(bitslice.SeedForBatch(seed, uint64(bi)))
		for i := range planes {
			planes[i] = rng.Uint64()
		}
		for lane := lo; lane < hi; lane++ {
			var s uint64
			weight := 0
			for i, p := range planes {
				if p>>uint(lane)&1 == 1 {
					s ^= t.cols[i]
					weight++
				}
			}
			tally = tally.Add(t.classify(s, weight))
		}
		pos = bi*64 + hi
	}
	return tally
}

// RandomErrorsScalar is the scalar reference implementation, kept as
// the oracle for the differential suite and the baseline for the
// injections/sec benchmark. Its math/rand stream differs from the
// bitsliced SplitMix64 stream, so tallies are comparable only in
// distribution.
func RandomErrorsScalar(t Target, trials int, seed int64) Tally {
	rng := rand.New(rand.NewSource(seed))
	var tally Tally
	words := (t.NPhys + 63) / 64
	for trial := 0; trial < trials; trial++ {
		var s uint64
		weight := 0
		for w := 0; w < words; w++ {
			word := rng.Uint64()
			if w == words-1 && t.NPhys%64 != 0 {
				word &= 1<<uint(t.NPhys%64) - 1
			}
			weight += bits.OnesCount64(word)
			base := w * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				s ^= t.cols[base+b]
				word &= word - 1
			}
		}
		tally = tally.Add(t.classify(s, weight))
	}
	return tally
}

// TagCorruptions verifies the alias-free guarantee by decoding every (or,
// above `limit` pairs, a sampled set of) lock/key mismatches with no data
// error. For a correct AFT-ECC construction the result is 100% TMM.
//
// The exhaustive path enumerates tag differences rather than pairs: by
// linearity the pair (lock, key) decodes as T·(lock⊕key), and every
// nonzero difference d arises from exactly 2^TS ordered pairs — so
// 2^TS−1 decodes with multiplicity 2^TS reproduce the pair enumeration
// bit-identically (TagCorruptionsScalar is the reference). The sampled
// path runs bitsliced over uniform nonzero tag differences.
func TagCorruptions(c *core.Code, limit int, seed int64) Tally {
	space := uint64(1) << uint(c.TS())
	if total := space * (space - 1); limit <= 0 || uint64(limit) >= total {
		var tally Tally
		for d := uint64(1); d < space; d++ {
			var one Tally
			one = one.Add(classifyTagOnly(c, c.TagSyndrome(d)))
			one.Total *= space
			one.CE *= space
			one.DUE *= space
			one.TMM *= space
			one.SDC *= space
			tally = tally.sum(one)
		}
		return tally
	}
	if eng := tagEngine(c); eng != nil {
		batch := eng.NewBatch()
		var counts bitslice.Counts
		for done, bi := 0, uint64(0); done < limit; bi++ {
			n := limit - done
			if n > 64 {
				n = 64
			}
			rng := bitslice.NewRand(bitslice.SeedForBatch(seed, bi))
			batch.RandomNonzero(rng)
			batch.SetLaneRange(0, n)
			counts.Add(eng.Classify(batch))
			done += n
		}
		// All lanes carry a nonzero tag difference, so aliased or
		// miscorrecting (ClassZero) lanes classify as SDC via the
		// engine's table-derived zero class; OK and CE cannot occur by
		// construction (no empty lanes, no ClassCorrectable entries) but
		// fold into SDC defensively so a table change can never drop
		// silent-corruption events.
		return Tally{Total: counts.Total, DUE: counts.DUE, TMM: counts.TMM,
			SDC: counts.SDC + counts.OK + counts.CE}
	}
	return TagCorruptionsScalar(c, limit, seed)
}

// TagCorruptionsScalar is the scalar pair-enumeration reference for
// TagCorruptions (exhaustive below `limit`, math/rand-sampled above).
func TagCorruptionsScalar(c *core.Code, limit int, seed int64) Tally {
	var tally Tally
	space := uint64(1) << uint(c.TS())
	if total := space * (space - 1); limit <= 0 || uint64(limit) >= total {
		for lock := uint64(0); lock < space; lock++ {
			for key := uint64(0); key < space; key++ {
				if key == lock {
					continue
				}
				s := c.TagSyndrome(lock) ^ c.TagSyndrome(key)
				tally = tally.Add(classifyTagOnly(c, s))
			}
		}
		return tally
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < limit; trial++ {
		lock := rng.Uint64() & c.TagMask()
		key := rng.Uint64() & c.TagMask()
		for key == lock {
			key = rng.Uint64() & c.TagMask()
		}
		s := c.TagSyndrome(lock) ^ c.TagSyndrome(key)
		tally = tally.Add(classifyTagOnly(c, s))
	}
	return tally
}

// tagEngine builds a bitsliced classifier over the TS tag columns with
// a class table matching classifyTagOnly: corrected tag aliases count
// as ClassZero — the engine's table-derived zero class puts every
// nonzero-difference lane of that class in SDC (the data-corrupting
// alias) — tag syndromes as TMM, the rest as DUE.
func tagEngine(c *core.Code) *bitslice.Engine {
	cols := make([]uint64, c.TS())
	for i := range cols {
		cols[i] = c.Column(i)
	}
	if c.R() > 24 {
		return nil
	}
	class := make([]bitslice.Class, 1<<uint(c.R()))
	for s := uint64(1); s < uint64(len(class)); s++ {
		switch {
		case correctableAFT(c, s):
			// StatusCorrected under a pure tag mismatch flips a data bit:
			// silent corruption for every nonzero difference, which is
			// exactly the aliasing-ClassZero semantics ClassifyMasks
			// implements.
			class[s] = bitslice.ClassZero
		case isTagSyn(c, s):
			class[s] = bitslice.ClassTag
		default:
			class[s] = bitslice.ClassOther
		}
	}
	eng, err := bitslice.New(c.R(), cols, class)
	if err != nil {
		return nil
	}
	return eng
}

func classifyTagOnly(c *core.Code, s uint64) Outcome {
	res := c.DecodeSyndrome(s, 0)
	switch res.Status {
	case core.StatusTMM:
		return OutcomeTMM
	case core.StatusDUE:
		return OutcomeDUE
	case core.StatusCorrected:
		return OutcomeSDC // a tag mismatch flipping a data bit would be silent corruption
	default:
		return OutcomeSDC // undetected mismatch: the alias the construction forbids
	}
}

// newRand builds the package's deterministic RNG (wrapped for reuse by
// the pattern injectors).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomErrorsParallel splits a random-corruption campaign across
// workers. Because RandomErrorsOffset seeds each 64-lane batch purely
// from (seed, batch index), the contiguous chunks sum to exactly
// RandomErrors(t, trials, seed) for every worker count — the same seed
// gives the same tally on every machine, any parallelism. Use for
// paper-scale (1e8) trial counts.
func RandomErrorsParallel(t Target, trials, workers int, seed int64) Tally {
	if workers < 2 || trials < workers {
		return RandomErrors(t, trials, seed)
	}
	tallies := make([]Tally, workers)
	var wg sync.WaitGroup
	per := trials / workers
	for w := 0; w < workers; w++ {
		n, off := per, per*w
		if w == workers-1 {
			n = trials - per*(workers-1)
		}
		wg.Add(1)
		go func(w, n, off int) {
			defer wg.Done()
			tallies[w] = RandomErrorsOffset(t, n, seed, off)
		}(w, n, off)
	}
	wg.Wait()
	var sum Tally
	for _, x := range tallies {
		sum = sum.sum(x)
	}
	return sum
}
