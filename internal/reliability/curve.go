package reliability

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/ecc"
)

// CurvePoint is one point of the Figure 9 sweep: the SDC probability of a
// K-data-bit code with R check bits under random corruption and (for
// correcting codes) exhaustive 3-bit errors.
type CurvePoint struct {
	R    int
	Kind ecc.Kind
	// RandomSDC is the silent-corruption probability under uniformly
	// random corruption.
	RandomSDC float64
	// RandomSDCLow/High bound RandomSDC with the 95% Wilson score
	// interval over RandomTrials Monte-Carlo samples.
	RandomSDCLow  float64
	RandomSDCHigh float64
	RandomTrials  uint64
	// ThreeBitSDC is the exhaustive 3-bit-error SDC probability; NaN-free:
	// it is 0 for detect-only codes, which detect all odd-weight errors
	// only when R=1 parity — so we simply don't report it (HasThreeBit).
	ThreeBitSDC float64
	HasThreeBit bool
}

// SDCCurve reproduces the Figure 9 methodology for K data bits and
// redundancies 1..maxR: detect-only codes up to R=8, a SEC code at R=9,
// and SEC-DED codes from R=10 (matching the paper's sweep for K=256,
// where R=9 is the first SEC-capable and R=10 the first SEC-DED-capable
// redundancy). Random corruption uses `trials` samples; 3-bit errors are
// exhaustive.
//
// The Monte-Carlo campaign fans out over GOMAXPROCS workers; since the
// batched injector derives every 64-lane batch's stream from (seed,
// batch index) alone, the result is identical for every worker count —
// SDCCurve(k, maxR, trials, seed) equals SDCCurveWorkers(..., w) for
// all w. Callers that want explicit control of the fan-out (or CPU
// budget) should still use SDCCurveWorkers.
func SDCCurve(k, maxR, trials int, seed int64) ([]CurvePoint, error) {
	return SDCCurveWorkers(k, maxR, trials, seed, runtime.GOMAXPROCS(0))
}

// SDCCurveWorkers is SDCCurve with an explicit Monte-Carlo worker
// count. The tallies are a function of (k, maxR, trials, seed) only:
// the deterministic per-batch seed splitting makes every worker count
// produce bit-identical curves on every machine (a regression test
// pins workers=1 against workers=8).
func SDCCurveWorkers(k, maxR, trials int, seed int64, workers int) ([]CurvePoint, error) {
	var out []CurvePoint
	for r := 1; r <= maxR; r++ {
		var (
			code *ecc.Code
			err  error
		)
		switch {
		case r >= 10:
			code, err = ecc.NewHsiao(k, r)
		case r == 9:
			code, err = ecc.NewSEC(k, r, seed)
		case r == 1:
			code = ecc.NewParity(k)
		default:
			code, err = ecc.NewDetectOnly(k, r, seed+int64(r))
		}
		if err != nil {
			return nil, fmt.Errorf("reliability: R=%d: %w", r, err)
		}
		t := TargetECC(code)
		pt := CurvePoint{R: r, Kind: code.Kind()}
		tally := RandomErrorsParallel(t, trials, workers, seed+int64(100+r))
		pt.RandomSDC = tally.SDCRate()
		pt.RandomSDCLow, pt.RandomSDCHigh = Wilson(tally.SDC, tally.Total, 1.96)
		pt.RandomTrials = tally.Total
		if code.Kind() != ecc.DetectOnly {
			tally, err := ExhaustiveKBit(t, 3)
			if err != nil {
				return nil, err
			}
			pt.ThreeBitSDC = tally.SDCRate()
			pt.HasThreeBit = true
		}
		out = append(out, pt)
	}
	return out, nil
}

// Wilson returns the Wilson score interval for a binomial proportion:
// `successes` out of `trials` at critical value z (1.96 for 95%). It is
// well-behaved at the extremes (0 or trials successes) where the normal
// approximation collapses — exactly the regime of SDC rates around
// 1e-5 that the high-trial Figure 9 mode reports.
func Wilson(successes, trials uint64, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	spread := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = (center - spread) / denom
	hi = (center + spread) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// AnalyticRandomSDC returns the closed-form random-corruption SDC
// probability used as a test oracle:
//
//   - detect-only: 2^-R (only the zero syndrome aliases);
//   - correcting codes: (N+1)/2^R (zero syndrome plus N miscorrecting
//     column syndromes — a uniformly random error yields a uniformly
//     random syndrome).
func AnalyticRandomSDC(k, r int, kind ecc.Kind) float64 {
	total := float64(uint64(1) << uint(r))
	if kind == ecc.DetectOnly {
		return 1 / total
	}
	return float64(k+r+1) / total
}

// StealingSDCAmplification returns the paper's "Added SDC Risk" factor:
// the random-corruption SDC probability of the post-stealing code relative
// to the full-redundancy SEC-DED baseline (e.g. stealing 4 of 16 bits →
// ≈15.8×; stealing down to 1 parity bit from 16 → 120×).
func StealingSDCAmplification(k, fullR, stolenBits int) float64 {
	remaining := fullR - stolenBits
	baseline := AnalyticRandomSDC(k, fullR, ecc.SECDED)
	var stolen float64
	switch {
	case remaining <= 0:
		return 0 // nothing left: no code, risk undefined here
	case remaining < 9:
		stolen = AnalyticRandomSDC(k, remaining, ecc.DetectOnly)
	default:
		stolen = AnalyticRandomSDC(k, remaining, ecc.SECDED)
	}
	return stolen / baseline
}
