package reliability

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

// curveK64RandomInjections is the Monte-Carlo half of the K=64 Figure 9
// campaign (the part the bitsliced engine accelerates; the exhaustive
// 3-bit half is an incremental table loop in both engines): the random
// corruption campaign of every R=1..12 curve code.
func curveK64Targets(b *testing.B) []Target {
	b.Helper()
	var out []Target
	for r := 1; r <= 12; r++ {
		var (
			code *ecc.Code
			err  error
		)
		switch {
		case r >= 10:
			code, err = ecc.NewHsiao(64, r)
		case r == 9:
			code, err = ecc.NewSEC(64, r, 1234)
		case r == 1:
			code = ecc.NewParity(64)
		default:
			code, err = ecc.NewDetectOnly(64, r, 1234+int64(r))
		}
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, TargetECC(code))
	}
	return out
}

const benchCurveTrials = 50_000

// BenchmarkInjectCurveK64 measures the bitsliced K=64 reliability
// campaign; the custom metric is sustained injections per second.
func BenchmarkInjectCurveK64(b *testing.B) {
	targets := curveK64Targets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, t := range targets {
			RandomErrors(t, benchCurveTrials, 1234+int64(100+j))
		}
	}
	b.StopTimer()
	inj := float64(b.N) * float64(len(targets)) * benchCurveTrials
	b.ReportMetric(inj/b.Elapsed().Seconds(), "inj/s")
}

// BenchmarkInjectCurveK64Scalar is the scalar baseline of the same
// campaign — the bench gate records the bitsliced/scalar inj/s ratio.
func BenchmarkInjectCurveK64Scalar(b *testing.B) {
	targets := curveK64Targets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, t := range targets {
			RandomErrorsScalar(t, benchCurveTrials, 1234+int64(100+j))
		}
	}
	b.StopTimer()
	inj := float64(b.N) * float64(len(targets)) * benchCurveTrials
	b.ReportMetric(inj/b.Elapsed().Seconds(), "inj/s")
}

func imt16Target(b *testing.B) Target {
	b.Helper()
	code, err := core.NewCode(256, 16, 15, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return TargetAFT(code)
}

const benchIMT16Trials = 100_000

// BenchmarkInjectRandomIMT16 measures random corruption of the
// paper-scale IMT-16 code (272 physical bits, R=16) — the Table 2 /
// security-evaluation hot path.
func BenchmarkInjectRandomIMT16(b *testing.B) {
	target := imt16Target(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomErrors(target, benchIMT16Trials, 42)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchIMT16Trials/b.Elapsed().Seconds(), "inj/s")
}

// BenchmarkInjectRandomIMT16Scalar is the scalar baseline.
func BenchmarkInjectRandomIMT16Scalar(b *testing.B) {
	target := imt16Target(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomErrorsScalar(target, benchIMT16Trials, 42)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchIMT16Trials/b.Elapsed().Seconds(), "inj/s")
}
