// Package reliability implements the paper's fault-injection methodology
// (§5.1, §5.3): exhaustive enumeration of k-bit error patterns and
// Monte-Carlo random-corruption campaigns against software ECC decoders,
// classifying each injection as corrected (CE), detected (DE — split into
// DUE and misattributed TMM), or silent data corruption (SDC).
//
// It reproduces Figure 9 (SDC probability vs. redundancy) and Table 2
// (per-error-pattern behavior of AFT-ECC).
package reliability
