package reliability

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

func aftCode(t *testing.T, k, r, ts int) *core.Code {
	t.Helper()
	c, err := core.NewCode(k, r, ts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTable2SingleBitAlwaysCorrected(t *testing.T) {
	for _, cfg := range []struct{ r, ts int }{{10, 9}, {16, 15}} {
		tgt := TargetAFT(aftCode(t, 256, cfg.r, cfg.ts))
		tally, err := ExhaustiveKBit(tgt, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tally.CERate() != 1 {
			t.Errorf("R=%d: 1b CE rate = %v, want 1 (Table 2)", cfg.r, tally.CERate())
		}
		if tally.Total != uint64(256+cfg.r) {
			t.Errorf("R=%d: total = %d", cfg.r, tally.Total)
		}
	}
}

func TestTable2DoubleBitAlwaysDetected(t *testing.T) {
	for _, cfg := range []struct{ r, ts int }{{10, 9}, {16, 15}} {
		tgt := TargetAFT(aftCode(t, 256, cfg.r, cfg.ts))
		tally, err := ExhaustiveKBit(tgt, 2)
		if err != nil {
			t.Fatal(err)
		}
		if tally.DERate() != 1 {
			t.Errorf("R=%d: 2b DE rate = %v, want 1 (Table 2)", cfg.r, tally.DERate())
		}
		// With the maximum tag size, even-weight errors are misattributed
		// as TMMs (Table 2 footnote): 2-bit errors land in the tag space.
		if tally.TMM == 0 {
			t.Errorf("R=%d: expected some 2b misattribution to TMM", cfg.r)
		}
		if tally.SDC != 0 {
			t.Errorf("R=%d: 2b SDC = %d, want 0", cfg.r, tally.SDC)
		}
	}
}

func TestTable2TripleBitSDCRegime(t *testing.T) {
	// IMT-10: paper measures 52.47% SDC for 3-bit errors; IMT-16: 4.95%.
	// Our independently-searched codes should land in the same regime.
	tgt10 := TargetAFT(aftCode(t, 256, 10, 9))
	tally10, err := ExhaustiveKBit(tgt10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s := tally10.SDCRate(); s < 0.40 || s > 0.65 {
		t.Errorf("IMT-10 3b SDC = %.4f, want ≈ 0.52 (paper: 0.5247)", s)
	}
	if tally10.CERate() != 0 {
		t.Error("3-bit errors can never be correctly corrected")
	}

	tgt16 := TargetAFT(aftCode(t, 256, 16, 15))
	tally16, err := ExhaustiveKBit(tgt16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s := tally16.SDCRate(); s < 0.005 || s > 0.12 {
		t.Errorf("IMT-16 3b SDC = %.4f, want ≈ 0.05 (paper: 0.0495)", s)
	}
	// Odd-weight errors never land in the (even) tag space.
	if tally16.TMM != 0 || tally10.TMM != 0 {
		t.Error("odd-weight errors must not be misattributed as TMMs")
	}
}

func TestTable2RandomCorruption(t *testing.T) {
	// Analytic anchors: IMT-10 → 267/1024 ≈ 26.07% (paper 25.98%);
	// IMT-16 → 273/65536 ≈ 0.417% (paper 0.4154%).
	tgt10 := TargetAFT(aftCode(t, 256, 10, 9))
	tally := RandomErrors(tgt10, 200000, 1)
	want := AnalyticRandomSDC(256, 10, ecc.SECDED)
	if got := tally.SDCRate(); math.Abs(got-want) > 0.01 {
		t.Errorf("IMT-10 random SDC = %.4f, want ≈ %.4f", got, want)
	}
	// Roughly half the syndromes are even → TMM attribution ≈ (2^TS−1)/2^R.
	wantTMM := float64((1<<9)-1) / float64(1<<10)
	if got := tally.TMMRate(); math.Abs(got-wantTMM) > 0.01 {
		t.Errorf("IMT-10 random TMM attribution = %.4f, want ≈ %.4f", got, wantTMM)
	}

	tgt16 := TargetAFT(aftCode(t, 256, 16, 15))
	tally16 := RandomErrors(tgt16, 200000, 2)
	want16 := AnalyticRandomSDC(256, 16, ecc.SECDED)
	if got := tally16.SDCRate(); math.Abs(got-want16) > 0.002 {
		t.Errorf("IMT-16 random SDC = %.5f, want ≈ %.5f", got, want16)
	}
}

func TestTable2TagCorruptionRow(t *testing.T) {
	// Tag corrupt: 0% CE, 100% DE, 0% SDC — exhaustive for IMT-10's 9-bit
	// tag, sampled for IMT-16.
	tally := TagCorruptions(aftCode(t, 256, 10, 9), 0, 0)
	if tally.Total != 512*511 {
		t.Fatalf("exhaustive pair count = %d", tally.Total)
	}
	if tally.TMM != tally.Total {
		t.Fatalf("tag corruption: TMM %d of %d — alias-free property broken", tally.TMM, tally.Total)
	}
	sampled := TagCorruptions(aftCode(t, 256, 16, 15), 5000, 3)
	if sampled.TMM != sampled.Total || sampled.Total != 5000 {
		t.Fatalf("sampled tag corruption: %+v", sampled)
	}
}

func TestExhaustive4BitOnSmallCode(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 64, 8, 5))
	tally, err := ExhaustiveKBit(tgt, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := uint64(72 * 71 * 70 * 69 / 24)
	if tally.Total != wantTotal {
		t.Fatalf("4b total = %d, want %d", tally.Total, wantTotal)
	}
	// 4-bit (even) errors: mostly detected, tiny SDC, no correct CE.
	if tally.CE != 0 {
		t.Error("4-bit errors cannot be correctly corrected")
	}
	if tally.DERate() < 0.95 {
		t.Errorf("4b DE rate = %v, want ≥ 0.95", tally.DERate())
	}
}

func TestSampledMatchesExhaustive(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 64, 8, 5))
	ex, err := ExhaustiveKBit(tgt, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SampledKBit(tgt, 3, 30000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.SDCRate()-sa.SDCRate()) > 0.02 {
		t.Errorf("sampled 3b SDC %.4f vs exhaustive %.4f", sa.SDCRate(), ex.SDCRate())
	}
	if math.Abs(ex.DERate()-sa.DERate()) > 0.02 {
		t.Errorf("sampled 3b DE %.4f vs exhaustive %.4f", sa.DERate(), ex.DERate())
	}
}

func TestExhaustiveKBitValidation(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 64, 8, 5))
	if _, err := ExhaustiveKBit(tgt, 5); err == nil {
		t.Error("k=5 must be rejected")
	}
	if _, err := ExhaustiveKBit(tgt, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := SampledKBit(tgt, 0, 10, 1); err == nil {
		t.Error("SampledKBit k=0 must be rejected")
	}
}

func TestECCTargetMatchesAFTWithoutTags(t *testing.T) {
	// An untagged Hsiao code and an AFT code share the data/identity
	// columns; under odd-weight (3-bit) errors the AFT code's DE+SDC
	// split must match the untagged code's (tags only absorb even
	// syndromes).
	hsiao, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	tEcc := TargetECC(hsiao)
	tAft := TargetAFT(aftCode(t, 64, 8, 5))
	e1, err := ExhaustiveKBit(tEcc, 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ExhaustiveKBit(tAft, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e1.SDC != e2.SDC {
		t.Errorf("3b SDC differs: untagged %d vs AFT %d", e1.SDC, e2.SDC)
	}
	if e2.TMM != 0 {
		t.Error("odd errors should never hit the tag space")
	}
}

func TestRandomErrorsDetectOnly(t *testing.T) {
	// Detect-only codes: SDC ≈ 2^-R under random corruption.
	for _, r := range []int{2, 4, 8} {
		code, err := ecc.NewDetectOnly(64, r, int64(r))
		if err != nil {
			t.Fatal(err)
		}
		tally := RandomErrors(TargetECC(code), 100000, int64(r))
		want := AnalyticRandomSDC(64, r, ecc.DetectOnly)
		if got := tally.SDCRate(); math.Abs(got-want) > 4*math.Sqrt(want/100000)+0.002 {
			t.Errorf("R=%d detect-only random SDC = %.5f, want ≈ %.5f", r, got, want)
		}
		if tally.CE != 0 {
			t.Error("detect-only codes never correct")
		}
	}
}

func TestSDCCurveShape(t *testing.T) {
	pts, err := SDCCurve(256, 16, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("curve has %d points", len(pts))
	}
	// Figure 9's headline: roughly 2× lower SDC per extra check bit.
	for i := 1; i < 8; i++ {
		ratio := pts[i-1].RandomSDC / pts[i].RandomSDC
		if ratio < 1.4 || ratio > 2.8 {
			t.Errorf("detect-only R=%d→%d SDC ratio = %.2f, want ≈ 2", pts[i-1].R, pts[i].R, ratio)
		}
	}
	// Correcting codes start at R=9 and carry 3-bit results.
	for _, p := range pts {
		if p.R <= 8 {
			if p.Kind != ecc.DetectOnly || p.HasThreeBit {
				t.Errorf("R=%d should be detect-only without 3b data", p.R)
			}
		} else if !p.HasThreeBit {
			t.Errorf("R=%d should carry 3-bit data", p.R)
		}
	}
	// SEC-DED random SDC halves per bit too (miscorrection-dominated).
	for i := 10; i < 16; i++ {
		ratio := pts[i-1].RandomSDC / pts[i].RandomSDC
		if ratio < 1.4 || ratio > 2.8 {
			t.Errorf("SEC-DED R=%d→%d SDC ratio = %.2f, want ≈ 2", pts[i-1].R, pts[i].R, ratio)
		}
	}
	// Footnote 7: the R=9 SEC code's 3-bit SDC is no worse than R=10's.
	if pts[8].ThreeBitSDC > pts[9].ThreeBitSDC*1.2 {
		t.Errorf("R=9 SEC 3b SDC %.4f should not exceed R=10 SEC-DED %.4f by much",
			pts[8].ThreeBitSDC, pts[9].ThreeBitSDC)
	}
}

func TestStealingAmplificationMatchesTable1(t *testing.T) {
	cases := []struct {
		fullR, stolen int
		want, tol     float64
	}{
		{16, 4, 15.76, 0.1},  // SPARC-ADI-like
		{10, 9, 1.917, 0.01}, // iso-security-10
		{16, 15, 120.0, 0.5}, // iso-security-16
	}
	for _, c := range cases {
		got := StealingSDCAmplification(256, c.fullR, c.stolen)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("steal %d of %d: amplification = %.3f, want %.3f", c.stolen, c.fullR, got, c.want)
		}
	}
	if StealingSDCAmplification(256, 10, 10) != 0 {
		t.Error("stealing every bit leaves no code")
	}
}

func TestTallyArithmetic(t *testing.T) {
	var tally Tally
	tally = tally.Add(OutcomeCE)
	tally = tally.Add(OutcomeDUE)
	tally = tally.Add(OutcomeTMM)
	tally = tally.Add(OutcomeSDC)
	tally = tally.Add(OutcomeOK)
	if tally.Total != 5 || tally.CE != 1 || tally.DUE != 1 || tally.TMM != 1 || tally.SDC != 1 {
		t.Fatalf("tally = %+v", tally)
	}
	if tally.DE() != 2 {
		t.Error("DE() should sum DUE and TMM")
	}
	if tally.CERate() != 0.2 || tally.SDCRate() != 0.2 || tally.DERate() != 0.4 {
		t.Error("rates wrong")
	}
	if tally.String() == "" {
		t.Error("empty String")
	}
	if (Tally{}).CERate() != 0 {
		t.Error("empty tally rates should be 0")
	}
}

func TestRandomErrorsParallelMatchesSerialStatistically(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 256, 10, 9))
	serial := RandomErrors(tgt, 100000, 1)
	parallel := RandomErrorsParallel(tgt, 100000, 4, 1)
	if parallel.Total != 100000 {
		t.Fatalf("parallel total = %d", parallel.Total)
	}
	if math.Abs(serial.SDCRate()-parallel.SDCRate()) > 0.01 {
		t.Errorf("parallel SDC %.4f vs serial %.4f", parallel.SDCRate(), serial.SDCRate())
	}
	// Degenerate worker counts fall back to the serial path.
	if RandomErrorsParallel(tgt, 100, 1, 2).Total != 100 {
		t.Error("workers=1 fallback broken")
	}
}
