package reliability

import "fmt"

// ExhaustiveByteErrors injects every nonzero pattern within every aligned
// 8-bit window of the physical bits — the "byte error" class that §7.1
// cites as the most common multi-bit DRAM failure (from neutron-beam
// studies). Trailing bits that do not fill a byte are exercised with all
// patterns of the partial window.
func ExhaustiveByteErrors(t Target) Tally {
	var tally Tally
	for start := 0; start < t.NPhys; start += 8 {
		width := 8
		if start+width > t.NPhys {
			width = t.NPhys - start
		}
		for pattern := uint64(1); pattern < 1<<uint(width); pattern++ {
			var s uint64
			weight := 0
			for b := 0; b < width; b++ {
				if pattern>>uint(b)&1 == 1 {
					s ^= t.cols[start+b]
					weight++
				}
			}
			tally = tally.Add(t.classify(s, weight))
		}
	}
	return tally
}

// ExhaustiveBurstErrors injects every burst of exact span b: all windows
// of b contiguous bits whose first and last bits flip (interior bits
// arbitrary) — §7.1's dominant SRAM multi-bit pattern. b=1 degenerates to
// single-bit errors.
func ExhaustiveBurstErrors(t Target, b int) (Tally, error) {
	if b < 1 || b > 24 {
		return Tally{}, fmt.Errorf("reliability: burst span %d out of range [1,24]", b)
	}
	var tally Tally
	if b == 1 {
		return ExhaustiveKBit(t, 1)
	}
	interior := b - 2
	for start := 0; start+b <= t.NPhys; start++ {
		endpoints := t.cols[start] ^ t.cols[start+b-1]
		for mid := uint64(0); mid < 1<<uint(interior); mid++ {
			s := endpoints
			weight := 2
			for i := 0; i < interior; i++ {
				if mid>>uint(i)&1 == 1 {
					s ^= t.cols[start+1+i]
					weight++
				}
			}
			tally = tally.Add(t.classify(s, weight))
		}
	}
	return tally, nil
}

// SampledKBitBytes injects `trials` double-byte errors: two distinct
// aligned bytes each corrupted with a random nonzero pattern. This is the
// multi-structure pattern the §7.1 comparison uses for both code families.
func SampledKBitBytes(t Target, trials int, seed int64) (Tally, error) {
	if t.NPhys < 16 {
		return Tally{}, fmt.Errorf("reliability: need ≥ 2 bytes of physical bits")
	}
	rng := newRand(seed)
	nBytes := t.NPhys / 8
	var tally Tally
	for trial := 0; trial < trials; trial++ {
		i := rng.Intn(nBytes)
		j := rng.Intn(nBytes)
		for j == i {
			j = rng.Intn(nBytes)
		}
		var s uint64
		weight := 0
		for _, base := range []int{i * 8, j * 8} {
			pattern := uint64(1 + rng.Intn(255))
			for b := 0; b < 8; b++ {
				if pattern>>uint(b)&1 == 1 {
					s ^= t.cols[base+b]
					weight++
				}
			}
		}
		tally = tally.Add(t.classify(s, weight))
	}
	return tally, nil
}
