package reliability

import "testing"

func TestByteErrorsDetectedByAFT(t *testing.T) {
	// A bit-oriented SEC-DED AFT code cannot correct byte errors, but it
	// must never be silent on 2-bit ones, and overall byte-error SDC must
	// be small (most patterns are detected, 1-bit ones corrected).
	tgt := TargetAFT(aftCode(t, 256, 16, 15))
	tally := ExhaustiveByteErrors(tgt)
	wantTotal := uint64(272 / 8 * 255)
	if tally.Total != wantTotal {
		t.Fatalf("total = %d, want %d", tally.Total, wantTotal)
	}
	// Exactly the single-bit patterns are corrected: 8 per byte.
	if tally.CE != uint64(272/8*8) {
		t.Errorf("byte CE = %d, want %d", tally.CE, 272/8*8)
	}
	if tally.SDCRate() > 0.06 {
		t.Errorf("byte SDC = %.4f, unexpectedly high", tally.SDCRate())
	}
	if tally.DERate()+tally.CERate()+tally.SDCRate() < 0.9999 {
		t.Error("rates do not sum to 1")
	}
}

func TestBurstErrors(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 64, 8, 5))
	// b=1 degenerates to single-bit errors: all corrected.
	tally, err := ExhaustiveBurstErrors(tgt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tally.CERate() != 1 {
		t.Errorf("burst-1 CE = %v", tally.CERate())
	}
	// b=2: adjacent double-bit errors — all detected under SEC-DED.
	tally, err = ExhaustiveBurstErrors(tgt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Total != uint64(72-1) {
		t.Fatalf("burst-2 total = %d, want %d", tally.Total, 71)
	}
	if tally.DERate() != 1 {
		t.Errorf("burst-2 DE = %v, want 1", tally.DERate())
	}
	// b=4: spans×2^2 patterns; never OK-silent beyond genuine aliasing.
	tally, err = ExhaustiveBurstErrors(tgt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Total != uint64((72-3)*4) {
		t.Fatalf("burst-4 total = %d", tally.Total)
	}
	if tally.CE != 0 {
		t.Error("burst-4 cannot correct correctly")
	}
	if _, err := ExhaustiveBurstErrors(tgt, 0); err == nil {
		t.Error("b=0 must fail")
	}
	if _, err := ExhaustiveBurstErrors(tgt, 25); err == nil {
		t.Error("b=25 must fail")
	}
}

func TestSampledKBitBytes(t *testing.T) {
	tgt := TargetAFT(aftCode(t, 256, 16, 15))
	tally, err := SampledKBitBytes(tgt, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Total != 20000 {
		t.Fatalf("total = %d", tally.Total)
	}
	// Two corrupted bytes: nothing is correctly correctable; detection
	// should dominate.
	if tally.CE != 0 {
		t.Error("double-byte errors cannot be correctly corrected")
	}
	if tally.DERate() < 0.9 {
		t.Errorf("double-byte DE = %v, want ≥ 0.9", tally.DERate())
	}
	small := TargetAFT(aftCode(t, 8, 5, 1))
	if _, err := SampledKBitBytes(small, 10, 1); err == nil {
		t.Error("tiny targets must be rejected")
	}
}
