package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/gf2"
)

// MaxTagSize returns the largest alias-free tag size that still preserves
// single-bit error correction for a code with k data bits and r check bits
// (Equation 5b of the paper):
//
//	TS ≤ floor(log2(2^r − k − r))
//
// It returns 0 if no tag fits, and an error if (k, r) cannot support
// single-bit correction at all (2^r − 1 < k + r).
func MaxTagSize(k, r int) (int, error) {
	if r < 1 || r > 62 {
		return 0, fmt.Errorf("core: R=%d out of range [1,62]", r)
	}
	if k < 1 {
		return 0, fmt.Errorf("core: K=%d must be positive", k)
	}
	syndromes := int64(1) << uint(r)
	free := syndromes - int64(k) - int64(r)
	if free < 1 {
		return 0, fmt.Errorf("core: (K=%d, R=%d) is not single-error-correcting: needs %d syndromes, has %d", k, r, k+r+1, syndromes)
	}
	if free == 1 {
		// Only the zero syndrome is spare: an unshortened code, no tag fits.
		return 0, nil
	}
	ts := int(math.Floor(math.Log2(float64(free))))
	// Guard against floating-point edge cases at exact powers of two.
	for int64(1)<<uint(ts) > free {
		ts--
	}
	for int64(1)<<uint(ts+1) <= free {
		ts++
	}
	if ts > r-1 {
		// dim(T) = 2^TS − 1 must leave room for correction; TS = R is never
		// achievable (Section 3.4), and the bound above already enforces
		// TS ≤ R−1 whenever k ≥ 1, so this is belt-and-braces.
		ts = r - 1
	}
	return ts, nil
}

// StaircaseTagMatrix builds the recommended tag submatrix of Equation 6:
// ts weight-2 "staircase" columns over r rows, where column j has ones in
// rows j and j+1. The columns are linearly independent (alias-free), all
// even weight (so their span is disjoint from odd-weight data columns,
// preserving SEC-DED), and each row holds at most two ones (adding no
// level to the encoder's XOR tree).
//
// As the paper notes, any column subset remains alias-free, and taking the
// first ts columns and r rows of the full R=16 matrix yields the shortened
// variants (the blue (R=10, TS=9) block in Equation 6).
func StaircaseTagMatrix(r, ts int) (*gf2.Matrix, error) {
	if ts < 0 {
		return nil, fmt.Errorf("core: negative tag size %d", ts)
	}
	if ts > r-1 {
		return nil, fmt.Errorf("core: staircase tag needs TS ≤ R−1, got TS=%d, R=%d", ts, r)
	}
	m := gf2.NewMatrix(r, ts)
	for j := 0; j < ts; j++ {
		m.SetCol(j, 3<<uint(j)) // rows j and j+1
	}
	return m, nil
}

// RandomEvenTagMatrix builds an alias-free tag submatrix from random
// even-weight columns (kept only while linearly independent). It has the
// same correctness properties as the Equation 6 staircase — alias-free and
// SEC-preserving against odd-weight data columns — but much heavier rows,
// which is exactly the design choice the staircase optimizes away; the
// hardware-ablation benchmarks compare the two.
func RandomEvenTagMatrix(r, ts int, seed int64) (*gf2.Matrix, error) {
	if ts < 0 || ts > r-1 {
		return nil, fmt.Errorf("core: alias-free tag needs 0 ≤ TS ≤ R−1, got TS=%d, R=%d", ts, r)
	}
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<uint(r) - 1
	m := gf2.NewMatrix(r, 0)
	cols := make([]uint64, 0, ts)
	for len(cols) < ts {
		c := rng.Uint64() & mask
		if bits.OnesCount64(c)%2 != 0 || c == 0 {
			continue
		}
		trial := gf2.FromColumns(r, append(append([]uint64(nil), cols...), c))
		if !trial.HasFullColumnRank() {
			continue
		}
		cols = append(cols, c)
		m = trial
	}
	if ts == 0 {
		return gf2.NewMatrix(r, 0), nil
	}
	return m, nil
}
