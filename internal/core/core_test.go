package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gf2"
)

func mustCode(t *testing.T, k, r, ts int) *Code {
	t.Helper()
	c, err := NewCode(k, r, ts, Options{})
	if err != nil {
		t.Fatalf("NewCode(%d,%d,%d): %v", k, r, ts, err)
	}
	return c
}

func randData(rng *rand.Rand, k int) *gf2.BitVec {
	v := gf2.NewBitVec(k)
	for i := 0; i < k; i++ {
		v.Set(i, rng.Intn(2))
	}
	return v
}

func TestMaxTagSizePaperAnchors(t *testing.T) {
	// The two starred configurations of Figure 5: (K=256, R=10) → TS=9 and
	// (K=256, R=16) → TS=15 — "one fewer bit than the ECC redundancy".
	cases := []struct{ k, r, want int }{
		{256, 10, 9},
		{256, 16, 15},
		{32, 16, 15},
		{64, 16, 15},
		{128, 16, 15},
		{512, 16, 15},
		{32, 6, 4},
		{64, 7, 5},
		{128, 8, 6},
		{512, 11, 10},
	}
	for _, c := range cases {
		got, err := MaxTagSize(c.k, c.r)
		if err != nil {
			t.Errorf("MaxTagSize(%d,%d): %v", c.k, c.r, err)
			continue
		}
		if got != c.want {
			t.Errorf("MaxTagSize(%d,%d) = %d, want %d", c.k, c.r, got, c.want)
		}
	}
}

func TestMaxTagSizeEdges(t *testing.T) {
	// Unshortened Hamming code (K = 2^R − 1 − R): no tag fits.
	if ts, err := MaxTagSize(11, 4); err != nil || ts != 0 {
		t.Errorf("MaxTagSize(11,4) = %d,%v; want 0,nil (unshortened)", ts, err)
	}
	// One bit of shortening: at most a 1-bit tag (the paper's Figure 5).
	if ts, err := MaxTagSize(10, 4); err != nil || ts != 1 {
		t.Errorf("MaxTagSize(10,4) = %d,%v; want 1,nil", ts, err)
	}
	// Beyond SEC capacity: an error.
	if _, err := MaxTagSize(12, 4); err == nil {
		t.Error("MaxTagSize(12,4) should fail: not SEC-capable")
	}
	if _, err := MaxTagSize(0, 8); err == nil {
		t.Error("MaxTagSize(0,8) should reject K=0")
	}
	if _, err := MaxTagSize(8, 0); err == nil {
		t.Error("MaxTagSize(8,0) should reject R=0")
	}
}

func TestMaxTagSizeMatchesInequality(t *testing.T) {
	// Brute-force the defining inequality (Eq 5a) for a sweep of (K,R).
	for r := 4; r <= 16; r++ {
		for _, k := range []int{8, 16, 32, 64, 100, 256, 500} {
			syndromes := int64(1) << uint(r)
			if syndromes-1 < int64(k+r) {
				continue // not SEC-capable
			}
			want := 0
			for ts := 1; ts <= r; ts++ {
				if syndromes-1-(int64(1)<<uint(ts)-1) >= int64(k+r) {
					want = ts
				}
			}
			got, err := MaxTagSize(k, r)
			if err != nil {
				t.Fatalf("MaxTagSize(%d,%d): %v", k, r, err)
			}
			if got != want {
				t.Errorf("MaxTagSize(%d,%d) = %d, brute force = %d", k, r, got, want)
			}
		}
	}
}

func TestStaircaseMatchesEquation6(t *testing.T) {
	// The full (R=16, TS=15) matrix from Equation 6, rows top to bottom,
	// column 0 rightmost.
	m, err := StaircaseTagMatrix(16, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"000000000000001",
		"000000000000011",
		"000000000000110",
		"000000000001100",
		"000000000011000",
		"000000000110000",
		"000000001100000",
		"000000011000000",
		"000000110000000",
		"000001100000000",
		"000011000000000",
		"000110000000000",
		"001100000000000",
		"011000000000000",
		"110000000000000",
		"100000000000000",
	}, "\n")
	if got := m.String(); got != want {
		t.Errorf("staircase (16,15) =\n%s\nwant\n%s", got, want)
	}
	// The shortened (R=10, TS=9) highlighted block is the top-left of the
	// full matrix.
	short, err := StaircaseTagMatrix(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 9; j++ {
		for i := 0; i < 10; i++ {
			if short.Get(i, j) != m.Get(i, j) {
				t.Fatalf("shortened staircase disagrees with the full matrix at (%d,%d)", i, j)
			}
		}
	}
}

func TestStaircaseProperties(t *testing.T) {
	for r := 2; r <= 16; r++ {
		for ts := 1; ts < r; ts++ {
			m, err := StaircaseTagMatrix(r, ts)
			if err != nil {
				t.Fatalf("StaircaseTagMatrix(%d,%d): %v", r, ts, err)
			}
			if !m.HasFullColumnRank() {
				t.Errorf("(%d,%d): staircase not alias-free", r, ts)
			}
			if !m.AllColumnsEvenWeight() {
				t.Errorf("(%d,%d): staircase has odd columns", r, ts)
			}
			if m.MaxRowWeight() > 2 {
				t.Errorf("(%d,%d): staircase row weight %d > 2", r, ts, m.MaxRowWeight())
			}
		}
	}
	if _, err := StaircaseTagMatrix(10, 10); err == nil {
		t.Error("TS=R staircase should be rejected")
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := NewCode(256, 10, 10, Options{}); err == nil {
		t.Error("TS above the alias-free bound must be rejected")
	}
	if _, err := NewCode(256, 10, 0, Options{}); err == nil {
		t.Error("TS=0 must be rejected (use an untagged code)")
	}
	if _, err := NewCode(1000, 10, 1, Options{}); err == nil {
		t.Error("K beyond SEC capacity must be rejected")
	}
}

func TestIMTConfigsVerify(t *testing.T) {
	// IMT-10 (K=256, R=10, TS=9) and IMT-16 (K=256, R=16, TS=15), §4.4.
	for _, cfg := range []struct{ k, r, ts int }{{256, 10, 9}, {256, 16, 15}} {
		c := mustCode(t, cfg.k, cfg.r, cfg.ts)
		p := Verify(c)
		if !p.AliasFree {
			t.Errorf("%v: not alias-free", c)
		}
		if !p.SECPreserved {
			t.Errorf("%v: SEC not preserved", c)
		}
		if !p.DEDPreserved {
			t.Errorf("%v: DED not preserved", c)
		}
		if p.MaxTagRowOnes > 2 {
			t.Errorf("%v: tag submatrix row weight %d > 2", c, p.MaxTagRowOnes)
		}
		MustVerify(c) // must not panic
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := mustCode(t, 64, 8, 5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		data := randData(rng, 64)
		tag := rng.Uint64() & c.TagMask()
		check := c.Encode(data, tag)
		res := c.Decode(data.Clone(), check, tag)
		if res.Status != StatusOK {
			t.Fatalf("clean decode: %v", res.Status)
		}
	}
}

func TestTagMismatchAlwaysTMMExhaustive(t *testing.T) {
	// The alias-free guarantee: with no data error, EVERY (lock, key) pair
	// with lock != key reports a TMM, and the lock-tag estimate is exact.
	c := mustCode(t, 32, 8, 6)
	data := randData(rand.New(rand.NewSource(2)), 32)
	for lock := uint64(0); lock < 64; lock++ {
		check := c.Encode(data, lock)
		for key := uint64(0); key < 64; key++ {
			res := c.Decode(data.Clone(), check, key)
			if lock == key {
				if res.Status != StatusOK {
					t.Fatalf("lock=key=%d: %v", lock, res.Status)
				}
				continue
			}
			if res.Status != StatusTMM {
				t.Fatalf("lock=%d key=%d: %v, want TMM", lock, key, res.Status)
			}
			if res.LockTagEstimate != lock {
				t.Fatalf("lock=%d key=%d: estimate %d", lock, key, res.LockTagEstimate)
			}
		}
	}
}

func TestTagMismatchIMT16Sampled(t *testing.T) {
	c := mustCode(t, 256, 16, 15)
	rng := rand.New(rand.NewSource(3))
	data := randData(rng, 256)
	for trial := 0; trial < 2000; trial++ {
		lock := rng.Uint64() & c.TagMask()
		key := rng.Uint64() & c.TagMask()
		for key == lock {
			key = rng.Uint64() & c.TagMask()
		}
		check := c.Encode(data, lock)
		res := c.Decode(data.Clone(), check, key)
		if res.Status != StatusTMM || res.LockTagEstimate != lock {
			t.Fatalf("trial %d: %+v (lock=%#x key=%#x)", trial, res, lock, key)
		}
	}
}

func TestSingleBitCorrectionUnderMatchingTag(t *testing.T) {
	c := mustCode(t, 64, 8, 5)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		data := randData(rng, 64)
		tag := rng.Uint64() & c.TagMask()
		check := c.Encode(data, tag)
		bit := rng.Intn(c.PhysicalBits())
		rx := data.Clone()
		rxCheck := check
		if bit < c.K() {
			rx.Flip(bit)
		} else {
			rxCheck ^= 1 << uint(bit-c.K())
		}
		res := c.Decode(rx, rxCheck, tag)
		if res.Status != StatusCorrected || res.FlippedBit != bit {
			t.Fatalf("bit %d: %+v", bit, res)
		}
		if bit < c.K() && !rx.Equal(data) {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestDoubleBitNeverSilent(t *testing.T) {
	// 2-bit data errors must always be detected (as DUE, or misattributed
	// TMM — Table 2 shows 2b → 100% DE). They must never be OK or
	// miscorrected.
	c := mustCode(t, 32, 8, 6)
	data := gf2.NewBitVec(32)
	tag := uint64(0x2A)
	check := c.Encode(data, tag)
	for i := 0; i < c.PhysicalBits(); i++ {
		for j := i + 1; j < c.PhysicalBits(); j++ {
			rx := data.Clone()
			rxCheck := check
			for _, b := range []int{i, j} {
				if b < c.K() {
					rx.Flip(b)
				} else {
					rxCheck ^= 1 << uint(b-c.K())
				}
			}
			res := c.Decode(rx, rxCheck, tag)
			if res.Status == StatusOK || res.Status == StatusCorrected {
				t.Fatalf("2-bit error (%d,%d) was silent: %v", i, j, res.Status)
			}
		}
	}
}

func TestNoTMMReportedAsDUE(t *testing.T) {
	// §3.6: "with AFT-ECC there is no risk of reporting a TMM as a DUE".
	// Pure tag mismatches (no data error) must never surface as DUE.
	c := mustCode(t, 64, 10, 9)
	rng := rand.New(rand.NewSource(5))
	f := func(lockSeed, keySeed uint16) bool {
		lock := uint64(lockSeed) & c.TagMask()
		key := uint64(keySeed) & c.TagMask()
		data := randData(rng, 64)
		check := c.Encode(data, lock)
		res := c.Decode(data.Clone(), check, key)
		if lock == key {
			return res.Status == StatusOK
		}
		return res.Status == StatusTMM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSyndromeMatchesDecode(t *testing.T) {
	c := mustCode(t, 64, 8, 5)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		data := randData(rng, 64)
		lock := rng.Uint64() & c.TagMask()
		key := rng.Uint64() & c.TagMask()
		check := c.Encode(data, lock)
		// Corrupt up to 3 random physical bits.
		rx := data.Clone()
		rxCheck := check
		n := rng.Intn(4)
		for e := 0; e < n; e++ {
			b := rng.Intn(c.PhysicalBits())
			if b < c.K() {
				rx.Flip(b)
			} else {
				rxCheck ^= 1 << uint(b-c.K())
			}
		}
		s := c.dataSyndrome(rx) ^ rxCheck ^ c.TagSyndrome(key)
		want := c.Decode(rx.Clone(), rxCheck, key)
		got := c.DecodeSyndrome(s, key)
		if got.Status != want.Status || got.Syndrome != want.Syndrome ||
			got.FlippedBit != want.FlippedBit || got.LockTagEstimate != want.LockTagEstimate {
			t.Fatalf("DecodeSyndrome mismatch: %+v vs %+v", got, want)
		}
	}
}

func TestErrorSyndromeLayout(t *testing.T) {
	c := mustCode(t, 32, 8, 6)
	// A virtual error in tag bit j must have the staircase column syndrome.
	for j := 0; j < c.TS(); j++ {
		e := gf2.NewBitVec(c.N())
		e.Set(j, 1)
		if got, want := c.ErrorSyndrome(e), c.TagMatrix().Col(j); got != want {
			t.Errorf("tag bit %d syndrome %#x, want %#x", j, got, want)
		}
	}
	// A data-bit error maps through the data columns.
	e := gf2.NewBitVec(c.N())
	e.Set(c.TS()+3, 1)
	if got, want := c.ErrorSyndrome(e), c.DataMatrix().Col(3); got != want {
		t.Errorf("data bit 3 syndrome %#x, want %#x", got, want)
	}
	// Physical layout skips the tag bits.
	pe := gf2.NewBitVec(c.PhysicalBits())
	pe.Set(3, 1)
	if c.PhysicalErrorSyndrome(pe) != c.DataMatrix().Col(3) {
		t.Error("physical error syndrome layout wrong")
	}
}

func TestTagSyndromeTableBijection(t *testing.T) {
	c := mustCode(t, 64, 10, 9)
	table := c.TagSyndromeTable()
	if len(table) != (1<<9)-1 {
		t.Fatalf("table size %d, want %d", len(table), (1<<9)-1)
	}
	seen := map[uint64]bool{}
	for syn, pat := range table {
		if pat == 0 || pat > c.TagMask() {
			t.Fatalf("invalid pattern %#x", pat)
		}
		if seen[pat] {
			t.Fatalf("pattern %#x appears twice", pat)
		}
		seen[pat] = true
		if c.TagSyndrome(pat) != syn {
			t.Fatalf("table inconsistent: T*%#x != %#x", pat, syn)
		}
		if got, ok := c.IsTagSyndrome(syn); !ok || got != pat {
			t.Fatalf("IsTagSyndrome(%#x) = %#x,%v", syn, got, ok)
		}
	}
}

func TestRandomEvenTagMatrix(t *testing.T) {
	for _, cfg := range []struct{ r, ts int }{{10, 9}, {16, 15}, {8, 4}} {
		m, err := RandomEvenTagMatrix(cfg.r, cfg.ts, 7)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cols() != cfg.ts || m.Rows() != cfg.r {
			t.Fatalf("(%d,%d): shape %dx%d", cfg.r, cfg.ts, m.Rows(), m.Cols())
		}
		if !m.HasFullColumnRank() {
			t.Errorf("(%d,%d): not alias-free", cfg.r, cfg.ts)
		}
		if !m.AllColumnsEvenWeight() {
			t.Errorf("(%d,%d): odd column present", cfg.r, cfg.ts)
		}
	}
	if _, err := RandomEvenTagMatrix(8, 8, 1); err == nil {
		t.Error("TS=R must be rejected")
	}
	if m, err := RandomEvenTagMatrix(8, 0, 1); err != nil || m.Cols() != 0 {
		t.Error("TS=0 should yield an empty matrix")
	}
	// The staircase is strictly lighter: that is its whole point.
	stair, err := StaircaseTagMatrix(16, 15)
	if err != nil {
		t.Fatal(err)
	}
	randT, err := RandomEvenTagMatrix(16, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if randT.TotalOnes() <= stair.TotalOnes() {
		t.Errorf("random even matrix (%d ones) should be heavier than the staircase (%d)",
			randT.TotalOnes(), stair.TotalOnes())
	}
}

func TestGeneticStrategy(t *testing.T) {
	c, err := NewCode(32, 8, 6, Options{
		Strategy: DataGenetic,
		Genetic:  geneticTestOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	MustVerify(c)
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "OK" || StatusCorrected.String() != "corrected" ||
		StatusTMM.String() != "TMM" || StatusDUE.String() != "DUE" {
		t.Error("status strings wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status should still render")
	}
}

func TestCodeAccessors(t *testing.T) {
	c := mustCode(t, 256, 16, 15)
	if c.K() != 256 || c.R() != 16 || c.TS() != 15 {
		t.Error("accessor mismatch")
	}
	if c.N() != 287 || c.PhysicalBits() != 272 {
		t.Errorf("N=%d PhysicalBits=%d", c.N(), c.PhysicalBits())
	}
	if c.TagMask() != 0x7FFF {
		t.Errorf("TagMask = %#x", c.TagMask())
	}
	h := c.H()
	if h.Rows() != 16 || h.Cols() != 287 {
		t.Errorf("H shape %dx%d", h.Rows(), h.Cols())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestQuickRandomConfigurationsVerify(t *testing.T) {
	// Property: for any (K, R) that supports a tag, building the code at
	// any legal TS yields a verified alias-free SEC-DED AFT code.
	f := func(kSeed, rSeed, tsSeed uint8) bool {
		r := 6 + int(rSeed)%11  // 6..16
		k := 8 + int(kSeed)%120 // 8..127
		maxTS, err := MaxTagSize(k, r)
		if err != nil || maxTS < 1 {
			return true // not tag-capable: nothing to check
		}
		ts := 1 + int(tsSeed)%maxTS
		c, err := NewCode(k, r, ts, Options{})
		if err != nil {
			// Construction can only fail if the odd-column supply runs
			// out, which MaxTagSize does not gate; accept explicit errors.
			return true
		}
		p := Verify(c)
		return p.AliasFree && p.SECPreserved && p.DEDPreserved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
