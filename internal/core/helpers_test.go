package core

import "repro/internal/ecc"

// geneticTestOpts returns a small, fast genetic configuration for tests.
func geneticTestOpts() ecc.GeneticOptions {
	return ecc.GeneticOptions{Population: 6, Generations: 3, TripleTrials: 2000, Seed: 7}
}
