package core

import (
	"fmt"

	"repro/internal/gf2"
)

// Properties reports the verified structural guarantees of an AFT-ECC
// code, established by direct matrix checks (the set-intersection
// constraints of Figure 4) rather than trusting the constructor.
type Properties struct {
	// AliasFree: the tag submatrix has full column rank, so no tag
	// mismatch maps to the zero syndrome (0 ∉ T).
	AliasFree bool
	// SECPreserved: no member of the tag column space collides with a
	// data or identity column, so single-bit correction is unambiguous.
	SECPreserved bool
	// DEDPreserved: the underlying data/identity columns all have odd
	// weight and are distinct (Hsiao SEC-DED), and the tag column space is
	// all-even, so double-bit data errors can never be miscorrected.
	DEDPreserved bool
	// TagAllEven / DataAllOdd record the §3.5 recommendation the
	// construction follows.
	TagAllEven bool
	DataAllOdd bool
	// MaxTagRowOnes is the largest number of ones any row of T carries;
	// the Equation 6 staircase guarantees ≤ 2, which is why AFT-ECC adds
	// no XOR-tree level (Table 3's "no added delay").
	MaxTagRowOnes int
}

// Verify exhaustively checks the AFT-ECC invariants of c.
func Verify(c *Code) Properties {
	var p Properties
	tag := c.TagMatrix()
	p.AliasFree = tag.HasFullColumnRank()
	p.TagAllEven = tag.AllColumnsEvenWeight()
	p.MaxTagRowOnes = tag.MaxRowWeight()

	data := c.DataMatrix()
	p.DataAllOdd = data.AllColumnsOddWeight()

	// SEC preservation: enumerate colspace(T) and confirm disjointness
	// from every data/identity column.
	space := map[uint64]bool{}
	for _, v := range tag.ColumnSpace() {
		if v != 0 {
			space[v] = true
		}
	}
	p.SECPreserved = true
	for i := 0; i < c.PhysicalBits(); i++ {
		if space[c.physColumn(i)] {
			p.SECPreserved = false
			break
		}
	}

	// DED: distinct odd data/identity columns give distance ≥ 4 among
	// data errors; an all-even tag space can never produce an odd
	// (column-like) syndrome, so 2-bit data errors stay detected.
	distinct := gf2.Concat(data, gf2.Identity(c.R())).ColumnsDistinct()
	p.DEDPreserved = p.DataAllOdd && p.TagAllEven && distinct && p.SECPreserved
	return p
}

// MustVerify panics unless every AFT-ECC invariant holds. Experiment
// drivers call this once per constructed code so that any regression in
// the construction is loud.
func MustVerify(c *Code) {
	p := Verify(c)
	if !p.AliasFree || !p.SECPreserved || !p.DEDPreserved {
		panic(fmt.Sprintf("core: %v failed verification: %+v", c, p))
	}
}
