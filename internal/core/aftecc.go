package core

import (
	"fmt"
	"math/bits"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Status is the outcome of an AFT-ECC decode (Figure 3b / Figure 10).
type Status int

const (
	// StatusOK: zero syndrome — no error, and the key tag matched the
	// encoded lock tag.
	StatusOK Status = iota
	// StatusCorrected: a single-bit data or check-bit error was repaired.
	StatusCorrected
	// StatusTMM: the syndrome fell in the column space of the tag
	// submatrix — a tag mismatch (or, rarely, a misattributed even-weight
	// multi-bit data error; see Table 2 and §4.3's precise diagnosis).
	StatusTMM
	// StatusDUE: a detected-uncorrectable data error.
	StatusDUE
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusCorrected:
		return "corrected"
	case StatusTMM:
		return "TMM"
	case StatusDUE:
		return "DUE"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// DataStrategy selects how the data submatrix is chosen.
type DataStrategy int

const (
	// DataGreedy uses the deterministic greedy row-balanced
	// minimum-odd-weight construction (fast; always available).
	DataGreedy DataStrategy = iota
	// DataGenetic runs the §3.5 genetic search (slower; slightly better
	// 3-bit detection and row balance).
	DataGenetic
)

// Options configures NewCode.
type Options struct {
	Strategy DataStrategy
	Genetic  ecc.GeneticOptions
	// TagMatrix overrides the Equation 6 staircase with a custom R×TS tag
	// submatrix. The alias-free validation still runs unless AllowAlias is
	// set; Verify reports the structural properties of whatever matrix is
	// supplied.
	TagMatrix *gf2.Matrix
	// AllowAlias skips the alias-free validation of the tag column space
	// (zero-syndrome tag patterns, collisions with correctable columns).
	// Aliased syndromes are left out of the TMM table, so the decoder
	// silently accepts or miscorrects them — the failure mode the paper's
	// construction rules out. Use it to build the deliberately aliasing
	// baselines the negative tests and the injection harness's
	// differential suite exercise; such codes fail MustVerify.
	AllowAlias bool
}

// Code is an Alias-Free Tagged ECC code with k data bits, r check bits and
// a ts-bit embedded tag. Its parity-check matrix is H = (T | D | I) with a
// weight-2 staircase T (Equation 6) and minimum-odd-weight-column D.
//
// Virtual codeword bit positions (used for error-pattern bookkeeping) are
// laid out tag-first, matching Equation 4: bits [0,TS) are tag positions
// (never physically stored), [TS, TS+K) data, [TS+K, TS+K+R) check bits.
type Code struct {
	k, r, ts int
	tag      *gf2.Matrix // R×TS staircase
	dataCols []uint64

	synToBit map[uint64]int    // data/check single-bit-error syndrome -> physical bit
	tagSyn   map[uint64]uint64 // syndrome -> tag-error pattern (nonzero members of colspace(T))
}

// NewCode constructs an AFT-ECC code. It validates the paper's tag-size
// bound (Equation 5b) and the structural requirements, and fails rather
// than silently producing a code without the alias-free or SEC properties.
func NewCode(k, r, ts int, opts Options) (*Code, error) {
	maxTS, err := MaxTagSize(k, r)
	if err != nil {
		return nil, err
	}
	if ts < 1 {
		return nil, fmt.Errorf("core: tag size %d must be ≥ 1 (use package ecc for untagged codes)", ts)
	}
	if ts > maxTS {
		return nil, fmt.Errorf("core: TS=%d exceeds the alias-free bound %d for (K=%d, R=%d)", ts, maxTS, k, r)
	}
	tag := opts.TagMatrix
	if tag == nil {
		tag, err = StaircaseTagMatrix(r, ts)
		if err != nil {
			return nil, err
		}
	} else {
		if tag.Rows() != r || tag.Cols() != ts {
			return nil, fmt.Errorf("core: custom tag matrix is %d×%d, want %d×%d", tag.Rows(), tag.Cols(), r, ts)
		}
		tag = tag.Clone()
	}

	var base *ecc.Code
	switch opts.Strategy {
	case DataGenetic:
		base, err = ecc.NewGeneticSECDED(k, r, opts.Genetic)
	default:
		base, err = ecc.NewHsiao(k, r)
	}
	if err != nil {
		return nil, err
	}

	c := &Code{k: k, r: r, ts: ts, tag: tag}
	c.dataCols = make([]uint64, k)
	for i := 0; i < k; i++ {
		c.dataCols[i] = base.Column(i)
	}

	c.synToBit = make(map[uint64]int, k+r)
	for i := 0; i < k+r; i++ {
		s := c.physColumn(i)
		if prev, dup := c.synToBit[s]; dup {
			return nil, fmt.Errorf("core: data/check columns %d and %d collide", prev, i)
		}
		c.synToBit[s] = i
	}

	// Enumerate the column space of T: every nonzero member is the
	// syndrome of exactly one tag-error pattern (alias-free ⇒ bijection).
	c.tagSyn = make(map[uint64]uint64, 1<<uint(ts))
	for pattern := uint64(1); pattern < 1<<uint(ts); pattern++ {
		s := tag.MulBits(pattern)
		if s == 0 {
			if opts.AllowAlias {
				// An undetectable tag mismatch: the decoder sees a clean
				// codeword. Leaving it out of the table reproduces that.
				continue
			}
			return nil, fmt.Errorf("core: tag submatrix is not alias-free: pattern %#x has zero syndrome", pattern)
		}
		if _, clash := c.synToBit[s]; clash {
			if opts.AllowAlias {
				// The decoder miscorrects this mismatch as a single-bit
				// data error — silent corruption, by design of the test.
				continue
			}
			return nil, fmt.Errorf("core: tag syndrome %#x collides with a correctable column; SEC would be lost", s)
		}
		if _, dup := c.tagSyn[s]; dup {
			if opts.AllowAlias {
				continue
			}
			return nil, fmt.Errorf("core: tag syndrome %#x maps to two tag-error patterns", s)
		}
		c.tagSyn[s] = pattern
	}
	return c, nil
}

// K returns the number of data bits per codeword.
func (c *Code) K() int { return c.k }

// R returns the number of check bits.
func (c *Code) R() int { return c.r }

// TS returns the embedded tag size in bits.
func (c *Code) TS() int { return c.ts }

// N returns the virtual codeword length TS+K+R (Equation 4).
func (c *Code) N() int { return c.ts + c.k + c.r }

// PhysicalBits returns the number of physically stored bits, K+R: the tag
// positions are virtual and never written to memory.
func (c *Code) PhysicalBits() int { return c.k + c.r }

// TagMask returns a mask of the valid tag bits.
func (c *Code) TagMask() uint64 { return uint64(1)<<uint(c.ts) - 1 }

// TagMatrix returns a copy of the R×TS tag submatrix.
func (c *Code) TagMatrix() *gf2.Matrix { return c.tag.Clone() }

// DataMatrix returns a copy of the R×K data submatrix.
func (c *Code) DataMatrix() *gf2.Matrix { return gf2.FromColumns(c.r, c.dataCols) }

// H returns the full parity-check matrix (T | D | I).
func (c *Code) H() *gf2.Matrix {
	return gf2.Concat(c.tag, c.DataMatrix(), gf2.Identity(c.r))
}

// physColumn returns the H column of physical bit i (0..K-1 data,
// K..K+R-1 check).
func (c *Code) physColumn(i int) uint64 {
	if i < c.k {
		return c.dataCols[i]
	}
	return 1 << uint(i-c.k)
}

// Column returns the H column of virtual codeword bit i in the Equation 4
// layout: tag bits first, then data, then check bits.
func (c *Code) Column(i int) uint64 {
	if i < c.ts {
		return c.tag.Col(i)
	}
	return c.physColumn(i - c.ts)
}

// TagSyndrome computes T*tag, the tag's contribution to the check bits.
func (c *Code) TagSyndrome(tag uint64) uint64 {
	if tag&^c.TagMask() != 0 {
		panic(fmt.Sprintf("core: tag %#x exceeds %d bits", tag, c.ts))
	}
	return c.tag.MulBits(tag)
}

// Encode computes the check bits for a data vector under lockTag:
// check = D*data ⊕ T*lockTag. The lock tag itself is not stored anywhere —
// that is the entire point of implicit tagging.
func (c *Code) Encode(data *gf2.BitVec, lockTag uint64) uint64 {
	if data.Len() != c.k {
		panic(fmt.Sprintf("core: Encode expects %d data bits, got %d", c.k, data.Len()))
	}
	return c.dataSyndrome(data) ^ c.TagSyndrome(lockTag)
}

func (c *Code) dataSyndrome(data *gf2.BitVec) uint64 {
	var s uint64
	for w, word := range data.Words() {
		base := w * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			s ^= c.dataCols[base+b]
			word &= word - 1
		}
	}
	return s
}

// Result describes an AFT-ECC decode outcome.
type Result struct {
	Status   Status
	Syndrome uint64
	// FlippedBit is the repaired physical bit (0..K+R-1) when
	// Status == StatusCorrected, else -1.
	FlippedBit int
	// LockTagEstimate is the decoder's reconstruction of the stored lock
	// tag when Status == StatusTMM: keyTag ⊕ tag-error-pattern (§4.3).
	// If a multi-bit data error was misattributed as a TMM the estimate is
	// corrupted — which is exactly why §4.3's precise diagnosis exists.
	// It is meaningful only for StatusTMM.
	LockTagEstimate uint64
}

// Decode checks received data and check bits against keyTag. Single-bit
// data/check errors are corrected in place (data is mutated when the
// repaired bit is a data bit). A syndrome in the tag column space reports
// StatusTMM with a lock-tag estimate; other nonzero syndromes are DUEs.
func (c *Code) Decode(data *gf2.BitVec, check uint64, keyTag uint64) Result {
	s := c.dataSyndrome(data) ^ check ^ c.TagSyndrome(keyTag)
	return c.resolve(data, s, keyTag)
}

// DecodeSyndrome classifies a precomputed syndrome without touching data.
// It is used by the fault-injection harness, where millions of syndromes
// are evaluated without materializing codewords.
func (c *Code) DecodeSyndrome(s uint64, keyTag uint64) Result {
	return c.resolve(nil, s, keyTag)
}

func (c *Code) resolve(data *gf2.BitVec, s uint64, keyTag uint64) Result {
	if s == 0 {
		return Result{Status: StatusOK, FlippedBit: -1}
	}
	if bit, ok := c.synToBit[s]; ok {
		if data != nil && bit < c.k {
			data.Flip(bit)
		}
		return Result{Status: StatusCorrected, Syndrome: s, FlippedBit: bit}
	}
	if pattern, ok := c.tagSyn[s]; ok {
		return Result{
			Status:          StatusTMM,
			Syndrome:        s,
			FlippedBit:      -1,
			LockTagEstimate: (keyTag ^ pattern) & c.TagMask(),
		}
	}
	return Result{Status: StatusDUE, Syndrome: s, FlippedBit: -1}
}

// ErrorSyndrome computes H*e for an N-bit virtual error pattern (tag bits
// included), per Equation 2.
func (c *Code) ErrorSyndrome(err *gf2.BitVec) uint64 {
	if err.Len() != c.N() {
		panic(fmt.Sprintf("core: ErrorSyndrome expects %d bits, got %d", c.N(), err.Len()))
	}
	var s uint64
	for _, i := range err.SetBits() {
		s ^= c.Column(i)
	}
	return s
}

// PhysicalErrorSyndrome computes the syndrome of an error pattern over the
// physical (data+check) bits only.
func (c *Code) PhysicalErrorSyndrome(err *gf2.BitVec) uint64 {
	if err.Len() != c.PhysicalBits() {
		panic(fmt.Sprintf("core: PhysicalErrorSyndrome expects %d bits, got %d", c.PhysicalBits(), err.Len()))
	}
	var s uint64
	for _, i := range err.SetBits() {
		s ^= c.physColumn(i)
	}
	return s
}

// TagSyndromeTable returns a copy of the syndrome → tag-error-pattern
// table (the "2^R−1 entry syndrome lookup table" the driver uses for lock
// tag extraction in §4.3).
func (c *Code) TagSyndromeTable() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(c.tagSyn))
	for k, v := range c.tagSyn {
		out[k] = v
	}
	return out
}

// IsTagSyndrome reports whether s lies in the column space of the tag
// submatrix (and would therefore be reported as a TMM), returning the
// corresponding tag-error pattern.
func (c *Code) IsTagSyndrome(s uint64) (pattern uint64, ok bool) {
	pattern, ok = c.tagSyn[s]
	return pattern, ok
}

func (c *Code) String() string {
	return fmt.Sprintf("AFT-ECC(K=%d, R=%d, TS=%d)", c.k, c.r, c.ts)
}
