// Package core implements Alias-Free Tagged ECC (AFT-ECC), the central
// contribution of the paper: a class of linear codes whose parity-check
// matrix H = (T | D | I) embeds a TS-bit tag in the check bits such that
//
//  1. every tag mismatch maps to a nonzero syndrome (alias-free: the tag
//     submatrix T has full column rank),
//  2. single-bit data-error correction is preserved (the column space of T
//     is disjoint from the data and identity columns), and
//  3. the tag is as large as possible (TS = R−1 for common codeword sizes).
//
// The tag is never stored: the encoder folds the lock tag into the check
// bits, and the decoder folds the key tag back in. A zero syndrome means
// "no error and the tags match"; a syndrome inside the column space of T
// means a tag mismatch (TMM); a syndrome matching an H column is a
// correctable single-bit error; anything else is a detected-uncorrectable
// error (DUE).
package core
