package core

import (
	"testing"

	"repro/internal/gf2"
)

// FuzzDecodeInvariants drives the IMT-16 decoder with arbitrary data,
// tags, and up-to-two-bit corruption, asserting the §3.6 behavioral
// contract on every input. Run with `go test -fuzz=FuzzDecodeInvariants`
// for continuous fuzzing; the seed corpus runs under plain `go test`.
func FuzzDecodeInvariants(f *testing.F) {
	code, err := NewCode(256, 16, 15, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("seed data"), uint16(0x1234), uint16(0x1234), uint16(0), uint16(0))
	f.Add([]byte{0xFF, 0x00, 0xAB}, uint16(0x7FFF), uint16(0x0001), uint16(3), uint16(3))
	f.Add([]byte{}, uint16(0), uint16(0x4000), uint16(100), uint16(271))

	f.Fuzz(func(t *testing.T, raw []byte, lock16, key16, flipA, flipB uint16) {
		lock := uint64(lock16) & code.TagMask()
		key := uint64(key16) & code.TagMask()
		data := gf2.BitVecFromBytes(256, raw)
		check := code.Encode(data, lock)

		// Corrupt zero, one or two distinct physical bits.
		a := int(flipA) % code.PhysicalBits()
		b := int(flipB) % code.PhysicalBits()
		flips := []int{}
		if flipA%3 != 0 {
			flips = append(flips, a)
		}
		if flipB%3 == 1 && b != a {
			flips = append(flips, b)
		}
		rx := data.Clone()
		rxCheck := check
		for _, bit := range flips {
			if bit < code.K() {
				rx.Flip(bit)
			} else {
				rxCheck ^= 1 << uint(bit-code.K())
			}
		}

		res := code.Decode(rx, rxCheck, key)
		switch {
		case len(flips) == 0 && lock == key:
			if res.Status != StatusOK {
				t.Fatalf("clean decode: %v", res.Status)
			}
		case len(flips) == 0 && lock != key:
			if res.Status != StatusTMM || res.LockTagEstimate != lock {
				t.Fatalf("pure mismatch: %+v (lock %#x key %#x)", res, lock, key)
			}
		case len(flips) == 1 && lock == key:
			if res.Status != StatusCorrected || res.FlippedBit != flips[0] {
				t.Fatalf("1-bit: %+v want corrected bit %d", res, flips[0])
			}
			if !rx.Equal(data) && flips[0] < code.K() {
				t.Fatal("1-bit correction failed to restore data")
			}
		case len(flips) == 2 && lock == key:
			// Table 2: 2-bit errors are always detected, never silent,
			// never "corrected".
			if res.Status == StatusOK || res.Status == StatusCorrected {
				t.Fatalf("2-bit error silent: %v (flips %v)", res.Status, flips)
			}
		default:
			// Mixed corruption + tag mismatch: §3.6 explicitly withdraws
			// the guarantee here — "it cannot guarantee detection of all
			// 1 or 2-bit data errors when combined with an arbitrary tag
			// mismatch", because an even-weight data error can cancel the
			// tag-difference syndrome exactly (the fuzzer found such a
			// pair: flips {92,53} with lock 0x23 vs key 0x3fa8, kept in
			// testdata as a regression seed). The only invariant is that
			// decode returns a well-formed result.
			if res.Status != StatusOK && res.Status != StatusCorrected &&
				res.Status != StatusTMM && res.Status != StatusDUE {
				t.Fatalf("invalid status %v", res.Status)
			}
		}
	})
}
