// Package tracestore is the content-addressed, crash-safe on-disk home
// of uploaded simulation traces.
//
// A trace's identity is the SHA-256 hex digest of its IMTTRC bytes, so
// re-uploading the same trace is a metadata touch, the runner cache key
// for a trace-backed cell can incorporate the digest (routing = cache
// affinity across a cluster), and two tenants uploading the same trace
// share one blob.
//
// On disk a store directory holds three areas:
//
//	dir/tmp/                      in-flight uploads (wiped on Open)
//	dir/blobs/<dg[:2]>/<dg>.trc   committed trace bytes
//	dir/meta/<dg>.json            sidecar: byte-level TraceIndex + info
//
// Commit is temp-and-rename in blob-then-meta order, which makes every
// crash state recoverable on the next Open: a temp file is garbage (an
// upload that never finished), a blob without meta is a validated trace
// whose sidecar write was interrupted (re-indexed and resurrected), and
// a meta without blob is the tail of an interrupted delete (removed).
// No partially written trace is ever visible under blobs/.
//
// Uploads stream: Put validates the bytes with gpusim.IndexTraceStream
// while hashing and spilling them to the temp file, so a multi-GB trace
// costs one op-chunk of memory. Replays stream too: OpenReplay pins the
// blob (refcount against concurrent delete and eviction) and serves
// per-SM traces straight off the file via section readers.
//
// Capacity is a byte quota with LRU eviction (least-recently-used blob
// first, judged by blob mtime, which Put and OpenReplay touch) plus a
// TTL sweep; pinned blobs and blobs the InUse callback claims (e.g.
// referenced by a queued job) are never evicted or deleted.
package tracestore
