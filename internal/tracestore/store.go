package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/gpusim"
	"repro/internal/obs"
)

// Sentinel errors; the serving layer maps them to typed HTTP failures
// (404 trace_not_found, 413 trace_quota, 409 trace_in_use, 400).
var (
	ErrNotFound  = errors.New("tracestore: trace not found")
	ErrOverQuota = errors.New("tracestore: over quota")
	ErrInUse     = errors.New("tracestore: trace in use")
	ErrBadTrace  = errors.New("tracestore: invalid trace stream")
)

// ValidDigest reports whether s is a well-formed trace id: the
// lowercase SHA-256 hex digest of the blob bytes.
func ValidDigest(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Options configures a Store.
type Options struct {
	// Dir is the store root; created if absent.
	Dir string
	// QuotaBytes caps total committed blob bytes; 0 means unlimited.
	// Put evicts least-recently-used unreferenced blobs to make room
	// and rejects uploads that cannot fit even after eviction.
	QuotaBytes int64
	// TTL expires blobs unused for longer than this on the next GC
	// (Open, Put, or an explicit GC call); 0 means never.
	TTL time.Duration
	// InUse, when non-nil, vetoes eviction/GC/delete of a digest that
	// is externally referenced — e.g. by a queued job — even when its
	// replay refcount is zero.
	InUse func(digest string) bool
	// Registry receives tracestore_* metrics; nil uses a private one.
	Registry *obs.Registry
}

// Info describes one committed trace.
type Info struct {
	Digest   string
	Bytes    int64
	NumSMs   int
	TotalOps uint64
	Created  time.Time
	LastUsed time.Time
}

// Stats is a point-in-time snapshot of store usage and lifetime
// counters (mirrored in the tracestore_* metrics).
type Stats struct {
	Blobs      int64
	Bytes      int64
	QuotaBytes int64
	Puts       uint64
	PutHits    uint64
	Rejected   uint64
	Evictions  uint64
	Deletes    uint64
	GCRemoved  uint64
}

// metaFile is the persisted sidecar for one blob.
type metaFile struct {
	Digest        string            `json:"digest"`
	CreatedUnixMs int64             `json:"created_unix_ms"`
	Index         gpusim.TraceIndex `json:"index"`
}

type entry struct {
	idx      gpusim.TraceIndex
	created  time.Time
	lastUsed time.Time
	refs     int
}

// Store is a content-addressed trace blob store. Safe for concurrent
// use.
type Store struct {
	opts Options
	dir  string

	mu      sync.Mutex
	entries map[string]*entry
	usage   int64

	mPuts      *obs.Counter
	mPutHits   *obs.Counter
	mRejected  *obs.Counter
	mEvictions *obs.Counter
	mDeletes   *obs.Counter
	mGCRemoved *obs.Counter
	gBlobs     *obs.Gauge
	gBytes     *obs.Gauge
}

func (s *Store) tmpDir() string { return filepath.Join(s.dir, "tmp") }
func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, "blobs", digest[:2], digest+".trc")
}
func (s *Store) metaPath(digest string) string {
	return filepath.Join(s.dir, "meta", digest+".json")
}

// Open opens (creating if needed) the store rooted at opts.Dir and
// recovers from any crash state: in-flight temp files are removed, a
// blob that lost its sidecar is re-validated and re-indexed, a sidecar
// that lost its blob is dropped. Finishes with a TTL GC pass.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("tracestore: empty dir")
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s := &Store{opts: opts, dir: opts.Dir, entries: map[string]*entry{}}
	reg := opts.Registry
	s.mPuts = reg.Counter("tracestore_puts_total", "trace uploads accepted (including content-address hits)")
	s.mPutHits = reg.Counter("tracestore_put_hits_total", "trace uploads resolved as content-address hits")
	s.mRejected = reg.Counter("tracestore_put_rejected_total", "trace uploads rejected (invalid stream or over quota)")
	s.mEvictions = reg.Counter("tracestore_evictions_total", "blobs evicted by the LRU quota")
	s.mDeletes = reg.Counter("tracestore_deletes_total", "blobs removed by explicit DELETE")
	s.mGCRemoved = reg.Counter("tracestore_gc_removed_total", "blobs and orphans removed by GC (TTL sweep and crash recovery)")
	s.gBlobs = reg.Gauge("tracestore_blobs", "committed trace blobs resident in the store")
	s.gBytes = reg.Gauge("tracestore_bytes", "committed trace bytes resident in the store")

	for _, d := range []string{s.tmpDir(), filepath.Join(s.dir, "blobs"), filepath.Join(s.dir, "meta")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	// Crash recovery 1: any temp file is an upload that never
	// committed — invisible to readers, safe to drop.
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, err
	}
	for _, de := range tmps {
		if err := os.Remove(filepath.Join(s.tmpDir(), de.Name())); err == nil {
			s.mGCRemoved.Inc()
		}
	}
	// Load sidecars; crash recovery 2: meta without blob is the tail
	// of an interrupted delete.
	metas, err := os.ReadDir(filepath.Join(s.dir, "meta"))
	if err != nil {
		return nil, err
	}
	for _, de := range metas {
		digest, ok := metaDigest(de.Name())
		if !ok {
			continue
		}
		mf, err := readMeta(s.metaPath(digest))
		st, statErr := os.Stat(s.blobPath(digest))
		if err != nil || mf.Digest != digest || statErr != nil || st.Size() != mf.Index.Bytes {
			os.Remove(s.metaPath(digest))
			s.mGCRemoved.Inc()
			continue
		}
		s.entries[digest] = &entry{
			idx:      mf.Index,
			created:  time.UnixMilli(mf.CreatedUnixMs),
			lastUsed: st.ModTime(),
		}
		s.usage += mf.Index.Bytes
	}
	// Crash recovery 3: blob without meta — commit renamed the blob
	// but crashed before the sidecar landed. The blob passed
	// validation before commit; re-verify digest and index, then
	// resurrect it.
	blobDirs, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return nil, err
	}
	for _, bd := range blobDirs {
		if !bd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, "blobs", bd.Name()))
		if err != nil {
			continue
		}
		for _, de := range files {
			digest, ok := blobDigest(de.Name())
			if !ok || s.entries[digest] != nil {
				continue
			}
			if err := s.resurrect(digest); err != nil {
				os.Remove(s.blobPath(digest))
				s.mGCRemoved.Inc()
			}
		}
	}
	s.gcLocked(time.Now())
	s.updateGauges()
	return s, nil
}

func metaDigest(name string) (string, bool) {
	d, ok := cutSuffix(name, ".json")
	if !ok || !ValidDigest(d) {
		return "", false
	}
	return d, true
}

func blobDigest(name string) (string, bool) {
	d, ok := cutSuffix(name, ".trc")
	if !ok || !ValidDigest(d) {
		return "", false
	}
	return d, true
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) < len(suffix) || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[:len(s)-len(suffix)], true
}

func readMeta(path string) (metaFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return metaFile{}, err
	}
	var mf metaFile
	if err := json.Unmarshal(b, &mf); err != nil {
		return metaFile{}, err
	}
	return mf, nil
}

// resurrect re-validates and re-indexes a blob whose sidecar is
// missing, rewriting the sidecar. The digest is re-verified: a blob
// whose content does not hash to its name is corrupt and rejected.
func (s *Store) resurrect(digest string) error {
	f, err := os.Open(s.blobPath(digest))
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	idx, err := gpusim.IndexTraceStream(io.TeeReader(f, h))
	if err != nil {
		return err
	}
	if hex.EncodeToString(h.Sum(nil)) != digest {
		return fmt.Errorf("tracestore: blob %s content does not match its digest", digest)
	}
	st, err := os.Stat(s.blobPath(digest))
	if err != nil {
		return err
	}
	now := time.Now()
	if err := s.writeMeta(metaFile{Digest: digest, CreatedUnixMs: now.UnixMilli(), Index: idx}); err != nil {
		return err
	}
	s.entries[digest] = &entry{idx: idx, created: now, lastUsed: st.ModTime()}
	s.usage += idx.Bytes
	return nil
}

// writeMeta commits a sidecar via temp-and-rename.
func (s *Store) writeMeta(mf metaFile) error {
	b, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.tmpDir(), "meta-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, s.metaPath(mf.Digest)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// quotaWriter fails an upload the moment it exceeds the whole-store
// quota: no single blob can ever fit, so there is no point spilling
// the rest of a multi-GB stream to disk first.
type quotaWriter struct {
	w   io.Writer
	n   int64
	max int64 // 0 = unlimited
}

func (q *quotaWriter) Write(p []byte) (int, error) {
	q.n += int64(len(p))
	if q.max > 0 && q.n > q.max {
		return 0, fmt.Errorf("%w: upload exceeds store quota (%d bytes)", ErrOverQuota, q.max)
	}
	return q.w.Write(p)
}

// Put streams one IMTTRC upload into the store: the bytes are hashed,
// validated (every op decoded through bounded chunks), and spilled to
// a temp file in a single pass, then committed under their digest.
// created=false means the trace was already resident (a content-address
// hit); the upload is discarded and the blob's LRU clock touched.
func (s *Store) Put(r io.Reader) (Info, bool, error) {
	tmp, err := os.CreateTemp(s.tmpDir(), "put-*")
	if err != nil {
		return Info{}, false, err
	}
	tmpName := tmp.Name()
	discard := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	h := sha256.New()
	qw := &quotaWriter{w: io.MultiWriter(h, tmp), max: s.opts.QuotaBytes}
	idx, err := gpusim.IndexTraceStream(io.TeeReader(r, qw))
	if err != nil {
		discard()
		if errors.Is(err, ErrOverQuota) {
			s.mRejected.Inc()
			return Info{}, false, err
		}
		s.mRejected.Inc()
		return Info{}, false, fmt.Errorf("%w: %w", ErrBadTrace, err)
	}
	if err := tmp.Sync(); err != nil {
		discard()
		return Info{}, false, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return Info{}, false, err
	}
	digest := hex.EncodeToString(h.Sum(nil))
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[digest]; ok {
		os.Remove(tmpName)
		s.touchLocked(digest, e, now)
		s.mPuts.Inc()
		s.mPutHits.Inc()
		return s.infoLocked(digest, e), false, nil
	}
	if err := s.makeRoomLocked(idx.Bytes); err != nil {
		os.Remove(tmpName)
		s.mRejected.Inc()
		return Info{}, false, err
	}
	// Commit: blob first, sidecar second. A crash between the two
	// leaves a blob-without-meta, which Open resurrects — the upload
	// stays committed either way.
	if err := os.MkdirAll(filepath.Dir(s.blobPath(digest)), 0o755); err != nil {
		os.Remove(tmpName)
		return Info{}, false, err
	}
	if err := os.Rename(tmpName, s.blobPath(digest)); err != nil {
		os.Remove(tmpName)
		return Info{}, false, err
	}
	os.Chtimes(s.blobPath(digest), now, now)
	if err := s.writeMeta(metaFile{Digest: digest, CreatedUnixMs: now.UnixMilli(), Index: idx}); err != nil {
		// The blob is committed and valid; the next Open resurrects
		// the sidecar. Fail the request anyway: the caller must not
		// trust a store state we could not fully persist.
		return Info{}, false, err
	}
	e := &entry{idx: idx, created: now, lastUsed: now}
	s.entries[digest] = e
	s.usage += idx.Bytes
	s.mPuts.Inc()
	s.updateGauges()
	return s.infoLocked(digest, e), true, nil
}

// makeRoomLocked evicts least-recently-used unpinned blobs until need
// bytes fit under the quota, or fails with ErrOverQuota.
func (s *Store) makeRoomLocked(need int64) error {
	if s.opts.QuotaBytes <= 0 {
		return nil
	}
	if need > s.opts.QuotaBytes {
		return fmt.Errorf("%w: trace (%d bytes) exceeds store quota (%d bytes)", ErrOverQuota, need, s.opts.QuotaBytes)
	}
	for s.usage+need > s.opts.QuotaBytes {
		victim := ""
		var oldest time.Time
		for digest, e := range s.entries {
			if e.refs > 0 || s.inUse(digest) {
				continue
			}
			if victim == "" || e.lastUsed.Before(oldest) {
				victim, oldest = digest, e.lastUsed
			}
		}
		if victim == "" {
			return fmt.Errorf("%w: %d bytes needed but every resident blob is referenced", ErrOverQuota, need)
		}
		s.removeLocked(victim)
		s.mEvictions.Inc()
	}
	return nil
}

func (s *Store) inUse(digest string) bool {
	return s.opts.InUse != nil && s.opts.InUse(digest)
}

// removeLocked deletes a blob's files and entry. Blob first, meta
// second: a crash in between leaves meta-without-blob, which Open
// drops (the delete wins), never a resurrected half-deleted blob.
func (s *Store) removeLocked(digest string) {
	e := s.entries[digest]
	os.Remove(s.blobPath(digest))
	os.Remove(s.metaPath(digest))
	delete(s.entries, digest)
	s.usage -= e.idx.Bytes
	s.updateGauges()
}

func (s *Store) touchLocked(digest string, e *entry, now time.Time) {
	e.lastUsed = now
	os.Chtimes(s.blobPath(digest), now, now)
}

func (s *Store) infoLocked(digest string, e *entry) Info {
	return Info{
		Digest:   digest,
		Bytes:    e.idx.Bytes,
		NumSMs:   e.idx.NumSMs,
		TotalOps: e.idx.TotalOps,
		Created:  e.created,
		LastUsed: e.lastUsed,
	}
}

// Stat returns the info for one resident trace.
func (s *Store) Stat(digest string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return s.infoLocked(digest, e), nil
}

// List returns every resident trace, sorted by digest.
func (s *Store) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.entries))
	for digest, e := range s.entries {
		out = append(out, s.infoLocked(digest, e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Delete removes a trace. A trace pinned by an open replay or claimed
// by the InUse callback fails with ErrInUse.
func (s *Store) Delete(digest string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if e.refs > 0 {
		return Info{}, fmt.Errorf("%w: %s has %d open replays", ErrInUse, digest, e.refs)
	}
	if s.inUse(digest) {
		return Info{}, fmt.Errorf("%w: %s is referenced by a queued job", ErrInUse, digest)
	}
	info := s.infoLocked(digest, e)
	s.removeLocked(digest)
	s.mDeletes.Inc()
	return info, nil
}

// GC runs a TTL sweep: unpinned, unclaimed blobs unused for longer
// than Options.TTL are removed. Returns how many were removed.
func (s *Store) GC(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked(now)
}

func (s *Store) gcLocked(now time.Time) int {
	if s.opts.TTL <= 0 {
		return 0
	}
	var expired []string
	for digest, e := range s.entries {
		if e.refs > 0 || s.inUse(digest) {
			continue
		}
		if now.Sub(e.lastUsed) > s.opts.TTL {
			expired = append(expired, digest)
		}
	}
	for _, digest := range expired {
		s.removeLocked(digest)
		s.mGCRemoved.Inc()
	}
	return len(expired)
}

// Stats snapshots usage and lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	blobs, bytes := int64(len(s.entries)), s.usage
	s.mu.Unlock()
	return Stats{
		Blobs:      blobs,
		Bytes:      bytes,
		QuotaBytes: s.opts.QuotaBytes,
		Puts:       s.mPuts.Value(),
		PutHits:    s.mPutHits.Value(),
		Rejected:   s.mRejected.Value(),
		Evictions:  s.mEvictions.Value(),
		Deletes:    s.mDeletes.Value(),
		GCRemoved:  s.mGCRemoved.Value(),
	}
}

func (s *Store) updateGauges() {
	s.gBlobs.Set(float64(len(s.entries)))
	s.gBytes.Set(float64(s.usage))
}

// Replay is a pinned, open handle on one trace blob. While open, the
// blob cannot be deleted or evicted. Close releases the pin.
type Replay struct {
	s      *Store
	digest string
	f      *os.File
	idx    gpusim.TraceIndex
	info   Info
	once   sync.Once
}

// OpenReplay pins a trace and opens its blob for streaming replay.
func (s *Store) OpenReplay(digest string) (*Replay, error) {
	s.mu.Lock()
	e, ok := s.entries[digest]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	e.refs++
	now := time.Now()
	s.touchLocked(digest, e, now)
	info := s.infoLocked(digest, e)
	idx := e.idx
	s.mu.Unlock()

	f, err := os.Open(s.blobPath(digest))
	if err != nil {
		s.mu.Lock()
		e.refs--
		s.mu.Unlock()
		return nil, err
	}
	return &Replay{s: s, digest: digest, f: f, idx: idx, info: info}, nil
}

// Info returns the replayed trace's description.
func (r *Replay) Info() Info { return r.info }

// Blob returns a fresh reader over the raw committed bytes (for
// download and shard-to-shard transfer); independent of Traces.
func (r *Replay) Blob() *io.SectionReader {
	return io.NewSectionReader(r.f, 0, r.idx.Bytes)
}

// Traces returns numSMs per-SM traces replaying straight off the blob
// through section readers — nothing is materialized. SMs beyond the
// trace's own count are nil (idle). Every call returns independent,
// rewound streams, matching the runner's Traces-callback contract. The
// caller must ensure numSMs covers the trace (the serving layer
// validates this at resolve time).
func (r *Replay) Traces(numSMs int) []gpusim.Trace {
	base := gpusim.OpenTraceAt(r.f, r.idx)
	out := make([]gpusim.Trace, numSMs)
	copy(out, base)
	return out
}

// Close releases the pin and the file handle. Idempotent.
func (r *Replay) Close() error {
	var err error
	r.once.Do(func() {
		r.s.mu.Lock()
		if e, ok := r.s.entries[r.digest]; ok {
			e.refs--
		}
		r.s.mu.Unlock()
		err = r.f.Close()
	})
	return err
}
