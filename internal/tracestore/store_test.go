package tracestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gpusim"
)

// testBlob encodes a small trace whose content (and therefore digest)
// is parameterized by seed. Addresses stay inside one varint width
// band so equal op counts give equal blob sizes regardless of seed —
// the quota tests size their quotas in multiples of one blob.
func testBlob(t testing.TB, seed uint64, ops int) []byte {
	t.Helper()
	ws := make([]gpusim.WarpOp, ops)
	for i := range ws {
		ws[i] = gpusim.WarpOp{
			Store:   i%2 == 0,
			Addrs:   []uint64{0x10000 + seed*4096 + uint64(i)*32, 0x20000 + seed*64},
			Compute: int(seed % 7),
		}
	}
	var buf bytes.Buffer
	err := gpusim.WriteTraces(&buf, []gpusim.Trace{&gpusim.SliceTrace{Ops: ws}, nil})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustPut(t *testing.T, s *Store, blob []byte) Info {
	t.Helper()
	info, _, err := s.Put(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestPutStatListDelete(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	blob := testBlob(t, 1, 10)
	info, created, err := s.Put(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported a content-address hit")
	}
	if !ValidDigest(info.Digest) || info.Bytes != int64(len(blob)) || info.NumSMs != 2 || info.TotalOps != 10 {
		t.Fatalf("info = %+v", info)
	}
	// Idempotent re-upload: same digest, created=false, hit counted.
	again, created, err := s.Put(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if created || again.Digest != info.Digest {
		t.Fatalf("re-upload: created=%v digest=%s, want hit on %s", created, again.Digest, info.Digest)
	}
	if st := s.Stats(); st.Puts != 2 || st.PutHits != 1 || st.Blobs != 1 || st.Bytes != int64(len(blob)) {
		t.Fatalf("stats = %+v", st)
	}
	got, err := s.Stat(info.Digest)
	if err != nil || got.Digest != info.Digest {
		t.Fatalf("Stat: %+v, %v", got, err)
	}
	if _, err := s.Stat(strings.Repeat("0", 64)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat(absent) = %v, want ErrNotFound", err)
	}
	if l := s.List(); len(l) != 1 || l[0].Digest != info.Digest {
		t.Fatalf("List = %+v", l)
	}
	if _, err := s.Delete(info.Digest); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(info.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Blobs != 0 || st.Bytes != 0 || st.Deletes != 1 {
		t.Fatalf("stats after delete = %+v", st)
	}
}

func TestPutRejectsInvalidStream(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{
		[]byte("not a trace"),
		[]byte("IMTTRC1\n\x02\x05"),    // truncated
		append(testBlob(t, 1, 3), 'x'), // trailing data
	} {
		if _, _, err := s.Put(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("Put(%q...) = %v, want ErrBadTrace", b[:min(8, len(b))], err)
		}
	}
	if st := s.Stats(); st.Rejected != 3 || st.Blobs != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Rejected uploads must leave no temp litter behind.
	tmps, _ := os.ReadDir(filepath.Join(s.dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("%d temp files left after rejected uploads", len(tmps))
	}
}

func TestReplayStreamsAndPins(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	blob := testBlob(t, 3, 17)
	info := mustPut(t, s, blob)

	rep, err := s.OpenReplay(info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	// Replay must match a fully materialized read, twice over (each
	// Traces call is an independent rewound stream).
	want, err := gpusim.ReadTraces(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	wantOps := want[0].(*gpusim.SliceTrace).Ops
	for round := 0; round < 2; round++ {
		traces := rep.Traces(4)
		if len(traces) != 4 || traces[2] != nil || traces[3] != nil {
			t.Fatalf("round %d: %d traces, extras not idle", round, len(traces))
		}
		var got []gpusim.WarpOp
		for {
			op, ok := traces[0].Next()
			if !ok {
				break
			}
			got = append(got, op)
		}
		if len(got) != len(wantOps) {
			t.Fatalf("round %d: replayed %d ops, want %d", round, len(got), len(wantOps))
		}
		for i := range got {
			if got[i].Store != wantOps[i].Store || got[i].Compute != wantOps[i].Compute ||
				len(got[i].Addrs) != len(wantOps[i].Addrs) || got[i].Addrs[0] != wantOps[i].Addrs[0] {
				t.Fatalf("round %d: op %d = %+v, want %+v", round, i, got[i], wantOps[i])
			}
		}
	}
	// Raw blob download matches the upload byte for byte.
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(rep.Blob()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Bytes(), blob) {
		t.Fatal("Blob() bytes differ from the uploaded bytes")
	}
	// Pinned: DELETE must refuse while the replay is open.
	if _, err := s.Delete(info.Digest); !errors.Is(err, ErrInUse) {
		t.Fatalf("Delete(pinned) = %v, want ErrInUse", err)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Delete(info.Digest); err != nil {
		t.Fatalf("Delete after Close: %v", err)
	}
}

func TestDeleteRespectsInUseCallback(t *testing.T) {
	held := map[string]bool{}
	s, err := Open(Options{Dir: t.TempDir(), InUse: func(d string) bool { return held[d] }})
	if err != nil {
		t.Fatal(err)
	}
	info := mustPut(t, s, testBlob(t, 9, 5))
	held[info.Digest] = true
	if _, err := s.Delete(info.Digest); !errors.Is(err, ErrInUse) {
		t.Fatalf("Delete(job-referenced) = %v, want ErrInUse", err)
	}
	held[info.Digest] = false
	if _, err := s.Delete(info.Digest); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecovery simulates every mid-commit crash state the commit
// protocol can produce and checks Open recovers each one.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	committed := mustPut(t, s, testBlob(t, 1, 8))

	// Crash state 1: an upload died mid-stream — a temp file exists,
	// nothing is committed. It must never become visible and must be
	// swept on re-open.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "put-crashed"), testBlob(t, 2, 4)[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash state 2: blob renamed, sidecar never written. The blob is
	// complete and validated — Open must resurrect it.
	orphanBlob := testBlob(t, 3, 6)
	orphanInfo := mustPut(t, s, orphanBlob)
	if err := os.Remove(filepath.Join(dir, "meta", orphanInfo.Digest+".json")); err != nil {
		t.Fatal(err)
	}
	// Crash state 3: delete removed the blob, died before the meta.
	halfDeleted := mustPut(t, s, testBlob(t, 4, 6))
	if err := os.Remove(filepath.Join(dir, "blobs", halfDeleted.Digest[:2], halfDeleted.Digest+".trc")); err != nil {
		t.Fatal(err)
	}
	// Crash state 4: a corrupt file squatting under a digest name that
	// does not hash to it must be dropped, not resurrected.
	bogus := strings.Repeat("ab", 32)
	if err := os.MkdirAll(filepath.Join(dir, "blobs", bogus[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", bogus[:2], bogus+".trc"), testBlob(t, 5, 3), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Stat(committed.Digest); err != nil {
		t.Fatalf("committed blob lost across crash: %v", err)
	}
	got, err := s2.Stat(orphanInfo.Digest)
	if err != nil {
		t.Fatalf("blob-without-meta not resurrected: %v", err)
	}
	if got.Bytes != int64(len(orphanBlob)) || got.NumSMs != orphanInfo.NumSMs {
		t.Fatalf("resurrected info = %+v, want %+v", got, orphanInfo)
	}
	if _, err := s2.Stat(halfDeleted.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("half-deleted blob resurrected: %v", err)
	}
	if _, err := s2.Stat(bogus); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt squatter admitted: %v", err)
	}
	tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("%d orphaned temp files survived re-open", len(tmps))
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs", bogus[:2], bogus+".trc")); !os.IsNotExist(err) {
		t.Fatal("corrupt blob file not removed")
	}
	// Usage accounting must reflect exactly the two survivors.
	if st := s2.Stats(); st.Blobs != 2 || st.Bytes != committed.Bytes+got.Bytes {
		t.Fatalf("recovered stats = %+v", st)
	}
	// The resurrected blob must replay.
	rep, err := s2.OpenReplay(orphanInfo.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if op, ok := rep.Traces(2)[0].Next(); !ok || len(op.Addrs) != 2 {
		t.Fatalf("resurrected replay broken: %+v %v", op, ok)
	}
}

func TestQuotaEviction(t *testing.T) {
	blobA := testBlob(t, 1, 40)
	blobB := testBlob(t, 2, 40)
	blobC := testBlob(t, 3, 40)
	per := int64(len(blobA))
	dir := t.TempDir()
	held := map[string]bool{}
	s, err := Open(Options{Dir: dir, QuotaBytes: per*2 + 4, InUse: func(d string) bool { return held[d] }})
	if err != nil {
		t.Fatal(err)
	}
	// A single blob larger than the whole quota is rejected outright
	// (before spilling the rest of the stream).
	if _, _, err := s.Put(bytes.NewReader(testBlob(t, 9, 5000))); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("oversized Put = %v, want ErrOverQuota", err)
	}

	a := mustPut(t, s, blobA)
	time.Sleep(10 * time.Millisecond) // LRU clock is mtime-based
	b := mustPut(t, s, blobB)
	// Touch A (re-upload hit) so B becomes the LRU victim.
	time.Sleep(10 * time.Millisecond)
	mustPut(t, s, blobA)
	time.Sleep(10 * time.Millisecond)
	c := mustPut(t, s, blobC)
	if _, err := s.Stat(b.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim B still resident: %v", err)
	}
	if _, err := s.Stat(a.Digest); err != nil {
		t.Fatalf("recently used A evicted: %v", err)
	}
	if st := s.Stats(); st.Evictions != 1 || st.Blobs != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Quota eviction must never evict a trace referenced by a queued
	// job (InUse) or pinned by an open replay — even when that means
	// rejecting the new upload.
	held[a.Digest] = true
	rep, err := s.OpenReplay(c.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, _, err := s.Put(bytes.NewReader(testBlob(t, 4, 40))); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("Put with every blob referenced = %v, want ErrOverQuota", err)
	}
	if _, err := s.Stat(a.Digest); err != nil {
		t.Fatalf("job-referenced A evicted: %v", err)
	}
	if _, err := s.Stat(c.Digest); err != nil {
		t.Fatalf("pinned C evicted: %v", err)
	}
	// Release the job reference: the next Put may now evict A.
	held[a.Digest] = false
	d := mustPut(t, s, testBlob(t, 4, 40))
	if _, err := s.Stat(a.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("released A not evicted: %v", err)
	}
	if _, err := s.Stat(d.Digest); err != nil {
		t.Fatal(err)
	}
}

func TestTTLGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	old := mustPut(t, s, testBlob(t, 1, 5))
	fresh := mustPut(t, s, testBlob(t, 2, 5))
	// Age the old blob past the TTL via its LRU clock.
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "blobs", old.Digest[:2], old.Digest+".trc"), past, past); err != nil {
		t.Fatal(err)
	}
	// In-memory lastUsed is authoritative until re-open; re-open picks
	// the aged mtime up and the Open-time GC sweeps it.
	s2, err := Open(Options{Dir: dir, TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Stat(old.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired blob survived Open GC: %v", err)
	}
	if _, err := s2.Stat(fresh.Digest); err != nil {
		t.Fatalf("fresh blob swept: %v", err)
	}
	// Explicit GC with a far-future now sweeps the rest.
	if n := s2.GC(time.Now().Add(3 * time.Hour)); n != 1 {
		t.Fatalf("GC removed %d, want 1", n)
	}
	if st := s2.Stats(); st.Blobs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidDigest(t *testing.T) {
	if !ValidDigest(strings.Repeat("0a", 32)) {
		t.Fatal("valid digest rejected")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0A", 32), strings.Repeat("0g", 32), strings.Repeat("0a", 33)} {
		if ValidDigest(bad) {
			t.Fatalf("ValidDigest(%q) accepted", bad)
		}
	}
}
