package conformance

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

// TestCheckOracles runs the full differential pillar: exhaustive
// enumeration on the small codes, ≥10k randomized trials on the
// workhorse sizes, exact tag-syndrome-table rebuilds.
func TestCheckOracles(t *testing.T) {
	if testing.Short() {
		t.Skip("differential oracles are the long pillar; skipped with -short")
	}
	for _, f := range CheckOracles() {
		t.Error(f)
	}
}

// TestOracleCatchesSabotage proves the oracle has teeth: a reference
// decoder whose matrix was tampered with must disagree with production
// somewhere in an exhaustive sweep. An oracle that cannot detect a
// seeded fault verifies nothing.
func TestOracleCatchesSabotage(t *testing.T) {
	c, err := ecc.NewHsiao(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := refFromECC(c)
	rc.h[2][3] ^= 1 // tamper with one matrix bit

	disagreed := false
	base := gf2.NewBitVec(8)
	check := c.Encode(base)
	for pat := uint64(0); pat < 1<<13 && !disagreed; pat++ {
		data := base.Clone()
		rxCheck := check
		for b := 0; b < 13; b++ {
			if pat>>uint(b)&1 == 0 {
				continue
			}
			if b < 8 {
				data.Flip(b)
			} else {
				rxCheck ^= 1 << uint(b-8)
			}
		}
		if diffDecodeECC(c, rc, data, rxCheck) != "" {
			disagreed = true
		}
	}
	if !disagreed {
		t.Fatal("sabotaged reference matrix never disagreed with production: the oracle is vacuous")
	}
}

// TestAFTOracleCatchesSabotage is the same teeth-check for the tagged
// decoder: corrupting the reference tag submatrix must surface as a
// classification disagreement.
func TestAFTOracleCatchesSabotage(t *testing.T) {
	c, err := core.NewCode(16, 6, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra := refFromAFT(c)
	ra.tag[1][2] ^= 1

	disagreed := false
	base := gf2.NewBitVec(16)
	for lock := uint64(0); lock < 32 && !disagreed; lock++ {
		check := c.Encode(base, lock)
		for key := uint64(0); key < 32 && !disagreed; key++ {
			if diffDecodeAFT(c, ra, base.Clone(), check, key) != "" {
				disagreed = true
			}
		}
	}
	if !disagreed {
		t.Fatal("sabotaged reference tag matrix never disagreed with production")
	}
}

// TestReferenceEncodeMatchesProduction checks the naive row-parity
// encoder against the production column-XOR encoder directly.
func TestReferenceEncodeMatchesProduction(t *testing.T) {
	c, err := ecc.NewHsiao(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc := refFromECC(c)
	data := gf2.NewBitVec(64)
	for _, bit := range []int{0, 3, 17, 40, 63} {
		data.Flip(bit)
	}
	want := c.Encode(data)
	got := rc.encode(bitsOf(data))
	for i := 0; i < 8; i++ {
		if byte(want>>uint(i)&1) != got[i] {
			t.Fatalf("check bit %d: production %d, reference %d", i, want>>uint(i)&1, got[i])
		}
	}
}

// TestOracleErrorNamesCode checks the failure message plumbing: a
// mismatch report must identify the code and the divergent quantity.
func TestOracleErrorNamesCode(t *testing.T) {
	c, err := ecc.NewHsiao(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := refFromECC(c)
	for j := range rc.h {
		rc.h[j][0] ^= 1 // break column 0 across all rows
	}
	// A valid codeword with data bit 0 set: production decodes OK, the
	// corrupted reference sees a nonzero syndrome.
	data := gf2.NewBitVec(8)
	data.Flip(0)
	d := diffDecodeECC(c, rc, data, c.Encode(data))
	if d == "" {
		t.Fatal("expected a disagreement")
	}
	if !strings.Contains(d, "production") || !strings.Contains(d, "reference") {
		t.Fatalf("disagreement %q does not attribute both sides", d)
	}
}
