package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/gpusim"
	"repro/internal/reliability"
	"repro/internal/security"
	"repro/internal/tagalloc"
	"repro/internal/workload"
)

// simModes are the tagging configurations every sim cell pins: all tag
// modes through the simulator, with both carve-out geometries since
// they share a TagMode but diverge in traffic.
func simModes() []struct {
	Label string
	Mode  gpusim.TagMode
	Carve gpusim.CarveOut
} {
	return []struct {
		Label string
		Mode  gpusim.TagMode
		Carve gpusim.CarveOut
	}{
		{"none", gpusim.ModeNone, gpusim.CarveOut{}},
		{"imt", gpusim.ModeIMT, gpusim.CarveOut{}},
		{"ecc-steal", gpusim.ModeECCSteal, gpusim.CarveOut{}},
		{"carve-low", gpusim.ModeCarveOut, gpusim.CarveOutLow},
		{"carve-high", gpusim.ModeCarveOut, gpusim.CarveOutHigh},
		{"bounds-table", gpusim.ModeBoundsTable, gpusim.CarveOut{}},
	}
}

// SimMetrics pins one (workload, mode) simulation: every aggregate
// counter plus every derived ratio the reports consume, so a refactor
// that shifts either the raw counts or the ratio math is caught.
type SimMetrics struct {
	Cycles                                  uint64
	WarpOps, Loads, Stores, Atomics         uint64
	L1Hits, L1Misses, L2Hits, L2Misses      uint64
	DRAMDataReads, DRAMTagReads, DRAMWrites uint64
	TagL2Hits, TagL2Misses                  uint64

	ReadBloat            float64
	BandwidthUtilization float64
	L1HitRate            float64
	L2HitRate            float64
	TagL2HitRate         float64
	// SlowdownVsNone compares against the cell's own ModeNone run.
	SlowdownVsNone float64
}

func newSimMetrics(st gpusim.Stats, cfg gpusim.Config, baseline gpusim.Stats) SimMetrics {
	return SimMetrics{
		Cycles:  st.Cycles,
		WarpOps: st.WarpOps, Loads: st.Loads, Stores: st.Stores, Atomics: st.Atomics,
		L1Hits: st.L1Hits, L1Misses: st.L1Misses, L2Hits: st.L2Hits, L2Misses: st.L2Misses,
		DRAMDataReads: st.DRAMDataReads, DRAMTagReads: st.DRAMTagReads, DRAMWrites: st.DRAMWrites,
		TagL2Hits: st.TagL2Hits, TagL2Misses: st.TagL2Misses,
		ReadBloat:            st.ReadBloat(),
		BandwidthUtilization: st.BandwidthUtilization(cfg),
		L1HitRate:            st.L1HitRate(),
		L2HitRate:            st.L2HitRate(),
		TagL2HitRate:         st.TagL2HitRate(),
		SlowdownVsNone:       gpusim.Slowdown(baseline, st),
	}
}

// workloadByName resolves a catalog workload; the cell fails loudly if
// the catalog no longer contains it (itself a conformance signal).
func workloadByName(name string) (workload.Workload, error) {
	for _, w := range workload.Catalog() {
		if w.Name == name {
			return w, nil
		}
	}
	return workload.Workload{}, fmt.Errorf("workload %q no longer in the catalog", name)
}

func runWorkload(w workload.Workload, cfg gpusim.Config) (gpusim.Stats, error) {
	sim, err := gpusim.New(cfg, w.Traces(cfg.NumSMs))
	if err != nil {
		return gpusim.Stats{}, err
	}
	return sim.Run(0)
}

// simCell pins one catalog workload across every tagging mode on the
// default quarter-GV100 machine.
func simCell(name string) Cell {
	return Cell{
		Name:  "sim-" + name,
		About: "gpusim aggregate counters and derived ratios for " + name + " under every tag mode",
		Run: func() (any, error) {
			w, err := workloadByName(name)
			if err != nil {
				return nil, err
			}
			var baseline gpusim.Stats
			out := map[string]SimMetrics{}
			for _, m := range simModes() {
				cfg := gpusim.DefaultConfig()
				cfg.Mode = m.Mode
				cfg.Carve = m.Carve
				st, err := runWorkload(w, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", name, m.Label, err)
				}
				if m.Mode == gpusim.ModeNone {
					baseline = st
				}
				out[m.Label] = newSimMetrics(st, cfg, baseline)
			}
			return out, nil
		},
	}
}

// sampledSimCell pins the phase-telemetry time series (PR 2's sampler):
// the full window-by-window Samples slice plus its summary reductions.
func sampledSimCell(name string) Cell {
	return Cell{
		Name:  "sim-sampled-" + name,
		About: "phase-telemetry sample series for " + name + " (SampleInterval=20000, mode imt)",
		Run: func() (any, error) {
			w, err := workloadByName(name)
			if err != nil {
				return nil, err
			}
			cfg := gpusim.DefaultConfig()
			cfg.Mode = gpusim.ModeIMT
			cfg.SampleInterval = 20000
			st, err := runWorkload(w, cfg)
			if err != nil {
				return nil, err
			}
			return struct {
				Cycles               uint64
				Samples              []gpusim.Sample
				PeakBandwidthUtil    float64
				BandwidthBoundFrac50 float64
				MeanBandwidthUtil    float64
			}{
				Cycles:               st.Cycles,
				Samples:              st.Samples,
				PeakBandwidthUtil:    st.PeakBandwidthUtil(),
				BandwidthBoundFrac50: st.BandwidthBoundFraction(0.5),
				MeanBandwidthUtil:    st.BandwidthUtilization(cfg),
			}, nil
		},
	}
}

// TallySummary is a fault-injection tally in golden-friendly form.
type TallySummary struct {
	Total, CE, DUE, TMM, SDC uint64
}

func newTallySummary(t reliability.Tally) TallySummary {
	return TallySummary{Total: t.Total, CE: t.CE, DUE: t.DUE, TMM: t.TMM, SDC: t.SDC}
}

// matrixDigest fingerprints a parity-check matrix: sha256 over its
// dimensions and column vectors. Any change to a construction —
// candidate ordering, row balancing, tie-breaks — changes the digest.
func matrixDigest(m *gf2.Matrix) string {
	h := sha256.New()
	fmt.Fprintf(h, "%dx%d\n", m.Rows(), m.Cols())
	for j := 0; j < m.Cols(); j++ {
		fmt.Fprintf(h, "%x\n", m.Col(j))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ECCCodeSummary pins one ecc construction.
type ECCCodeSummary struct {
	Name         string
	Kind         string
	K, R, N      int
	HDigest      string
	MaxRowWeight int
	TotalOnes    int
	// Exhaustive tallies over the physical bits (nil when not computed
	// for this code).
	Exhaustive1 *TallySummary `json:",omitempty"`
	Exhaustive2 *TallySummary `json:",omitempty"`
	Exhaustive3 *TallySummary `json:",omitempty"`
}

func summarizeECC(c *ecc.Code, maxK int) (ECCCodeSummary, error) {
	h := c.H()
	s := ECCCodeSummary{
		Name: c.Name(), Kind: c.Kind().String(),
		K: c.K(), R: c.R(), N: c.N(),
		HDigest:      matrixDigest(h),
		MaxRowWeight: h.MaxRowWeight(),
		TotalOnes:    h.TotalOnes(),
	}
	t := reliability.TargetECC(c)
	for k := 1; k <= maxK; k++ {
		tally, err := reliability.ExhaustiveKBit(t, k)
		if err != nil {
			return s, err
		}
		ts := newTallySummary(tally)
		switch k {
		case 1:
			s.Exhaustive1 = &ts
		case 2:
			s.Exhaustive2 = &ts
		case 3:
			s.Exhaustive3 = &ts
		}
	}
	return s, nil
}

// eccConstructionsCell pins every ecc code family: the exact H matrices
// the deterministic constructors emit and the exhaustive error behavior
// of the workhorse sizes.
func eccConstructionsCell() Cell {
	return Cell{
		Name:  "ecc-constructions",
		About: "H-matrix digests and exhaustive tallies of the ecc code families",
		Run: func() (any, error) {
			out := map[string]ECCCodeSummary{}
			add := func(label string, c *ecc.Code, err error, maxK int) error {
				if err != nil {
					return fmt.Errorf("%s: %w", label, err)
				}
				s, err := summarizeECC(c, maxK)
				if err != nil {
					return fmt.Errorf("%s: %w", label, err)
				}
				out[label] = s
				return nil
			}
			h256, err := ecc.NewHsiao(256, 16)
			if err := add("hsiao-256-16", h256, err, 2); err != nil {
				return nil, err
			}
			h64, err := ecc.NewHsiao(64, 8)
			if err := add("hsiao-64-8", h64, err, 3); err != nil {
				return nil, err
			}
			sec, err := ecc.NewSEC(32, 6, 7)
			if err := add("sec-32-6", sec, err, 2); err != nil {
				return nil, err
			}
			det, err := ecc.NewDetectOnly(32, 6, 11)
			if err := add("detect-32-6", det, err, 2); err != nil {
				return nil, err
			}
			if err := add("parity-32", ecc.NewParity(32), nil, 2); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}

// afteccConstructionCell pins the paper's flagship IMT-16 code — its
// parity-check matrix, verified structural properties, exhaustive 1/2/3
// bit error behavior (Table 2's substance) and the sampled tag-mismatch
// guarantee — plus the Equation 5b tag-size bound at several sizes.
func afteccConstructionCell() Cell {
	return Cell{
		Name:  "aftecc-imt16",
		About: "AFT-ECC(256,16,15) matrix digest, verified properties, exhaustive tallies and tag-size bounds",
		Run: func() (any, error) {
			c, err := core.NewCode(256, 16, 15, core.Options{})
			if err != nil {
				return nil, err
			}
			props := core.Verify(c)
			t := reliability.TargetAFT(c)
			var tallies [3]TallySummary
			for k := 1; k <= 3; k++ {
				tally, err := reliability.ExhaustiveKBit(t, k)
				if err != nil {
					return nil, err
				}
				tallies[k-1] = newTallySummary(tally)
			}
			tagTally := newTallySummary(reliability.TagCorruptions(c, 20000, 42))

			maxTS := map[string]int{}
			for _, kr := range [][2]int{{64, 8}, {128, 9}, {256, 10}, {256, 16}, {512, 11}} {
				ts, err := core.MaxTagSize(kr[0], kr[1])
				if err != nil {
					return nil, err
				}
				maxTS[fmt.Sprintf("k%d-r%d", kr[0], kr[1])] = ts
			}
			return struct {
				K, R, TS, N  int
				PhysicalBits int
				HDigest      string
				Properties   core.Properties
				Exhaustive1  TallySummary
				Exhaustive2  TallySummary
				Exhaustive3  TallySummary
				// TagMismatch is a 20k-sample lock/key mismatch campaign;
				// the alias-free guarantee demands 100% TMM.
				TagMismatch TallySummary
				MaxTagSize  map[string]int
			}{
				K: c.K(), R: c.R(), TS: c.TS(), N: c.N(),
				PhysicalBits: c.PhysicalBits(),
				HDigest:      matrixDigest(c.H()),
				Properties:   props,
				Exhaustive1:  tallies[0],
				Exhaustive2:  tallies[1],
				Exhaustive3:  tallies[2],
				TagMismatch:  tagTally,
				MaxTagSize:   maxTS,
			}, nil
		},
	}
}

// reliabilityCurveCell pins one Figure 9 reliability curve at reduced
// scale, computed with a fixed worker count so the Monte-Carlo split is
// identical on every machine.
func reliabilityCurveCell() Cell {
	return Cell{
		Name:  "reliability-curve-k64",
		About: "Figure 9 SDC-vs-redundancy curve for K=64, R=1..12 (20k trials, 1 worker)",
		Run: func() (any, error) {
			pts, err := reliability.SDCCurveWorkers(64, 12, 20000, 1234, 1)
			if err != nil {
				return nil, err
			}
			type point struct {
				R           int
				Kind        string
				RandomSDC   float64
				ThreeBitSDC float64
				HasThreeBit bool
			}
			out := make([]point, len(pts))
			for i, p := range pts {
				out[i] = point{
					R: p.R, Kind: p.Kind.String(),
					RandomSDC:   p.RandomSDC,
					ThreeBitSDC: p.ThreeBitSDC,
					HasThreeBit: p.HasThreeBit,
				}
			}
			return out, nil
		},
	}
}

// securityCell pins one row of the §5.4 security analysis: closed-form
// guarantees for the standard tag sizes and a seeded Monte-Carlo attack
// campaign against the real taggers.
func securityCell() Cell {
	return Cell{
		Name:  "security-guarantees",
		About: "closed-form tagging guarantees and seeded attack-simulation detection rates",
		Run: func() (any, error) {
			type attack struct {
				Trials              int
				AdjacentDetected    float64
				NonAdjacentDetected float64
				UseAfterFreeCaught  float64
			}
			glibc8, err := security.SimulateAttacks(tagalloc.GlibcTagger{TagBits: 8}, 16, 5000, 99)
			if err != nil {
				return nil, err
			}
			scudo8, err := security.SimulateAttacks(tagalloc.ScudoTagger{TagBits: 8}, 16, 5000, 99)
			if err != nil {
				return nil, err
			}
			return struct {
				Glibc4, Glibc8, Glibc16 security.Guarantees
				Scudo8, Scudo16         security.Guarantees
				// ImprovementIMT16VsMTE4 is the paper's ≈2340× misdetection
				// improvement of IMT-16/glibc over an ARM-MTE-like 4-bit scheme.
				ImprovementIMT16VsMTE4 float64
				AttackGlibc8           attack
				AttackScudo8           attack
			}{
				Glibc4:                 security.Glibc(4),
				Glibc8:                 security.Glibc(8),
				Glibc16:                security.Glibc(16),
				Scudo8:                 security.Scudo(8),
				Scudo16:                security.Scudo(16),
				ImprovementIMT16VsMTE4: security.MisdetectionImprovement(security.Glibc(4), security.Glibc(16)),
				AttackGlibc8: attack{glibc8.Trials, glibc8.AdjacentDetected,
					glibc8.NonAdjacentDetected, glibc8.UseAfterFreeCaught},
				AttackScudo8: attack{scudo8.Trials, scudo8.AdjacentDetected,
					scudo8.NonAdjacentDetected, scudo8.UseAfterFreeCaught},
			}, nil
		},
	}
}

// workloadCatalogCell fingerprints the 193-workload catalog: population
// counts, a digest over every workload's identity and parameters, and
// the footprint-bloat anchors the §5 analysis quotes.
func workloadCatalogCell() Cell {
	return Cell{
		Name:  "workload-catalog",
		About: "catalog population, parameter digest and footprint-bloat anchors",
		Run: func() (any, error) {
			cat := workload.Catalog()
			suiteCounts := map[string]int{}
			h := sha256.New()
			var totalAlloc uint64
			for _, w := range cat {
				suiteCounts[w.Suite]++
				// The digest covers the full parameter set: any catalog
				// drift (renames, reseeds, retuned knobs) changes it.
				fmt.Fprintf(h, "%d|%s|%s|%v|%d|%d|%d|%g|%g|%g|%d|%d|%v|%v\n",
					w.ID, w.Name, w.Suite, w.Pattern, w.FootprintBytes, w.OpsPerSM,
					w.ComputePerOp, w.WriteFrac, w.AtomicFrac, w.HotFrac, w.HotDiv,
					w.Seed, w.AllocSizes, w.AllocCounts)
				totalAlloc += w.TotalAllocBytes()
			}
			bloat := map[string]float64{}
			for _, name := range []string{"stream-copy-16MB", "mlperf-ssd-l0", "md-neigh0", "hpc-micro0"} {
				w, err := workloadByName(name)
				if err != nil {
					return nil, err
				}
				bloat[name] = w.FootprintBloat(32)
			}
			suites := workload.Suites()
			sort.Strings(suites) // canonical order for the golden
			return struct {
				CatalogSize     int
				Suites          []string
				SuiteCounts     map[string]int
				ParamDigest     string
				TotalAllocBytes uint64
				FootprintBloat  map[string]float64
			}{
				CatalogSize:     len(cat),
				Suites:          suites,
				SuiteCounts:     suiteCounts,
				ParamDigest:     hex.EncodeToString(h.Sum(nil)),
				TotalAllocBytes: totalAlloc,
				FootprintBloat:  bloat,
			}, nil
		},
	}
}
