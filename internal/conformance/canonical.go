package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// CanonicalJSON encodes v deterministically: two-space indentation, no
// HTML escaping, map keys in sorted order (encoding/json's map rule) and
// struct fields in declaration order. Two semantically equal results
// always produce byte-identical encodings, so golden files are diffable
// with ordinary tools.
func CanonicalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Diff compares two canonical-JSON documents field by field and returns
// a message naming the first divergent metric (in document order, object
// keys sorted), or "" when they are identical. Numbers are compared as
// their exact JSON literals, so no precision is lost on uint64 counters
// or on float64 metrics.
func Diff(golden, got []byte) string {
	gv, err := decodeTree(golden)
	if err != nil {
		return fmt.Sprintf("golden is not valid JSON: %v", err)
	}
	ov, err := decodeTree(got)
	if err != nil {
		return fmt.Sprintf("result is not valid JSON: %v", err)
	}
	return diffValue("", gv, ov)
}

func decodeTree(b []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

func at(path string) string {
	if path == "" {
		return "(root)"
	}
	return path
}

func join(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// diffValue walks the two trees in parallel and reports the first
// divergence it meets.
func diffValue(path string, golden, got any) string {
	switch g := golden.(type) {
	case map[string]any:
		o, ok := got.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: golden is an object, got %s", at(path), typeName(got))
		}
		keys := make([]string, 0, len(g))
		for k := range g {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov, present := o[k]
			if !present {
				return fmt.Sprintf("%s: missing in result", at(join(path, k)))
			}
			if d := diffValue(join(path, k), g[k], ov); d != "" {
				return d
			}
		}
		for k := range o {
			if _, present := g[k]; !present {
				return fmt.Sprintf("%s: not in golden (new field?)", at(join(path, k)))
			}
		}
		return ""
	case []any:
		o, ok := got.([]any)
		if !ok {
			return fmt.Sprintf("%s: golden is an array, got %s", at(path), typeName(got))
		}
		if len(g) != len(o) {
			return fmt.Sprintf("%s: golden has %d elements, got %d", at(path), len(g), len(o))
		}
		for i := range g {
			if d := diffValue(fmt.Sprintf("%s[%d]", path, i), g[i], o[i]); d != "" {
				return d
			}
		}
		return ""
	case json.Number:
		o, ok := got.(json.Number)
		if !ok {
			return fmt.Sprintf("%s: golden is a number, got %s", at(path), typeName(got))
		}
		if g.String() != o.String() {
			return fmt.Sprintf("%s: golden %s, got %s", at(path), g, o)
		}
		return ""
	default:
		// bool, string, nil.
		if golden != got {
			return fmt.Sprintf("%s: golden %v, got %v", at(path), jsonScalar(golden), jsonScalar(got))
		}
		return ""
	}
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "an object"
	case []any:
		return "an array"
	case json.Number:
		return "a number"
	case string:
		return "a string"
	case bool:
		return "a bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func jsonScalar(v any) string {
	if s, ok := v.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%v", v)
}
