package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

// The differential oracle is a second, deliberately naive implementation
// of linear-code decoding: the parity-check matrix is an explicit 0/1
// byte matrix, syndromes are computed row by row with schoolbook dot
// products, and classification is a linear scan over columns (and, for
// AFT-ECC, over every tag-error pattern) — no bit tricks, no syndrome
// maps, no shared code with internal/ecc or internal/core beyond the
// matrix definition itself. Where the production decoder uses a lookup
// table the oracle uses exhaustive search, so a table built wrong (the
// exact failure mode tag-check implementations drift into) disagrees.

// refCode is the reference decoder for an untagged linear code.
type refCode struct {
	k, r int
	kind ecc.Kind
	h    [][]byte // r rows × (k+r) cols of 0/1
}

// refFromECC lifts the production code's parity-check matrix into the
// naive representation. The matrix is the code's published definition;
// everything downstream of it is independent.
func refFromECC(c *ecc.Code) *refCode {
	m := c.H()
	rc := &refCode{k: c.K(), r: c.R(), kind: c.Kind()}
	rc.h = make([][]byte, m.Rows())
	for i := range rc.h {
		rc.h[i] = make([]byte, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			rc.h[i][j] = byte(m.Get(i, j))
		}
	}
	return rc
}

func (rc *refCode) n() int { return rc.k + rc.r }

// encode computes the check bits as row-wise parities over the data
// columns: check[i] = Σ_j H[i][j]·data[j] (mod 2).
func (rc *refCode) encode(data []byte) []byte {
	check := make([]byte, rc.r)
	for i := 0; i < rc.r; i++ {
		var p byte
		for j := 0; j < rc.k; j++ {
			p ^= rc.h[i][j] & data[j]
		}
		check[i] = p
	}
	return check
}

// syndrome computes H·word over the full received codeword.
func (rc *refCode) syndrome(word []byte) []byte {
	s := make([]byte, rc.r)
	for i := 0; i < rc.r; i++ {
		var p byte
		for j := 0; j < rc.n(); j++ {
			p ^= rc.h[i][j] & word[j]
		}
		s[i] = p
	}
	return s
}

func zero(s []byte) bool {
	for _, b := range s {
		if b != 0 {
			return false
		}
	}
	return true
}

// columnMatches reports whether H column j equals the syndrome.
func (rc *refCode) columnMatches(j int, s []byte) bool {
	for i := 0; i < rc.r; i++ {
		if rc.h[i][j] != s[i] {
			return false
		}
	}
	return true
}

// refResult mirrors ecc.Result in oracle terms.
type refResult struct {
	status     ecc.Status
	flippedBit int
}

// decode classifies a received word by exhaustive search: zero syndrome
// is OK; for correcting codes a syndrome equal to some H column is a
// single-bit correction at the *first* matching column (the columns are
// distinct in a valid SEC code, so "first" is "only" — if construction
// ever violated that, the differential test against the production
// map-based decoder would expose it); anything else is a DUE.
// Detect-only codes never correct. The word is corrected in place.
func (rc *refCode) decode(word []byte) refResult {
	s := rc.syndrome(word)
	if zero(s) {
		return refResult{status: ecc.StatusOK, flippedBit: -1}
	}
	if rc.kind != ecc.DetectOnly {
		for j := 0; j < rc.n(); j++ {
			if rc.columnMatches(j, s) {
				word[j] ^= 1
				return refResult{status: ecc.StatusCorrected, flippedBit: j}
			}
		}
	}
	return refResult{status: ecc.StatusDetected, flippedBit: -1}
}

// refAFT is the reference decoder for an AFT-ECC code: the physical
// parity-check matrix plus the explicit tag submatrix.
type refAFT struct {
	k, r, ts int
	phys     [][]byte // r × (k+r): (D | I)
	tag      [][]byte // r × ts
}

func refFromAFT(c *core.Code) *refAFT {
	ra := &refAFT{k: c.K(), r: c.R(), ts: c.TS()}
	h := c.H() // (T | D | I), tag columns first
	ra.tag = make([][]byte, ra.r)
	ra.phys = make([][]byte, ra.r)
	for i := 0; i < ra.r; i++ {
		ra.tag[i] = make([]byte, ra.ts)
		for j := 0; j < ra.ts; j++ {
			ra.tag[i][j] = byte(h.Get(i, j))
		}
		ra.phys[i] = make([]byte, ra.k+ra.r)
		for j := 0; j < ra.k+ra.r; j++ {
			ra.phys[i][j] = byte(h.Get(i, ra.ts+j))
		}
	}
	return ra
}

// tagSyndrome computes T·tag naively from the tag's bits.
func (ra *refAFT) tagSyndrome(tag uint64) []byte {
	s := make([]byte, ra.r)
	for i := 0; i < ra.r; i++ {
		var p byte
		for j := 0; j < ra.ts; j++ {
			p ^= ra.tag[i][j] & byte(tag>>uint(j)&1)
		}
		s[i] = p
	}
	return s
}

// refAFTResult mirrors core.Result in oracle terms.
type refAFTResult struct {
	status          core.Status
	flippedBit      int
	lockTagEstimate uint64
}

// decode classifies (data, check) under keyTag by exhaustive search:
// syndrome = Σ phys columns of set bits ⊕ T·keyTag; a zero syndrome is
// OK; a syndrome equal to a physical column is a single-bit correction;
// otherwise every nonzero tag-error pattern is tried in turn — if
// T·pattern reproduces the syndrome the word is a tag mismatch with
// lock estimate keyTag ⊕ pattern; anything else is a DUE. The word
// (data ++ check bits) is corrected in place.
func (ra *refAFT) decode(word []byte, keyTag uint64) refAFTResult {
	s := ra.tagSyndrome(keyTag)
	for i := 0; i < ra.r; i++ {
		for j := 0; j < ra.k+ra.r; j++ {
			s[i] ^= ra.phys[i][j] & word[j]
		}
	}
	if zero(s) {
		return refAFTResult{status: core.StatusOK, flippedBit: -1}
	}
	for j := 0; j < ra.k+ra.r; j++ {
		match := true
		for i := 0; i < ra.r; i++ {
			if ra.phys[i][j] != s[i] {
				match = false
				break
			}
		}
		if match {
			word[j] ^= 1
			return refAFTResult{status: core.StatusCorrected, flippedBit: j}
		}
	}
	for pattern := uint64(1); pattern < 1<<uint(ra.ts); pattern++ {
		ts := ra.tagSyndrome(pattern)
		match := true
		for i := 0; i < ra.r; i++ {
			if ts[i] != s[i] {
				match = false
				break
			}
		}
		if match {
			return refAFTResult{
				status:          core.StatusTMM,
				flippedBit:      -1,
				lockTagEstimate: (keyTag ^ pattern) & (1<<uint(ra.ts) - 1),
			}
		}
	}
	return refAFTResult{status: core.StatusDUE, flippedBit: -1}
}

// bitsOf expands a BitVec into the oracle's byte representation.
func bitsOf(v *gf2.BitVec) []byte {
	out := make([]byte, v.Len())
	for i := range out {
		out[i] = byte(v.Get(i))
	}
	return out
}

// word assembles data ++ check into one received-codeword byte slice.
func word(data *gf2.BitVec, check uint64, r int) []byte {
	out := bitsOf(data)
	for i := 0; i < r; i++ {
		out = append(out, byte(check>>uint(i)&1))
	}
	return out
}

// diffDecodeECC decodes one received word with both implementations and
// returns a description of the first disagreement ("" if they agree):
// status, repaired bit, and the post-correction word must all match.
func diffDecodeECC(c *ecc.Code, rc *refCode, data *gf2.BitVec, check uint64) string {
	rxWord := word(data, check, c.R())
	prodData := data.Clone()
	prodRes := c.Decode(prodData, check)
	refRes := rc.decode(rxWord)

	if prodRes.Status != refRes.status {
		return fmt.Sprintf("status: production %v, reference %v", prodRes.Status, refRes.status)
	}
	if prodRes.Status == ecc.StatusCorrected && prodRes.FlippedBit != refRes.flippedBit {
		return fmt.Sprintf("flipped bit: production %d, reference %d", prodRes.FlippedBit, refRes.flippedBit)
	}
	// The production decoder repairs data bits in place; the reference
	// repairs its whole word. Compare the data region.
	for i := 0; i < c.K(); i++ {
		if byte(prodData.Get(i)) != rxWord[i] {
			return fmt.Sprintf("corrected data bit %d: production %d, reference %d", i, prodData.Get(i), rxWord[i])
		}
	}
	return ""
}

// diffDecodeAFT is diffDecodeECC for the tagged decoder, additionally
// requiring agreement on the lock-tag estimate for TMMs.
func diffDecodeAFT(c *core.Code, ra *refAFT, data *gf2.BitVec, check uint64, keyTag uint64) string {
	rxWord := word(data, check, c.R())
	prodData := data.Clone()
	prodRes := c.Decode(prodData, check, keyTag)
	refRes := ra.decode(rxWord, keyTag)

	if prodRes.Status != refRes.status {
		return fmt.Sprintf("status: production %v, reference %v (key %#x)", prodRes.Status, refRes.status, keyTag)
	}
	if prodRes.Status == core.StatusCorrected && prodRes.FlippedBit != refRes.flippedBit {
		return fmt.Sprintf("flipped bit: production %d, reference %d", prodRes.FlippedBit, refRes.flippedBit)
	}
	if prodRes.Status == core.StatusTMM && prodRes.LockTagEstimate != refRes.lockTagEstimate {
		return fmt.Sprintf("lock estimate: production %#x, reference %#x", prodRes.LockTagEstimate, refRes.lockTagEstimate)
	}
	for i := 0; i < c.K(); i++ {
		if byte(prodData.Get(i)) != rxWord[i] {
			return fmt.Sprintf("corrected data bit %d: production %d, reference %d", i, prodData.Get(i), rxWord[i])
		}
	}
	return ""
}

// randomVec fills an n-bit vector from rng.
func randomVec(rng *rand.Rand, n int) *gf2.BitVec {
	v := gf2.NewBitVec(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Flip(i)
		}
	}
	return v
}

// ExhaustiveECCOracle checks the production decoder of c against the
// reference over every error pattern in {0,1}^N applied to `bases`
// base data vectors (encode, corrupt, decode, compare). N must be small
// enough for 2^N enumeration.
func ExhaustiveECCOracle(c *ecc.Code, bases []*gf2.BitVec) error {
	if c.N() > 20 {
		return fmt.Errorf("code %s too large for exhaustive enumeration (N=%d)", c.Name(), c.N())
	}
	rc := refFromECC(c)
	for bi, base := range bases {
		check := c.Encode(base)
		for pat := uint64(0); pat < 1<<uint(c.N()); pat++ {
			data := base.Clone()
			rxCheck := check
			for b := 0; b < c.N(); b++ {
				if pat>>uint(b)&1 == 0 {
					continue
				}
				if b < c.K() {
					data.Flip(b)
				} else {
					rxCheck ^= 1 << uint(b-c.K())
				}
			}
			if d := diffDecodeECC(c, rc, data, rxCheck); d != "" {
				return fmt.Errorf("%s base %d error %#x: %s", c.Name(), bi, pat, d)
			}
		}
	}
	return nil
}

// RandomECCOracle checks `trials` random (data, corruption) pairs: the
// word is a valid codeword with 0..3 random bit flips, plus fully
// random (data, check) pairs that exercise arbitrary syndromes.
func RandomECCOracle(c *ecc.Code, trials int, seed int64) error {
	rc := refFromECC(c)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		data := randomVec(rng, c.K())
		var check uint64
		if trial%4 == 3 {
			// Arbitrary received pair — any syndrome, any weight.
			check = rng.Uint64() & (1<<uint(c.R()) - 1)
		} else {
			check = c.Encode(data)
			for f := rng.Intn(4); f > 0; f-- {
				b := rng.Intn(c.N())
				if b < c.K() {
					data.Flip(b)
				} else {
					check ^= 1 << uint(b-c.K())
				}
			}
		}
		if d := diffDecodeECC(c, rc, data, check); d != "" {
			return fmt.Errorf("%s trial %d: %s", c.Name(), trial, d)
		}
	}
	return nil
}

// ExhaustiveAFTOracle checks the production AFT-ECC decoder against the
// reference over every ≤2-bit physical error pattern × every (lock,
// key) tag pair for one base data vector per call.
func ExhaustiveAFTOracle(c *core.Code, base *gf2.BitVec) error {
	ra := refFromAFT(c)
	nphys := c.PhysicalBits()
	tagSpace := uint64(1) << uint(c.TS())

	// Pattern list: the empty pattern, every 1-bit, every 2-bit pattern.
	patterns := [][]int{{}}
	for i := 0; i < nphys; i++ {
		patterns = append(patterns, []int{i})
		for j := i + 1; j < nphys; j++ {
			patterns = append(patterns, []int{i, j})
		}
	}
	for lock := uint64(0); lock < tagSpace; lock++ {
		check := c.Encode(base, lock)
		for key := uint64(0); key < tagSpace; key++ {
			for pi, pat := range patterns {
				data := base.Clone()
				rxCheck := check
				for _, b := range pat {
					if b < c.K() {
						data.Flip(b)
					} else {
						rxCheck ^= 1 << uint(b-c.K())
					}
				}
				if d := diffDecodeAFT(c, ra, data, rxCheck, key); d != "" {
					return fmt.Errorf("%v lock %#x key %#x pattern %d %v: %s", c, lock, key, pi, pat, d)
				}
			}
		}
	}
	return nil
}

// RandomAFTOracle checks `trials` random (data, lock, key, ≤2-bit
// corruption) decodes, plus arbitrary-check decodes as in RandomECCOracle.
func RandomAFTOracle(c *core.Code, trials int, seed int64) error {
	ra := refFromAFT(c)
	rng := rand.New(rand.NewSource(seed))
	mask := c.TagMask()
	for trial := 0; trial < trials; trial++ {
		data := randomVec(rng, c.K())
		lock := rng.Uint64() & mask
		key := rng.Uint64() & mask
		var check uint64
		if trial%4 == 3 {
			check = rng.Uint64() & (1<<uint(c.R()) - 1)
		} else {
			check = c.Encode(data, lock)
			for f := rng.Intn(3); f > 0; f-- {
				b := rng.Intn(c.PhysicalBits())
				if b < c.K() {
					data.Flip(b)
				} else {
					check ^= 1 << uint(b-c.K())
				}
			}
		}
		if d := diffDecodeAFT(c, ra, data, check, key); d != "" {
			return fmt.Errorf("%v trial %d: %s", c, trial, d)
		}
	}
	return nil
}

// TagSyndromeTableOracle rebuilds the production syndrome → tag-error
// table by exhaustive scan and requires an exact match: every syndrome
// the production code classifies as a tag syndrome must be reproduced
// by exactly one naive T·pattern product, and vice versa.
func TagSyndromeTableOracle(c *core.Code) error {
	ra := refFromAFT(c)
	want := map[uint64]uint64{}
	for pattern := uint64(1); pattern < 1<<uint(c.TS()); pattern++ {
		s := ra.tagSyndrome(pattern)
		var sv uint64
		for i, b := range s {
			sv |= uint64(b) << uint(i)
		}
		if prev, dup := want[sv]; dup {
			return fmt.Errorf("%v: naive tag syndromes collide: patterns %#x and %#x both give %#x", c, prev, pattern, sv)
		}
		want[sv] = pattern
	}
	got := c.TagSyndromeTable()
	if len(got) != len(want) {
		return fmt.Errorf("%v: production table has %d entries, reference %d", c, len(got), len(want))
	}
	for s, pattern := range want {
		gp, ok := got[s]
		if !ok {
			return fmt.Errorf("%v: syndrome %#x missing from production table", c, s)
		}
		if gp != pattern {
			return fmt.Errorf("%v: syndrome %#x: production pattern %#x, reference %#x", c, s, gp, pattern)
		}
		if p2, ok := c.IsTagSyndrome(s); !ok || p2 != pattern {
			return fmt.Errorf("%v: IsTagSyndrome(%#x) = (%#x, %v), want (%#x, true)", c, s, p2, ok, pattern)
		}
	}
	return nil
}

// CheckOracles runs the differential pillar at the pre-merge budget:
// exhaustive enumeration on small codes of every family, ≥10k
// randomized trials against the workhorse sizes, and an exact
// tag-syndrome-table rebuild.
func CheckOracles() []Finding {
	var out []Finding
	fail := func(check string, err error) {
		if err != nil {
			out = append(out, Finding{"oracle/" + check, err.Error()})
		}
	}

	bases := func(k int, seed int64) []*gf2.BitVec {
		rng := rand.New(rand.NewSource(seed))
		all1 := gf2.NewBitVec(k)
		for i := 0; i < k; i++ {
			all1.Flip(i)
		}
		return []*gf2.BitVec{gf2.NewBitVec(k), all1, randomVec(rng, k)}
	}

	if c, err := ecc.NewHsiao(8, 5); err != nil {
		fail("hsiao-8-5", err)
	} else {
		fail("exhaustive/hsiao-8-5", ExhaustiveECCOracle(c, bases(8, 1)))
	}
	if c, err := ecc.NewSEC(8, 4, 3); err != nil {
		fail("sec-8-4", err)
	} else {
		fail("exhaustive/sec-8-4", ExhaustiveECCOracle(c, bases(8, 2)))
	}
	if c, err := ecc.NewDetectOnly(10, 4, 5); err != nil {
		fail("detect-10-4", err)
	} else {
		fail("exhaustive/detect-10-4", ExhaustiveECCOracle(c, bases(10, 3)))
	}
	fail("exhaustive/parity-12", ExhaustiveECCOracle(ecc.NewParity(12), bases(12, 4)))

	if c, err := ecc.NewHsiao(64, 8); err != nil {
		fail("hsiao-64-8", err)
	} else {
		fail("random/hsiao-64-8", RandomECCOracle(c, 12000, 101))
	}
	if c, err := ecc.NewHsiao(256, 16); err != nil {
		fail("hsiao-256-16", err)
	} else {
		fail("random/hsiao-256-16", RandomECCOracle(c, 2000, 102))
	}

	if c, err := core.NewCode(16, 6, 5, core.Options{}); err != nil {
		fail("aft-16-6-5", err)
	} else {
		fail("exhaustive/aft-16-6-5", ExhaustiveAFTOracle(c, bases(16, 5)[2]))
		fail("tagtable/aft-16-6-5", TagSyndromeTableOracle(c))
	}
	if c, err := core.NewCode(64, 8, 7, core.Options{}); err != nil {
		fail("aft-64-8-7", err)
	} else {
		fail("random/aft-64-8-7", RandomAFTOracle(c, 12000, 103))
		fail("tagtable/aft-64-8-7", TagSyndromeTableOracle(c))
	}
	if c, err := core.NewCode(256, 16, 15, core.Options{}); err != nil {
		fail("aft-256-16-15", err)
	} else {
		fail("random/aft-256-16-15", RandomAFTOracle(c, 1000, 104))
		fail("tagtable/aft-256-16-15", TagSyndromeTableOracle(c))
	}
	return out
}
