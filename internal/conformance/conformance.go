package conformance

import "fmt"

// Cell is one deterministic experiment whose canonical-JSON output is
// pinned under testdata/golden/<name>.json.
type Cell struct {
	// Name is the golden file base name; file-system safe.
	Name string
	// About says what a drift in this cell means.
	About string
	// Run produces the cell's result; it must be deterministic across
	// machines, worker counts and repeated invocations.
	Run func() (any, error)
}

// Finding is one conformance violation: a named check and what diverged.
type Finding struct {
	Check  string
	Detail string
}

func (f Finding) String() string { return f.Check + ": " + f.Detail }

// Cells returns the golden-regression registry. Order is stable; names
// are unique.
func Cells() []Cell {
	cells := []Cell{
		simCell("stream-copy-16MB"),
		simCell("mlperf-ssd-l0"),
		simCell("hpc-micro0"),
		sampledSimCell("stream-copy-16MB"),
		eccConstructionsCell(),
		afteccConstructionCell(),
		reliabilityCurveCell(),
		securityCell(),
		workloadCatalogCell(),
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Name] {
			panic(fmt.Sprintf("conformance: duplicate cell %q", c.Name))
		}
		seen[c.Name] = true
	}
	return cells
}

// CheckAll runs every pillar — golden regression, differential oracles
// and metamorphic invariants — and returns all findings. Empty means
// the tree conforms.
func CheckAll() []Finding {
	var out []Finding
	out = append(out, CheckGoldens()...)
	out = append(out, CheckOracles()...)
	out = append(out, CheckInvariants()...)
	return out
}
