// Package conformance is the correctness-tooling layer that makes
// refactors of the simulator, the ECC stack and the experiment engine
// safe to land. Nothing else in the repository pins the *numbers* a
// refactor could silently shift; this package does, three ways:
//
//  1. Golden-result regression: a registry of small deterministic
//     experiment cells (workloads × tag modes through gpusim, canonical
//     AFT-ECC constructions through ecc/core, one reliability curve,
//     one security table) whose canonical-JSON outputs are committed
//     under testdata/golden/ and compared field-by-field. A drift
//     fails with the first divergent metric named. Refresh with
//     `go test ./internal/conformance -update` after an intentional
//     behavioral change.
//
//  2. Differential oracles: a deliberately naive, independent reference
//     implementation of linear-code encode/decode and AFT-ECC tag
//     detection (explicit 0/1 matrices, linear column scans, no
//     syndrome maps) checked against the production internal/ecc and
//     internal/core decoders over exhaustive small-code enumeration
//     and randomized trials.
//
//  3. Metamorphic invariants: executable properties the simulator and
//     runner must satisfy regardless of constants — SampleInterval
//     never changes aggregate results, Run ≡ RunContext(Background()),
//     repeated runs are bit-identical, cloned traces leave their
//     originals untouched, more DRAM bandwidth never costs cycles, and
//     a runner cache hit equals a recompute.
//
// The whole suite runs in `go test ./internal/conformance` and, for
// pre-merge gating outside the test harness, via `cmd/conformance`
// (exits nonzero on any drift). Goldens are embedded in the binary, so
// cmd/conformance works from any directory and always checks against
// the goldens it was built with.
package conformance
