package conformance

import (
	"context"
	"fmt"
	"os"
	"reflect"

	"repro/internal/gpusim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// The metamorphic pillar checks relations that must hold between *pairs*
// of runs — properties no golden can pin because they quantify over
// configurations: observation (sampling) must not perturb results, the
// two run entry points must agree, repetition must be bit-identical,
// cloning must not alias, and more memory bandwidth must never slow a
// run down.

// invariantWorkloads are the cells the metamorphic relations quantify
// over: one streaming and one irregular workload, kept small so the
// whole pillar runs in seconds.
func invariantWorkloads() []string {
	return []string{"hpc-micro0", "stream-copy-16MB"}
}

// statsDiff compares two Stats field-by-field through the same canonical
// JSON walk the goldens use, so a divergence names the metric.
func statsDiff(a, b gpusim.Stats) (string, error) {
	ja, err := CanonicalJSON(a)
	if err != nil {
		return "", err
	}
	jb, err := CanonicalJSON(b)
	if err != nil {
		return "", err
	}
	return Diff(ja, jb), nil
}

// checkSamplingInvariance verifies that turning the phase-telemetry
// sampler on (at several intervals) changes nothing but the Samples
// series: observation must not perturb the simulation.
func checkSamplingInvariance(w workload.Workload) *Finding {
	check := "invariant/sampling-neutral/" + w.Name
	cfg := gpusim.DefaultConfig()
	cfg.Mode = gpusim.ModeIMT
	base, err := runWorkload(w, cfg)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	for _, interval := range []uint64{1000, 20000, 1 << 40} {
		scfg := cfg
		scfg.SampleInterval = interval
		st, err := runWorkload(w, scfg)
		if err != nil {
			return &Finding{check, err.Error()}
		}
		if interval < 1<<40 && len(st.Samples) == 0 {
			return &Finding{check, fmt.Sprintf("SampleInterval=%d recorded no samples", interval)}
		}
		st.Samples = nil
		d, err := statsDiff(base, st)
		if err != nil {
			return &Finding{check, err.Error()}
		}
		if d != "" {
			return &Finding{check, fmt.Sprintf("SampleInterval=%d perturbed the run: %s", interval, d)}
		}
	}
	// The live-streaming hook rides the sampler: an OnSample observer
	// must be exactly as neutral as sampling itself, and must see the
	// same series the Stats record.
	hcfg := cfg
	hcfg.SampleInterval = 20000
	var seen []gpusim.Sample
	hcfg.OnSample = func(smp gpusim.Sample) { seen = append(seen, smp) }
	st, err := runWorkload(w, hcfg)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if len(seen) != len(st.Samples) {
		return &Finding{check, fmt.Sprintf("OnSample observed %d samples, Stats recorded %d", len(seen), len(st.Samples))}
	}
	for i := range seen {
		if seen[i] != st.Samples[i] {
			return &Finding{check, fmt.Sprintf("OnSample sample %d differs from the recorded series", i)}
		}
	}
	st.Samples = nil
	d, err := statsDiff(base, st)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if d != "" {
		return &Finding{check, "an OnSample observer perturbed the run: " + d}
	}
	return nil
}

// checkRunContextEquivalence verifies Run(n) ≡ RunContext(Background(), n).
func checkRunContextEquivalence(w workload.Workload) *Finding {
	check := "invariant/run-equals-runcontext/" + w.Name
	cfg := gpusim.DefaultConfig()
	cfg.Mode = gpusim.ModeECCSteal
	a, err := runWorkload(w, cfg)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	sim, err := gpusim.New(cfg, w.Traces(cfg.NumSMs))
	if err != nil {
		return &Finding{check, err.Error()}
	}
	b, err := sim.RunContext(context.Background(), 0)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	d, err := statsDiff(a, b)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if d != "" {
		return &Finding{check, "Run and RunContext(Background()) disagree: " + d}
	}
	return nil
}

// checkRepeatability verifies that re-running a cell from scratch is
// bit-identical — the simulator has no hidden global state, map-order
// dependence or time dependence.
func checkRepeatability(w workload.Workload) *Finding {
	check := "invariant/repeatable/" + w.Name
	cfg := gpusim.DefaultConfig()
	cfg.Mode = gpusim.ModeCarveOut
	cfg.Carve = gpusim.CarveOutLow
	cfg.SampleInterval = 20000
	a, err := runWorkload(w, cfg)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	b, err := runWorkload(w, cfg)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	d, err := statsDiff(a, b)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if d != "" {
		return &Finding{check, "two identical runs diverged: " + d}
	}
	return nil
}

// materialize drains a workload's generator traces into SliceTraces.
func materialize(w workload.Workload, numSMs int) []gpusim.Trace {
	out := make([]gpusim.Trace, numSMs)
	for i, tr := range w.Traces(numSMs) {
		st := &gpusim.SliceTrace{}
		for {
			op, ok := tr.Next()
			if !ok {
				break
			}
			st.Ops = append(st.Ops, op)
		}
		out[i] = st
	}
	return out
}

// checkCloneIsolation verifies that simulating cloned traces leaves the
// originals untouched (ops, their address slices, and read positions),
// and that original and clone then produce identical results.
func checkCloneIsolation(w workload.Workload) *Finding {
	check := "invariant/clone-isolation/" + w.Name
	cfg := gpusim.DefaultConfig()
	cfg.Mode = gpusim.ModeIMT
	orig := materialize(w, cfg.NumSMs)

	// Snapshot the original ops before anything runs.
	snapshot, err := gpusim.CloneTraces(orig)
	if err != nil {
		return &Finding{check, err.Error()}
	}

	clones, err := gpusim.CloneTraces(orig)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	sim, err := gpusim.New(cfg, clones)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	cloneStats, err := sim.Run(0)
	if err != nil {
		return &Finding{check, err.Error()}
	}

	for i := range orig {
		o := orig[i].(*gpusim.SliceTrace)
		s := snapshot[i].(*gpusim.SliceTrace)
		if !reflect.DeepEqual(o.Ops, s.Ops) {
			return &Finding{check, fmt.Sprintf("simulating a clone mutated original trace %d", i)}
		}
		if op, ok := o.Next(); !ok || !reflect.DeepEqual(op, s.Ops[0]) {
			return &Finding{check, fmt.Sprintf("original trace %d no longer rewound after cloning", i)}
		}
	}

	// The originals were advanced one op by the rewind probe above; use
	// the snapshot for the comparison run instead.
	sim2, err := gpusim.New(cfg, snapshot)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	origStats, err := sim2.Run(0)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	d, err := statsDiff(cloneStats, origStats)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if d != "" {
		return &Finding{check, "clone and original produced different results: " + d}
	}
	return nil
}

// checkBandwidthMonotonicity verifies that raising DRAM bandwidth
// (lowering the cycles charged per 32B sector) never increases total
// cycles. A violation means contention modeling has gone non-physical.
func checkBandwidthMonotonicity(w workload.Workload) *Finding {
	check := "invariant/bandwidth-monotonic/" + w.Name
	var prevCycles uint64
	var prevCost int
	for i, cost := range []int{8, 4, 2, 1} { // bandwidth increases left to right
		cfg := gpusim.DefaultConfig()
		cfg.Mode = gpusim.ModeIMT
		cfg.DRAMCyclesPerSector = cost
		st, err := runWorkload(w, cfg)
		if err != nil {
			return &Finding{check, err.Error()}
		}
		if i > 0 && st.Cycles > prevCycles {
			return &Finding{check, fmt.Sprintf(
				"more bandwidth slowed the run: %d cycles/sector → %d cycles, but %d cycles/sector → %d cycles",
				prevCost, prevCycles, cost, st.Cycles)}
		}
		prevCycles, prevCost = st.Cycles, cost
	}
	return nil
}

// checkRunnerCache verifies the engine's disk cache round-trip on a
// sentinel cell: a warm re-run must hit the cache, skip the simulator,
// and reproduce the cold run's stats exactly.
func checkRunnerCache() *Finding {
	check := "invariant/runner-cache"
	w, err := workloadByName("hpc-micro0")
	if err != nil {
		return &Finding{check, err.Error()}
	}
	dir, err := os.MkdirTemp("", "conformance-cache-")
	if err != nil {
		return &Finding{check, err.Error()}
	}
	defer os.RemoveAll(dir)

	jobs := []runner.Job{{Workload: w, Mode: gpusim.ModeIMT}}
	run := func() (runner.Result, runner.Counters, error) {
		eng := runner.New(gpusim.DefaultConfig(), runner.Options{Workers: 1, CacheDir: dir})
		res, err := eng.Run(context.Background(), jobs)
		if err != nil {
			return runner.Result{}, runner.Counters{}, err
		}
		if res[0].Err != nil {
			return runner.Result{}, runner.Counters{}, res[0].Err
		}
		return res[0], eng.Counters(), nil
	}

	cold, cc, err := run()
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if cold.Cached || cc.SimRuns != 1 || cc.CacheMisses != 1 {
		return &Finding{check, fmt.Sprintf("cold run: cached=%v counters=%+v, want one miss and one sim run", cold.Cached, cc)}
	}
	warm, wc, err := run()
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if !warm.Cached || wc.SimRuns != 0 || wc.CacheHits != 1 {
		return &Finding{check, fmt.Sprintf("warm run: cached=%v counters=%+v, want one hit and zero sim runs", warm.Cached, wc)}
	}
	d, err := statsDiff(cold.Stats, warm.Stats)
	if err != nil {
		return &Finding{check, err.Error()}
	}
	if d != "" {
		return &Finding{check, "cache hit differs from recompute: " + d}
	}
	return nil
}

// CheckInvariants runs the metamorphic pillar.
func CheckInvariants() []Finding {
	var out []Finding
	add := func(f *Finding) {
		if f != nil {
			out = append(out, *f)
		}
	}
	for _, name := range invariantWorkloads() {
		w, err := workloadByName(name)
		if err != nil {
			out = append(out, Finding{"invariant/workload/" + name, err.Error()})
			continue
		}
		add(checkSamplingInvariance(w))
		add(checkRunContextEquivalence(w))
		add(checkRepeatability(w))
		add(checkCloneIsolation(w))
		add(checkBandwidthMonotonicity(w))
	}
	add(checkRunnerCache())
	return out
}
