package conformance

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
)

// TestCheckInvariants runs the metamorphic pillar end to end.
func TestCheckInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic invariants simulate several full cells; skipped with -short")
	}
	for _, f := range CheckInvariants() {
		t.Error(f)
	}
}

// TestStatsDiffNamesField checks the shared comparison helper reports
// the divergent Stats field by name.
func TestStatsDiffNamesField(t *testing.T) {
	a := gpusim.Stats{Cycles: 100, L2Hits: 5}
	b := a
	b.L2Hits = 6
	d, err := statsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d == "" {
		t.Fatal("expected a diff")
	}
	if want := "L2Hits"; !strings.Contains(d, want) {
		t.Fatalf("diff %q does not name %s", d, want)
	}
	if d, err := statsDiff(a, a); err != nil || d != "" {
		t.Fatalf("identical stats diffed: %q, %v", d, err)
	}
}
