package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current implementation")

// TestGoldens is the golden-regression pillar. With -update it
// regenerates testdata/golden/ instead of comparing: the embedded FS in
// the running binary is stale the moment the files are rewritten, so
// update mode never compares — rerun without -update to verify.
func TestGoldens(t *testing.T) {
	if *update {
		for _, cell := range Cells() {
			v, err := cell.Run()
			if err != nil {
				t.Fatalf("%s: %v", cell.Name, err)
			}
			b, err := CanonicalJSON(v)
			if err != nil {
				t.Fatalf("%s: %v", cell.Name, err)
			}
			path := filepath.Join("testdata", "golden", cell.Name+".json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(b))
		}
		return
	}
	for _, cell := range Cells() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			if f := checkGolden(cell); f != nil {
				t.Error(f)
			}
		})
	}
}

// TestGoldenFilesMatchRegistry fails when a golden file exists for a
// cell that is no longer registered (stale goldens rot silently
// otherwise) — and relies on checkGolden for the converse direction.
func TestGoldenFilesMatchRegistry(t *testing.T) {
	registered := map[string]bool{}
	for _, c := range Cells() {
		registered[c.Name] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		if !registered[name] {
			t.Errorf("testdata/golden/%s has no registered cell; delete it or restore the cell", e.Name())
		}
	}
}

func TestCanonicalJSONDeterministic(t *testing.T) {
	v := map[string]any{"b": 2, "a": []int{1, 2, 3}, "c": map[string]float64{"y": 0.25, "x": 1e-9}}
	first, err := CanonicalJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := CanonicalJSON(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encoding %d differs:\n%s\nvs\n%s", i, first, again)
		}
	}
}

// TestDiffNamesFirstDivergence pins the diff report format: a drift must
// name the path of the first divergent metric and both values.
func TestDiffNamesFirstDivergence(t *testing.T) {
	cases := []struct {
		name         string
		golden, got  string
		wantContains []string
	}{
		{"identical", `{"a":1}`, `{"a":1}`, nil},
		{"number", `{"imt":{"Cycles":100}}`, `{"imt":{"Cycles":101}}`,
			[]string{"imt.Cycles", "golden 100", "got 101"}},
		{"float precision", `{"x":0.1}`, `{"x":0.10000000000000001}`,
			[]string{"x", "golden 0.1"}},
		{"missing field", `{"a":1,"b":2}`, `{"a":1}`, []string{"b", "missing in result"}},
		{"new field", `{"a":1}`, `{"a":1,"b":2}`, []string{"b", "not in golden"}},
		{"array length", `{"s":[1,2]}`, `{"s":[1,2,3]}`, []string{"s", "2 elements", "3"}},
		{"nested array element", `{"s":[{"R":1},{"R":2}]}`, `{"s":[{"R":1},{"R":3}]}`,
			[]string{"s[1].R", "golden 2", "got 3"}},
		{"type change", `{"k":"SEC"}`, `{"k":7}`, []string{"k", "SEC", "7"}},
		{"bool", `{"ok":true}`, `{"ok":false}`, []string{"ok", "true", "false"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Diff([]byte(tc.golden), []byte(tc.got))
			if tc.wantContains == nil {
				if d != "" {
					t.Fatalf("want no diff, got %q", d)
				}
				return
			}
			if d == "" {
				t.Fatal("want a diff, got none")
			}
			for _, want := range tc.wantContains {
				if !strings.Contains(d, want) {
					t.Errorf("diff %q does not mention %q", d, want)
				}
			}
		})
	}
}

// TestGoldenDriftIsNamed simulates a perturbed simulator constant by
// corrupting one metric in a committed golden and checking the report
// names that metric.
func TestGoldenDriftIsNamed(t *testing.T) {
	golden, ok := Golden("workload-catalog")
	if !ok {
		t.Skip("goldens not generated yet; run with -update first")
	}
	corrupted := strings.Replace(string(golden), `"CatalogSize": 193`, `"CatalogSize": 192`, 1)
	if corrupted == string(golden) {
		t.Fatal("corruption did not apply; golden format changed?")
	}
	d := Diff([]byte(corrupted), golden)
	if !strings.Contains(d, "CatalogSize") {
		t.Fatalf("drift report %q does not name the divergent metric", d)
	}
}
