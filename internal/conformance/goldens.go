package conformance

import (
	"embed"
	"fmt"
)

// The goldens ship inside the binary so cmd/conformance checks against
// exactly the goldens it was built with, from any working directory.
//
//go:embed testdata/golden
var goldenFS embed.FS

// Golden returns the committed golden for a cell name.
func Golden(name string) ([]byte, bool) {
	b, err := goldenFS.ReadFile("testdata/golden/" + name + ".json")
	if err != nil {
		return nil, false
	}
	return b, true
}

// CheckGoldens runs every registered cell and compares its canonical
// JSON against the committed golden, returning one finding per drifted
// cell with the first divergent metric named.
func CheckGoldens() []Finding {
	var out []Finding
	for _, cell := range Cells() {
		if f := checkGolden(cell); f != nil {
			out = append(out, *f)
		}
	}
	return out
}

func checkGolden(cell Cell) *Finding {
	check := "golden/" + cell.Name
	golden, ok := Golden(cell.Name)
	if !ok {
		return &Finding{check, "no committed golden; run `go test ./internal/conformance -update` and commit testdata/golden/" + cell.Name + ".json"}
	}
	v, err := cell.Run()
	if err != nil {
		return &Finding{check, fmt.Sprintf("cell failed to run: %v", err)}
	}
	got, err := CanonicalJSON(v)
	if err != nil {
		return &Finding{check, fmt.Sprintf("cell result not encodable: %v", err)}
	}
	if d := Diff(golden, got); d != "" {
		return &Finding{check, d}
	}
	return nil
}
