package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.Render()
	if !strings.Contains(out, "T\n=") {
		t.Error("missing title underline")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "a  ") {
		t.Errorf("header misaligned: %q", lines[2])
	}
	if !strings.HasPrefix(lines[5], "333") {
		t.Errorf("row order wrong: %q", lines[5])
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := Table{Header: []string{"x", "y"}}
	tbl.AddRow("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestHMeanSlowdown(t *testing.T) {
	// Identical slowdowns: hmean equals them.
	if got := HMeanSlowdown([]float64{0.1, 0.1}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("hmean of equal = %v", got)
	}
	// hmean of ratios {1.0, 2.0} = 2/(1+0.5) = 4/3 → slowdown 1/3.
	if got := HMeanSlowdown([]float64{0, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("hmean = %v, want 1/3", got)
	}
	if HMeanSlowdown(nil) != 0 {
		t.Error("empty hmean should be 0")
	}
	// HMean slowdown is ≤ arithmetic mean.
	xs := []float64{0.01, 0.2, 0.5}
	if HMeanSlowdown(xs) > Mean(xs) {
		t.Error("hmean should not exceed mean")
	}
}

func TestHMean(t *testing.T) {
	if got := HMean([]float64{1, 1}); got != 1 {
		t.Errorf("HMean = %v", got)
	}
	if got := HMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("HMean(1,3) = %v, want 1.5", got)
	}
	if HMean(nil) != 0 {
		t.Error("empty HMean should be 0")
	}
	// Zero values are clamped, not crashing.
	if got := HMean([]float64{0, 1}); got <= 0 {
		t.Errorf("HMean with zero = %v", got)
	}
}

func TestMaxMeanPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Max(xs) != 3 || Max(nil) != 0 {
		t.Error("Max wrong")
	}
	if Mean(xs) != 2 || Mean(nil) != 0 {
		t.Error("Mean wrong")
	}
	if Percentile(xs, 50) != 2 {
		t.Errorf("P50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 3 || Percentile(xs, 0) != 1 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.1234, 1) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234, 1))
	}
	if Pct(1, 0) != "100%" {
		t.Errorf("Pct = %q", Pct(1, 0))
	}
}
