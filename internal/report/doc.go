// Package report provides the small formatting toolkit shared by the
// experiment drivers: aligned ASCII tables, CSV emission, and the
// aggregate statistics the paper reports (harmonic-mean slowdowns,
// maxima, percentiles).
package report
