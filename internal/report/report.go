package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV (quoting cells containing commas).
func (t Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// HMeanSlowdown computes the harmonic-mean slowdown of a set of per-
// workload slowdowns, the aggregate the paper reports for Figure 8b:
// the harmonic mean is taken over the runtime ratios (1+s), matching the
// standard "hmean of speedups" convention, then converted back.
func HMeanSlowdown(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range slowdowns {
		sum += 1 / (1 + s)
	}
	return float64(len(slowdowns))/sum - 1
}

// HMean is the plain harmonic mean of positive values (used for the
// footprint-bloat aggregate, which the paper reports as a harmonic mean).
// Non-positive values are clamped to eps to keep the statistic defined.
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-9
	sum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Pct formats a fraction as a percentage with the given decimals.
func Pct(x float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, 100*x)
}
