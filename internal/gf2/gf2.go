package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Matrix is a column-major binary matrix with Rows ≤ 64.
// Column j is stored as the uint64 Col[j]; bit i of Col[j] is entry (i, j).
type Matrix struct {
	rows int
	cols []uint64
}

// NewMatrix returns a zero matrix with the given dimensions.
// It panics if rows is not in [0, 64] or cols is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || rows > 64 {
		panic(fmt.Sprintf("gf2: row count %d out of range [0,64]", rows))
	}
	if cols < 0 {
		panic(fmt.Sprintf("gf2: negative column count %d", cols))
	}
	return &Matrix{rows: rows, cols: make([]uint64, cols)}
}

// FromColumns builds a matrix from explicit column bit-vectors.
// The columns are copied.
func FromColumns(rows int, cols []uint64) *Matrix {
	m := NewMatrix(rows, len(cols))
	mask := m.rowMask()
	for j, c := range cols {
		if c&^mask != 0 {
			panic(fmt.Sprintf("gf2: column %d has bits above row %d", j, rows))
		}
		m.cols[j] = c
	}
	return m
}

// Identity returns the r×r identity matrix.
func Identity(r int) *Matrix {
	m := NewMatrix(r, r)
	for i := 0; i < r; i++ {
		m.cols[i] = 1 << uint(i)
	}
	return m
}

func (m *Matrix) rowMask() uint64 {
	if m.rows == 64 {
		return ^uint64(0)
	}
	return (1 << uint(m.rows)) - 1
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return len(m.cols) }

// Col returns column j as a bit-vector (bit i = entry (i,j)).
func (m *Matrix) Col(j int) uint64 { return m.cols[j] }

// SetCol replaces column j.
func (m *Matrix) SetCol(j int, v uint64) {
	if v&^m.rowMask() != 0 {
		panic("gf2: SetCol value has bits above the row count")
	}
	m.cols[j] = v
}

// Get returns entry (i, j) as 0 or 1.
func (m *Matrix) Get(i, j int) int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("gf2: row index %d out of range", i))
	}
	return int(m.cols[j] >> uint(i) & 1)
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j, v int) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("gf2: row index %d out of range", i))
	}
	if v&1 == 1 {
		m.cols[j] |= 1 << uint(i)
	} else {
		m.cols[j] &^= 1 << uint(i)
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, len(m.cols))
	copy(c.cols, m.cols)
	return c
}

// Equal reports whether m and o have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || len(m.cols) != len(o.cols) {
		return false
	}
	for j := range m.cols {
		if m.cols[j] != o.cols[j] {
			return false
		}
	}
	return true
}

// Concat returns the horizontal concatenation [m | others...].
// All operands must have the same row count.
func Concat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("gf2: Concat of nothing")
	}
	rows := ms[0].rows
	total := 0
	for _, m := range ms {
		if m.rows != rows {
			panic("gf2: Concat row-count mismatch")
		}
		total += len(m.cols)
	}
	out := NewMatrix(rows, total)
	j := 0
	for _, m := range ms {
		copy(out.cols[j:], m.cols)
		j += len(m.cols)
	}
	return out
}

// Submatrix returns the column slice [lo, hi) as a new matrix.
func (m *Matrix) Submatrix(lo, hi int) *Matrix {
	out := NewMatrix(m.rows, hi-lo)
	copy(out.cols, m.cols[lo:hi])
	return out
}

// MulVec computes m * x over GF(2), where x is a length-Cols bit vector.
// The result is the XOR of the columns of m selected by the set bits of x.
func (m *Matrix) MulVec(x *BitVec) uint64 {
	if x.Len() != len(m.cols) {
		panic(fmt.Sprintf("gf2: MulVec length mismatch: %d columns, %d-bit vector", len(m.cols), x.Len()))
	}
	var s uint64
	for w, word := range x.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			s ^= m.cols[w*64+b]
			word &= word - 1
		}
	}
	return s
}

// MulBits computes m * x where x is given as the low Cols bits of a uint64.
// It panics if Cols > 64.
func (m *Matrix) MulBits(x uint64) uint64 {
	if len(m.cols) > 64 {
		panic("gf2: MulBits requires ≤64 columns")
	}
	var s uint64
	for x != 0 {
		b := bits.TrailingZeros64(x)
		s ^= m.cols[b]
		x &= x - 1
	}
	return s
}

// Rank returns the rank of the matrix over GF(2).
func (m *Matrix) Rank() int {
	// Gaussian elimination over the column vectors: maintain a basis in
	// row-echelon form keyed by leading (lowest) set bit.
	var basis [64]uint64
	rank := 0
	for _, c := range m.cols {
		v := c
		for v != 0 {
			lead := bits.TrailingZeros64(v)
			if basis[lead] == 0 {
				basis[lead] = v
				rank++
				break
			}
			v ^= basis[lead]
		}
	}
	return rank
}

// HasFullColumnRank reports whether the columns are linearly independent.
func (m *Matrix) HasFullColumnRank() bool {
	return m.Rank() == len(m.cols)
}

// ColumnSpace enumerates every vector in the column space of m, i.e. the
// XOR of every subset of columns, including the zero vector (the empty
// subset). The result has 2^rank distinct values but is returned with
// duplicates removed. It panics if Cols > 24 to bound the enumeration.
func (m *Matrix) ColumnSpace() []uint64 {
	if len(m.cols) > 24 {
		panic("gf2: ColumnSpace limited to ≤24 columns")
	}
	// Build from a reduced basis to avoid 2^cols duplicates when the
	// columns are dependent.
	var basisList []uint64
	var basis [64]uint64
	for _, c := range m.cols {
		v := c
		for v != 0 {
			lead := bits.TrailingZeros64(v)
			if basis[lead] == 0 {
				basis[lead] = v
				basisList = append(basisList, v)
				break
			}
			v ^= basis[lead]
		}
	}
	out := make([]uint64, 1, 1<<uint(len(basisList)))
	out[0] = 0
	for _, b := range basisList {
		for _, v := range out[:len(out):len(out)] {
			out = append(out, v^b)
		}
	}
	return out
}

// ColumnSpaceContains reports whether v is a linear combination of the
// columns of m. Unlike ColumnSpace it works for any column count.
func (m *Matrix) ColumnSpaceContains(v uint64) bool {
	var basis [64]uint64
	for _, c := range m.cols {
		x := c
		for x != 0 {
			lead := bits.TrailingZeros64(x)
			if basis[lead] == 0 {
				basis[lead] = x
				break
			}
			x ^= basis[lead]
		}
	}
	for v != 0 {
		lead := bits.TrailingZeros64(v)
		if basis[lead] == 0 {
			return false
		}
		v ^= basis[lead]
	}
	return true
}

// SolveColumns finds x such that m * x = v, expressing v as a combination
// of the columns of m. It returns the combination as a column-index bitmask
// (bit j set means column j participates) and ok=false if v is not in the
// column space. It panics if Cols > 64.
func (m *Matrix) SolveColumns(v uint64) (x uint64, ok bool) {
	if len(m.cols) > 64 {
		panic("gf2: SolveColumns requires ≤64 columns")
	}
	// basis[lead] holds a reduced vector; comb[lead] records which original
	// columns XOR together to form it.
	var basis, comb [64]uint64
	for j, c := range m.cols {
		vec, cmb := c, uint64(1)<<uint(j)
		for vec != 0 {
			lead := bits.TrailingZeros64(vec)
			if basis[lead] == 0 {
				basis[lead] = vec
				comb[lead] = cmb
				break
			}
			vec ^= basis[lead]
			cmb ^= comb[lead]
		}
	}
	for v != 0 {
		lead := bits.TrailingZeros64(v)
		if basis[lead] == 0 {
			return 0, false
		}
		v ^= basis[lead]
		x ^= comb[lead]
	}
	return x, true
}

// RowWeights returns the number of ones in each row.
func (m *Matrix) RowWeights() []int {
	w := make([]int, m.rows)
	for _, c := range m.cols {
		for v := c; v != 0; v &= v - 1 {
			w[bits.TrailingZeros64(v)]++
		}
	}
	return w
}

// MaxRowWeight returns the largest row weight (0 for an empty matrix).
func (m *Matrix) MaxRowWeight() int {
	max := 0
	for _, w := range m.RowWeights() {
		if w > max {
			max = w
		}
	}
	return max
}

// TotalOnes returns the number of ones in the matrix.
func (m *Matrix) TotalOnes() int {
	n := 0
	for _, c := range m.cols {
		n += bits.OnesCount64(c)
	}
	return n
}

// AllColumnsOddWeight reports whether every column has odd weight.
func (m *Matrix) AllColumnsOddWeight() bool {
	for _, c := range m.cols {
		if bits.OnesCount64(c)%2 == 0 {
			return false
		}
	}
	return true
}

// AllColumnsEvenWeight reports whether every column has even weight.
func (m *Matrix) AllColumnsEvenWeight() bool {
	for _, c := range m.cols {
		if bits.OnesCount64(c)%2 != 0 {
			return false
		}
	}
	return true
}

// ColumnsDistinct reports whether all columns are pairwise distinct.
func (m *Matrix) ColumnsDistinct() bool {
	seen := make(map[uint64]struct{}, len(m.cols))
	for _, c := range m.cols {
		if _, dup := seen[c]; dup {
			return false
		}
		seen[c] = struct{}{}
	}
	return true
}

// String renders the matrix as rows of 0/1 characters, one row per line,
// column 0 rightmost — matching the parity-check-matrix layout used in the
// paper's Equation 6.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := len(m.cols) - 1; j >= 0; j-- {
			if m.Get(i, j) == 1 {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
