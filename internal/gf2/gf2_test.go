package gf2

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	mask := m.rowMask()
	for j := 0; j < cols; j++ {
		m.SetCol(j, rng.Uint64()&mask)
	}
	return m
}

func TestIdentity(t *testing.T) {
	id := Identity(8)
	if id.Rows() != 8 || id.Cols() != 8 {
		t.Fatalf("identity shape = %dx%d, want 8x8", id.Rows(), id.Cols())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0
			if i == j {
				want = 1
			}
			if got := id.Get(i, j); got != want {
				t.Errorf("I[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	if id.Rank() != 8 {
		t.Errorf("identity rank = %d, want 8", id.Rank())
	}
	if !id.HasFullColumnRank() {
		t.Error("identity should have full column rank")
	}
}

func TestGetSet(t *testing.T) {
	m := NewMatrix(10, 5)
	m.Set(3, 2, 1)
	if m.Get(3, 2) != 1 {
		t.Error("Set(3,2,1) not visible via Get")
	}
	if m.Col(2) != 1<<3 {
		t.Errorf("Col(2) = %b, want %b", m.Col(2), 1<<3)
	}
	m.Set(3, 2, 0)
	if m.Get(3, 2) != 0 {
		t.Error("Set(3,2,0) did not clear the bit")
	}
}

func TestRankProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(16)
		cols := 1 + rng.Intn(40)
		m := randomMatrix(rng, rows, cols)
		r := m.Rank()
		if r > rows || r > cols {
			t.Fatalf("rank %d exceeds min(%d,%d)", r, rows, cols)
		}
		// Rank is invariant under column permutation.
		perm := rng.Perm(cols)
		p := NewMatrix(rows, cols)
		for j, pj := range perm {
			p.SetCol(j, m.Col(pj))
		}
		if p.Rank() != r {
			t.Fatalf("rank changed under column permutation: %d vs %d", p.Rank(), r)
		}
		// Duplicating a column never increases rank.
		d := Concat(m, m.Submatrix(0, 1))
		if d.Rank() != r {
			t.Fatalf("rank changed when duplicating a column: %d vs %d", d.Rank(), r)
		}
	}
}

func TestColumnSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(10)
		m := randomMatrix(rng, rows, cols)
		space := m.ColumnSpace()
		if len(space) != 1<<uint(m.Rank()) {
			t.Fatalf("column space size %d, want 2^rank = %d", len(space), 1<<uint(m.Rank()))
		}
		seen := make(map[uint64]bool)
		for _, v := range space {
			if seen[v] {
				t.Fatal("duplicate vector in column space")
			}
			seen[v] = true
			if !m.ColumnSpaceContains(v) {
				t.Fatalf("ColumnSpaceContains rejects member %x", v)
			}
		}
		if !seen[0] {
			t.Fatal("column space must contain the zero vector")
		}
		// Closure under XOR.
		for i := 0; i < 20; i++ {
			a := space[rng.Intn(len(space))]
			b := space[rng.Intn(len(space))]
			if !seen[a^b] {
				t.Fatalf("column space not closed under XOR: %x ^ %x", a, b)
			}
		}
	}
}

func TestSolveColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(16)
		cols := 1 + rng.Intn(20)
		m := randomMatrix(rng, rows, cols)
		// Pick a random combination and verify SolveColumns inverts it.
		var comb uint64
		if cols >= 64 {
			comb = rng.Uint64()
		} else {
			comb = rng.Uint64() & ((1 << uint(cols)) - 1)
		}
		target := uint64(0)
		for x := comb; x != 0; x &= x - 1 {
			target ^= m.Col(bits.TrailingZeros64(x))
		}
		x, ok := m.SolveColumns(target)
		if !ok {
			t.Fatal("SolveColumns failed on a constructed member")
		}
		// The returned combination must reproduce the target (it need not
		// equal comb when columns are dependent).
		got := uint64(0)
		for y := x; y != 0; y &= y - 1 {
			got ^= m.Col(bits.TrailingZeros64(y))
		}
		if got != target {
			t.Fatalf("SolveColumns solution does not satisfy m*x = v: %x vs %x", got, target)
		}
	}
	// A vector outside the column space must be rejected.
	m := FromColumns(4, []uint64{0b0011, 0b0110}) // spans even-weight vectors in low 3 rows
	if _, ok := m.SolveColumns(0b1000); ok {
		t.Error("SolveColumns accepted a vector outside the column space")
	}
}

func TestMulVecMatchesMulBits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(16)
		cols := 1 + rng.Intn(60)
		m := randomMatrix(rng, rows, cols)
		x := rng.Uint64() & ((1 << uint(cols)) - 1)
		bv := NewBitVec(cols)
		for i := 0; i < cols; i++ {
			bv.Set(i, int(x>>uint(i)&1))
		}
		if m.MulBits(x) != m.MulVec(bv) {
			t.Fatal("MulBits and MulVec disagree")
		}
	}
}

func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 12, 200)
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := NewBitVec(200)
		b := NewBitVec(200)
		for i := 0; i < 200; i++ {
			a.Set(i, ra.Intn(2))
			b.Set(i, rb.Intn(2))
		}
		sum := a.Clone()
		sum.Xor(b)
		return m.MulVec(sum) == m.MulVec(a)^m.MulVec(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcatSubmatrix(t *testing.T) {
	a := FromColumns(4, []uint64{1, 2})
	b := FromColumns(4, []uint64{4, 8, 15})
	c := Concat(a, b)
	if c.Cols() != 5 {
		t.Fatalf("Concat cols = %d, want 5", c.Cols())
	}
	if !c.Submatrix(0, 2).Equal(a) || !c.Submatrix(2, 5).Equal(b) {
		t.Error("Submatrix does not recover Concat operands")
	}
}

func TestWeightHelpers(t *testing.T) {
	m := FromColumns(4, []uint64{0b0111, 0b1011, 0b0011})
	if m.AllColumnsOddWeight() {
		t.Error("matrix with a weight-2 column reported all-odd")
	}
	if m.AllColumnsEvenWeight() {
		t.Error("matrix with weight-3 columns reported all-even")
	}
	odd := FromColumns(4, []uint64{0b0111, 0b1011})
	if !odd.AllColumnsOddWeight() {
		t.Error("all-odd matrix not detected")
	}
	even := FromColumns(4, []uint64{0b0011, 0b0110})
	if !even.AllColumnsEvenWeight() {
		t.Error("all-even matrix not detected")
	}
	if got := m.TotalOnes(); got != 8 {
		t.Errorf("TotalOnes = %d, want 8", got)
	}
	w := m.RowWeights()
	want := []int{3, 3, 1, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("RowWeights[%d] = %d, want %d", i, w[i], want[i])
		}
	}
	if m.MaxRowWeight() != 3 {
		t.Errorf("MaxRowWeight = %d, want 3", m.MaxRowWeight())
	}
}

func TestColumnsDistinct(t *testing.T) {
	if !FromColumns(4, []uint64{1, 2, 3}).ColumnsDistinct() {
		t.Error("distinct columns reported as duplicated")
	}
	if FromColumns(4, []uint64{1, 2, 1}).ColumnsDistinct() {
		t.Error("duplicate columns not detected")
	}
}

func TestMatrixString(t *testing.T) {
	// Column 0 = rows {0,1}, column 1 = rows {1,2}: the 3-row staircase.
	m := FromColumns(3, []uint64{0b011, 0b110})
	want := "01\n11\n10"
	if got := m.String(); got != want {
		t.Errorf("String() =\n%s\nwant\n%s", got, want)
	}
}

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	v.Set(0, 1)
	v.Set(64, 1)
	v.Set(129, 1)
	if v.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", v.Weight())
	}
	got := v.SetBits()
	want := []int{0, 64, 129}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetBits = %v, want %v", got, want)
		}
	}
	v.Flip(64)
	if v.Get(64) != 0 || v.Weight() != 2 {
		t.Error("Flip did not clear bit 64")
	}
	c := v.Clone()
	if !c.Equal(v) {
		t.Error("clone not equal to original")
	}
	c.Xor(v)
	if !c.IsZero() {
		t.Error("v ⊕ v should be zero")
	}
}

func TestBitVecBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		n := len(data) * 8
		v := BitVecFromBytes(n, data)
		out := v.Bytes()
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitVecBytesPartial(t *testing.T) {
	// 12-bit vector from 2 bytes: the top 4 bits of the second byte are masked.
	v := BitVecFromBytes(12, []byte{0xFF, 0xFF})
	if v.Weight() != 12 {
		t.Fatalf("weight = %d, want 12", v.Weight())
	}
	b := v.Bytes()
	if b[0] != 0xFF || b[1] != 0x0F {
		t.Errorf("Bytes = %x, want ff0f", b)
	}
}

func TestBitVecString(t *testing.T) {
	v := NewBitVec(4)
	v.Set(0, 1)
	v.Set(3, 1)
	if got := v.String(); got != "1001" {
		t.Errorf("String = %q, want 1001", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewMatrix rows>64", func() { NewMatrix(65, 1) })
	mustPanic("Get out of range", func() { NewMatrix(4, 4).Get(4, 0) })
	mustPanic("SetCol overflow", func() { NewMatrix(2, 1).SetCol(0, 0b100) })
	mustPanic("BitVec Get out of range", func() { NewBitVec(4).Get(4) })
	mustPanic("Xor mismatch", func() { NewBitVec(4).Xor(NewBitVec(5)) })
	mustPanic("MulVec mismatch", func() { NewMatrix(4, 4).MulVec(NewBitVec(5)) })
}
