package gf2

// Transpose64 transposes a 64×64 bit matrix in place. The convention
// matches the rest of the package: bit j of a[i] is entry (i, j), so
// after the call bit j of a[i] holds what bit i of a[j] held before.
//
// The implementation is the classic recursive block swap (Hacker's
// Delight §7-3 generalized to 64 bits): six passes, each exchanging the
// off-diagonal sub-blocks of every 2j×2j tile with shift-and-mask
// delta swaps — 64 XOR/shift ops per pass, no branches on data.
//
// The bitsliced injection engine uses this to pivot R syndrome
// bit-planes (one word per H row, one lane per bit) into 64 per-lane
// syndrome words for table lookup.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			// Swap the high half of row k with the low half of row k+j:
			// entries (k, j..) ↔ (k+j, ..j) within the current tile.
			t := ((a[k] >> uint(j)) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
	}
}
