// Package gf2 provides bit-packed linear algebra over the binary finite
// field GF(2), where addition is XOR and multiplication is AND.
//
// It is the foundation for all error-correcting-code construction in this
// repository. Two representations are provided:
//
//   - Matrix: a column-major matrix with at most 64 rows. Each column is a
//     single uint64 bit-vector, which makes syndrome computation (the XOR of
//     the columns selected by an error pattern) a tight loop. Parity-check
//     matrices have R ≤ 16 rows in this project, so the 64-row limit is
//     never a constraint in practice.
//   - BitVec: an arbitrary-length bit vector used for codewords and error
//     patterns (N can exceed 64; e.g. a 32B codeword with 16 check bits and
//     a 15-bit tag spans 287 bit positions).
package gf2
