package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVec is an arbitrary-length bit vector over GF(2), used for codewords
// and error patterns whose length exceeds 64 bits.
type BitVec struct {
	n     int
	words []uint64
}

// NewBitVec returns a zero vector of length n.
func NewBitVec(n int) *BitVec {
	if n < 0 {
		panic("gf2: negative BitVec length")
	}
	return &BitVec{n: n, words: make([]uint64, (n+63)/64)}
}

// BitVecFromBytes builds an n-bit vector from little-endian bytes: bit i of
// the vector is bit (i%8) of data[i/8]. Bytes beyond n bits are ignored;
// missing bytes are treated as zero.
func BitVecFromBytes(n int, data []byte) *BitVec {
	v := NewBitVec(n)
	for i := 0; i < len(data) && i*8 < n; i++ {
		v.words[i/8] |= uint64(data[i]) << uint(8*(i%8))
	}
	v.maskTail()
	return v
}

// Bytes returns the vector as little-endian bytes (ceil(n/8) of them).
func (v *BitVec) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := range out {
		out[i] = byte(v.words[i/8] >> uint(8*(i%8)))
	}
	return out
}

func (v *BitVec) maskTail() {
	if r := v.n % 64; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}

// Len returns the vector length in bits.
func (v *BitVec) Len() int { return v.n }

// Words exposes the backing 64-bit words (bit i of the vector is bit i%64
// of word i/64). The slice aliases the vector's storage and must not be
// modified; it exists for hot paths such as syndrome computation.
func (v *BitVec) Words() []uint64 { return v.words }

// Get returns bit i.
func (v *BitVec) Get(i int) int {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: BitVec index %d out of range [0,%d)", i, v.n))
	}
	return int(v.words[i/64] >> uint(i%64) & 1)
}

// Set assigns bit i.
func (v *BitVec) Set(i, b int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: BitVec index %d out of range [0,%d)", i, v.n))
	}
	if b&1 == 1 {
		v.words[i/64] |= 1 << uint(i%64)
	} else {
		v.words[i/64] &^= 1 << uint(i%64)
	}
}

// Flip toggles bit i.
func (v *BitVec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: BitVec index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/64] ^= 1 << uint(i%64)
}

// Xor sets v = v ⊕ o. The lengths must match.
func (v *BitVec) Xor(o *BitVec) {
	if v.n != o.n {
		panic("gf2: BitVec Xor length mismatch")
	}
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// Weight returns the number of set bits.
func (v *BitVec) Weight() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsZero reports whether every bit is clear.
func (v *BitVec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical length and bits.
func (v *BitVec) Equal(o *BitVec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (v *BitVec) Clone() *BitVec {
	c := NewBitVec(v.n)
	copy(c.words, v.words)
	return c
}

// SetBits returns the indices of the set bits in ascending order.
func (v *BitVec) SetBits() []int {
	out := make([]int, 0, v.Weight())
	for w, word := range v.words {
		for word != 0 {
			out = append(out, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// String renders the vector with bit 0 rightmost.
func (v *BitVec) String() string {
	var sb strings.Builder
	for i := v.n - 1; i >= 0; i-- {
		if v.Get(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
