package gf2

import (
	"math/rand"
	"testing"
)

// transposeNaive is the reference: bit j of out[i] = bit i of in[j].
func transposeNaive(a [64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if a[j]>>uint(i)&1 == 1 {
				out[i] |= 1 << uint(j)
			}
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var a [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		want := transposeNaive(a)
		got := a
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: Transpose64 disagrees with naive reference", trial)
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var a [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	b := a
	Transpose64(&b)
	Transpose64(&b)
	if a != b {
		t.Fatal("Transpose64 applied twice is not the identity")
	}
}

func TestTranspose64SingleBit(t *testing.T) {
	for _, pos := range [][2]int{{0, 0}, {0, 63}, {63, 0}, {17, 42}, {42, 17}, {31, 32}} {
		var a [64]uint64
		a[pos[0]] = 1 << uint(pos[1])
		Transpose64(&a)
		for i := 0; i < 64; i++ {
			want := uint64(0)
			if i == pos[1] {
				want = 1 << uint(pos[0])
			}
			if a[i] != want {
				t.Fatalf("bit (%d,%d): row %d = %#x, want %#x", pos[0], pos[1], i, a[i], want)
			}
		}
	}
}
