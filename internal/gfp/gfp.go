package gfp

import "fmt"

// Field is GF(2^m) under a primitive polynomial.
type Field struct {
	m    int
	size int // 2^m
	poly uint32
	log  []uint16 // log[x] = discrete log base α (log[0] unused)
	exp  []uint16 // exp[i] = α^i, doubled to avoid mod in Mul
}

// Default primitive polynomials per field size (x^m + ... + 1).
var primitivePolys = map[int]uint32{
	2:  0x7,     // x^2+x+1
	3:  0xB,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	8:  0x11D,   // x^8+x^4+x^3+x^2+1 (the AES/RS classic)
	10: 0x409,   // x^10+x^3+1
	12: 0x1053,  // x^12+x^6+x^4+x+1
	16: 0x1100B, // x^16+x^12+x^3+x+1
}

// New builds GF(2^m) with a standard primitive polynomial. Supported m:
// 2, 3, 4, 8, 10, 12, 16.
func New(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("gfp: no primitive polynomial registered for m=%d", m)
	}
	return NewWithPoly(m, poly)
}

// NewWithPoly builds GF(2^m) from an explicit degree-m polynomial. It
// fails if the polynomial is not primitive (α must generate the whole
// multiplicative group).
func NewWithPoly(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gfp: m=%d out of range [2,16]", m)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("gfp: polynomial %#x does not have degree %d", poly, m)
	}
	f := &Field{m: m, size: 1 << uint(m), poly: poly}
	f.log = make([]uint16, f.size)
	f.exp = make([]uint16, 2*f.size)
	x := uint32(1)
	for i := 0; i < f.size-1; i++ {
		if x == 1 && i > 0 {
			return nil, fmt.Errorf("gfp: polynomial %#x is not primitive for m=%d (order %d)", poly, m, i)
		}
		f.exp[i] = uint16(x)
		f.exp[i+f.size-1] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x>>uint(m) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gfp: polynomial %#x is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// M returns the extension degree.
func (f *Field) M() int { return f.m }

// Size returns the field order 2^m.
func (f *Field) Size() int { return f.size }

// Add is addition (XOR).
func (f *Field) Add(a, b uint16) uint16 { return a ^ b }

// Mul multiplies via log tables.
func (f *Field) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Inv returns the multiplicative inverse; it panics on 0.
func (f *Field) Inv(a uint16) uint16 {
	if a == 0 {
		panic("gfp: inverse of zero")
	}
	return f.exp[f.size-1-int(f.log[a])]
}

// Div returns a/b; it panics when b is 0.
func (f *Field) Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gfp: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+f.size-1-int(f.log[b])]
}

// Pow returns α^i (i may exceed the group order).
func (f *Field) Pow(i int) uint16 {
	n := f.size - 1
	i %= n
	if i < 0 {
		i += n
	}
	return f.exp[i]
}

// Log returns the discrete log of a (a ≠ 0).
func (f *Field) Log(a uint16) int {
	if a == 0 {
		panic("gfp: log of zero")
	}
	return int(f.log[a])
}
