// Package gfp implements arithmetic in the binary extension fields
// GF(2^m) for m ≤ 16, the substrate for symbol-based error-correcting
// codes (Reed-Solomon-style), which the paper's §7.1 identifies as the
// necessary next step for AFT-ECC on CPUs (chipkill) and against the
// byte/burst error patterns dominant in real DRAM and SRAM.
//
// Elements are represented as uint16 bit-vectors of polynomial
// coefficients; multiplication uses log/antilog tables built from a
// primitive polynomial, so all operations are table lookups.
package gfp
