package gfp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func field(t *testing.T, m int) *Field {
	t.Helper()
	f, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConstruction(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8, 10, 12, 16} {
		f := field(t, m)
		if f.M() != m || f.Size() != 1<<uint(m) {
			t.Errorf("m=%d: wrong accessors", m)
		}
	}
	if _, err := New(5); err == nil {
		t.Error("unsupported m should fail")
	}
	if _, err := NewWithPoly(4, 0x10); err == nil {
		t.Error("x^4 alone is not primitive (not even irreducible)")
	}
	if _, err := NewWithPoly(4, 0x1F); err == nil {
		t.Error("x^4+x^3+x^2+x+1 has order 5, not primitive")
	}
	if _, err := NewWithPoly(4, 0x23); err == nil {
		t.Error("degree mismatch should fail")
	}
	if _, err := NewWithPoly(1, 0x3); err == nil {
		t.Error("m=1 out of range")
	}
}

func TestFieldAxiomsGF16(t *testing.T) {
	// Exhaustive over GF(2^4).
	f := field(t, 4)
	n := uint16(f.Size())
	for a := uint16(0); a < n; a++ {
		for b := uint16(0); b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			for c := uint16(0); c < n; c++ {
				if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
					t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("not distributive at %d,%d,%d", a, b, c)
				}
			}
		}
	}
	for a := uint16(1); a < n; a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("inverse wrong for %d", a)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("1 not identity for %d", a)
		}
		if f.Mul(a, 0) != 0 {
			t.Fatalf("0 not absorbing for %d", a)
		}
	}
}

func TestFieldAxiomsGF256Quick(t *testing.T) {
	f := field(t, 8)
	prop := func(a, b, c uint8) bool {
		x, y, z := uint16(a), uint16(b), uint16(c)
		if f.Mul(x, y) != f.Mul(y, x) {
			return false
		}
		if f.Mul(x, f.Mul(y, z)) != f.Mul(f.Mul(x, y), z) {
			return false
		}
		if f.Mul(x, f.Add(y, z)) != f.Add(f.Mul(x, y), f.Mul(x, z)) {
			return false
		}
		if y != 0 && f.Mul(f.Div(x, y), y) != x {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAlphaGeneratesGroup(t *testing.T) {
	for _, m := range []int{4, 8, 16} {
		f := field(t, m)
		seen := map[uint16]bool{}
		for i := 0; i < f.Size()-1; i++ {
			v := f.Pow(i)
			if v == 0 || seen[v] {
				t.Fatalf("m=%d: α^%d = %d repeats or is zero", m, i, v)
			}
			seen[v] = true
		}
		if f.Pow(f.Size()-1) != 1 {
			t.Errorf("m=%d: α^(2^m−1) ≠ 1", m)
		}
		if f.Pow(-1) != f.Inv(f.Pow(1)) {
			t.Errorf("m=%d: negative exponent wrong", m)
		}
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	f := field(t, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := uint16(1 + rng.Intn(255))
		if f.Pow(f.Log(a)) != a {
			t.Fatalf("exp(log(%d)) != %d", a, a)
		}
	}
}

func TestPanics(t *testing.T) {
	f := field(t, 4)
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { f.Inv(0) },
		"Div(1,0)": func() { f.Div(1, 0) },
		"Log(0)":   func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	if f.Div(0, 3) != 0 {
		t.Error("0/x should be 0")
	}
}
