package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/apitypes"
)

// breaker is one shard's circuit breaker. States:
//
//	closed    → routable; normal operation.
//	open      → excluded from routing. Entered from any state on a
//	            request/stream failure or a failed health probe.
//	half-open → tentatively routable. Entered from open on the first
//	            successful health probe; a second consecutive success
//	            (probe or routed request) closes the breaker, any
//	            failure reopens it.
//
// Probes run in the background (Gateway's prober loop), so a dead
// shard is discovered within one probe interval even with no traffic,
// and a recovered shard rejoins routing without operator action.
type breaker struct {
	mu       sync.Mutex
	state    string // apitypes.BreakerClosed | BreakerOpen | BreakerHalfOpen
	okStreak int
	opens    atomic.Uint64 // lifetime → open transitions
}

func newBreaker() *breaker {
	return &breaker{state: apitypes.BreakerClosed}
}

func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// routable reports whether the shard may receive traffic (closed or
// half-open).
func (b *breaker) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != apitypes.BreakerOpen
}

// onFailure trips the breaker: any request, stream or probe failure
// opens it. Reports whether this call transitioned the state (for the
// serve_gw_breaker_opens_total counter).
func (b *breaker) onFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.okStreak = 0
	if b.state == apitypes.BreakerOpen {
		return false
	}
	b.state = apitypes.BreakerOpen
	b.opens.Add(1)
	return true
}

// onSuccess records a success. Probe successes walk open → half-open →
// closed; request successes close a half-open breaker immediately (a
// real request is at least as strong a signal as a probe) and are
// no-ops on a closed one. Requests are never routed to an open shard,
// so a request success in state open (a race with the breaker
// tripping) only moves it to half-open.
func (b *breaker) onSuccess(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case apitypes.BreakerOpen:
		b.state = apitypes.BreakerHalfOpen
		b.okStreak = 1
	case apitypes.BreakerHalfOpen:
		b.okStreak++
		if !probe || b.okStreak >= 2 {
			b.state = apitypes.BreakerClosed
		}
	}
}

// shardState is everything the gateway tracks per shard: the breaker
// plus reroute accounting.
type shardState struct {
	url      string
	br       *breaker
	rerouted atomic.Uint64 // cells moved away from this shard
}

// probeAll health-checks every shard once, synchronously, updating the
// breakers. Exposed (as Gateway.ProbeNow) so tests and the prober loop
// share one code path.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ss := range g.shards {
		wg.Add(1)
		go func(ss *shardState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, g.opts.ProbeTimeout)
			defer cancel()
			err := g.pool.Raw(ss.url).Health(pctx)
			g.count(g.mProbes)
			if err != nil {
				g.count(g.mProbeFailures)
				if ss.br.onFailure() {
					g.count(g.mBreakerOpens)
				}
			} else {
				ss.br.onSuccess(true)
			}
		}(ss)
	}
	wg.Wait()
	g.gaugeShardsUp()
}

// ProbeNow runs one synchronous health-probe round across the fleet.
// The background prober calls it every ProbeInterval; tests call it
// directly for deterministic breaker transitions.
func (g *Gateway) ProbeNow(ctx context.Context) { g.probeAll(ctx) }

// prober is the background probe loop, started by New and stopped by
// Close.
func (g *Gateway) prober() {
	defer g.probeWG.Done()
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopProbe:
			return
		case <-t.C:
			g.probeAll(context.Background())
		}
	}
}

func (g *Gateway) gaugeShardsUp() {
	if g.mShardsUp == nil {
		return
	}
	up := 0
	for _, ss := range g.shards {
		if ss.br.routable() {
			up++
		}
	}
	g.mShardsUp.Set(float64(up))
}
