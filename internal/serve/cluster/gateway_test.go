package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/apitypes"
)

// chaosShard wraps a real imtd handler with fault injection: armKill
// makes the next /v1/sweep record its cell list, emit `emit` fake
// lines, and abort the connection mid-stream (a shard dying with work
// in flight); armSimFail makes every /v1/sim abort (a shard that is
// probe-healthy but fails requests).
type chaosShard struct {
	inner      http.Handler
	armKill    atomic.Bool
	armSimFail atomic.Bool
	emit       int

	mu  sync.Mutex
	got []apitypes.CellRef
}

func (c *chaosShard) cells() []apitypes.CellRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]apitypes.CellRef(nil), c.got...)
}

func (c *chaosShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/sim" && c.armSimFail.Load() {
		panic(http.ErrAbortHandler)
	}
	if r.URL.Path == "/v1/sweep" && c.armKill.CompareAndSwap(true, false) {
		var req apitypes.SweepRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		c.mu.Lock()
		c.got = append(c.got, req.Cells...)
		c.mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for i := 0; i < c.emit && i < len(req.Cells); i++ {
			_ = enc.Encode(apitypes.CellResult{
				Workload: req.Cells[i].Workload,
				Mode:     req.Cells[i].Mode,
				Cached:   true,
				Stats:    nil,
			})
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever the stream mid-flight
	}
	c.inner.ServeHTTP(w, r)
}

// newFleet starts n real imtd shards (each behind a chaosShard) and a
// gateway over them with background probing effectively disabled —
// tests drive breaker transitions with ProbeNow for determinism.
func newFleet(t *testing.T, n int) (*Gateway, []*chaosShard, []string) {
	t.Helper()
	var chaoses []*chaosShard
	var urls []string
	for i := 0; i < n; i++ {
		s, err := serve.New(serve.Options{Workers: 2, CacheDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		ch := &chaosShard{inner: s.Handler(), emit: 1}
		ts := httptest.NewServer(ch)
		t.Cleanup(ts.Close)
		chaoses = append(chaoses, ch)
		urls = append(urls, ts.URL)
	}
	gw, err := New(Options{Shards: urls, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw, chaoses, urls
}

func gwPost(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func gwGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// parseSweep splits an NDJSON sweep response into cell lines and the
// final summary, failing if the summary is missing or not last.
func parseSweep(t *testing.T, body *bytes.Buffer) ([]apitypes.CellResult, apitypes.SweepSummary) {
	t.Helper()
	var cells []apitypes.CellResult
	var summary apitypes.SweepSummary
	sawSummary := false
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("line after the summary: %s", line)
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Done != nil {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatalf("bad summary line %s: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var cell apitypes.CellResult
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatalf("bad cell line %s: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if !sawSummary {
		t.Fatal("sweep stream ended without a done:true summary")
	}
	return cells, summary
}

const sweepBody = `{"suite":"STREAM","modes":["none","imt"]}`

// canonical reduces a cell to the fields that must be identical no
// matter which shard served it (or whether a gateway was involved at
// all): identity, stats, error. Provenance — shard, reroute, cache and
// coalesce flags, timings — is allowed to differ.
func canonical(t *testing.T, cells []apitypes.CellResult) map[string]string {
	t.Helper()
	m := make(map[string]string, len(cells))
	for _, c := range cells {
		key := c.Workload + "|" + c.Mode
		if _, dup := m[key]; dup {
			t.Fatalf("cell %s delivered twice", key)
		}
		blob, err := json.Marshal(struct {
			Stats any    `json:"stats"`
			Error string `json:"error,omitempty"`
		}{c.Stats, c.Error})
		if err != nil {
			t.Fatal(err)
		}
		m[key] = string(blob)
	}
	return m
}

// TestGatewaySweepMatchesSingleNode: the gateway is a transparent
// scatter/merge — the canonical result set of a sweep through a
// 2-shard fleet must equal the same sweep on one imtd.
func TestGatewaySweepMatchesSingleNode(t *testing.T) {
	single, err := serve.New(serve.Options{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := gwPost(t, single.Handler(), "/v1/sweep", sweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("single-node sweep: %d: %s", rec.Code, rec.Body.String())
	}
	wantCells, wantSummary := parseSweep(t, rec.Body)
	want := canonical(t, wantCells)

	gw, _, _ := newFleet(t, 2)
	rec = gwPost(t, gw.Handler(), "/v1/sweep", sweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("gateway sweep: %d: %s", rec.Code, rec.Body.String())
	}
	gotCells, gotSummary := parseSweep(t, rec.Body)
	got := canonical(t, gotCells)

	if len(got) != len(want) {
		t.Fatalf("gateway delivered %d cells, single node %d", len(got), len(want))
	}
	for key, w := range want {
		if got[key] != w {
			t.Errorf("cell %s differs:\n  gateway: %s\n  single:  %s", key, got[key], w)
		}
	}
	if gotSummary.Cells != wantSummary.Cells || gotSummary.Failed != 0 {
		t.Errorf("summary mismatch: gateway %+v vs single %+v", gotSummary, wantSummary)
	}
	for _, c := range gotCells {
		if c.Shard == "" {
			t.Errorf("cell %s|%s missing shard annotation", c.Workload, c.Mode)
		}
		if c.Rerouted {
			t.Errorf("cell %s|%s flagged rerouted on a healthy fleet", c.Workload, c.Mode)
		}
	}
	if gotSummary.Rerouted != 0 {
		t.Errorf("summary.Rerouted = %d on a healthy fleet", gotSummary.Rerouted)
	}
}

// TestGatewaySweepExactlyOnceAcrossShardKill: a shard dies mid-stream
// after delivering part of its share; the gateway must reroute the
// undelivered remainder and still deliver every cell exactly once.
// The victim is chosen from the actual ring assignment, so the test is
// deterministic regardless of which ephemeral ports the fleet got.
func TestGatewaySweepExactlyOnceAcrossShardKill(t *testing.T) {
	gw, chaoses, urls := newFleet(t, 3)

	var req apitypes.SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &req); err != nil {
		t.Fatal(err)
	}
	cells, err := gw.expandSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	groups, unroutable := gw.assign(cells)
	if len(unroutable) != 0 {
		t.Fatalf("healthy fleet left cells unroutable: %v", unroutable)
	}
	victim, victimShare := "", 0
	for url, group := range groups {
		if len(group) > victimShare {
			victim, victimShare = url, len(group)
		}
	}
	if victimShare < 2 {
		t.Fatalf("largest shard share is %d cells; need ≥2 for a meaningful mid-stream kill", victimShare)
	}
	for i, url := range urls {
		if url == victim {
			chaoses[i].armKill.Store(true)
		}
	}

	rec := gwPost(t, gw.Handler(), "/v1/sweep", sweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d: %s", rec.Code, rec.Body.String())
	}
	gotCells, summary := parseSweep(t, rec.Body)

	got := canonical(t, gotCells) // fails on any duplicate
	if len(got) != len(cells) {
		t.Fatalf("delivered %d distinct cells, want %d", len(got), len(cells))
	}
	for _, c := range gotCells {
		if c.Error != "" {
			t.Errorf("cell %s|%s failed: %s", c.Workload, c.Mode, c.Error)
		}
	}

	var victimGot int
	for i, url := range urls {
		if url == victim {
			victimGot = len(chaoses[i].cells())
		}
	}
	if victimGot != victimShare {
		t.Fatalf("victim received %d cells, assignment predicted %d", victimGot, victimShare)
	}
	// The victim emitted at most 1 line before dying (and an abort can
	// race the flush, losing even that one), so the rest of its share
	// must have been rerouted.
	if summary.Rerouted < victimGot-1 || summary.Rerouted > victimGot {
		t.Errorf("summary.Rerouted = %d, want %d or %d (victim share %d, ≤1 line delivered before the kill)",
			summary.Rerouted, victimGot-1, victimGot, victimGot)
	}
	reroutedSeen := 0
	for _, c := range gotCells {
		if c.Rerouted {
			reroutedSeen++
			if c.Shard == victim {
				t.Errorf("cell %s|%s rerouted back onto the dead victim", c.Workload, c.Mode)
			}
		}
	}
	if reroutedSeen != summary.Rerouted {
		t.Errorf("rerouted flags on lines (%d) disagree with summary (%d)", reroutedSeen, summary.Rerouted)
	}

	// The kill must have tripped the victim's breaker.
	snap := gw.Stats(context.Background())
	for _, row := range snap.Shards {
		if row.Shard == victim && row.Breaker != apitypes.BreakerOpen {
			t.Errorf("victim breaker = %q after mid-stream kill, want open", row.Breaker)
		}
	}
}

// flakyHealth is a minimal shard that only answers health checks,
// toggled between healthy and failing.
type flakyHealth struct{ healthy atomic.Bool }

func (f *flakyHealth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/healthz" && f.healthy.Load() {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
		return
	}
	http.Error(w, `{"error":{"code":"draining","message":"down"}}`, http.StatusServiceUnavailable)
}

// TestGatewayBreakerProbeLifecycle walks a shard's breaker through the
// full cycle using health probes only: closed → (probe failure) open →
// (probe success) half-open → (second success) closed, with the
// gateway's own healthz reflecting fleet routability throughout.
func TestGatewayBreakerProbeLifecycle(t *testing.T) {
	fh := &flakyHealth{}
	fh.healthy.Store(true)
	ts := httptest.NewServer(fh)
	t.Cleanup(ts.Close)
	gw, err := New(Options{Shards: []string{ts.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	h := gw.Handler()

	stateOf := func() string {
		t.Helper()
		rec := gwGet(t, h, "/v1/statsz")
		var snap apitypes.GatewaySnapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		if len(snap.Shards) != 1 {
			t.Fatalf("statsz breakdown has %d shards, want 1", len(snap.Shards))
		}
		return snap.Shards[0].Breaker
	}

	if got := stateOf(); got != apitypes.BreakerClosed {
		t.Fatalf("initial breaker = %q, want closed", got)
	}
	if rec := gwGet(t, h, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz with healthy fleet = %d", rec.Code)
	}

	fh.healthy.Store(false)
	gw.ProbeNow(context.Background())
	if got := stateOf(); got != apitypes.BreakerOpen {
		t.Fatalf("breaker after failed probe = %q, want open", got)
	}
	if rec := gwGet(t, h, "/v1/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no routable shard = %d, want 503", rec.Code)
	}

	fh.healthy.Store(true)
	gw.ProbeNow(context.Background())
	if got := stateOf(); got != apitypes.BreakerHalfOpen {
		t.Fatalf("breaker after one recovery probe = %q, want half-open", got)
	}
	if rec := gwGet(t, h, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz with half-open shard = %d, want 200 (half-open is routable)", rec.Code)
	}

	gw.ProbeNow(context.Background())
	if got := stateOf(); got != apitypes.BreakerClosed {
		t.Fatalf("breaker after two recovery probes = %q, want closed", got)
	}
}

// TestGatewaySimReroute: a shard that passes probes but fails requests
// must not lose the cell — the gateway walks the ring to the next
// shard and flags the result rerouted.
func TestGatewaySimReroute(t *testing.T) {
	gw, chaoses, urls := newFleet(t, 2)

	// Find a cell owned by shard 0 — deterministic for whatever ports
	// the fleet got.
	var victimCell apitypes.CellRef
	found := false
	var req apitypes.SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &req); err != nil {
		t.Fatal(err)
	}
	cells, err := gw.expandSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if gw.ring.Owner(c.key) == urls[0] {
			victimCell, found = c.ref, true
			break
		}
	}
	if !found {
		t.Fatal("shard 0 owns none of the 16-cell grid; ring is degenerate")
	}
	chaoses[0].armSimFail.Store(true)

	body := fmt.Sprintf(`{"workload":%q,"mode":%q}`, victimCell.Workload, victimCell.Mode)
	rec := gwPost(t, gw.Handler(), "/v1/sim", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sim = %d: %s", rec.Code, rec.Body.String())
	}
	var res apitypes.CellResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Rerouted {
		t.Error("result not flagged rerouted")
	}
	if res.Shard != urls[1] {
		t.Errorf("served by %q, want the surviving shard %q", res.Shard, urls[1])
	}
	if res.Stats == nil || res.Stats.Cycles == 0 {
		t.Errorf("rerouted cell came back without stats: %+v", res)
	}

	// With every shard failing, the gateway reports the fleet down.
	chaoses[1].armSimFail.Store(true)
	rec = gwPost(t, gw.Handler(), "/v1/sim", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("sim with all shards failing = %d, want 503", rec.Code)
	}
	var e apitypes.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != apitypes.CodeDraining {
		t.Errorf("code = %q, want draining", e.Error.Code)
	}
}

// TestGatewayStatszAggregation: the aggregate section must equal the
// arithmetic sum of what the shards themselves report.
func TestGatewayStatszAggregation(t *testing.T) {
	gw, _, urls := newFleet(t, 2)
	h := gw.Handler()

	grid := []string{"stream-copy-16MB", "stream-scale-16MB", "stream-add-16MB"}
	for _, wl := range grid {
		rec := gwPost(t, h, "/v1/sim", fmt.Sprintf(`{"workload":%q,"mode":"imt"}`, wl))
		if rec.Code != http.StatusOK {
			t.Fatalf("sim %s = %d: %s", wl, rec.Code, rec.Body.String())
		}
	}

	rec := gwGet(t, h, "/v1/statsz")
	var snap apitypes.GatewaySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gateway == nil {
		t.Fatal("gateway section missing from statsz")
	}
	if snap.Gateway.ShardsTotal != 2 || snap.Gateway.ShardsUp != 2 {
		t.Errorf("shards up/total = %d/%d, want 2/2", snap.Gateway.ShardsUp, snap.Gateway.ShardsTotal)
	}
	if snap.Gateway.Cells != uint64(len(grid)) {
		t.Errorf("gateway cells = %d, want %d", snap.Gateway.Cells, len(grid))
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("breakdown has %d shards, want 2", len(snap.Shards))
	}

	// Independently fetch each shard's statsz and check the sums.
	var wantCells, wantRequests uint64
	for _, url := range urls {
		resp, err := http.Get(url + "/v1/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st apitypes.StatsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantCells += st.Cells
		wantRequests += st.Requests
	}
	if snap.Cells != wantCells {
		t.Errorf("aggregate cells = %d, shard sum = %d", snap.Cells, wantCells)
	}
	if snap.Requests != wantRequests {
		t.Errorf("aggregate requests = %d, shard sum = %d", snap.Requests, wantRequests)
	}
	if wantCells != uint64(len(grid)) {
		t.Errorf("fleet ran %d cells, want %d", wantCells, len(grid))
	}
}

// TestGatewayRejections pins the gateway's own 4xx/503 surface: bad
// bodies, shard-scoped routes, watch requests, and drain mode.
func TestGatewayRejections(t *testing.T) {
	gw, _, _ := newFleet(t, 1)
	h := gw.Handler()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"sim unknown workload", "POST", "/v1/sim", `{"workload":"nope","mode":"imt"}`, 400, "bad_request"},
		{"sim unknown mode", "POST", "/v1/sim", `{"workload":"stream-copy-16MB","mode":"quantum"}`, 400, "bad_request"},
		{"sim watch", "POST", "/v1/sim", `{"workload":"stream-copy-16MB","mode":"imt","watch":true}`, 400, "bad_request"},
		{"sweep watch", "POST", "/v1/sweep", `{"suite":"STREAM","modes":["imt"],"watch":true}`, 400, "bad_request"},
		{"sweep empty", "POST", "/v1/sweep", `{}`, 400, "bad_request"},
		{"sweep unknown field", "POST", "/v1/sweep", `{"suit":"STREAM"}`, 400, "bad_request"},
		{"jobs are shard-scoped", "POST", "/v1/jobs", `{"suite":"STREAM","modes":["imt"]}`, 404, "not_found"},
		{"watch rooms are shard-scoped", "GET", "/v1/watch/abc", "", 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			var e apitypes.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-envelope error body %q: %v", rec.Body.String(), err)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Error.Code, tc.wantCode)
			}
		})
	}

	gw.SetDraining(true)
	rec := gwPost(t, h, "/v1/sim", `{"workload":"stream-copy-16MB","mode":"imt"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining sim = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("draining 503 missing Retry-After")
	}
}

// TestGatewayExplicitCells: a sweep of explicit cells (the shape the
// gateway itself sends to shards) round-trips through a gateway too —
// gateways can be chained or pointed at each other's API shape.
func TestGatewayExplicitCells(t *testing.T) {
	gw, _, _ := newFleet(t, 2)
	body := `{"cells":[{"workload":"stream-copy-16MB","mode":"imt"},{"workload":"stream-copy-16MB","mode":"none"}]}`
	rec := gwPost(t, gw.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
	}
	cells, summary := parseSweep(t, rec.Body)
	if len(cells) != 2 || summary.Cells != 2 || summary.Failed != 0 {
		t.Fatalf("got %d cells, summary %+v, want 2 clean cells", len(cells), summary)
	}
}
