package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a fleet of shard base URLs. The
// hash key is the cell's runner cache key, so a cell always lands on
// the shard whose on-disk result cache already holds it — cache
// affinity falls out of routing, no shard-local state required.
//
// Each shard owns Replicas virtual points on a 64-bit ring; a key is
// owned by the first point at or clockwise after the key's hash.
// Because points are a pure function of the shard URL, two gateways
// configured with the same fleet route identically, and adding or
// removing one shard moves only the keys that shard owned (plus the
// 1/N share the new shard takes) — the minimal-movement property the
// ring_test pins.
type Ring struct {
	shards []string
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// DefaultReplicas is the virtual-node count per shard: enough to keep
// the ownership split within a few percent of uniform for small
// fleets, cheap enough that ring construction is microseconds.
const DefaultReplicas = 128

// NewRing builds a ring over shards (base URLs; order does not matter,
// duplicates are an error) with replicas virtual points per shard
// (0 = DefaultReplicas).
func NewRing(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sorted[i])
		}
	}
	r := &Ring{
		shards: sorted,
		points: make([]ringPoint, 0, len(sorted)*replicas),
	}
	for si, shard := range r.shards {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", shard, v)),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties break on shard index so construction order can
		// never influence ownership.
		return a.shard < b.shard
	})
	return r, nil
}

// Shards returns the fleet in canonical (sorted) order.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Owner returns the shard owning key.
func (r *Ring) Owner(key string) string {
	return r.Order(key)[0]
}

// Order returns every shard exactly once, in the key's ring preference
// order: the owner first, then each next distinct shard walking
// clockwise. A gateway retries a failed cell on Order(key)[1], then
// [2], … — deterministic, and biased toward the same fallback shard
// for the same key so even rerouted cells retain cache affinity.
func (r *Ring) Order(key string) []string {
	start := r.search(hash64(key))
	order := make([]string, 0, len(r.shards))
	seen := make([]bool, len(r.shards))
	for i := 0; i < len(r.points) && len(order) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			order = append(order, r.shards[p.shard])
		}
	}
	return order
}

// search finds the first point at or clockwise after h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a with a splitmix64 finalizer. Raw FNV-1a of short,
// near-identical strings (vnode labels differ only in a digit or two)
// lands clustered on the ring badly enough to starve shards; the
// finalizer's avalanche restores a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
