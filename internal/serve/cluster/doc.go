// Package cluster is the multi-node layer of the serving stack: a
// stateless imtgw gateway that shards work across a fleet of imtd
// servers.
//
// # Routing
//
// Every cell has a content-addressed cache key (runner.CacheKeyFor):
// the hash of the simulated machine, the workload's parameters, and
// the tagging configuration. The gateway consistent-hashes that key
// onto a ring of virtual nodes (Ring), so
//
//   - a cell always routes to the shard whose on-disk result cache
//     already holds it — cache affinity with zero shard-local state;
//   - two gateways configured with the same fleet route identically,
//     so gateways scale horizontally behind a dumb TCP balancer;
//   - growing the fleet from N to N+1 shards moves only ~1/(N+1) of
//     the keys (the share the new shard takes over).
//
// # Scatter and merge
//
// A sweep is expanded to its cell grid locally (the gateway embeds the
// same workload catalog as the shards), grouped by owning shard, and
// scattered as one POST /v1/sweep per shard carrying an explicit cell
// list (SweepRequest.Cells — a shard's subset of a grid is never a
// clean workloads × modes product). The per-shard NDJSON streams are
// merged in completion order into a single client stream, ending in
// one done:true summary. The merge deduplicates by cell identity, so
// the client sees every cell exactly once regardless of shard
// failures.
//
// # Failure handling
//
// Each shard has a circuit breaker (closed → open on any failure;
// open → half-open on a probe success; half-open → closed on a second
// success) driven by both request outcomes and a background /v1/healthz
// prober. Transport failures and shard drains reroute the affected
// cells to the next shard in the key's ring order; semantic failures
// (4xx, 500, 504) never reroute — cells are deterministic, so another
// shard would answer identically, and a 4xx must never be retried.
// Rerouted cells arrive flagged rerouted:true with their serving
// shard in shard:, and the summary counts them.
//
// Jobs and telemetry rooms are shard-scoped resources (a WAL and an
// in-memory broadcast live on exactly one shard); the gateway answers
// their routes with 404 and a hint to address a shard directly.
//
// See OPERATIONS.md at the repository root for the operator's
// handbook: topologies, flag reference, failure modes, and drain
// ordering.
package cluster
