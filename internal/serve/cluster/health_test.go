package cluster

import (
	"testing"

	"repro/internal/serve/apitypes"
)

// TestBreakerLifecycle pins the state machine: closed → open on any
// failure, open → half-open on a probe success, half-open → closed on
// the second consecutive probe success, reopened by any failure.
func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker()
	if got := b.State(); got != apitypes.BreakerClosed {
		t.Fatalf("new breaker state = %q, want closed", got)
	}
	if !b.routable() {
		t.Fatal("closed breaker must be routable")
	}

	if !b.onFailure() {
		t.Fatal("first failure must report a transition")
	}
	if got := b.State(); got != apitypes.BreakerOpen {
		t.Fatalf("after failure state = %q, want open", got)
	}
	if b.routable() {
		t.Fatal("open breaker must not be routable")
	}
	if b.onFailure() {
		t.Fatal("failure on an open breaker must not report a second transition")
	}

	b.onSuccess(true)
	if got := b.State(); got != apitypes.BreakerHalfOpen {
		t.Fatalf("after one probe success state = %q, want half-open", got)
	}
	if !b.routable() {
		t.Fatal("half-open breaker must be routable (that is the point)")
	}

	b.onSuccess(true)
	if got := b.State(); got != apitypes.BreakerClosed {
		t.Fatalf("after two probe successes state = %q, want closed", got)
	}
}

// TestBreakerRequestSuccessClosesHalfOpen: a real routed request
// succeeding is at least as strong a signal as a probe — one is enough
// to close a half-open breaker.
func TestBreakerRequestSuccessClosesHalfOpen(t *testing.T) {
	b := newBreaker()
	b.onFailure()
	b.onSuccess(true) // probe: open → half-open
	b.onSuccess(false)
	if got := b.State(); got != apitypes.BreakerClosed {
		t.Fatalf("request success on half-open: state = %q, want closed", got)
	}
}

// TestBreakerFailureReopensHalfOpen: a half-open breaker is a trial
// balloon; any failure pops it straight back to open.
func TestBreakerFailureReopensHalfOpen(t *testing.T) {
	b := newBreaker()
	b.onFailure()
	b.onSuccess(true)
	if !b.onFailure() {
		t.Fatal("half-open → open must report a transition")
	}
	if got := b.State(); got != apitypes.BreakerOpen {
		t.Fatalf("state = %q, want open", got)
	}
	// And the walk out must start over: one probe success is half-open
	// again, not closed.
	b.onSuccess(true)
	if got := b.State(); got != apitypes.BreakerHalfOpen {
		t.Fatalf("state = %q, want half-open", got)
	}
}
