package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cachekey-%04d", i)
	}
	return keys
}

func mustRing(t *testing.T, shards []string) *Ring {
	t.Helper()
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingDeterminism: ownership is a pure function of the fleet set —
// configuration order must not matter, or two imtgw processes fronting
// the same fleet would route the same cell to different shards and
// destroy cache affinity.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, []string{"http://s1", "http://s2", "http://s3", "http://s4"})
	b := mustRing(t, []string{"http://s3", "http://s1", "http://s4", "http://s2"})
	for _, key := range testKeys(500) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("owner(%q) differs across configuration orders: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingOrder: Order must be a permutation of the fleet starting at
// the owner — it is the gateway's reroute preference list, so a missing
// or duplicated shard would strand or double-route cells.
func TestRingOrder(t *testing.T) {
	shards := []string{"http://s1", "http://s2", "http://s3"}
	r := mustRing(t, shards)
	for _, key := range testKeys(100) {
		order := r.Order(key)
		if len(order) != len(shards) {
			t.Fatalf("order(%q) = %v, want %d distinct shards", key, order, len(shards))
		}
		seen := map[string]bool{}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("order(%q) repeats %q: %v", key, s, order)
			}
			seen[s] = true
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("order(%q)[0] = %q, owner = %q", key, order[0], r.Owner(key))
		}
	}
}

// TestRingMinimalMovement: growing the fleet N→N+1 may move keys only
// onto the new shard; any key hopping between two surviving shards is
// a consistent-hashing bug (it would invalidate both shards' caches).
func TestRingMinimalMovement(t *testing.T) {
	old := []string{"http://s1", "http://s2", "http://s3", "http://s4"}
	grown := append(append([]string(nil), old...), "http://s5")
	rOld, rNew := mustRing(t, old), mustRing(t, grown)
	keys := testKeys(2000)
	moved := 0
	for _, key := range keys {
		was, is := rOld.Owner(key), rNew.Owner(key)
		if was == is {
			continue
		}
		moved++
		if is != "http://s5" {
			t.Fatalf("key %q moved %q → %q, not to the new shard", key, was, is)
		}
	}
	// The new shard takes ~1/5 of the keyspace; allow a wide band.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("moved %d/%d keys to the new shard, want ~1/5", moved, len(keys))
	}
}

// TestRingBalance: virtual nodes must keep the ownership split roughly
// uniform — a starved shard wastes capacity, an overloaded one becomes
// the sweep's straggler.
func TestRingBalance(t *testing.T) {
	shards := []string{"http://s1", "http://s2", "http://s3", "http://s4"}
	r := mustRing(t, shards)
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, s := range shards {
		frac := float64(counts[s]) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %s owns %.1f%% of keys, outside [10%%, 45%%] (counts %v)", s, 100*frac, counts)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty fleet must be rejected")
	}
	if _, err := NewRing([]string{"http://s1", "http://s1"}, 0); err == nil {
		t.Error("duplicate shard must be rejected")
	}
}
