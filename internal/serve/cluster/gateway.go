package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/apitypes"
	"repro/internal/serve/client"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Options configures a Gateway.
type Options struct {
	// Shards is the fleet of imtd base URLs (e.g.
	// "http://127.0.0.1:8866"). At least one is required.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring
	// (0 = DefaultReplicas).
	Replicas int
	// ProbeInterval is the background health-probe period (0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /v1/healthz probe (0 = 2s).
	ProbeTimeout time.Duration
	// DefaultTimeout applies to /v1/sim requests without timeout_ms
	// (0 = 30s); MaxTimeout clamps per-request deadlines and bounds
	// whole sweeps (0 = 5m). They should match the shards' settings:
	// the gateway's deadline is the outer bound, the shard's the inner.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSweepCells caps the gateway-side grid expansion (0 = 4096).
	MaxSweepCells int
	// StatszTimeout bounds each shard's statsz fetch during aggregation
	// (0 = 2s).
	StatszTimeout time.Duration
	// Debug mounts the obs debug mux on the handler.
	Debug bool
	// Obs receives gateway telemetry (nil = a fresh hub).
	Obs *obs.Hub
	// Config is the simulated machine the shards run (zero NumSMs =
	// gpusim.DefaultConfig). It must match the fleet's config: cache
	// keys — and therefore routing — are computed from it.
	Config gpusim.Config
	// Pool supplies per-shard clients (nil = a fresh Pool). Tests
	// inject one to tune retry policy.
	Pool *client.Pool
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 4096
	}
	if o.StatszTimeout <= 0 {
		o.StatszTimeout = 2 * time.Second
	}
	if o.Obs == nil {
		o.Obs = obs.NewHub()
	}
	if o.Config.NumSMs == 0 {
		o.Config = gpusim.DefaultConfig()
	}
	if o.Pool == nil {
		o.Pool = client.NewPool()
	}
	return o
}

// Gateway is a stateless sharding front for a fleet of imtd shards: it
// consistent-hashes cells across the fleet on their runner cache keys,
// scatters sweep grids as per-shard POST /v1/sweep cell lists, merges
// the shards' NDJSON streams in completion order into one client
// stream, and reroutes cells off shards that fail mid-flight. Construct
// with New, mount Handler, stop with Close.
type Gateway struct {
	opts     Options
	hub      *obs.Hub
	ring     *Ring
	pool     *client.Pool
	shards   []*shardState
	byURL    map[string]*shardState
	byName   map[string]workload.Workload
	draining atomic.Bool
	started  time.Time
	manifest obs.Manifest

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once

	mRequests      *obs.Counter
	mCells         *obs.Counter
	mTracePushes   *obs.Counter
	mRerouted      *obs.Counter
	mShardErrors   *obs.Counter
	mBreakerOpens  *obs.Counter
	mProbes        *obs.Counter
	mProbeFailures *obs.Counter
	mShardsUp      *obs.Gauge
	mLatency       *obs.HistogramVec
}

// New builds a gateway over opts.Shards and starts its background
// health prober (one immediate synchronous round, so routing state is
// populated before the first request).
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Shards, opts.Replicas)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:      opts,
		hub:       opts.Obs,
		ring:      ring,
		pool:      opts.Pool,
		byURL:     make(map[string]*shardState),
		byName:    make(map[string]workload.Workload),
		started:   time.Now(),
		stopProbe: make(chan struct{}),
	}
	for _, w := range workload.Catalog() {
		g.byName[w.Name] = w
	}
	for _, url := range ring.Shards() {
		ss := &shardState{url: url, br: newBreaker()}
		g.shards = append(g.shards, ss)
		g.byURL[url] = ss
	}
	if reg := g.hub.Metrics; reg != nil {
		g.mRequests = reg.Counter("serve_gw_requests_total", "API requests received by the gateway")
		g.mCells = reg.Counter("serve_gw_cells_total", "cells delivered to clients through the gateway")
		g.mTracePushes = reg.Counter("serve_gw_trace_pushes_total", "trace blobs pushed shard-to-shard after a trace_not_found miss")
		g.mRerouted = reg.Counter("serve_gw_rerouted_total", "cells rerouted to another shard after a shard failure")
		g.mShardErrors = reg.Counter("serve_gw_shard_errors_total", "shard request/stream failures observed by the gateway")
		g.mBreakerOpens = reg.Counter("serve_gw_breaker_opens_total", "shard breaker transitions to open")
		g.mProbes = reg.Counter("serve_gw_probes_total", "shard health probes sent")
		g.mProbeFailures = reg.Counter("serve_gw_probe_failures_total", "shard health probes that failed")
		g.mShardsUp = reg.Gauge("serve_gw_shards_up", "shards currently routable (breaker not open)")
		g.mLatency = reg.HistogramVec("serve_gw_request_seconds", "route", "gateway end-to-end request latency by route", obs.DurationBuckets)
	}
	g.manifest = obs.NewManifest("imtgw", struct {
		Shards   []string
		Replicas int
	}{ring.Shards(), opts.Replicas})
	g.probeAll(context.Background())
	g.probeWG.Add(1)
	go g.prober()
	return g, nil
}

// Hub returns the gateway's observability hub.
func (g *Gateway) Hub() *obs.Hub { return g.hub }

// Ring returns the gateway's hash ring (read-only).
func (g *Gateway) Ring() *Ring { return g.ring }

// SetDraining flips the gateway into (or out of) drain mode: new work
// is refused with 503 + Retry-After while in-flight streams complete.
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// Close stops the background prober and drops idle shard connections.
// Idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.stopProbe)
		g.probeWG.Wait()
		g.pool.CloseIdle()
	})
}

// Handler returns the gateway's HTTP handler:
//
//	POST /v1/sim        route one cell to its shard (reroute on failure)
//	POST /v1/sweep      scatter the grid, merge shard NDJSON streams
//	POST /v1/traces     stream the blob to the first routable shard
//	GET  /v1/traces     digest-deduplicated union across the fleet
//	GET  /v1/traces/{d} stat (or ?raw=1 stream) from whichever shard holds it
//	DELETE /v1/traces/{d} fan-out delete (409 if any shard holds it in use)
//	GET  /v1/workloads  catalog listing (served locally; same binary)
//	GET  /v1/statsz     GatewaySnapshot: aggregate + per-shard breakdown
//	GET  /v1/healthz    200 while ≥1 shard is routable and not draining
//
// plus the obs debug mux when Options.Debug is set. Jobs and telemetry
// rooms are shard-scoped resources (a WAL and a broadcast live on one
// shard); their routes answer 404 with a hint to address a shard
// directly.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", g.handleSim)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("POST /v1/traces", g.handleTraceUpload)
	mux.HandleFunc("GET /v1/traces", g.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{digest}", g.handleTraceGet)
	mux.HandleFunc("DELETE /v1/traces/{digest}", g.handleTraceDelete)
	mux.HandleFunc("GET /v1/workloads", g.handleWorkloads)
	mux.HandleFunc("GET /v1/statsz", g.handleStatsz)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("/v1/jobs", g.handleShardScoped)
	mux.HandleFunc("/v1/jobs/", g.handleShardScoped)
	mux.HandleFunc("/v1/watch/", g.handleShardScoped)
	if g.opts.Debug {
		dbg := obs.DebugMux(g.hub.Metrics)
		mux.Handle("/debug/", dbg)
		mux.Handle("GET /metrics", dbg)
		mux.Handle("GET /metrics.json", dbg)
	}
	return mux
}

// gwCell is one routed cell: its wire identity plus the runner cache
// key it hashes to the ring with. digest is set for trace-backed cells
// ("trace:<digest>" workloads), enabling the push-on-miss fallback.
type gwCell struct {
	ref    apitypes.CellRef
	key    string
	digest string
}

// resolveCell validates one cell against the local catalog and mode
// table and computes its cache key — the identical bytes every shard
// hashes, so gateway routing and shard caching can never disagree. A
// trace:<digest> cell is keyed by its trace identity alone (the
// gateway never holds the blob): runner.CacheKeyFor computes the same
// key from Job.Key that a shard computes with the replay attached, so
// trace cells route to the shard whose cache (and trace store) already
// holds them.
func (g *Gateway) resolveCell(name, mode string, maxCycles, sampleInterval uint64) (gwCell, error) {
	tm, carve, err := gpusim.ParseTagMode(mode)
	if err != nil {
		return gwCell{}, err
	}
	cfg := g.opts.Config
	cfg.SampleInterval = sampleInterval
	job := runner.Job{
		Mode:      tm,
		Carve:     carve,
		MaxCycles: maxCycles,
	}
	cell := gwCell{ref: apitypes.CellRef{Workload: name, Mode: mode}}
	if digest, ok := strings.CutPrefix(name, "trace:"); ok {
		if !tracestore.ValidDigest(digest) {
			return gwCell{}, fmt.Errorf("cluster: malformed trace workload %q (want trace:<64 lowercase hex sha-256>)", name)
		}
		cell.digest = digest
		job.Key = name
	} else {
		w, ok := g.byName[name]
		if !ok {
			return gwCell{}, fmt.Errorf("cluster: unknown workload %q (GET /v1/workloads lists the catalog)", name)
		}
		job.Workload = w
	}
	cell.key, _ = runner.CacheKeyFor(cfg, job)
	return cell, nil
}

// expandSweep mirrors the shard-side grid expansion ((workloads ∪
// suite) × modes plus explicit cells, deduplicated) so the gateway
// can scatter exactly the cells a single shard would have run.
func (g *Gateway) expandSweep(req apitypes.SweepRequest) ([]gwCell, error) {
	var names []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, name := range req.Workloads {
		if _, ok := g.byName[name]; !ok && !strings.HasPrefix(name, "trace:") {
			return nil, fmt.Errorf("cluster: unknown workload %q", name)
		}
		add(name)
	}
	if req.Suite != "" {
		suite := workload.BySuite(req.Suite)
		if len(suite) == 0 {
			return nil, fmt.Errorf("cluster: unknown suite %q (valid: %v)", req.Suite, workload.Suites())
		}
		for _, w := range suite {
			add(w.Name)
		}
	}
	if len(names) == 0 && len(req.Cells) == 0 {
		return nil, errors.New("cluster: sweep needs workloads, a suite, and/or explicit cells")
	}
	if len(names) > 0 && len(req.Modes) == 0 {
		return nil, errors.New("cluster: sweep needs at least one mode")
	}
	var cells []gwCell
	inGrid := make(map[apitypes.CellRef]bool)
	appendCell := func(name, mode string) error {
		cell, err := g.resolveCell(name, mode, req.MaxCycles, req.SampleInterval)
		if err != nil {
			return err
		}
		if !inGrid[cell.ref] {
			inGrid[cell.ref] = true
			cells = append(cells, cell)
		}
		return nil
	}
	for _, name := range names {
		for _, mode := range req.Modes {
			if err := appendCell(name, mode); err != nil {
				return nil, err
			}
		}
	}
	for _, ref := range req.Cells {
		if err := appendCell(ref.Workload, ref.Mode); err != nil {
			return nil, err
		}
	}
	if len(cells) > g.opts.MaxSweepCells {
		return nil, fmt.Errorf("cluster: sweep expands to %d cells, gateway cap is %d", len(cells), g.opts.MaxSweepCells)
	}
	return cells, nil
}

// assign groups cells by their first routable shard in ring order.
// Cells with no routable shard at all land in the second return value.
func (g *Gateway) assign(cells []gwCell) (map[string][]gwCell, []gwCell) {
	groups := make(map[string][]gwCell)
	var unroutable []gwCell
	for _, c := range cells {
		placed := false
		for _, url := range g.ring.Order(c.key) {
			if g.byURL[url].br.routable() {
				groups[url] = append(groups[url], c)
				placed = true
				break
			}
		}
		if !placed {
			unroutable = append(unroutable, c)
		}
	}
	return groups, unroutable
}

func (g *Gateway) handleSim(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "sim")
	if g.rejectDraining(w) {
		return
	}
	req, err := decodeRequest[apitypes.SimRequest](r)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	if req.Watch {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest,
			errors.New("cluster: watch rooms are shard-scoped; submit the watched request to a shard directly"))
		return
	}
	cell, err := g.resolveCell(req.Workload, req.Mode, req.MaxCycles, req.SampleInterval)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	ctx, cancel := g.requestContext(r.Context(), req.TimeoutMs, g.opts.DefaultTimeout)
	defer cancel()

	hops := 0
	ensured := false
	order := g.ring.Order(cell.key)
	for i := 0; i < len(order); i++ {
		url := order[i]
		ss := g.byURL[url]
		if !ss.br.routable() {
			continue
		}
		res, err := g.pool.For(url).Sim(ctx, req)
		if err == nil {
			ss.br.onSuccess(false)
			res.Shard = url
			res.Rerouted = hops > 0
			if hops > 0 {
				g.countN(g.mRerouted, 1)
			}
			g.count(g.mCells)
			writeJSON(w, http.StatusOK, res)
			return
		}
		if cell.digest != "" && !ensured && errors.Is(err, client.ErrTraceNotFound) {
			// The ring-preferred shard does not hold the blob (evicted,
			// fresh shard, or the trace was uploaded elsewhere). Push it
			// from whichever shard has it and retry the same shard once.
			if pushErr := g.ensureTrace(ctx, url, cell.digest); pushErr == nil {
				ensured = true
				i--
				continue
			}
			// No shard holds the blob: the shard's 404 stands — the
			// client must re-upload.
		}
		if !reroutable(err) {
			// Semantic failure (4xx, 504, 500): the shard answered; its
			// verdict stands. Cells are deterministic, so another shard
			// would fail identically — and a 4xx must never be retried.
			g.writeShardError(w, err)
			return
		}
		g.shardFailed(ss)
		ss.rerouted.Add(1)
		hops++
	}
	// Every shard is open or failed this request.
	g.writeError(w, http.StatusServiceUnavailable, apitypes.CodeDraining,
		errors.New("cluster: no healthy shard available"))
}

// reroutable: transport failures and shard drains move a cell to
// another shard; anything the shard actually answered (including 429
// after the per-shard client exhausted its backpressure retries) does
// not — never retry a 4xx on another shard. Context expiry is the
// caller's budget, not the shard's failure.
func reroutable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return errors.Is(apiErr, client.ErrDraining)
	}
	return true // transport error: refused, reset, shard died mid-body
}

// shardFailed records a request-path failure on ss: breaker opens,
// counters bump.
func (g *Gateway) shardFailed(ss *shardState) {
	g.count(g.mShardErrors)
	if ss.br.onFailure() {
		g.count(g.mBreakerOpens)
	}
	g.gaugeShardsUp()
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "sweep")
	if g.rejectDraining(w) {
		return
	}
	req, err := decodeRequest[apitypes.SweepRequest](r)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	if req.Watch {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest,
			errors.New("cluster: watch rooms are shard-scoped; submit the watched sweep to a shard directly"))
		return
	}
	cells, err := g.expandSweep(req)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	ctx, cancel := g.requestContext(r.Context(), req.TimeoutMs, g.opts.MaxTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Scatter: one NDJSON sweep stream per shard carrying exactly that
	// shard's cells; merge in completion order. A failed stream's
	// undelivered cells are reassigned to the surviving shards (their
	// lines arrive flagged rerouted); the merge loop deduplicates by
	// cell identity so a client sees every cell exactly once no matter
	// how many times a shard died mid-flight.
	lines := make(chan apitypes.CellResult, 64)
	var wg sync.WaitGroup
	groups, unroutable := g.assign(cells)
	for url, group := range groups {
		wg.Add(1)
		go g.sweepShard(ctx, &wg, lines, url, group, req, 0, false)
	}
	if len(unroutable) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.failCells(lines, unroutable, 0)
		}()
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	summary := apitypes.SweepSummary{Cells: len(cells)}
	delivered := make(map[apitypes.CellRef]bool, len(cells))
	shardsSeen := make(map[string]bool)
	clientGone := false
	for res := range lines {
		ref := apitypes.CellRef{Workload: res.Workload, Mode: res.Mode}
		if delivered[ref] {
			continue
		}
		delivered[ref] = true
		if res.Error != "" {
			summary.Failed++
		} else {
			g.count(g.mCells)
		}
		if res.Cached {
			summary.Cached++
		}
		if res.Coalesced {
			summary.Coalesced++
		}
		if res.Rerouted {
			summary.Rerouted++
			g.countN(g.mRerouted, 1)
		}
		if res.Shard != "" {
			shardsSeen[res.Shard] = true
		}
		if clientGone {
			continue
		}
		if err := enc.Encode(res); err != nil {
			// The client hung up; drain the workers and stop writing.
			clientGone = true
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.Done = true
	summary.Shards = len(shardsSeen)
	summary.ElapsedMs = float64(time.Since(t0)) / float64(time.Millisecond)
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// sweepShard streams one shard's share of a sweep, forwarding each
// line annotated with the shard and reroute status. When the stream
// fails, the undelivered remainder is reassigned across the surviving
// fleet and streamed by freshly spawned workers; after maxHops (one
// per shard) the remainder is reported failed instead, bounding the
// reroute cascade even if breakers heal mid-sweep. A trace_not_found
// verdict gets one push-and-retry on the same shard (ensured bounds
// it): the gateway copies the missing blobs over from whichever shard
// holds them, then resubmits the same cell list.
func (g *Gateway) sweepShard(ctx context.Context, wg *sync.WaitGroup, lines chan<- apitypes.CellResult, url string, cells []gwCell, req apitypes.SweepRequest, hops int, ensured bool) {
	defer wg.Done()
	shardReq := apitypes.SweepRequest{
		Cells:          refsOf(cells),
		MaxCycles:      req.MaxCycles,
		SampleInterval: req.SampleInterval,
		TimeoutMs:      req.TimeoutMs,
	}
	seen := make(map[apitypes.CellRef]bool, len(cells))
	ss := g.byURL[url]
	_, err := g.pool.Raw(url).Sweep(ctx, shardReq, func(res apitypes.CellResult) error {
		res.Shard = url
		res.Rerouted = hops > 0
		seen[apitypes.CellRef{Workload: res.Workload, Mode: res.Mode}] = true
		select {
		case lines <- res:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	})
	if err == nil {
		ss.br.onSuccess(false)
		return
	}
	if ctx.Err() != nil {
		// The sweep's own deadline expired; report the remainder as
		// timed out rather than rerouting against a spent budget.
		g.failCellsErr(lines, remainder(cells, seen), hops+1, "cluster: sweep deadline exceeded")
		return
	}
	remaining := remainder(cells, seen)
	if !ensured && errors.Is(err, client.ErrTraceNotFound) {
		// The shard rejected the whole cell list because a trace blob is
		// missing there. Push every trace the group references, then
		// retry the same shard exactly once.
		pushed := true
		for _, digest := range traceDigests(remaining) {
			if pushErr := g.ensureTrace(ctx, url, digest); pushErr != nil {
				pushed = false
				break
			}
		}
		if pushed {
			wg.Add(1)
			go g.sweepShard(ctx, wg, lines, url, remaining, req, hops, true)
			return
		}
	}
	if !reroutable(err) {
		// The shard answered with a semantic failure (e.g. it rejected
		// the cell list). Surfacing it per cell keeps the merge exact.
		g.failCellsErr(lines, remaining, hops, fmt.Sprintf("cluster: shard %s: %v", url, err))
		return
	}
	g.shardFailed(ss)
	ss.rerouted.Add(uint64(len(remaining)))
	if hops+1 >= len(g.shards) {
		g.failCellsErr(lines, remaining, hops+1, fmt.Sprintf("cluster: shard %s: %v (reroute budget exhausted)", url, err))
		return
	}
	groups, unroutable := g.assign(remaining)
	for nextURL, group := range groups {
		wg.Add(1)
		// ensured resets: the replacement shard may be missing the blob
		// too, and deserves its own push-and-retry.
		go g.sweepShard(ctx, wg, lines, nextURL, group, req, hops+1, false)
	}
	g.failCells(lines, unroutable, hops+1)
}

// traceDigests returns the distinct trace digests the cells reference,
// in first-appearance order.
func traceDigests(cells []gwCell) []string {
	var out []string
	seen := make(map[string]bool)
	for _, c := range cells {
		if c.digest != "" && !seen[c.digest] {
			seen[c.digest] = true
			out = append(out, c.digest)
		}
	}
	return out
}

// failCells reports cells that could not be placed on any shard.
func (g *Gateway) failCells(lines chan<- apitypes.CellResult, cells []gwCell, hops int) {
	g.failCellsErr(lines, cells, hops, "cluster: no healthy shard available")
}

func (g *Gateway) failCellsErr(lines chan<- apitypes.CellResult, cells []gwCell, hops int, msg string) {
	for _, c := range cells {
		lines <- apitypes.CellResult{
			Workload: c.ref.Workload,
			Mode:     c.ref.Mode,
			Error:    msg,
			Rerouted: hops > 0,
		}
	}
}

func refsOf(cells []gwCell) []apitypes.CellRef {
	refs := make([]apitypes.CellRef, len(cells))
	for i, c := range cells {
		refs[i] = c.ref
	}
	return refs
}

func remainder(cells []gwCell, seen map[apitypes.CellRef]bool) []gwCell {
	var rest []gwCell
	for _, c := range cells {
		if !seen[c.ref] {
			rest = append(rest, c)
		}
	}
	return rest
}

func (g *Gateway) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	cat := workload.Catalog()
	resp := apitypes.CatalogResponse{
		Workloads: make([]apitypes.WorkloadInfo, 0, len(cat)),
		Suites:    workload.Suites(),
		Modes:     gpusim.TagModeNames(),
	}
	for _, wl := range cat {
		resp.Workloads = append(resp.Workloads, apitypes.WorkloadInfo{
			Name:           wl.Name,
			Suite:          wl.Suite,
			Pattern:        wl.Pattern.String(),
			FootprintBytes: wl.FootprintBytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// Stats assembles the gateway snapshot: every shard's /v1/statsz
// fetched concurrently (bounded by StatszTimeout each), summed into
// the aggregate, with the per-shard breakdown carrying breaker states
// and reroute counts. Unreachable shards stay in the breakdown with an
// error and are excluded from the aggregate.
func (g *Gateway) Stats(ctx context.Context) apitypes.GatewaySnapshot {
	up := time.Since(g.started)
	snap := apitypes.GatewaySnapshot{
		StatsSnapshot: apitypes.StatsSnapshot{
			Draining:      g.draining.Load(),
			UptimeMs:      float64(up) / float64(time.Millisecond),
			UptimeSeconds: up.Seconds(),
			ConfigHash:    g.manifest.ConfigHash,
			GoVersion:     g.manifest.GoVersion,
			VCSRevision:   g.manifest.VCSRevision,
			VCSModified:   g.manifest.VCSModified,
		},
		Shards: make([]apitypes.ShardSnapshot, len(g.shards)),
	}
	var wg sync.WaitGroup
	for i, ss := range g.shards {
		wg.Add(1)
		go func(i int, ss *shardState) {
			defer wg.Done()
			row := apitypes.ShardSnapshot{
				Shard:    ss.url,
				Breaker:  ss.br.State(),
				Rerouted: ss.rerouted.Load(),
			}
			sctx, cancel := context.WithTimeout(ctx, g.opts.StatszTimeout)
			defer cancel()
			st, err := g.pool.Raw(ss.url).Stats(sctx)
			if err != nil {
				row.Error = err.Error()
			} else {
				row.Stats = &st
			}
			snap.Shards[i] = row
		}(i, ss)
	}
	wg.Wait()
	gw := apitypes.GatewayStats{ShardsTotal: len(g.shards)}
	for _, row := range snap.Shards {
		if row.Breaker != apitypes.BreakerOpen {
			gw.ShardsUp++
		}
		if row.Stats == nil {
			continue
		}
		st := row.Stats
		snap.Requests += st.Requests
		snap.Cells += st.Cells
		snap.CacheHits += st.CacheHits
		snap.CoalesceHits += st.CoalesceHits
		snap.Rejected += st.Rejected
		snap.Timeouts += st.Timeouts
		snap.Errors += st.Errors
		snap.Inflight += st.Inflight
		snap.QueueDepth += st.QueueDepth
		if st.Traces != nil {
			if snap.Traces == nil {
				snap.Traces = &apitypes.TraceStoreStats{}
			}
			snap.Traces.Blobs += st.Traces.Blobs
			snap.Traces.Bytes += st.Traces.Bytes
			snap.Traces.QuotaBytes += st.Traces.QuotaBytes
			snap.Traces.Puts += st.Traces.Puts
			snap.Traces.PutHits += st.Traces.PutHits
			snap.Traces.Rejected += st.Traces.Rejected
			snap.Traces.Evictions += st.Traces.Evictions
			snap.Traces.Deletes += st.Traces.Deletes
		}
	}
	if g.mRequests != nil {
		gw.Requests = g.mRequests.Value()
		gw.Cells = g.mCells.Value()
		gw.Rerouted = g.mRerouted.Value()
		gw.ShardErrors = g.mShardErrors.Value()
		gw.BreakerOpens = g.mBreakerOpens.Value()
	}
	snap.Gateway = &gw
	return snap
}

func (g *Gateway) handleStatsz(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "statsz")
	writeJSON(w, http.StatusOK, g.Stats(r.Context()))
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	routable := 0
	for _, ss := range g.shards {
		if ss.br.routable() {
			routable++
		}
	}
	if g.draining.Load() || routable == 0 {
		status := "draining"
		if routable == 0 {
			status = "no healthy shards"
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": status, "shards_up": routable})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards_up": routable})
}

func (g *Gateway) handleShardScoped(w http.ResponseWriter, _ *http.Request) {
	g.writeError(w, http.StatusNotFound, apitypes.CodeNotFound,
		errors.New("cluster: jobs and watch rooms are shard-scoped; address an imtd shard directly"))
}

// Manifest pins this gateway run: fleet identity plus current routing
// counters and the metrics snapshot. Call at drain time.
func (g *Gateway) Manifest() obs.Manifest {
	m := g.manifest
	m.WallSeconds = time.Since(g.started).Seconds()
	if g.mRequests != nil {
		m.Counters = map[string]uint64{
			"requests":      g.mRequests.Value(),
			"cells":         g.mCells.Value(),
			"rerouted":      g.mRerouted.Value(),
			"shard_errors":  g.mShardErrors.Value(),
			"breaker_opens": g.mBreakerOpens.Value(),
		}
	}
	if g.hub.Metrics != nil {
		snap := g.hub.Metrics.Snapshot()
		m.Metrics = &snap
	}
	return m
}

// retryAfterSeconds mirrors the shard-side backpressure hint.
const retryAfterSeconds = 1

func (g *Gateway) rejectDraining(w http.ResponseWriter) bool {
	if !g.draining.Load() {
		return false
	}
	g.writeError(w, http.StatusServiceUnavailable, apitypes.CodeDraining, errors.New("cluster: draining"))
	return true
}

func (g *Gateway) requestContext(parent context.Context, timeoutMs int64, fallback time.Duration) (context.Context, context.CancelFunc) {
	d := fallback
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > g.opts.MaxTimeout {
		d = g.opts.MaxTimeout
	}
	return context.WithTimeout(parent, d)
}

// writeShardError propagates a shard's own verdict: the APIError's
// status, envelope code and backoff hint pass through unchanged, so a
// client cannot tell a gateway-fronted 429/504 from a direct one.
func (g *Gateway) writeShardError(w http.ResponseWriter, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((apiErr.RetryAfter+time.Second-1)/time.Second)))
		}
		code := apiErr.Code
		if code == "" {
			code = apitypes.CodeInternal
		}
		writeJSON(w, apiErr.StatusCode, apitypes.ErrorResponse{Error: apitypes.ErrorBody{
			Code:         code,
			Message:      apiErr.Message,
			RetryAfterMs: apiErr.RetryAfter.Milliseconds(),
		}})
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		g.writeError(w, http.StatusGatewayTimeout, apitypes.CodeTimeout, err)
		return
	}
	g.writeError(w, http.StatusInternalServerError, apitypes.CodeInternal, err)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code string, err error) {
	body := apitypes.ErrorBody{Code: code, Message: err.Error()}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		body.RetryAfterMs = retryAfterSeconds * 1000
	}
	writeJSON(w, status, apitypes.ErrorResponse{Error: body})
}

func (g *Gateway) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (g *Gateway) countN(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

func (g *Gateway) observeLatency(t0 time.Time, route string) {
	if g.mLatency != nil {
		g.mLatency.With(route).Observe(time.Since(t0).Seconds())
	}
}

// decodeRequest decodes one JSON value with the same hostile-input
// posture as the shard-side decoder: capped read, unknown fields
// rejected, trailing data rejected.
func decodeRequest[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, apitypes.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("cluster: decoding request: %w", err)
	}
	if dec.More() {
		return v, errors.New("cluster: trailing data after request body")
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
