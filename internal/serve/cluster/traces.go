package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve/apitypes"
	"repro/internal/serve/client"
)

// Trace blobs are shard-scoped (each shard has its own -trace-dir), but
// the gateway keeps the single-endpoint illusion: uploads land on the
// first routable shard (deterministic, so re-uploading the same blob
// through the gateway is a content-address hit), reads find whichever
// shard holds the digest, and trace-backed cells that route to a shard
// missing the blob trigger a shard-to-shard push (ensureTrace) instead
// of a client-visible failure.

// handleTraceUpload: POST /v1/traces, streamed through to the first
// routable shard. The body is consumed by the first attempt, so a
// transport failure mid-upload cannot be retried here — the client
// re-sends (its own UploadTraceFile does this).
func (g *Gateway) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "traces")
	if g.rejectDraining(w) {
		return
	}
	for _, ss := range g.shards {
		if !ss.br.routable() {
			continue
		}
		up, err := g.pool.Raw(ss.url).UploadTrace(r.Context(), r.Body)
		if err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) {
				g.writeShardError(w, err)
				return
			}
			g.shardFailed(ss)
			g.writeError(w, http.StatusBadGateway, apitypes.CodeInternal,
				fmt.Errorf("cluster: upload to shard %s failed mid-stream: %v (re-send the upload)", ss.url, err))
			return
		}
		status := http.StatusOK
		if up.Created {
			status = http.StatusCreated
		}
		writeJSON(w, status, up)
		return
	}
	g.writeError(w, http.StatusServiceUnavailable, apitypes.CodeDraining,
		errors.New("cluster: no healthy shard available"))
}

// handleTraceList: GET /v1/traces — the digest-deduplicated union of
// every routable shard's listing. TotalBytes counts each distinct blob
// once; QuotaBytes sums the per-shard quotas (the fleet's capacity).
func (g *Gateway) handleTraceList(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "traces")
	type shardList struct {
		url  string
		resp apitypes.TraceListResponse
		err  error
	}
	rows := make([]shardList, len(g.shards))
	var wg sync.WaitGroup
	for i, ss := range g.shards {
		if !ss.br.routable() {
			rows[i].err = errors.New("unroutable")
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(r.Context(), g.opts.StatszTimeout)
			defer cancel()
			rows[i].url = url
			rows[i].resp, rows[i].err = g.pool.Raw(url).Traces(sctx)
		}(i, ss.url)
	}
	wg.Wait()
	merged := apitypes.TraceListResponse{Traces: []apitypes.TraceInfo{}}
	seen := make(map[string]bool)
	for _, row := range rows {
		if row.err != nil {
			// Shards without -trace-dir answer 404; unreachable shards
			// fail. Either way they hold no traces to merge.
			continue
		}
		merged.QuotaBytes += row.resp.QuotaBytes
		for _, info := range row.resp.Traces {
			if seen[info.Digest] {
				continue
			}
			seen[info.Digest] = true
			merged.Traces = append(merged.Traces, info)
			merged.TotalBytes += info.Bytes
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleTraceGet: GET /v1/traces/{digest} — stat (or with ?raw=1
// stream) the blob from the first shard that holds it.
func (g *Gateway) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "traces")
	digest := r.PathValue("digest")
	url, info, err := g.findTrace(r.Context(), digest)
	if err != nil {
		g.writeShardError(w, err)
		return
	}
	if r.URL.Query().Get("raw") == "" {
		writeJSON(w, http.StatusOK, info)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = g.pool.Raw(url).DownloadTrace(r.Context(), digest, w)
}

// handleTraceDelete: DELETE /v1/traces/{digest}, fanned out to every
// routable shard (the blob may be resident on several after pushes).
// Any shard's in-use refusal wins with 409 — the trace still exists;
// otherwise 200 if at least one shard deleted it, 404 if none held it.
func (g *Gateway) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.count(g.mRequests)
	defer g.observeLatency(t0, "traces")
	digest := r.PathValue("digest")
	var deleted *apitypes.TraceInfo
	var inUseErr error
	for _, ss := range g.shards {
		if !ss.br.routable() {
			continue
		}
		info, err := g.pool.Raw(ss.url).DeleteTrace(r.Context(), digest)
		switch {
		case err == nil:
			deleted = &info
		case errors.Is(err, client.ErrTraceInUse):
			inUseErr = fmt.Errorf("cluster: shard %s: %w", ss.url, err)
		}
	}
	switch {
	case inUseErr != nil:
		g.writeError(w, http.StatusConflict, apitypes.CodeTraceInUse, inUseErr)
	case deleted != nil:
		writeJSON(w, http.StatusOK, *deleted)
	default:
		g.writeError(w, http.StatusNotFound, apitypes.CodeTraceNotFound,
			fmt.Errorf("cluster: trace %s not found on any shard", digest))
	}
}

// findTrace locates the first routable shard holding digest.
func (g *Gateway) findTrace(ctx context.Context, digest string) (string, apitypes.TraceInfo, error) {
	var lastErr error
	for _, ss := range g.shards {
		if !ss.br.routable() {
			continue
		}
		info, err := g.pool.Raw(ss.url).TraceStat(ctx, digest)
		if err == nil {
			return ss.url, info, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = &client.APIError{
			StatusCode: http.StatusServiceUnavailable,
			Code:       apitypes.CodeDraining,
			Message:    "cluster: no healthy shard available",
		}
	}
	return "", apitypes.TraceInfo{}, lastErr
}

// ensureTrace makes digest resident on the target shard, copying the
// blob over from whichever shard holds it (the gateway never spools the
// bytes — a pipe couples the source's download stream to the target's
// upload). Returns nil when the target already holds the blob. The
// upload's returned digest must round-trip exactly: content addressing
// makes corruption in transit a hard failure, not a silent cache entry.
func (g *Gateway) ensureTrace(ctx context.Context, target, digest string) error {
	tc := g.pool.Raw(target)
	if _, err := tc.TraceStat(ctx, digest); err == nil {
		return nil
	} else if !errors.Is(err, client.ErrTraceNotFound) {
		return err
	}
	for _, ss := range g.shards {
		if ss.url == target || !ss.br.routable() {
			continue
		}
		sc := g.pool.Raw(ss.url)
		if _, err := sc.TraceStat(ctx, digest); err != nil {
			continue
		}
		pr, pw := io.Pipe()
		go func() {
			_, err := sc.DownloadTrace(ctx, digest, pw)
			pw.CloseWithError(err)
		}()
		up, err := tc.UploadTrace(ctx, pr)
		pr.Close()
		if err != nil {
			return fmt.Errorf("cluster: pushing trace %.12s… from %s to %s: %w", digest, ss.url, target, err)
		}
		if up.Digest != digest {
			return fmt.Errorf("cluster: trace push digest mismatch: want %s, shard stored %s", digest, up.Digest)
		}
		g.count(g.mTracePushes)
		return nil
	}
	return fmt.Errorf("cluster: trace %.12s… resident on no shard: %w", digest, client.ErrTraceNotFound)
}
