package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gpusim"
	"repro/internal/serve"
	"repro/internal/serve/apitypes"
	"repro/internal/serve/client"
)

// newTraceFleet starts n imtd shards with per-shard trace stores plus a
// gateway over them.
func newTraceFleet(t *testing.T, n int) (*Gateway, []string) {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		s, err := serve.New(serve.Options{Workers: 2, CacheDir: t.TempDir(), TraceDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	gw, err := New(Options{Shards: urls, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw, urls
}

func gwTraceBlob(t *testing.T, seed int) ([]byte, string) {
	t.Helper()
	traces := make([]gpusim.Trace, 2)
	for sm := range traces {
		ops := make([]gpusim.WarpOp, 8)
		for i := range ops {
			ops[i] = gpusim.WarpOp{
				Store:   i%3 == 2,
				Addrs:   []uint64{uint64(0x40000 + seed*8192 + sm*1024 + i*32)},
				Compute: 2,
			}
		}
		traces[sm] = &gpusim.SliceTrace{Ops: ops}
	}
	var buf bytes.Buffer
	if err := gpusim.WriteTracesClone(&buf, traces); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:])
}

// TestGatewayTraceProxy: uploads through the gateway land on a
// deterministic shard (so re-uploads hit), the list is the fleet
// union, stat and raw download find the holder, and delete fans out.
func TestGatewayTraceProxy(t *testing.T) {
	gw, urls := newTraceFleet(t, 2)
	h := gw.Handler()
	blob, digest := gwTraceBlob(t, 1)

	req := httptest.NewRequest(http.MethodPost, "/v1/traces", bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/traces", bytes.NewReader(blob))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-upload through the gateway must content-address hit: %d %s", rec.Code, rec.Body)
	}

	rec = gwGet(t, h, "/v1/traces")
	var list apitypes.TraceListResponse
	mustDecode(t, rec, &list)
	if len(list.Traces) != 1 || list.Traces[0].Digest != digest {
		t.Fatalf("gateway list = %+v", list)
	}

	if rec := gwGet(t, h, "/v1/traces/"+digest); rec.Code != http.StatusOK {
		t.Fatalf("gateway stat: %d %s", rec.Code, rec.Body)
	}
	rec = gwGet(t, h, "/v1/traces/"+digest+"?raw=1")
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), blob) {
		t.Fatalf("gateway raw download: code %d, %d bytes, want %d", rec.Code, rec.Body.Len(), len(blob))
	}

	req = httptest.NewRequest(http.MethodDelete, "/v1/traces/"+digest, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("gateway delete: %d %s", rec.Code, rec.Body)
	}
	for _, url := range urls {
		if _, err := client.New(url).TraceStat(t.Context(), digest); err == nil {
			t.Errorf("shard %s still holds the deleted trace", url)
		}
	}
	if rec := gwGet(t, h, "/v1/traces/"+digest); rec.Code != http.StatusNotFound {
		t.Errorf("stat after fan-out delete: %d", rec.Code)
	}
}

// TestGatewayTracePushOnMiss is the re-upload-on-miss contract: a blob
// resident only on the ring-non-preferred shard is pushed shard-to-
// shard by the gateway when a trace cell routes to the preferred shard,
// and the cell then succeeds there — no client-visible 404.
func TestGatewayTracePushOnMiss(t *testing.T) {
	gw, urls := newTraceFleet(t, 2)
	h := gw.Handler()
	blob, digest := gwTraceBlob(t, 2)

	cell, err := gw.resolveCell("trace:"+digest, "imt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	preferred := gw.ring.Order(cell.key)[0]
	var source string
	for _, url := range urls {
		if url != preferred {
			source = url
		}
	}
	if _, err := client.New(source).UploadTrace(t.Context(), bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"workload":"trace:%s","mode":"imt"}`, digest)
	rec := gwPost(t, h, "/v1/sim", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace sim through gateway: %d %s", rec.Code, rec.Body)
	}
	var res apitypes.CellResult
	mustDecode(t, rec, &res)
	if res.Shard != preferred {
		t.Errorf("cell served by %s, want ring-preferred %s", res.Shard, preferred)
	}
	if got := gw.mTracePushes.Value(); got != 1 {
		t.Errorf("trace pushes = %d, want 1", got)
	}
	if _, err := client.New(preferred).TraceStat(t.Context(), digest); err != nil {
		t.Errorf("preferred shard still missing the blob after push: %v", err)
	}

	// A sweep routed the same way reuses the now-resident blob — no
	// second push — and every cell arrives exactly once.
	sweepBody := fmt.Sprintf(`{"workloads":["trace:%s"],"modes":["none","imt"]}`, digest)
	rec = gwPost(t, h, "/v1/sweep", sweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace sweep: %d %s", rec.Code, rec.Body)
	}
	cells, summary := parseSweep(t, rec.Body)
	if len(cells) != 2 || summary.Failed != 0 {
		t.Fatalf("sweep cells=%d failed=%d: %+v", len(cells), summary.Failed, cells)
	}

	// Unknown digest: no shard holds it, push impossible → the shard's
	// typed 404 passes through.
	ghost := "00" + digest[2:]
	rec = gwPost(t, h, "/v1/sim", fmt.Sprintf(`{"workload":"trace:%s","mode":"imt"}`, ghost))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("ghost digest: %d %s", rec.Code, rec.Body)
	}
	var env apitypes.ErrorResponse
	mustDecode(t, rec, &env)
	if env.Error.Code != apitypes.CodeTraceNotFound {
		t.Errorf("ghost digest code = %q", env.Error.Code)
	}
}

// TestGatewayTraceSweepPushOnMiss drives the sweep-path fallback
// specifically: the whole shard request fails with trace_not_found, the
// gateway pushes the blob, retries the same shard once, and the merged
// stream still delivers every cell exactly once with no errors.
func TestGatewayTraceSweepPushOnMiss(t *testing.T) {
	gw, urls := newTraceFleet(t, 2)
	h := gw.Handler()
	blob, digest := gwTraceBlob(t, 3)

	cell, err := gw.resolveCell("trace:"+digest, "imt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	preferred := gw.ring.Order(cell.key)[0]
	var source string
	for _, url := range urls {
		if url != preferred {
			source = url
		}
	}
	if _, err := client.New(source).UploadTrace(t.Context(), bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	rec := gwPost(t, h, "/v1/sweep", fmt.Sprintf(`{"workloads":["trace:%s"],"modes":["imt"]}`, digest))
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", rec.Code, rec.Body)
	}
	cells, summary := parseSweep(t, rec.Body)
	if len(cells) != 1 || summary.Failed != 0 || cells[0].Error != "" {
		t.Fatalf("sweep after push: cells=%+v summary=%+v", cells, summary)
	}
	if got := gw.mTracePushes.Value(); got != 1 {
		t.Errorf("trace pushes = %d, want 1", got)
	}
}

func mustDecode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}
