package serve

import (
	"context"
	"sync"

	"repro/internal/gpusim"
)

// outcome is what one executed (or failed) simulation produced — the
// value shared among coalesced requests. stats is host-telemetry-free
// (Stats.WithoutHost) so coalesced and cached responses are
// bit-identical to a fresh run's response.
type outcome struct {
	stats  gpusim.Stats
	cached bool
	err    error
}

// flight is one in-flight execution: the leader closes done when its
// outcome is set.
type flight struct {
	done chan struct{}
	out  outcome
}

// flightGroup coalesces concurrent executions of the same cell, keyed
// by the runner's content-addressed cache key. Unlike a memoization
// cache it holds nothing after the flight lands — the on-disk result
// cache is the durable layer; this only collapses the in-flight window
// where a thundering herd of identical requests would otherwise each
// run the same simulation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns fn's outcome for key, running fn at most once among
// concurrent callers. The second return reports whether this caller
// shared another caller's flight (a coalesce hit). A follower whose own
// ctx expires before the leader lands gets ctx's error without
// cancelling the leader: the leader runs under its own request context,
// and its result stays useful to every other waiter (and to the cache).
func (g *flightGroup) do(ctx context.Context, key string, fn func() outcome) (outcome, bool, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.out, true, nil
		case <-ctx.Done():
			return outcome{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	g.m[key] = f
	g.mu.Unlock()

	f.out = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, false, nil
}
