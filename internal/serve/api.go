package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/gpusim"
)

// MaxRequestBytes caps how much of a request body the decoder reads.
// Everything the API accepts fits comfortably in 1 MiB; a hostile
// Content-Length or an endless body cannot make the server allocate
// more than this (the FuzzServeRequestDecode contract).
const MaxRequestBytes = 1 << 20

// SimRequest asks for one simulation cell: a catalog workload under one
// tagging mode. It is the unit the server coalesces and caches.
type SimRequest struct {
	// Workload is a catalog workload name (GET /v1/workloads lists them).
	Workload string `json:"workload"`
	// Mode is a tagging-mode spelling accepted by gpusim.ParseTagMode:
	// none, imt, ecc-steal, carve-out, carve-low, carve-high, carve-mte,
	// bounds-table (alias: bounds).
	Mode string `json:"mode"`
	// MaxCycles caps the simulation (0 = the simulator's default guard).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// SampleInterval, when nonzero, records phase telemetry into the
	// result's stats.Samples every N cycles.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	// TimeoutMs bounds the request's wall time (0 = the server default;
	// values above the server maximum are clamped). An exceeded deadline
	// returns 504.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SweepRequest asks for a grid of cells, expanded server-side:
// (workloads ∪ suite) × modes. Results stream back as NDJSON — one
// CellResult line per cell as it completes, then one SweepSummary line.
type SweepRequest struct {
	// Workloads names individual catalog workloads.
	Workloads []string `json:"workloads,omitempty"`
	// Suite adds every workload of a catalog suite (MLPerf, HPC+SLA,
	// STREAM). Workloads and Suite may be combined.
	Suite string `json:"suite,omitempty"`
	// Modes lists tagging modes; the grid is workloads × modes.
	Modes []string `json:"modes"`
	// MaxCycles / SampleInterval / TimeoutMs apply to every cell;
	// TimeoutMs bounds the whole sweep (0 = the server maximum).
	MaxCycles      uint64 `json:"max_cycles,omitempty"`
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	TimeoutMs      int64  `json:"timeout_ms,omitempty"`
}

// CellResult is one completed (or failed) cell. In a sweep stream,
// failed cells carry Error and no Stats; the stream keeps going.
type CellResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Cached reports that the result came from the on-disk cache (either
	// the server's pre-admission fast path or the engine's own lookup).
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that this request shared another in-flight
	// request's simulation instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// CacheKey is a prefix of the cell's content-addressed identity —
	// enough to correlate coalesced requests and cache entries in logs.
	CacheKey  string        `json:"cache_key,omitempty"`
	ElapsedMs float64       `json:"elapsed_ms"`
	Error     string        `json:"error,omitempty"`
	Stats     *gpusim.Stats `json:"stats,omitempty"`
}

// SweepSummary is the final NDJSON line of a sweep stream.
type SweepSummary struct {
	Done      bool    `json:"done"`
	Cells     int     `json:"cells"`
	Failed    int     `json:"failed"`
	Cached    int     `json:"cached"`
	Coalesced int     `json:"coalesced"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-200 API response.
//
// Failure mapping:
//
//	400  malformed JSON, unknown field, unknown workload/suite/mode,
//	     empty grid, grid larger than the server's sweep cap
//	429  admission queue full (Retry-After set)
//	503  server draining (Retry-After set)
//	504  request deadline exceeded
//	500  simulation failure (config rejected, simulator error, panic)
type ErrorResponse struct {
	Error string `json:"error"`
}

// WorkloadInfo is one catalog entry in the GET /v1/workloads listing.
type WorkloadInfo struct {
	Name           string `json:"name"`
	Suite          string `json:"suite"`
	Pattern        string `json:"pattern"`
	FootprintBytes uint64 `json:"footprint_bytes"`
}

// CatalogResponse is the GET /v1/workloads body.
type CatalogResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
	Suites    []string       `json:"suites"`
	Modes     []string       `json:"modes"`
}

// StatsSnapshot is the GET /v1/statsz body: the server's own activity
// counters, the load generator's source of truth for coalesce and
// cache-hit assertions.
type StatsSnapshot struct {
	Requests     uint64 `json:"requests"`
	Cells        uint64 `json:"cells"`
	CacheHits    uint64 `json:"cache_hits"`
	CoalesceHits uint64 `json:"coalesce_hits"`
	Rejected     uint64 `json:"rejected"`
	Timeouts     uint64 `json:"timeouts"`
	Errors       uint64 `json:"errors"`
	Inflight     int64  `json:"inflight"`
	QueueDepth   int64  `json:"queue_depth"`
	Draining     bool   `json:"draining"`
	UptimeMs     float64 `json:"uptime_ms"`
}

// decodeRequest decodes one JSON value from r into v with the hostile-
// input posture of the trace-file parser: the read is capped at
// MaxRequestBytes, unknown fields are rejected (a misspelled parameter
// is a client bug, not a silent default), and trailing non-whitespace
// after the value is an error.
func decodeRequest(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("serve: trailing data after request body")
	}
	return nil
}

// DecodeSimRequest parses a /v1/sim body. Exposed (with
// DecodeSweepRequest) for the fuzz target; handlers go through it.
func DecodeSimRequest(r io.Reader) (SimRequest, error) {
	var req SimRequest
	err := decodeRequest(r, &req)
	return req, err
}

// DecodeSweepRequest parses a /v1/sweep body.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	err := decodeRequest(r, &req)
	return req, err
}
