package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/serve/apitypes"
)

// The wire protocol is defined once, in internal/serve/apitypes (see
// its doc.go for the versioning and compatibility policy). The aliases
// below keep the server-side names in scope for handlers and tests;
// they are the same types, not copies — the drift the old duplicated
// definitions allowed (the omitempty bug FuzzServeRequestDecode caught)
// is structurally impossible now.
type (
	SimRequest       = apitypes.SimRequest
	SweepRequest     = apitypes.SweepRequest
	JobRequest       = apitypes.JobRequest
	CellResult       = apitypes.CellResult
	SweepSummary     = apitypes.SweepSummary
	WorkloadInfo     = apitypes.WorkloadInfo
	CatalogResponse  = apitypes.CatalogResponse
	StatsSnapshot    = apitypes.StatsSnapshot
	ErrorResponse    = apitypes.ErrorResponse
	JobInfo          = apitypes.JobInfo
	JobFrame         = apitypes.JobFrame
	JobStreamSummary = apitypes.JobStreamSummary
)

// MaxRequestBytes caps how much of a request body the decoder reads
// (see apitypes.MaxRequestBytes).
const MaxRequestBytes = apitypes.MaxRequestBytes

// decodeRequest decodes one JSON value from r into v with the hostile-
// input posture of the trace-file parser: the read is capped at
// MaxRequestBytes, unknown fields are rejected (a misspelled parameter
// is a client bug, not a silent default), and trailing non-whitespace
// after the value is an error.
func decodeRequest(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("serve: trailing data after request body")
	}
	return nil
}

// DecodeSimRequest parses a /v1/sim body. Exposed (with
// DecodeSweepRequest and DecodeJobRequest) for the fuzz target;
// handlers go through it.
func DecodeSimRequest(r io.Reader) (SimRequest, error) {
	var req SimRequest
	err := decodeRequest(r, &req)
	return req, err
}

// DecodeSweepRequest parses a /v1/sweep body.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	err := decodeRequest(r, &req)
	return req, err
}

// DecodeJobRequest parses a POST /v1/jobs body.
func DecodeJobRequest(r io.Reader) (JobRequest, error) {
	var req JobRequest
	err := decodeRequest(r, &req)
	return req, err
}
