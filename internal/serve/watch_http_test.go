package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/apitypes"
)

// readSSE decodes a whole SSE body: frames in order plus the final
// summary (nil if the stream ended without one).
func readSSE(t *testing.T, r io.Reader) ([]apitypes.WatchFrame, *apitypes.WatchSummary) {
	t.Helper()
	br := bufio.NewReader(r)
	var frames []apitypes.WatchFrame
	for {
		e, err := apitypes.ReadSSEEvent(br)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			t.Fatalf("reading SSE: %v", err)
		}
		switch e.Event {
		case apitypes.WatchEventFrame:
			var f apitypes.WatchFrame
			if err := json.Unmarshal(e.Data, &f); err != nil {
				t.Fatalf("frame payload %q: %v", e.Data, err)
			}
			frames = append(frames, f)
		case apitypes.WatchEventSummary:
			var sum apitypes.WatchSummary
			if err := json.Unmarshal(e.Data, &sum); err != nil {
				t.Fatalf("summary payload %q: %v", e.Data, err)
			}
			return frames, &sum
		default:
			t.Fatalf("unexpected SSE event %q", e.Event)
		}
	}
}

func checkWatchGapless(t *testing.T, frames []apitypes.WatchFrame, from int) {
	t.Helper()
	for i, f := range frames {
		if f.Seq != from+i {
			t.Fatalf("frame %d: seq %d, want %d", i, f.Seq, from+i)
		}
	}
}

func TestSimWatchReplay(t *testing.T) {
	s := mustNew(t, Options{Workers: 2})
	h := s.Handler()
	rec := post(t, h, "/v1/sim",
		`{"workload":"stream-copy-16MB","mode":"imt","watch":true,"sample_interval":2000,"max_cycles":100000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("sim: %d %s", rec.Code, rec.Body.String())
	}
	res := decodeBody[CellResult](t, rec)
	if res.WatchRoom == "" {
		t.Fatal("watch:true must return a room code")
	}
	if rec.Header().Get("X-Watch-Room") != res.WatchRoom {
		t.Errorf("header room %q != body room %q", rec.Header().Get("X-Watch-Room"), res.WatchRoom)
	}

	// The cell is finished; the room replays its whole series.
	wrec := get(t, h, "/v1/watch/"+res.WatchRoom)
	if wrec.Code != http.StatusOK {
		t.Fatalf("watch: %d %s", wrec.Code, wrec.Body.String())
	}
	if ct := wrec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	frames, sum := readSSE(t, wrec.Body)
	if len(frames) < 2 {
		t.Fatalf("want sample frames + cell-done, got %d frames", len(frames))
	}
	checkWatchGapless(t, frames, 0)
	for _, f := range frames[:len(frames)-1] {
		if f.Sample == nil || f.Event != "" || f.Cell != "stream-copy-16MB/imt" {
			t.Fatalf("bad sample frame: %+v", f)
		}
	}
	last := frames[len(frames)-1]
	if last.Event != apitypes.WatchEventCellDone || last.Error != "" {
		t.Fatalf("last frame must be a clean cell-done, got %+v", last)
	}
	if sum == nil || !sum.Done || sum.NextSeq != len(frames) || sum.Frames != len(frames) {
		t.Fatalf("summary = %+v (want done, next_seq = %d)", sum, len(frames))
	}

	// Resume from the middle: the tail, identical.
	mid := len(frames) / 2
	rrec := get(t, h, "/v1/watch/"+res.WatchRoom+"?from="+strconv.Itoa(mid))
	tail, tsum := readSSE(t, rrec.Body)
	if len(tail) != len(frames)-mid {
		t.Fatalf("resume at %d returned %d frames, want %d", mid, len(tail), len(frames)-mid)
	}
	for i, f := range tail {
		a, _ := json.Marshal(f)
		b, _ := json.Marshal(frames[mid+i])
		if string(a) != string(b) {
			t.Fatalf("resumed frame %d differs:\n %s\n %s", mid+i, a, b)
		}
	}
	if tsum == nil || tsum.NextSeq != sum.NextSeq {
		t.Fatalf("resume summary = %+v", tsum)
	}

	// Unknown room: 404 with the closed error code.
	nrec := get(t, h, "/v1/watch/zzzzzz")
	if nrec.Code != http.StatusNotFound {
		t.Fatalf("unknown room: %d", nrec.Code)
	}
	if e := decodeBody[ErrorResponse](t, nrec); e.Error.Code != apitypes.CodeNotFound {
		t.Fatalf("code = %q", e.Error.Code)
	}

	// The statsz rooms section and build identity must be live.
	snap := decodeBody[StatsSnapshot](t, get(t, h, "/v1/statsz"))
	if snap.Rooms == nil || snap.Rooms.Frames == 0 {
		t.Fatalf("rooms stats = %+v", snap.Rooms)
	}
	if snap.ConfigHash == "" || snap.GoVersion == "" {
		t.Errorf("missing build identity: %+v", snap)
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", snap.UptimeSeconds)
	}
}

func TestSweepWatchLive(t *testing.T) {
	s := mustNew(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"workloads":["stream-copy-16MB"],"modes":["none","imt"],"watch":true,"sample_interval":2000,"max_cycles":100000}`
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	roomCode := resp.Header.Get("X-Watch-Room")
	if roomCode == "" {
		t.Fatal("sweep watch:true must set X-Watch-Room before the stream")
	}

	// Attach a live watcher while the sweep is (possibly still) running.
	watch, err := http.Get(srv.URL + "/v1/watch/" + roomCode)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	frames, sum := readSSE(t, watch.Body)
	if sum == nil || !sum.Done {
		t.Fatalf("summary = %+v", sum)
	}
	checkWatchGapless(t, frames, 0)
	doneCells := map[string]bool{}
	for _, f := range frames {
		if f.Event == apitypes.WatchEventCellDone {
			doneCells[f.Cell] = true
		}
	}
	if !doneCells["stream-copy-16MB/none"] || !doneCells["stream-copy-16MB/imt"] {
		t.Fatalf("missing cell-done frames: %v", doneCells)
	}

	// The NDJSON sweep stream carries the room code too.
	var lastLine []byte
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lastLine = append(lastLine[:0], sc.Bytes()...)
		}
	}
	var summary SweepSummary
	if err := json.Unmarshal(lastLine, &summary); err != nil {
		t.Fatalf("sweep summary %q: %v", lastLine, err)
	}
	if summary.WatchRoom != roomCode {
		t.Fatalf("sweep summary room %q != header %q", summary.WatchRoom, roomCode)
	}
}

func TestWatchDrainingSummary(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	room := s.rooms.Open()
	watch, err := http.Get(srv.URL + "/v1/watch/" + room.Code())
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()

	time.AfterFunc(50*time.Millisecond, func() { s.SetDraining(true) })
	frames, sum := readSSE(t, watch.Body)
	if len(frames) != 0 {
		t.Fatalf("unexpected frames: %v", frames)
	}
	if sum == nil || !sum.Draining || sum.Done {
		t.Fatalf("summary = %+v, want draining", sum)
	}
	s.SetDraining(false)
	room.Close(apitypes.WatchSummary{Done: true})
}

func TestWatchGoneAfterHistoryEviction(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, RoomHistory: 8})
	h := s.Handler()
	room := s.rooms.Open()
	for i := 0; i < 64; i++ {
		room.Publish(apitypes.WatchFrame{Cell: "c", CellSeq: i})
	}
	room.Close(apitypes.WatchSummary{Done: true})

	rec := get(t, h, "/v1/watch/"+room.Code()+"?from=1")
	if rec.Code != http.StatusGone {
		t.Fatalf("evicted resume point: %d %s", rec.Code, rec.Body.String())
	}
	if e := decodeBody[ErrorResponse](t, rec); e.Error.Code != apitypes.CodeGone {
		t.Fatalf("code = %q", e.Error.Code)
	}
	// from=0 still works and yields the retained tail.
	rec = get(t, h, "/v1/watch/"+room.Code())
	frames, sum := readSSE(t, rec.Body)
	if len(frames) != 8 || frames[0].Seq != 56 {
		t.Fatalf("retained tail: %d frames starting at %d", len(frames), frames[0].Seq)
	}
	if sum == nil || sum.NextSeq != 64 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestJobWatch(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, JobsDir: t.TempDir()})
	defer s.KillJobs()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"workloads":["stream-copy-16MB"],"modes":["imt"],"watch":true,"sample_interval":2000,"max_cycles":100000}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	info := func() JobInfo {
		defer resp.Body.Close()
		var v JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}()
	if resp.StatusCode != http.StatusAccepted || info.WatchRoom == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, info)
	}

	watch, err := http.Get(srv.URL + "/v1/watch/" + info.WatchRoom)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	frames, sum := readSSE(t, watch.Body)
	if sum == nil || !sum.Done {
		t.Fatalf("summary = %+v", sum)
	}
	checkWatchGapless(t, frames, 0)
	samples, dones := 0, 0
	for _, f := range frames {
		switch {
		case f.Sample != nil:
			samples++
		case f.Event == apitypes.WatchEventCellDone:
			dones++
		}
	}
	if samples == 0 || dones != 1 {
		t.Fatalf("%d sample frames, %d cell-done frames: %+v", samples, dones, frames)
	}

	// Polling the finished job still reports the room while it is
	// within its retention window.
	jrec, err := http.Get(srv.URL + "/v1/jobs/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var done JobInfo
	if err := json.NewDecoder(jrec.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	jrec.Body.Close()
	if done.WatchRoom != info.WatchRoom {
		t.Fatalf("job poll room %q, want %q", done.WatchRoom, info.WatchRoom)
	}
}
