package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve/apitypes"
)

// Sentinel errors for the API's closed set of envelope codes. Every
// *APIError unwraps to exactly one of them, so callers dispatch with
// errors.Is and never string-match a message:
//
//	if errors.Is(err, client.ErrNotFound) { … }
var (
	// ErrBackpressure: the server's queue is full (429, code
	// "backpressure"). Retryable; the APIError carries Retry-After.
	ErrBackpressure = errors.New("client: server backpressure")
	// ErrDraining: the server is shutting down (503, code "draining").
	// Retryable — against a restarting daemon the next attempt may land
	// on the new process.
	ErrDraining = errors.New("client: server draining")
	// ErrNotFound: no such resource (404, code "not_found") — an unknown
	// job id, a GC'd job, or job endpoints on a daemon without -jobs-dir.
	ErrNotFound = errors.New("client: not found")
	// ErrTimeout: the server gave up at the request's deadline (504,
	// code "timeout").
	ErrTimeout = errors.New("client: server-side timeout")
	// ErrBadRequest: the request is malformed or names unknown
	// workloads/modes (400, code "bad_request"). Never retryable.
	ErrBadRequest = errors.New("client: bad request")
	// ErrCanceled: the server observed the client hang up (499, code
	// "canceled"). Rarely seen by a live client.
	ErrCanceled = errors.New("client: request canceled")
	// ErrInternal: the simulation failed server-side (500, code
	// "internal").
	ErrInternal = errors.New("client: internal server error")
	// ErrGone: a watch resume point fell out of the room's retained
	// history (410, code "gone"). Never retryable — the missed frames
	// are unrecoverable; re-attach with from=0 for the retained tail.
	ErrGone = errors.New("client: resume point gone")
	// ErrTraceNotFound: a trace digest the shard's store does not hold
	// (404, code "trace_not_found"). Recoverable by re-uploading the
	// blob — the imtgw gateway does this automatically.
	ErrTraceNotFound = errors.New("client: trace not found")
	// ErrTraceQuota: a trace upload exceeds the store quota and eviction
	// could not make room (413, code "trace_quota"). Not retryable until
	// traces are deleted or the quota is raised.
	ErrTraceQuota = errors.New("client: trace store over quota")
	// ErrTraceInUse: DELETE refused because the trace is pinned by a
	// running replay or referenced by a queued job (409, code
	// "trace_in_use"). Retry after the job or replay finishes.
	ErrTraceInUse = errors.New("client: trace in use")
)

// APIError is a non-2xx response from the server: the HTTP status, the
// envelope's machine-readable code and human-readable message, and the
// server's backoff hint when it sent one.
type APIError struct {
	StatusCode int
	// Code is the envelope code ("backpressure", "not_found", …). For a
	// legacy or non-JSON error body it is derived from the status.
	Code    string
	Message string
	// RetryAfter is the server's backoff hint (0 when absent), from the
	// Retry-After header or the envelope's retry_after_ms.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	code := e.Code
	if code == "" {
		code = http.StatusText(e.StatusCode)
	}
	return fmt.Sprintf("serve: %d %s: %s", e.StatusCode, code, e.Message)
}

// Unwrap maps the envelope code (falling back to the HTTP status) onto
// the sentinel table, making errors.Is(err, client.ErrX) work across
// wrapping.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case apitypes.CodeBackpressure:
		return ErrBackpressure
	case apitypes.CodeDraining:
		return ErrDraining
	case apitypes.CodeNotFound:
		return ErrNotFound
	case apitypes.CodeTimeout:
		return ErrTimeout
	case apitypes.CodeBadRequest:
		return ErrBadRequest
	case apitypes.CodeCanceled:
		return ErrCanceled
	case apitypes.CodeInternal:
		return ErrInternal
	case apitypes.CodeGone:
		return ErrGone
	case apitypes.CodeTraceNotFound:
		return ErrTraceNotFound
	case apitypes.CodeTraceQuota:
		return ErrTraceQuota
	case apitypes.CodeTraceInUse:
		return ErrTraceInUse
	}
	// No (or unknown) code: a proxy or a pre-envelope server. Classify
	// by status so Retryable and errors.Is still behave.
	switch e.StatusCode {
	case http.StatusTooManyRequests:
		return ErrBackpressure
	case http.StatusServiceUnavailable:
		return ErrDraining
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusGatewayTimeout:
		return ErrTimeout
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusGone:
		return ErrGone
	case http.StatusRequestEntityTooLarge:
		return ErrTraceQuota
	case http.StatusConflict:
		return ErrTraceInUse
	}
	return ErrInternal
}

// Retryable reports whether the error is backpressure the client
// should retry (queue full, draining).
func (e *APIError) Retryable() bool {
	err := e.Unwrap()
	return err == ErrBackpressure || err == ErrDraining
}

// apiError turns a non-2xx response into an *APIError. It parses the
// uniform envelope {"error":{"code","message","retry_after_ms"}},
// falls back to the legacy {"error":"message"} shape and then to the
// raw body, and honors the Retry-After header (seconds form) as well
// as the envelope's retry_after_ms.
func apiError(resp *http.Response) error {
	e := &APIError{StatusCode: resp.StatusCode}
	if blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
		var envelope apitypes.ErrorResponse
		var legacy struct {
			Error string `json:"error"`
		}
		switch {
		case json.Unmarshal(blob, &envelope) == nil && envelope.Error.Code != "":
			e.Code = envelope.Error.Code
			e.Message = envelope.Error.Message
			if envelope.Error.RetryAfterMs > 0 {
				e.RetryAfter = time.Duration(envelope.Error.RetryAfterMs) * time.Millisecond
			}
		case json.Unmarshal(blob, &legacy) == nil && legacy.Error != "":
			e.Message = legacy.Error
		default:
			e.Message = strings.TrimSpace(string(blob))
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			if d := time.Duration(secs) * time.Second; d > e.RetryAfter {
				e.RetryAfter = d
			}
		}
	}
	return e
}
