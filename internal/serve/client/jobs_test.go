package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gpusim"
	"repro/internal/serve/apitypes"
)

func frame(seq int, workload string, resumed bool) apitypes.JobFrame {
	return apitypes.JobFrame{
		Seq:     seq,
		Resumed: resumed,
		Cell: apitypes.CellResult{
			Workload: workload, Mode: "imt",
			Stats: &gpusim.Stats{Cycles: uint64(100 + seq), WarpOps: 1},
		},
	}
}

// TestTypedErrors: every envelope code maps to its sentinel via
// errors.Is, and the legacy {"error":"msg"} shape still classifies by
// status.
func TestTypedErrors(t *testing.T) {
	cases := []struct {
		name      string
		status    int
		body      string
		sentinel  error
		retryable bool
	}{
		{"backpressure", 429, `{"error":{"code":"backpressure","message":"queue full","retry_after_ms":1000}}`, ErrBackpressure, true},
		{"draining", 503, `{"error":{"code":"draining","message":"bye"}}`, ErrDraining, true},
		{"not_found", 404, `{"error":{"code":"not_found","message":"no such job"}}`, ErrNotFound, false},
		{"timeout", 504, `{"error":{"code":"timeout","message":"deadline"}}`, ErrTimeout, false},
		{"bad_request", 400, `{"error":{"code":"bad_request","message":"bad mode"}}`, ErrBadRequest, false},
		{"internal", 500, `{"error":{"code":"internal","message":"sim failed"}}`, ErrInternal, false},
		{"legacy body", 429, `{"error":"queue full"}`, ErrBackpressure, true},
		{"non-json body", 503, `service unavailable`, ErrDraining, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()
			c := New(srv.URL)
			c.MaxRetries = 0
			_, err := c.Job(context.Background(), "j-x")
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if apiErr.StatusCode != tc.status || apiErr.Retryable() != tc.retryable {
				t.Errorf("APIError = %+v, want status %d retryable %v", apiErr, tc.status, tc.retryable)
			}
		})
	}
}

// TestRetryAfterFromEnvelope: retry_after_ms in the body surfaces even
// without a Retry-After header, and the header wins when larger.
func TestRetryAfterFromEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(429)
		json.NewEncoder(w).Encode(apitypes.ErrorResponse{Error: apitypes.ErrorBody{
			Code: apitypes.CodeBackpressure, Message: "full", RetryAfterMs: 1500,
		}})
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.MaxRetries = 0
	_, err := c.Job(context.Background(), "j-x")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("err = %+v, want RetryAfter=1.5s", err)
	}
}

// TestSubmitPollCancel drives the basic job verbs against a scripted
// server.
func TestSubmitPollCancel(t *testing.T) {
	var canceled atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req apitypes.JobRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Tenant != "alice" || req.Suite != "STREAM" {
			t.Errorf("server saw %+v", req)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(apitypes.JobInfo{ID: "j-1", Tenant: req.Tenant, State: apitypes.JobQueued, Cells: 3})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		state := apitypes.JobRunning
		if canceled.Load() {
			state = apitypes.JobCanceled
		}
		json.NewEncoder(w).Encode(apitypes.JobInfo{ID: r.PathValue("id"), State: state})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		canceled.Store(true)
		json.NewEncoder(w).Encode(apitypes.JobInfo{ID: r.PathValue("id"), State: apitypes.JobCanceled})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastClient(srv.URL)
	ctx := context.Background()

	info, err := c.SubmitJob(ctx, apitypes.JobRequest{Tenant: "alice", SweepRequest: apitypes.SweepRequest{Suite: "STREAM", Modes: []string{"imt"}}})
	if err != nil || info.ID != "j-1" {
		t.Fatalf("submit: %+v %v", info, err)
	}
	if got, err := c.Job(ctx, "j-1"); err != nil || got.State != apitypes.JobRunning {
		t.Fatalf("poll: %+v %v", got, err)
	}
	if got, err := c.CancelJob(ctx, "j-1"); err != nil || got.State != apitypes.JobCanceled {
		t.Fatalf("cancel: %+v %v", got, err)
	}
	if got, err := c.WaitJob(ctx, "j-1", time.Millisecond); err != nil || got.State != apitypes.JobCanceled {
		t.Fatalf("wait: %+v %v", got, err)
	}
}

// TestFollowJobReconnects is the attach/detach contract: the first
// stream ends with a draining summary, the second attach must come in
// at NextSeq, deliver the rest exactly once, and return the terminal
// summary — the client-side half of surviving a daemon restart.
func TestFollowJobReconnects(t *testing.T) {
	var attach atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		switch n := attach.Add(1); n {
		case 1:
			if r.URL.Query().Get("from") != "0" {
				t.Errorf("first attach from=%s", r.URL.Query().Get("from"))
			}
			enc.Encode(frame(0, "a", false))
			enc.Encode(frame(1, "b", false))
			enc.Encode(apitypes.JobStreamSummary{Done: false, State: apitypes.JobRunning, Cells: 3, NextSeq: 2, Draining: true})
		default:
			if r.URL.Query().Get("from") != "2" {
				t.Errorf("reattach from=%s, want 2", r.URL.Query().Get("from"))
			}
			enc.Encode(frame(2, "c", true))
			enc.Encode(apitypes.JobStreamSummary{Done: true, State: apitypes.JobDone, Cells: 3, Resumed: 2, NextSeq: 3})
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var got []apitypes.JobFrame
	summary, err := fastClient(srv.URL).FollowJob(context.Background(), "j-1", 0, func(f apitypes.JobFrame) error {
		got = append(got, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 0 || got[1].Seq != 1 || got[2].Seq != 2 {
		t.Fatalf("frames = %+v", got)
	}
	if !summary.Done || summary.State != apitypes.JobDone {
		t.Fatalf("summary = %+v", summary)
	}
	if attach.Load() != 2 {
		t.Errorf("attaches = %d, want 2", attach.Load())
	}
}

// TestFollowJobSurvivesTransportErrors: connection failures between
// attaches retry rather than abort (the daemon is mid-restart).
func TestFollowJobSurvivesTransportErrors(t *testing.T) {
	var attach atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		switch attach.Add(1) {
		case 1:
			enc.Encode(frame(0, "a", false))
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush() // the frame must reach the wire before the cut
			}
			// Cut the connection mid-stream: no summary line.
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
		default:
			from := r.URL.Query().Get("from")
			if from != "1" {
				t.Errorf("reattach from=%s, want 1", from)
			}
			enc.Encode(frame(1, "b", false))
			enc.Encode(apitypes.JobStreamSummary{Done: true, State: apitypes.JobDone, Cells: 2, NextSeq: 2})
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := fastClient(srv.URL)
	c.MaxRetries = 0 // FollowJob's own loop must do the work, not retry()
	var got []apitypes.JobFrame
	summary, err := c.FollowJob(context.Background(), "j-1", 0, func(f apitypes.JobFrame) error {
		got = append(got, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !summary.Done {
		t.Fatalf("frames = %+v summary = %+v", got, summary)
	}
}

// TestFollowJobStopsOnNotFound: a 404 means the job is unknown or
// GC'd; following must fail fast, not spin.
func TestFollowJobStopsOnNotFound(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(404)
		json.NewEncoder(w).Encode(apitypes.ErrorResponse{Error: apitypes.ErrorBody{Code: apitypes.CodeNotFound, Message: "gone"}})
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	c.MaxRetries = 0
	_, err := c.FollowJob(context.Background(), "j-1", 0, func(apitypes.JobFrame) error { return nil })
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1", calls.Load())
	}
}
