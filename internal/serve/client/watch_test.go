package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/serve/apitypes"
)

func watchFrame(seq int) apitypes.WatchFrame {
	return apitypes.WatchFrame{Seq: seq, Cell: "w/imt", CellSeq: seq}
}

func writeSSEFrame(w http.ResponseWriter, f apitypes.WatchFrame) {
	blob, _ := json.Marshal(f)
	_, _ = w.Write(apitypes.AppendSSEEvent(nil, apitypes.SSEEvent{
		ID: strconv.Itoa(f.Seq), Event: apitypes.WatchEventFrame, Data: blob,
	}))
}

func writeSSESummary(w http.ResponseWriter, sum apitypes.WatchSummary) {
	blob, _ := json.Marshal(sum)
	_, _ = w.Write(apitypes.AppendSSEEvent(nil, apitypes.SSEEvent{
		Event: apitypes.WatchEventSummary, Data: blob,
	}))
}

func fromParam(t *testing.T, r *http.Request) int {
	t.Helper()
	n, err := strconv.Atoi(r.URL.Query().Get("from"))
	if err != nil {
		t.Errorf("bad from param %q", r.URL.Query().Get("from"))
	}
	return n
}

func TestWatchSingleAttach(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/watch/abc123" {
			t.Errorf("path = %q", r.URL.Path)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, ": keep-alive\n\n") // comments must be transparent
		for i := fromParam(t, r); i < 5; i++ {
			writeSSEFrame(w, watchFrame(i))
		}
		writeSSESummary(w, apitypes.WatchSummary{Done: true, Frames: 5, NextSeq: 5})
	}))
	defer srv.Close()

	var got []int
	sum, err := New(srv.URL).Watch(context.Background(), "abc123", 2, func(f apitypes.WatchFrame) error {
		got = append(got, f.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.NextSeq != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("frames = %v", got)
	}
}

func TestFollowWatchHealsEvictionAndDrain(t *testing.T) {
	// Attach 1 (from=0): frames 0-2, then the stream just ends — an
	// eviction. Attach 2 (from=3): frames 3-4, then a draining summary.
	// Attach 3 (from=5): frame 5 and the real done summary. The client
	// must deliver 0..5 exactly once, in order.
	var attach int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attach++
		from := fromParam(t, r)
		w.Header().Set("Content-Type", "text/event-stream")
		switch attach {
		case 1:
			if from != 0 {
				t.Errorf("attach 1 from = %d", from)
			}
			for i := 0; i < 3; i++ {
				writeSSEFrame(w, watchFrame(i))
			}
			// no summary: evicted
		case 2:
			if from != 3 {
				t.Errorf("attach 2 from = %d", from)
			}
			writeSSEFrame(w, watchFrame(3))
			writeSSEFrame(w, watchFrame(4))
			writeSSESummary(w, apitypes.WatchSummary{Frames: 5, NextSeq: 5, Draining: true})
		default:
			if from != 5 {
				t.Errorf("attach 3 from = %d", from)
			}
			writeSSEFrame(w, watchFrame(5))
			writeSSESummary(w, apitypes.WatchSummary{Done: true, Frames: 6, NextSeq: 6})
		}
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.BaseBackoff = 1 // keep the test fast
	var got []int
	sum, err := c.FollowWatch(context.Background(), "abc123", 0, func(f apitypes.WatchFrame) error {
		got = append(got, f.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || attach != 3 {
		t.Fatalf("summary = %+v after %d attaches", sum, attach)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("frames = %v, want 0..5 exactly once", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("got %d frames, want 6", len(got))
	}
}

func TestFollowWatchGoneIsTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusGone)
		fmt.Fprint(w, `{"error":{"code":"gone","message":"resume point evicted"}}`)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.BaseBackoff = 1
	_, err := c.FollowWatch(context.Background(), "abc123", 99, func(apitypes.WatchFrame) error { return nil })
	if !errors.Is(err, ErrGone) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
}

func TestWatchFnErrorAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 0; i < 10; i++ {
			writeSSEFrame(w, watchFrame(i))
		}
		writeSSESummary(w, apitypes.WatchSummary{Done: true})
	}))
	defer srv.Close()

	boom := errors.New("stop here")
	n := 0
	_, err := New(srv.URL).Watch(context.Background(), "abc123", 0, func(apitypes.WatchFrame) error {
		if n++; n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 3 {
		t.Fatalf("err = %v after %d frames", err, n)
	}
}
