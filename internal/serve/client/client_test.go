package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gpusim"
	"repro/internal/serve/apitypes"
)

// fastClient returns a client whose backoff is test-sized.
func fastClient(baseURL string) *Client {
	c := New(baseURL)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	return c
}

// TestSimRetriesBackpressure: two 429s then success must cost exactly
// three attempts and return the final result.
func TestSimRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(apitypes.ErrorResponse{Error: apitypes.ErrorBody{Code: apitypes.CodeBackpressure, Message: "queue full"}})
			return
		}
		json.NewEncoder(w).Encode(apitypes.CellResult{
			Workload: "stream-copy-16MB", Mode: "imt",
			Stats: &gpusim.Stats{Cycles: 7},
		})
	}))
	defer srv.Close()

	res, err := fastClient(srv.URL).Sim(context.Background(),
		apitypes.SimRequest{Workload: "stream-copy-16MB", Mode: "imt"})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if res.Stats == nil || res.Stats.Cycles != 7 {
		t.Errorf("result = %+v", res)
	}
}

// TestSimNoRetryOnSemanticFailure: 400 and 504 fail the first attempt
// — retrying a malformed request or a spent deadline is waste.
func TestSimNoRetryOnSemanticFailure(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInternalServerError, http.StatusGatewayTimeout} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(status)
				json.NewEncoder(w).Encode(apitypes.ErrorResponse{Error: apitypes.ErrorBody{Message: "nope"}})
			}))
			defer srv.Close()

			_, err := fastClient(srv.URL).Sim(context.Background(), apitypes.SimRequest{Workload: "x", Mode: "imt"})
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != status {
				t.Fatalf("err = %v, want APIError %d", err, status)
			}
			if apiErr.Retryable() {
				t.Errorf("%d must not be retryable", status)
			}
			if got := calls.Load(); got != 1 {
				t.Errorf("attempts = %d, want 1", got)
			}
		})
	}
}

// TestRetryAfterParsed: the header's seconds form surfaces on APIError
// and acts as the backoff floor.
func TestRetryAfterParsed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(apitypes.ErrorResponse{Error: apitypes.ErrorBody{Code: apitypes.CodeDraining, Message: "draining"}})
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.MaxRetries = 0 // observe the raw error, no sleeping
	_, err := c.Sim(context.Background(), apitypes.SimRequest{Workload: "x", Mode: "imt"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.RetryAfter != 2*time.Second {
		t.Errorf("APIError = %+v, want 503 with RetryAfter=2s", apiErr)
	}
	if !apiErr.Retryable() {
		t.Error("503 must be retryable")
	}
}

// TestRetryStopsWhenContextEnds: a canceled context ends the retry
// loop instead of sleeping through it.
func TestRetryStopsWhenContextEnds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30") // would be a long sleep
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fastClient(srv.URL).Sim(ctx, apitypes.SimRequest{Workload: "x", Mode: "imt"})
		done <- err
	}()
	// Let the first attempt land, then cancel during the backoff sleep.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation")
	}
}

// TestSweepStreamParsing: the client must hand every cell line to fn
// in order and return the summary line.
func TestSweepStreamParsing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(apitypes.CellResult{Workload: "a", Mode: "none", Stats: &gpusim.Stats{Cycles: 1}})
		enc.Encode(apitypes.CellResult{Workload: "a", Mode: "imt", Error: "boom"})
		enc.Encode(apitypes.SweepSummary{Done: true, Cells: 2, Failed: 1})
	}))
	defer srv.Close()

	var cells []apitypes.CellResult
	summary, err := New(srv.URL).Sweep(context.Background(), apitypes.SweepRequest{}, func(c apitypes.CellResult) error {
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Mode != "none" || cells[1].Error != "boom" {
		t.Fatalf("cells = %+v", cells)
	}
	if !summary.Done || summary.Cells != 2 || summary.Failed != 1 {
		t.Fatalf("summary = %+v", summary)
	}
}

// TestSweepTruncatedStream: a stream that ends without a summary line
// (server died mid-sweep) is an error, not silent success.
func TestSweepTruncatedStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(apitypes.CellResult{Workload: "a", Mode: "none"})
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.MaxRetries = 0
	_, err := c.Sweep(context.Background(), apitypes.SweepRequest{}, nil)
	if err == nil {
		t.Fatal("truncated stream must fail")
	}
}

// TestJitterBounds: equal jitter stays in [d/2, d).
func TestJitterBounds(t *testing.T) {
	c := New("http://unused")
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := c.jitter(d)
		if got < d/2 || got > d {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v]", d, got, d/2, d)
		}
	}
	if c.jitter(0) != 0 {
		t.Error("jitter(0) != 0")
	}
}
