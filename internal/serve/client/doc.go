// Package client is the Go client for the imtd simulation service
// (internal/serve): typed wrappers over the JSON API with the retry
// discipline a backpressured server expects — 429/503 responses are
// retried honoring the server's Retry-After floor, transient transport
// failures are retried with jittered exponential backoff, and 400/500
// class semantic failures are returned immediately. Sweep streams are
// consumed incrementally, delivering each NDJSON cell to a callback as
// it arrives.
//
// Server failures surface as *APIError carrying the uniform error
// envelope's code, and errors.Is matches the typed sentinels
// (ErrBackpressure, ErrDraining, ErrNotFound, ErrTimeout,
// ErrBadRequest, ErrCanceled, ErrInternal).
//
// For durable jobs, SubmitJob/Job/Jobs/CancelJob wrap the /v1/jobs
// resource, StreamJob consumes one NDJSON attach, and FollowJob tails
// a job to completion, re-attaching at the next frame sequence across
// server drains, restarts and transport failures — the client half of
// the job queue's crash-recovery contract. cmd/imtload builds its load
// generator and job driver on this package.
package client
