// Package client is the Go client for the imtd simulation service
// (internal/serve): typed wrappers over the JSON API with the retry
// discipline a backpressured server expects — 429/503 responses are
// retried honoring the server's Retry-After floor, transient transport
// failures are retried with jittered exponential backoff, and 400/500
// class semantic failures are returned immediately. Sweep streams are
// consumed incrementally, delivering each NDJSON cell to a callback as
// it arrives. cmd/imtload builds its load generator on this package.
package client
