package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/serve/apitypes"
)

// ErrWatchEvicted: the server ended a watch stream without a summary,
// which means this subscriber fell behind the broadcast and was
// evicted (or the connection was cut). The missed frames are still in
// the room's history — re-attach at the last delivered sequence + 1.
// FollowWatch does exactly that automatically.
var ErrWatchEvicted = errors.New("client: watch stream ended without summary (evicted or cut)")

// Watch attaches once to a telemetry room's SSE stream at sequence
// from, calling fn for every frame in order (a non-nil fn error aborts
// the attach) and returning the stream-ending summary: Done=true when
// the room's run finished, Draining=true when the daemon is going away
// (re-attach at NextSeq). An eviction ends the attach with
// ErrWatchEvicted. The initial request is retried on backpressure;
// once the stream is open there is nothing to retry at this layer —
// FollowWatch handles reconnection.
func (c *Client) Watch(ctx context.Context, room string, from int, fn func(apitypes.WatchFrame) error) (apitypes.WatchSummary, error) {
	var summary apitypes.WatchSummary
	// Only the attach is under the retry loop: once frames flow, a
	// blind re-attempt at the same from would re-deliver them. Mid-
	// stream failures surface to the caller; FollowWatch re-attaches
	// at the advanced sequence instead.
	var resp *http.Response
	err := c.retry(ctx, func() error {
		path := fmt.Sprintf("/v1/watch/%s?from=%d", url.PathEscape(room), from)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		r, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			defer r.Body.Close()
			return apiError(r)
		}
		resp = r
		return nil
	})
	if err != nil {
		return summary, err
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	for {
		e, err := apitypes.ReadSSEEvent(br)
		if err == io.EOF {
			return summary, ErrWatchEvicted
		}
		if err != nil {
			return summary, fmt.Errorf("client: bad watch stream: %w", err)
		}
		switch e.Event {
		case apitypes.WatchEventFrame:
			var f apitypes.WatchFrame
			if err := json.Unmarshal(e.Data, &f); err != nil {
				return summary, fmt.Errorf("client: bad watch frame: %w", err)
			}
			if fn != nil {
				if err := fn(f); err != nil {
					return summary, err
				}
			}
		case apitypes.WatchEventSummary:
			if err := json.Unmarshal(e.Data, &summary); err != nil {
				return summary, fmt.Errorf("client: bad watch summary: %w", err)
			}
			return summary, nil
		}
		// Unknown event types are skipped for forward compatibility.
	}
}

// FollowWatch streams a room to completion, transparently re-attaching
// from the last delivered sequence across evictions, server drains and
// connection cuts: every frame is delivered exactly once, in sequence
// order, as long as the room's history still covers the resume point.
// When it does not, the follow fails with an error wrapping ErrGone —
// the gap is unrecoverable and silently skipping frames would betray
// the gapless contract. from is the first sequence wanted (0 for the
// oldest retained). Mirrors FollowJob.
func (c *Client) FollowWatch(ctx context.Context, room string, from int, fn func(apitypes.WatchFrame) error) (apitypes.WatchSummary, error) {
	next := from
	backoff := c.BaseBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	for {
		summary, err := c.Watch(ctx, room, next, func(f apitypes.WatchFrame) error {
			if err := fn(f); err != nil {
				return err
			}
			next = f.Seq + 1
			return nil
		})
		switch {
		case err == nil && summary.Done:
			return summary, nil
		case err == nil && summary.Draining:
			// The daemon is going away; resume from its NextSeq (≥ our
			// own high-water mark) after a pause.
			if summary.NextSeq > next {
				next = summary.NextSeq
			}
		case err == nil:
			// A closed-without-done room (abandoned job): terminal.
			return summary, nil
		case errors.Is(err, ErrWatchEvicted):
			// Fell behind; re-attach at next after the backoff —
			// history replays what the live channel dropped.
		case ctx.Err() != nil:
			return summary, ctx.Err()
		case !followRetryable(err):
			return summary, err
		}
		select {
		case <-time.After(c.jitter(backoff)):
		case <-ctx.Done():
			return apitypes.WatchSummary{}, ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}
