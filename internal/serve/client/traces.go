package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/serve/apitypes"
)

// UploadTrace streams an IMTTRC blob to POST /v1/traces and returns the
// store's response: the content address (SHA-256 digest) plus whether
// the blob was freshly committed or already resident. The body is read
// exactly once, so there are no retries — callers that can re-open the
// source should use UploadTraceFile, which retries with a fresh reader
// per attempt. Uploading the same bytes twice is always safe: the
// second call is a content-address hit (Created false).
func (c *Client) UploadTrace(ctx context.Context, r io.Reader) (apitypes.TraceUploadResponse, error) {
	var out apitypes.TraceUploadResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/traces", r)
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return out, apiError(resp)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(&out)
	return out, err
}

// UploadTraceFile uploads the trace blob at path, re-opening the file
// for each attempt so backpressure responses retry under the client's
// normal policy.
func (c *Client) UploadTraceFile(ctx context.Context, path string) (apitypes.TraceUploadResponse, error) {
	var out apitypes.TraceUploadResponse
	err := c.retry(ctx, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out, err = c.UploadTrace(ctx, f)
		return err
	})
	return out, err
}

// Traces lists the server's stored traces. Against an imtgw gateway the
// listing is the digest-deduplicated union across reachable shards.
func (c *Client) Traces(ctx context.Context) (apitypes.TraceListResponse, error) {
	var out apitypes.TraceListResponse
	err := c.getJSON(ctx, "/v1/traces", &out)
	return out, err
}

// TraceStat fetches one stored trace's metadata. An absent digest is
// ErrTraceNotFound.
func (c *Client) TraceStat(ctx context.Context, digest string) (apitypes.TraceInfo, error) {
	var out apitypes.TraceInfo
	err := c.getJSON(ctx, "/v1/traces/"+digest, &out)
	return out, err
}

// DeleteTrace removes a stored trace, returning the deleted trace's
// metadata. A trace pinned by a running replay or referenced by a
// queued job is ErrTraceInUse; an absent digest is ErrTraceNotFound.
func (c *Client) DeleteTrace(ctx context.Context, digest string) (apitypes.TraceInfo, error) {
	var out apitypes.TraceInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/traces/"+digest, nil)
	if err != nil {
		return out, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, apiError(resp)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(&out)
	return out, err
}

// DownloadTrace streams a stored trace's raw IMTTRC bytes into w and
// returns the byte count. The blob is written incrementally — a
// multi-GB trace never materializes in memory on either side.
func (c *Client) DownloadTrace(ctx context.Context, digest string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/traces/"+digest+"?raw=1", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return n, fmt.Errorf("client: trace download: %w", err)
	}
	return n, nil
}
