package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/serve/apitypes"
)

// SubmitJob submits a durable background job and returns its queued
// JobInfo. The submit is retried on backpressure like any request; the
// job itself survives server restarts once accepted.
func (c *Client) SubmitJob(ctx context.Context, req apitypes.JobRequest) (apitypes.JobInfo, error) {
	var info apitypes.JobInfo
	err := c.retry(ctx, func() error {
		resp, err := c.post(ctx, "/v1/jobs", req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return apiError(resp)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(&info)
	})
	return info, err
}

// Job polls one job's current snapshot.
func (c *Client) Job(ctx context.Context, id string) (apitypes.JobInfo, error) {
	var info apitypes.JobInfo
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &info)
	return info, err
}

// Jobs lists jobs in submission order; tenant "" lists every tenant.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]apitypes.JobInfo, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var list apitypes.JobListResponse
	err := c.getJSON(ctx, path, &list)
	return list.Jobs, err
}

// CancelJob cancels a job, interrupting its in-flight cells. Canceling
// a finished job is a no-op returning its terminal snapshot.
func (c *Client) CancelJob(ctx context.Context, id string) (apitypes.JobInfo, error) {
	var info apitypes.JobInfo
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+url.PathEscape(id), nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(&info)
	})
	return info, err
}

// StreamJob attaches to a job's frame stream at sequence from, calling
// fn for every frame (a non-nil fn error aborts the attach) and
// returning the stream's final summary — Done=true when the job
// finished, or Done=false with NextSeq when the server ended the
// stream early (drain). One attach is one HTTP request; FollowJob
// layers reconnection on top.
func (c *Client) StreamJob(ctx context.Context, id string, from int, fn func(apitypes.JobFrame) error) (apitypes.JobStreamSummary, error) {
	var summary apitypes.JobStreamSummary
	err := c.retry(ctx, func() error {
		path := fmt.Sprintf("/v1/jobs/%s/stream?from=%d", url.PathEscape(id), from)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		summary = apitypes.JobStreamSummary{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), apitypes.MaxRequestBytes)
		sawSummary := false
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			// Frames carry "cell"; the summary is the only line with
			// "state" at top level. Sniff before committing to a decode.
			var probe struct {
				State *apitypes.JobState `json:"state"`
			}
			if json.Unmarshal(line, &probe) == nil && probe.State != nil {
				if err := json.Unmarshal(line, &summary); err != nil {
					return fmt.Errorf("client: bad job summary line: %w", err)
				}
				sawSummary = true
				break
			}
			var frame apitypes.JobFrame
			if err := json.Unmarshal(line, &frame); err != nil {
				return fmt.Errorf("client: bad job frame line: %w", err)
			}
			if fn != nil {
				if err := fn(frame); err != nil {
					return err
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if !sawSummary {
			return errors.New("client: job stream ended without a summary line")
		}
		return nil
	})
	return summary, err
}

// FollowJob streams a job to completion, transparently re-attaching
// from the last delivered sequence across server drains and restarts:
// every frame is delivered exactly once, in sequence order, no matter
// how many times the daemon bounces underneath. Transport errors and
// not-yet-restarted gaps are retried with the client's backoff for as
// long as ctx allows. from is the first sequence wanted (0 for the
// whole job).
func (c *Client) FollowJob(ctx context.Context, id string, from int, fn func(apitypes.JobFrame) error) (apitypes.JobStreamSummary, error) {
	next := from
	backoff := c.BaseBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	for {
		summary, err := c.StreamJob(ctx, id, next, func(f apitypes.JobFrame) error {
			if err := fn(f); err != nil {
				return err
			}
			next = f.Seq + 1
			return nil
		})
		switch {
		case err == nil && summary.Done:
			return summary, nil
		case err == nil:
			// Drain summary: the server is going away. Resume from its
			// NextSeq (≥ our own high-water mark) after a pause.
			if summary.NextSeq > next {
				next = summary.NextSeq
			}
		case ctx.Err() != nil:
			return summary, ctx.Err()
		case !followRetryable(err):
			return summary, err
		}
		select {
		case <-time.After(c.jitter(backoff)):
		case <-ctx.Done():
			return apitypes.JobStreamSummary{}, ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// followRetryable: everything a daemon bounce can look like. Transport
// errors (refused while the new process binds), draining and
// backpressure are all worth another attach; a 404 is not — the job is
// unknown or GC'd — and neither are semantic failures.
func followRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Retryable()
	}
	return true
}

// WaitJob polls until the job reaches a terminal state (or ctx ends),
// returning the final snapshot. Poll-based alternative to FollowJob
// for callers that only want the outcome, not the frames.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (apitypes.JobInfo, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err == nil && info.State.Terminal() {
			return info, nil
		}
		if err != nil && !followRetryable(err) {
			return info, err
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return apitypes.JobInfo{}, ctx.Err()
		}
	}
}
