package client

import (
	"net/http"
	"sync"
	"time"
)

// Pool hands out one Client per base URL, all sharing a single
// http.Transport so every caller of the same shard reuses its warm
// connections. The imtgw gateway routes every request through a Pool:
// a fleet of N shards costs one transport and N cached Clients, not a
// dial per request.
//
// Two flavors exist per URL: For returns a client with the default
// backpressure retry policy (interactive requests), Raw one with
// retries disabled — sweep streams and health probes must observe
// failures immediately so the gateway can reroute or trip the shard's
// breaker instead of retrying into a dead shard.
type Pool struct {
	// Configure, when non-nil, is applied to every Client the pool
	// creates (both flavors), before first use. Set it before any For
	// or Raw call.
	Configure func(*Client)

	mu        sync.Mutex
	transport *http.Transport
	retrying  map[string]*Client
	raw       map[string]*Client
}

// NewPool returns an empty pool with a dedicated transport tuned for a
// small fleet of long-lived shard connections.
func NewPool() *Pool {
	return &Pool{
		transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
		retrying: make(map[string]*Client),
		raw:      make(map[string]*Client),
	}
}

// For returns the pooled retrying client for baseURL, creating it on
// first use.
func (p *Pool) For(baseURL string) *Client {
	return p.get(p.retrying, baseURL, -1)
}

// Raw returns the pooled no-retry client for baseURL: every
// backpressure response and transport failure surfaces on the first
// attempt.
func (p *Pool) Raw(baseURL string) *Client {
	return p.get(p.raw, baseURL, 0)
}

func (p *Pool) get(m map[string]*Client, baseURL string, maxRetries int) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := m[baseURL]; ok {
		return c
	}
	c := New(baseURL)
	c.HTTPClient = &http.Client{Transport: p.transport}
	if maxRetries >= 0 {
		c.MaxRetries = maxRetries
	}
	if p.Configure != nil {
		p.Configure(c)
	}
	m[baseURL] = c
	return c
}

// CloseIdle drops the pool's idle connections (gateway drain).
func (p *Pool) CloseIdle() {
	p.transport.CloseIdleConnections()
}
