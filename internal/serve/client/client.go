package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/apitypes"
)

// Client talks to an imtd server. The zero value is not usable; use New.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8866".
	BaseURL string
	// HTTPClient defaults to a client with no overall timeout (requests
	// carry their own deadlines via context).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 4).
	// Only backpressure (429, 503 with Retry-After) and transport errors
	// are retried; semantic failures (400, 500, 504) are not.
	MaxRetries int
	// BaseBackoff seeds the jittered exponential backoff (default
	// 100ms); a server Retry-After overrides it as a floor.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep (default 5s).
	MaxBackoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a client for the server at baseURL with default retry
// policy.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:     strings.TrimRight(baseURL, "/"),
		HTTPClient:  &http.Client{},
		MaxRetries:  4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Sim runs one cell and returns its result. Backpressure responses are
// retried under ctx with jittered exponential backoff honoring
// Retry-After.
func (c *Client) Sim(ctx context.Context, req apitypes.SimRequest) (apitypes.CellResult, error) {
	var res apitypes.CellResult
	err := c.retry(ctx, func() error {
		resp, err := c.post(ctx, "/v1/sim", req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(&res)
	})
	return res, err
}

// Sweep streams a sweep, calling fn for every cell line as it arrives
// (a non-nil fn error aborts the stream) and returning the final
// summary. The initial request is retried on backpressure; once the
// stream is open there is nothing to retry — per-cell failures arrive
// as CellResult.Error lines.
func (c *Client) Sweep(ctx context.Context, req apitypes.SweepRequest, fn func(apitypes.CellResult) error) (apitypes.SweepSummary, error) {
	return c.sweep(ctx, req, nil, fn)
}

// SweepWatch is Sweep for a watched run (req.Watch true): onRoom is
// called with the telemetry room's join code as soon as the response
// headers arrive — before any cell finishes — so watchers can attach
// to the live broadcast while the sweep is still running.
func (c *Client) SweepWatch(ctx context.Context, req apitypes.SweepRequest, onRoom func(room string), fn func(apitypes.CellResult) error) (apitypes.SweepSummary, error) {
	req.Watch = true
	return c.sweep(ctx, req, onRoom, fn)
}

func (c *Client) sweep(ctx context.Context, req apitypes.SweepRequest, onRoom func(string), fn func(apitypes.CellResult) error) (apitypes.SweepSummary, error) {
	var summary apitypes.SweepSummary
	err := c.retry(ctx, func() error {
		resp, err := c.post(ctx, "/v1/sweep", req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		if onRoom != nil {
			if room := resp.Header.Get("X-Watch-Room"); room != "" {
				onRoom(room)
			}
		}
		summary = apitypes.SweepSummary{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), apitypes.MaxRequestBytes)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			// The summary line is the only one with "done"; sniff it
			// before committing to a CellResult decode.
			var probe struct {
				Done *bool `json:"done"`
			}
			if json.Unmarshal(line, &probe) == nil && probe.Done != nil {
				return json.Unmarshal(line, &summary)
			}
			var cell apitypes.CellResult
			if err := json.Unmarshal(line, &cell); err != nil {
				return fmt.Errorf("client: bad sweep line: %w", err)
			}
			if fn != nil {
				if err := fn(cell); err != nil {
					return err
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		return errors.New("client: sweep stream ended without a summary line")
	})
	return summary, err
}

// Stats fetches the server's activity counters. Against an imtgw
// gateway the counters are the fleet-wide aggregate; GatewayStats
// additionally exposes the per-shard breakdown.
func (c *Client) Stats(ctx context.Context) (apitypes.StatsSnapshot, error) {
	var snap apitypes.StatsSnapshot
	err := c.getJSON(ctx, "/v1/statsz", &snap)
	return snap, err
}

// GatewayStats fetches /v1/statsz decoded as a gateway snapshot: the
// aggregate counters plus the gateway section and per-shard breakdown.
// Against a plain imtd shard, Gateway is nil and Shards empty.
func (c *Client) GatewayStats(ctx context.Context) (apitypes.GatewaySnapshot, error) {
	var snap apitypes.GatewaySnapshot
	err := c.getJSON(ctx, "/v1/statsz", &snap)
	return snap, err
}

// Workloads fetches the catalog listing.
func (c *Client) Workloads(ctx context.Context) (apitypes.CatalogResponse, error) {
	var cat apitypes.CatalogResponse
	err := c.getJSON(ctx, "/v1/workloads", &cat)
	return cat, err
}

// Health returns nil when the server answers healthy, an *APIError
// when it is draining, and a transport error when it is unreachable.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// retry runs attempt until it succeeds, fails non-retryably, exhausts
// MaxRetries, or ctx ends. Backoff doubles per attempt with full
// jitter; a server Retry-After acts as the floor for that sleep.
func (c *Client) retry(ctx context.Context, attempt func() error) error {
	maxRetries := c.MaxRetries
	backoff := c.BaseBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	var err error
	for try := 0; ; try++ {
		err = attempt()
		if err == nil {
			return nil
		}
		if try >= maxRetries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		sleep := c.jitter(backoff)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > sleep {
			sleep = apiErr.RetryAfter
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// retryable: backpressure statuses and transport-level failures. A
// context error is never retryable (the caller's budget is spent), and
// neither are semantic failures — a 400 will fail identically forever
// and a 504 means the server already spent the request's deadline.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Retryable()
	}
	// Anything else from Do is a transport error (refused, reset, …).
	return true
}

// jitter draws uniformly from [d/2, d): "equal jitter", decorrelating
// a herd of clients that all got the same 429 at the same instant.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.httpClient().Do(req)
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, apitypes.MaxRequestBytes)).Decode(v)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}
