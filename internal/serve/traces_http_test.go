package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/gpusim"
	"repro/internal/runner"
	"repro/internal/serve/apitypes"
)

// testTraceBlob builds a small valid IMTTRC blob (numSMs streams, ops
// ops on each) and returns it with its content digest. seed varies the
// addresses so different seeds give different digests.
func testTraceBlob(t *testing.T, seed, numSMs, ops int) ([]byte, string) {
	t.Helper()
	traces := make([]gpusim.Trace, numSMs)
	for sm := 0; sm < numSMs; sm++ {
		warpOps := make([]gpusim.WarpOp, ops)
		for i := range warpOps {
			warpOps[i] = gpusim.WarpOp{
				Store:   i%2 == 1,
				Addrs:   []uint64{uint64(0x10000 + seed*4096 + sm*512 + i*32), uint64(0x20000 + i*64)},
				Compute: 3,
			}
		}
		traces[sm] = &gpusim.SliceTrace{Ops: warpOps}
	}
	var buf bytes.Buffer
	if err := gpusim.WriteTracesClone(&buf, traces); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:])
}

func uploadBlob(t *testing.T, h http.Handler, blob []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/traces", bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	return decodeBody[apitypes.ErrorResponse](t, rec).Error.Code
}

// TestTraceUploadStatListDelete walks the trace resource lifecycle over
// HTTP: fresh upload (201), idempotent re-upload (200 content-address
// hit), stat, list, raw download byte-identical to the upload, delete,
// and the typed 404s afterwards.
func TestTraceUploadStatListDelete(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, TraceDir: t.TempDir()})
	h := s.Handler()
	blob, digest := testTraceBlob(t, 1, 3, 16)

	rec := uploadBlob(t, h, blob)
	if rec.Code != http.StatusCreated {
		t.Fatalf("first upload: %d %s", rec.Code, rec.Body)
	}
	up := decodeBody[apitypes.TraceUploadResponse](t, rec)
	if up.Digest != digest || !up.Created {
		t.Fatalf("upload response %+v, want digest %s created", up, digest)
	}
	if up.NumSMs != 3 || up.TotalOps != 48 || up.Bytes != int64(len(blob)) {
		t.Errorf("index mismatch: %+v", up)
	}

	rec = uploadBlob(t, h, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-upload: %d %s", rec.Code, rec.Body)
	}
	if up := decodeBody[apitypes.TraceUploadResponse](t, rec); up.Created {
		t.Error("re-upload must be a content-address hit, not a fresh commit")
	}

	if rec := get(t, h, "/v1/traces/"+digest); rec.Code != http.StatusOK {
		t.Fatalf("stat: %d %s", rec.Code, rec.Body)
	}
	rec = get(t, h, "/v1/traces")
	list := decodeBody[apitypes.TraceListResponse](t, rec)
	if len(list.Traces) != 1 || list.Traces[0].Digest != digest || list.TotalBytes != int64(len(blob)) {
		t.Fatalf("list = %+v", list)
	}

	rec = get(t, h, "/v1/traces/"+digest+"?raw=1")
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), blob) {
		t.Fatalf("raw download: code %d, %d bytes, want the %d uploaded bytes", rec.Code, rec.Body.Len(), len(blob))
	}

	req := httptest.NewRequest(http.MethodDelete, "/v1/traces/"+digest, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	rec = get(t, h, "/v1/traces/"+digest)
	if rec.Code != http.StatusNotFound || errCode(t, rec) != apitypes.CodeTraceNotFound {
		t.Fatalf("stat after delete: %d code %q", rec.Code, errCode(t, rec))
	}

	// Stats carries the tracestore section.
	snap := s.Stats()
	if snap.Traces == nil || snap.Traces.Puts != 2 || snap.Traces.PutHits != 1 || snap.Traces.Deletes != 1 {
		t.Errorf("stats traces section = %+v", snap.Traces)
	}
}

// TestTraceUploadRejections: garbage is a 400, an over-quota blob a
// 413 trace_quota, and a disabled store answers every route with the
// typed trace_not_found plus a -trace-dir hint.
func TestTraceUploadRejections(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, TraceDir: t.TempDir(), TraceQuotaBytes: 64})
	h := s.Handler()

	rec := uploadBlob(t, h, []byte("not a trace"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d %s", rec.Code, rec.Body)
	}
	blob, _ := testTraceBlob(t, 2, 3, 64)
	if len(blob) <= 64 {
		t.Fatalf("test blob too small (%d bytes) to exceed the 64-byte quota", len(blob))
	}
	rec = uploadBlob(t, h, blob)
	if rec.Code != http.StatusRequestEntityTooLarge || errCode(t, rec) != apitypes.CodeTraceQuota {
		t.Fatalf("over-quota upload: %d code %q", rec.Code, errCode(t, rec))
	}

	disabled := mustNew(t, Options{Workers: 2}).Handler()
	for _, path := range []string{"/v1/traces", "/v1/traces/" + "ab"} {
		rec := get(t, disabled, path)
		if rec.Code != http.StatusNotFound || errCode(t, rec) != apitypes.CodeTraceNotFound {
			t.Errorf("disabled store %s: %d code %q", path, rec.Code, errCode(t, rec))
		}
	}
}

// TestSimTraceWorkload is the replay-fidelity contract over HTTP: a
// trace:<digest> cell served by the daemon must produce exactly the
// stats an in-process engine computes replaying the same blob, the
// second request must be a cache hit, and the 404/400 table must hold.
func TestSimTraceWorkload(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir(), TraceDir: t.TempDir()})
	h := s.Handler()
	blob, digest := testTraceBlob(t, 3, 3, 32)
	if rec := uploadBlob(t, h, blob); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body)
	}

	simBody := fmt.Sprintf(`{"workload":"trace:%s","mode":"imt"}`, digest)
	rec := post(t, h, "/v1/sim", simBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace sim: %d %s", rec.Code, rec.Body)
	}
	res := decodeBody[CellResult](t, rec)
	if res.Workload != "trace:"+digest || res.Stats == nil {
		t.Fatalf("result %+v", res)
	}

	// In-process baseline: same machine, same blob, same key.
	eng := runner.New(gpusim.DefaultConfig(), runner.Options{})
	baseline, err := eng.Run(context.Background(), []runner.Job{{
		Key:  "trace:" + digest,
		Mode: gpusim.ModeIMT,
		Traces: func(numSMs int) []gpusim.Trace {
			traces, err := gpusim.ReadTraces(bytes.NewReader(blob))
			if err != nil {
				t.Errorf("re-reading blob: %v", err)
				return make([]gpusim.Trace, numSMs)
			}
			out := make([]gpusim.Trace, numSMs)
			copy(out, traces)
			return out
		},
	}})
	if err != nil || baseline[0].Err != nil {
		t.Fatal(err, baseline[0].Err)
	}
	if want := baseline[0].Stats.WithoutHost(); !reflect.DeepEqual(*res.Stats, want) {
		t.Errorf("served stats diverge from in-process replay:\n got %+v\nwant %+v", *res.Stats, want)
	}

	// Same cell again: the engine already cached it under the digest key.
	rec = post(t, h, "/v1/sim", simBody)
	if res2 := decodeBody[CellResult](t, rec); !res2.Cached || !reflect.DeepEqual(res2.Stats, res.Stats) {
		t.Errorf("second trace sim: cached=%v, stats equal=%v", res2.Cached, reflect.DeepEqual(res2.Stats, res.Stats))
	}

	// Failure table: absent digest → typed 404; malformed digest → 400;
	// more SM streams than the machine has → 400.
	ghost := "00" + digest[2:]
	rec = post(t, h, "/v1/sim", fmt.Sprintf(`{"workload":"trace:%s","mode":"imt"}`, ghost))
	if rec.Code != http.StatusNotFound || errCode(t, rec) != apitypes.CodeTraceNotFound {
		t.Errorf("absent digest: %d code %q", rec.Code, errCode(t, rec))
	}
	rec = post(t, h, "/v1/sim", `{"workload":"trace:xyz","mode":"imt"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed digest: %d", rec.Code)
	}
	wide, wideDigest := testTraceBlob(t, 4, 5, 4)
	if rec := uploadBlob(t, h, wide); rec.Code != http.StatusCreated {
		t.Fatalf("wide upload: %d", rec.Code)
	}
	rec = post(t, h, "/v1/sim", fmt.Sprintf(`{"workload":"trace:%s","mode":"imt"}`, wideDigest))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("trace wider than the machine: %d %s", rec.Code, rec.Body)
	}
}

// TestSweepMixesTraceAndCatalogCells: a sweep grid may put trace
// references and catalog workloads on the same workload axis.
func TestSweepMixesTraceAndCatalogCells(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir(), TraceDir: t.TempDir()})
	h := s.Handler()
	blob, digest := testTraceBlob(t, 5, 2, 8)
	if rec := uploadBlob(t, h, blob); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d", rec.Code)
	}
	body := fmt.Sprintf(`{"workloads":["stream-copy-16MB","trace:%s"],"modes":["none","imt"]}`, digest)
	rec := post(t, h, "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", rec.Code, rec.Body)
	}
	var found int
	for _, line := range bytes.Split(rec.Body.Bytes(), []byte("\n")) {
		if bytes.Contains(line, []byte(`"trace:`)) && !bytes.Contains(line, []byte(`"done"`)) {
			found++
			if bytes.Contains(line, []byte(`"error"`)) {
				t.Errorf("trace cell failed: %s", line)
			}
		}
	}
	if found != 2 {
		t.Errorf("saw %d trace cell lines, want 2", found)
	}
}

// TestTraceDeleteInUseByJob: a queued/running job naming a trace
// workload blocks DELETE with 409 trace_in_use until it finishes.
func TestTraceDeleteInUseByJob(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, TraceDir: t.TempDir(), JobsDir: t.TempDir(), JobWorkers: 1})
	b := newBlockingHook()
	s.simHook = b.hook
	h := s.Handler()
	blob, digest := testTraceBlob(t, 6, 2, 8)
	if rec := uploadBlob(t, h, blob); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d", rec.Code)
	}

	body := fmt.Sprintf(`{"workloads":["trace:%s"],"modes":["imt"]}`, digest)
	rec := post(t, h, "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", rec.Code, rec.Body)
	}
	waitEntered(t, b)

	req := httptest.NewRequest(http.MethodDelete, "/v1/traces/"+digest, nil)
	del := httptest.NewRecorder()
	h.ServeHTTP(del, req)
	if del.Code != http.StatusConflict || errCode(t, del) != apitypes.CodeTraceInUse {
		t.Fatalf("delete under a live job: %d code %q", del.Code, errCode(t, del))
	}

	close(b.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodDelete, "/v1/traces/"+digest, nil)
		del := httptest.NewRecorder()
		h.ServeHTTP(del, req)
		if del.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delete still refused after job finished: %d %s", del.Code, del.Body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.DrainJobs(context.Background()); err != nil {
		t.Fatal(err)
	}
}
