package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gpusim"
)

// post runs one request through the handler without a socket.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mustNew(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
	return v
}

// TestSimBadRequests is the 400 table: every malformed or semantically
// invalid body must come back 400 with a JSON error, never 500 and
// never a hang.
func TestSimBadRequests(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	h := s.Handler()
	cases := []struct {
		name, body string
		wantInErr  string
	}{
		{"empty body", "", "decoding request"},
		{"not json", "these are not the cells you are looking for", "decoding request"},
		{"truncated json", `{"workload":"stream-copy-16MB"`, "decoding request"},
		{"unknown field", `{"workload":"stream-copy-16MB","mode":"imt","wrokload":"typo"}`, "unknown field"},
		{"trailing garbage", `{"workload":"stream-copy-16MB","mode":"imt"} {"again":true}`, "trailing data"},
		{"wrong type", `{"workload":42,"mode":"imt"}`, "decoding request"},
		{"unknown workload", `{"workload":"no-such-workload","mode":"imt"}`, "unknown workload"},
		{"unknown mode", `{"workload":"stream-copy-16MB","mode":"quantum"}`, "unknown tagging mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, "/v1/sim", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %q)", rec.Code, rec.Body.String())
			}
			e := decodeBody[ErrorResponse](t, rec)
			if !strings.Contains(e.Error.Message, tc.wantInErr) {
				t.Errorf("error %q does not mention %q", e.Error.Message, tc.wantInErr)
			}
			if e.Error.Code != "bad_request" {
				t.Errorf("code = %q, want bad_request", e.Error.Code)
			}
		})
	}
	if st := s.Stats(); st.Errors != 0 {
		t.Errorf("client mistakes counted as server errors: %+v", st)
	}
}

// TestSimOK runs one real cell end to end through the handler.
func TestSimOK(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir()})
	h := s.Handler()
	body := `{"workload":"stream-copy-16MB","mode":"imt"}`
	rec := post(t, h, "/v1/sim", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	res := decodeBody[CellResult](t, rec)
	if res.Stats == nil || res.Stats.Cycles == 0 || res.Stats.WarpOps == 0 {
		t.Fatalf("empty stats: %+v", res)
	}
	if res.Cached || res.Coalesced {
		t.Errorf("first run cannot be cached/coalesced: %+v", res)
	}
	if res.CacheKey == "" {
		t.Error("missing cache key")
	}

	// Same cell again: the pre-admission cache fast path answers, with
	// bit-identical stats.
	rec2 := post(t, h, "/v1/sim", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm status = %d: %s", rec2.Code, rec2.Body.String())
	}
	res2 := decodeBody[CellResult](t, rec2)
	if !res2.Cached {
		t.Errorf("second run must be a cache hit: %+v", res2)
	}
	a, _ := json.Marshal(res.Stats)
	b, _ := json.Marshal(res2.Stats)
	if !bytes.Equal(a, b) {
		t.Error("cached stats differ from fresh stats")
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Cells != 2 {
		t.Errorf("stats after warm hit: %+v", st)
	}
}

// TestDeadlineExceeded504: a 1ms budget cannot simulate a 48MB
// streaming workload; the deadline must surface as 504, not 500 and
// not a hang.
func TestDeadlineExceeded504(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	rec := post(t, s.Handler(), "/v1/sim",
		`{"workload":"stream-triad-48MB","mode":"carve-low","timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("timeout not counted: %+v", st)
	}
}

// blockingHook is the deterministic slow simulation: execute enters,
// signals, and holds its admission slot until released.
type blockingHook struct {
	entered chan string // cell workload names, as executions start
	release chan struct{}
	runs    atomic.Int64
}

func newBlockingHook() *blockingHook {
	return &blockingHook{entered: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingHook) hook(ctx context.Context, cell cellSpec) outcome {
	b.runs.Add(1)
	b.entered <- cell.w.Name
	select {
	case <-b.release:
		return outcome{stats: gpusim.Stats{Cycles: 42, WarpOps: 1}}
	case <-ctx.Done():
		return outcome{err: ctx.Err()}
	}
}

func waitEntered(t *testing.T, b *blockingHook) string {
	t.Helper()
	select {
	case name := <-b.entered:
		return name
	case <-time.After(5 * time.Second):
		t.Fatal("execution never started")
		return ""
	}
}

// TestQueueFull429 pins the admission contract at the HTTP layer:
// Workers=1 and Queue=1 means one executing + one waiting; the third
// concurrent distinct request must get an immediate 429 with
// Retry-After while the other two eventually succeed.
func TestQueueFull429(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, Queue: 1})
	hook := newBlockingHook()
	s.simHook = hook.hook
	h := s.Handler()

	type reply struct {
		code int
		body string
	}
	fire := func(workload string) chan reply {
		ch := make(chan reply, 1)
		go func() {
			rec := post(t, h, "/v1/sim", `{"workload":"`+workload+`","mode":"imt"}`)
			ch <- reply{rec.Code, rec.Body.String()}
		}()
		return ch
	}

	first := fire("stream-copy-16MB")
	waitEntered(t, hook) // slot held
	second := fire("stream-scale-16MB")
	waitQueueDepth(t, s, 1) // queue full

	rec := post(t, h, "/v1/sim", `{"workload":"stream-add-16MB","mode":"imt"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	close(hook.release)
	for i, ch := range []chan reply{first, second} {
		select {
		case r := <-ch:
			if r.code != http.StatusOK {
				t.Errorf("admitted request %d = %d: %s", i, r.code, r.body)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("admitted request %d never completed", i)
		}
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

func waitQueueDepth(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, s.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing: a herd of identical requests shares one execution;
// distinct cells do not coalesce.
func TestCoalescing(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, Queue: 8})
	hook := newBlockingHook()
	s.simHook = hook.hook
	h := s.Handler()

	const herd = 5
	var wg sync.WaitGroup
	results := make([]CellResult, herd)
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, h, "/v1/sim", `{"workload":"stream-copy-16MB","mode":"imt"}`)
			codes[i] = rec.Code
			_ = json.Unmarshal(rec.Body.Bytes(), &results[i])
		}(i)
	}
	waitEntered(t, hook) // the leader is executing
	// Wait until every follower has joined the flight, then land it.
	waitCoalesced(t, s, herd-1)
	close(hook.release)
	wg.Wait()

	var coalesced int
	for i := range results {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d", i, codes[i])
		}
		if results[i].Coalesced {
			coalesced++
		}
		if results[i].Stats == nil || results[i].Stats.Cycles != 42 {
			t.Fatalf("request %d missing the shared stats: %+v", i, results[i])
		}
	}
	if coalesced != herd-1 {
		t.Errorf("coalesced = %d, want %d (exactly one leader)", coalesced, herd-1)
	}
	if runs := hook.runs.Load(); runs != 1 {
		t.Errorf("executions = %d, want 1: the herd must cost one simulation", runs)
	}
	if st := s.Stats(); st.CoalesceHits != herd-1 {
		t.Errorf("CoalesceHits = %d, want %d", st.CoalesceHits, herd-1)
	}
}

func waitCoalesced(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flights.mu.Lock()
		var waiting uint64
		// Followers are not observable directly; approximate by giving
		// them time to join and checking the flight exists.
		flights := len(s.flights.m)
		s.flights.mu.Unlock()
		if flights == 1 {
			// All goroutines were launched before the leader entered;
			// a short grace lets the followers reach the flight wait.
			time.Sleep(20 * time.Millisecond)
			return
		}
		_ = waiting
		if time.Now().After(deadline) {
			t.Fatalf("flight never formed (want %d followers)", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainingRejects: a draining server refuses new work with 503 +
// Retry-After; healthz reports it.
func TestDrainingRejects(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	h := s.Handler()
	s.SetDraining(true)
	rec := post(t, h, "/v1/sim", `{"workload":"stream-copy-16MB","mode":"imt"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining sim status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if rec := get(t, h, "/v1/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", rec.Code)
	}
	s.SetDraining(false)
	if rec := get(t, h, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthy healthz = %d, want 200", rec.Code)
	}
}

// TestGracefulDrain is the SIGTERM-equivalent shutdown contract (imtd
// maps SIGTERM to Daemon.Shutdown): in-flight requests complete with
// 200, Shutdown waits for them, and afterwards the socket is gone.
func TestGracefulDrain(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	hook := newBlockingHook()
	s.simHook = hook.hook

	d, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve()

	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post("http://"+d.Addr()+"/v1/sim", "application/json",
			strings.NewReader(`{"workload":"stream-copy-16MB","mode":"imt"}`))
		if err != nil {
			t.Error("in-flight request failed:", err)
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	waitEntered(t, hook)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- d.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(hook.release)
	select {
	case resp := <-inflight:
		if resp == nil {
			t.Fatal("in-flight request did not survive the drain")
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request status = %d, want 200", resp.StatusCode)
		}
		var res CellResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if res.Stats == nil || res.Stats.Cycles != 42 {
			t.Errorf("drained request lost its result: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never returned")
	}
	// The daemon is gone: new connections must fail.
	if _, err := http.Get("http://" + d.Addr() + "/v1/healthz"); err == nil {
		t.Error("server still answering after drain")
	}
	// Idempotent.
	if err := d.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestSweepStreaming runs a real two-cell sweep and checks the NDJSON
// framing: one line per cell, then a summary line with done=true.
func TestSweepStreaming(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir()})
	rec := post(t, s.Handler(), "/v1/sweep",
		`{"workloads":["stream-copy-16MB"],"modes":["none","imt"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var cells []CellResult
	var summary *SweepSummary
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Done != nil {
			if summary != nil {
				t.Fatal("two summary lines")
			}
			summary = &SweepSummary{}
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var cell CellResult
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatalf("bad cell line %q: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if len(cells) != 2 {
		t.Fatalf("cell lines = %d, want 2", len(cells))
	}
	if summary == nil || !summary.Done || summary.Cells != 2 || summary.Failed != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	for _, c := range cells {
		if c.Error != "" || c.Stats == nil {
			t.Errorf("cell %s/%s: %+v", c.Workload, c.Mode, c)
		}
	}
}

// TestSweepBadRequests covers the grid-expansion 400s.
func TestSweepBadRequests(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, MaxSweepCells: 3})
	h := s.Handler()
	cases := []struct {
		name, body, wantInErr string
	}{
		{"unknown suite", `{"suite":"NOPE","modes":["imt"]}`, "unknown suite"},
		{"unknown workload", `{"workloads":["nope"],"modes":["imt"]}`, "unknown workload"},
		{"no workloads", `{"modes":["imt"]}`, "needs workloads"},
		{"no modes", `{"workloads":["stream-copy-16MB"]}`, "at least one mode"},
		{"bad mode", `{"workloads":["stream-copy-16MB"],"modes":["imt","warp9"]}`, "unknown tagging mode"},
		{"over cap", `{"workloads":["stream-copy-16MB","stream-add-16MB"],"modes":["none","imt"]}`, "server cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, "/v1/sweep", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
			}
			e := decodeBody[ErrorResponse](t, rec)
			if !strings.Contains(e.Error.Message, tc.wantInErr) {
				t.Errorf("error %q does not mention %q", e.Error.Message, tc.wantInErr)
			}
			if e.Error.Code != "bad_request" {
				t.Errorf("code = %q, want bad_request", e.Error.Code)
			}
		})
	}
}

// TestWorkloadsAndStatsz sanity-checks the introspection endpoints.
func TestWorkloadsAndStatsz(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	h := s.Handler()
	rec := get(t, h, "/v1/workloads")
	if rec.Code != http.StatusOK {
		t.Fatalf("workloads = %d", rec.Code)
	}
	cat := decodeBody[CatalogResponse](t, rec)
	if len(cat.Workloads) != 193 || len(cat.Suites) != 3 || len(cat.Modes) == 0 {
		t.Fatalf("catalog: %d workloads, %d suites, %d modes",
			len(cat.Workloads), len(cat.Suites), len(cat.Modes))
	}
	rec = get(t, h, "/v1/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz = %d", rec.Code)
	}
	snap := decodeBody[StatsSnapshot](t, rec)
	// /v1/workloads and /v1/statsz are not counted as API requests;
	// only cell-serving endpoints are.
	if snap.Requests != 0 || snap.Draining {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestAdmissionUnit pins the controller's contract below HTTP.
func TestAdmissionUnit(t *testing.T) {
	a := newAdmission(1, 1, nil)
	ctx := context.Background()

	release1, err := a.acquire(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue.
	type acq struct {
		release func()
		err     error
	}
	second := make(chan acq, 1)
	go func() {
		r, err := a.acquire(ctx, false)
		second <- acq{r, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full: an impatient third caller is rejected now.
	if _, err := a.acquire(ctx, false); err != ErrQueueFull {
		t.Fatalf("third acquire err = %v, want ErrQueueFull", err)
	}
	// A patient caller is not subject to the bound, but respects ctx.
	pctx, cancel := context.WithCancel(ctx)
	patient := make(chan error, 1)
	go func() {
		_, err := a.acquire(pctx, true)
		patient <- err
	}()
	cancel()
	if err := <-patient; err != context.Canceled {
		t.Fatalf("patient acquire err = %v, want context.Canceled", err)
	}

	release1()
	release1() // idempotent
	got := <-second
	if got.err != nil {
		t.Fatalf("queued acquire: %v", got.err)
	}
	got.release()
	// Both slots free again: immediate acquire succeeds.
	r, err := a.acquire(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	r()
}
