package serve

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Daemon is a Server bound to a socket with a graceful-drain shutdown
// path: stop accepting, let in-flight requests finish, then return so
// the caller can flush metrics and the run manifest. cmd/imtd is a thin
// flag wrapper around it; tests drive it directly.
type Daemon struct {
	server  *Server
	http    *http.Server
	ln      net.Listener
	served  chan error
	serving atomic.Bool
	once    sync.Once
}

// Listen binds addr (":0" picks a free port) and returns the daemon
// without serving yet; Addr is valid immediately, so callers can
// advertise the bound port before Serve starts.
func (s *Server) Listen(addr string) (*Daemon, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Daemon{
		server: s,
		http: &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
		},
		ln:     ln,
		served: make(chan error, 1),
	}, nil
}

// Addr returns the bound address (host:port).
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Server returns the daemon's Server.
func (d *Daemon) Server() *Server { return d.server }

// Serve blocks handling requests until Shutdown (returns nil) or a
// listener error.
func (d *Daemon) Serve() error {
	d.serving.Store(true)
	err := d.http.Serve(d.ln)
	if err == http.ErrServerClosed {
		err = nil
	}
	d.served <- err
	return err
}

// Shutdown drains the daemon: the server flips to draining (new
// requests get 503 + Retry-After until the listener closes), the
// listener stops accepting, and in-flight requests — including
// streaming sweeps — run to completion before Shutdown returns. If ctx
// expires first, remaining connections are severed and ctx's error is
// returned. Idempotent; later calls return nil.
func (d *Daemon) Shutdown(ctx context.Context) error {
	var err error
	d.once.Do(func() {
		d.server.SetDraining(true)
		err = d.http.Shutdown(ctx)
		if err != nil {
			_ = d.http.Close()
		}
		// Wait for Serve to actually return so the caller can rebind the
		// port and trust that no handler goroutine is still writing.
		// A daemon that was bound but never served has nothing to wait
		// for (http.Shutdown already closed the listener).
		if d.serving.Load() {
			select {
			case serr := <-d.served:
				if err == nil {
					err = serr
				}
			case <-ctx.Done():
				if err == nil {
					err = ctx.Err()
				}
			}
		}
		// With the HTTP side quiet, stop the job scheduler and close the
		// WAL. Queued and running jobs stay durable and resume on the next
		// daemon start; draining job streams already told their clients
		// where to re-attach.
		if jerr := d.server.DrainJobs(ctx); err == nil {
			err = jerr
		}
	})
	return err
}
