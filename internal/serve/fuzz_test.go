package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// sweepEqual compares requests treating nil and empty slices as the
// same: omitempty drops an empty workloads list on re-marshal, and the
// server's grid expansion cannot tell the two apart either.
func sweepEqual(a, b SweepRequest) bool {
	if a.Suite != b.Suite || a.MaxCycles != b.MaxCycles ||
		a.SampleInterval != b.SampleInterval || a.TimeoutMs != b.TimeoutMs {
		return false
	}
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Workloads, b.Workloads) && eq(a.Modes, b.Modes)
}

// FuzzServeRequestDecode throws arbitrary bytes at both request
// decoders. The contract under fuzz:
//
//   - never panic, whatever the bytes;
//   - never allocate beyond the MaxRequestBytes read cap (a hostile
//     Content-Length or endless body cannot balloon the server);
//   - accepted inputs round-trip: re-marshaling the decoded struct and
//     decoding again yields the same value, so what the server acts on
//     is exactly what it would echo.
func FuzzServeRequestDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"workload":"stream-triad-48MB","mode":"carve-low"}`),
		[]byte(`{"workload":"stream-copy-16MB","mode":"imt","max_cycles":100000,"timeout_ms":5000}`),
		[]byte(`{"workloads":["stream-copy-16MB"],"suite":"STREAM","modes":["none","imt"]}`),
		[]byte(`{"suite":"MLPerf","modes":["carve-low"],"sample_interval":4096}`),
		[]byte(`{"tenant":"alice","suite":"STREAM","modes":["imt"],"timeout_ms":1000}`),
		[]byte(`{"workload":"x","mode":"imt"} trailing`),
		[]byte(`{"workload":42}`),
		[]byte(`{"wrokload":"typo"}`),
		[]byte(`[1,2,3]`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`{"modes":[`),
		[]byte("{\"workload\":\"\\u0000\"}"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > MaxRequestBytes {
			data = data[:MaxRequestBytes]
		}
		if sim, err := DecodeSimRequest(bytes.NewReader(data)); err == nil {
			blob, err := json.Marshal(sim)
			if err != nil {
				t.Fatalf("accepted SimRequest does not re-marshal: %v", err)
			}
			again, err := DecodeSimRequest(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("re-marshaled SimRequest rejected: %v (%s)", err, blob)
			}
			if sim != again {
				t.Fatalf("SimRequest round-trip drift: %+v vs %+v", sim, again)
			}
		}
		if sw, err := DecodeSweepRequest(bytes.NewReader(data)); err == nil {
			// Decoding can only have read capped input; its slices are
			// bounded by the bytes that produced them.
			if len(sw.Workloads) > MaxRequestBytes || len(sw.Modes) > MaxRequestBytes {
				t.Fatalf("decoded slices exceed the input cap: %d workloads, %d modes",
					len(sw.Workloads), len(sw.Modes))
			}
			blob, err := json.Marshal(sw)
			if err != nil {
				t.Fatalf("accepted SweepRequest does not re-marshal: %v", err)
			}
			again, err := DecodeSweepRequest(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("re-marshaled SweepRequest rejected: %v (%s)", err, blob)
			}
			if !sweepEqual(sw, again) {
				t.Fatalf("SweepRequest round-trip drift: %+v vs %+v", sw, again)
			}
		}
		if jr, err := DecodeJobRequest(bytes.NewReader(data)); err == nil {
			blob, err := json.Marshal(jr)
			if err != nil {
				t.Fatalf("accepted JobRequest does not re-marshal: %v", err)
			}
			again, err := DecodeJobRequest(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("re-marshaled JobRequest rejected: %v (%s)", err, blob)
			}
			if jr.Tenant != again.Tenant || !sweepEqual(jr.SweepRequest, again.SweepRequest) {
				t.Fatalf("JobRequest round-trip drift: %+v vs %+v", jr, again)
			}
		}
	})
}
