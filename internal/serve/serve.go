package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/apitypes"
	"repro/internal/serve/jobs"
	"repro/internal/serve/rooms"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently executing simulations (0 = GOMAXPROCS).
	Workers int
	// Queue bounds interactive requests waiting for a worker; beyond it
	// new requests get 429 + Retry-After (0 = 4×Workers).
	Queue int
	// CacheDir enables the shared on-disk result cache ("" disables it).
	CacheDir string
	// DefaultTimeout applies to requests without timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines and bounds whole sweeps
	// (0 = 5m).
	MaxTimeout time.Duration
	// MaxSweepCells caps the server-side grid expansion (0 = 4096).
	MaxSweepCells int
	// JobsDir enables the durable async job queue (POST /v1/jobs …),
	// persisting the job WAL under this directory ("" disables jobs; the
	// job endpoints then answer 404 not_found).
	JobsDir string
	// JobTTL is how long finished jobs are retained before GC
	// (0 = 1h).
	JobTTL time.Duration
	// JobWorkers bounds concurrently running jobs (0 = 2). Cells inside
	// a job still pass through admission control, so total simulation
	// concurrency never exceeds Workers.
	JobWorkers int
	// WatchSampleInterval is the sampling interval forced onto watch:true
	// requests that did not set one — live telemetry requires sampling
	// (0 = 50000 cycles).
	WatchSampleInterval uint64
	// RoomBuffer is the per-watcher frame buffer; a watcher this far
	// behind a room's broadcast is evicted (0 = the rooms default, 256).
	RoomBuffer int
	// RoomHistory bounds each room's replay history in frames
	// (0 = 65536).
	RoomHistory int
	// RoomTTL is how long a closed room stays replayable (0 = 2m).
	RoomTTL time.Duration
	// TraceDir enables the content-addressed trace store (POST /v1/traces
	// and trace:<digest> workloads; "" disables them — the trace routes
	// then answer 404).
	TraceDir string
	// TraceQuotaBytes caps the store's total blob bytes; over the cap the
	// least-recently-used unreferenced trace is evicted to make room
	// (0 = unbounded).
	TraceQuotaBytes int64
	// TraceTTL expires traces unused for this long (0 = keep forever).
	TraceTTL time.Duration
	// Debug mounts the obs debug mux (pprof, expvar, /metrics) on the
	// handler.
	Debug bool
	// Obs receives server telemetry (nil = a fresh hub).
	Obs *obs.Hub
	// Config is the simulated machine (zero NumSMs = gpusim.DefaultConfig).
	Config gpusim.Config
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 4 * o.Workers
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 4096
	}
	if o.WatchSampleInterval == 0 {
		o.WatchSampleInterval = 50000
	}
	if o.Obs == nil {
		o.Obs = obs.NewHub()
	}
	if o.Config.NumSMs == 0 {
		o.Config = gpusim.DefaultConfig()
	}
	return o
}

// Server serves simulation cells over HTTP. Construct with New, obtain
// the handler with Handler (httptest-friendly), or bind a socket with
// Listen for the daemon shape.
type Server struct {
	opts     Options
	hub      *obs.Hub
	eng      *runner.Engine
	cache    *runner.Cache
	adm      *admission
	flights  flightGroup
	byName   map[string]workload.Workload
	draining atomic.Bool
	started  time.Time
	manifest obs.Manifest
	jobStore *jobs.Store
	jobs     *jobs.Manager
	rooms    *rooms.Registry
	traces   *tracestore.Store

	// jobRooms maps job ID → telemetry room for watch:true jobs. The
	// mapping is in-memory like the rooms themselves: resumed jobs get a
	// fresh room on their first post-restart cell.
	jobRoomsMu sync.Mutex
	jobRooms   map[string]*rooms.Room

	mRequests  *obs.Counter
	mCells     *obs.Counter
	mCacheHits *obs.Counter
	mCoalesce  *obs.Counter
	mRejected  *obs.Counter
	mTimeouts  *obs.Counter
	mErrors    *obs.Counter
	mLatency   *obs.HistogramVec
	mQueueWait *obs.Histogram

	// simHook, when non-nil, replaces the engine run inside execute —
	// admission and coalescing still apply. Test seam: lets the suite
	// hold a slot open or fail deterministically without timing a real
	// simulation.
	simHook func(ctx context.Context, cell cellSpec) outcome
}

// New builds a server. The engine, admission controller and metrics are
// shared across every request the server will handle. With
// Options.JobsDir set, the job WAL is replayed and crash-interrupted
// jobs resume immediately; a corrupt WAL is the only error path.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		hub:     opts.Obs,
		started: time.Now(),
		byName:  make(map[string]workload.Workload),
	}
	for _, w := range workload.Catalog() {
		s.byName[w.Name] = w
	}
	s.eng = runner.New(opts.Config, s.engineOptions(opts.Config))
	if opts.CacheDir != "" {
		s.cache = runner.OpenCache(opts.CacheDir)
	}
	reg := s.hub.Metrics
	s.adm = newAdmission(opts.Workers, opts.Queue, reg)
	if reg != nil {
		s.mRequests = reg.Counter("serve_requests_total", "API requests received")
		s.mCells = reg.Counter("serve_cells_total", "cells served successfully")
		s.mCacheHits = reg.Counter("serve_cache_hits_total", "cells answered from the result cache")
		s.mCoalesce = reg.Counter("serve_coalesce_hits_total", "requests that shared another request's in-flight simulation")
		s.mRejected = reg.Counter("serve_rejected_total", "requests rejected with 429 (queue full)")
		s.mTimeouts = reg.Counter("serve_timeouts_total", "requests that exceeded their deadline (504)")
		s.mErrors = reg.Counter("serve_errors_total", "requests that failed with 500")
		s.mLatency = reg.HistogramVec("serve_request_seconds", "route", "end-to-end request latency by route", obs.DurationBuckets)
		s.mQueueWait = reg.Histogram("serve_queue_wait_seconds", "time spent waiting for an execution slot", obs.DurationBuckets)
	}
	s.rooms = rooms.NewRegistry(reg, rooms.Options{
		Buffer:  opts.RoomBuffer,
		History: opts.RoomHistory,
		TTL:     opts.RoomTTL,
	})
	s.jobRooms = make(map[string]*rooms.Room)
	s.manifest = obs.NewManifest("imtd", struct {
		Workers, Queue int
		CacheDir       string
		JobsDir        string
		Config         gpusim.Config
	}{opts.Workers, opts.Queue, opts.CacheDir, opts.JobsDir, opts.Config})
	if opts.JobsDir != "" {
		st, err := jobs.Open(opts.JobsDir)
		if err != nil {
			return nil, err
		}
		s.jobStore = st
		s.jobs = jobs.NewManager(st, jobs.ManagerOptions{
			Run:          s.runJobCell,
			JobWorkers:   opts.JobWorkers,
			CellParallel: opts.Workers,
			TTL:          opts.JobTTL,
			Registry:     reg,
		})
		if err := s.jobs.Start(); err != nil {
			return nil, err
		}
	}
	if opts.TraceDir != "" {
		// Opened after the job store so the InUse guard can see resumed
		// jobs: a trace referenced by a queued or running job is never
		// evicted or deleted out from under it.
		ts, err := tracestore.Open(tracestore.Options{
			Dir:        opts.TraceDir,
			QuotaBytes: opts.TraceQuotaBytes,
			TTL:        opts.TraceTTL,
			InUse:      s.traceInUse,
			Registry:   reg,
		})
		if err != nil {
			return nil, err
		}
		s.traces = ts
	}
	return s, nil
}

// traceInUse reports whether any non-terminal job references the trace:
// the store's eviction/delete guard. Jobs name trace cells as
// "trace:<digest>" in their sweep's Workloads or expanded Cells.
func (s *Server) traceInUse(digest string) bool {
	if s.jobStore == nil {
		return false
	}
	name := "trace:" + digest
	for _, info := range s.jobStore.List("") {
		if info.State.Terminal() {
			continue
		}
		for _, w := range info.Sweep.Workloads {
			if w == name {
				return true
			}
		}
		for _, ref := range info.Sweep.Cells {
			if ref.Workload == name {
				return true
			}
		}
	}
	return false
}

// engineOptions: the engine runs one job per call under serve's own
// admission control, so its internal worker bound is per-call (1 job =
// 1 worker) and concurrency is governed entirely by the admission
// slots.
func (s *Server) engineOptions(gpusim.Config) runner.Options {
	return runner.Options{Workers: 1, CacheDir: s.opts.CacheDir, Obs: s.hub}
}

// Hub returns the server's observability hub (metrics registry, trace
// recorder, cell log).
func (s *Server) Hub() *obs.Hub { return s.hub }

// Handler returns the server's HTTP handler:
//
//	POST   /v1/sim              one cell → CellResult JSON
//	POST   /v1/sweep            grid → NDJSON CellResult stream + SweepSummary
//	POST   /v1/jobs             durable job submit → JobInfo (202)
//	GET    /v1/jobs             job listing (?tenant= filters)
//	GET    /v1/jobs/{id}        job poll → JobInfo
//	GET    /v1/jobs/{id}/stream NDJSON JobFrame stream (?from=N resumes)
//	DELETE /v1/jobs/{id}        cancel → JobInfo
//	GET    /v1/watch/{room}     SSE telemetry stream (?from=N resumes)
//	GET    /v1/workloads        catalog listing
//	GET    /v1/statsz           StatsSnapshot (activity counters)
//	GET    /v1/healthz          200 ok / 503 draining
//
// plus, when Options.Debug is set, the obs debug mux (/metrics,
// /metrics.json, /debug/vars, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	if s.jobs != nil {
		mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	} else {
		mux.HandleFunc("/v1/jobs", s.handleJobsDisabled)
		mux.HandleFunc("/v1/jobs/", s.handleJobsDisabled)
	}
	if s.traces != nil {
		mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
		mux.HandleFunc("GET /v1/traces", s.handleTraceList)
		mux.HandleFunc("GET /v1/traces/{digest}", s.handleTraceGet)
		mux.HandleFunc("DELETE /v1/traces/{digest}", s.handleTraceDelete)
	} else {
		mux.HandleFunc("/v1/traces", s.handleTracesDisabled)
		mux.HandleFunc("/v1/traces/", s.handleTracesDisabled)
	}
	mux.HandleFunc("GET /v1/watch/{room}", s.handleWatch)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.opts.Debug {
		dbg := obs.DebugMux(s.hub.Metrics)
		mux.Handle("/debug/", dbg)
		mux.Handle("GET /metrics", dbg)
		mux.Handle("GET /metrics.json", dbg)
	}
	return mux
}

// cellSpec is one validated cell: a resolved workload (or stored-trace
// reference) and tagging configuration plus the request's knobs.
type cellSpec struct {
	// name is the request's workload spelling: a catalog name, or
	// "trace:<digest>" for a stored-trace cell.
	name string
	// w is the catalog workload; zero for trace cells, which carry the
	// store digest in traceDigest instead.
	w              workload.Workload
	traceDigest    string
	modeName       string
	mode           gpusim.TagMode
	carve          gpusim.CarveOut
	maxCycles      uint64
	sampleInterval uint64
}

func (s *Server) resolveCell(name, mode string, maxCycles, sampleInterval uint64) (cellSpec, error) {
	tm, carve, err := gpusim.ParseTagMode(mode)
	if err != nil {
		return cellSpec{}, err
	}
	cell := cellSpec{
		name:           name,
		modeName:       mode,
		mode:           tm,
		carve:          carve,
		maxCycles:      maxCycles,
		sampleInterval: sampleInterval,
	}
	if digest, ok := strings.CutPrefix(name, "trace:"); ok {
		if s.traces == nil {
			return cellSpec{}, fmt.Errorf("%w: trace store disabled (start the daemon with -trace-dir)", tracestore.ErrNotFound)
		}
		if !tracestore.ValidDigest(digest) {
			return cellSpec{}, fmt.Errorf("serve: malformed trace workload %q (want trace:<64 lowercase hex sha-256>)", name)
		}
		info, err := s.traces.Stat(digest)
		if err != nil {
			return cellSpec{}, err
		}
		if info.NumSMs > s.opts.Config.NumSMs {
			return cellSpec{}, fmt.Errorf("serve: trace %s… carries %d SM streams, machine has %d SMs",
				digest[:12], info.NumSMs, s.opts.Config.NumSMs)
		}
		cell.traceDigest = digest
		return cell, nil
	}
	w, ok := s.byName[name]
	if !ok {
		return cellSpec{}, fmt.Errorf("serve: unknown workload %q (GET /v1/workloads lists the catalog)", name)
	}
	cell.w = w
	return cell, nil
}

// resolveStatus maps a resolveCell/expandSweep failure onto the failure
// table: an absent trace digest is the typed 404 a gateway reacts to by
// re-uploading the blob; everything else is the client's 400.
func resolveStatus(err error) (int, string) {
	if errors.Is(err, tracestore.ErrNotFound) {
		return http.StatusNotFound, apitypes.CodeTraceNotFound
	}
	return http.StatusBadRequest, apitypes.CodeBadRequest
}

// cellConfig is the machine configuration the cell simulates under —
// the base machine plus the request's sampling interval. Mode and carve
// ride on the runner.Job (and are folded into the cache key by
// runner.CacheKeyFor).
func (s *Server) cellConfig(cell cellSpec) gpusim.Config {
	cfg := s.opts.Config
	cfg.SampleInterval = cell.sampleInterval
	return cfg
}

// runCell executes one cell through the full serving path: cache fast
// path, then singleflight coalescing on the cell's content key, then
// admission, then the engine. It never writes HTTP — handlers map the
// returned result + error to a status via statusFor. sink, when
// non-nil, receives the run's live telemetry samples; cached and
// coalesced-follower cells emit none (nothing is re-simulated — the
// watcher sees their cell-done frame only).
func (s *Server) runCell(ctx context.Context, cell cellSpec, patient bool, sink func(runner.LiveSample)) (CellResult, error) {
	t0 := time.Now()
	res := CellResult{Workload: cell.name, Mode: cell.modeName}
	job := runner.Job{
		Mode:      cell.mode,
		Carve:     cell.carve,
		MaxCycles: cell.maxCycles,
	}
	if cell.traceDigest != "" {
		// The trace identity is the key material; the replay itself is
		// attached by the singleflight leader inside execute, so cache
		// hits and coalesced followers never pin the blob.
		job.Key = cell.name
	} else {
		job.Workload = cell.w
	}
	cfg := s.cellConfig(cell)
	key, _ := runner.CacheKeyFor(cfg, job) // catalog and keyed trace cells are always cacheable
	res.CacheKey = shortKey(key)

	// Fast path: a warm cell costs one file read, no queue slot.
	if s.cache != nil {
		if st, ok := s.cache.Lookup(key); ok {
			s.count(s.mCacheHits)
			res.Cached = true
			res.Stats = &st
			res.ElapsedMs = millisSince(t0)
			return res, nil
		}
	}

	out, shared, err := s.flights.do(ctx, key, func() outcome {
		return s.execute(ctx, cfg, cell, job, patient, sink)
	})
	res.Coalesced = shared
	if shared {
		s.count(s.mCoalesce)
	}
	res.ElapsedMs = millisSince(t0)
	if err != nil {
		// The follower's own deadline expired while waiting on the
		// leader; the leader keeps running for everyone else.
		return res, err
	}
	if out.err != nil {
		return res, out.err
	}
	res.Cached = res.Cached || out.cached
	if out.cached {
		s.count(s.mCacheHits)
	}
	st := out.stats
	res.Stats = &st
	return res, nil
}

// execute is the singleflight leader's body: acquire an execution slot
// under the request's context, run the engine, and normalize the
// result.
func (s *Server) execute(ctx context.Context, cfg gpusim.Config, cell cellSpec, job runner.Job, patient bool, sink func(runner.LiveSample)) outcome {
	tQueue := time.Now()
	release, err := s.adm.acquire(ctx, patient)
	if s.mQueueWait != nil {
		s.mQueueWait.Observe(time.Since(tQueue).Seconds())
	}
	if err != nil {
		return outcome{err: err}
	}
	defer release()

	if s.simHook != nil {
		return s.simHook(ctx, cell)
	}
	if cell.traceDigest != "" {
		// Pin the blob for exactly the duration of the run. A digest that
		// resolved but is gone now was evicted in between; the typed
		// not-found propagates so a gateway can re-upload and retry.
		rep, err := s.traces.OpenReplay(cell.traceDigest)
		if err != nil {
			return outcome{err: err}
		}
		defer rep.Close()
		job.Traces = rep.Traces
	}
	eng := s.eng
	if cell.sampleInterval != 0 || sink != nil {
		// Sampling changes the machine config (and the cache key), so a
		// sampled cell runs on an ephemeral engine over the same hub and
		// cache directory; the shared registry metrics still accumulate.
		// A live sink rides the same path: it is per-request state, so it
		// must never be installed on the shared engine.
		eopts := s.engineOptions(cfg)
		eopts.OnSample = sink
		eng = runner.New(cfg, eopts)
	}
	results, runErr := eng.Run(ctx, []runner.Job{job})
	r := results[0]
	if r.Err == nil && runErr != nil {
		r.Err = runErr
	}
	if r.Err != nil {
		return outcome{err: r.Err}
	}
	// WithoutHost: responses are deterministic functions of the cell,
	// identical whether served fresh, coalesced or from cache.
	return outcome{stats: r.Stats.WithoutHost(), cached: r.Cached}
}

// statusFor maps an execution error onto the API's failure table: the
// HTTP status plus the envelope code clients dispatch on.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, apitypes.CodeBackpressure
	case errors.Is(err, tracestore.ErrNotFound):
		// The trace was evicted between resolve and execute; the typed
		// 404 tells a gateway to re-upload the blob and retry.
		return http.StatusNotFound, apitypes.CodeTraceNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, apitypes.CodeTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is never read but keeps logs
		// honest (499 is the de-facto client-closed-request code).
		return 499, apitypes.CodeCanceled
	default:
		return http.StatusInternalServerError, apitypes.CodeInternal
	}
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.count(s.mRequests)
	defer s.observeLatency(t0, "sim")
	if s.rejectDraining(w) {
		return
	}
	req, err := DecodeSimRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	if req.Watch && req.SampleInterval == 0 {
		req.SampleInterval = s.opts.WatchSampleInterval
	}
	cell, err := s.resolveCell(req.Workload, req.Mode, req.MaxCycles, req.SampleInterval)
	if err != nil {
		status, code := resolveStatus(err)
		s.writeError(w, status, code, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMs, s.opts.DefaultTimeout)
	defer cancel()
	var sink func(runner.LiveSample)
	var room *rooms.Room
	if req.Watch {
		// The join code rides in a header too, so a streaming-inclined
		// client could attach before the cell finishes; the JSON result
		// is the canonical carrier.
		room = s.rooms.Open()
		w.Header().Set("X-Watch-Room", room.Code())
		sink = roomSink(room, cellName(cell))
	}
	res, err := s.runCell(ctx, cell, false, sink)
	if room != nil {
		publishCellDone(room, res, err)
		room.Close(apitypes.WatchSummary{Done: true})
		res.WatchRoom = room.Code()
	}
	if err != nil {
		status, code := statusFor(err)
		s.writeError(w, status, code, err)
		return
	}
	s.count(s.mCells)
	writeJSON(w, http.StatusOK, res)
}

// cellName is the cell label telemetry frames carry: the request's own
// workload/mode spelling (not the runner's normalized mode name), so
// watchers demultiplex on the strings they asked for.
func cellName(cell cellSpec) string { return cell.name + "/" + cell.modeName }

// roomSink adapts a telemetry room into a runner live-sample sink for
// one cell.
func roomSink(room *rooms.Room, cell string) func(runner.LiveSample) {
	return func(ls runner.LiveSample) {
		smp := ls.Sample
		room.Publish(apitypes.WatchFrame{
			Cell:    cell,
			Key:     shortKey(ls.Key),
			CellSeq: ls.Seq,
			Sample:  &smp,
		})
	}
}

// publishCellDone emits the lifecycle frame that ends a cell's series
// (the only frame a cached or coalesced cell produces).
func publishCellDone(room *rooms.Room, res CellResult, err error) {
	f := apitypes.WatchFrame{
		Cell:    res.Workload + "/" + res.Mode,
		Key:     res.CacheKey,
		CellSeq: -1,
		Event:   apitypes.WatchEventCellDone,
		Cached:  res.Cached,
		Error:   res.Error,
	}
	if err != nil {
		f.Error = err.Error()
	}
	room.Publish(f)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.count(s.mRequests)
	defer s.observeLatency(t0, "sweep")
	if s.rejectDraining(w) {
		return
	}
	req, err := DecodeSweepRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, apitypes.CodeBadRequest, err)
		return
	}
	if req.Watch && req.SampleInterval == 0 {
		req.SampleInterval = s.opts.WatchSampleInterval
	}
	cells, err := s.expandSweep(req)
	if err != nil {
		status, code := resolveStatus(err)
		s.writeError(w, status, code, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMs, s.opts.MaxTimeout)
	defer cancel()

	var room *rooms.Room
	if req.Watch {
		// The join code must be available before the stream starts (the
		// whole point is watching the sweep live), so it goes out as a
		// response header ahead of the NDJSON body.
		room = s.rooms.Open()
		w.Header().Set("X-Watch-Room", room.Code())
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Every cell goes through the same coalesce+admission path as a
	// /v1/sim request, with patient admission: the sweep's concurrency
	// (bounded here to the worker count) is its flow control, so its
	// cells wait for slots instead of tripping the interactive queue
	// bound. Results stream in completion order.
	type numbered struct {
		res CellResult
		err error
	}
	done := make(chan numbered)
	sem := make(chan struct{}, s.opts.Workers)
	var wg sync.WaitGroup
	for _, cell := range cells {
		wg.Add(1)
		go func(cell cellSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var sink func(runner.LiveSample)
			if room != nil {
				sink = roomSink(room, cellName(cell))
			}
			res, err := s.runCell(ctx, cell, true, sink)
			done <- numbered{res, err}
		}(cell)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	summary := SweepSummary{Cells: len(cells)}
	for n := range done {
		res := n.res
		if n.err != nil {
			res.Error = n.err.Error()
			res.Stats = nil
			summary.Failed++
			s.countError(n.err)
		} else {
			s.count(s.mCells)
		}
		if room != nil {
			publishCellDone(room, res, nil)
			res.WatchRoom = room.Code()
		}
		if res.Cached {
			summary.Cached++
		}
		if res.Coalesced {
			summary.Coalesced++
		}
		if err := enc.Encode(res); err != nil {
			// The client hung up; drain the workers and stop writing.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if room != nil {
		room.Close(apitypes.WatchSummary{Done: true})
		summary.WatchRoom = room.Code()
	}
	summary.Done = true
	summary.ElapsedMs = millisSince(t0)
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// expandSweep turns a SweepRequest into its grid of cells:
// (named workloads ∪ suite members) × modes, deduplicated by workload
// name, order-preserving — plus any explicit req.Cells, appended in
// order and deduplicated against the product by (workload, mode). An
// explicit cell list is how a gateway scatters one shard's share of a
// grid, which is rarely a clean product.
func (s *Server) expandSweep(req SweepRequest) ([]cellSpec, error) {
	// names is the deduplicated workload axis: catalog names and
	// trace:<digest> references mix freely (resolveCell dispatches on
	// the prefix; validation happens per cell in the product loop).
	var names []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, name := range req.Workloads {
		if _, ok := s.byName[name]; !ok && !strings.HasPrefix(name, "trace:") {
			return nil, fmt.Errorf("serve: unknown workload %q", name)
		}
		add(name)
	}
	if req.Suite != "" {
		suite := workload.BySuite(req.Suite)
		if len(suite) == 0 {
			return nil, fmt.Errorf("serve: unknown suite %q (valid: %v)", req.Suite, workload.Suites())
		}
		for _, w := range suite {
			add(w.Name)
		}
	}
	if len(names) == 0 && len(req.Cells) == 0 {
		return nil, errors.New("serve: sweep needs workloads, a suite, and/or explicit cells")
	}
	if len(names) > 0 && len(req.Modes) == 0 {
		return nil, errors.New("serve: sweep needs at least one mode")
	}
	cells := make([]cellSpec, 0, len(names)*len(req.Modes)+len(req.Cells))
	for _, name := range names {
		for _, mode := range req.Modes {
			cell, err := s.resolveCell(name, mode, req.MaxCycles, req.SampleInterval)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	inGrid := make(map[apitypes.CellRef]bool, len(cells))
	for _, c := range cells {
		inGrid[apitypes.CellRef{Workload: c.name, Mode: c.modeName}] = true
	}
	for _, ref := range req.Cells {
		if inGrid[ref] {
			continue
		}
		inGrid[ref] = true
		cell, err := s.resolveCell(ref.Workload, ref.Mode, req.MaxCycles, req.SampleInterval)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	if len(cells) > s.opts.MaxSweepCells {
		return nil, fmt.Errorf("serve: sweep expands to %d cells, server cap is %d", len(cells), s.opts.MaxSweepCells)
	}
	return cells, nil
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	cat := workload.Catalog()
	resp := CatalogResponse{
		Workloads: make([]WorkloadInfo, 0, len(cat)),
		Suites:    workload.Suites(),
		Modes:     gpusim.TagModeNames(),
	}
	for _, wl := range cat {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:           wl.Name,
			Suite:          wl.Suite,
			Pattern:        wl.Pattern.String(),
			FootprintBytes: wl.FootprintBytes,
		})
	}
	sort.Slice(resp.Workloads, func(i, j int) bool { return resp.Workloads[i].Name < resp.Workloads[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// Stats returns the server's activity snapshot (the /v1/statsz body).
func (s *Server) Stats() StatsSnapshot {
	up := time.Since(s.started)
	snap := StatsSnapshot{
		Draining:      s.draining.Load(),
		UptimeMs:      float64(up) / float64(time.Millisecond),
		UptimeSeconds: up.Seconds(),
		// Build identity, so a watcher can tell which binary and machine
		// configuration it is observing.
		ConfigHash:  s.manifest.ConfigHash,
		GoVersion:   s.manifest.GoVersion,
		VCSRevision: s.manifest.VCSRevision,
		VCSModified: s.manifest.VCSModified,
	}
	if s.mRequests != nil {
		snap.Requests = s.mRequests.Value()
		snap.Cells = s.mCells.Value()
		snap.CacheHits = s.mCacheHits.Value()
		snap.CoalesceHits = s.mCoalesce.Value()
		snap.Rejected = s.mRejected.Value()
		snap.Timeouts = s.mTimeouts.Value()
		snap.Errors = s.mErrors.Value()
	}
	if s.adm.inflight != nil {
		snap.Inflight = int64(s.adm.inflight.Value())
	}
	snap.QueueDepth = s.adm.waiting.Load()
	if s.jobs != nil {
		js := s.jobs.Stats()
		snap.Jobs = &js
	}
	if s.rooms != nil {
		rs := s.rooms.Stats()
		snap.Rooms = &rs
	}
	if s.traces != nil {
		ts := s.traces.Stats()
		snap.Traces = &apitypes.TraceStoreStats{
			Blobs:      ts.Blobs,
			Bytes:      ts.Bytes,
			QuotaBytes: ts.QuotaBytes,
			Puts:       ts.Puts,
			PutHits:    ts.PutHits,
			Rejected:   ts.Rejected,
			Evictions:  ts.Evictions,
			Deletes:    ts.Deletes,
		}
	}
	return snap
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetDraining flips the server into (or out of) drain mode: new work is
// refused with 503 + Retry-After while in-flight requests run to
// completion. Daemon.Shutdown sets it before closing the listener.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// rejectDraining refuses new work during drain.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.writeError(w, http.StatusServiceUnavailable, apitypes.CodeDraining, errors.New("serve: draining"))
	return true
}

// requestContext derives the cell-execution context: the request's
// timeout_ms clamped to the server maximum, or fallback when unset.
func (s *Server) requestContext(parent context.Context, timeoutMs int64, fallback time.Duration) (context.Context, context.CancelFunc) {
	d := fallback
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return context.WithTimeout(parent, d)
}

// Manifest pins this server run: the construction-time identity plus
// current wall time, activity counters, metrics snapshot and the
// per-cell log. Call at drain time for the run manifest.
func (s *Server) Manifest() obs.Manifest {
	m := s.manifest
	m.WallSeconds = time.Since(s.started).Seconds()
	stats := s.Stats()
	m.Counters = map[string]uint64{
		"requests":      stats.Requests,
		"cells":         stats.Cells,
		"cache_hits":    stats.CacheHits,
		"coalesce_hits": stats.CoalesceHits,
		"rejected":      stats.Rejected,
		"timeouts":      stats.Timeouts,
		"errors":        stats.Errors,
	}
	if stats.Jobs != nil {
		m.Counters["jobs_submitted"] = stats.Jobs.Submitted
		m.Counters["jobs_done"] = stats.Jobs.Done
		m.Counters["jobs_failed"] = stats.Jobs.Failed
		m.Counters["jobs_canceled"] = stats.Jobs.Canceled
		m.Counters["jobs_resumed"] = stats.Jobs.ResumedJobs
		m.Counters["jobs_cells"] = stats.Jobs.Cells
		m.Counters["jobs_cells_resumed"] = stats.Jobs.CellsResumed
	}
	if s.hub.Metrics != nil {
		snap := s.hub.Metrics.Snapshot()
		m.Metrics = &snap
	}
	m.Cells = s.hub.Cells()
	return m
}

// writeError emits the uniform error envelope
// {"error":{"code","message","retry_after_ms"}} for status, bumping the
// matching counter and attaching Retry-After (header and JSON twin) to
// backpressure statuses.
func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	body := apitypes.ErrorBody{Code: code, Message: err.Error()}
	switch status {
	case http.StatusTooManyRequests:
		s.count(s.mRejected)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		body.RetryAfterMs = retryAfterSeconds * 1000
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		body.RetryAfterMs = retryAfterSeconds * 1000
	case http.StatusGatewayTimeout:
		s.count(s.mTimeouts)
	case http.StatusBadRequest, http.StatusNotFound, 499,
		http.StatusRequestEntityTooLarge, http.StatusConflict:
		// Client-side mistakes, hangups, over-quota uploads and in-use
		// deletes are not server failures.
	default:
		s.count(s.mErrors)
	}
	writeJSON(w, status, ErrorResponse{Error: body})
}

// countError bumps the counter matching err's failure class (the
// per-cell accounting inside a sweep stream, where no status is
// written).
func (s *Server) countError(err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.count(s.mRejected)
	case errors.Is(err, context.DeadlineExceeded):
		s.count(s.mTimeouts)
	case errors.Is(err, context.Canceled):
	default:
		s.count(s.mErrors)
	}
}

func (s *Server) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (s *Server) observeLatency(t0 time.Time, route string) {
	if s.mLatency != nil {
		s.mLatency.With(route).Observe(time.Since(t0).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func shortKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}

func millisSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}
