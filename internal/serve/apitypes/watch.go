package apitypes

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/gpusim"
)

// SSE event names on a GET /v1/watch/{room} stream. Every event's id:
// field carries the frame's room sequence number, so a standard
// EventSource reconnect (Last-Event-ID) and the explicit ?from=N resume
// agree on positions.
const (
	// WatchEventFrame carries one WatchFrame as JSON.
	WatchEventFrame = "frame"
	// WatchEventSummary carries one WatchSummary as JSON and ends the
	// stream (room closed, or the daemon is draining).
	WatchEventSummary = "summary"
)

// WatchFrame is one telemetry event of a room stream. Frames are
// room-sequenced (Seq, the resume cursor) and cell-sequenced (CellSeq,
// the sample's index within its cell run), so a watcher can both resume
// gaplessly and demultiplex a sweep's interleaved cells.
type WatchFrame struct {
	// Seq is the room-wide sequence number, dense from 0.
	Seq int `json:"seq"`
	// Cell names the cell ("workload/mode") the frame belongs to.
	Cell string `json:"cell"`
	// Key is a prefix of the cell's content-addressed cache key ("" for
	// cells without content identity).
	Key string `json:"key,omitempty"`
	// CellSeq is the 0-based sample index within the cell's run; -1 on
	// lifecycle frames (Event != "").
	CellSeq int `json:"cell_seq"`
	// Sample is the telemetry window on sample frames.
	Sample *gpusim.Sample `json:"sample,omitempty"`
	// Event marks cell lifecycle frames: "cell-done" (Cached/Error
	// qualify it). Cached cells emit no sample frames — their series was
	// never re-simulated — so the done frame is all a watcher sees.
	Event  string `json:"event,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// WatchEventCellDone is the Event value of a cell-completion frame.
const WatchEventCellDone = "cell-done"

// WatchSummary is the payload of the final "summary" SSE event. Done is
// true when the room closed because its source finished; Draining ends
// the stream early for daemon shutdown — re-attach at ?from=NextSeq
// (the client library's FollowWatch does this automatically; it also
// re-attaches after a slow-consumer eviction, which closes the stream
// without a summary).
type WatchSummary struct {
	Done     bool `json:"done"`
	Frames   int  `json:"frames"`
	NextSeq  int  `json:"next_seq"`
	Draining bool `json:"draining,omitempty"`
}

// SSEEvent is one wire event of a text/event-stream body: the subset of
// the SSE framing the watch API uses (id/event/data fields, comment
// lines for keep-alives).
type SSEEvent struct {
	ID    string
	Event string
	// Data is the event payload. Multi-line payloads are split across
	// data: lines on the wire and rejoined with \n on read, per the SSE
	// spec; watch payloads are single-line JSON.
	Data []byte
}

// AppendSSEEvent appends the wire encoding of e to dst and returns the
// extended slice (the append idiom keeps the hot broadcast path free of
// per-event buffer allocations).
func AppendSSEEvent(dst []byte, e SSEEvent) []byte {
	if e.ID != "" {
		dst = append(dst, "id: "...)
		dst = append(dst, e.ID...)
		dst = append(dst, '\n')
	}
	if e.Event != "" {
		dst = append(dst, "event: "...)
		dst = append(dst, e.Event...)
		dst = append(dst, '\n')
	}
	for _, line := range bytes.Split(e.Data, []byte("\n")) {
		dst = append(dst, "data: "...)
		dst = append(dst, line...)
		dst = append(dst, '\n')
	}
	return append(dst, '\n')
}

// ErrEventTooLarge reports an SSE event exceeding MaxRequestBytes; the
// reader stops before buffering more than that (the decode-side
// allocation cap, same contract as the JSON request decoders).
var ErrEventTooLarge = errors.New("apitypes: SSE event exceeds size cap")

// ReadSSEEvent reads one event from a text/event-stream body. It skips
// comment lines and blank lines between events, joins repeated data:
// fields with \n, ignores unknown fields, and returns io.EOF at a clean
// end of stream. A single event never buffers more than MaxRequestBytes
// regardless of input.
func ReadSSEEvent(br *bufio.Reader) (SSEEvent, error) {
	var e SSEEvent
	var data []byte
	sawField, sawData := false, false
	total := 0
	for {
		line, err := readSSELine(br, &total)
		if err != nil {
			if err == io.EOF && sawField {
				// Spec: an event not terminated by a blank line is not
				// dispatched.
				return SSEEvent{}, io.ErrUnexpectedEOF
			}
			return SSEEvent{}, err
		}
		if len(line) == 0 {
			if !sawField {
				continue // blank line between events
			}
			if sawData {
				e.Data = data
			}
			return e, nil
		}
		if line[0] == ':' {
			continue // comment / keep-alive
		}
		field, value := line, []byte(nil)
		if i := bytes.IndexByte(line, ':'); i >= 0 {
			field, value = line[:i], line[i+1:]
			if len(value) > 0 && value[0] == ' ' {
				value = value[1:]
			}
		}
		sawField = true
		switch string(field) {
		case "id":
			e.ID = string(value)
		case "event":
			e.Event = string(value)
		case "data":
			if sawData {
				data = append(data, '\n')
			}
			data = append(data, value...)
			sawData = true
		default:
			// Unknown fields (e.g. retry) are ignored per the SSE spec.
		}
	}
}

// readSSELine reads one \n-terminated line (without the terminator; a
// trailing \r is stripped for CRLF senders), charging its length
// against the caller's per-event budget.
func readSSELine(br *bufio.Reader, total *int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		*total += len(chunk)
		if *total > MaxRequestBytes {
			return nil, fmt.Errorf("%w (> %d bytes)", ErrEventTooLarge, MaxRequestBytes)
		}
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if err == io.EOF && len(line) > 0 {
				return nil, io.ErrUnexpectedEOF // truncated final line
			}
			return nil, err
		}
		line = line[:len(line)-1] // strip \n
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, nil
	}
}
