package apitypes

// Error codes: the closed set a /v1 client may dispatch on. The HTTP
// status is advisory (proxies rewrite statuses; codes survive).
const (
	// CodeBadRequest (400): malformed JSON, unknown field, unknown
	// workload/suite/mode, empty grid, grid larger than the sweep cap.
	CodeBadRequest = "bad_request"
	// CodeNotFound (404): no such job, no such room (never created, or
	// expired after close), or the job queue is disabled.
	CodeNotFound = "not_found"
	// CodeGone (410): the requested resume point has been evicted from a
	// room's bounded history; re-attach with a later ?from (or 0 for
	// whatever is still retained).
	CodeGone = "gone"
	// CodeBackpressure (429): the admission queue is full; retry after
	// the hinted delay.
	CodeBackpressure = "backpressure"
	// CodeDraining (503): the daemon is shutting down; retry against a
	// restarted daemon.
	CodeDraining = "draining"
	// CodeTimeout (504): the request's deadline elapsed server-side.
	CodeTimeout = "timeout"
	// CodeCanceled (499): the client went away mid-request.
	CodeCanceled = "canceled"
	// CodeInternal (500): simulation failure (config rejected, simulator
	// error, panic).
	CodeInternal = "internal"
	// CodeTraceNotFound (404): a trace:<digest> workload names a digest
	// this daemon's trace store does not hold (or the store is
	// disabled). Distinct from CodeNotFound so a gateway can react by
	// re-uploading the blob to the shard and retrying.
	CodeTraceNotFound = "trace_not_found"
	// CodeTraceQuota (413): a trace upload exceeds the store quota and
	// eviction could not make room (every resident blob is pinned or
	// job-referenced, or the upload alone is larger than the quota).
	CodeTraceQuota = "trace_quota"
	// CodeTraceInUse (409): DELETE refused because the trace is pinned
	// by a running replay or referenced by a queued job.
	CodeTraceInUse = "trace_in_use"
)

// ErrorBody is the payload of the uniform error envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail; clients must not dispatch on it.
	Message string `json:"message"`
	// RetryAfterMs, when nonzero, is the server's backoff hint — the
	// JSON twin of the Retry-After header, for callers that never see
	// headers (log pipelines, NDJSON consumers).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the body of every non-200 API response:
// {"error":{"code":"...","message":"...","retry_after_ms":...}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}
