package apitypes

import (
	"repro/internal/gpusim"
)

// MaxRequestBytes caps how much of a request body a decoder reads.
// Everything the API accepts fits comfortably in 1 MiB; a hostile
// Content-Length or an endless body cannot make either side allocate
// more than this (the FuzzServeRequestDecode contract).
const MaxRequestBytes = 1 << 20

// SimRequest asks for one simulation cell: a catalog workload under one
// tagging mode. It is the unit the server coalesces and caches.
type SimRequest struct {
	// Workload is a catalog workload name (GET /v1/workloads lists them).
	Workload string `json:"workload"`
	// Mode is a tagging-mode spelling accepted by gpusim.ParseTagMode:
	// none, imt, ecc-steal, carve-out, carve-low, carve-high, carve-mte,
	// bounds-table (alias: bounds).
	Mode string `json:"mode"`
	// MaxCycles caps the simulation (0 = the simulator's default guard).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// SampleInterval, when nonzero, records phase telemetry into the
	// result's stats.Samples every N cycles.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	// TimeoutMs bounds the request's wall time (0 = the server default;
	// values above the server maximum are clamped). An exceeded deadline
	// returns 504.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Watch opens a telemetry room for the cell and returns its join
	// code in the result's WatchRoom. Telemetry requires sampling, so a
	// zero SampleInterval is raised to the server's watch default.
	Watch bool `json:"watch,omitempty"`
}

// SweepRequest asks for a grid of cells, expanded server-side:
// (workloads ∪ suite) × modes, plus any explicitly listed Cells.
// POSTed to /v1/sweep the results stream back synchronously as NDJSON;
// wrapped in a JobRequest the same grid runs as a durable background
// job.
type SweepRequest struct {
	// Workloads names individual catalog workloads.
	Workloads []string `json:"workloads,omitempty"`
	// Suite adds every workload of a catalog suite (MLPerf, HPC+SLA,
	// STREAM). Workloads and Suite may be combined.
	Suite string `json:"suite,omitempty"`
	// Modes lists tagging modes; the grid is workloads × modes.
	Modes []string `json:"modes,omitempty"`
	// Cells names explicit cells, appended to (and deduplicated against)
	// the workloads × modes product. A sweep may consist of Cells alone —
	// this is how the imtgw gateway scatters an arbitrary subset of a
	// grid to one shard, which is never a clean product.
	Cells []CellRef `json:"cells,omitempty"`
	// MaxCycles / SampleInterval apply to every cell. TimeoutMs bounds
	// the whole sweep for /v1/sweep (0 = the server maximum); for a job
	// it bounds each cell instead, since a job's lifetime is unbounded.
	MaxCycles      uint64 `json:"max_cycles,omitempty"`
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	TimeoutMs      int64  `json:"timeout_ms,omitempty"`
	// Watch opens a telemetry room covering every cell of the grid. For
	// /v1/sweep the join code rides in the X-Watch-Room response header
	// (available before the stream starts) and is echoed in the final
	// SweepSummary; for a job it rides in the 202 JobInfo. A zero
	// SampleInterval is raised to the server's watch default.
	Watch bool `json:"watch,omitempty"`
}

// CellResult is one completed (or failed) cell. In a sweep stream,
// failed cells carry Error and no Stats; the stream keeps going.
type CellResult struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Cached reports that the result came from the on-disk cache (either
	// the server's pre-admission fast path or the engine's own lookup).
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that this request shared another in-flight
	// request's simulation instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// CacheKey is a prefix of the cell's content-addressed identity —
	// enough to correlate coalesced requests and cache entries in logs.
	CacheKey  string        `json:"cache_key,omitempty"`
	ElapsedMs float64       `json:"elapsed_ms"`
	Error     string        `json:"error,omitempty"`
	Stats     *gpusim.Stats `json:"stats,omitempty"`
	// WatchRoom is the telemetry room's join code when the request set
	// watch:true (GET /v1/watch/{room} replays and follows it).
	WatchRoom string `json:"watch_room,omitempty"`
	// Shard is the imtd shard that served the cell, annotated by the
	// imtgw gateway (absent on single-node responses).
	Shard string `json:"shard,omitempty"`
	// Rerouted marks a cell the gateway moved off its ring-preferred
	// shard — because that shard's stream failed mid-sweep or its
	// breaker was open when the cell was routed.
	Rerouted bool `json:"rerouted,omitempty"`
}

// SweepSummary is the final NDJSON line of a /v1/sweep stream.
type SweepSummary struct {
	Done      bool    `json:"done"`
	Cells     int     `json:"cells"`
	Failed    int     `json:"failed"`
	Cached    int     `json:"cached"`
	Coalesced int     `json:"coalesced"`
	// Rerouted counts cells a gateway moved to another shard after
	// their assigned shard failed mid-sweep (always 0 single-node).
	Rerouted  int     `json:"rerouted,omitempty"`
	// Shards counts the distinct shards that served cells of this sweep
	// (0 on single-node responses).
	Shards    int     `json:"shards,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// WatchRoom echoes the telemetry room's join code when the request
	// set watch:true (also sent early in the X-Watch-Room header).
	WatchRoom string `json:"watch_room,omitempty"`
}

// WorkloadInfo is one catalog entry in the GET /v1/workloads listing.
type WorkloadInfo struct {
	Name           string `json:"name"`
	Suite          string `json:"suite"`
	Pattern        string `json:"pattern"`
	FootprintBytes uint64 `json:"footprint_bytes"`
}

// CatalogResponse is the GET /v1/workloads body.
type CatalogResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
	Suites    []string       `json:"suites"`
	Modes     []string       `json:"modes"`
}

// StatsSnapshot is the GET /v1/statsz body: the server's own activity
// counters, the load generator's source of truth for coalesce and
// cache-hit assertions. Jobs is present only when the job queue is
// enabled.
type StatsSnapshot struct {
	Requests     uint64    `json:"requests"`
	Cells        uint64    `json:"cells"`
	CacheHits    uint64    `json:"cache_hits"`
	CoalesceHits uint64    `json:"coalesce_hits"`
	Rejected     uint64    `json:"rejected"`
	Timeouts     uint64    `json:"timeouts"`
	Errors       uint64    `json:"errors"`
	Inflight     int64     `json:"inflight"`
	QueueDepth   int64     `json:"queue_depth"`
	Draining     bool      `json:"draining"`
	UptimeMs     float64   `json:"uptime_ms"`
	// UptimeSeconds duplicates UptimeMs in seconds for human readers and
	// dashboards that bucket on seconds.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ConfigHash / GoVersion / VCSRevision / VCSModified identify the
	// build and simulator configuration a watcher is observing; they
	// mirror the run manifest's identity fields.
	ConfigHash  string     `json:"config_hash,omitempty"`
	GoVersion   string     `json:"go_version,omitempty"`
	VCSRevision string     `json:"vcs_revision,omitempty"`
	VCSModified bool       `json:"vcs_modified,omitempty"`
	Jobs        *JobStats  `json:"jobs,omitempty"`
	Rooms       *RoomStats `json:"rooms,omitempty"`
	// Traces is present only when the trace store is enabled
	// (-trace-dir); on a gateway it aggregates every reachable shard.
	Traces *TraceStoreStats `json:"traces,omitempty"`
}

// RoomStats is the telemetry-room section of StatsSnapshot, mirroring
// the serve_rooms_* registry metrics.
type RoomStats struct {
	// Open and Subscribers are current gauges.
	Open        int64 `json:"open"`
	Subscribers int64 `json:"subscribers"`
	// Frames and Drops are lifetime totals: frames published into rooms
	// and subscribers evicted for falling behind.
	Frames uint64 `json:"frames_total"`
	Drops  uint64 `json:"drops_total"`
}

// JobStats is the job-queue section of StatsSnapshot.
type JobStats struct {
	// Queued and Running count jobs currently in those states.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	// Submitted..Canceled are lifetime totals since daemon start.
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// ResumedJobs counts jobs that were non-terminal in the WAL at
	// daemon start and were re-enqueued.
	ResumedJobs uint64 `json:"resumed_jobs"`
	// Cells counts job cells completed this daemon lifetime;
	// CellsResumed counts cells recovered without recompute after a
	// restart (replayed WAL markers plus cache hits inside resumed
	// jobs); CellsFailed counts cells that finished with an error.
	Cells        uint64 `json:"cells"`
	CellsResumed uint64 `json:"cells_resumed"`
	CellsFailed  uint64 `json:"cells_failed"`
	// WALBytes is the current size of the job write-ahead log.
	WALBytes int64 `json:"wal_bytes"`
}

// CellRef names one cell of a job's grid: a catalog workload under one
// tagging mode. The job-wide MaxCycles/SampleInterval knobs ride on the
// job's SweepRequest.
type CellRef struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
}

// TraceInfo describes one stored trace: the resource body of
// GET /v1/traces/{digest} and DELETE /v1/traces/{digest}, and a row of
// the list response. Digest is the SHA-256 of the IMTTRC blob — the
// trace's content address and the spelling after "trace:" in workload
// names.
type TraceInfo struct {
	Digest   string `json:"digest"`
	Bytes    int64  `json:"bytes"`
	NumSMs   int    `json:"num_sms"`
	TotalOps uint64 `json:"total_ops"`
	// CreatedUnixMs is when the blob was first committed; LastUsedUnixMs
	// advances on re-upload and replay and drives LRU eviction.
	CreatedUnixMs  int64 `json:"created_unix_ms"`
	LastUsedUnixMs int64 `json:"last_used_unix_ms"`
}

// TraceUploadResponse is the POST /v1/traces body. Created
// distinguishes a fresh commit (201) from a content-address hit on a
// blob the store already held (200) — re-uploading is always safe and
// never re-spills the blob.
type TraceUploadResponse struct {
	TraceInfo
	Created bool `json:"created"`
}

// TraceListResponse is the GET /v1/traces body. Traces is sorted by
// digest; QuotaBytes is 0 when the store is unbounded.
type TraceListResponse struct {
	Traces     []TraceInfo `json:"traces"`
	TotalBytes int64       `json:"total_bytes"`
	QuotaBytes int64       `json:"quota_bytes,omitempty"`
}

// TraceStoreStats is the trace-store section of StatsSnapshot,
// mirroring the tracestore_* registry metrics.
type TraceStoreStats struct {
	// Blobs and Bytes are current gauges; QuotaBytes is the configured
	// cap (0 = unbounded).
	Blobs      int64 `json:"blobs"`
	Bytes      int64 `json:"bytes"`
	QuotaBytes int64 `json:"quota_bytes,omitempty"`
	// Puts..Deletes are lifetime totals since daemon start. PutHits
	// counts uploads that content-addressed an existing blob; Rejected
	// counts uploads refused (invalid stream or over quota); Evictions
	// counts LRU evictions making room for new uploads.
	Puts      uint64 `json:"puts"`
	PutHits   uint64 `json:"put_hits"`
	Rejected  uint64 `json:"rejected"`
	Evictions uint64 `json:"evictions"`
	Deletes   uint64 `json:"deletes"`
}

// JobRequest is the POST /v1/jobs body: a sweep grid to run as a
// durable background job. The embedded SweepRequest fields appear
// inline on the wire.
type JobRequest struct {
	// Tenant is the fairness bucket the job is scheduled under; jobs of
	// different tenants are started round-robin. Empty means the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	SweepRequest
}

// JobState is a job's lifecycle state. The state machine is
//
//	queued → running → done | failed
//	queued | running → canceled
//
// with running → queued again across a daemon restart (the job is
// re-enqueued and its Resumed flag set).
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final (done, failed, canceled).
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobInfo is the job resource: the POST /v1/jobs response and the
// GET /v1/jobs/{id} body.
type JobInfo struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// Sweep echoes the grid the job runs.
	Sweep SweepRequest `json:"sweep"`
	// Cells is the expanded grid size; DoneCells counts completed frames
	// (including failed cells); FailedCells the subset that failed;
	// ResumedCells the frames recovered without recompute after a
	// restart.
	Cells        int `json:"cells"`
	DoneCells    int `json:"done_cells"`
	FailedCells  int `json:"failed_cells"`
	ResumedCells int `json:"resumed_cells"`
	// Resumed reports that the job survived at least one daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// Error is set when State is failed.
	Error           string `json:"error,omitempty"`
	SubmittedUnixMs int64  `json:"submitted_unix_ms"`
	StartedUnixMs   int64  `json:"started_unix_ms,omitempty"`
	FinishedUnixMs  int64  `json:"finished_unix_ms,omitempty"`
	// WatchRoom is the telemetry room's join code when the job was
	// submitted with watch:true. Rooms are in-memory: the field is
	// present while the daemon that accepted the job is alive and the
	// room has not expired; it does not survive a restart.
	WatchRoom string `json:"watch_room,omitempty"`
}

// JobListResponse is the GET /v1/jobs body.
type JobListResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// JobFrame is one line of a GET /v1/jobs/{id}/stream NDJSON stream:
// cell results in completion order, numbered by a per-job sequence that
// is stable across daemon restarts. Re-attaching with ?from=N yields
// frames N, N+1, … with no gaps and no duplicates.
type JobFrame struct {
	Seq int `json:"seq"`
	// Resumed marks a frame recovered without recompute after a daemon
	// restart (WAL replay or cache hit inside a resumed job).
	Resumed bool       `json:"resumed,omitempty"`
	Cell    CellResult `json:"cell"`
}

// GatewaySnapshot is the imtgw gateway's GET /v1/statsz body: the
// embedded StatsSnapshot aggregates the counters of every reachable
// shard (so fleet-unaware tooling like imtload keeps working when
// pointed at a gateway), Gateway carries the gateway's own routing
// counters, and Shards is the per-shard breakdown.
type GatewaySnapshot struct {
	StatsSnapshot
	Gateway *GatewayStats   `json:"gateway,omitempty"`
	Shards  []ShardSnapshot `json:"shards,omitempty"`
}

// GatewayStats is the gateway's own activity: requests it routed and
// cells it delivered (as opposed to the aggregated shard counters).
type GatewayStats struct {
	Requests uint64 `json:"requests"`
	Cells    uint64 `json:"cells"`
	// Rerouted counts cells moved to another shard after a transport
	// failure or drain; ShardErrors counts the underlying shard
	// stream/request failures that caused rerouting.
	Rerouted    uint64 `json:"rerouted"`
	ShardErrors uint64 `json:"shard_errors"`
	// BreakerOpens counts closed/half-open → open transitions across the
	// fleet since gateway start.
	BreakerOpens uint64 `json:"breaker_opens"`
	// ShardsUp / ShardsTotal summarize fleet health (up = breaker not
	// open).
	ShardsUp    int `json:"shards_up"`
	ShardsTotal int `json:"shards_total"`
}

// Breaker states as rendered in ShardSnapshot.Breaker. A closed
// breaker routes normally; an open one is excluded from routing until
// a background health probe succeeds (→ half-open, tentatively
// routable); a second consecutive success closes it.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// ShardSnapshot is one shard's row in a GatewaySnapshot.
type ShardSnapshot struct {
	// Shard is the shard's base URL as configured on the gateway.
	Shard string `json:"shard"`
	// Breaker is the shard's breaker state (Breaker* constants).
	Breaker string `json:"breaker"`
	// Rerouted counts cells moved *away* from this shard.
	Rerouted uint64 `json:"rerouted"`
	// Error is set when the shard's /v1/statsz could not be fetched;
	// Stats is then nil and the shard is excluded from the aggregate.
	Error string         `json:"error,omitempty"`
	Stats *StatsSnapshot `json:"stats,omitempty"`
}

// JobStreamSummary is the final NDJSON line of a job stream. Done is
// true when the job reached a terminal state; a Draining summary ends
// the stream early because the daemon is shutting down — re-attach with
// ?from=NextSeq (the client library's FollowJob does this
// automatically).
type JobStreamSummary struct {
	Done     bool     `json:"done"`
	State    JobState `json:"state"`
	Cells    int      `json:"cells"`
	Failed   int      `json:"failed"`
	Resumed  int      `json:"resumed"`
	NextSeq  int      `json:"next_seq"`
	Draining bool     `json:"draining,omitempty"`
}
