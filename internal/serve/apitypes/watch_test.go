package apitypes

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gpusim"
)

func TestSSEEventRoundTrip(t *testing.T) {
	smp := &gpusim.Sample{Cycle: 1000, Cycles: 1000, BandwidthUtil: 0.5}
	frame := WatchFrame{Seq: 7, Cell: "stream-copy-16MB/imt", Key: "abcd1234", CellSeq: 3, Sample: smp}
	blob, err := json.Marshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	events := []SSEEvent{
		{ID: "7", Event: WatchEventFrame, Data: blob},
		{ID: "8", Event: WatchEventSummary, Data: []byte(`{"done":true,"frames":9,"next_seq":9}`)},
		{Data: []byte("bare data")},
		{ID: "1", Event: "x", Data: []byte("line1\nline2\n\nline4")},
		{ID: "only-id"},
	}
	var wire []byte
	for _, e := range events {
		wire = AppendSSEEvent(wire, e)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	for i, want := range events {
		got, err := ReadSSEEvent(br)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.ID != want.ID || got.Event != want.Event || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("event %d round-trip drift:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := ReadSSEEvent(br); err != io.EOF {
		t.Fatalf("after last event: err = %v, want io.EOF", err)
	}

	var decoded WatchFrame
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, frame) {
		t.Errorf("frame JSON drift: %+v vs %+v", decoded, frame)
	}
}

func TestReadSSEEventSkipsCommentsAndBlank(t *testing.T) {
	wire := ": keep-alive\n\n: another\nid: 5\nretry: 1000\ndata: hi\n\n"
	e, err := ReadSSEEvent(bufio.NewReader(strings.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "5" || string(e.Data) != "hi" {
		t.Errorf("got %+v", e)
	}
}

func TestReadSSEEventCRLF(t *testing.T) {
	wire := "id: 1\r\ndata: x\r\n\r\n"
	e, err := ReadSSEEvent(bufio.NewReader(strings.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "1" || string(e.Data) != "x" {
		t.Errorf("got %+v", e)
	}
}

func TestReadSSEEventTruncated(t *testing.T) {
	for _, wire := range []string{"id: 5\ndata: hi\n", "data: no newline"} {
		_, err := ReadSSEEvent(bufio.NewReader(strings.NewReader(wire)))
		if err != io.ErrUnexpectedEOF {
			t.Errorf("%q: err = %v, want io.ErrUnexpectedEOF", wire, err)
		}
	}
}

func TestReadSSEEventSizeCap(t *testing.T) {
	// An endless line must fail with ErrEventTooLarge, not balloon.
	endless := io.MultiReader(strings.NewReader("data: "), neverEnding('a'))
	_, err := ReadSSEEvent(bufio.NewReader(endless))
	if !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("err = %v, want ErrEventTooLarge", err)
	}
	// Same for unbounded repetition of small lines within one event.
	repeated := io.MultiReader(strings.NewReader(""), repeatReader("data: spam\n"))
	_, err = ReadSSEEvent(bufio.NewReader(repeated))
	if !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("repeated lines: err = %v, want ErrEventTooLarge", err)
	}
}

type neverEnding byte

func (b neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(b)
	}
	return len(p), nil
}

type repeatReader string

func (r repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r)
	for n < len(p) {
		n += copy(p[n:], r)
	}
	return n, nil
}

// FuzzWatchFrameDecode throws arbitrary bytes at the SSE reader. The
// contract: never panic; never buffer more than MaxRequestBytes per
// event; any event that reads back cleanly re-encodes to an event that
// reads back identical (encode → decode is the identity on the decoded
// set); frame payloads that parse as WatchFrame JSON survive a marshal
// round trip.
func FuzzWatchFrameDecode(f *testing.F) {
	frame, _ := json.Marshal(WatchFrame{Seq: 1, Cell: "w/imt", CellSeq: 0,
		Sample: &gpusim.Sample{Cycle: 50000, Cycles: 50000, BandwidthUtil: 0.25}})
	f.Add(AppendSSEEvent(nil, SSEEvent{ID: "1", Event: WatchEventFrame, Data: frame}))
	f.Add(AppendSSEEvent(nil, SSEEvent{ID: "2", Event: WatchEventSummary, Data: []byte(`{"done":true,"frames":3,"next_seq":3}`)}))
	f.Add([]byte(": keep-alive\n\nid: 3\ndata: a\ndata: b\n\n"))
	f.Add([]byte("id 5\nevent\ndata\n\n"))
	f.Add([]byte("data: \xff\xfe\n\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("id: 1\r\ndata: x\r\n\r\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			e, err := ReadSSEEvent(br)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrEventTooLarge) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(e.Data) > MaxRequestBytes {
				t.Fatalf("decoded payload %d bytes exceeds cap", len(e.Data))
			}
			// Re-encode and re-read: must be identical when the fields
			// are representable (no newlines in id/event — the encoder
			// would split them into invalid framing otherwise).
			if strings.ContainsAny(e.ID, "\n\r") || strings.ContainsAny(e.Event, "\n\r") || bytes.IndexByte(e.Data, '\r') >= 0 {
				continue
			}
			again, err := ReadSSEEvent(bufio.NewReader(bytes.NewReader(AppendSSEEvent(nil, e))))
			if err != nil {
				t.Fatalf("re-encoded event does not read back: %v", err)
			}
			// An empty Data round-trips as empty: the encoder always
			// writes one data: line, so nil comes back as [].
			if again.ID != e.ID || again.Event != e.Event || !bytes.Equal(again.Data, e.Data) {
				t.Fatalf("round-trip drift:\n got %+v\nwant %+v", again, e)
			}
			var wf WatchFrame
			if e.Event == WatchEventFrame && json.Unmarshal(e.Data, &wf) == nil {
				if blob, err := json.Marshal(wf); err != nil {
					t.Fatalf("decoded frame does not re-marshal: %v", err)
				} else {
					var wf2 WatchFrame
					if err := json.Unmarshal(blob, &wf2); err != nil || !reflect.DeepEqual(wf, wf2) {
						t.Fatalf("WatchFrame round-trip drift: %+v vs %+v (%v)", wf, wf2, err)
					}
				}
			}
		}
	})
}
