// Package apitypes is the single source of truth for the imtd wire
// protocol: every request body, response body and NDJSON frame that
// crosses the HTTP boundary is defined here, and the server
// (internal/serve), the client library (internal/serve/client) and the
// load checker (cmd/imtload) all share these definitions. Nothing else
// in the repository may define a type that is marshaled onto the wire —
// a lesson from the omitempty drift FuzzServeRequestDecode caught when
// server and client each carried their own copies.
//
// # Versioning and wire-compatibility policy
//
// The protocol is versioned by URL prefix: every endpoint lives under
// /v1/. Within a major version the rules are:
//
//   - Fields are never removed and never change JSON name or type.
//     A field that loses meaning keeps decoding and is documented as
//     deprecated.
//   - New fields may be added at any time, and must be optional:
//     absent-on-the-wire decodes to the zero value, and the zero value
//     means "prior behavior". Clients must therefore tolerate unknown
//     fields in responses (the std library json decoder does by
//     default; the *server* rejects unknown fields in requests, since a
//     misspelled parameter is a client bug, not a silent default).
//   - Error responses always carry the ErrorResponse envelope
//     {"error":{"code","message","retry_after_ms"}}. Codes are a closed
//     set per major version (see the Code* constants); new codes only
//     appear alongside new endpoints or a major-version bump. Clients
//     dispatch on Code, never on message text.
//   - NDJSON stream framing (one JSON value per line; the terminal line
//     carries "done":true) is part of the contract. Sweep streams end
//     with SweepSummary, job streams with JobStreamSummary, and a
//     stream without its terminal line means the connection was cut.
//   - Job frames carry a per-job sequence number that is stable across
//     daemon restarts: frame N of a job is the same cell result no
//     matter how many times the stream is re-attached or the daemon
//     relaunched. Resuming a stream from any sequence number yields
//     exactly the frames ≥ that number, no gaps and no duplicates.
//
// Anything that would break these rules goes to /v2/ with its own types
// alongside the /v1/ surface, never in place of it.
package apitypes
