package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/apitypes"
)

func del(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func waitJobState(t *testing.T, h http.Handler, id string, want apitypes.JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := get(t, h, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, rec.Code, rec.Body.String())
		}
		info := decodeBody[JobInfo](t, rec)
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s: %+v", id, info.State, want, info)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %+v)", id, want, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamJob collects a job stream's frames and summary from seq `from`.
func streamJob(t *testing.T, h http.Handler, id string, from int) ([]JobFrame, JobStreamSummary) {
	t.Helper()
	rec := get(t, h, fmt.Sprintf("/v1/jobs/%s/stream?from=%d", id, from))
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var frames []JobFrame
	var summary JobStreamSummary
	sawSummary := false
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 0, 64<<10), MaxRequestBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			State *apitypes.JobState `json:"state"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.State != nil {
			if sawSummary {
				t.Fatal("two summary lines")
			}
			sawSummary = true
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var f JobFrame
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("bad frame line %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	if !sawSummary {
		t.Fatalf("stream ended without a summary: %s", rec.Body.String())
	}
	return frames, summary
}

// TestJobLifecycle: submit → 202 queued, poll to done, stream all
// frames, resume the stream from a mid-point with no duplicates, list.
func TestJobLifecycle(t *testing.T) {
	s := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir(), JobsDir: t.TempDir()})
	defer s.KillJobs()
	h := s.Handler()

	rec := post(t, h, "/v1/jobs",
		`{"tenant":"alice","workloads":["stream-copy-16MB","stream-scale-16MB"],"modes":["none","imt"]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	info := decodeBody[JobInfo](t, rec)
	if info.ID == "" || info.Tenant != "alice" || info.Cells != 4 || info.State != apitypes.JobQueued {
		t.Fatalf("submitted = %+v", info)
	}

	final := waitJobState(t, h, info.ID, apitypes.JobDone)
	if final.DoneCells != 4 || final.FailedCells != 0 || final.Resumed {
		t.Fatalf("final = %+v", final)
	}

	frames, summary := streamJob(t, h, info.ID, 0)
	if len(frames) != 4 {
		t.Fatalf("frames = %d, want 4", len(frames))
	}
	for i, f := range frames {
		if f.Seq != i {
			t.Errorf("frame %d has seq %d", i, f.Seq)
		}
		if f.Cell.Error != "" || f.Cell.Stats == nil {
			t.Errorf("frame %d: %+v", i, f.Cell)
		}
	}
	if !summary.Done || summary.State != apitypes.JobDone || summary.Cells != 4 || summary.NextSeq != 4 {
		t.Fatalf("summary = %+v", summary)
	}

	// Detach/attach: from=2 yields exactly frames 2 and 3.
	tail, summary2 := streamJob(t, h, info.ID, 2)
	if len(tail) != 2 || tail[0].Seq != 2 || tail[1].Seq != 3 {
		t.Fatalf("resumed frames = %+v", tail)
	}
	if !summary2.Done || summary2.NextSeq != 4 {
		t.Fatalf("resumed summary = %+v", summary2)
	}

	// Listing, with and without the tenant filter.
	list := decodeBody[apitypes.JobListResponse](t, get(t, h, "/v1/jobs"))
	if len(list.Jobs) != 1 || list.Jobs[0].ID != info.ID {
		t.Fatalf("list = %+v", list)
	}
	if empty := decodeBody[apitypes.JobListResponse](t, get(t, h, "/v1/jobs?tenant=bob")); len(empty.Jobs) != 0 {
		t.Fatalf("bob's list = %+v", empty)
	}

	// statsz carries the job counters.
	snap := decodeBody[StatsSnapshot](t, get(t, h, "/v1/statsz"))
	if snap.Jobs == nil || snap.Jobs.Submitted != 1 || snap.Jobs.Done != 1 || snap.Jobs.Cells != 4 {
		t.Fatalf("statsz jobs = %+v", snap.Jobs)
	}
	if snap.Jobs.WALBytes <= 0 {
		t.Errorf("WALBytes = %d", snap.Jobs.WALBytes)
	}
}

func TestJobBadRequests(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, JobsDir: t.TempDir()})
	defer s.KillJobs()
	h := s.Handler()
	cases := []struct {
		name, body, wantInErr string
	}{
		{"not json", "nope", "decoding request"},
		{"unknown field", `{"tenannt":"typo","modes":["imt"]}`, "unknown field"},
		{"no workloads", `{"modes":["imt"]}`, "needs workloads"},
		{"unknown workload", `{"workloads":["nope"],"modes":["imt"]}`, "unknown workload"},
		{"no modes", `{"workloads":["stream-copy-16MB"]}`, "at least one mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, "/v1/jobs", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
			}
			e := decodeBody[ErrorResponse](t, rec)
			if e.Error.Code != apitypes.CodeBadRequest || !strings.Contains(e.Error.Message, tc.wantInErr) {
				t.Errorf("envelope = %+v", e.Error)
			}
		})
	}
	// Unknown ids: 404 with code not_found on every per-job route.
	for _, rec := range []*httptest.ResponseRecorder{
		get(t, h, "/v1/jobs/j-nope"),
		get(t, h, "/v1/jobs/j-nope/stream"),
		del(t, h, "/v1/jobs/j-nope"),
	} {
		if rec.Code != http.StatusNotFound {
			t.Fatalf("unknown id status = %d", rec.Code)
		}
		if e := decodeBody[ErrorResponse](t, rec); e.Error.Code != apitypes.CodeNotFound {
			t.Errorf("envelope = %+v", e.Error)
		}
	}
	// Bad from parameter.
	s2 := mustNew(t, Options{Workers: 1, JobsDir: t.TempDir()})
	defer s2.KillJobs()
	h2 := s2.Handler()
	sub := decodeBody[JobInfo](t, post(t, h2, "/v1/jobs", `{"workloads":["stream-copy-16MB"],"modes":["none"]}`))
	if rec := get(t, h2, "/v1/jobs/"+sub.ID+"/stream?from=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("from=-1 status = %d", rec.Code)
	}
}

// TestJobsDisabled: without JobsDir every job route answers 404 with an
// explanatory envelope instead of a blind mux miss.
func TestJobsDisabled(t *testing.T) {
	s := mustNew(t, Options{Workers: 1})
	h := s.Handler()
	for _, rec := range []*httptest.ResponseRecorder{
		post(t, h, "/v1/jobs", `{"workloads":["stream-copy-16MB"],"modes":["none"]}`),
		get(t, h, "/v1/jobs"),
		get(t, h, "/v1/jobs/j-x"),
		get(t, h, "/v1/jobs/j-x/stream"),
		del(t, h, "/v1/jobs/j-x"),
	} {
		if rec.Code != http.StatusNotFound {
			t.Fatalf("disabled status = %d: %s", rec.Code, rec.Body.String())
		}
		e := decodeBody[ErrorResponse](t, rec)
		if e.Error.Code != apitypes.CodeNotFound || !strings.Contains(e.Error.Message, "jobs-dir") {
			t.Errorf("envelope = %+v", e.Error)
		}
	}
	// statsz omits the jobs section entirely.
	if snap := decodeBody[StatsSnapshot](t, get(t, h, "/v1/statsz")); snap.Jobs != nil {
		t.Errorf("jobs section present without JobsDir: %+v", snap.Jobs)
	}
}

func TestJobCancelOverHTTP(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, JobsDir: t.TempDir()})
	defer s.KillJobs()
	hook := newBlockingHook()
	s.simHook = hook.hook
	h := s.Handler()

	info := decodeBody[JobInfo](t, post(t, h, "/v1/jobs",
		`{"workloads":["stream-copy-16MB","stream-scale-16MB"],"modes":["imt"]}`))
	waitEntered(t, hook) // one cell is executing

	rec := del(t, h, "/v1/jobs/"+info.ID)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", rec.Code, rec.Body.String())
	}
	if got := decodeBody[JobInfo](t, rec); got.State != apitypes.JobCanceled {
		t.Fatalf("after cancel = %+v", got)
	}
	close(hook.release)
	// The stream of a canceled job terminates with done=true.
	_, summary := streamJob(t, h, info.ID, 0)
	if !summary.Done || summary.State != apitypes.JobCanceled {
		t.Fatalf("summary = %+v", summary)
	}
}

// TestJobStreamEndsOnDrain: a stream attached to a running job ends
// with a resumable draining summary when the server drains, instead of
// hanging or lying done.
func TestJobStreamEndsOnDrain(t *testing.T) {
	s := mustNew(t, Options{Workers: 1, JobsDir: t.TempDir()})
	defer s.KillJobs()
	hook := newBlockingHook()
	s.simHook = hook.hook
	h := s.Handler()

	info := decodeBody[JobInfo](t, post(t, h, "/v1/jobs",
		`{"workloads":["stream-copy-16MB"],"modes":["imt"]}`))
	waitEntered(t, hook)

	type streamOut struct {
		frames  []JobFrame
		summary JobStreamSummary
	}
	out := make(chan streamOut, 1)
	go func() {
		frames, summary := streamJob(t, h, info.ID, 0)
		out <- streamOut{frames, summary}
	}()
	time.Sleep(50 * time.Millisecond) // let the stream attach
	s.SetDraining(true)
	defer s.SetDraining(false)

	select {
	case got := <-out:
		if got.summary.Done || !got.summary.Draining {
			t.Fatalf("drain summary = %+v", got.summary)
		}
		if got.summary.NextSeq != len(got.frames) {
			t.Fatalf("NextSeq = %d with %d frames", got.summary.NextSeq, len(got.frames))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on drain")
	}
	close(hook.release)
}

// canonicalJobLines reduces a finished job's frames to the canonical
// sorted {workload, mode, stats} lines — the byte-identity the resume
// contract promises. Cached/Coalesced/ElapsedMs legitimately differ
// between a resumed run and an uninterrupted one; the simulated physics
// must not.
func canonicalJobLines(t *testing.T, frames []JobFrame) []byte {
	t.Helper()
	lines := make([]string, 0, len(frames))
	for _, f := range frames {
		blob, err := json.Marshal(struct {
			Workload string      `json:"workload"`
			Mode     string      `json:"mode"`
			Stats    interface{} `json:"stats"`
		}{f.Cell.Workload, f.Cell.Mode, f.Cell.Stats})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(blob))
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n") + "\n")
}

// TestJobCrashRestartByteIdentical is the tentpole contract end to end,
// in process: run a real job halfway, kill the job subsystem with no
// goodbye writes (SIGKILL-equivalent), restart a second server over the
// same directories, and require (a) the job resumes rather than
// restarts — ≥1 cell recovered without recompute — and (b) the merged
// result set is byte-identical to an uninterrupted run on pristine
// directories.
func TestJobCrashRestartByteIdentical(t *testing.T) {
	jobsDir, cacheDir := t.TempDir(), t.TempDir()
	body := `{"workloads":["stream-copy-16MB","stream-scale-16MB","stream-add-16MB"],"modes":["none","imt"]}`
	const cells = 6

	// Life one: run until at least two cells are done, then die hard.
	s1 := mustNew(t, Options{Workers: 2, CacheDir: cacheDir, JobsDir: jobsDir})
	h1 := s1.Handler()
	info := decodeBody[JobInfo](t, post(t, h1, "/v1/jobs", body))
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := decodeBody[JobInfo](t, get(t, h1, "/v1/jobs/"+info.ID))
		if cur.DoneCells >= 2 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before the kill: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress before kill: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.KillJobs()

	// Life two: same directories. The WAL replays, the job requeues, and
	// completed cells come back as resumed frames.
	s2 := mustNew(t, Options{Workers: 2, CacheDir: cacheDir, JobsDir: jobsDir})
	defer s2.KillJobs()
	h2 := s2.Handler()
	final := waitJobState(t, h2, info.ID, apitypes.JobDone)
	if !final.Resumed {
		t.Fatalf("job not marked resumed: %+v", final)
	}
	if final.ResumedCells < 1 {
		t.Fatalf("ResumedCells = %d, want >= 1", final.ResumedCells)
	}
	if final.DoneCells != cells || final.FailedCells != 0 {
		t.Fatalf("final = %+v", final)
	}
	frames, summary := streamJob(t, h2, info.ID, 0)
	if len(frames) != cells || !summary.Done || summary.Resumed != final.ResumedCells {
		t.Fatalf("stream: %d frames, summary %+v", len(frames), summary)
	}
	resumed := 0
	for _, f := range frames {
		if f.Resumed {
			resumed++
		}
	}
	if resumed != final.ResumedCells {
		t.Errorf("resumed frames = %d, info says %d", resumed, final.ResumedCells)
	}

	// Uninterrupted baseline on pristine directories.
	s3 := mustNew(t, Options{Workers: 2, CacheDir: t.TempDir(), JobsDir: t.TempDir()})
	defer s3.KillJobs()
	h3 := s3.Handler()
	base := decodeBody[JobInfo](t, post(t, h3, "/v1/jobs", body))
	waitJobState(t, h3, base.ID, apitypes.JobDone)
	baseFrames, _ := streamJob(t, h3, base.ID, 0)

	got := canonicalJobLines(t, frames)
	want := canonicalJobLines(t, baseFrames)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result set differs from uninterrupted baseline:\n%s\nvs\n%s", got, want)
	}
}
