package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/serve/apitypes"
)

// record is one WAL line. T selects the variant; unused fields stay
// empty and are dropped by omitempty, keeping the log compact.
type record struct {
	T string `json:"t"`
	// T == "job": the submission, with the fully expanded grid.
	Job *jobRecord `json:"job,omitempty"`
	// T == "state": a transition for job ID.
	ID     string            `json:"id,omitempty"`
	State  apitypes.JobState `json:"state,omitempty"`
	Error  string            `json:"error,omitempty"`
	UnixMs int64             `json:"unix_ms,omitempty"`
	// T == "cell": completion marker Seq for job ID.
	Seq     int                  `json:"seq,omitempty"`
	Resumed bool                 `json:"resumed,omitempty"`
	Result  *apitypes.CellResult `json:"result,omitempty"`
}

const (
	recJob   = "job"
	recState = "state"
	recCell  = "cell"
	recGC    = "gc"
)

// jobRecord is the durable identity of a job: everything needed to
// rebuild and resume it. The grid is stored expanded so replay never
// depends on the workload catalog of the binary that wrote the log.
type jobRecord struct {
	ID              string                `json:"id"`
	Tenant          string                `json:"tenant"`
	Sweep           apitypes.SweepRequest `json:"sweep"`
	Cells           []apitypes.CellRef    `json:"cells"`
	SubmittedUnixMs int64                 `json:"submitted_unix_ms"`
}

// Job is the in-memory state of one job, rebuilt from the WAL on Open
// and mutated only through the Store (which appends the matching
// record first). Frames is the append-only result log; Done maps which
// grid cells already have a frame.
type Job struct {
	ID              string
	Tenant          string
	Sweep           apitypes.SweepRequest
	Cells           []apitypes.CellRef
	State           apitypes.JobState
	Error           string
	SubmittedUnixMs int64
	StartedUnixMs   int64
	FinishedUnixMs  int64
	Resumed         bool
	ResumedCells    int
	Frames          []apitypes.JobFrame
	done            map[apitypes.CellRef]bool

	// change is closed and replaced on every mutation; Store.Watch hands
	// it to stream subscribers.
	change chan struct{}
}

// Info snapshots the job as its wire representation.
func (j *Job) Info() apitypes.JobInfo {
	failed := 0
	for _, f := range j.Frames {
		if f.Cell.Error != "" {
			failed++
		}
	}
	return apitypes.JobInfo{
		ID:              j.ID,
		Tenant:          j.Tenant,
		State:           j.State,
		Sweep:           j.Sweep,
		Cells:           len(j.Cells),
		DoneCells:       len(j.Frames),
		FailedCells:     failed,
		ResumedCells:    j.ResumedCells,
		Resumed:         j.Resumed,
		Error:           j.Error,
		SubmittedUnixMs: j.SubmittedUnixMs,
		StartedUnixMs:   j.StartedUnixMs,
		FinishedUnixMs:  j.FinishedUnixMs,
	}
}

// walState is the replayed content of a WAL: the job table plus
// submission order.
type walState struct {
	jobs  map[string]*Job
	order []string
}

// apply folds one record into the state. A nil error means the record
// was consistent with everything before it; anything else makes the
// record invalid (which Open tolerates only at the tail of the log).
func (w *walState) apply(rec *record) error {
	switch rec.T {
	case recJob:
		if rec.Job == nil || rec.Job.ID == "" {
			return fmt.Errorf("jobs: job record without an id")
		}
		if _, ok := w.jobs[rec.Job.ID]; ok {
			return fmt.Errorf("jobs: duplicate job %s", rec.Job.ID)
		}
		j := &Job{
			ID:              rec.Job.ID,
			Tenant:          rec.Job.Tenant,
			Sweep:           rec.Job.Sweep,
			Cells:           rec.Job.Cells,
			State:           apitypes.JobQueued,
			SubmittedUnixMs: rec.Job.SubmittedUnixMs,
			done:            make(map[apitypes.CellRef]bool, len(rec.Job.Cells)),
			change:          make(chan struct{}),
		}
		w.jobs[j.ID] = j
		w.order = append(w.order, j.ID)
	case recState:
		j, ok := w.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("jobs: state record for unknown job %s", rec.ID)
		}
		switch rec.State {
		case apitypes.JobQueued:
			// running → queued is the crash-requeue transition.
			if j.State != apitypes.JobRunning && j.State != apitypes.JobQueued {
				return fmt.Errorf("jobs: %s: bad transition %s → queued", j.ID, j.State)
			}
		case apitypes.JobRunning:
			if j.State.Terminal() {
				return fmt.Errorf("jobs: %s: bad transition %s → running", j.ID, j.State)
			}
			if j.StartedUnixMs == 0 {
				j.StartedUnixMs = rec.UnixMs
			}
		case apitypes.JobDone, apitypes.JobFailed, apitypes.JobCanceled:
			if j.State.Terminal() {
				return fmt.Errorf("jobs: %s: bad transition %s → %s", j.ID, j.State, rec.State)
			}
			j.FinishedUnixMs = rec.UnixMs
			j.Error = rec.Error
		default:
			return fmt.Errorf("jobs: unknown state %q", rec.State)
		}
		j.State = rec.State
	case recCell:
		j, ok := w.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("jobs: cell record for unknown job %s", rec.ID)
		}
		if rec.Result == nil {
			return fmt.Errorf("jobs: %s: cell record without a result", j.ID)
		}
		if rec.Seq != len(j.Frames) {
			return fmt.Errorf("jobs: %s: cell seq %d, want %d", j.ID, rec.Seq, len(j.Frames))
		}
		ref := apitypes.CellRef{Workload: rec.Result.Workload, Mode: rec.Result.Mode}
		if j.done[ref] {
			return fmt.Errorf("jobs: %s: duplicate cell %s/%s", j.ID, ref.Workload, ref.Mode)
		}
		j.done[ref] = true
		j.Frames = append(j.Frames, apitypes.JobFrame{Seq: rec.Seq, Resumed: rec.Resumed, Cell: *rec.Result})
	case recGC:
		j, ok := w.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("jobs: gc record for unknown job %s", rec.ID)
		}
		delete(w.jobs, rec.ID)
		for i, id := range w.order {
			if id == j.ID {
				w.order = append(w.order[:i], w.order[i+1:]...)
				break
			}
		}
	default:
		return fmt.Errorf("jobs: unknown record type %q", rec.T)
	}
	return nil
}

// replay reads WAL bytes into a fresh state. It returns the number of
// bytes covered by cleanly applied records: a torn or corrupt *final*
// record is tolerated (err == nil, goodBytes stops before it — the
// crash-interrupted write), while a bad record with valid records after
// it is corruption and returns an error. Every frame of a non-terminal
// job is marked resumed: had it not been recorded, resuming the job
// would have to recompute it.
func replay(data []byte) (*walState, int64, error) {
	st := &walState{jobs: make(map[string]*Job)}
	var good int64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// No trailing newline: the final write was torn mid-line.
			return st, good, nil
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			good += int64(nl + 1)
			continue
		}
		var rec record
		bad := ""
		if err := json.Unmarshal(line, &rec); err != nil {
			bad = err.Error()
		} else if err := st.apply(&rec); err != nil {
			bad = err.Error()
		}
		if bad != "" {
			if len(bytes.TrimSpace(rest)) == 0 {
				// Only the final record is damaged: tolerate and truncate.
				return st, good, nil
			}
			return nil, good, fmt.Errorf("jobs: wal corrupt at byte %d: %s", good, bad)
		}
		good += int64(nl + 1)
	}
	for _, j := range st.jobs {
		if !j.State.Terminal() {
			if len(j.Frames) > 0 || j.State == apitypes.JobRunning {
				j.Resumed = true
			}
			j.ResumedCells = len(j.Frames)
			for i := range j.Frames {
				j.Frames[i].Resumed = true
			}
		}
	}
	return st, good, nil
}

// encodeState writes the canonical record sequence that reproduces st
// on replay — the compaction body. Records per job: the submission, a
// running transition when the job ever started, every frame, then the
// terminal transition when finished.
func encodeState(w io.Writer, st *walState) error {
	enc := json.NewEncoder(w)
	for _, id := range st.order {
		j := st.jobs[id]
		if err := enc.Encode(record{T: recJob, Job: &jobRecord{
			ID: j.ID, Tenant: j.Tenant, Sweep: j.Sweep, Cells: j.Cells,
			SubmittedUnixMs: j.SubmittedUnixMs,
		}}); err != nil {
			return err
		}
		if j.StartedUnixMs != 0 || j.State == apitypes.JobRunning {
			if err := enc.Encode(record{T: recState, ID: j.ID, State: apitypes.JobRunning, UnixMs: j.StartedUnixMs}); err != nil {
				return err
			}
		}
		for i := range j.Frames {
			f := &j.Frames[i]
			if err := enc.Encode(record{T: recCell, ID: j.ID, Seq: f.Seq, Resumed: f.Resumed, Result: &f.Cell}); err != nil {
				return err
			}
		}
		switch {
		case j.State.Terminal():
			if err := enc.Encode(record{T: recState, ID: j.ID, State: j.State, Error: j.Error, UnixMs: j.FinishedUnixMs}); err != nil {
				return err
			}
		case j.State == apitypes.JobQueued && j.StartedUnixMs != 0:
			// A requeued (crash-resumed) job: running above, queued now.
			if err := enc.Encode(record{T: recState, ID: j.ID, State: apitypes.JobQueued}); err != nil {
				return err
			}
		}
	}
	return nil
}
