package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/serve/apitypes"
)

// instantRun completes every cell immediately with deterministic stats.
func instantRun(_ context.Context, _ apitypes.JobInfo, ref apitypes.CellRef) (apitypes.CellResult, error) {
	return cellRes(ref, 100), nil
}

func waitState(t *testing.T, st *Store, id string, want apitypes.JobState) apitypes.JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, ok := st.Get(id)
		if ok && info.State == want {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (now %+v)", id, want, info)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestManagerRunsJobToDone(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	m := NewManager(st, ManagerOptions{Run: instantRun})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Kill()

	cells := grid("w1/imt", "w2/imt", "w3/imt")
	info, err := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, cells)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, st, info.ID, apitypes.JobDone)
	if final.DoneCells != 3 || final.FailedCells != 0 || final.Resumed {
		t.Fatalf("final = %+v", final)
	}
	frames, _, _ := st.Frames(info.ID, 0)
	if len(frames) != 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	js := m.Stats()
	if js.Submitted != 1 || js.Done != 1 || js.Cells != 3 || js.Queued != 0 || js.Running != 0 {
		t.Fatalf("stats = %+v", js)
	}
}

func TestManagerAllCellsFailedMeansJobFailed(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	m := NewManager(st, ManagerOptions{
		Run: func(_ context.Context, _ apitypes.JobInfo, ref apitypes.CellRef) (apitypes.CellResult, error) {
			return apitypes.CellResult{Workload: ref.Workload, Mode: ref.Mode, Error: "sim exploded"}, nil
		},
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	info, _ := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt", "w2/imt"))
	final := waitState(t, st, info.ID, apitypes.JobFailed)
	if final.FailedCells != 2 || final.Error != "sim exploded" {
		t.Fatalf("final = %+v", final)
	}
	if js := m.Stats(); js.Failed != 1 || js.CellsFailed != 2 {
		t.Fatalf("stats = %+v", js)
	}
}

// blockingRun gates cell execution: every call announces itself on
// started and waits for release (or ctx).
type blockingRun struct {
	started chan string // job tenant per starting cell
	release chan struct{}
}

func newBlockingRun() *blockingRun {
	return &blockingRun{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRun) run(ctx context.Context, job apitypes.JobInfo, ref apitypes.CellRef) (apitypes.CellResult, error) {
	b.started <- job.Tenant
	select {
	case <-b.release:
		return cellRes(ref, 100), nil
	case <-ctx.Done():
		return apitypes.CellResult{}, ctx.Err()
	}
}

func waitStarted(t *testing.T, b *blockingRun) string {
	t.Helper()
	select {
	case tenant := <-b.started:
		return tenant
	case <-time.After(10 * time.Second):
		t.Fatal("no cell started")
		return ""
	}
}

// TestTenantFairness: with one job worker, queued jobs of tenants
// alice, alice, bob, carol must start alice, bob, carol, alice — the
// scheduler round-robins across tenants instead of draining one
// tenant's backlog first.
func TestTenantFairness(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	hook := newBlockingRun()
	m := NewManager(st, ManagerOptions{Run: hook.run, JobWorkers: 1})

	sweep := apitypes.SweepRequest{Modes: []string{"imt"}}
	// Submit before Start so the scheduler sees all four at once.
	for _, tenant := range []string{"alice", "alice", "bob", "carol"} {
		if _, err := st.Submit(tenant, sweep, grid("w1/imt")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Kill()

	var order []string
	for i := 0; i < 4; i++ {
		tenant := waitStarted(t, hook)
		order = append(order, tenant)
		if i == 0 {
			close(hook.release) // later cells finish instantly
		}
	}
	want := []string{"alice", "bob", "carol", "alice"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("start order = %v, want %v", order, want)
		}
	}
}

// TestKillAndResume is the in-process crash test: kill the manager with
// a job half done, rebuild store+manager over the same directory, and
// watch the job finish without re-running completed cells.
func TestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	hook := newBlockingRun()
	var mu sync.Mutex
	ran := make(map[apitypes.CellRef]int)
	run := func(ctx context.Context, job apitypes.JobInfo, ref apitypes.CellRef) (apitypes.CellResult, error) {
		res, err := hook.run(ctx, job, ref)
		if err == nil {
			mu.Lock()
			ran[ref]++
			mu.Unlock()
		}
		return res, err
	}
	m := NewManager(st, ManagerOptions{Run: run, CellParallel: 1})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	cells := grid("w1/imt", "w2/imt", "w3/imt")
	info, err := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Let exactly one cell finish, then die with the second in flight.
	waitStarted(t, hook)
	hook.release <- struct{}{}
	waitStarted(t, hook)
	m.Kill()

	mu.Lock()
	if len(ran) != 1 {
		mu.Unlock()
		t.Fatalf("cells completed before kill = %v, want 1", ran)
	}
	mu.Unlock()

	// Second process over the same WAL.
	st2 := mustOpen(t, dir)
	hook2 := newBlockingRun()
	close(hook2.release)
	run2 := func(ctx context.Context, job apitypes.JobInfo, ref apitypes.CellRef) (apitypes.CellResult, error) {
		mu.Lock()
		ran[ref]++
		mu.Unlock()
		if !job.Resumed {
			t.Error("resumed job not marked Resumed")
		}
		return cellRes(ref, 100), nil
	}
	m2 := NewManager(st2, ManagerOptions{Run: run2})
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()

	final := waitState(t, st2, info.ID, apitypes.JobDone)
	if final.DoneCells != 3 || !final.Resumed || final.ResumedCells != 1 {
		t.Fatalf("final = %+v", final)
	}
	mu.Lock()
	defer mu.Unlock()
	for ref, n := range ran {
		if n != 1 {
			t.Errorf("cell %v ran %d times, want 1", ref, n)
		}
	}
	if len(ran) != 3 {
		t.Errorf("cells executed = %d, want 3 total across both lives", len(ran))
	}
	// Frame sequences are contiguous and stable.
	frames, _, _ := st2.Frames(info.ID, 0)
	for i, f := range frames {
		if f.Seq != i {
			t.Errorf("frame %d has seq %d", i, f.Seq)
		}
	}
	if !frames[0].Resumed || frames[1].Resumed || frames[2].Resumed {
		t.Errorf("resumed flags = %v %v %v, want true false false",
			frames[0].Resumed, frames[1].Resumed, frames[2].Resumed)
	}
	if js := m2.Stats(); js.ResumedJobs != 1 {
		t.Errorf("ResumedJobs = %d, want 1", js.ResumedJobs)
	}
}

func TestCancelRunningJob(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	hook := newBlockingRun()
	m := NewManager(st, ManagerOptions{Run: hook.run})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	info, _ := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt", "w2/imt"))
	waitStarted(t, hook)

	got, err := m.Cancel(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != apitypes.JobCanceled {
		t.Fatalf("after cancel: %+v", got)
	}
	// Cancel of a terminal job is a no-op.
	again, err := m.Cancel(info.ID)
	if err != nil || again.State != apitypes.JobCanceled {
		t.Fatalf("second cancel: %+v %v", again, err)
	}
	if _, err := m.Cancel("j-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v", err)
	}
	if js := m.Stats(); js.Canceled != 1 {
		t.Errorf("Canceled = %d", js.Canceled)
	}
}

func TestTTLGC(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	st.now = clock
	m := NewManager(st, ManagerOptions{Run: instantRun, TTL: time.Hour, Now: clock})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	info, _ := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt"))
	waitState(t, st, info.ID, apitypes.JobDone)

	// Within TTL: survives.
	if removed, err := m.GCNow(); err != nil || len(removed) != 0 {
		t.Fatalf("early GC: %v %v", removed, err)
	}
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	removed, err := m.GCNow()
	if err != nil || len(removed) != 1 || removed[0] != info.ID {
		t.Fatalf("late GC: %v %v", removed, err)
	}
	if _, ok := st.Get(info.ID); ok {
		t.Fatal("job survived TTL GC")
	}
}

// TestDrainLeavesWorkDurable: drain with a job mid-flight leaves it
// running in the WAL; the next manager requeues and finishes it.
func TestDrainLeavesWorkDurable(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	hook := newBlockingRun()
	m := NewManager(st, ManagerOptions{Run: hook.run})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	info, _ := m.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt"))
	waitStarted(t, hook)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st2 := mustOpen(t, dir)
	m2 := NewManager(st2, ManagerOptions{Run: instantRun})
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	defer m2.Kill()
	final := waitState(t, st2, info.ID, apitypes.JobDone)
	if !final.Resumed {
		t.Fatalf("final = %+v", final)
	}
}
