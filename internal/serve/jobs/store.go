package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/serve/apitypes"
)

// ErrNotFound is returned for operations on an unknown job id.
var ErrNotFound = errors.New("jobs: no such job")

// ErrTerminal is returned for mutations of a job already in a terminal
// state.
var ErrTerminal = errors.New("jobs: job already finished")

// errClosed is returned for operations on a closed store.
var errClosed = errors.New("jobs: store closed")

// walName is the store's single log file inside its directory.
const walName = "wal.log"

// Store is the durable job table: an in-memory map of jobs backed by
// the append-only WAL. Every mutation appends its record before the
// in-memory state changes; state transitions are additionally fsynced,
// so a job can never be observed in a state the disk does not know.
type Store struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	closed bool
	bytes  int64
	now    func() time.Time

	st *walState
}

// Open replays dir's WAL (creating the directory when absent) and
// returns the store positioned for appends. A torn final record — the
// write a crash interrupted — is truncated away; corruption earlier in
// the log is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	st, good, err := replay(data)
	if err != nil {
		return nil, err
	}
	if good < int64(len(data)) {
		// Drop the torn tail before appending anything after it.
		if err := os.Truncate(path, good); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:   dir,
		f:     f,
		bytes: good,
		now:   time.Now,
		st:    st,
	}, nil
}

// Close flushes and closes the WAL. Further mutations fail with
// errClosed; reads keep working on the replayed state.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALBytes reports the current log size.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// append writes one record (and its newline) to the WAL, fsyncing when
// sync is set. The caller holds s.mu and must only mutate the
// in-memory state after a nil return.
func (s *Store) append(rec *record, sync bool) error {
	if s.closed {
		return errClosed
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if _, err := s.f.Write(blob); err != nil {
		return err
	}
	s.bytes += int64(len(blob))
	if sync {
		return s.f.Sync()
	}
	return nil
}

// Submit records a new job and returns its snapshot. The grid must
// already be expanded and validated by the caller.
func (s *Store) Submit(tenant string, sweep apitypes.SweepRequest, cells []apitypes.CellRef) (apitypes.JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := newJobID()
	for s.st.jobs[id] != nil {
		id = newJobID()
	}
	jr := &jobRecord{
		ID:              id,
		Tenant:          tenant,
		Sweep:           sweep,
		Cells:           cells,
		SubmittedUnixMs: s.now().UnixMilli(),
	}
	rec := record{T: recJob, Job: jr}
	if err := s.append(&rec, true); err != nil {
		return apitypes.JobInfo{}, err
	}
	if err := s.st.apply(&rec); err != nil {
		return apitypes.JobInfo{}, err
	}
	return s.st.jobs[id].Info(), nil
}

// SetState records a transition. queued→running and any→terminal are
// the scheduler's moves; running→queued is the restart requeue. Errors:
// ErrNotFound, ErrTerminal (mutating a finished job), or the WAL write
// failure.
func (s *Store) SetState(id string, state apitypes.JobState, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.State.Terminal() {
		return ErrTerminal
	}
	rec := record{T: recState, ID: id, State: state, Error: errMsg, UnixMs: s.now().UnixMilli()}
	if err := s.append(&rec, true); err != nil {
		return err
	}
	if err := s.st.apply(&rec); err != nil {
		return err
	}
	s.notify(j)
	return nil
}

// AppendFrame records one completed cell and returns its sequence
// number. resumed marks a result recovered without recompute (a cache
// hit inside a resumed job). Frames of finished jobs are refused.
func (s *Store) AppendFrame(id string, res apitypes.CellResult, resumed bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return 0, ErrNotFound
	}
	if j.State.Terminal() {
		return 0, ErrTerminal
	}
	// Refuse duplicates before touching the log: a rejected apply after a
	// successful append would leave a record replay chokes on.
	if ref := (apitypes.CellRef{Workload: res.Workload, Mode: res.Mode}); j.done[ref] {
		return 0, fmt.Errorf("jobs: %s: cell %s/%s already recorded", id, ref.Workload, ref.Mode)
	}
	seq := len(j.Frames)
	rec := record{T: recCell, ID: id, Seq: seq, Resumed: resumed, Result: &res}
	if err := s.append(&rec, false); err != nil {
		return 0, err
	}
	if err := s.st.apply(&rec); err != nil {
		return 0, err
	}
	if resumed {
		j.ResumedCells++
	}
	s.notify(j)
	return seq, nil
}

// Get snapshots one job.
func (s *Store) Get(id string) (apitypes.JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return apitypes.JobInfo{}, false
	}
	return j.Info(), true
}

// List snapshots every job in submission order, optionally filtered by
// tenant ("" = all).
func (s *Store) List(tenant string) []apitypes.JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]apitypes.JobInfo, 0, len(s.st.order))
	for _, id := range s.st.order {
		j := s.st.jobs[id]
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, j.Info())
	}
	return out
}

// Frames returns a copy of the job's frames with sequence ≥ from, plus
// the job snapshot the copy is consistent with.
func (s *Store) Frames(id string, from int) ([]apitypes.JobFrame, apitypes.JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return nil, apitypes.JobInfo{}, false
	}
	if from < 0 {
		from = 0
	}
	var frames []apitypes.JobFrame
	if from < len(j.Frames) {
		frames = append(frames, j.Frames[from:]...)
	}
	return frames, j.Info(), true
}

// Watch returns a channel closed on the job's next mutation (frame
// appended or state changed) — the stream handler's wakeup.
func (s *Store) Watch(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return nil, false
	}
	return j.change, true
}

// notify wakes watchers of j. Caller holds s.mu.
func (s *Store) notify(j *Job) {
	close(j.change)
	j.change = make(chan struct{})
}

// PendingCells returns the grid cells without completion markers, in
// grid order — the work a (re)started job still owes.
func (s *Store) PendingCells(id string) []apitypes.CellRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.st.jobs[id]
	if !ok {
		return nil
	}
	var out []apitypes.CellRef
	for _, ref := range j.Cells {
		if !j.done[ref] {
			out = append(out, ref)
		}
	}
	return out
}

// NextQueued picks the next job to start: tenants in lexicographic
// order, starting strictly after afterTenant (wrapping), each tenant's
// oldest queued job first. Returns ok=false when nothing is queued.
func (s *Store) NextQueued(afterTenant string) (id, tenant string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldest := make(map[string]string) // tenant → oldest queued job id
	var tenants []string
	for _, jid := range s.st.order {
		j := s.st.jobs[jid]
		if j.State != apitypes.JobQueued {
			continue
		}
		if _, seen := oldest[j.Tenant]; !seen {
			oldest[j.Tenant] = jid
			tenants = append(tenants, j.Tenant)
		}
	}
	if len(tenants) == 0 {
		return "", "", false
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if t > afterTenant {
			return oldest[t], t, true
		}
	}
	// Wrap to the smallest tenant.
	return oldest[tenants[0]], tenants[0], true
}

// Requeue flips every replayed in-flight (running) job back to queued
// so the scheduler re-picks it. Returns the requeued plus
// already-queued resumed job ids. Called once at manager start.
func (s *Store) Requeue() (resumed []string, err error) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.st.order))
	for _, id := range s.st.order {
		j := s.st.jobs[id]
		if j.State == apitypes.JobRunning {
			ids = append(ids, id)
		} else if j.State == apitypes.JobQueued && j.Resumed {
			resumed = append(resumed, id)
		}
	}
	s.mu.Unlock()
	for _, id := range ids {
		if err := s.SetState(id, apitypes.JobQueued, ""); err != nil {
			return resumed, err
		}
		resumed = append(resumed, id)
	}
	return resumed, nil
}

// GC removes terminal jobs finished before cutoff, appending tombstones
// and compacting the WAL when anything was removed. Returns the removed
// ids.
func (s *Store) GC(cutoff time.Time) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []string
	cutoffMs := cutoff.UnixMilli()
	for _, id := range append([]string(nil), s.st.order...) {
		j := s.st.jobs[id]
		if !j.State.Terminal() || j.FinishedUnixMs > cutoffMs {
			continue
		}
		rec := record{T: recGC, ID: id}
		if err := s.append(&rec, false); err != nil {
			return removed, err
		}
		if err := s.st.apply(&rec); err != nil {
			return removed, err
		}
		removed = append(removed, id)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	return removed, s.compactLocked()
}

// compactLocked rewrites the WAL from live state via temp file + rename
// and swaps the append handle. Caller holds s.mu.
func (s *Store) compactLocked() error {
	if s.closed {
		return errClosed
	}
	path := filepath.Join(s.dir, walName)
	tmp, err := os.CreateTemp(s.dir, walName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := encodeState(tmp, s.st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	size, err := tmp.Seek(0, 2)
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old := s.f
	s.f = f
	s.bytes = size
	return old.Close()
}

// newJobID draws a random 16-hex-digit job id ("j-…"), unique across
// restarts without persisting a counter.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: crypto/rand: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}
