package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/gpusim"
	"repro/internal/serve/apitypes"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func grid(refs ...string) []apitypes.CellRef {
	out := make([]apitypes.CellRef, len(refs))
	for i, r := range refs {
		parts := strings.SplitN(r, "/", 2)
		out[i] = apitypes.CellRef{Workload: parts[0], Mode: parts[1]}
	}
	return out
}

func cellRes(ref apitypes.CellRef, cycles uint64) apitypes.CellResult {
	return apitypes.CellResult{
		Workload: ref.Workload,
		Mode:     ref.Mode,
		Stats:    &gpusim.Stats{Cycles: cycles, WarpOps: 1},
	}
}

func TestSubmitGetList(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()

	a, err := st.Submit("alice", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt", "w2/imt"))
	if err != nil {
		t.Fatal(err)
	}
	if a.State != apitypes.JobQueued || a.Cells != 2 || a.Tenant != "alice" {
		t.Fatalf("submitted = %+v", a)
	}
	if !strings.HasPrefix(a.ID, "j-") || len(a.ID) != 18 {
		t.Fatalf("id = %q", a.ID)
	}
	b, _ := st.Submit("bob", apitypes.SweepRequest{Modes: []string{"none"}}, grid("w1/none"))

	got, ok := st.Get(a.ID)
	if !ok || !reflect.DeepEqual(got, a) {
		t.Fatalf("Get = %+v, want %+v", got, a)
	}
	if _, ok := st.Get("j-nope"); ok {
		t.Fatal("Get on unknown id succeeded")
	}
	if all := st.List(""); len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("List order: %+v", all)
	}
	if bobs := st.List("bob"); len(bobs) != 1 || bobs[0].ID != b.ID {
		t.Fatalf("List(bob): %+v", bobs)
	}
}

func TestStateMachineAndFrames(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()
	cells := grid("w1/imt", "w2/imt")
	job, _ := st.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, cells)

	if err := st.SetState("j-nope", apitypes.JobRunning, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	if err := st.SetState(job.ID, apitypes.JobRunning, ""); err != nil {
		t.Fatal(err)
	}
	if seq, err := st.AppendFrame(job.ID, cellRes(cells[0], 10), false); err != nil || seq != 0 {
		t.Fatalf("frame 0: seq=%d err=%v", seq, err)
	}
	// A duplicate cell is refused without poisoning the WAL.
	if _, err := st.AppendFrame(job.ID, cellRes(cells[0], 10), false); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if pending := st.PendingCells(job.ID); len(pending) != 1 || pending[0] != cells[1] {
		t.Fatalf("pending = %+v", pending)
	}
	if seq, err := st.AppendFrame(job.ID, cellRes(cells[1], 20), false); err != nil || seq != 1 {
		t.Fatalf("frame 1: seq=%d err=%v", seq, err)
	}
	if err := st.SetState(job.ID, apitypes.JobDone, ""); err != nil {
		t.Fatal(err)
	}
	// Terminal jobs are immutable.
	if err := st.SetState(job.ID, apitypes.JobRunning, ""); !errors.Is(err, ErrTerminal) {
		t.Fatalf("terminal transition: %v", err)
	}
	if _, err := st.AppendFrame(job.ID, cellRes(cells[0], 10), false); !errors.Is(err, ErrTerminal) {
		t.Fatalf("terminal frame: %v", err)
	}
	info, _ := st.Get(job.ID)
	if info.State != apitypes.JobDone || info.DoneCells != 2 || info.FailedCells != 0 {
		t.Fatalf("final info = %+v", info)
	}
	frames, _, ok := st.Frames(job.ID, 1)
	if !ok || len(frames) != 1 || frames[0].Seq != 1 || frames[0].Cell.Stats.Cycles != 20 {
		t.Fatalf("Frames(1) = %+v", frames)
	}
	// The duplicate attempt must not have landed in the log: a reopen
	// replays cleanly.
	dir := st.dir
	st.Close()
	st2 := mustOpen(t, dir)
	defer st2.Close()
	got, _ := st2.Get(job.ID)
	if !reflect.DeepEqual(got, info) {
		t.Fatalf("reopen: %+v, want %+v", got, info)
	}
}

// TestReopenReplayIdentity is the crash-recovery core: WAL write →
// reopen → replay yields identical state, with resume markers on the
// job that was mid-flight.
func TestReopenReplayIdentity(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	cells := grid("w1/imt", "w2/imt", "w3/imt")

	finished, _ := st.Submit("a", apitypes.SweepRequest{Modes: []string{"imt"}}, cells[:2])
	_ = st.SetState(finished.ID, apitypes.JobRunning, "")
	_, _ = st.AppendFrame(finished.ID, cellRes(cells[0], 1), false)
	_, _ = st.AppendFrame(finished.ID, cellRes(cells[1], 2), false)
	_ = st.SetState(finished.ID, apitypes.JobDone, "")

	inflight, _ := st.Submit("b", apitypes.SweepRequest{Modes: []string{"imt"}}, cells)
	_ = st.SetState(inflight.ID, apitypes.JobRunning, "")
	_, _ = st.AppendFrame(inflight.ID, cellRes(cells[0], 3), false)

	wantFinished, _ := st.Get(finished.ID)
	st.Close()

	st2 := mustOpen(t, dir)
	defer st2.Close()
	gotFinished, ok := st2.Get(finished.ID)
	if !ok || !reflect.DeepEqual(gotFinished, wantFinished) {
		t.Fatalf("finished job drifted across reopen:\n got %+v\nwant %+v", gotFinished, wantFinished)
	}
	got, ok := st2.Get(inflight.ID)
	if !ok {
		t.Fatal("in-flight job lost")
	}
	if !got.Resumed || got.ResumedCells != 1 || got.DoneCells != 1 || got.State != apitypes.JobRunning {
		t.Fatalf("in-flight job after replay = %+v", got)
	}
	frames, _, _ := st2.Frames(inflight.ID, 0)
	if len(frames) != 1 || !frames[0].Resumed || frames[0].Seq != 0 {
		t.Fatalf("replayed frames = %+v", frames)
	}
	if pending := st2.PendingCells(inflight.ID); len(pending) != 2 {
		t.Fatalf("pending after replay = %+v", pending)
	}
	// Requeue flips it back to queued and reports it resumed.
	resumed, err := st2.Requeue()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != inflight.ID {
		t.Fatalf("resumed = %v", resumed)
	}
	got, _ = st2.Get(inflight.ID)
	if got.State != apitypes.JobQueued {
		t.Fatalf("after requeue: %+v", got)
	}
}

// TestTornFinalRecord: a crash mid-write leaves a torn last line; Open
// must tolerate it, truncate it away, and keep appending cleanly.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	job, _ := st.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt"))
	st.Close()

	path := filepath.Join(dir, walName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, torn := range []string{
		`{"t":"state","id":"` + job.ID + `","state":"run`, // cut mid-value, no newline
		`{"t":"cell","id":"` + job.ID + "\n",              // syntactically broken line
		"\x00\x00\x00\x00",                                // binary garbage
	} {
		if err := os.WriteFile(path, append(append([]byte(nil), clean...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir)
		if err != nil {
			t.Fatalf("torn tail %q: %v", torn, err)
		}
		if _, ok := st2.Get(job.ID); !ok {
			t.Fatalf("torn tail %q: job lost", torn)
		}
		if st2.WALBytes() != int64(len(clean)) {
			t.Fatalf("torn tail %q: WALBytes = %d, want %d", torn, st2.WALBytes(), len(clean))
		}
		// The store is fully usable after truncation.
		if err := st2.SetState(job.ID, apitypes.JobRunning, ""); err != nil {
			t.Fatalf("append after truncation: %v", err)
		}
		st2.Close()
		st3 := mustOpen(t, dir)
		if got, _ := st3.Get(job.ID); got.State != apitypes.JobRunning {
			t.Fatalf("torn tail %q: state after reopen = %+v", torn, got)
		}
		st3.Close()
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMidFileCorruption: damage followed by valid records is real
// corruption, not a torn write — Open must refuse it.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	job, _ := st.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt"))
	_ = st.SetState(job.ID, apitypes.JobRunning, "")
	st.Close()

	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 WAL lines, got %d", len(lines))
	}
	corrupt := "not json at all\n" + lines[1]
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open on mid-file corruption: %v", err)
	}
}

func TestNextQueuedFairness(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()
	g := grid("w1/imt")
	sweep := apitypes.SweepRequest{Modes: []string{"imt"}}
	a1, _ := st.Submit("alice", sweep, g)
	a2, _ := st.Submit("alice", sweep, g)
	b1, _ := st.Submit("bob", sweep, g)
	c1, _ := st.Submit("carol", sweep, g)

	// Round-robin from the empty cursor: alice (oldest job), bob, carol,
	// then wrap back to alice's next job.
	wantOrder := []string{a1.ID, b1.ID, c1.ID, a2.ID}
	cursor := ""
	for i, want := range wantOrder {
		id, tenant, ok := st.NextQueued(cursor)
		if !ok {
			t.Fatalf("step %d: nothing queued", i)
		}
		if id != want {
			t.Fatalf("step %d: picked %s, want %s", i, id, want)
		}
		if err := st.SetState(id, apitypes.JobRunning, ""); err != nil {
			t.Fatal(err)
		}
		cursor = tenant
	}
	if _, _, ok := st.NextQueued(cursor); ok {
		t.Fatal("queue should be empty")
	}
}

func TestGCAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	defer st.Close()
	base := time.Now()
	st.now = func() time.Time { return base }
	cells := grid("w1/imt", "w2/imt")
	sweep := apitypes.SweepRequest{Modes: []string{"imt"}}

	old, _ := st.Submit("t", sweep, cells)
	_ = st.SetState(old.ID, apitypes.JobRunning, "")
	_, _ = st.AppendFrame(old.ID, cellRes(cells[0], 1), false)
	_, _ = st.AppendFrame(old.ID, cellRes(cells[1], 2), false)
	_ = st.SetState(old.ID, apitypes.JobDone, "")

	st.now = func() time.Time { return base.Add(2 * time.Hour) }
	fresh, _ := st.Submit("t", sweep, cells)
	_ = st.SetState(fresh.ID, apitypes.JobRunning, "")
	_, _ = st.AppendFrame(fresh.ID, cellRes(cells[0], 3), false)
	live, _ := st.Get(fresh.ID)

	grew := st.WALBytes()
	removed, err := st.GC(base.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != old.ID {
		t.Fatalf("removed = %v", removed)
	}
	if _, ok := st.Get(old.ID); ok {
		t.Fatal("GC'd job still visible")
	}
	if st.WALBytes() >= grew {
		t.Fatalf("compaction did not shrink the WAL: %d -> %d", grew, st.WALBytes())
	}
	// Survivors are intact, in the same state, and durable.
	got, ok := st.Get(fresh.ID)
	if !ok || !reflect.DeepEqual(got, live) {
		t.Fatalf("survivor drifted: %+v, want %+v", got, live)
	}
	if err := st.SetState(fresh.ID, apitypes.JobDone, ""); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
	st.Close()
	st2 := mustOpen(t, dir)
	defer st2.Close()
	if _, ok := st2.Get(old.ID); ok {
		t.Fatal("GC'd job resurrected by replay")
	}
	if got, _ := st2.Get(fresh.ID); got.State != apitypes.JobDone || got.DoneCells != 1 {
		t.Fatalf("survivor after reopen = %+v", got)
	}
	// Nothing eligible: GC is a no-op that does not rewrite the log.
	before := st2.WALBytes()
	if removed, err := st2.GC(base.Add(time.Hour)); err != nil || removed != nil {
		t.Fatalf("idle GC: %v %v", removed, err)
	}
	if st2.WALBytes() != before {
		t.Fatal("idle GC rewrote the WAL")
	}
}

func TestClosedStoreRefusesMutations(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	job, _ := st.Submit("t", apitypes.SweepRequest{Modes: []string{"imt"}}, grid("w1/imt"))
	st.Close()
	if _, err := st.Submit("t", apitypes.SweepRequest{}, grid("w2/imt")); !errors.Is(err, errClosed) {
		t.Fatalf("Submit on closed store: %v", err)
	}
	if err := st.SetState(job.ID, apitypes.JobRunning, ""); !errors.Is(err, errClosed) {
		t.Fatalf("SetState on closed store: %v", err)
	}
	// Reads still answer from the replayed state.
	if _, ok := st.Get(job.ID); !ok {
		t.Fatal("read after close failed")
	}
}
